(** Traditional 2-way synchronous master-slave replication — the §1.1
    baseline whose failure sequence (Figure 1) motivates Paxos replication.

    All writes route to the master; the master ships the log record to the
    slave and forces its own commit record only after the slave forces
    first. If the slave is down the master continues alone. If the master
    dies, the slave may take over only when it knows it holds the latest
    database state — a slave that was down while the master kept committing
    must refuse, leaving the pair unavailable with just one node down, and
    the master's un-replicated committed writes are lost outright if its
    disk is destroyed. *)

type t

type node = Master | Slave

type write_error =
  | Unavailable  (** no node able to serve writes *)

val create : Sim.Engine.t -> ?disk:Sim.Disk_model.kind -> unit -> t

val put : t -> key:string -> value:string -> ((unit, write_error) result -> unit) -> unit

val get : t -> key:string -> (string option -> unit) -> unit
(** Served by the acting master; [None] when unavailable or missing. *)

val crash : t -> node -> unit

val restart : t -> node -> unit

val destroy : t -> node -> unit
(** Crash and lose the disk — a permanent failure. *)

val acting_master : t -> node option
(** Which physical node currently serves writes, if any. *)

val available_for_writes : t -> bool

val committed_lsn : t -> node -> int
(** Last committed LSN durable on the node's disk (Figure 1's annotations). *)

val lost_writes : t -> int
(** Committed writes present on no surviving disk — the data-loss counter
    of the Figure 1 catastrophe. Recomputed on inspection. *)

val writes_committed : t -> int
