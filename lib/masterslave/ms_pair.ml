type node = Master | Slave

type write_error = Unavailable

type replica = {
  name : node;
  disk : Sim.Resource.t;
  mutable up : bool;
  mutable destroyed : bool;
  mutable log : (int * string * string) list;  (** newest first; durable *)
  mutable committed : int;
}

type t = {
  engine : Sim.Engine.t;
  model : Sim.Disk_model.t;
  rng : Sim.Rng.t;
  latency : Sim.Distribution.t;
  master : replica;
  slave : replica;
  mutable acting : node option;
  mutable next_lsn : int;
  mutable global_committed : int;  (** highest LSN ever committed *)
}

let replica_of t = function Master -> t.master | Slave -> t.slave
let other = function Master -> Slave | Slave -> Master

let create engine ?(disk = Sim.Disk_model.Magnetic) () =
  let make name label =
    {
      name;
      disk = Sim.Resource.create engine ~name:label ();
      up = true;
      destroyed = false;
      log = [];
      committed = 0;
    }
  in
  {
    engine;
    model = Sim.Disk_model.create disk;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    latency = Sim.Distribution.Shifted_exponential { base = 80.0; mean_extra = 30.0 };
    master = make Master "ms-master-disk";
    slave = make Slave "ms-slave-disk";
    acting = Some Master;
    next_lsn = 0;
    global_committed = 0;
  }

let acting_master t = t.acting
let available_for_writes t = t.acting <> None
let committed_lsn t node = (replica_of t node).committed
let writes_committed t = t.global_committed

let lost_writes t =
  let best_surviving =
    List.fold_left
      (fun acc r -> if r.destroyed then acc else Stdlib.max acc r.committed)
      0
      [ t.master; t.slave ]
  in
  Stdlib.max 0 (t.global_committed - best_surviving)

let delay t k =
  ignore (Sim.Engine.schedule t.engine ~after:(Sim.Distribution.sample_span t.latency t.rng) k)

let force t (r : replica) k =
  Sim.Resource.submit r.disk
    ~service:(Sim.Distribution.sample_span (Sim.Disk_model.force_service t.model) t.rng)
    k

let commit r ~lsn ~key ~value =
  r.log <- (lsn, key, value) :: r.log;
  r.committed <- Stdlib.max r.committed lsn

let put t ~key ~value k =
  match t.acting with
  (* Even a rejected request takes a client round trip; answering in zero
     simulated time would let a closed-loop client spin without the clock
     advancing. *)
  | None -> delay t (fun () -> k (Error Unavailable))
  | Some m ->
    let master = replica_of t m in
    let slave = replica_of t (other m) in
    let lsn = t.next_lsn + 1 in
    t.next_lsn <- lsn;
    let finish () =
      (* The commit point: the write is durable on the acting master (and on
         the slave first, when it is up — §1.1). *)
      if master.up then begin
        commit master ~lsn ~key ~value;
        t.global_committed <- Stdlib.max t.global_committed lsn;
        k (Ok ())
      end
      else k (Error Unavailable)
    in
    if slave.up then
      (* Ship the log record; the slave forces before the master does. *)
      delay t (fun () ->
          if slave.up then begin
            force t slave (fun () ->
                if slave.up then commit slave ~lsn ~key ~value;
                delay t (fun () -> force t master finish))
          end
          else force t master finish)
    else force t master finish

let get t ~key k =
  match t.acting with
  | None -> delay t (fun () -> k None)
  | Some m ->
    let master = replica_of t m in
    delay t (fun () ->
        let value =
          if master.up then
            List.find_map (fun (_, k', v) -> if String.equal k' key then Some v else None) master.log
          else None
        in
        k value)

(* Failover policy: promote the peer only when it provably holds the latest
   committed state. A real deployment cannot know [global_committed]; this
   oracle implements the conservative behaviour (block rather than lose
   writes) that §1.1 says limits availability. *)
let try_promote t =
  let candidates = [ t.master; t.slave ] in
  t.acting <-
    List.find_map
      (fun r ->
        if r.up && (not r.destroyed) && r.committed = t.global_committed then Some r.name
        else None)
      candidates

let crash t node =
  let r = replica_of t node in
  if r.up then begin
    r.up <- false;
    if t.acting = Some node then try_promote t
  end

let restart t node =
  let r = replica_of t node in
  if (not r.up) && not r.destroyed then begin
    r.up <- true;
    match t.acting with
    | Some m when m <> node ->
      (* Rejoin as slave: resynchronise from the acting master. *)
      let master = replica_of t m in
      r.log <- master.log;
      r.committed <- master.committed
    | Some _ -> ()
    | None -> try_promote t
  end

let destroy t node =
  let r = replica_of t node in
  r.up <- false;
  r.destroyed <- true;
  r.log <- [];
  r.committed <- 0;
  if t.acting = Some node then try_promote t
