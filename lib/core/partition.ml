type desc = {
  id : int;
  lo : Storage.Row.key;
  hi : Storage.Row.key;  (** exclusive *)
  members : int list;  (** primary first *)
}

type t = {
  replication : int;
  key_space : int;
  width : int;
  mutable version : int;
  mutable descs : desc list;  (** sorted by [lo] *)
  mutable next_id : int;
  mutable route_cache : (int array * int array) option;
      (** per-desc (numeric lo, range id), sorted by lo — rebuilt lazily
          after any layout change so [route] is a binary search instead of a
          list walk with a string re-encode per call *)
}

let rec digits k = if k < 10 then 1 else 1 + digits (k / 10)

(* Zero-padded decimal encode, equivalent to [Printf.sprintf "%0*d"] for the
   values routing produces; hand-rolled because it runs on every generated
   key. Values wider than [width] keep all their digits, like sprintf. *)
let encode_int ~width k =
  if k < 0 then Printf.sprintf "%0*d" width k
  else begin
    let n = Stdlib.max width (digits k) in
    let b = Bytes.make n '0' in
    let rec fill i k =
      if k > 0 then begin
        Bytes.unsafe_set b i (Char.unsafe_chr (48 + (k mod 10)));
        fill (i - 1) (k / 10)
      end
    in
    fill (n - 1) k;
    Bytes.unsafe_to_string b
  end

let key_of_int t k = encode_int ~width:t.width k

(* Map an arbitrary key into [0, key_space). The all-digits fast path (the
   canonical encoding) parses in place; anything else falls back to the
   historical trim/parse/hash pipeline, bit-compatible with it. *)
let numeric_of_key t key =
  let n = String.length key in
  let rec go i acc =
    if i = n then acc
    else
      let d = Char.code (String.unsafe_get key i) - 48 in
      if d < 0 || d > 9 then -1 else go (i + 1) ((acc * 10) + d)
  in
  let fast = if n = 0 || n > 18 then -1 else go 0 0 in
  if fast >= 0 then fast mod t.key_space
  else
    match int_of_string_opt (String.trim key) with
    | Some v -> ((v mod t.key_space) + t.key_space) mod t.key_space
    | None -> Hashtbl.hash key mod t.key_space

let sort_descs descs = List.sort (fun a b -> String.compare a.lo b.lo) descs

let create ~nodes ~replication ~key_space =
  assert (nodes >= replication && replication >= 1 && key_space >= nodes);
  (* Wide enough for [key_space] itself, so the exclusive end bound of the
     last range still encodes in lexicographic order. *)
  let width = String.length (string_of_int key_space) in
  let t =
    {
      replication;
      key_space;
      width;
      version = 1;
      descs = [];
      next_id = nodes;
      route_cache = None;
    }
  in
  (* Seed layout: one base range per node, chained declustering — the layout
     of Figure 2, identical to the original static math. *)
  t.descs <-
    List.init nodes (fun range ->
        let start = range * key_space / nodes in
        let stop = if range = nodes - 1 then key_space else (range + 1) * key_space / nodes in
        {
          id = range;
          lo = key_of_int t start;
          hi = key_of_int t stop;
          members = List.init replication (fun i -> (range + i) mod nodes);
        });
  t

let ranges t = List.length t.descs
let replication t = t.replication
let version t = t.version
let key_space t = t.key_space
let range_ids t = List.map (fun d -> d.id) t.descs
let descs t = t.descs
let mem_range t ~range = List.exists (fun d -> d.id = range) t.descs

let copy t = { t with descs = t.descs }

let invalidate_route_cache t = t.route_cache <- None

let route_arrays t =
  match t.route_cache with
  | Some c -> c
  | None ->
    let descs = Array.of_list t.descs in
    let lo = Array.map (fun d -> numeric_of_key t d.lo) descs in
    let ids = Array.map (fun d -> d.id) descs in
    t.route_cache <- Some (lo, ids);
    (lo, ids)

let find t ~range =
  match List.find_opt (fun d -> d.id = range) t.descs with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Partition: unknown range %d" range)

let route t key =
  (* Keys are nominally zero-padded decimals; anything else hashes into the
     numeric key space first so every key routes somewhere deterministic.
     Descriptors tile [0, key_space): the owner is the last one whose [lo]
     is at or below the key (equality of string and numeric order is what
     the zero-padding buys). *)
  let numeric = numeric_of_key t key in
  let lo, ids = route_arrays t in
  let rec bs l r best =
    if l > r then best
    else
      let m = (l + r) / 2 in
      if lo.(m) <= numeric then bs (m + 1) r m else bs l (m - 1) best
  in
  ids.(bs 0 (Array.length lo - 1) 0)

let cohort t ~range = (find t ~range).members
let primary t ~range = List.hd (find t ~range).members

let ranges_of_node t ~node =
  List.filter_map (fun d -> if List.mem node d.members then Some d.id else None) t.descs

let range_bounds t ~range =
  let d = find t ~range in
  (d.lo, d.hi)

(* ------------------------------------------------------------------ *)
(* Mutation — applied when a Paxos-replicated meta record commits.      *)

let set_members t ~range members =
  let d = find t ~range in
  if d.members = members then false
  else begin
    t.descs <- List.map (fun d' -> if d'.id = range then { d' with members } else d') t.descs;
    invalidate_route_cache t;
    t.version <- t.version + 1;
    true
  end

let split t ~range ~at ~new_range =
  if mem_range t ~range:new_range then false (* already applied *)
  else begin
    let d = find t ~range in
    if String.compare d.lo at >= 0 || String.compare at d.hi >= 0 then false
    else begin
      let parent = { d with hi = at } in
      let child = { id = new_range; lo = at; hi = d.hi; members = d.members } in
      t.descs <-
        sort_descs (child :: List.map (fun d' -> if d'.id = range then parent else d') t.descs);
      invalidate_route_cache t;
      t.next_id <- Stdlib.max t.next_id (new_range + 1);
      t.version <- t.version + 1;
      true
    end
  end

(* ------------------------------------------------------------------ *)
(* Serialization for the ZK [/layout] znode.                            *)

let to_string t =
  let desc d =
    Printf.sprintf "%d:%s:%s:%s" d.id d.lo d.hi
      (String.concat "," (List.map string_of_int d.members))
  in
  Printf.sprintf "%d|%d|%s" t.version t.next_id (String.concat ";" (List.map desc t.descs))

let of_string_exn s =
  match String.split_on_char '|' s with
  | [ version; next_id; body ] ->
    let descs =
      String.split_on_char ';' body
      |> List.map (fun field ->
             match String.split_on_char ':' field with
             | [ id; lo; hi; members ] ->
               {
                 id = int_of_string id;
                 lo;
                 hi;
                 members = String.split_on_char ',' members |> List.map int_of_string;
               }
             | _ -> failwith "Partition.of_string: bad desc")
    in
    (int_of_string version, int_of_string next_id, sort_descs descs)
  | _ -> failwith "Partition.of_string: bad layout"

let update_from_string t s =
  match of_string_exn s with
  | version, next_id, descs when version > t.version ->
    t.version <- version;
    t.next_id <- next_id;
    t.descs <- descs;
    invalidate_route_cache t;
    true
  | _ -> false
  | exception _ -> false

let pp ppf t =
  List.iter
    (fun d ->
      Format.fprintf ppf "range %d [%s,%s) -> nodes %a@." d.id d.lo d.hi
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        d.members)
    t.descs
