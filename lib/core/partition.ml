type t = { nodes : int; replication : int; key_space : int; width : int }

let create ~nodes ~replication ~key_space =
  assert (nodes >= replication && replication >= 1 && key_space >= nodes);
  (* Wide enough for [key_space] itself, so the exclusive end bound of the
     last range still encodes in lexicographic order. *)
  let width = String.length (string_of_int key_space) in
  { nodes; replication; key_space; width }

let ranges t = t.nodes
let replication t = t.replication
let key_of_int t k = Printf.sprintf "%0*d" t.width k

let route t key =
  let numeric =
    match int_of_string_opt (String.trim key) with
    | Some v -> ((v mod t.key_space) + t.key_space) mod t.key_space
    | None -> Hashtbl.hash key mod t.key_space
  in
  (* Equal-width ranges; the last range absorbs the remainder. *)
  Stdlib.min (t.nodes - 1) (numeric * t.nodes / t.key_space)

let cohort t ~range = List.init t.replication (fun i -> (range + i) mod t.nodes)
let primary _t ~range = range

let ranges_of_node t ~node =
  List.init t.replication (fun i -> ((node - i) + t.nodes) mod t.nodes)
  |> List.sort_uniq Int.compare

let range_bounds t ~range =
  let start = range * t.key_space / t.nodes in
  let stop = if range = t.nodes - 1 then t.key_space else (range + 1) * t.key_space / t.nodes in
  (key_of_int t start, key_of_int t stop)

let pp ppf t =
  for r = 0 to t.nodes - 1 do
    let lo, hi = range_bounds t ~range:r in
    Format.fprintf ppf "range %d [%s,%s) -> nodes %a@." r lo hi
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (cohort t ~range:r)
  done
