type read_result = { value : string option; version : int }

type error = Version_mismatch of { current : int } | Timed_out | Cross_range

type pending = {
  op : Message.client_op;
  deliver : Message.client_reply -> unit;
  mutable attempts : int;
  mutable timer : Sim.Engine.timer option;
  trace_id : int;
  span : int;  (** open [request] span; 0 when the client has no trace *)
}

type t = {
  id : int;
  engine : Sim.Engine.t;
  net : Message.t Sim.Network.t;
  partition : Partition.t;
  config : Config.t;
  rng : Sim.Rng.t;
  lookup_leader : range:int -> (int option -> unit) -> unit;
  fetch_layout : (string option -> unit) -> unit;
      (** read the serialized routing table published on /layout; the client
          refreshes its cached copy on a [Wrong_range] redirect *)
  trace : Sim.Trace.t option;
  pending : (int, pending) Hashtbl.t;
  leader_cache : (int, int) Hashtbl.t;
  mutable next_request : int;
  mutable rr : int;
  mutable retries : int;
}

let id t = t.id
let retries t = t.retries

let op_name = function
  | Message.Get _ -> "get"
  | Message.Multi_get _ -> "multi_get"
  | Message.Scan _ -> "scan"
  | Message.Put _ -> "put"
  | Message.Multi_put _ -> "multi_put"
  | Message.Delete _ -> "delete"
  | Message.Conditional_put _ -> "conditional_put"
  | Message.Conditional_delete _ -> "conditional_delete"
  | Message.Multi_conditional_put _ -> "multi_conditional_put"
  | Message.Txn_put _ -> "txn_put"

let reply_name = function
  | Message.Written -> "written"
  | Message.Value _ -> "value"
  | Message.Values _ -> "values"
  | Message.Rows _ -> "rows"
  | Message.Version_mismatch _ -> "version_mismatch"
  | Message.Cross_range -> "cross_range"
  | Message.Unavailable -> "unavailable"
  | Message.Not_leader _ -> "not_leader"
  | Message.Wrong_range _ -> "wrong_range"

(* Close the request's [client.request] span with its final outcome. *)
let settle t p outcome =
  match t.trace with
  | Some trace when p.span <> 0 ->
    Sim.Trace.span_end trace ~span:p.span ~trace_id:p.trace_id ~node:t.id ~tag:"client.request"
      outcome
  | _ -> ()

let note_retry t request_id p =
  match t.trace with
  | None -> ()
  | Some trace ->
    Sim.Trace.event trace ~trace_id:p.trace_id ~node:t.id ~tag:"client.retry"
      (Printf.sprintf "c%d#%d attempt %d" t.id request_id p.attempts)

(* Capped exponential backoff with equal jitter: attempt [n] waits
   [min(cap, base * 2^(n-1))], half of it fixed and half uniformly random,
   so retry storms from many clients decorrelate instead of hammering a
   recovering leader in lockstep. *)
let backoff t attempts =
  let base = Sim.Sim_time.to_us t.config.Config.client_backoff_base in
  let cap = Sim.Sim_time.to_us t.config.Config.client_backoff_max in
  let exp = Stdlib.min 30 (Stdlib.max 0 (attempts - 1)) in
  let d = Stdlib.min cap (base * (1 lsl exp)) in
  let half = Stdlib.max 1 (d / 2) in
  Sim.Sim_time.us (half + Sim.Rng.int t.rng half)

let target_for t ~strong op =
  let range = Partition.route t.partition (Message.key_of_op op) in
  if strong then
    match Hashtbl.find_opt t.leader_cache range with
    | Some leader -> leader
    | None -> Partition.primary t.partition ~range
  else begin
    (* Timeline reads rotate over the cohort's replicas. *)
    let members = Partition.cohort t.partition ~range in
    t.rr <- t.rr + 1;
    List.nth members (t.rr mod List.length members)
  end

let strong_route op =
  match op with
  | Message.Get { consistent; _ }
  | Message.Multi_get { consistent; _ }
  | Message.Scan { consistent; _ } ->
    consistent
  | _ -> true

let rec dispatch t request_id p =
  let dst = target_for t ~strong:(strong_route p.op) p.op in
  Sim.Network.send t.net ~src:t.id ~dst
    ~size:(Message.size (Message.Request { client = t.id; request_id; op = p.op }))
    (Message.Request { client = t.id; request_id; op = p.op });
  p.timer <-
    Some
      (Sim.Engine.schedule t.engine ~after:t.config.Config.client_timeout (fun () ->
           on_timeout t request_id p))

and retry t request_id p ~after =
  p.attempts <- p.attempts + 1;
  t.retries <- t.retries + 1;
  if p.attempts >= t.config.Config.client_max_attempts then begin
    Hashtbl.remove t.pending request_id;
    settle t p "unavailable (retries exhausted)";
    p.deliver Message.Unavailable
  end
  else begin
    note_retry t request_id p;
    ignore (Sim.Engine.schedule t.engine ~after (fun () -> dispatch t request_id p))
  end

and on_timeout t request_id p =
  if Hashtbl.mem t.pending request_id then begin
    let range = Partition.route t.partition (Message.key_of_op p.op) in
    Hashtbl.remove t.leader_cache range;
    (* Every other timed-out attempt, ask the coordination service where the
       leader is instead of guessing. *)
    if p.attempts mod 2 = 1 then
      t.lookup_leader ~range (fun leader ->
          match leader with
          | Some l -> Hashtbl.replace t.leader_cache range l
          | None -> ());
    retry t request_id p ~after:(backoff t (p.attempts + 1))
  end

let handle_reply t request_id reply =
  match Hashtbl.find_opt t.pending request_id with
  | None -> ()
  | Some p -> (
    (match p.timer with Some timer -> Sim.Engine.cancel t.engine timer | None -> ());
    p.timer <- None;
    match reply with
    | Message.Not_leader { hint } ->
      let range = Partition.route t.partition (Message.key_of_op p.op) in
      (match hint with
      | Some l ->
        (* An actionable redirect: chase it immediately. *)
        Hashtbl.replace t.leader_cache range l;
        retry t request_id p ~after:(Sim.Sim_time.us 100)
      | None ->
        (* No leader known (election in progress): back off. *)
        Hashtbl.remove t.leader_cache range;
        retry t request_id p ~after:(backoff t (p.attempts + 1)))
    | Message.Wrong_range { hint } ->
      (* Our cached routing table is stale — a split or migration committed
         since we last looked (§10). Refresh from the published layout
         (versioned, so an older publication cannot regress the cache),
         re-route the key, seed the leader cache with the server's hint, and
         retry. Arbitrarily stale clients converge: each redirect either
         advances the cached layout version or lands on the owning range. *)
      t.fetch_layout (fun data ->
          (match data with
          | Some s -> ignore (Partition.update_from_string t.partition s)
          | None -> ());
          let range = Partition.route t.partition (Message.key_of_op p.op) in
          (match hint with
          | Some l -> Hashtbl.replace t.leader_cache range l
          | None -> Hashtbl.remove t.leader_cache range);
          retry t request_id p ~after:(Sim.Sim_time.us 500))
    | Message.Unavailable ->
      (* Cohort closed (takeover in progress): back off and retry. *)
      retry t request_id p ~after:(backoff t (p.attempts + 1))
    | _ ->
      Hashtbl.remove t.pending request_id;
      settle t p (reply_name reply);
      p.deliver reply)

let create ~engine ~net ~partition ~config ~id ?trace ~lookup_leader
    ?(fetch_layout = fun k -> k None) () =
  let t =
    {
      id;
      engine;
      net;
      partition;
      config;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      lookup_leader;
      fetch_layout;
      trace;
      pending = Hashtbl.create 64;
      leader_cache = Hashtbl.create 16;
      next_request = 0;
      rr = 0;
      retries = 0;
    }
  in
  Sim.Network.register net ~node:id (fun env ->
      match env.Sim.Network.payload with
      | Message.Reply { request_id; reply } -> handle_reply t request_id reply
      | _ -> ());
  t

let submit t op deliver =
  let request_id = t.next_request in
  t.next_request <- request_id + 1;
  let trace_id = Sim.Trace.request_trace_id ~client:t.id ~request_id in
  let span =
    match t.trace with
    | None -> 0
    | Some trace ->
      Sim.Trace.span_start trace ~trace_id ~node:t.id ~tag:"client.request"
        (Printf.sprintf "c%d#%d %s" t.id request_id (op_name op))
  in
  let p = { op; deliver; attempts = 0; timer = None; trace_id; span } in
  Hashtbl.replace t.pending request_id p;
  dispatch t request_id p

let value_result (v : Message.value_reply) = { value = v.Message.value; version = v.Message.version }

let read_k k = function
  | Message.Value v -> k (Ok (value_result v))
  | Message.Values ((_, v) :: _) -> k (Ok (value_result v))
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | Message.Unavailable -> k (Error Timed_out)
  | Message.Values [] | Message.Rows _ | Message.Written | Message.Not_leader _
  | Message.Wrong_range _ ->
    k (Error Timed_out)

let multi_read_k k = function
  | Message.Values vs -> k (Ok (List.map (fun (c, v) -> (c, value_result v)) vs))
  | Message.Value v -> k (Ok [ ("", value_result v) ])
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | Message.Unavailable | Message.Rows _ | Message.Written | Message.Not_leader _
  | Message.Wrong_range _ ->
    k (Error Timed_out)

let write_k k = function
  | Message.Written -> k (Ok ())
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | Message.Unavailable -> k (Error Timed_out)
  | Message.Value _ | Message.Values _ | Message.Rows _ | Message.Not_leader _
  | Message.Wrong_range _ ->
    k (Error Timed_out)

let get t ?(consistent = true) key col k =
  submit t (Message.Get { key; col; consistent }) (read_k k)

let multi_get t ?(consistent = true) key cols k =
  submit t (Message.Multi_get { key; cols; consistent }) (multi_read_k k)

let put t key col ~value k = submit t (Message.Put { key; col; value }) (write_k k)
let multi_put t key cols k = submit t (Message.Multi_put { key; cols }) (write_k k)
let delete t key col k = submit t (Message.Delete { key; col }) (write_k k)

let conditional_put t key col ~value ~expected k =
  submit t (Message.Conditional_put { key; col; value; expected }) (write_k k)

let conditional_delete t key col ~expected k =
  submit t (Message.Conditional_delete { key; col; expected }) (write_k k)

let multi_conditional_put t key cols k =
  submit t (Message.Multi_conditional_put { key; cols }) (write_k k)

let transact_put t rows k = submit t (Message.Txn_put { rows }) (write_k k)

(* Scatter-gather scan: walk the key ranges covering [start_key, end_key)
   left to right, asking each cohort for its slice, until the limit fills or
   the window ends. Each per-range request retries/fails over independently
   through the normal dispatch machinery. *)
let scan t ?(consistent = true) ~start_key ~end_key ?(limit = 1000) k =
  let rows = ref [] in
  let count = ref 0 in
  let rec step current =
    if String.compare current end_key >= 0 || !count >= limit then
      k (Ok (List.rev !rows))
    else begin
      let op =
        Message.Scan { start_key = current; end_key; limit = limit - !count; consistent }
      in
      submit t op (function
        | Message.Rows { rows = rs; next } ->
          List.iter
            (fun (key, cols) ->
              rows := (key, List.map (fun (c, v) -> (c, value_result v)) cols) :: !rows;
              incr count)
            rs;
          (* Resume where the serving range's coverage stopped — the server
             reports it, so a stale routing table cannot make us skip keys a
             concurrent split moved to another cohort. *)
          (match next with
          | Some cont when String.compare cont current > 0 -> step cont
          | _ -> k (Ok (List.rev !rows)))
        | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
        | Message.Cross_range -> k (Error Cross_range)
        | Message.Unavailable | Message.Value _ | Message.Values _ | Message.Written
        | Message.Not_leader _ | Message.Wrong_range _ ->
          k (Error Timed_out))
    end
  in
  step start_key

let pp_error ppf = function
  | Version_mismatch { current } -> Format.fprintf ppf "version mismatch (current=%d)" current
  | Timed_out -> Format.pp_print_string ppf "timed out"
  | Cross_range -> Format.pp_print_string ppf "transaction keys span key ranges"
