type read_result = { value : string option; version : int }

type error =
  | Version_mismatch of { current : int }
  | Timed_out
  | Cross_range
  | Conflict

type pending = {
  op : Message.client_op;
  deliver : Message.client_reply -> unit;
  mutable attempts : int;
  mutable deadline : Sim.Sim_time.t;
      (** timeout deadline of the outstanding attempt; [Sim_time.zero] when no
          attempt is in flight (reply arrived, or a retry is backing off) *)
  trace_id : int;
  span : int;  (** open [request] span; 0 when the client has no trace *)
  started : Sim.Sim_time.t;  (** submit instant (flight-recorder latency) *)
  mutable to_leader : bool;
      (** route the next attempt to the leader even for a timeline read — set
          when a replica redirected us with [Not_leader] (a token read hit its
          staleness bound on a lagging follower) *)
}

type t = {
  id : int;
  engine : Sim.Engine.t;
  net : Message.t Sim.Network.t;
  partition : Partition.t;
  config : Config.t;
  rng : Sim.Rng.t;
  lookup_leader : range:int -> (int option -> unit) -> unit;
  fetch_layout : (string option -> unit) -> unit;
      (** read the serialized routing table published on /layout; the client
          refreshes its cached copy on a [Wrong_range] redirect *)
  trace : Sim.Trace.t option;
  flight : Sim.Trace.Flight.t option;
      (** outlier flight recorder; fed every completed request so the
          slowest ones keep their trace events pinned past ring eviction *)
  (* Direct-mapped pending table: request ids are monotone, so slot
     [rid mod capacity] is collision-free as long as the capacity exceeds the
     live id window — the table doubles on collision. Replaces a per-request
     Hashtbl replace/find/remove triple on the hot path. *)
  mutable pending_rid : int array;  (** -1 = empty slot *)
  mutable pending_slot : pending option array;
  mutable leaders : int array;  (** leader per range id; -1 = unknown *)
  mutable tokens : Storage.Lsn.t array;
      (** read-your-writes fence per range: the highest commit LSN returned by
          [Written] for a write we issued there. Timeline reads carry it so a
          follower holds the read until its applied state covers our writes. *)
  timeouts : (int * Sim.Sim_time.t) Queue.t;
      (** (request_id, deadline) in dispatch order. [client_timeout] is a
          constant span, so deadlines are FIFO and one armed engine timer per
          client covers them all — the per-request heap timer (pushed and
          lazily cancelled 99.9% of the time) was a top line in the read-bench
          profile. Entries whose request completed or was re-dispatched go
          stale in place ([p.deadline] no longer matches) and are skipped when
          the sweep reaches them; fire times of real timeouts are exact. *)
  mutable timeout_armed : bool;
  mutable next_request : int;
  mutable rr : int;
  mutable retries : int;
}

let id t = t.id
let retries t = t.retries

let op_name = function
  | Message.Get _ -> "get"
  | Message.Multi_get _ -> "multi_get"
  | Message.Scan _ -> "scan"
  | Message.Put _ -> "put"
  | Message.Multi_put _ -> "multi_put"
  | Message.Delete _ -> "delete"
  | Message.Conditional_put _ -> "conditional_put"
  | Message.Conditional_delete _ -> "conditional_delete"
  | Message.Multi_conditional_put _ -> "multi_conditional_put"
  | Message.Txn_put _ -> "txn_put"
  | Message.Fence _ -> "fence"
  | Message.Snap_get _ -> "snap_get"
  | Message.Txn_prepare_req _ -> "txn_prepare"
  | Message.Txn_decide_req _ -> "txn_decide"
  | Message.Txn_status_req _ -> "txn_status"
  | Message.Txn_resolve_req _ -> "txn_resolve"

let reply_name = function
  | Message.Written _ -> "written"
  | Message.Value _ -> "value"
  | Message.Values _ -> "values"
  | Message.Rows _ -> "rows"
  | Message.Version_mismatch _ -> "version_mismatch"
  | Message.Cross_range -> "cross_range"
  | Message.Unavailable -> "unavailable"
  | Message.Not_leader _ -> "not_leader"
  | Message.Wrong_range _ -> "wrong_range"
  | Message.Fenced _ -> "fenced"
  | Message.Snap_blocked _ -> "snap_blocked"
  | Message.Txn_conflict -> "txn_conflict"
  | Message.Txn_decided _ -> "txn_decided"

(* Close the request's [client.request] span with its final outcome, then
   offer the completed request to the flight recorder — the note must come
   after the span close so a pinned outlier's capture includes it. *)
let settle t p outcome =
  (match t.trace with
  | Some trace when p.span <> 0 ->
    Sim.Trace.span_end trace ~span:p.span ~trace_id:p.trace_id ~node:t.id ~tag:"client.request"
      outcome
  | _ -> ());
  match t.flight with
  | Some f -> Sim.Trace.Flight.note f ~trace_id:p.trace_id ~started:p.started
  | None -> ()

let note_retry t request_id p =
  match t.trace with
  | Some trace when Sim.Trace.is_enabled trace ->
    Sim.Trace.event trace ~trace_id:p.trace_id ~node:t.id ~tag:"client.retry"
      (Printf.sprintf "c%d#%d attempt %d" t.id request_id p.attempts)
  | _ -> ()

let rec pending_insert t rid p =
  let cap = Array.length t.pending_rid in
  let i = rid land (cap - 1) in
  if t.pending_rid.(i) < 0 || t.pending_rid.(i) = rid then begin
    t.pending_rid.(i) <- rid;
    t.pending_slot.(i) <- Some p
  end
  else begin
    (* Collision with a different live request: double until every live id
       owns its slot again. *)
    let old_rid = t.pending_rid and old_slot = t.pending_slot in
    t.pending_rid <- Array.make (2 * cap) (-1);
    t.pending_slot <- Array.make (2 * cap) None;
    Array.iteri
      (fun j r ->
        if r >= 0 then
          match old_slot.(j) with Some q -> pending_insert t r q | None -> ())
      old_rid;
    pending_insert t rid p
  end

let pending_find t rid =
  let i = rid land (Array.length t.pending_rid - 1) in
  if t.pending_rid.(i) = rid then t.pending_slot.(i) else None

let pending_mem t rid = t.pending_rid.(rid land (Array.length t.pending_rid - 1)) = rid

let pending_remove t rid =
  let i = rid land (Array.length t.pending_rid - 1) in
  if t.pending_rid.(i) = rid then begin
    t.pending_rid.(i) <- -1;
    t.pending_slot.(i) <- None
  end

let leader_set t range leader =
  if range >= Array.length t.leaders then begin
    let cap = ref (2 * Array.length t.leaders) in
    while range >= !cap do
      cap := 2 * !cap
    done;
    let a = Array.make !cap (-1) in
    Array.blit t.leaders 0 a 0 (Array.length t.leaders);
    t.leaders <- a
  end;
  t.leaders.(range) <- leader

let leader_clear t range = if range < Array.length t.leaders then t.leaders.(range) <- -1

let leader_hint t range =
  if range < Array.length t.leaders then t.leaders.(range) else -1

(* Remember the highest commit LSN acked for a write to [range]; later
   timeline reads against that range carry it as their read-your-writes
   fence. *)
let token_note t range lsn =
  if range >= Array.length t.tokens then begin
    let cap = ref (2 * Array.length t.tokens) in
    while range >= !cap do
      cap := 2 * !cap
    done;
    let a = Array.make !cap Storage.Lsn.zero in
    Array.blit t.tokens 0 a 0 (Array.length t.tokens);
    t.tokens <- a
  end;
  if Storage.Lsn.(lsn > t.tokens.(range)) then t.tokens.(range) <- lsn

let read_token t ~consistent key =
  if consistent then Storage.Lsn.zero
  else begin
    let range = Partition.route t.partition key in
    if range < Array.length t.tokens then t.tokens.(range) else Storage.Lsn.zero
  end

(* Capped exponential backoff with equal jitter: attempt [n] waits
   [min(cap, base * 2^(n-1))], half of it fixed and half uniformly random,
   so retry storms from many clients decorrelate instead of hammering a
   recovering leader in lockstep. *)
let backoff t attempts =
  let base = Sim.Sim_time.to_us t.config.Config.client_backoff_base in
  let cap = Sim.Sim_time.to_us t.config.Config.client_backoff_max in
  let exp = Stdlib.min 30 (Stdlib.max 0 (attempts - 1)) in
  let d = Stdlib.min cap (base * (1 lsl exp)) in
  let half = Stdlib.max 1 (d / 2) in
  Sim.Sim_time.us (half + Sim.Rng.int t.rng half)

let target_for t ~strong op =
  let range = Partition.route t.partition (Message.key_of_op op) in
  if strong then begin
    let leader = leader_hint t range in
    if leader >= 0 then leader else Partition.primary t.partition ~range
  end
  else begin
    (* Timeline reads rotate over the cohort's replicas. *)
    let members = Partition.cohort t.partition ~range in
    t.rr <- t.rr + 1;
    List.nth members (t.rr mod List.length members)
  end

let strong_route op =
  match op with
  | Message.Get { consistent; _ }
  | Message.Multi_get { consistent; _ }
  | Message.Scan { consistent; _ } ->
    consistent
  (* Snapshot reads ride the timeline path: any replica may serve one once
     its applied prefix covers the fence. *)
  | Message.Snap_get _ -> false
  | _ -> true

let rec dispatch t request_id p =
  let dst = target_for t ~strong:(strong_route p.op || p.to_leader) p.op in
  let msg = Message.Request { client = t.id; request_id; op = p.op } in
  Sim.Network.send t.net ~src:t.id ~dst ~size:(Message.size msg) ~trace_id:p.trace_id msg;
  let deadline = Sim.Sim_time.add (Sim.Engine.now t.engine) t.config.Config.client_timeout in
  p.deadline <- deadline;
  Queue.push (request_id, deadline) t.timeouts;
  arm_timeout t

(* Arm the shared timer at the earliest live deadline (shedding stale queue
   heads on the way). The timer may fire at a deadline whose request already
   completed — it then finds only stale heads and re-arms — but a live
   deadline always has a timer at or before it, so timeouts never fire late. *)
and arm_timeout t =
  if not t.timeout_armed then begin
    let rec next_live () =
      match Queue.peek_opt t.timeouts with
      | None -> None
      | Some (rid, d) -> (
        match pending_find t rid with
        | Some p when Sim.Sim_time.compare p.deadline d = 0 -> Some d
        | _ ->
          ignore (Queue.pop t.timeouts);
          next_live ())
    in
    match next_live () with
    | None -> ()
    | Some d ->
      t.timeout_armed <- true;
      ignore (Sim.Engine.schedule_at t.engine d (fun () -> sweep_timeouts t))
  end

and sweep_timeouts t =
  t.timeout_armed <- false;
  let now = Sim.Engine.now t.engine in
  let rec loop () =
    match Queue.peek_opt t.timeouts with
    | Some (rid, d) when Sim.Sim_time.(d <= now) ->
      ignore (Queue.pop t.timeouts);
      (match pending_find t rid with
      | Some p when Sim.Sim_time.compare p.deadline d = 0 -> on_timeout t rid p
      | _ -> ());
      loop ()
    | _ -> arm_timeout t
  in
  loop ()

and retry t request_id p ~after =
  p.attempts <- p.attempts + 1;
  t.retries <- t.retries + 1;
  if p.attempts >= t.config.Config.client_max_attempts then begin
    pending_remove t request_id;
    settle t p "unavailable (retries exhausted)";
    p.deliver Message.Unavailable
  end
  else begin
    note_retry t request_id p;
    ignore (Sim.Engine.schedule t.engine ~after (fun () -> dispatch t request_id p))
  end

and on_timeout t request_id p =
  if pending_mem t request_id then begin
    let range = Partition.route t.partition (Message.key_of_op p.op) in
    leader_clear t range;
    (* Every other timed-out attempt, ask the coordination service where the
       leader is instead of guessing. *)
    if p.attempts mod 2 = 1 then
      t.lookup_leader ~range (fun leader ->
          match leader with
          | Some l -> leader_set t range l
          | None -> ());
    retry t request_id p ~after:(backoff t (p.attempts + 1))
  end

let handle_reply t request_id reply =
  match pending_find t request_id with
  | None -> ()
  | Some p -> (
    (* Invalidate the outstanding attempt's deadline: its queue entry goes
       stale and the sweep will skip it. *)
    p.deadline <- Sim.Sim_time.zero;
    match reply with
    | Message.Not_leader { hint } ->
      let range = Partition.route t.partition (Message.key_of_op p.op) in
      (* For a timeline read this is a lagging follower's redirect (the token
         fence hit its staleness bound): the retry must go to the leader, the
         one replica guaranteed to have applied our writes. *)
      p.to_leader <- true;
      (match hint with
      | Some l ->
        (* An actionable redirect: chase it immediately. *)
        leader_set t range l;
        retry t request_id p ~after:(Sim.Sim_time.us 100)
      | None ->
        (* No leader known (election in progress): back off. *)
        leader_clear t range;
        retry t request_id p ~after:(backoff t (p.attempts + 1)))
    | Message.Wrong_range { hint } ->
      (* Our cached routing table is stale — a split or migration committed
         since we last looked (§10). Refresh from the published layout
         (versioned, so an older publication cannot regress the cache),
         re-route the key, seed the leader cache with the server's hint, and
         retry. Arbitrarily stale clients converge: each redirect either
         advances the cached layout version or lands on the owning range. *)
      t.fetch_layout (fun data ->
          (match data with
          | Some s -> ignore (Partition.update_from_string t.partition s)
          | None -> ());
          let range = Partition.route t.partition (Message.key_of_op p.op) in
          (match hint with
          | Some l -> leader_set t range l
          | None -> leader_clear t range);
          retry t request_id p ~after:(Sim.Sim_time.us 500))
    | Message.Unavailable ->
      (* Cohort closed (takeover in progress): back off and retry. *)
      retry t request_id p ~after:(backoff t (p.attempts + 1))
    | _ ->
      pending_remove t request_id;
      (match reply with
      | Message.Written { lsn } ->
        token_note t (Partition.route t.partition (Message.key_of_op p.op)) lsn
      | _ -> ());
      settle t p (reply_name reply);
      p.deliver reply)

let create ~engine ~net ~partition ~config ~id ?trace ?flight ~lookup_leader
    ?(fetch_layout = fun k -> k None) () =
  let t =
    {
      id;
      engine;
      net;
      partition;
      config;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      lookup_leader;
      fetch_layout;
      trace;
      flight;
      pending_rid = Array.make 64 (-1);
      pending_slot = Array.make 64 None;
      leaders = Array.make 16 (-1);
      tokens = Array.make 16 Storage.Lsn.zero;
      timeouts = Queue.create ();
      timeout_armed = false;
      next_request = 0;
      rr = 0;
      retries = 0;
    }
  in
  Sim.Network.register net ~node:id (fun env ->
      match env.Sim.Network.payload with
      | Message.Reply { request_id; reply } -> handle_reply t request_id reply
      | _ -> ());
  t

let submit t op deliver =
  let request_id = t.next_request in
  t.next_request <- request_id + 1;
  let trace_id = Sim.Trace.request_trace_id ~client:t.id ~request_id in
  let span =
    match t.trace with
    | Some trace when Sim.Trace.is_enabled trace ->
      Sim.Trace.span_start trace ~trace_id ~node:t.id ~tag:"client.request"
        (Printf.sprintf "c%d#%d %s" t.id request_id (op_name op))
    | _ -> 0
  in
  let p =
    {
      op;
      deliver;
      attempts = 0;
      deadline = Sim.Sim_time.zero;
      trace_id;
      span;
      started = Sim.Engine.now t.engine;
      to_leader = false;
    }
  in
  pending_insert t request_id p;
  dispatch t request_id p

let value_result (v : Message.value_reply) = { value = v.Message.value; version = v.Message.version }

let read_k k = function
  | Message.Value v -> k (Ok (value_result v))
  | Message.Values ((_, v) :: _) -> k (Ok (value_result v))
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | Message.Unavailable -> k (Error Timed_out)
  | _ -> k (Error Timed_out)

let multi_read_k k = function
  | Message.Values vs -> k (Ok (List.map (fun (c, v) -> (c, value_result v)) vs))
  | Message.Value v -> k (Ok [ ("", value_result v) ])
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | _ -> k (Error Timed_out)

let write_k k = function
  | Message.Written _ -> k (Ok ())
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | Message.Unavailable -> k (Error Timed_out)
  | _ -> k (Error Timed_out)

let get t ?(consistent = true) key col k =
  let token = read_token t ~consistent key in
  submit t (Message.Get { key; col; consistent; token }) (read_k k)

let multi_get t ?(consistent = true) key cols k =
  let token = read_token t ~consistent key in
  submit t (Message.Multi_get { key; cols; consistent; token }) (multi_read_k k)

let put t key col ~value k = submit t (Message.Put { key; col; value }) (write_k k)
let multi_put t key cols k = submit t (Message.Multi_put { key; cols }) (write_k k)
let delete t key col k = submit t (Message.Delete { key; col }) (write_k k)

let conditional_put t key col ~value ~expected k =
  submit t (Message.Conditional_put { key; col; value; expected }) (write_k k)

let conditional_delete t key col ~expected k =
  submit t (Message.Conditional_delete { key; col; expected }) (write_k k)

let multi_conditional_put t key cols k =
  submit t (Message.Multi_conditional_put { key; cols }) (write_k k)

let transact_put t rows k = submit t (Message.Txn_put { rows }) (write_k k)

(* --- multi-range transactions (MVCC snapshots + 2PC over Paxos) --- *)

type snap_read = Snap_value of read_result | Snap_intent of string

let fence_k k = function
  | Message.Fenced { lsn; ts } -> k (Ok (lsn, ts))
  | Message.Cross_range -> k (Error Cross_range)
  | _ -> k (Error Timed_out)

let snap_k k = function
  | Message.Value v -> k (Ok (Snap_value (value_result v)))
  | Message.Snap_blocked { txn } -> k (Ok (Snap_intent txn))
  | Message.Cross_range -> k (Error Cross_range)
  | _ -> k (Error Timed_out)

let prepare_k k = function
  | Message.Written _ -> k (Ok ())
  | Message.Txn_conflict -> k (Error Conflict)
  | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
  | Message.Cross_range -> k (Error Cross_range)
  | _ -> k (Error Timed_out)

let decided_k k = function
  | Message.Txn_decided { committed; ts } -> k (Ok (committed, ts))
  | Message.Cross_range -> k (Error Cross_range)
  | _ -> k (Error Timed_out)

let fence t key k = submit t (Message.Fence { key }) (fence_k k)

let snap_get t key col ~fence ~fence_ts k =
  submit t (Message.Snap_get { key; col; fence; fence_ts }) (snap_k k)

let txn_prepare t ~txn ~anchor ~fence ~fence_ts writes k =
  submit t (Message.Txn_prepare_req { txn; anchor; fence; fence_ts; writes }) (prepare_k k)

let txn_decide t ~txn ~anchor ~commit k =
  submit t (Message.Txn_decide_req { txn; anchor; commit }) (decided_k k)

let txn_status t ~txn ~anchor k =
  submit t (Message.Txn_status_req { txn; anchor }) (decided_k k)

let txn_resolve t ~txn ~key ~commit ~ts k =
  submit t (Message.Txn_resolve_req { txn; key; commit; ts }) (write_k k)

(* Scatter-gather scan: walk the key ranges covering [start_key, end_key)
   left to right, asking each cohort for its slice, until the limit fills or
   the window ends. Each per-range request retries/fails over independently
   through the normal dispatch machinery. *)
let scan t ?(consistent = true) ~start_key ~end_key ?(limit = 1000) k =
  let rows = ref [] in
  let count = ref 0 in
  let rec step current =
    if String.compare current end_key >= 0 || !count >= limit then
      k (Ok (List.rev !rows))
    else begin
      let op =
        Message.Scan
          {
            start_key = current;
            end_key;
            limit = limit - !count;
            consistent;
            token = read_token t ~consistent current;
          }
      in
      submit t op (function
        | Message.Rows { rows = rs; next } ->
          List.iter
            (fun (key, cols) ->
              rows := (key, List.map (fun (c, v) -> (c, value_result v)) cols) :: !rows;
              incr count)
            rs;
          (* Resume where the serving range's coverage stopped — the server
             reports it, so a stale routing table cannot make us skip keys a
             concurrent split moved to another cohort. *)
          (match next with
          | Some cont when String.compare cont current > 0 -> step cont
          | _ -> k (Ok (List.rev !rows)))
        | Message.Version_mismatch { current } -> k (Error (Version_mismatch { current }))
        | Message.Cross_range -> k (Error Cross_range)
        | _ -> k (Error Timed_out))
    end
  in
  step start_key

let pp_error ppf = function
  | Version_mismatch { current } -> Format.fprintf ppf "version mismatch (current=%d)" current
  | Timed_out -> Format.pp_print_string ppf "timed out"
  | Cross_range -> Format.pp_print_string ppf "transaction keys span key ranges"
  | Conflict -> Format.pp_print_string ppf "write-write conflict (first committer wins)"
