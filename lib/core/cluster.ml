type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  partition : Partition.t;
  net : Message.t Sim.Network.t;
  zk_server : Coord.Zk_server.t;
  mutable nodes : Node.t array;  (** grows when nodes are added at runtime *)
  trace : Sim.Trace.t;
  flight : Sim.Trace.Flight.t;
  metrics : Sim.Metrics.Registry.t;
  mutable next_client : int;
}

let bootstrap_zk zk_server partition =
  (* Persistent range directories (Figure 7 stores election state under /r). *)
  let session = Coord.Zk_server.open_session zk_server in
  let create path =
    ignore
      (Coord.Zk_server.create_node zk_server ~session ~path ~data:"" ~ephemeral:false
         ~sequential:false)
  in
  create "/ranges";
  create "/nodes";
  for r = 0 to Partition.ranges partition - 1 do
    create (Printf.sprintf "/ranges/%d" r);
    create (Printf.sprintf "/ranges/%d/candidates" r);
    ignore
      (Coord.Zk_server.create_node zk_server ~session
         ~path:(Printf.sprintf "/ranges/%d/epoch" r)
         ~data:"0" ~ephemeral:false ~sequential:false)
  done;
  (* The published routing table (§10): leaders overwrite it when a
     membership change or split commits; clients and dozing nodes read it to
     refresh their cached copy. *)
  ignore
    (Coord.Zk_server.create_node zk_server ~session ~path:"/layout"
       ~data:(Partition.to_string partition) ~ephemeral:false ~sequential:false);
  (* Range-id allocator for splits. [incr_counter] returns the new value, so
     seeding with the last preallocated id hands the first split the next
     free one. *)
  ignore
    (Coord.Zk_server.create_node zk_server ~session ~path:"/next_range"
       ~data:(string_of_int (Partition.ranges partition - 1))
       ~ephemeral:false ~sequential:false);
  Coord.Zk_server.close_session zk_server ~session

let register_node_gauges metrics node =
  let id = Node.id node in
  let gauge name read = ignore (Sim.Metrics.Registry.register_gauge metrics ~node:id ~name read) in
  gauge "wal_volatile_bytes" (fun () -> Storage.Wal.volatile_bytes (Node.wal node));
  List.iter
    (fun range ->
      match Node.cohort node ~range with
      | None -> ()
      | Some c ->
        let g fmt read = gauge (Printf.sprintf fmt range) read in
        g "r%d_memtable_bytes" (fun () -> Storage.Store.memtable_bytes (Cohort.store c));
        g "r%d_sstable_count" (fun () -> Storage.Store.sstable_count (Cohort.store c));
        g "r%d_commit_queue_depth" (fun () -> Cohort.pending_writes c);
        g "r%d_reply_cache_size" (fun () -> Cohort.reply_cache_size c);
        g "r%d_cache_hits" (fun () -> Storage.Store.cache_hits (Cohort.store c));
        g "r%d_cache_misses" (fun () -> Storage.Store.cache_misses (Cohort.store c));
        g "r%d_cache_evictions" (fun () -> Storage.Store.cache_evictions (Cohort.store c)))
    (Node.ranges node)

let create engine config =
  let partition =
    Partition.create ~nodes:config.Config.nodes ~replication:config.Config.replication
      ~key_space:config.Config.key_space
  in
  let net = Sim.Network.create engine () in
  let zk_server =
    Coord.Zk_server.create engine ~session_timeout:config.Config.session_timeout ()
  in
  let trace = Sim.Trace.create ~capacity:config.Config.trace_capacity engine in
  Coord.Zk_server.attach_trace zk_server trace;
  bootstrap_zk zk_server partition;
  Sim.Network.attach_trace net trace;
  let flight =
    Sim.Trace.Flight.create ~top_k:config.Config.outlier_top_k
      ~window:config.Config.outlier_window trace
  in
  let metrics = Sim.Metrics.Registry.create engine in
  (* Ring-eviction visibility: a non-zero [trace_dropped] means analyses over
     the ring (critical paths, timelines) may be missing events. *)
  ignore
    (Sim.Metrics.Registry.register_gauge metrics ~node:(-1) ~name:"trace_dropped" (fun () ->
         Sim.Trace.dropped trace));
  let nodes =
    Array.init config.Config.nodes (fun id ->
        Node.create ~engine ~net ~zk_server ~partition ~config ~trace ~id)
  in
  (* Resource gauges, one series per node (and per cohort where the resource
     is per-range); sampled by the registry ticker once the cluster starts. *)
  Array.iter (register_node_gauges metrics) nodes;
  { engine; config; partition; net; zk_server; nodes; trace; flight; metrics;
    next_client = 10_000 }

(* The presumed-abort escalation wiring needs [new_client], defined below
   (it depends on nothing here); tied together after that definition. *)
let install_txn_escalation : (t -> unit) ref = ref (fun _ -> ())

let start t =
  !install_txn_escalation t;
  Array.iter Node.start t.nodes;
  (* A zero period disables the periodic gauge sampler: benches that do not
     export timelines should not pay one sweep over every gauge per 100 ms
     of sim time. *)
  if Sim.Sim_time.span_compare t.config.Config.metrics_sample_period Sim.Sim_time.span_zero > 0
  then
    Sim.Metrics.Registry.start_sampling t.metrics ~period:t.config.Config.metrics_sample_period
let engine t = t.engine
let config t = t.config
let partition t = t.partition
let net t = t.net
let zk_server t = t.zk_server
let trace t = t.trace
let flight t = t.flight
let metrics t = t.metrics
let node t i = t.nodes.(i)
let nodes t = t.nodes

(* Scale-out (§10): a fresh node joins the running cluster. It hosts no
   ranges until a migration or split makes it a cohort member; until then it
   only registers with the coordination service and watches /layout. *)
let add_node t =
  let id = Array.length t.nodes in
  let node =
    Node.create ~engine:t.engine ~net:t.net ~zk_server:t.zk_server ~partition:t.partition
      ~config:t.config ~trace:t.trace ~id
  in
  t.nodes <- Array.append t.nodes [| node |];
  register_node_gauges t.metrics node;
  !install_txn_escalation t;
  Node.start node;
  id

let leader_of t ~range =
  let cohort_nodes = Partition.cohort t.partition ~range in
  List.find_map
    (fun n ->
      match Node.cohort t.nodes.(n) ~range with
      | Some c when Node.alive t.nodes.(n) && Cohort.is_open c -> Some n
      | _ -> None)
    cohort_nodes

type read_path_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  sstables_skipped : int;
  sstables_probed : int;
  compactions : int;
  full_compactions : int;
  max_compaction_input_bytes : int;
  total_compaction_input_bytes : int;
  max_store_bytes_at_compaction : int;
  tables_per_node : (int * int list) list;
}

let read_path_stats t =
  let stats =
    ref
      {
        cache_hits = 0;
        cache_misses = 0;
        cache_evictions = 0;
        sstables_skipped = 0;
        sstables_probed = 0;
        compactions = 0;
        full_compactions = 0;
        max_compaction_input_bytes = 0;
        total_compaction_input_bytes = 0;
        max_store_bytes_at_compaction = 0;
        tables_per_node = [];
      }
  in
  Array.iter
    (fun node ->
      let tables = ref [] in
      List.iter
        (fun range ->
          match Node.cohort node ~range with
          | None -> ()
          | Some c ->
            let s = Cohort.store c in
            let acc = !stats in
            tables := Storage.Store.sstable_count s :: !tables;
            stats :=
              {
                acc with
                cache_hits = acc.cache_hits + Storage.Store.cache_hits s;
                cache_misses = acc.cache_misses + Storage.Store.cache_misses s;
                cache_evictions = acc.cache_evictions + Storage.Store.cache_evictions s;
                sstables_skipped = acc.sstables_skipped + Storage.Store.sstables_skipped s;
                sstables_probed = acc.sstables_probed + Storage.Store.sstables_probed s;
                compactions = acc.compactions + Storage.Store.compactions s;
                full_compactions = acc.full_compactions + Storage.Store.full_compactions s;
                max_compaction_input_bytes =
                  Stdlib.max acc.max_compaction_input_bytes
                    (Storage.Store.max_compaction_input_bytes s);
                total_compaction_input_bytes =
                  acc.total_compaction_input_bytes
                  + Storage.Store.total_compaction_input_bytes s;
                max_store_bytes_at_compaction =
                  Stdlib.max acc.max_store_bytes_at_compaction
                    (Storage.Store.max_store_bytes_at_compaction s);
              })
        (Node.ranges node);
      stats :=
        { !stats with tables_per_node = (Node.id node, List.rev !tables) :: !stats.tables_per_node })
    t.nodes;
  { !stats with tables_per_node = List.rev !stats.tables_per_node }

(* The bench's leased-vs-unleased A/B switch: flip every cohort between
   lease-served strong reads and per-read quorum guards at runtime, so the
   comparison runs over the same preloaded stores. *)
let set_lease_enabled t enabled =
  Array.iter
    (fun node ->
      List.iter
        (fun range ->
          match Node.cohort node ~range with
          | Some c -> Cohort.set_lease_disabled c (not enabled)
          | None -> ())
        (Node.ranges node))
    t.nodes

type read_serve_stats = {
  leased : int;
  guarded : int;
  lease_rejects : int;
  guard_fails : int;
  leader_timeline : int;
  follower_timeline : int;
  token_waits : int;
  token_redirects : int;
}

let read_serve_stats t =
  let acc =
    ref
      {
        leased = 0;
        guarded = 0;
        lease_rejects = 0;
        guard_fails = 0;
        leader_timeline = 0;
        follower_timeline = 0;
        token_waits = 0;
        token_redirects = 0;
      }
  in
  Array.iter
    (fun node ->
      List.iter
        (fun range ->
          match Node.cohort node ~range with
          | None -> ()
          | Some c ->
            let s = Cohort.read_stats c in
            let a = !acc in
            acc :=
              {
                leased = a.leased + s.Cohort.leased;
                guarded = a.guarded + s.Cohort.guarded;
                lease_rejects = a.lease_rejects + s.Cohort.lease_rejects;
                guard_fails = a.guard_fails + s.Cohort.guard_fails;
                leader_timeline = a.leader_timeline + s.Cohort.leader_timeline;
                follower_timeline = a.follower_timeline + s.Cohort.follower_timeline;
                token_waits = a.token_waits + s.Cohort.token_waits;
                token_redirects = a.token_redirects + s.Cohort.token_redirects;
              })
        (Node.ranges node))
    t.nodes;
  !acc

let write_phases t =
  Array.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc range ->
          match Node.cohort node ~range with
          | Some c -> Sim.Metrics.Write_phases.merge acc (Cohort.write_phases c)
          | None -> acc)
        acc (Node.ranges node))
    (Sim.Metrics.Write_phases.create ())
    t.nodes

let migrations_in_flight t =
  Array.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc range ->
          match Node.cohort node ~range with
          | Some c when Cohort.migrating c -> acc + 1
          | _ -> acc)
        acc (Node.ranges node))
    0 t.nodes

let is_ready t =
  List.for_all (fun r -> leader_of t ~range:r <> None) (Partition.range_ids t.partition)

let run_until_ready ?(timeout = Sim.Sim_time.sec 60) t =
  let deadline = Sim.Sim_time.add (Sim.Engine.now t.engine) timeout in
  let rec loop () =
    if is_ready t then true
    else if Sim.Sim_time.(Sim.Engine.now t.engine >= deadline) then false
    else begin
      Sim.Engine.run_for t.engine (Sim.Sim_time.ms 50);
      loop ()
    end
  in
  loop ()

let new_client t =
  let id = t.next_client in
  t.next_client <- id + 1;
  let zk = Coord.Zk_client.connect t.zk_server ~owner:(Printf.sprintf "client-%d" id) () in
  let lookup_leader ~range k =
    Coord.Zk_client.get_data zk
      ~path:(Printf.sprintf "/ranges/%d/leader" range)
      (function Ok data -> k (int_of_string_opt data) | Error _ -> k None)
  in
  let fetch_layout k =
    Coord.Zk_client.get_data zk ~path:"/layout" (function
      | Ok data -> k (Some data)
      | Error _ -> k None)
  in
  (* Each client routes on its own snapshot of the table; [Wrong_range]
     answers make it re-fetch /layout (§10). *)
  Client.create ~engine:t.engine ~net:t.net
    ~partition:(Partition.copy t.partition)
    ~config:t.config ~id ~trace:t.trace ~flight:t.flight ~lookup_leader ~fetch_layout ()

(* Presumed-abort recovery agent: when any leader cohort's sweep finds an
   in-doubt intent, a cluster-owned client asks the coordinator for the
   transaction's outcome (logging an abort there if none exists) and then
   resolves the stranded intents. One lazily created client serves the whole
   cluster — escalations are rare and idempotent. *)
let () =
  install_txn_escalation :=
    fun t ->
      let resolver = ref None in
      let client () =
        match !resolver with
        | Some c -> c
        | None ->
          let c = new_client t in
          resolver := Some c;
          c
      in
      let escalate ~txn ~anchor ~key =
        let c = client () in
        Client.txn_status c ~txn ~anchor (function
          | Ok (committed, ts) ->
            Client.txn_resolve c ~txn ~key ~commit:committed ~ts (fun _ -> ())
          | Error _ -> ())
      in
      Array.iter (fun n -> Node.set_txn_escalation n escalate) t.nodes

(* Administrative rebalancing entry points. Both are asynchronous: they ask
   the range's current leader to drive the protocol and return immediately;
   [false] means there was no open leader (or it was already busy) and the
   caller should retry later. *)
let request_join t ~range ~joiner ?remove () =
  match leader_of t ~range with
  | None -> false
  | Some n -> (
    match Node.cohort t.nodes.(n) ~range with
    | Some c -> Cohort.request_join c ~joiner ?remove ()
    | None -> false)

let request_split t ~range =
  match leader_of t ~range with
  | None -> false
  | Some n -> (
    match Node.cohort t.nodes.(n) ~range with
    | Some c -> Cohort.request_split c
    | None -> false)

let crash_node t i = Node.crash t.nodes.(i)
let restart_node t i = Node.restart t.nodes.(i)
let set_zk_reachable t i r = Node.set_zk_reachable t.nodes.(i) r
let failure_targets t = Array.to_list (Array.map Node.failure_target t.nodes)

let registered_nodes t =
  match Coord.Zk_server.children t.zk_server ~path:"/nodes" with
  | Ok kids -> List.filter_map (fun (name, _) -> int_of_string_opt name) kids
  | Error _ -> []

let pp_status ppf t =
  Format.fprintf ppf "cluster: %d nodes, %d ranges, registered live: [%s]@."
    (Array.length t.nodes)
    (Partition.ranges t.partition)
    (String.concat "," (List.map string_of_int (registered_nodes t)));
  List.iter
    (fun range ->
      let members = Partition.cohort t.partition ~range in
      let lo, hi = Partition.range_bounds t.partition ~range in
      Format.fprintf ppf "  range %d [%s,%s): " range lo hi;
      List.iter
        (fun n ->
          match Node.cohort t.nodes.(n) ~range with
          | Some c ->
            let role =
              if not (Node.alive t.nodes.(n)) then "down"
              else
                match Cohort.role c with
                | Cohort.Leader -> if Cohort.is_open c then "LEADER" else "leader(closed)"
                | Cohort.Follower -> if Cohort.is_learner c then "learner" else "follower"
                | Cohort.Candidate -> "candidate"
                | Cohort.Offline -> "offline"
            in
            Format.fprintf ppf "n%d=%s cmt=%s  " n role
              (Storage.Lsn.to_string (Cohort.cmt c))
          | None -> ())
        members;
      Format.fprintf ppf "@.")
    (Partition.range_ids t.partition)
