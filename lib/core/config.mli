(** Cluster and protocol configuration.

    Defaults mirror the paper's setup (§C): 10 nodes, 3-way replication, a
    dedicated magnetic logging disk per node, a 1-GbE rack network, a
    2-second Zookeeper session timeout, and a 1-second commit period. *)

type t = {
  nodes : int;
  replication : int;  (** N; 3 throughout the paper *)
  key_space : int;  (** keys are zero-padded integers in [0, key_space) *)
  commit_period : Sim.Sim_time.span;
      (** interval between asynchronous commit messages (§5) *)
  session_timeout : Sim.Sim_time.span;  (** Zookeeper failure-detection timeout *)
  disk : Sim.Disk_model.kind;  (** logging device *)
  wal_max_batch : int;  (** group-commit batch bound; 1 disables group commit *)
  pipeline_depth : int;
      (** max outstanding (not yet majority-committed) Propose batches per
          cohort; writes arriving while the window is full ship as one
          batched Propose when a slot frees. 0 = propose every write
          immediately, unbounded (historical behavior) *)
  ack_coalesce : Sim.Sim_time.span;
      (** follower ack coalescing window: defer cumulative Acks up to this
          span and send one per window. [span_zero] = ack per Propose *)
  piggyback_commits : bool;
      (** piggy-back commit messages on proposes (§D.1 optimisation) *)
  flush_bytes : int;  (** memtable flush threshold *)
  compaction_fanin : int;
      (** size-tier width: adjacent similar-sized SSTables per merge *)
  max_sstables : int;
      (** table-count safety valve forcing a full merge with tombstone GC *)
  row_cache_capacity : int;  (** LRU row-cache entries per store; 0 disables *)
  read_service_us : float;  (** CPU cost to serve a read that misses the cache *)
  read_cache_hit_service_us : float;  (** CPU cost of a row-cache hit *)
  read_probe_service_us : float;
      (** additional CPU cost per SSTable actually probed on a miss *)
  write_service_us : float;  (** leader CPU cost to process a write *)
  follower_write_service_us : float;  (** follower CPU cost per propose *)
  value_bytes : int;  (** payload size; the paper uses 4 KB *)
  client_timeout : Sim.Sim_time.span;  (** client retry timeout *)
  client_backoff_base : Sim.Sim_time.span;
      (** first retry delay; doubles per attempt (jittered) *)
  client_backoff_max : Sim.Sim_time.span;  (** retry delay cap *)
  client_max_attempts : int;  (** attempts before reporting [Unavailable] *)
  metrics_sample_period : Sim.Sim_time.span;
      (** gauge sampling interval for the cluster metrics registry *)
  trace_capacity : int;  (** trace ring-buffer capacity (events retained) *)
  outlier_top_k : int;
      (** flight recorder: slowest requests pinned per window (0 disables) *)
  outlier_window : Sim.Sim_time.span;
      (** flight recorder: window over which the top-K slowest are tracked *)
  xfer_bytes_per_sec : float;
      (** snapshot-transfer bandwidth per node (replica migration) *)
  snapshot_chunk_bytes : int;  (** snapshot ship chunk size *)
  learner_timeout : Sim.Sim_time.span;
      (** a learner replica never promoted within this span retires itself *)
  migration_timeout : Sim.Sim_time.span;
      (** leader-side watchdog: abort a migration stuck in catch-up *)
  lease_fraction : float;
      (** leader lease length as a fraction of [session_timeout], anchored to
          the leader's last successful ZK contact; must be < 0.5 (the ZK
          client self-expires after half the timeout of silence, so the lease
          lapses strictly before a replacement leader can exist). [<= 0.]
          disables leases: strong reads then pay a per-read quorum guard *)
  read_guard_service_us : float;
      (** CPU cost per read-index guard message (unleased strong reads) *)
  read_lsn_wait : Sim.Sim_time.span;
      (** follower staleness bound for token timeline reads before
          redirecting the client to the leader *)
  txn_sweep_period : Sim.Sim_time.span;
      (** leader scan period for in-doubt intents (presumed-abort recovery) *)
  txn_indoubt_after : Sim.Sim_time.span;
      (** unresolved-intent age at which the sweep escalates it *)
  txn_snap_retries : int;
      (** snapshot-read retries against an unresolved intent before the
          transaction aborts *)
  seed : int;
}

val default : t

val with_nodes : int -> t -> t

val with_disk : Sim.Disk_model.kind -> t -> t

val with_commit_period : Sim.Sim_time.span -> t -> t

val majority : t -> int
(** Quorum size: [replication / 2 + 1]. *)
