type error = Client_error of Client.error | Deadline

let await engine ?(deadline = Sim.Sim_time.sec 60) cell =
  let stop = Sim.Sim_time.add (Sim.Engine.now engine) deadline in
  let rec loop () =
    match !cell with
    | Some v -> Ok v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= stop) then Error Deadline
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let lift = function
  | Ok (Ok v) -> Ok v
  | Ok (Error e) -> Error (Client_error e)
  | Error e -> Error e

let get engine client ?(consistent = true) ?deadline key col =
  let cell = ref None in
  Client.get client ~consistent key col (fun r -> cell := Some r);
  lift (await engine ?deadline cell)

let put engine client ?deadline key col ~value =
  let cell = ref None in
  Client.put client key col ~value (fun r -> cell := Some r);
  lift (await engine ?deadline cell)

let delete engine client ?deadline key col =
  let cell = ref None in
  Client.delete client key col (fun r -> cell := Some r);
  lift (await engine ?deadline cell)

let conditional_put engine client ?deadline key col ~value ~expected =
  let cell = ref None in
  Client.conditional_put client key col ~value ~expected (fun r -> cell := Some r);
  lift (await engine ?deadline cell)

let transact_put engine client ?deadline rows =
  let cell = ref None in
  Client.transact_put client rows (fun r -> cell := Some r);
  lift (await engine ?deadline cell)

let scan engine client ?(consistent = true) ?limit ?deadline ~start_key ~end_key () =
  let cell = ref None in
  Client.scan client ~consistent ~start_key ~end_key ?limit (fun r -> cell := Some r);
  lift (await engine ?deadline cell)

let pp_error ppf = function
  | Client_error e -> Client.pp_error ppf e
  | Deadline -> Format.pp_print_string ppf "simulated-time deadline exceeded"
