(** Synchronous convenience wrappers over the asynchronous {!Client} API.

    The client API is callback-based because everything runs inside the
    simulation's event loop. For scripts, examples, and tests it is often
    clearer to block: these helpers drive the engine until the operation's
    callback fires (or a simulated-time deadline passes), then return the
    result directly. Only use them from outside the event loop — calling one
    from inside an engine callback would re-enter the scheduler. *)

type error =
  | Client_error of Client.error
  | Deadline  (** simulated-time deadline passed without a response *)

val get :
  Sim.Engine.t -> Client.t -> ?consistent:bool -> ?deadline:Sim.Sim_time.span ->
  Storage.Row.key -> Storage.Row.column -> (Client.read_result, error) result

val put :
  Sim.Engine.t -> Client.t -> ?deadline:Sim.Sim_time.span ->
  Storage.Row.key -> Storage.Row.column -> value:string -> (unit, error) result

val delete :
  Sim.Engine.t -> Client.t -> ?deadline:Sim.Sim_time.span ->
  Storage.Row.key -> Storage.Row.column -> (unit, error) result

val conditional_put :
  Sim.Engine.t -> Client.t -> ?deadline:Sim.Sim_time.span ->
  Storage.Row.key -> Storage.Row.column -> value:string -> expected:int ->
  (unit, error) result

val transact_put :
  Sim.Engine.t -> Client.t -> ?deadline:Sim.Sim_time.span ->
  (Storage.Row.key * Storage.Row.column * string) list -> (unit, error) result

val scan :
  Sim.Engine.t -> Client.t -> ?consistent:bool -> ?limit:int ->
  ?deadline:Sim.Sim_time.span ->
  start_key:Storage.Row.key -> end_key:Storage.Row.key -> unit ->
  ((Storage.Row.key * (Storage.Row.column * Client.read_result) list) list, error) result

val await : Sim.Engine.t -> ?deadline:Sim.Sim_time.span -> 'a option ref -> ('a, error) result
(** The underlying primitive: drive the engine in small steps until the cell
    fills. Deadline defaults to 60 simulated seconds. *)

val pp_error : Format.formatter -> error -> unit
