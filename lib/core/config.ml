type t = {
  nodes : int;
  replication : int;
  key_space : int;
  commit_period : Sim.Sim_time.span;
  session_timeout : Sim.Sim_time.span;
  disk : Sim.Disk_model.kind;
  wal_max_batch : int;
  pipeline_depth : int;
      (** Max outstanding (not yet majority-committed) Propose batches per
          cohort. Writes arriving while the window is full are held back and
          shipped as one batched Propose when a slot frees — deeper pipelines
          trade batching for per-write latency ("Paxos in the Cloud" §5).
          [0] = propose every write immediately, unbounded (historical
          behavior). *)
  ack_coalesce : Sim.Sim_time.span;
      (** Follower-side ack coalescing: instead of answering every Propose
          with its own cumulative Ack, defer up to this span and send one Ack
          covering everything forced meanwhile. [span_zero] = ack per Propose
          (historical behavior). *)
  piggyback_commits : bool;
  flush_bytes : int;
  compaction_fanin : int;
  max_sstables : int;
  row_cache_capacity : int;
  read_service_us : float;
  read_cache_hit_service_us : float;
  read_probe_service_us : float;
  write_service_us : float;
  follower_write_service_us : float;
  value_bytes : int;
  client_timeout : Sim.Sim_time.span;
  client_backoff_base : Sim.Sim_time.span;
  client_backoff_max : Sim.Sim_time.span;
  client_max_attempts : int;
  metrics_sample_period : Sim.Sim_time.span;
  trace_capacity : int;
  outlier_top_k : int;
  outlier_window : Sim.Sim_time.span;
  xfer_bytes_per_sec : float;
  snapshot_chunk_bytes : int;
  learner_timeout : Sim.Sim_time.span;
  migration_timeout : Sim.Sim_time.span;
  lease_fraction : float;
      (** Leader lease length as a fraction of [session_timeout], anchored to
          the leader's last successful ZK contact. Must be < 0.5: the ZK
          client declares its own session dead once it has been silent for
          half the timeout, so any lease shorter than that lapses strictly
          before a replacement leader can be elected. [<= 0.] disables leases
          and falls back to a per-read quorum guard. *)
  read_guard_service_us : float;
      (** CPU cost on leader and follower to process one read-index guard
          message (the unleased strong-read quorum round). *)
  read_lsn_wait : Sim.Sim_time.span;
      (** Follower-side staleness bound for token (read-your-writes) timeline
          reads: how long a follower parks a read waiting for its applied LSN
          to reach the client's token before redirecting to the leader. *)
  txn_sweep_period : Sim.Sim_time.span;
      (** How often a leader scans its store for in-doubt transaction intents
          (presumed-abort recovery). *)
  txn_indoubt_after : Sim.Sim_time.span;
      (** Age at which an unresolved intent counts as in-doubt: old enough
          that a live coordinator client would have resolved it already. *)
  txn_snap_retries : int;
      (** How many times a snapshot reader retries a [Snap_blocked] read
          (an unresolved intent at or below its fence) before giving up and
          aborting the transaction. *)
  seed : int;
}

let default =
  {
    nodes = 10;
    replication = 3;
    key_space = 100_000;
    commit_period = Sim.Sim_time.sec 1;
    session_timeout = Sim.Sim_time.sec 2;
    disk = Sim.Disk_model.Magnetic;
    wal_max_batch = 24;
    pipeline_depth = 0;
    ack_coalesce = Sim.Sim_time.span_zero;
    piggyback_commits = false;
    flush_bytes = 4 * 1024 * 1024;
    compaction_fanin = 4;
    max_sstables = 16;
    row_cache_capacity = 4096;
    read_service_us = 700.0;
    read_cache_hit_service_us = 40.0;
    read_probe_service_us = 30.0;
    write_service_us = 50.0;
    follower_write_service_us = 30.0;
    value_bytes = 4096;
    client_timeout = Sim.Sim_time.ms 400;
    client_backoff_base = Sim.Sim_time.ms 2;
    client_backoff_max = Sim.Sim_time.ms 400;
    client_max_attempts = 60;
    metrics_sample_period = Sim.Sim_time.ms 100;
    trace_capacity = Sim.Trace.default_capacity;
    outlier_top_k = 5;
    outlier_window = Sim.Sim_time.sec 1;
    xfer_bytes_per_sec = 100e6;
    snapshot_chunk_bytes = 512 * 1024;
    learner_timeout = Sim.Sim_time.sec 30;
    migration_timeout = Sim.Sim_time.sec 10;
    lease_fraction = 0.4;
    read_guard_service_us = 20.0;
    read_lsn_wait = Sim.Sim_time.ms 50;
    txn_sweep_period = Sim.Sim_time.sec 2;
    txn_indoubt_after = Sim.Sim_time.sec 4;
    txn_snap_retries = 8;
    seed = 42;
  }

let with_nodes nodes t = { t with nodes }
let with_disk disk t = { t with disk }
let with_commit_period commit_period t = { t with commit_period }
let majority t = (t.replication / 2) + 1
