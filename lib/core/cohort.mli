(** The per-range replica state machine — the paper's core contribution.

    One [t] lives on each node of a key range's cohort and plays one of the
    roles leader / follower / candidate. It implements:

    - the steady-state quorum phase of Spinnaker's Multi-Paxos variant
      (Figure 4): leader log force in parallel with propose messages,
      commit after one follower ack, periodic asynchronous commit messages;
    - leader election through the coordination service (Figure 7), with the
      max-last-LSN rule that guarantees no committed write is lost;
    - leader takeover (Figure 6): catch followers up to l.cmt, wait for a
      quorum, re-propose the unresolved writes in (l.cmt, l.lst], then open
      the cohort with a fresh epoch;
    - follower recovery (§6.1): catch-up from the leader's log or SSTables,
      with logical truncation of discarded records via skipped-LSN lists. *)

type role = Offline | Candidate | Leader | Follower

type ctx = {
  engine : Sim.Engine.t;
  node_id : int;
  range : int;
  members : int list;  (** the cohort's nodes, this one included *)
  config : Config.t;
  store : Storage.Store.t;
  wal : Storage.Wal.t;
  cpu : Sim.Resource.t;
  trace : Sim.Trace.t;
  send : dst:int -> Message.t -> unit;
  reply : client:int -> request_id:int -> Message.client_reply -> unit;
  zk : unit -> Coord.Zk_client.t;  (** current session (changes on restart) *)
  incarnation : unit -> int;  (** node incarnation; timers check it *)
  routes_here : Storage.Row.key -> bool;
      (** whether a key belongs to this cohort's range (transaction scoping) *)
  range_bounds : Storage.Row.key * Storage.Row.key;
      (** [start, end) of this cohort's key range (scan clamping) *)
}

type t

val create : ctx -> t

val role : t -> role

val leader_id : t -> int option
(** Current leader as known to this replica. *)

val epoch : t -> int

val cmt : t -> Storage.Lsn.t
(** Last committed LSN. *)

val lst : t -> Storage.Lsn.t
(** Last LSN in the log. *)

val is_open : t -> bool
(** Leader-side: accepting writes (post-takeover). *)

val pending_writes : t -> int
(** Commit-queue length. *)

val reply_cache_size : t -> int
(** Entries in the duplicate-suppression reply cache. *)

val store : t -> Storage.Store.t
(** The replica's storage engine (gauge registration and inspection). *)

(** {2 Lifecycle} *)

val startup : t -> unit
(** Fresh boot: run leader election (Figure 7). *)

val crash : t -> unit

val wipe_storage : t -> unit
(** Disk failure: lose SSTables, log slice, and skipped-LSN list. A later
    {!rejoin} recovers entirely from the leader's catch-up (§6.1). *)

val rejoin : t -> unit
(** After node restart: local recovery, then either catch up with the
    current leader or trigger an election. *)

val zk_session_expired : t -> unit
(** The node's coordination-service session expired (§7): a leader steps
    down immediately (its ephemeral leader znode is gone, so a new leader
    may be elected on the other side of the partition at any moment);
    followers and candidates drop their now-dead watches and wait for the
    node layer to re-establish a session. *)

val zk_session_renewed : t -> unit
(** A fresh coordination-service session is up: re-read the leader znode
    and fall back in line — follow the current leader, or run an election
    if there is none. *)

(** {2 Inspection} (tests and examples) *)

val read_local : t -> Storage.Row.coord -> Storage.Row.cell option
(** This replica's committed view of a coordinate (what a timeline read
    served here would return). *)

val skipped_lsns : t -> Storage.Lsn.t list
(** The replica's skipped-LSN list (§6.1.1), ascending. *)

val write_phases : t -> Sim.Metrics.Write_phases.t
(** Per-phase latency breakdown (queue / force / replication / apply) of
    every write this cohort led to commit, accumulated across the cohort's
    lifetime (crashes clear in-flight tracking but keep the samples). *)

(** {2 Event handling} (called by the node's dispatcher) *)

val handle_client : t -> client:int -> request_id:int -> Message.client_op -> unit

val handle_peer : t -> src:int -> Message.t -> unit
