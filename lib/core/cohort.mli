(** The per-range replica state machine — the paper's core contribution.

    One [t] lives on each node of a key range's cohort and plays one of the
    roles leader / follower / candidate. It implements:

    - the steady-state quorum phase of Spinnaker's Multi-Paxos variant
      (Figure 4): leader log force in parallel with propose messages,
      commit after one follower ack, periodic asynchronous commit messages;
    - leader election through the coordination service (Figure 7), with the
      max-last-LSN rule that guarantees no committed write is lost;
    - leader takeover (Figure 6): catch followers up to l.cmt, wait for a
      quorum, re-propose the unresolved writes in (l.cmt, l.lst], then open
      the cohort with a fresh epoch;
    - follower recovery (§6.1): catch-up from the leader's log or SSTables,
      with logical truncation of discarded records via skipped-LSN lists;
    - live membership change (§10): replica migration — snapshot ship plus
      WAL catch-up to a learner, then a Paxos-replicated [Cohort_change]
      record that atomically swaps the joiner in — and range splits via a
      logged [Split] record, both children serving off shared SSTables. *)

type role = Offline | Candidate | Leader | Follower

type ctx = {
  engine : Sim.Engine.t;
  node_id : int;
  range : int;
  config : Config.t;
  store : Storage.Store.t;
  wal : Storage.Wal.t;
  cpu : Sim.Resource.t;
  trace : Sim.Trace.t;
  send : ?trace_id:int -> dst:int -> Message.t -> unit;
      (** [trace_id] tags the message's network-transit span so the causal
          analyzer can stitch the hop into the owning request's DAG *)
  reply : client:int -> request_id:int -> Message.client_reply -> unit;
  zk : unit -> Coord.Zk_client.t;  (** current session (changes on restart) *)
  incarnation : unit -> int;  (** node incarnation; timers check it *)
  routes_here : Storage.Row.key -> bool;
      (** whether a key belongs to this cohort's range (transaction scoping);
          consulted again at write time — the layout may have moved *)
  range_bounds : unit -> Storage.Row.key * Storage.Row.key;
      (** current [start, end) of this cohort's key range (scan clamping);
          a function because a range split narrows it *)
  members : unit -> int list;
      (** the cohort's current membership under the live routing table *)
  xfer : Sim.Resource.t;
      (** the node's bulk-transfer link; snapshot chunks stream through it at
          [Config.xfer_bytes_per_sec] so migration bandwidth is modelled *)
  apply_meta : op:Storage.Log_record.op -> leader:bool -> unit;
      (** node-level side effects of a committed metadata record (routing
          table update, child-cohort spawn, layout publication) *)
  retire_self : unit -> unit;
      (** drop this cohort from the hosting node (migration moved it away,
          or a learner's migration aborted) *)
  resolve_in_doubt : txn:Storage.Row.key -> anchor:Storage.Row.key -> key:Storage.Row.key -> unit;
      (** node-level escalation for the presumed-abort sweep: query the
          coordinator cohort owning [anchor] for [txn]'s outcome and resolve
          the in-doubt intents at [key]'s range (a no-op outside a cluster) *)
}

type t

val create : ctx -> t

val role : t -> role

val leader_id : t -> int option
(** Current leader as known to this replica. *)

val epoch : t -> int

val cmt : t -> Storage.Lsn.t
(** Last committed LSN. *)

val lst : t -> Storage.Lsn.t
(** Last LSN in the log. *)

val is_open : t -> bool
(** Leader-side: accepting writes (post-takeover). *)

val pending_writes : t -> int
(** Commit-queue length. *)

val reply_cache_size : t -> int
(** Entries in the duplicate-suppression reply cache. *)

val store : t -> Storage.Store.t
(** The replica's storage engine (gauge registration and inspection). *)

val is_learner : t -> bool
(** A joining replica not yet swapped into the membership: receives the
    snapshot and catch-up but cannot vote, and its acks do not count. *)

val migrating : t -> bool
(** Leader-side: a replica migration is in flight on this cohort. *)

val chaos_ack_past_holes : bool ref
(** Test-only: re-enable the pre-fix follower bug of acking past a
    loss-induced log hole (and advancing [lst] over it), so chaos harnesses
    have a reproducible planted lost-acked-write failure to shrink. Never
    set outside tests. *)

(** {2 Read path: leases and follower reads} *)

type read_stats = {
  mutable leased : int;  (** strong reads served locally under a live lease *)
  mutable guarded : int;  (** strong reads served via a read-index quorum round *)
  mutable lease_rejects : int;  (** strong reads refused because the lease lapsed *)
  mutable guard_fails : int;  (** guard rounds abandoned without a quorum *)
  mutable leader_timeline : int;  (** timeline reads served by the leader *)
  mutable follower_timeline : int;  (** timeline reads served by a follower *)
  mutable token_waits : int;  (** timeline reads parked for cmt to reach a token *)
  mutable token_redirects : int;  (** parked reads that hit the staleness bound *)
}

val read_stats : t -> read_stats
(** Read-path counters, accumulated across the cohort's lifetime (crashes do
    not reset them — they feed bench series like the write-phase samples). *)

val set_lease_disabled : t -> bool -> unit
(** Force the unleased (per-read quorum guard) strong-read path even with
    [Config.lease_fraction] > 0 — the bench's leased-vs-unleased A/B switch,
    flippable at runtime without rebuilding the cluster. *)

val lease_valid : t -> bool
(** Whether this replica currently holds a live leader lease: its ZK session
    is alive and the last successful contact is fresher than
    [Config.lease_fraction] of the session timeout. Meaningful on a leader;
    tests use it to probe the fencing window. *)

(** {2 Membership change and splits (§10)} *)

val request_join : t -> joiner:int -> ?remove:int -> unit -> bool
(** Leader-only admin entry point: bootstrap node [joiner] into the cohort
    (snapshot ship, WAL catch-up, then a replicated [Cohort_change]),
    retiring member [remove] once the joiner is in. Returns [false] if this
    replica is not an open leader, a migration or split is already running,
    the joiner is already a member, or [remove] is invalid (not a member,
    the leader itself, or the joiner). The migration aborts cleanly — layout
    untouched — if the joiner stops responding. *)

val request_split : t -> bool
(** Leader-only admin entry point: split the range at the store's median key
    into parent [lo, at) and a child [at, hi) with the same membership. The
    child's id comes from the coordination service's /next_range counter and
    its election znodes are seeded with the parent's epoch before the split
    record is logged; both children serve immediately off shared SSTables.
    Returns [false] if not an open leader, busy, or the store is too small
    to yield an interior split point. *)

val start_learner : t -> leader:int -> unit
(** Called by the node layer when a snapshot chunk arrives for a range it
    does not host: turn this fresh cohort into a learner replica fed by
    [leader]. Retires itself if never promoted within
    [Config.learner_timeout]. *)

val retire : t -> unit
(** The node no longer hosts this range: fail queued writers, release any
    held election znodes, and go Offline (guarded callbacks die). *)

(** {2 Lifecycle} *)

val startup : t -> unit
(** Fresh boot: run leader election (Figure 7). *)

val crash : t -> unit

val wipe_storage : t -> unit
(** Disk failure: lose SSTables, log slice, and skipped-LSN list. A later
    {!rejoin} recovers entirely from the leader's catch-up (§6.1). *)

val rejoin : t -> unit
(** After node restart: local recovery, then either catch up with the
    current leader or trigger an election. *)

val zk_session_expired : t -> unit
(** The node's coordination-service session expired (§7): a leader steps
    down immediately (its ephemeral leader znode is gone, so a new leader
    may be elected on the other side of the partition at any moment);
    followers and candidates drop their now-dead watches and wait for the
    node layer to re-establish a session. *)

val zk_session_renewed : t -> unit
(** A fresh coordination-service session is up: re-read the leader znode
    and fall back in line — follow the current leader, or run an election
    if there is none. *)

(** {2 Inspection} (tests and examples) *)

val read_local : t -> Storage.Row.coord -> Storage.Row.cell option
(** This replica's committed view of a coordinate (what a timeline read
    served here would return). *)

val skipped_lsns : t -> Storage.Lsn.t list
(** The replica's skipped-LSN list (§6.1.1), ascending. *)

val write_phases : t -> Sim.Metrics.Write_phases.t
(** Per-phase latency breakdown (queue / force / replication / apply, plus
    measured per-hop network transit) of every write this cohort led to
    commit, accumulated across the cohort's lifetime (crashes clear in-flight
    tracking but keep the samples). *)

(** {2 Event handling} (called by the node's dispatcher) *)

val handle_client : t -> client:int -> request_id:int -> Message.client_op -> unit

val handle_peer : t -> src:int -> sent_at:Sim.Sim_time.t -> Message.t -> unit
(** [sent_at] is the envelope's send instant ({!Sim.Network.envelope}); the
    cohort samples arrival − [sent_at] into the transit phase histogram for
    Proposes (follower side) and Acks (leader side). *)
