type entry = {
  lsn : Storage.Lsn.t;
  op : Storage.Log_record.op;
  timestamp : int;
  origin : (int * int) option;
  mutable forced : bool;
  mutable ackers : int list;
  reply : (unit -> unit) option;
}

module Lsn_map = Map.Make (struct
  type t = Storage.Lsn.t

  let compare = Storage.Lsn.compare
end)

(* The queue proper is the LSN-ordered map. The rest are incremental indexes
   that keep per-write work O(log n): under a deep replication pipeline
   thousands of entries sit here at once, and full-queue walks on every
   version lookup, force completion and cumulative ack made the leader
   quadratic in its own backlog (the fig11-at-scale run spent ~40% of its
   wall clock inside [latest_version_for]). Each index mirrors [entries]
   exactly; semantics are unchanged, only the walks are memoized. *)
type t = {
  mutable entries : entry Lsn_map.t;
  mutable unforced : entry Lsn_map.t;
      (* the [forced = false] subset: a force-upto visits each entry once
         over its lifetime instead of rescanning the already-forced prefix *)
  versions : (Storage.Row.coord, (Storage.Lsn.t * int) list) Hashtbl.t;
      (* coord -> pending (lsn, version), newest LSN first — the overlay the
         leader consults when assigning the next version *)
  acked_upto : (int, Storage.Lsn.t) Hashtbl.t;
      (* follower -> highest LSN whose cumulative ack has been APPLIED to
         entry ack lists; the next ack walks only (applied, upto] *)
}

let create () =
  {
    entries = Lsn_map.empty;
    unforced = Lsn_map.empty;
    versions = Hashtbl.create 64;
    acked_upto = Hashtbl.create 8;
  }

let rec iter_writes f = function
  | Storage.Log_record.Put { key; col; version; _ } -> f (key, col) version
  | Storage.Log_record.Delete { key; col; version } -> f (key, col) version
  | Storage.Log_record.Batch ops -> List.iter (iter_writes f) ops
  | Storage.Log_record.Txn_resolve { commit = true; writes; _ } ->
    (* A committing resolve installs final data cells with real versions;
       they must participate in the pending-version overlay like any write.
       Intents and decisions live in system columns with version 0 and never
       feed version assignment. *)
    List.iter (fun (key, col, _, version) -> f (key, col) version) writes
  | Storage.Log_record.Install_cell { coord; cell } -> f coord cell.Storage.Row.version
  | Storage.Log_record.Txn_resolve { commit = false; _ }
  | Storage.Log_record.Txn_prepare _ | Storage.Log_record.Txn_decision _
  | Storage.Log_record.Cohort_change _ | Storage.Log_record.Split _ ->
    ()

let index_add t lsn op =
  iter_writes
    (fun coord version ->
      (* Newest first; a tie (two writes to one coord in one batch) keeps the
         later op in front, matching the last-match-wins fold this replaces. *)
      let rec ins = function
        | [] -> [ (lsn, version) ]
        | ((l, _) :: _) as rest when Storage.Lsn.(l <= lsn) -> (lsn, version) :: rest
        | hd :: tl -> hd :: ins tl
      in
      let cur = match Hashtbl.find_opt t.versions coord with None -> [] | Some l -> l in
      Hashtbl.replace t.versions coord (ins cur))
    op

let index_remove t (e : entry) =
  iter_writes
    (fun coord _ ->
      match Hashtbl.find_opt t.versions coord with
      | None -> ()
      | Some l -> (
        match List.filter (fun (l', _) -> not (Storage.Lsn.equal l' e.lsn)) l with
        | [] -> Hashtbl.remove t.versions coord
        | l -> Hashtbl.replace t.versions coord l))
    e.op

(* Every removal funnels through here so the indexes never drift. *)
let remove_entry t (e : entry) =
  t.entries <- Lsn_map.remove e.lsn t.entries;
  if not e.forced then t.unforced <- Lsn_map.remove e.lsn t.unforced;
  index_remove t e

let add t ~lsn ~op ~timestamp ?origin ?reply () =
  let entry = { lsn; op; timestamp; origin; forced = false; ackers = []; reply } in
  t.entries <- Lsn_map.add lsn entry t.entries;
  t.unforced <- Lsn_map.add lsn entry t.unforced;
  index_add t lsn op;
  (* A takeover rebuild can re-introduce an LSN at or below a follower's
     applied-ack point (the previous incarnation was acked, then dropped on
     leader change). Acks must be earned by the current incarnation: rewind
     that follower's applied point so its next cumulative ack re-walks the
     range — re-marking already-acked entries is idempotent. *)
  let rewind =
    Hashtbl.fold
      (fun from applied acc -> if Storage.Lsn.(lsn <= applied) then from :: acc else acc)
      t.acked_upto []
  in
  List.iter (fun from -> Hashtbl.replace t.acked_upto from Storage.Lsn.zero) rewind

let mem t lsn = Lsn_map.mem lsn t.entries
let is_empty t = Lsn_map.is_empty t.entries
let length t = Lsn_map.cardinal t.entries
let min_lsn t = Option.map fst (Lsn_map.min_binding_opt t.entries)
let max_lsn t = Option.map fst (Lsn_map.max_binding_opt t.entries)

let mark_forced_upto t upto =
  let rec go () =
    match Lsn_map.min_binding_opt t.unforced with
    | Some (lsn, e) when Storage.Lsn.(lsn <= upto) ->
      e.forced <- true;
      t.unforced <- Lsn_map.remove lsn t.unforced;
      go ()
    | _ -> ()
  in
  go ()

let mark_forced t lsn =
  match Lsn_map.find_opt lsn t.entries with
  | Some e ->
    if not e.forced then begin
      e.forced <- true;
      t.unforced <- Lsn_map.remove lsn t.unforced
    end
  | None -> ()

let origin_at t lsn =
  match Lsn_map.find_opt lsn t.entries with Some e -> e.origin | None -> None

let add_ack t ~from ~upto =
  let applied =
    match Hashtbl.find_opt t.acked_upto from with
    | Some l -> l
    | None -> Storage.Lsn.zero
  in
  if Storage.Lsn.(upto > applied) then begin
    let rec go seq =
      match seq () with
      | Seq.Cons ((lsn, e), rest) when Storage.Lsn.(lsn <= upto) ->
        if not (List.mem from e.ackers) then e.ackers <- from :: e.ackers;
        go rest
      | _ -> ()
    in
    go
      (Lsn_map.to_seq_from applied t.entries
      |> Seq.drop_while (fun (l, _) -> Storage.Lsn.(l <= applied)));
    Hashtbl.replace t.acked_upto from upto
  end

let pop_committable t ~acks_needed =
  let rec go acc =
    match Lsn_map.min_binding_opt t.entries with
    | Some (_, e) when e.forced && List.length e.ackers >= acks_needed ->
      remove_entry t e;
      go (e :: acc)
    | _ -> List.rev acc
  in
  go []

let pop_upto t upto =
  let rec go acc =
    match Lsn_map.min_binding_opt t.entries with
    | Some (lsn, e) when Storage.Lsn.(lsn <= upto) ->
      remove_entry t e;
      go (e :: acc)
    | _ -> List.rev acc
  in
  go []

(* Sequence numbers are globally contiguous per range (a new leader continues
   seq from its last LSN), so the committed prefix always has consecutive
   seqs. A hole in the seq chain means a propose was lost in flight: only the
   contiguous prefix may be applied. *)
let pop_contiguous t ~from ~upto =
  let rec go prev_seq acc =
    match Lsn_map.min_binding_opt t.entries with
    | Some (lsn, e)
      when Storage.Lsn.(lsn <= upto) && lsn.Storage.Lsn.seq = prev_seq + 1 ->
      remove_entry t e;
      go lsn.Storage.Lsn.seq (e :: acc)
    | _ -> List.rev acc
  in
  go from.Storage.Lsn.seq []

(* The chain must start at the map's first binding — a stranded entry at or
   below [from] honestly blocks acking, as before; the lazy sequence just
   avoids materializing the whole map to find the (usually short) chain. *)
let contiguous_forced_upto t ~from =
  let rec go prev_seq best seq =
    match seq () with
    | Seq.Cons ((lsn, e), rest) when lsn.Storage.Lsn.seq = prev_seq + 1 && e.forced ->
      go lsn.Storage.Lsn.seq (Some lsn) rest
    | _ -> best
  in
  go from.Storage.Lsn.seq None (Lsn_map.to_seq t.entries)

let drop_above t lsn =
  let dropped =
    Lsn_map.fold
      (fun l e acc -> if Storage.Lsn.(l <= lsn) then acc else e :: acc)
      t.entries []
  in
  List.iter (fun e -> remove_entry t e) dropped;
  List.rev dropped

let latest_version_for t coord =
  match Hashtbl.find_opt t.versions coord with
  | Some ((_, v) :: _) -> Some v
  | _ -> None

let to_list t = List.map snd (Lsn_map.bindings t.entries)
