type entry = {
  lsn : Storage.Lsn.t;
  op : Storage.Log_record.op;
  timestamp : int;
  origin : (int * int) option;
  mutable forced : bool;
  mutable ackers : int list;
  reply : (unit -> unit) option;
}

module Lsn_map = Map.Make (struct
  type t = Storage.Lsn.t

  let compare = Storage.Lsn.compare
end)

type t = { mutable entries : entry Lsn_map.t }

let create () = { entries = Lsn_map.empty }

let add t ~lsn ~op ~timestamp ?origin ?reply () =
  let entry = { lsn; op; timestamp; origin; forced = false; ackers = []; reply } in
  t.entries <- Lsn_map.add lsn entry t.entries

let mem t lsn = Lsn_map.mem lsn t.entries
let is_empty t = Lsn_map.is_empty t.entries
let length t = Lsn_map.cardinal t.entries
let min_lsn t = Option.map fst (Lsn_map.min_binding_opt t.entries)
let max_lsn t = Option.map fst (Lsn_map.max_binding_opt t.entries)

(* Visit entries with lsn <= upto, stopping at the first one beyond it — the
   map's ascending lazy sequence makes this O(log n + visited) instead of a
   full-map walk on every force/ack. *)
let iter_upto t ~upto f =
  let rec go seq =
    match seq () with
    | Seq.Cons ((lsn, e), rest) when Storage.Lsn.(lsn <= upto) ->
      f e;
      go rest
    | _ -> ()
  in
  go (Lsn_map.to_seq t.entries)

let mark_forced_upto t upto = iter_upto t ~upto (fun e -> e.forced <- true)

let mark_forced t lsn =
  match Lsn_map.find_opt lsn t.entries with
  | Some e -> e.forced <- true
  | None -> ()

let add_ack t ~from ~upto =
  iter_upto t ~upto (fun e ->
      if not (List.mem from e.ackers) then e.ackers <- from :: e.ackers)

let pop_committable t ~acks_needed =
  let rec go acc =
    match Lsn_map.min_binding_opt t.entries with
    | Some (lsn, e) when e.forced && List.length e.ackers >= acks_needed ->
      t.entries <- Lsn_map.remove lsn t.entries;
      go (e :: acc)
    | _ -> List.rev acc
  in
  go []

let pop_upto t upto =
  let rec go acc =
    match Lsn_map.min_binding_opt t.entries with
    | Some (lsn, e) when Storage.Lsn.(lsn <= upto) ->
      t.entries <- Lsn_map.remove lsn t.entries;
      go (e :: acc)
    | _ -> List.rev acc
  in
  go []

(* Sequence numbers are globally contiguous per range (a new leader continues
   seq from its last LSN), so the committed prefix always has consecutive
   seqs. A hole in the seq chain means a propose was lost in flight: only the
   contiguous prefix may be applied. *)
let pop_contiguous t ~from ~upto =
  let rec go prev_seq acc =
    match Lsn_map.min_binding_opt t.entries with
    | Some (lsn, e)
      when Storage.Lsn.(lsn <= upto) && lsn.Storage.Lsn.seq = prev_seq + 1 ->
      t.entries <- Lsn_map.remove lsn t.entries;
      go lsn.Storage.Lsn.seq (e :: acc)
    | _ -> List.rev acc
  in
  go from.Storage.Lsn.seq []

let contiguous_forced_upto t ~from =
  let rec go prev_seq best = function
    | (lsn, e) :: rest when lsn.Storage.Lsn.seq = prev_seq + 1 && e.forced ->
      go lsn.Storage.Lsn.seq (Some lsn) rest
    | _ -> best
  in
  go from.Storage.Lsn.seq None (Lsn_map.bindings t.entries)

let drop_above t lsn =
  let keep, dropped = Lsn_map.partition (fun l _ -> Storage.Lsn.(l <= lsn)) t.entries in
  t.entries <- keep;
  List.map snd (Lsn_map.bindings dropped)

let latest_version_for t coord =
  Lsn_map.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc op ->
          if Storage.Row.equal_coord (Storage.Log_record.op_coord op) coord then
            Some (Storage.Log_record.op_version op)
          else acc)
        acc
        (Storage.Log_record.flatten e.op))
    t.entries None

let to_list t = List.map snd (Lsn_map.bindings t.entries)
