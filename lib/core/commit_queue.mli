(** The commit queue (§4.1, §5): a main-memory structure tracking writes that
    have been proposed but not yet committed, ordered by LSN.

    On the leader an entry commits once its log record is forced locally and
    at least one follower has acked; commits happen strictly in LSN order. On
    a follower entries wait for the leader's (possibly piggy-backed)
    asynchronous commit message. *)

type entry = {
  lsn : Storage.Lsn.t;
  op : Storage.Log_record.op;
  timestamp : int;
  origin : (int * int) option;
      (** issuing (client, request id), for duplicate suppression *)
  mutable forced : bool;  (** local log record forced to disk *)
  mutable ackers : int list;  (** follower node ids that acked *)
  reply : (unit -> unit) option;
      (** fires when the entry commits (sends the client response); only the
          last entry of a multi-column transaction carries it *)
}

type t

val create : unit -> t

val add :
  t -> lsn:Storage.Lsn.t -> op:Storage.Log_record.op -> timestamp:int ->
  ?origin:int * int -> ?reply:(unit -> unit) -> unit -> unit

val mem : t -> Storage.Lsn.t -> bool

val is_empty : t -> bool

val length : t -> int

val min_lsn : t -> Storage.Lsn.t option

val max_lsn : t -> Storage.Lsn.t option

val mark_forced_upto : t -> Storage.Lsn.t -> unit
(** Log forces are sequential, so a force completion covers every entry with
    an LSN at or below the forced point. Leader-side only: on a follower a
    retransmission can back-fill an older LSN whose own force is still in
    flight, so followers must mark exactly what they appended
    ({!mark_forced}). *)

val mark_forced : t -> Storage.Lsn.t -> unit
(** Mark a single entry's log record as forced. *)

val origin_at : t -> Storage.Lsn.t -> (int * int) option
(** Issuing (client, request id) of the entry at the given LSN, when it is
    still queued and carried one — lets a follower tag its cumulative Ack
    with the trace of the newest write the Ack covers. *)

val add_ack : t -> from:int -> upto:Storage.Lsn.t -> unit

val pop_committable : t -> acks_needed:int -> entry list
(** Leader-side: remove and return, in LSN order, the maximal prefix of
    entries that are forced and have at least [acks_needed] distinct ackers.
    Stops at the first entry that does not qualify (commit order). *)

val pop_upto : t -> Storage.Lsn.t -> entry list
(** Follower-side: remove and return all entries with LSN [<=] the commit
    point, in LSN order. Only safe when the network cannot lose proposes;
    under loss use {!pop_contiguous}. *)

val pop_contiguous : t -> from:Storage.Lsn.t -> upto:Storage.Lsn.t -> entry list
(** Follower-side under a lossy network: remove and return, in LSN order, the
    entries at or below [upto] whose sequence numbers continue [from]'s
    without a hole. A hole means a propose was lost in flight — the caller
    must re-sync before applying anything beyond it. *)

val contiguous_forced_upto : t -> from:Storage.Lsn.t -> Storage.Lsn.t option
(** Largest LSN such that every entry from just above [from] through it is
    present, seq-contiguous, and forced — the honest upper bound a follower
    may ack when proposes can arrive with holes. *)

val drop_above : t -> Storage.Lsn.t -> entry list
(** Remove entries above the given LSN (discarded on leader change); returns
    them so callers can fail their client replies. *)

val latest_version_for : t -> Storage.Row.coord -> int option
(** Version of the newest pending write to the coordinate — lets the leader
    assign version numbers and check conditional puts against in-flight
    writes, not just committed state. *)

val to_list : t -> entry list
