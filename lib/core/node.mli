(** A Spinnaker node (Figure 3): a network endpoint hosting one cohort
    replica per key range it serves, a shared write-ahead log on a dedicated
    logging device, a CPU, and an embedded coordination-service client whose
    session doubles as the node's failure detector. *)

type t

val create :
  engine:Sim.Engine.t ->
  net:Message.t Sim.Network.t ->
  zk_server:Coord.Zk_server.t ->
  partition:Partition.t ->
  config:Config.t ->
  trace:Sim.Trace.t ->
  id:int ->
  t

val id : t -> int

val alive : t -> bool

val incarnation : t -> int

val start : t -> unit
(** First boot: register on the network, connect to the coordination
    service, run elections for every hosted range. *)

val crash : t -> unit
(** Lose volatile state (memtables, commit queues, unforced log tail); keep
    stable storage. The session expires after the coordination service's
    timeout, triggering failover. *)

val restart : t -> unit
(** Come back up: local recovery on every cohort, then rejoin (follower
    catch-up or election, §6.1-6.2). *)

val lose_disk : t -> unit
(** Wipe stable storage (log, SSTables, skipped-LSN lists). A subsequent
    {!restart} models a replacement node recovering entirely from peers. *)

val set_zk_reachable : t -> bool -> unit
(** Cut (or heal) this node's link to the coordination service only — the
    data network and the node itself keep running. While cut, the node's
    session stops heartbeating: the client side conservatively declares it
    dead after half the session timeout (a partitioned leader steps down,
    §7), the server expires it after the full timeout (followers elect a
    new leader), and the node keeps polling until the link heals, then
    reconnects with a fresh session and falls back in line. *)

val cohort : t -> range:int -> Cohort.t option

val ranges : t -> int list
(** The ranges this node currently hosts a replica of — changes at runtime
    as migrations and splits commit (§10). *)

val reconcile_layout : t -> unit
(** Bring the hosted-replica set in line with the current routing table:
    adopt ranges the node is a member of but does not host (including split
    children carved out of a wider local store), retire ranges it is no
    longer a member of. Runs automatically on start, restart, session
    renewal, and /layout changes; exposed for tests. *)

val wal : t -> Storage.Wal.t

val set_txn_escalation :
  t -> (txn:string -> anchor:Storage.Row.key -> key:Storage.Row.key -> unit) -> unit
(** Install the presumed-abort escalation hook: when a leader cohort's sweep
    finds an in-doubt write intent, it calls this with the transaction, its
    coordinator anchor key, and a sample key of the stranded range. The
    cluster layer backs it with an embedded client that queries the
    coordinator ([Txn_status_req], logging an abort if no decision exists)
    and then resolves the intents. Unset, the sweep is inert. *)

val failure_target : t -> Sim.Failure.target
