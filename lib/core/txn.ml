module Lsn = Storage.Lsn
module Row = Storage.Row

type read = Row.key * Row.column
type read_value = Row.key * Row.column * string option * int
type write = Row.key * Row.column * string option

type outcome =
  | Committed of { ts : int }
  | Aborted of { reason : string }
  | Indeterminate of { txn : string }

type t = {
  client : Client.t;
  engine : Sim.Engine.t;
  config : Config.t;
  mutable next : int;
}

let manager ~engine ~config client = { client; engine; config; next = 0 }

let fresh_id t =
  let n = t.next in
  t.next <- n + 1;
  Printf.sprintf "t%d.%d" (Client.id t.client) n

let err_string e = Format.asprintf "%a" Client.pp_error e

let dedup_keys keys =
  List.rev
    (List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) [] keys)

(* Capture the snapshot anchor of each key's range, sequentially (the list is
   short and sequencing keeps replay deterministic). Every anchor is a strong
   leader read: [Fenced { lsn; ts }] with the capture instant. *)
let fence_keys t keys k =
  let rec go acc = function
    | [] -> k (Ok (List.rev acc))
    | key :: rest ->
      Client.fence t.client key (function
        | Ok (lsn, ts) -> go ((key, (lsn, ts)) :: acc) rest
        | Error e -> k (Error (Printf.sprintf "fence %s: %s" key (err_string e))))
  in
  go [] keys

(* One MVCC read at (the key range's fence LSN, the snapshot's global
   timestamp). An unresolved intent at or below the fence blocks the read —
   its owner may yet commit inside our snapshot — so back off and retry a
   bounded number of times before aborting. *)
let rec snap_read t ~fences ~b_ts ~attempts (key, col) k =
  let fence, _ = List.assoc key fences in
  Client.snap_get t.client key col ~fence ~fence_ts:b_ts (function
    | Ok (Client.Snap_value v) -> k (Ok (v.Client.value, v.Client.version))
    | Ok (Client.Snap_intent blocker) ->
      if attempts >= t.config.Config.txn_snap_retries then
        k (Error (Printf.sprintf "read %s blocked by %s" key blocker))
      else
        ignore
          (Sim.Engine.schedule t.engine
             ~after:(Sim.Sim_time.ms (1 lsl Stdlib.min 6 attempts))
             (fun () -> snap_read t ~fences ~b_ts ~attempts:(attempts + 1) (key, col) k))
    | Error e -> k (Error (Printf.sprintf "read %s: %s" key (err_string e))))

let snap_reads t ~fences ~b_ts reads k =
  let rec go acc = function
    | [] -> k (Ok (List.rev acc))
    | (key, col) :: rest ->
      snap_read t ~fences ~b_ts ~attempts:0 (key, col) (function
        | Ok (value, version) -> go ((key, col, value, version) :: acc) rest
        | Error reason -> k (Error reason))
  in
  go [] reads

let min_capture_ts fences init =
  List.fold_left (fun acc (_, (_, ts)) -> Stdlib.min acc ts) init fences

(* 2PC over Paxos. One prepare per distinct written key (its range's cohort
   replicates the write intents), a decision record at the anchor key's
   range, then per-key resolves installing final cells. Any prepare failure
   — conflict, cross-range, or timeout (the intent may or may not have
   landed) — decides abort: presumed abort makes the timeout case safe. *)
let full_2pc t ~txn ~fences ~b_ts writes k =
  let keys = dedup_keys (List.map (fun (key, _, _) -> key) writes) in
  let anchor = List.hd keys in
  let unfenced = List.filter (fun key -> not (List.mem_assoc key fences)) keys in
  fence_keys t unfenced (function
    | Error reason ->
      (* Nothing durable yet: clean client-side abort. *)
      k (Aborted { reason })
    | Ok extra ->
      let fences = fences @ extra in
      (* Tightening the snapshot timestamp with the write captures only adds
         conflicts; the already-performed reads stay anchored at their own
         (larger or equal) timestamp, which those writes never constrained. *)
      let b_ts = min_capture_ts extra b_ts in
      let resolve_all ~committed ~ts =
        let pending = ref (List.length keys) in
        List.iter
          (fun key ->
            Client.txn_resolve t.client ~txn ~key ~commit:committed ~ts (fun _ ->
                decr pending;
                if !pending = 0 then
                  if committed then k (Committed { ts })
                  else k (Aborted { reason = "decided abort" })))
          keys
      in
      let decide commit =
        Client.txn_decide t.client ~txn ~anchor ~commit (function
          | Ok (committed, ts) -> resolve_all ~committed ~ts
          | Error _ ->
            (* The decide's fate is unknown (e.g. coordinator failover ate the
               reply). Ask once for the recorded outcome — the status query
               itself logs an abort if none exists — before handing the
               stragglers to the background sweep. *)
            Client.txn_status t.client ~txn ~anchor (function
              | Ok (committed, ts) -> resolve_all ~committed ~ts
              | Error _ -> k (Indeterminate { txn })))
      in
      let rec prepare_next = function
        | [] -> decide true
        | key :: rest ->
          let fence, _ = List.assoc key fences in
          let key_writes =
            List.filter_map
              (fun (key', col, value) -> if String.equal key' key then Some (key', col, value) else None)
              writes
          in
          Client.txn_prepare t.client ~txn ~anchor ~fence ~fence_ts:b_ts key_writes (function
            | Ok () -> prepare_next rest
            | Error _ ->
              (* Conflict or timeout: abort. Earlier prepares (and possibly
                 this one, if its timeout raced a success) left intents;
                 the abort decision plus per-key resolves clears them. *)
              decide false)
      in
      prepare_next keys)

let run t ~reads ~compute k =
  let txn = fresh_id t in
  let read_keys = dedup_keys (List.map fst reads) in
  fence_keys t read_keys (function
    | Error reason -> k (Aborted { reason })
    | Ok fences ->
      let b_ts = min_capture_ts fences max_int in
      snap_reads t ~fences ~b_ts reads (function
        | Error reason -> k (Aborted { reason })
        | Ok values -> (
          match compute values with
          | [] -> k (Committed { ts = (if b_ts = max_int then 0 else b_ts) })
          | [ (key, col, Some value) ] when reads = [] ->
            (* Blind single-cell transaction: byte-for-byte the plain write
               path — same op, same reply, same history entry. *)
            Client.put t.client key col ~value (function
              | Ok () -> k (Committed { ts = 0 })
              | Error e -> k (Aborted { reason = err_string e }))
          | [ (key, col, None) ] when reads = [] ->
            Client.delete t.client key col (function
              | Ok () -> k (Committed { ts = 0 })
              | Error e -> k (Aborted { reason = err_string e }))
          | writes -> full_2pc t ~txn ~fences ~b_ts writes k)))

let pp_outcome ppf = function
  | Committed { ts } -> Format.fprintf ppf "committed (ts=%d)" ts
  | Aborted { reason } -> Format.fprintf ppf "aborted: %s" reason
  | Indeterminate { txn } -> Format.fprintf ppf "indeterminate: %s" txn
