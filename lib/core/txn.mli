(** Multi-key serializable transactions: MVCC snapshot reads at a
    cluster-wide fence + two-phase commit over the per-range Paxos logs.

    The snapshot: every key range touched gets its anchor captured by a
    strong leader read — its applied commit LSN (the {e fence}) and the
    capture instant. The transaction's snapshot timestamp is the {e minimum}
    of the capture instants. A plain write is visible iff its LSN is at or
    below its range's fence; a transactionally installed version iff its
    commit timestamp is at or below the snapshot timestamp — the commit
    timestamp is assigned when the coordinator logs the decision, strictly
    after every participant's prepare committed, so a transaction visible
    under the snapshot has its intent or final cell below every fence it
    touches. Unresolved intents at or below a fence block the reader
    (bounded retries) — the owner may yet commit inside the snapshot.

    The commit: one prepare per distinct written key replicates write
    intents through that key range's Paxos log after first-committer-wins
    conflict checks against the snapshot; the decision record replicates
    through the {e anchor} (first written key) range's log, so coordinator
    failover cannot lose it; per-key resolve records install the final cells
    and clear the intents. Recovery is presumed abort: an in-doubt intent is
    escalated to the coordinator, which answers with the recorded decision
    or logs an abort if there is none. *)

type read = Storage.Row.key * Storage.Row.column

type read_value = Storage.Row.key * Storage.Row.column * string option * int
(** One snapshot read result: (key, column, value, version); [None] = no
    visible version (or a tombstone) at the snapshot. *)

type write = Storage.Row.key * Storage.Row.column * string option
(** A proposed write; [None] = delete. *)

type outcome =
  | Committed of { ts : int }  (** commit timestamp (µs); 0 for blind fast-path writes *)
  | Aborted of { reason : string }
      (** nothing is visible: conflict, blocked read, or decided abort *)
  | Indeterminate of { txn : string }
      (** the decision's fate is unknown (coordinator unreachable); the
          presumed-abort sweep will converge surviving intents, and
          {!Client.txn_status} can be asked for the recorded outcome *)

type t
(** A transaction manager bound to one client: issues transaction ids and
    runs the protocol through the client's retry/routing machinery. *)

val manager : engine:Sim.Engine.t -> config:Config.t -> Client.t -> t

val run :
  t ->
  reads:read list ->
  compute:(read_value list -> write list) ->
  (outcome -> unit) ->
  unit
(** Execute one transaction: snapshot-read [reads] (in order), hand the
    values to [compute], and atomically commit the writes it returns.

    [compute] returning [[]] commits a read-only transaction (its snapshot
    is consistent by construction — no validation needed). A transaction
    with no reads and exactly one single-cell write takes the fast path:
    it is issued as a plain {!Client.put}/{!Client.delete}, byte-identical
    to the non-transactional write path. Everything else runs full 2PC. *)

val pp_outcome : Format.formatter -> outcome -> unit
