(** Dynamic key-range routing table (§4, §10).

    The cluster starts from the chained-declustering seed layout — one base
    range per node, node [i]'s base range replicated on the next
    [replication - 1] nodes (Figure 2) — but ranges can split and cohort
    membership can change at runtime. Each range is a descriptor
    [{id; lo; hi; members}]; descriptors tile the key space. The table
    carries a monotone [version]: mutations bump it, and stale copies (e.g.
    a client's cached routing table) are refreshed from the serialized
    layout published on ZooKeeper via [update_from_string].

    Keys are zero-padded decimal strings so lexicographic order matches
    numeric order. *)

type desc = {
  id : int;
  lo : Storage.Row.key;
  hi : Storage.Row.key;  (** exclusive *)
  members : int list;  (** primary first *)
}

type t

val create : nodes:int -> replication:int -> key_space:int -> t
(** The seed layout: ranges [0 .. nodes-1], equal-width, chained
    declustering. Identical to the original static math. *)

val ranges : t -> int
(** Number of key ranges (= number of nodes at creation; grows on split). *)

val replication : t -> int
val key_space : t -> int

val version : t -> int
(** Monotone layout version; bumped by every successful mutation. *)

val range_ids : t -> int list
(** All current range ids, in key order. *)

val descs : t -> desc list
(** All descriptors, sorted by [lo]. *)

val mem_range : t -> range:int -> bool

val copy : t -> t
(** An independent snapshot (for client-side caching). *)

val key_of_int : t -> int -> Storage.Row.key
(** Zero-padded encoding of an integer key. *)

val route : t -> Storage.Row.key -> int
(** The range id owning the key. *)

val cohort : t -> range:int -> int list
(** The nodes replicating the range, primary first. Raises on unknown
    range. *)

val primary : t -> range:int -> int

val ranges_of_node : t -> node:int -> int list
(** The ranges whose cohorts include the node (3 with default replication
    on the seed layout). *)

val range_bounds : t -> range:int -> Storage.Row.key * Storage.Row.key
(** [(start, end_exclusive)] of the range, encoded. *)

val set_members : t -> range:int -> int list -> bool
(** Replace a range's cohort (primary first). Returns [false] (and leaves
    the version untouched) if the membership is already exactly that —
    mutations are idempotent so replaying a meta record is harmless. *)

val split : t -> range:int -> at:Storage.Row.key -> new_range:int -> bool
(** Split [range] at key [at]: the parent keeps [[lo, at)], the child
    [new_range] takes [[at, hi)] with the same members. Returns [false] if
    [new_range] already exists (idempotent replay) or [at] is outside the
    parent's open interval. *)

val to_string : t -> string
(** Serialize for the ZK [/layout] znode. *)

val update_from_string : t -> string -> bool
(** Replace the table's contents from a serialized layout if (and only if)
    the serialized version is strictly newer. Returns whether anything
    changed; malformed input is ignored. *)

val pp : Format.formatter -> t -> unit
