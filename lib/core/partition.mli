(** Key-based range partitioning with chained declustering (§4).

    The key space is split into one base range per node; node [i]'s base
    range is replicated on the next [replication - 1] nodes, so the cohort
    for range [i] is [[i; i+1; ...] mod nodes] — the layout of Figure 2.
    Keys are zero-padded decimal strings so lexicographic order matches
    numeric order. *)

type t

val create : nodes:int -> replication:int -> key_space:int -> t

val ranges : t -> int
(** Number of key ranges (= number of nodes). *)

val replication : t -> int

val key_of_int : t -> int -> Storage.Row.key
(** Zero-padded encoding of an integer key. *)

val route : t -> Storage.Row.key -> int
(** The range id owning the key. *)

val cohort : t -> range:int -> int list
(** The nodes replicating the range, primary first. *)

val primary : t -> range:int -> int

val ranges_of_node : t -> node:int -> int list
(** The ranges whose cohorts include the node (3 with default replication). *)

val range_bounds : t -> range:int -> Storage.Row.key * Storage.Row.key
(** [(start, end_exclusive)] of the range, encoded. *)

val pp : Format.formatter -> t -> unit
