module Lsn = Storage.Lsn
module Store = Storage.Store
module Wal = Storage.Wal
module Log_record = Storage.Log_record
module Row = Storage.Row
module Skipped_lsns = Storage.Skipped_lsns

type role = Offline | Candidate | Leader | Follower

type ctx = {
  engine : Sim.Engine.t;
  node_id : int;
  range : int;
  config : Config.t;
  store : Storage.Store.t;
  wal : Storage.Wal.t;
  cpu : Sim.Resource.t;
  trace : Sim.Trace.t;
  send : ?trace_id:int -> dst:int -> Message.t -> unit;
      (** [trace_id] tags the message's network-transit span so the causal
          analyzer can stitch the hop into the owning request's DAG *)
  reply : client:int -> request_id:int -> Message.client_reply -> unit;
  zk : unit -> Coord.Zk_client.t;
  incarnation : unit -> int;
  routes_here : Storage.Row.key -> bool;
      (** whether a key belongs to this cohort's range (transaction scoping);
          consulted again at write time — the layout may have moved *)
  range_bounds : unit -> Storage.Row.key * Storage.Row.key;
      (** current [start, end) of this cohort's key range (scan clamping);
          a function because a range split narrows it *)
  members : unit -> int list;
      (** the cohort's current membership under the live routing table *)
  xfer : Sim.Resource.t;
      (** the node's bulk-transfer link; snapshot chunks stream through it at
          [Config.xfer_bytes_per_sec] so migration bandwidth is modelled *)
  apply_meta : op:Storage.Log_record.op -> leader:bool -> unit;
      (** node-level side effects of a committed metadata record (routing
          table update, child-cohort spawn, layout publication) *)
  retire_self : unit -> unit;
      (** drop this cohort from the hosting node (migration moved it away,
          or a learner's migration aborted) *)
  resolve_in_doubt : txn:Storage.Row.key -> anchor:Storage.Row.key -> key:Storage.Row.key -> unit;
      (** node-level escalation for the presumed-abort sweep: query the
          coordinator cohort owning [anchor] for [txn]'s outcome and resolve
          the in-doubt intents at [key]'s range (a no-op outside a cluster) *)
}

type waiting_write = { client : int; request_id : int; op : Message.client_op }

(* Unleased strong read awaiting its read-index quorum: the reply was built
   at arrival; it is released once a majority of followers confirm this
   leader's epoch is still current (quorum intersection with any takeover
   quorum guarantees no newer leader has committed anything yet). *)
type pending_guard = {
  g_client : int;
  g_request_id : int;
  g_serve : unit -> unit;  (** submit the prepared reply to the CPU *)
  mutable g_acks : int list;  (** distinct follower acks so far *)
  g_span : int;  (** open [read.guard] span (0 when untraced) *)
  g_trace_id : int;
}

(* Timeline read parked behind its read-your-writes token: served once the
   applied commit point reaches the token, redirected to the leader if the
   staleness bound passes first. *)
type parked_read = {
  p_client : int;
  p_request_id : int;
  p_token : Storage.Lsn.t;
  p_serve : unit -> unit;
  mutable p_done : bool;  (** served or redirected; the deadline is a no-op *)
  p_wait_span : int;  (** open [read.wait_lsn] span (0 when untraced) *)
  p_trace_id : int;
}

(* Read-path counters, cluster-lifetime (crash does not reset them — they
   feed bench series, like the write-phase histograms). *)
type read_stats = {
  mutable leased : int;  (** strong reads served locally under a live lease *)
  mutable guarded : int;  (** strong reads served via a read-index quorum round *)
  mutable lease_rejects : int;  (** strong reads refused because the lease lapsed *)
  mutable guard_fails : int;  (** guard rounds that timed out without a quorum *)
  mutable leader_timeline : int;  (** timeline reads served by the leader *)
  mutable follower_timeline : int;  (** timeline reads served by a follower *)
  mutable token_waits : int;  (** timeline reads parked for cmt to reach a token *)
  mutable token_redirects : int;  (** parked reads that hit the staleness bound *)
}

(* Outcome of a client write, remembered per (client, request id) so a
   duplicated or retried request is answered idempotently instead of being
   applied a second time (clients retry under loss and leader changes). *)
type dedup_state = In_flight | Done of Message.client_reply

(* Per leader-tracked write (keyed by its last LSN): the append instant for
   the phase histograms plus the request's trace id and open replication
   span, so [try_commit] can close the span it did not open. *)
type inflight = { started : Sim.Sim_time.t; trace_id : int; repl_span : int }

(* Leader-side replica-migration state (§10): ship a snapshot of the store to
   the joiner stop-and-wait, then run WAL catch-up from the snapshot horizon,
   then commit a [Cohort_change] record that swaps the joiner in. *)
type migration = {
  joiner : int;
  remove : int option;  (** the replica the joiner replaces, if any *)
  chunks : (Row.coord * Row.cell) list array;
  upto : Lsn.t;  (** snapshot commit horizon; catch-up resumes here *)
  mutable next_chunk : int;
  mutable phase : [ `Snapshot | `Catchup | `Change ];
  mutable attempts : int;  (** retransmissions of the current chunk *)
}

type t = {
  ctx : ctx;
  mutable role : role;
  mutable epoch : int;  (** highest leadership epoch seen *)
  mutable cmt : Lsn.t;
  mutable lst : Lsn.t;
  queue : Commit_queue.t;
  mutable leader : int option;
  (* leader state *)
  mutable open_for_writes : bool;
  mutable active_followers : int list;
  mutable pending_final : int list;  (** followers in a blocked final catch-up round *)
  mutable takeover_pending : bool;
  mutable takeover_open_at : Lsn.t;
      (** lst captured at takeover start: the cohort may not reopen until cmt
          reaches it (the re-proposed tail of Figure 6 line 9 has committed) *)
  mutable takeover_commit_wait : bool;
      (** the takeover has its follower quorum but the re-proposed (cmt, lst]
          tail is not yet committed; [try_commit] opens the cohort once it is *)
  mutable waiting : waiting_write list;  (** writes queued while closed/blocked, newest first *)
  mutable unproposed : (Lsn.t * Storage.Log_record.op * int * (int * int) option) list;
      (** newest first: appended+forced locally but held back because the
          replication pipeline window ([Config.pipeline_depth]) is full;
          shipped as one batched Propose when a slot frees *)
  inflight_props : Lsn.t Queue.t;
      (** highest LSN of each outstanding Propose batch; a batch retires
          when cmt reaches it *)
  mutable commit_timer_armed : bool;
  dedup : (int * int, dedup_state) Hashtbl.t;
      (** (client, request id) -> write outcome, for duplicate suppression *)
  mutable migration : migration option;  (** leader-side migration in flight *)
  mutable splitting : bool;  (** a range split is being logged; writes block *)
  (* follower state *)
  mutable catching_up : bool;
  mutable learner : bool;
      (** a joining replica that is not yet a cohort member: it receives the
          snapshot and catch-up but must not vote in elections, and its acks
          do not count toward the old configuration's majority *)
  mutable snapshot_next : int;
      (** next snapshot chunk sequence expected (crash-safe resume gate: a
          chunk out of order is never acked, so a restarted joiner cannot
          silently miss a prefix) *)
  mutable last_leader_msg : Sim.Sim_time.t;
      (** last accepted leader traffic; silence beyond a few commit periods
          means our propose stream may have a hole we cannot see *)
  mutable resync_armed : bool;
  mutable ack_pending : (int * Lsn.t * int) option;
      (** (leader, upto, trace id) of a coalesced cumulative ack not yet sent
          ([Config.ack_coalesce] > 0); the trace id belongs to the newest
          write the ack covers (-1 when untraced) *)
  mutable ack_timer_armed : bool;
  (* election state *)
  mutable election_running : bool;
  mutable own_candidate : string option;
  mutable leader_watch_armed : bool;
  (* read path *)
  mutable lease_disabled : bool;
      (** runtime override forcing the unleased (quorum-guard) strong-read
          path even when [Config.lease_fraction] > 0; a bench knob, so it
          survives crashes like the config itself *)
  mutable guard_seq : int;
  guards : (int, pending_guard) Hashtbl.t;
      (** outstanding read-index rounds, keyed by guard sequence number *)
  mutable parked_reads : parked_read list;  (** newest first *)
  reads : read_stats;
  (* instrumentation *)
  phases : Sim.Metrics.Write_phases.t;
      (** per-phase write-path latencies for writes this cohort led *)
  inflight_started : (Lsn.t, inflight) Hashtbl.t;
      (** in-flight state of each leader-tracked write, keyed by its last LSN *)
  (* transaction state (leader-scoped; rebuilt from store + queue on open) *)
  locks : (Row.coord, string) Hashtbl.t;
      (** base coordinate -> transaction holding a write intent there, granted
          when the prepare is appended (before it commits — the queue overlay
          alone cannot refuse a conflicting prepare racing in the same term) *)
  pending_decisions : (string, bool * int) Hashtbl.t;
      (** txn -> (commit, ts): decision appended this term, possibly not yet
          applied; first decision wins even against a racing status query *)
  resolving : (string, unit) Hashtbl.t;
      (** txns whose resolve record is appended but not yet applied
          (double-append guard for retried resolve requests) *)
  mutable txn_sweep_armed : bool;  (** presumed-abort sweep timer running *)
}

(* Test-only fault plant: when set, followers ack (and advance lst over)
   every LSN they appended, including writes sitting beyond a loss-induced
   hole — the exact bug the hole-aware ack fixed. The shrinker test flips it
   on to manufacture reproducible lost-acked-write failures and verify a
   long chaos schedule shrinks to the few injections that matter. Never set
   outside tests. *)
let chaos_ack_past_holes = ref false

let zk_prefix t = Printf.sprintf "/ranges/%d" t.ctx.range
let zk_candidates t = zk_prefix t ^ "/candidates"
let zk_leader t = zk_prefix t ^ "/leader"
let zk_epoch t = zk_prefix t ^ "/epoch"

let create ctx =
  {
    ctx;
    role = Offline;
    epoch = 0;
    cmt = Lsn.zero;
    lst = Lsn.zero;
    queue = Commit_queue.create ();
    leader = None;
    open_for_writes = false;
    active_followers = [];
    pending_final = [];
    takeover_pending = false;
    takeover_open_at = Lsn.zero;
    takeover_commit_wait = false;
    waiting = [];
    unproposed = [];
    inflight_props = Queue.create ();
    commit_timer_armed = false;
    dedup = Hashtbl.create 64;
    migration = None;
    splitting = false;
    catching_up = false;
    learner = false;
    snapshot_next = 0;
    last_leader_msg = Sim.Sim_time.zero;
    resync_armed = false;
    ack_pending = None;
    ack_timer_armed = false;
    election_running = false;
    own_candidate = None;
    leader_watch_armed = false;
    lease_disabled = false;
    guard_seq = 0;
    guards = Hashtbl.create 16;
    parked_reads = [];
    reads =
      {
        leased = 0;
        guarded = 0;
        lease_rejects = 0;
        guard_fails = 0;
        leader_timeline = 0;
        follower_timeline = 0;
        token_waits = 0;
        token_redirects = 0;
      };
    phases = Sim.Metrics.Write_phases.create ();
    inflight_started = Hashtbl.create 64;
    locks = Hashtbl.create 16;
    pending_decisions = Hashtbl.create 16;
    resolving = Hashtbl.create 16;
    txn_sweep_armed = false;
  }

let role t = t.role
let leader_id t = t.leader
let read_stats t = t.reads
let set_lease_disabled t v = t.lease_disabled <- v
let epoch t = t.epoch
let cmt t = t.cmt
let lst t = t.lst
let is_open t = t.role = Leader && t.open_for_writes
let pending_writes t = Commit_queue.length t.queue
let reply_cache_size t = Hashtbl.length t.dedup
let store t = t.ctx.store
let is_learner t = t.learner
let migrating t = Option.is_some t.migration

let others t = List.filter (fun m -> m <> t.ctx.node_id) (t.ctx.members ())

(* Cohort events are structured instants carrying node and cohort fields;
   the "r%d n%d" detail prefix is kept for log readability and for existing
   consumers that grep details. *)
let tracing t = Sim.Trace.is_enabled t.ctx.trace

let trace t tag detail =
  if tracing t then
    Sim.Trace.event t.ctx.trace ~node:t.ctx.node_id ~cohort:t.ctx.range ~tag
      (Printf.sprintf "r%d n%d %s" t.ctx.range t.ctx.node_id detail)

let span_start t ?trace_id ?lsn ~tag detail =
  if tracing t then
    Sim.Trace.span_start t.ctx.trace ?trace_id ~node:t.ctx.node_id ~cohort:t.ctx.range ?lsn
      ~tag detail
  else 0

let span_end t ~span ?trace_id ?lsn ~tag detail =
  if span <> 0 then
    Sim.Trace.span_end t.ctx.trace ~span ?trace_id ~node:t.ctx.node_id ~cohort:t.ctx.range ?lsn
      ~tag detail

(* Schedule a callback that is dropped if the node crashed/restarted since. *)
let after t span k =
  let inc = t.ctx.incarnation () in
  ignore
    (Sim.Engine.schedule t.ctx.engine ~after:span (fun () ->
         if t.ctx.incarnation () = inc && t.role <> Offline then k ()))

(* Likewise for callbacks of asynchronous operations (log forces, ZK). *)
let guard t k =
  let inc = t.ctx.incarnation () in
  fun x -> if t.ctx.incarnation () = inc && t.role <> Offline then k x

let now_us t = Sim.Sim_time.time_to_us (Sim.Engine.now t.ctx.engine)

(* TXN_DEBUG=1: stream transaction-protocol server events to stderr (see
   Workload.Experiment.bank_debug for the matching client-side stream). *)
let txn_debug = Sys.getenv_opt "TXN_DEBUG" <> None

let dbg t fmt =
  if txn_debug then
    Printf.ksprintf
      (fun s -> Printf.eprintf "%d r%d n%d %s\n%!" (now_us t) t.ctx.range t.ctx.node_id s)
      fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

(* Trace id for a Propose batch: the newest write in the batch that carries an
   originating (client, request id). Tagging the batch's transit span with it
   lets the causal analyzer charge the propose hop to that request; writes
   without an origin (metadata records, rebuilt tails) leave the hop
   untagged. *)
let propose_trace_id t writes =
  if tracing t then
    match
      List.fold_left
        (fun acc (_, _, _, origin) -> match origin with Some _ -> origin | None -> acc)
        None writes
    with
    | Some (client, request_id) -> Sim.Trace.request_trace_id ~client ~request_id
    | None -> -1
  else -1

(* Sample one network hop into the write-phase transit histogram: messages
   carry their send instant, so arrival minus [sent_at] is the measured
   one-way wire time (propagation + serialization + queueing in the model). *)
let record_transit t ~sent_at =
  Sim.Metrics.Histogram.record_span t.phases.transit
    (Sim.Sim_time.diff (Sim.Engine.now t.ctx.engine) sent_at)

(* Forward reference: every path that makes this replica a follower must arm
   the leader-liveness watch, but the watch function lives in the election
   recursion (it triggers elections). Tied after that definition below. *)
let arm_leader_watch : (t -> unit) ref = ref (fun _ -> ())

(* Likewise for the follower re-sync machinery (it calls into the catch-up
   request path, which lives in the same recursion). *)
let arm_resync : (t -> unit) ref = ref (fun _ -> ())
let trigger_resync : (t -> unit) ref = ref (fun _ -> ())

(* ------------------------------------------------------------------ *)
(* Duplicate suppression: retried writes must be acked idempotently.    *)

(* Request ids are per-client monotonic and retries only ever target recent
   ids, so a sliding window per client bounds the cache. *)
let dedup_window = 128

let cache_outcome t origin reply =
  match origin with
  | None -> ()
  | Some (client, request_id) ->
    Hashtbl.replace t.dedup (client, request_id) (Done reply);
    Hashtbl.remove t.dedup (client, request_id - dedup_window)

let reply_write t ~client ~request_id reply =
  cache_outcome t (Some (client, request_id)) reply;
  t.ctx.reply ~client ~request_id reply

let clear_in_flight t ~client ~request_id =
  match Hashtbl.find_opt t.dedup (client, request_id) with
  | Some In_flight -> Hashtbl.remove t.dedup (client, request_id)
  | _ -> ()

(* The settled-outcome reply for a committed record: a 2PC decision answers
   with the outcome it recorded (a client retrying its decide after a
   coordinator failover must learn commit/abort, not a bare LSN); every other
   write acks [Written]. *)
let reply_for_record (op : Log_record.op) ~lsn =
  match op with
  | Log_record.Txn_decision { commit; ts; _ } ->
    Message.Txn_decided { committed = commit; ts }
  | _ -> Message.Written { lsn }

(* Re-learn committed outcomes from our own durable log: the max-lst election
   rule (Figure 7) guarantees a new leader's log contains every committed
   write, so this rebuild makes the leader-side duplicate cache complete even
   across crashes and leader changes. Logically truncated LSNs never
   committed and must not be remembered as done. *)
let recache_outcomes_from_log t ~above ~upto =
  List.iter
    (fun (lsn, op, _, origin) ->
      if not (Storage.Skipped_lsns.mem (Store.skipped t.ctx.store) lsn) then
        cache_outcome t origin (reply_for_record op ~lsn))
    (Wal.durable_writes_in t.ctx.wal ~cohort:t.ctx.range ~above ~upto)

(* ------------------------------------------------------------------ *)
(* Leader lease: implicit in the leader's ZK session. The lease is granted
   by election (becoming leader requires a live session) and renewed by
   every heartbeat; it is valid while the last successful contact with the
   service is fresher than [lease_fraction] of the session timeout. The
   margin argument: [last_contact] is a lower bound on when the server last
   heard from this session, and the ZK client declares its own session dead
   only after half the timeout of silence — which is what permits a
   replacement election — so any fraction < 0.5 lapses strictly before a
   new leader can exist anywhere. *)

let leases_enabled t = t.ctx.config.Config.lease_fraction > 0.0 && not t.lease_disabled

let lease_valid t =
  let config = t.ctx.config in
  let zk = t.ctx.zk () in
  Coord.Zk_client.alive zk
  &&
  let held =
    Sim.Sim_time.diff (Sim.Engine.now t.ctx.engine) (Coord.Zk_client.last_contact zk)
  in
  let lease_us =
    config.Config.lease_fraction
    *. float_of_int (Sim.Sim_time.to_us config.Config.session_timeout)
  in
  float_of_int (Sim.Sim_time.to_us held) < lease_us

(* Re-check before a strong reply leaves: the request may have sat in the
   CPU queue (or behind a read-index round) while this replica was deposed
   or its lease lapsed. *)
let strong_serve_ok t = t.role = Leader && ((not (leases_enabled t)) || lease_valid t)

(* Serve every parked token read whose fence the applied commit point has
   reached; called wherever cmt advances (commit, catch-up, snapshot). *)
let flush_parked_reads t =
  if t.parked_reads <> [] then begin
    let ready, still =
      List.partition (fun p -> Lsn.(p.p_token <= t.cmt)) (List.rev t.parked_reads)
    in
    t.parked_reads <- List.rev still;
    List.iter
      (fun p ->
        if not p.p_done then begin
          p.p_done <- true;
          span_end t ~span:p.p_wait_span ~trace_id:p.p_trace_id ~tag:"read.wait_lsn"
            "token reached";
          p.p_serve ()
        end)
      ready
  end

(* Abandon every outstanding read-index round (stepdown, session expiry,
   retirement): answer [Unavailable] so clients fail over immediately. *)
let fail_guards t =
  if Hashtbl.length t.guards > 0 then begin
    let pending = Hashtbl.fold (fun seq g acc -> (seq, g) :: acc) t.guards [] in
    Hashtbl.reset t.guards;
    List.iter
      (fun (_, g) ->
        t.reads.guard_fails <- t.reads.guard_fails + 1;
        span_end t ~span:g.g_span ~trace_id:g.g_trace_id ~tag:"read.guard" "abandoned";
        t.ctx.reply ~client:g.g_client ~request_id:g.g_request_id Message.Unavailable)
      (List.sort (fun (a, _) (b, _) -> compare a b) pending)
  end

(* ------------------------------------------------------------------ *)
(* Version assignment: the leader serialises writes, so a coordinate's
   current version is its committed version overlaid with still-pending
   writes in the commit queue (§3, §5.1). *)

let latest_version t coord =
  match Commit_queue.latest_version_for t.queue coord with
  | Some v -> v
  | None -> Store.current_version t.ctx.store coord

(* A transaction's decision, if one is on record: appended this term (the
   in-memory table) or durably applied (the anchor's decision cell). *)
let existing_decision t ~anchor ~txn =
  match Hashtbl.find_opt t.pending_decisions txn with
  | Some d -> Some d
  | None -> (
    match Store.get t.ctx.store (anchor, Row.decision_col txn) with
    | Some { Row.value = Some payload; _ } -> Row.decode_decision payload
    | _ -> None)

(* Wrap a shipped cell for WAL append + apply on the receiving replica.
   The cell goes in verbatim — reconstructing a Put/Delete would drop its
   transactional commit-timestamp classification ([Row.cell.txn_ts]) and a
   caught-up replica's snapshot reads could then expose half a transaction. *)
let op_of_cell coord (cell : Row.cell) : Log_record.op =
  Log_record.Install_cell { coord; cell }

(* Fold an LSN-sorted shipped-cell list into ONE install op per LSN. The
   WAL's LSN index treats a second record at an existing LSN as an
   idempotent re-force and keeps the first record's op, so appending two
   [Install_cell] records at one LSN (e.g. a Txn_resolve's data cell plus
   its intent tombstone) would silently drop all but the first cell from
   crash-recovery replay. *)
let install_ops_by_lsn (cells : (Row.coord * Row.cell) list) :
    (Lsn.t * int * Log_record.op) list =
  let groups =
    List.fold_left
      (fun acc ((_, (cell : Row.cell)) as item) ->
        match acc with
        | (lsn, items) :: rest when Lsn.equal lsn cell.lsn -> (lsn, item :: items) :: rest
        | _ -> (cell.Row.lsn, [ item ]) :: acc)
      [] cells
  in
  List.rev_map
    (fun (lsn, rev_items) ->
      let items = List.rev rev_items in
      let timestamp = match items with (_, (c : Row.cell)) :: _ -> c.timestamp | [] -> 0 in
      let op =
        match items with
        | [ (coord, cell) ] -> op_of_cell coord cell
        | _ -> Log_record.Batch (List.map (fun (coord, cell) -> op_of_cell coord cell) items)
      in
      (lsn, timestamp, op))
    groups

(* ------------------------------------------------------------------ *)
(* Commit path (leader side of Figure 4).                               *)

let rec try_commit t =
  let committable =
    Commit_queue.pop_committable t.queue ~acks_needed:(Config.majority t.ctx.config - 1)
  in
  List.iter
    (fun (e : Commit_queue.entry) ->
      (* Replication phase ends when the entry becomes commit-eligible; only
         the last LSN of each leader-tracked request is in the table, so
         takeover-rebuilt entries and batch prefixes record nothing. *)
      let popped_at = Sim.Engine.now t.ctx.engine in
      let tracked =
        match Hashtbl.find_opt t.inflight_started e.Commit_queue.lsn with
        | Some inf ->
          Hashtbl.remove t.inflight_started e.lsn;
          Sim.Metrics.Histogram.record_span t.phases.replication
            (Sim.Sim_time.diff popped_at inf.started);
          let lsn = if tracing t then Lsn.to_string e.lsn else "" in
          span_end t ~span:inf.repl_span ~trace_id:inf.trace_id ~lsn ~tag:"phase.replication"
            "commit eligible";
          let apply_span = span_start t ~trace_id:inf.trace_id ~lsn ~tag:"phase.apply" "" in
          Some (inf.trace_id, apply_span, lsn)
        | None -> None
      in
      Store.apply t.ctx.store ~lsn:e.Commit_queue.lsn ~timestamp:e.timestamp e.op;
      t.cmt <- Lsn.max t.cmt e.lsn;
      if Log_record.is_meta e.op then on_meta t e.op;
      (match e.reply with
      | Some k -> k ()
      | None ->
        (* Entries rebuilt from the log during takeover carry no reply
           closure but may carry an origin: answer the (possibly still
           retrying) client and remember the outcome. *)
        (match e.origin with
        | Some (client, request_id) ->
          reply_write t ~client ~request_id (reply_for_record e.op ~lsn:e.lsn)
        | None -> ()));
      txn_applied t e.op;
      match tracked with
      | Some (trace_id, apply_span, lsn) ->
        span_end t ~span:apply_span ~trace_id ~lsn ~tag:"phase.apply" "applied and replied";
        Sim.Metrics.Histogram.record_span t.phases.apply
          (Sim.Sim_time.diff (Sim.Engine.now t.ctx.engine) popped_at)
      | None -> ())
    committable;
  if committable <> [] then begin
    retire_proposals t;
    flush_parked_reads t
  end;
  if t.takeover_commit_wait && t.role = Leader && Lsn.(t.cmt >= t.takeover_open_at) then begin
    t.takeover_commit_wait <- false;
    trace t "takeover_commit_done" (Printf.sprintf "cmt=%s" (Lsn.to_string t.cmt));
    open_cohort t
  end

(* Leader-side bookkeeping once a transaction record applies: a resolve
   leaving the queue ends the double-append guard, and a durable decision no
   longer needs its in-memory pending entry (the store's decision cell now
   answers [existing_decision]). *)
and txn_applied t (op : Log_record.op) =
  match op with
  | Log_record.Txn_resolve { txn; _ } -> Hashtbl.remove t.resolving txn
  | Log_record.Txn_decision { txn; _ } -> Hashtbl.remove t.pending_decisions txn
  | _ -> ()

(* A committed metadata record (membership change or range split) takes
   effect: node-level side effects first (routing table, child cohorts, layout
   publication), then the cohort-local transitions. Runs on the leader inside
   [try_commit] and on followers inside [apply_commits] — always in LSN order
   relative to data records, which is what makes the swap atomic. *)
and on_meta t op =
  let leader = t.role = Leader in
  t.ctx.apply_meta ~op ~leader;
  match op with
  | Log_record.Cohort_change { add; remove } ->
    (match add with
    | Some n when n = t.ctx.node_id ->
      (* Promoted: this replica is now a full cohort member. *)
      t.learner <- false;
      trace t "learner_promoted" (Printf.sprintf "epoch=%d" t.epoch)
    | _ -> ());
    if leader then begin
      (match remove with
      | Some n ->
        t.active_followers <- List.filter (fun f -> f <> n) t.active_followers;
        t.pending_final <- List.filter (fun f -> f <> n) t.pending_final
      | None -> ());
      (match add with
      | Some n when n <> t.ctx.node_id ->
        if not (List.mem n t.active_followers) then
          t.active_followers <- n :: t.active_followers
      | _ -> ());
      trace t "migration_done"
        (Printf.sprintf "add=%s remove=%s"
           (match add with Some n -> Printf.sprintf "n%d" n | None -> "-")
           (match remove with Some n -> Printf.sprintf "n%d" n | None -> "-"));
      t.migration <- None;
      drain_waiting t
    end
  | Log_record.Split { at; new_range } ->
    if leader then begin
      trace t "split_done" (Printf.sprintf "at=%s child=r%d" at new_range);
      t.splitting <- false;
      drain_waiting t
    end
  | _ -> ()

and send_commit_msgs t =
  (* Sent even when nothing has committed yet: commit messages double as
     leader heartbeats, which followers use to notice they are stranded
     behind a lossy or partitioned link. *)
  List.iter
    (fun f ->
      t.ctx.send ~dst:f
        (Message.Commit { range = t.ctx.range; epoch = t.epoch; upto = t.cmt }))
    t.active_followers;
  (* Re-propose still-uncommitted entries: under loss a propose (or its ack)
     may have vanished, and re-proposal is deduplicated by LSN at the
     follower. The queue is empty or tiny at each tick in steady state. *)
  let pending = Commit_queue.to_list t.queue in
  if pending <> [] then begin
    let writes =
      List.map
        (fun (e : Commit_queue.entry) -> (e.Commit_queue.lsn, e.op, e.timestamp, e.origin))
        pending
    in
    let msg =
      Message.Propose { range = t.ctx.range; epoch = t.epoch; writes; piggyback_cmt = None }
    in
    let trace_id = propose_trace_id t writes in
    List.iter (fun f -> t.ctx.send ~trace_id ~dst:f msg) t.active_followers
  end;
  if Lsn.(t.cmt > Lsn.zero) then
    (* The leader saves its last committed LSN with a non-forced log write,
       for its own recovery (§5). *)
    Wal.append t.ctx.wal (Log_record.commit_upto ~cohort:t.ctx.range t.cmt)

and arm_commit_timer t =
  if not t.commit_timer_armed then begin
    t.commit_timer_armed <- true;
    let rec tick () =
      if t.role = Leader then begin
        send_commit_msgs t;
        after t t.ctx.config.Config.commit_period tick
      end
      else t.commit_timer_armed <- false
    in
    after t t.ctx.config.Config.commit_period tick
  end

and open_cohort t =
  if not t.open_for_writes then begin
    t.open_for_writes <- true;
    trace t "cohort_open" (Printf.sprintf "epoch=%d lst=%s" t.epoch (Lsn.to_string t.lst));
    rebuild_txn_locks t;
    arm_commit_timer t;
    arm_txn_sweep t;
    drain_waiting t
  end

(* A new leader term inherits the transaction state its log implies: applied
   intents lock their coordinates, and queued-but-unapplied prepare/resolve/
   decision records (replayed in LSN order) adjust on top. Without this a
   failed-over leader would grant conflicting prepares over live intents. *)
and rebuild_txn_locks t =
  Hashtbl.reset t.locks;
  Hashtbl.reset t.resolving;
  Hashtbl.reset t.pending_decisions;
  List.iter
    (fun (txn, _, coords) -> List.iter (fun c -> Hashtbl.replace t.locks c txn) coords)
    (Store.live_intents t.ctx.store);
  List.iter
    (fun (e : Commit_queue.entry) ->
      match e.op with
      | Log_record.Txn_prepare { txn; writes; _ } ->
        List.iter (fun (key, col, _) -> Hashtbl.replace t.locks (key, col) txn) writes
      | Log_record.Txn_resolve { txn; writes; _ } ->
        Hashtbl.replace t.resolving txn ();
        List.iter (fun (key, col, _, _) -> Hashtbl.remove t.locks (key, col)) writes
      | Log_record.Txn_decision { txn; commit; ts; _ } ->
        Hashtbl.replace t.pending_decisions txn (commit, ts)
      | _ -> ())
    (Commit_queue.to_list t.queue)

(* Presumed-abort sweep (leader-only): intents unresolved past
   [txn_indoubt_after] escalate to the node, which asks the coordinator for
   the outcome (logging an abort there if none exists) and resolves them. *)
and arm_txn_sweep t =
  if not t.txn_sweep_armed then begin
    t.txn_sweep_armed <- true;
    let rec tick () =
      if t.role = Leader && t.open_for_writes then begin
        let older_than = Sim.Sim_time.to_us t.ctx.config.Config.txn_indoubt_after in
        List.iter
          (fun (txn, anchor, key) ->
            if not (Hashtbl.mem t.resolving txn) then begin
              trace t "txn.indoubt" txn;
              t.ctx.resolve_in_doubt ~txn ~anchor ~key
            end)
          (Store.in_doubt t.ctx.store ~now:(now_us t) ~older_than);
        after t t.ctx.config.Config.txn_sweep_period tick
      end
      else t.txn_sweep_armed <- false
    in
    after t t.ctx.config.Config.txn_sweep_period tick
  end

and drain_waiting t =
  if t.role = Leader && t.open_for_writes && t.pending_final = [] && not t.splitting then begin
    let waiting = List.rev t.waiting in
    t.waiting <- [];
    (* Straight to [enqueue_write]: these already passed the duplicate gate
       when they first arrived and hold an [In_flight] marker. *)
    List.iter (fun w -> enqueue_write t ~client:w.client ~request_id:w.request_id w.op) waiting
  end

(* ------------------------------------------------------------------ *)
(* Write path (Figure 4): the leader appends and forces its log record,
   and in parallel appends the write to the commit queue and proposes it
   to the followers; it commits after its own force plus one ack.        *)

and handle_write t ~client ~request_id op =
  if t.role <> Leader then
    t.ctx.reply ~client ~request_id (Message.Not_leader { hint = t.leader })
  else begin
    match Hashtbl.find_opt t.dedup (client, request_id) with
    | Some (Done reply) ->
      (* A retry of a write that already settled (its reply was lost, or the
         retry raced the reply): resend the original outcome verbatim rather
         than applying the write twice. *)
      t.ctx.reply ~client ~request_id reply
    | Some In_flight ->
      (* The original is still working through the pipeline; its own reply —
         or the client's next retry once this one settles — answers. *)
      ()
    | None ->
      Hashtbl.replace t.dedup (client, request_id) In_flight;
      enqueue_write t ~client ~request_id op
  end

and enqueue_write t ~client ~request_id op =
  if (not t.open_for_writes) || t.pending_final <> [] || t.splitting then
    (* Writes block during takeover, during the momentary window at the end
       of a follower catch-up (§6.1), and while a range split is being
       logged; they drain when the cohort (re)opens. *)
    t.waiting <- { client; request_id; op } :: t.waiting
  else begin
    let arrived = Sim.Engine.now t.ctx.engine in
    let service = Sim.Sim_time.of_us_f t.ctx.config.Config.write_service_us in
    let trace_id = Sim.Trace.request_trace_id ~client ~request_id in
    let queue_span =
      if tracing t then
        span_start t ~trace_id ~tag:"phase.queue" (Printf.sprintf "c%d#%d" client request_id)
      else 0
    in
    Sim.Resource.submit t.ctx.cpu ~service
      (guard t (fun () ->
           span_end t ~span:queue_span ~trace_id ~tag:"phase.queue" "cpu granted";
           if t.role = Leader && t.open_for_writes && t.pending_final = [] && not t.splitting
           then perform_write t ~arrived ~client ~request_id op
           else if t.role = Leader then
             t.waiting <- { client; request_id; op } :: t.waiting
           else begin
             clear_in_flight t ~client ~request_id;
             t.ctx.reply ~client ~request_id (Message.Not_leader { hint = t.leader })
           end))
  end

and perform_write t ~arrived ~client ~request_id op =
  if not (t.ctx.routes_here (Message.key_of_op op)) then begin
    (* The layout moved while this write sat in the queue (a split committed
       between arrival and service): it belongs to another cohort now, and
       assigning it an LSN here would misfile it. The client refreshes its
       routing table and retries at the owner. *)
    clear_in_flight t ~client ~request_id;
    t.ctx.reply ~client ~request_id (Message.Wrong_range { hint = None })
  end
  else perform_write_routed t ~arrived ~client ~request_id op

and perform_write_routed t ~arrived ~client ~request_id op =
  let ts = now_us t in
  let locked coord =
    Hashtbl.mem t.locks coord || Store.intent_txn_at t.ctx.store coord <> None
  in
  let plain_coords =
    match op with
    | Message.Put { key; col; _ }
    | Message.Delete { key; col }
    | Message.Conditional_put { key; col; _ }
    | Message.Conditional_delete { key; col; _ } ->
      [ (key, col) ]
    | Message.Multi_put { key; cols } -> List.map (fun (col, _) -> (key, col)) cols
    | Message.Multi_conditional_put { key; cols } ->
      List.map (fun (col, _, _) -> (key, col)) cols
    | Message.Txn_put { rows } -> List.map (fun (key, col, _) -> (key, col)) rows
    | _ -> []
  in
  if List.exists locked plain_coords then begin
    (* A plain write racing an unresolved 2PC intent on the same coordinate:
       refuse rather than interleave with the prepare window (the intent's
       final version and LSN are not yet fixed). The client backs off and
       retries once the intent resolves. *)
    clear_in_flight t ~client ~request_id;
    t.ctx.reply ~client ~request_id Message.Unavailable
  end
  else begin
  let ops_or_error : (Log_record.op list, int) result =
    match op with
    | Message.Put { key; col; value } ->
      Ok [ Log_record.Put { key; col; value; version = latest_version t (key, col) + 1 } ]
    | Message.Delete { key; col } ->
      Ok [ Log_record.Delete { key; col; version = latest_version t (key, col) + 1 } ]
    | Message.Multi_put { key; cols } ->
      Ok
        (List.map
           (fun (col, value) ->
             Log_record.Put { key; col; value; version = latest_version t (key, col) + 1 })
           cols)
    | Message.Conditional_put { key; col; value; expected } ->
      (* Conditional put: executed only if the current version matches (§5.1). *)
      let current = latest_version t (key, col) in
      if current = expected then Ok [ Log_record.Put { key; col; value; version = current + 1 } ]
      else Error current
    | Message.Conditional_delete { key; col; expected } ->
      let current = latest_version t (key, col) in
      if current = expected then Ok [ Log_record.Delete { key; col; version = current + 1 } ]
      else Error current
    | Message.Multi_conditional_put { key; cols } -> (
      let mismatched =
        List.find_opt (fun (col, _, expected) -> latest_version t (key, col) <> expected) cols
      in
      match mismatched with
      | Some (col, _, _) -> Error (latest_version t (key, col))
      | None ->
        Ok
          (List.map
             (fun (col, value, expected) ->
               Log_record.Put { key; col; value; version = expected + 1 })
             cols))
    | Message.Txn_put { rows } ->
      (* Multi-operation transaction (§8.2): bound to one log record, so the
         batch is replicated, committed, and recovered all-or-nothing. *)
      if not (List.for_all (fun (key, _, _) -> t.ctx.routes_here key) rows) then begin
        reply_write t ~client ~request_id Message.Cross_range;
        Ok []
      end
      else
        Ok
          [
            Log_record.Batch
              (List.map
                 (fun (key, col, value) ->
                   Log_record.Put { key; col; value; version = latest_version t (key, col) + 1 })
                 rows);
          ]
    | Message.Txn_prepare_req { txn; anchor; fence; fence_ts; writes } ->
      (* 2PC phase one: first-committer-wins conflict checks, then the write
         intents replicate through this participant's Paxos log. Locks are
         taken at append so a racing prepare in the same term cannot pass the
         same checks before this one commits. *)
      if writes = [] || not (List.for_all (fun (key, _, _) -> t.ctx.routes_here key) writes)
      then begin
        reply_write t ~client ~request_id Message.Cross_range;
        Ok []
      end
      else begin
        let conflicts (key, col, _) =
          let coord = (key, col) in
          (match Hashtbl.find_opt t.locks coord with
          | Some owner -> not (String.equal owner txn)
          | None -> false)
          || (match Store.intent_txn_at t.ctx.store coord with
             | Some owner -> not (String.equal owner txn)
             | None -> false)
          (* Any pending queued write on the coordinate will install a
             version newer than our snapshot — conflict without waiting. *)
          || Option.is_some (Commit_queue.latest_version_for t.queue coord)
          || (match Store.head_info t.ctx.store coord with
             | Some (_, Some committed_ts) -> committed_ts > fence_ts
             | Some (head_lsn, None) -> Lsn.(head_lsn > fence)
             | None -> false)
        in
        if List.exists conflicts writes then begin
          dbg t "PREP %s conflict keys=%s"
            txn
            (String.concat "," (List.map (fun (k, _, _) -> k) writes));
          reply_write t ~client ~request_id Message.Txn_conflict;
          Ok []
        end
        else begin
          dbg t "PREP %s ok fence=%s fts=%d keys=%s" txn (Lsn.to_string fence) fence_ts
            (String.concat "," (List.map (fun (k, _, _) -> k) writes));
          List.iter (fun (key, col, _) -> Hashtbl.replace t.locks (key, col) txn) writes;
          Ok [ Log_record.Txn_prepare { txn; anchor; fence; writes } ]
        end
      end
    | Message.Txn_decide_req { txn; anchor; commit } -> (
      match existing_decision t ~anchor ~txn with
      | Some (committed, decided_ts) ->
        (* First decision wins — a presumed-abort may already have beaten a
           late commit request here; answer with what is on record. *)
        reply_write t ~client ~request_id (Message.Txn_decided { committed; ts = decided_ts });
        Ok []
      | None ->
        dbg t "DECIDE %s commit=%b ts=%d" txn commit ts;
        Hashtbl.replace t.pending_decisions txn (commit, ts);
        Ok [ Log_record.Txn_decision { txn; anchor; commit; ts } ])
    | Message.Txn_status_req { txn; anchor } -> (
      match existing_decision t ~anchor ~txn with
      | Some (committed, decided_ts) ->
        reply_write t ~client ~request_id (Message.Txn_decided { committed; ts = decided_ts });
        Ok []
      | None ->
        (* Presumed abort: no decision on record means the coordinator client
           may have died before asking for one — log an abort so every
           in-doubt participant converges on it. *)
        Hashtbl.replace t.pending_decisions txn (false, ts);
        Ok [ Log_record.Txn_decision { txn; anchor; commit = false; ts } ])
    | Message.Txn_resolve_req { txn; key = _; commit; ts = decision_ts } ->
      if Hashtbl.mem t.resolving txn then begin
        (* A resolve record is already in flight this term; acknowledging is
           safe — resolution is guaranteed by that record or, should a leader
           change drop it, by the presumed-abort sweep. *)
        reply_write t ~client ~request_id (Message.Written { lsn = t.cmt });
        Ok []
      end
      else begin
        match Store.intents_of t.ctx.store txn with
        | [] ->
          (* Already resolved (or the prepare never landed here): idempotent
             success. *)
          reply_write t ~client ~request_id (Message.Written { lsn = t.cmt });
          Ok []
        | intents ->
          (* Resolve every intent the transaction holds in this range, not
             just the addressed key: final cells are materialized here, at
             append time, with concrete versions — so replicas and recovery
             apply them like any other write. *)
          let writes =
            List.map
              (fun ((key, col), value) -> (key, col, value, latest_version t (key, col) + 1))
              intents
          in
          dbg t "RESOLVE %s commit=%b ts=%d keys=%s" txn commit decision_ts
            (String.concat "," (List.map (fun (k, _, _, _) -> k) writes));
          Hashtbl.replace t.resolving txn ();
          List.iter (fun (key, col, _, _) -> Hashtbl.remove t.locks (key, col)) writes;
          Ok [ Log_record.Txn_resolve { txn; commit; ts = decision_ts; writes } ]
      end
    | Message.Get _ | Message.Multi_get _ | Message.Scan _ | Message.Fence _
    | Message.Snap_get _ ->
      invalid_arg "perform_write: read operation"
  in
  match ops_or_error with
  | Error current -> reply_write t ~client ~request_id (Message.Version_mismatch { current })
  | Ok [] -> ()
  | Ok ops ->
    let lsns =
      List.map
        (fun op ->
          let lsn = Lsn.make ~epoch:t.epoch ~seq:(t.lst.Lsn.seq + 1) in
          t.lst <- lsn;
          (lsn, op))
        ops
    in
    let last_lsn = fst (List.nth lsns (List.length lsns - 1)) in
    (* Only the last record of a multi-column transaction carries the client
       reply and the originating (client, request id); the whole batch
       commits together, so the last record settling settles the request. *)
    let writes =
      List.map
        (fun (lsn, op) ->
          let origin = if Lsn.equal lsn last_lsn then Some (client, request_id) else None in
          (lsn, op, ts, origin))
        lsns
    in
    List.iter
      (fun (lsn, op, timestamp, origin) ->
        let reply =
          if Lsn.equal lsn last_lsn then
            Some (fun () -> reply_write t ~client ~request_id (reply_for_record op ~lsn))
          else None
        in
        Commit_queue.add t.queue ~lsn ~op ~timestamp ?origin ?reply ();
        Wal.append t.ctx.wal (Log_record.write ~cohort:t.ctx.range ~lsn ~timestamp ?origin op))
      writes;
    let started = Sim.Engine.now t.ctx.engine in
    Sim.Metrics.Histogram.record_span t.phases.queue (Sim.Sim_time.diff started arrived);
    let trace_id = Sim.Trace.request_trace_id ~client ~request_id in
    let lsn = if tracing t then Lsn.to_string last_lsn else "" in
    let force_span = span_start t ~trace_id ~lsn ~tag:"phase.force" "" in
    let repl_span = span_start t ~trace_id ~lsn ~tag:"phase.replication" "" in
    Hashtbl.replace t.inflight_started last_lsn { started; trace_id; repl_span };
    (* Log force and propose happen in parallel (Figure 4). *)
    Wal.force t.ctx.wal
      (guard t (fun () ->
           Sim.Metrics.Histogram.record_span t.phases.force
             (Sim.Sim_time.diff (Sim.Engine.now t.ctx.engine) started);
           span_end t ~span:force_span ~trace_id ~lsn ~tag:"phase.force" "locally durable";
           Commit_queue.mark_forced_upto t.queue last_lsn;
           try_commit t));
    propose t writes
  end

and propose_now t writes =
  let piggyback_cmt =
    if t.ctx.config.Config.piggyback_commits && Lsn.(t.cmt > Lsn.zero) then Some t.cmt
    else None
  in
  let msg = Message.Propose { range = t.ctx.range; epoch = t.epoch; writes; piggyback_cmt } in
  let trace_id = propose_trace_id t writes in
  List.iter (fun f -> t.ctx.send ~trace_id ~dst:f msg) t.active_followers

(* Replication pipelining ("Paxos in the Cloud"): with a finite window, at
   most [pipeline_depth] Propose batches may be awaiting commit; writes that
   arrive while the window is full accumulate and ship as one batched
   Propose when a slot frees. Depth 0 keeps the historical behavior — every
   write proposed the moment it is appended, unbounded. Held-back writes are
   already in the commit queue and the WAL, so the periodic re-propose tick
   still guarantees delivery if acks stall. *)
and propose t writes =
  if t.ctx.config.Config.pipeline_depth <= 0 then propose_now t writes
  else begin
    t.unproposed <- List.rev_append writes t.unproposed;
    pump_proposals t
  end

and pump_proposals t =
  if
    Queue.length t.inflight_props < t.ctx.config.Config.pipeline_depth
    && t.unproposed <> []
  then begin
    let batch = List.rev t.unproposed in
    t.unproposed <- [];
    let highest =
      List.fold_left (fun acc (lsn, _, _, _) -> Lsn.max acc lsn) Lsn.zero batch
    in
    Queue.push highest t.inflight_props;
    propose_now t batch
  end

(* Retire committed Propose batches and refill the window; called whenever
   cmt advances on the leader. *)
and retire_proposals t =
  if t.ctx.config.Config.pipeline_depth > 0 then begin
    while
      (not (Queue.is_empty t.inflight_props)) && Lsn.(Queue.peek t.inflight_props <= t.cmt)
    do
      ignore (Queue.pop t.inflight_props)
    done;
    pump_proposals t
  end

(* ------------------------------------------------------------------ *)
(* Read path (§5): strong reads are served by the leader — locally under a
   live lease, behind a read-index quorum round when leases are off, never
   once the lease has lapsed. Timeline reads are served by any live replica;
   a read-your-writes token parks them until the replica has applied the
   client's own writes.                                                  *)

(* Shared consistency gate for point reads and scans. [submit] serves the
   request (probing storage and paying the CPU cost); [finish] answers with
   a refusal reply, closing the request's [phase.read] span either way. *)
and gate_read t ~client ~request_id ~consistent ~token ~trace_id ~finish ~submit =
  if consistent then begin
    if t.role <> Leader then finish (Message.Not_leader { hint = t.leader })
    else if not t.open_for_writes then finish Message.Unavailable
    else if leases_enabled t then begin
      let ok = lease_valid t in
      trace t "lease.check" (if ok then "ok" else "lapsed");
      if ok then begin
        t.reads.leased <- t.reads.leased + 1;
        submit ()
      end
      else begin
        (* The correctness half of the lease: a leader that cannot prove its
           session fresh may already be deposed on the far side of a
           partition, so it must refuse rather than risk a stale "strong"
           read. No hint — we genuinely do not know who leads. *)
        t.reads.lease_rejects <- t.reads.lease_rejects + 1;
        finish (Message.Not_leader { hint = None })
      end
    end
    else begin
      (* Unleased: a read-index round. The reply is built only after a
         majority of followers confirm our epoch is still current; quorum
         intersection with any takeover quorum means no replacement leader
         can have committed anything yet. *)
      let seq = t.guard_seq in
      t.guard_seq <- seq + 1;
      let gspan =
        if tracing t then
          span_start t ~trace_id ~tag:"read.guard" (Printf.sprintf "#%d" seq)
        else 0
      in
      let g =
        {
          g_client = client;
          g_request_id = request_id;
          g_serve =
            (fun () ->
              t.reads.guarded <- t.reads.guarded + 1;
              submit ());
          g_acks = [];
          g_span = gspan;
          g_trace_id = trace_id;
        }
      in
      Hashtbl.replace t.guards seq g;
      let msg = Message.Read_guard { range = t.ctx.range; epoch = t.epoch; seq } in
      List.iter (fun f -> t.ctx.send ~trace_id ~dst:f msg) t.active_followers;
      after t (Sim.Sim_time.span_scale t.ctx.config.Config.client_timeout 0.5) (fun () ->
          if Hashtbl.mem t.guards seq then begin
            Hashtbl.remove t.guards seq;
            t.reads.guard_fails <- t.reads.guard_fails + 1;
            span_end t ~span:gspan ~trace_id ~tag:"read.guard" "no quorum; timeout";
            finish Message.Unavailable
          end)
    end
  end
  else if t.role = Offline then
    (* A live node still addressed for a cohort it no longer serves must say
       so: silence would burn the client's full retry timeout. *)
    finish Message.Unavailable
  else begin
    let serve_timeline () =
      (if t.role = Leader then t.reads.leader_timeline <- t.reads.leader_timeline + 1
       else t.reads.follower_timeline <- t.reads.follower_timeline + 1);
      submit ()
    in
    if Lsn.(token > Lsn.zero) && Lsn.(t.cmt < token) then begin
      (* Read-your-writes: hold the read until our applied prefix covers the
         client's last acked write, bounded by the staleness deadline. *)
      t.reads.token_waits <- t.reads.token_waits + 1;
      let wait_span =
        if tracing t then
          span_start t ~trace_id ~lsn:(Lsn.to_string token) ~tag:"read.wait_lsn"
            (Printf.sprintf "cmt=%s token=%s" (Lsn.to_string t.cmt) (Lsn.to_string token))
        else 0
      in
      let p =
        {
          p_client = client;
          p_request_id = request_id;
          p_token = token;
          p_serve = serve_timeline;
          p_done = false;
          p_wait_span = wait_span;
          p_trace_id = trace_id;
        }
      in
      t.parked_reads <- p :: t.parked_reads;
      after t t.ctx.config.Config.read_lsn_wait (fun () ->
          if not p.p_done then begin
            p.p_done <- true;
            t.parked_reads <- List.filter (fun q -> not (q == p)) t.parked_reads;
            t.reads.token_redirects <- t.reads.token_redirects + 1;
            span_end t ~span:wait_span ~trace_id ~tag:"read.wait_lsn"
              "staleness bound; redirecting to leader";
            finish (Message.Not_leader { hint = t.leader })
          end)
    end
    else serve_timeline ()
  end

(* Probe storage at serve time: the outcome decides the modeled CPU cost — a
   row-cache hit is a hash lookup, a miss pays the base cost plus one probe
   charge per SSTable actually binary-searched (bloom/LSN-pruned tables are
   free). The reply carries the probed values after that service time; the
   read thus linearizes at its probe instant, inside the request window
   (arrival for leased and timeline reads, quorum confirmation for guarded
   ones, token arrival for parked ones). *)
and handle_read t ~client ~request_id ~consistent ~token ~key ~cols ~single =
  let config = t.ctx.config in
  let probe_cost = ref 0.0 in
  (* Probes one column; the service charge accumulates in [probe_cost] so the
     single-column path (every point read) builds no intermediate pairs. *)
  let probe_value col =
    let cell, cost = Store.get_profiled t.ctx.store (key, col) in
    let value =
      match cell with
      | Some c when not (Row.is_tombstone c) ->
        Message.{ value = c.Row.value; version = c.Row.version }
      | Some c -> Message.{ value = None; version = c.Row.version }
      | None -> Message.{ value = None; version = 0 }
    in
    (probe_cost :=
       !probe_cost
       +.
       match cost with
       | Store.Cache_hit -> config.Config.read_cache_hit_service_us
       | Store.Probed probed ->
         config.Config.read_service_us
         +. (float_of_int probed *. config.Config.read_probe_service_us));
    value
  in
  let trace_id = if tracing t then Sim.Trace.request_trace_id ~client ~request_id else -1 in
  let read_span =
    if tracing t then
      span_start t ~trace_id ~tag:"phase.read"
        (Printf.sprintf "c%d#%d%s" client request_id (if consistent then " strong" else ""))
    else 0
  in
  let finish reply =
    span_end t ~span:read_span ~trace_id ~tag:"phase.read" "replied";
    t.ctx.reply ~client ~request_id reply
  in
  let serve_reply reply =
    guard t (fun () ->
        if consistent && not (strong_serve_ok t) then
          (* Deposed — or the lease lapsed — while the request sat in the
             CPU queue. *)
          finish (Message.Not_leader { hint = t.leader })
        else finish reply)
  in
  (* The single-column case — every point read — skips the per-column lists. *)
  let submit () =
    match cols with
    | [ col ] when single ->
      let v = probe_value col in
      Sim.Resource.submit t.ctx.cpu
        ~service:(Sim.Sim_time.of_us_f !probe_cost)
        (serve_reply (Message.Value v))
    | _ ->
      let values = List.map (fun col -> (col, probe_value col)) cols in
      let service = Sim.Sim_time.of_us_f !probe_cost in
      let reply =
        match values with
        | [ (_, v) ] when single -> Message.Value v
        | vs -> Message.Values vs
      in
      Sim.Resource.submit t.ctx.cpu ~service (serve_reply reply)
  in
  gate_read t ~client ~request_id ~consistent ~token ~trace_id ~finish ~submit

(* Range scan over this cohort's slice of the window (§3's data model is
   range-partitioned precisely so scans stay local to consecutive cohorts;
   the client stitches ranges together). Same consistency gating as reads. *)
and handle_scan t ~client ~request_id ~start_key ~end_key ~limit ~consistent ~token =
  let trace_id = if tracing t then Sim.Trace.request_trace_id ~client ~request_id else -1 in
  let read_span =
    if tracing t then
      span_start t ~trace_id ~tag:"phase.read" (Printf.sprintf "c%d#%d scan" client request_id)
    else 0
  in
  let finish reply =
    span_end t ~span:read_span ~trace_id ~tag:"phase.read" "replied";
    t.ctx.reply ~client ~request_id reply
  in
  let serve =
    guard t (fun () ->
        if consistent && not (strong_serve_ok t) then
          finish (Message.Not_leader { hint = t.leader })
        else begin
          let range_lo, range_hi = t.ctx.range_bounds () in
          let low = if String.compare start_key range_lo > 0 then start_key else range_lo in
          let high = if String.compare end_key range_hi < 0 then end_key else range_hi in
          let rows =
            if String.compare low high >= 0 then []
            else Store.scan t.ctx.store ~low ~high ~limit
          in
          let rows =
            List.map
              (fun (key, cols) ->
                ( key,
                  List.map
                    (fun (col, (cell : Row.cell)) ->
                      (col, Message.{ value = cell.value; version = cell.version }))
                    cols ))
              rows
          in
          let next =
            if String.compare range_hi end_key < 0 then Some range_hi else None
          in
          finish (Message.Rows { rows; next })
        end)
  in
  let service = Sim.Sim_time.of_us_f t.ctx.config.Config.read_service_us in
  let submit () = Sim.Resource.submit t.ctx.cpu ~service serve in
  gate_read t ~client ~request_id ~consistent ~token ~trace_id ~finish ~submit

(* Snapshot anchor capture: a strong read of (cmt, now) under the full
   lease/guard gate, re-validated at the CPU grant — the linearization point
   of a multi-range snapshot in this range. Everything committed here before
   this instant has [lsn <= cmt]; every transaction that commits with
   [commit_ts <= ts] prepared here before this instant (its prepare committed
   before its decision was timestamped), so its intent or final cell is at or
   below the fence. *)
and handle_fence t ~client ~request_id =
  let trace_id = if tracing t then Sim.Trace.request_trace_id ~client ~request_id else -1 in
  let read_span =
    if tracing t then
      span_start t ~trace_id ~tag:"phase.read" (Printf.sprintf "c%d#%d fence" client request_id)
    else 0
  in
  let finish reply =
    span_end t ~span:read_span ~trace_id ~tag:"phase.read" "replied";
    t.ctx.reply ~client ~request_id reply
  in
  let submit () =
    let service = Sim.Sim_time.of_us_f t.ctx.config.Config.read_cache_hit_service_us in
    Sim.Resource.submit t.ctx.cpu ~service
      (guard t (fun () ->
           if not (strong_serve_ok t) then finish (Message.Not_leader { hint = t.leader })
           else begin
             dbg t "FENCE c%d cmt=%s" client (Lsn.to_string t.cmt);
             finish (Message.Fenced { lsn = t.cmt; ts = now_us t })
           end))
  in
  gate_read t ~client ~request_id ~consistent:true ~token:Lsn.zero ~trace_id ~finish ~submit

(* MVCC snapshot read: served by any replica via the timeline gate, parked on
   the fence LSN as its read-your-writes token — once the applied prefix
   covers the fence, interval visibility against (fence, fence_ts) is
   well-defined locally. *)
and handle_snap_get t ~client ~request_id ~key ~col ~fence ~fence_ts =
  let trace_id = if tracing t then Sim.Trace.request_trace_id ~client ~request_id else -1 in
  let read_span =
    if tracing t then
      span_start t ~trace_id ~tag:"phase.read" (Printf.sprintf "c%d#%d snap" client request_id)
    else 0
  in
  let finish reply =
    span_end t ~span:read_span ~trace_id ~tag:"phase.read" "replied";
    t.ctx.reply ~client ~request_id reply
  in
  let submit () =
    let service = Sim.Sim_time.of_us_f t.ctx.config.Config.read_service_us in
    Sim.Resource.submit t.ctx.cpu ~service
      (guard t (fun () ->
           let result = Store.snapshot_get t.ctx.store (key, col) ~fence ~fence_ts in
           dbg t "SNAP c%d %s fence=%s fts=%d cmt=%s head=%s -> %s" client key
             (Lsn.to_string fence) fence_ts (Lsn.to_string t.cmt)
             (match Store.get t.ctx.store (key, col) with
             | Some c ->
               Printf.sprintf "%s@%s"
                 (match c.Row.value with Some v -> v | None -> "<del>")
                 (Lsn.to_string c.Row.lsn)
             | None -> "none")
             (match result with
             | Store.Snap_blocked txn -> "blocked:" ^ txn
             | Store.Snap_cell c ->
               Printf.sprintf "%s@%s/ts=%s"
                 (match c.Row.value with Some v -> v | None -> "<del>")
                 (Lsn.to_string c.Row.lsn)
                 (match c.Row.txn_ts with Some ts -> string_of_int ts | None -> "-")
             | Store.Snap_none -> "none");
           let reply =
             match result with
             | Store.Snap_blocked txn -> Message.Snap_blocked { txn }
             | Store.Snap_cell c when not (Row.is_tombstone c) ->
               Message.Value { value = c.Row.value; version = c.Row.version }
             | Store.Snap_cell c -> Message.Value { value = None; version = c.Row.version }
             | Store.Snap_none -> Message.Value { value = None; version = 0 }
           in
           finish reply))
  in
  gate_read t ~client ~request_id ~consistent:false ~token:fence ~trace_id ~finish ~submit

and handle_client t ~client ~request_id op =
  match op with
  | Message.Get { key; col; consistent; token } ->
    handle_read t ~client ~request_id ~consistent ~token ~key ~cols:[ col ] ~single:true
  | Message.Multi_get { key; cols; consistent; token } ->
    handle_read t ~client ~request_id ~consistent ~token ~key ~cols ~single:false
  | Message.Scan { start_key; end_key; limit; consistent; token } ->
    handle_scan t ~client ~request_id ~start_key ~end_key ~limit ~consistent ~token
  | Message.Fence _ -> handle_fence t ~client ~request_id
  | Message.Snap_get { key; col; fence; fence_ts } ->
    handle_snap_get t ~client ~request_id ~key ~col ~fence ~fence_ts
  | _ -> handle_write t ~client ~request_id op

(* ------------------------------------------------------------------ *)
(* Follower side of Figure 4.                                           *)

(* Leader traffic accepted: note the contact (for stranding detection) and,
   if we were mid-election, abandon it — a live leader exists. *)
let accept_leader t ~src ~epoch =
  if epoch > t.epoch then t.epoch <- epoch;
  if t.role = Candidate then begin
    t.role <- Follower;
    t.election_running <- false
  end;
  t.leader <- Some src;
  t.last_leader_msg <- Sim.Engine.now t.ctx.engine;
  !arm_leader_watch t;
  !arm_resync t

(* Apply the committed prefix. The network can lose proposes, so only the
   seq-contiguous prefix of the queue may be applied; a hole means a propose
   vanished in flight and everything beyond it must wait for a re-proposal
   or an explicit catch-up. Our own durable log records inside the newly
   committed window that did not commit (discarded by a leader change and
   never re-proposed) are logically truncated so local recovery skips them
   (§6.1.1). *)
let apply_commits t ~upto =
  if Lsn.(upto > t.cmt) then begin
    let old_cmt = t.cmt in
    let entries = Commit_queue.pop_contiguous t.queue ~from:t.cmt ~upto in
    List.iter
      (fun (e : Commit_queue.entry) ->
        Store.apply t.ctx.store ~lsn:e.Commit_queue.lsn ~timestamp:e.timestamp e.op;
        t.cmt <- Lsn.max t.cmt e.lsn;
        cache_outcome t e.origin (reply_for_record e.op ~lsn:e.lsn);
        if Log_record.is_meta e.op then on_meta t e.op)
      entries;
    (* The commit point can pass appended-but-not-yet-locally-forced entries
       (they are globally committed); lst must never trail cmt. *)
    t.lst <- Lsn.max t.lst t.cmt;
    if entries <> [] then begin
      if tracing t then
        Sim.Trace.event t.ctx.trace ~node:t.ctx.node_id ~cohort:t.ctx.range
          ~lsn:(Lsn.to_string t.cmt) ~tag:"follower.apply"
          (Printf.sprintf "r%d n%d applied %d upto %s" t.ctx.range t.ctx.node_id
             (List.length entries) (Lsn.to_string t.cmt));
      let applied = List.map (fun (e : Commit_queue.entry) -> e.Commit_queue.lsn) entries in
      let own = Store.durable_write_lsns_in t.ctx.store ~above:old_cmt ~upto:t.cmt in
      let stale = List.filter (fun l -> not (List.exists (Lsn.equal l) applied)) own in
      if stale <> [] then begin
        Skipped_lsns.add (Store.skipped t.ctx.store) stale;
        trace t "logical_truncation" (String.concat "," (List.map Lsn.to_string stale))
      end;
      Wal.append t.ctx.wal (Log_record.commit_upto ~cohort:t.ctx.range t.cmt)
    end;
    flush_parked_reads t;
    if Lsn.(t.cmt < upto) then begin
      trace t "commit_gap"
        (Printf.sprintf "cmt=%s committed=%s" (Lsn.to_string t.cmt) (Lsn.to_string upto));
      !trigger_resync t
    end
  end

(* Cumulative acks coalesce ([Config.ack_coalesce] > 0): instead of one Ack
   per Propose, note the newest contiguous-forced prefix and answer once per
   coalescing window. Acks are cumulative, so sending only the latest value
   loses nothing; the window only defers when the leader learns it. *)
let send_ack_now t ~dst ~upto ~trace_id =
  t.ctx.send ~trace_id ~dst (Message.Ack { range = t.ctx.range; from = t.ctx.node_id; upto })

let flush_ack t =
  t.ack_timer_armed <- false;
  match t.ack_pending with
  | Some (dst, upto, trace_id) ->
    t.ack_pending <- None;
    if t.role = Follower then send_ack_now t ~dst ~upto ~trace_id
  | None -> ()

let send_or_coalesce_ack t ~dst ~upto ~trace_id =
  let window = t.ctx.config.Config.ack_coalesce in
  if Sim.Sim_time.span_compare window Sim.Sim_time.span_zero <= 0 then
    send_ack_now t ~dst ~upto ~trace_id
  else begin
    (* Latest leader wins the destination; upto is monotone under Lsn.max,
       and the trace id travels with whichever upto wins (the coalesced ack
       is causally the newest covered write's ack; earlier requests it also
       covers see the coalescing delay as ack wait). *)
    let upto, trace_id =
      match t.ack_pending with
      | Some (_, prev, prev_tid) ->
        if Lsn.(upto >= prev) then (upto, trace_id) else (prev, prev_tid)
      | None -> (upto, trace_id)
    in
    t.ack_pending <- Some (dst, upto, trace_id);
    if not t.ack_timer_armed then begin
      t.ack_timer_armed <- true;
      after t window (fun () -> flush_ack t)
    end
  end

let handle_propose t ~src ~sent_at ~epoch ~writes ~piggyback_cmt =
  if epoch >= t.epoch && t.role <> Offline && t.role <> Leader then begin
    accept_leader t ~src ~epoch;
    record_transit t ~sent_at;
    (* Writes at or below the commit point are known-committed duplicates;
       anything above it goes through the normal protocol — append, force,
       ack (Figure 4). Retransmissions (takeover re-proposals, Figure 6 line
       9, and the leader's periodic re-proposes under loss) are deduplicated
       by LSN so the log is not polluted with copies. *)
    let appended = ref [] in
    let newest_origin = ref None in
    List.iter
      (fun (lsn, op, timestamp, origin) ->
        if Lsn.(lsn > t.cmt) then begin
          if not (Commit_queue.mem t.queue lsn) then begin
            Commit_queue.add t.queue ~lsn ~op ~timestamp ?origin ();
            Wal.append t.ctx.wal (Log_record.write ~cohort:t.ctx.range ~lsn ~timestamp ?origin op);
            appended := lsn :: !appended;
            if origin <> None then newest_origin := origin
          end
        end)
      writes;
    let force_tid =
      match !newest_origin with
      | Some (client, request_id) when tracing t ->
        Sim.Trace.request_trace_id ~client ~request_id
      | _ -> -1
    in
    let force_span =
      if !appended <> [] then span_start t ~trace_id:force_tid ~tag:"follower.force" ""
      else 0
    in
    let ack () =
      span_end t ~span:force_span ~trace_id:force_tid ~tag:"follower.force" "locally durable";
      (* Mark exactly what this propose appended as forced (a concurrent
         retransmission may have back-filled an older LSN whose force is
         still in flight), then ack only the seq-contiguous forced prefix:
         with loss, later writes can sit beyond a hole, and acking past the
         hole would let the leader count durability we do not have. *)
      List.iter (fun lsn -> Commit_queue.mark_forced t.queue lsn) !appended;
      let upto =
        if !chaos_ack_past_holes then
          (* Planted bug (see the flag's comment): claim everything appended,
             holes and all. *)
          List.fold_left Lsn.max t.cmt !appended
        else
          match Commit_queue.contiguous_forced_upto t.queue ~from:t.cmt with
          | Some lsn -> lsn
          | None -> t.cmt
      in
      (* lst advances only along this same contiguous forced prefix: it is
         what we advertise in elections (Figure 7) and takeover replies, so
         it must never claim sequence numbers beyond a hole — a candidate
         missing a committed write could otherwise out-bid the replica that
         actually has it, and the write would be logically truncated away. *)
      t.lst <- Lsn.max t.lst upto;
      if Lsn.(upto > Lsn.zero) then begin
        (* Tag the ack with the newest covered write's request, read from the
           queue entry at the acked point — cumulative acks answer the whole
           forced prefix, and that entry's commit is what the ack unblocks. *)
        let trace_id =
          if tracing t then
            match Commit_queue.origin_at t.queue upto with
            | Some (client, request_id) -> Sim.Trace.request_trace_id ~client ~request_id
            | None -> -1
          else -1
        in
        send_or_coalesce_ack t ~dst:src ~upto ~trace_id
      end
    in
    if !appended <> [] then Wal.force t.ctx.wal (guard t ack) else ack ();
    match piggyback_cmt with
    | Some upto -> apply_commits t ~upto
    | None -> ()
  end

let handle_commit t ~src ~epoch ~upto =
  if epoch >= t.epoch && t.role <> Offline && t.role <> Leader then begin
    accept_leader t ~src ~epoch;
    apply_commits t ~upto
  end

(* Follower side of a read-index round: confirm the asking leader's epoch is
   still the newest we know. The epoch is re-checked when the CPU grants the
   ack — if a takeover query bumped our epoch while the guard sat in the
   queue, acking would hand the deposed leader a quorum it no longer has. *)
let handle_guard t ~src ~epoch ~seq =
  if epoch >= t.epoch && t.role <> Offline && t.role <> Leader then begin
    accept_leader t ~src ~epoch;
    let service = Sim.Sim_time.of_us_f t.ctx.config.Config.read_guard_service_us in
    Sim.Resource.submit t.ctx.cpu ~service
      (guard t (fun () ->
           if t.role = Follower && epoch >= t.epoch then
             t.ctx.send ~dst:src
               (Message.Read_guard_ack { range = t.ctx.range; from = t.ctx.node_id; seq })))
  end

(* Leader side: a guard completes on its [majority - 1]'th distinct member
   ack (the leader itself is the quorum's last member). Ack bookkeeping runs
   through the leader's CPU: read-index rounds are not free for the leader —
   every guarded read costs it one ack-processing slot per responding
   follower, which is exactly why the lease pays off at saturation. *)
let handle_guard_ack t ~from ~seq =
  let service = Sim.Sim_time.of_us_f t.ctx.config.Config.read_guard_service_us in
  Sim.Resource.submit t.ctx.cpu ~service
    (guard t (fun () ->
         if t.role = Leader && List.mem from (t.ctx.members ()) then
           match Hashtbl.find_opt t.guards seq with
           | Some g when not (List.mem from g.g_acks) ->
             g.g_acks <- from :: g.g_acks;
             if List.length g.g_acks >= Config.majority t.ctx.config - 1 then begin
               Hashtbl.remove t.guards seq;
               span_end t ~span:g.g_span ~trace_id:g.g_trace_id ~tag:"read.guard"
                 "quorum confirmed";
               g.g_serve ()
             end
           | _ -> ()))

(* ------------------------------------------------------------------ *)
(* Metadata records: membership changes and range splits ride the same
   Paxos-replicated log as data writes, so every replica applies them at
   the same point in the LSN order (§10).                               *)

(* Leader-only: append a metadata record to the log and replicate it like any
   write — forced locally, proposed to the followers, committed by the usual
   majority rule (the OLD configuration's majority: acks are filtered by
   membership, so a not-yet-promoted learner cannot help commit the very
   record that promotes it). *)
let enqueue_meta t op =
  let ts = now_us t in
  let lsn = Lsn.make ~epoch:t.epoch ~seq:(t.lst.Lsn.seq + 1) in
  t.lst <- lsn;
  trace t "meta_append"
    (Format.asprintf "%s %a" (Lsn.to_string lsn) Log_record.pp
       (Log_record.write ~cohort:t.ctx.range ~lsn ~timestamp:ts op));
  Commit_queue.add t.queue ~lsn ~op ~timestamp:ts ();
  Wal.append t.ctx.wal (Log_record.write ~cohort:t.ctx.range ~lsn ~timestamp:ts op);
  Wal.force t.ctx.wal
    (guard t (fun () ->
         Commit_queue.mark_forced_upto t.queue lsn;
         try_commit t));
  propose t [ (lsn, op, ts, None) ]

(* ------------------------------------------------------------------ *)
(* Catch-up: leader side (§6.1 and Figure 6 lines 3-7).                 *)

(* Catch-up is served to cohort members and to the joiner of an in-flight
   migration. A replica that was migrated away could otherwise keep asking
   and, via [pending_final], block writes forever; it learns its fate from
   the published layout instead. *)
let catchup_eligible t ~follower =
  List.mem follower (t.ctx.members ())
  || (match t.migration with Some m -> m.joiner = follower | None -> false)

(* Bring [follower], whose last committed LSN is [f_cmt], up to the leader's
   last committed LSN. Writes are blocked for the duration of the (short)
   final round so the follower is fully caught up when it completes. *)
let leader_run_catchup t ~follower ~f_cmt =
  if t.role = Leader && catchup_eligible t ~follower then begin
    t.active_followers <- List.filter (fun f -> f <> follower) t.active_followers;
    if not (List.mem follower t.pending_final) then
      t.pending_final <- follower :: t.pending_final;
    let cells =
      if Lsn.(f_cmt < t.cmt) then
        Store.committed_cells_in t.ctx.store ~above:f_cmt ~upto:t.cmt
      else []
    in
    trace t "catchup_serve"
      (Printf.sprintf "to n%d cells=%d upto=%s" follower (List.length cells)
         (Lsn.to_string t.cmt));
    dbg t "CATCHUP-SERVE to=n%d above=%s upto=%s cells=[%s]" follower
      (Lsn.to_string f_cmt) (Lsn.to_string t.cmt)
      (String.concat ";"
         (List.map
            (fun (((k, c), (cell : Row.cell)) : Row.coord * Row.cell) ->
              Printf.sprintf "%s/%s@%s" k c (Lsn.to_string cell.lsn))
            cells));
    t.ctx.send ~dst:follower
      (Message.Catchup_data
         { range = t.ctx.range; epoch = t.epoch; cells; upto = t.cmt; final = true });
    (* If the follower dies mid-round its Catchup_done never arrives; unblock
       after a grace period so the cohort does not stall. *)
    after t (Sim.Sim_time.ms 2000) (fun () ->
        if List.mem follower t.pending_final then begin
          t.pending_final <- List.filter (fun f -> f <> follower) t.pending_final;
          drain_waiting t
        end)
  end

(* A follower finished catching up: activate it and close any in-flight gap
   by re-proposing the leader's still-pending writes (idempotent at the
   follower). For a takeover this re-proposal is exactly Figure 6 line 9 —
   the unresolved writes in (l.cmt, l.lst]. *)
let leader_catchup_done t ~follower ~upto =
  if t.role = Leader && catchup_eligible t ~follower then begin
    t.pending_final <- List.filter (fun f -> f <> follower) t.pending_final;
    if Lsn.(upto < t.cmt) then
      (* The follower fell behind again (it crashed and came back mid-round):
         run another round. *)
      leader_run_catchup t ~follower ~f_cmt:upto
    else begin
      if not (List.mem follower t.active_followers) then
        t.active_followers <- follower :: t.active_followers;
      (* A migration's joiner is caught up: commit the membership change that
         swaps it in (and the retiring replica out). The change is replicated
         under the old configuration's majority. *)
      (match t.migration with
      | Some m when m.joiner = follower && m.phase = `Catchup ->
        m.phase <- `Change;
        trace t "migration_change" (Printf.sprintf "joiner=n%d caught up" m.joiner);
        enqueue_meta t (Log_record.Cohort_change { add = Some m.joiner; remove = m.remove })
      | _ -> ());
      let pending = Commit_queue.to_list t.queue in
      if pending <> [] then begin
        let writes =
          List.map
            (fun (e : Commit_queue.entry) -> (e.Commit_queue.lsn, e.op, e.timestamp, e.origin))
            pending
        in
        t.ctx.send ~dst:follower
          (Message.Propose
             { range = t.ctx.range; epoch = t.epoch; writes; piggyback_cmt = None })
      end;
      (* Attributed to the follower's track: "this follower is caught up and
         active" is a statement about the follower, and the timeline analyzer
         matches it by (node = restarted replica, cohort). *)
      Sim.Trace.event t.ctx.trace ~node:follower ~cohort:t.ctx.range ~lsn:(Lsn.to_string upto)
        ~tag:"follower_active"
        (Printf.sprintf "r%d n%d upto=%s" t.ctx.range follower (Lsn.to_string upto));
      if t.takeover_pending then begin
        t.takeover_pending <- false;
        trace t "takeover_quorum" (Printf.sprintf "first=n%d" follower);
        if Lsn.(t.cmt >= t.takeover_open_at) then open_cohort t
        else begin
          (* Figure 6: the unresolved writes in (l.cmt, l.lst] were acked by
             the old leader and must be committed — and applied, so strong
             reads cannot travel back in time — before the cohort reopens.
             The commit timer re-proposes them under loss until the tail
             lands; [try_commit] opens the cohort when cmt reaches the lst
             we took over with. *)
          t.takeover_commit_wait <- true;
          trace t "takeover_commit_wait"
            (Printf.sprintf "cmt=%s open_at=%s" (Lsn.to_string t.cmt)
               (Lsn.to_string t.takeover_open_at));
          arm_commit_timer t
        end
      end;
      drain_waiting t
    end
  end

(* ------------------------------------------------------------------ *)
(* Catch-up: follower side (§6.1).                                      *)

let follower_handle_catchup_data t ~src ~epoch ~cells ~upto ~final =
  if epoch >= t.epoch && t.role <> Offline && t.role <> Leader then begin
    accept_leader t ~src ~epoch;
    let old_cmt = t.cmt in
    let catchup_span =
      span_start t ~lsn:(Lsn.to_string upto) ~tag:"recovery.catchup"
        (Printf.sprintf "from n%d: %d cells, %s -> %s%s" src (List.length cells)
           (Lsn.to_string old_cmt) (Lsn.to_string upto)
           (if final then " (final)" else ""))
    in
    (* Logical truncation (§6.1.1): LSNs in our log after f.cmt that the
       leader does not vouch for were discarded by a leader change and must
       never be re-applied by local recovery. The leader vouches for the
       cells it sent and for its still-pending writes above [upto] (which it
       re-proposes right after this round). *)
    let vouched =
      List.fold_left (fun acc ((_, (cell : Row.cell)) : Row.coord * Row.cell) ->
          cell.lsn :: acc)
        [] cells
    in
    (* Scan our raw durable extent, not lst: with loss the log can hold
       records beyond the contiguous prefix lst tracks, and any of them
       inside the vouched window that the leader does not vouch for must be
       truncated too. *)
    let own =
      Store.durable_write_lsns_in t.ctx.store ~above:old_cmt ~upto:(Lsn.max t.lst upto)
    in
    let stale =
      List.filter
        (fun lsn -> Lsn.(lsn <= upto) && not (List.exists (Lsn.equal lsn) vouched))
        own
    in
    if stale <> [] then begin
      Skipped_lsns.add (Store.skipped t.ctx.store) stale;
      trace t "logical_truncation"
        (String.concat "," (List.map Lsn.to_string stale))
    end;
    dbg t "CATCHUP-APPLY from=n%d upto=%s cells=%d stale=[%s]" src (Lsn.to_string upto)
      (List.length cells)
      (String.concat "," (List.map Lsn.to_string stale));
    (* Entries at or below the catch-up point are superseded by the cells;
       anything above it that is still valid will be re-proposed (the leader
       re-proposes its pending queue right after this round and on every
       commit tick), so the queue is cleared outright — stale entries from a
       deposed leader must not linger and apply later. In-flight duplicate
       markers for dropped entries are released so a client retry is not
       silently swallowed if this node is later elected. *)
    ignore (Commit_queue.pop_upto t.queue upto);
    List.iter
      (fun (e : Commit_queue.entry) ->
        match e.Commit_queue.origin with
        | Some (client, request_id) -> clear_in_flight t ~client ~request_id
        | None -> ())
      (Commit_queue.drop_above t.queue upto);
    List.iter
      (fun (lsn, timestamp, op) ->
        let already = List.exists (Lsn.equal lsn) own in
        if not already then
          Wal.append t.ctx.wal (Log_record.write ~cohort:t.ctx.range ~lsn ~timestamp op);
        Store.apply t.ctx.store ~lsn ~timestamp op)
      (install_ops_by_lsn cells);
    t.cmt <- Lsn.max t.cmt upto;
    (* Everything above the catch-up point was dropped from the queue, so our
       vouched contiguous prefix ends exactly at cmt; that is the honest lst
       until the leader's re-proposals rebuild the chain. Keeping a larger
       stale value would let this replica out-bid others in an election with
       sequence numbers it no longer vouches for. *)
    t.lst <- t.cmt;
    Wal.append t.ctx.wal (Log_record.commit_upto ~cohort:t.ctx.range t.cmt);
    (* Writes we had forced but never applied are now committed (or
       truncated); re-learn their outcomes from our own log so duplicate
       retries stay suppressed if this node is later elected leader. *)
    recache_outcomes_from_log t ~above:old_cmt ~upto:t.cmt;
    flush_parked_reads t;
    let finish =
      guard t (fun () ->
          span_end t ~span:catchup_span ~lsn:(Lsn.to_string t.cmt) ~tag:"recovery.catchup"
            "caught-up batch durable";
          t.catching_up <- false;
          if final then
            t.ctx.send ~dst:src
              (Message.Catchup_done { range = t.ctx.range; from = t.ctx.node_id; upto = t.cmt }))
    in
    Wal.force t.ctx.wal finish
  end

(* ------------------------------------------------------------------ *)
(* Replica migration / node bootstrap (§10): the leader ships a snapshot
   of its store to a joining node, catches it up from the snapshot
   horizon, then commits a [Cohort_change] that swaps it in.            *)

(* Drop this replica from the node: waiting writers are failed, the role
   goes Offline so every guarded callback dies, and any leader-owned
   election znodes are released so the remaining members can elect. The
   node layer forgets the cohort and drops its log records. *)
let retire t =
  if t.role <> Offline then begin
    trace t "retire"
      (Printf.sprintf "role=%s%s"
         (match t.role with
         | Leader -> "leader"
         | Follower -> "follower"
         | Candidate -> "candidate"
         | Offline -> "offline")
         (if t.learner then " (learner)" else ""));
    let waiting = t.waiting in
    t.waiting <- [];
    List.iter
      (fun w ->
        clear_in_flight t ~client:w.client ~request_id:w.request_id;
        t.ctx.reply ~client:w.client ~request_id:w.request_id Message.Unavailable)
      waiting;
    fail_guards t;
    let parked = List.rev t.parked_reads in
    t.parked_reads <- [];
    List.iter
      (fun p ->
        if not p.p_done then begin
          p.p_done <- true;
          t.ctx.reply ~client:p.p_client ~request_id:p.p_request_id Message.Unavailable
        end)
      parked;
    let zk = t.ctx.zk () in
    (match t.own_candidate with
    | Some path -> Coord.Zk_client.delete_node zk ~path (fun _ -> ())
    | None -> ());
    if t.role = Leader then Coord.Zk_client.delete_node zk ~path:(zk_leader t) (fun _ -> ());
    t.role <- Offline;
    t.leader <- None;
    t.open_for_writes <- false;
    t.takeover_pending <- false;
    t.takeover_commit_wait <- false;
    t.migration <- None;
    t.splitting <- false;
    t.learner <- false;
    t.snapshot_next <- 0;
    t.election_running <- false;
    t.own_candidate <- None
  end

let abort_migration t reason =
  match t.migration with
  | None -> ()
  | Some m ->
    (* Clean abort: the membership change was never logged, so the layout is
       untouched; the stranded learner retires itself on its own timeout. *)
    trace t "migration_abort" (Printf.sprintf "joiner=n%d %s" m.joiner reason);
    t.migration <- None

(* Ship the current chunk through the node's bulk-transfer link (bandwidth-
   modelled), then retransmit every 500ms until the joiner acks it. *)
let rec migration_send_chunk t =
  match t.migration with
  | Some m when t.role = Leader && m.phase = `Snapshot && m.next_chunk < Array.length m.chunks
    ->
    let seq = m.next_chunk in
    m.attempts <- m.attempts + 1;
    if m.attempts > 20 then abort_migration t "snapshot retries exhausted"
    else begin
      let msg =
        Message.Snapshot_chunk
          {
            range = t.ctx.range;
            epoch = t.epoch;
            seq;
            total = Array.length m.chunks;
            cells = m.chunks.(seq);
            upto = m.upto;
            final = seq = Array.length m.chunks - 1;
          }
      in
      Sim.Resource.submit_bytes t.ctx.xfer ~bytes:(Message.size msg)
        ~bytes_per_sec:t.ctx.config.Config.xfer_bytes_per_sec
        (guard t (fun () ->
             match t.migration with
             | Some m' when m' == m && t.role = Leader && m.phase = `Snapshot && m.next_chunk = seq
               ->
               t.ctx.send ~dst:m.joiner msg;
               after t (Sim.Sim_time.ms 500) (fun () ->
                   match t.migration with
                   | Some m' when m' == m && m.phase = `Snapshot && m.next_chunk = seq ->
                     migration_send_chunk t
                   | _ -> ())
             | _ -> ()))
    end
  | _ -> ()

let handle_snapshot_ack t ~from ~seq =
  match t.migration with
  | Some m when t.role = Leader && from = m.joiner && m.phase = `Snapshot && seq = m.next_chunk
    ->
    m.next_chunk <- seq + 1;
    m.attempts <- 0;
    if m.next_chunk >= Array.length m.chunks then begin
      (* Snapshot installed; catch the joiner up from the snapshot horizon
         through the live log, exactly like a rejoining follower. *)
      m.phase <- `Catchup;
      trace t "migration_catchup"
        (Printf.sprintf "joiner=n%d upto=%s" m.joiner (Lsn.to_string m.upto));
      leader_run_catchup t ~follower:m.joiner ~f_cmt:m.upto;
      after t t.ctx.config.Config.migration_timeout (fun () ->
          match t.migration with
          | Some m' when m' == m && m.phase <> `Change ->
            abort_migration t "catch-up stalled"
          | _ -> ())
    end
    else migration_send_chunk t
  | _ -> ()

(* Admin entry point (leader only): bootstrap [joiner] into the cohort,
   retiring [remove] once the joiner is in. Returns false if the cohort
   cannot start a migration right now. *)
let request_join t ~joiner ?remove () =
  let members = t.ctx.members () in
  let valid_remove =
    match remove with
    | None -> true
    | Some r -> r <> joiner && r <> t.ctx.node_id && List.mem r members
  in
  if
    t.role = Leader && t.open_for_writes
    && Option.is_none t.migration
    && (not t.splitting)
    && (not (List.mem joiner members))
    && valid_remove
  then begin
    (* Snapshot = the newest committed cell per coordinate (tombstones
       included) plus the retained older MVCC versions behind each — without
       the chain tails the joiner could not answer an interval snapshot read
       whose timestamp predates a coordinate's newest version. Chunked by
       size; always at least one chunk, so an empty range still teaches the
       joiner the snapshot horizon. *)
    (* Sorted by LSN so the joiner installs in log order and, crucially, so a
       chunk boundary never splits one LSN: the joiner appends one WAL record
       per LSN and skips LSNs it already holds durably, so the second half of
       a straddled LSN would silently miss the WAL. *)
    let cells =
      Store.all_cells t.ctx.store @ Store.chain_history_cells t.ctx.store
      |> List.stable_sort (fun (_, (a : Row.cell)) (_, (b : Row.cell)) ->
             Lsn.compare a.lsn b.lsn)
    in
    let chunk_bytes = t.ctx.config.Config.snapshot_chunk_bytes in
    let chunks = ref [] and cur = ref [] and cur_bytes = ref 0 in
    List.iter
      (fun ((coord, (cell : Row.cell)) as c) ->
        let key, col = coord in
        let b =
          String.length key + String.length col
          + (match cell.value with Some v -> String.length v | None -> 0)
          + 24
        in
        let boundary =
          !cur_bytes >= chunk_bytes
          && match !cur with (_, (p : Row.cell)) :: _ -> not (Lsn.equal p.lsn cell.lsn) | [] -> false
        in
        if boundary then begin
          chunks := List.rev !cur :: !chunks;
          cur := [];
          cur_bytes := 0
        end;
        cur := c :: !cur;
        cur_bytes := !cur_bytes + b)
      cells;
    if !cur <> [] || !chunks = [] then chunks := List.rev !cur :: !chunks;
    let chunks = Array.of_list (List.rev !chunks) in
    let m =
      { joiner; remove; chunks; upto = t.cmt; next_chunk = 0; phase = `Snapshot; attempts = 0 }
    in
    t.migration <- Some m;
    trace t "migration_start"
      (Printf.sprintf "joiner=n%d remove=%s chunks=%d cells=%d upto=%s" joiner
         (match remove with Some r -> Printf.sprintf "n%d" r | None -> "-")
         (Array.length chunks) (List.length cells) (Lsn.to_string t.cmt));
    migration_send_chunk t;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Migration: joiner (learner) side.                                    *)

(* Become a learner replica: receive the snapshot and catch-up, ack
   proposes (they do not count toward the old majority), but never vote in
   elections. A learner that is never promoted retires itself. *)
let start_learner t ~leader =
  t.role <- Follower;
  t.learner <- true;
  t.snapshot_next <- 0;
  t.catching_up <- true;
  t.leader <- Some leader;
  t.last_leader_msg <- Sim.Engine.now t.ctx.engine;
  trace t "learner_start" (Printf.sprintf "leader=n%d" leader);
  let inc = t.ctx.incarnation () in
  ignore
    (Sim.Engine.schedule t.ctx.engine ~after:t.ctx.config.Config.learner_timeout (fun () ->
         if t.ctx.incarnation () = inc && t.learner && t.role <> Offline then begin
           trace t "learner_abort" "never promoted; migration aborted";
           t.ctx.retire_self ()
         end))

(* Install one snapshot chunk. Strictly in-order: acking chunk [k] promises
   every chunk [<= k] is installed and durable, so a joiner that crashed and
   restarted mid-transfer (losing its WAL tail and its chunk counter) never
   acks the next chunk — the source retries, then aborts cleanly. Duplicate
   chunks (a retransmission racing the ack) are re-acked idempotently. *)
let handle_snapshot_chunk t ~src ~epoch ~seq ~cells ~upto ~final =
  if t.role = Follower && t.learner && epoch >= t.epoch then begin
    if epoch > t.epoch then t.epoch <- epoch;
    t.leader <- Some src;
    t.last_leader_msg <- Sim.Engine.now t.ctx.engine;
    let ack () =
      t.ctx.send ~dst:src
        (Message.Snapshot_ack { range = t.ctx.range; from = t.ctx.node_id; seq })
    in
    if seq < t.snapshot_next then ack ()
    else if seq > t.snapshot_next then ()
    else begin
      t.snapshot_next <- seq + 1;
      (* WAL-append then apply, like catch-up install: the snapshot cells
         become this replica's durable prefix, so local recovery and later
         catch-up serving work unchanged. Idempotent under retransmission. *)
      let own = Store.durable_write_lsns_in t.ctx.store ~above:Lsn.zero ~upto in
      List.iter
        (fun (lsn, timestamp, op) ->
          if not (List.exists (Lsn.equal lsn) own) then
            Wal.append t.ctx.wal (Log_record.write ~cohort:t.ctx.range ~lsn ~timestamp op);
          Store.apply t.ctx.store ~lsn ~timestamp op)
        (install_ops_by_lsn cells);
      if final then begin
        (* The snapshot horizon is our commit point: every committed write at
           or below it is covered by the installed cells. *)
        t.cmt <- Lsn.max t.cmt upto;
        t.lst <- t.cmt;
        Wal.append t.ctx.wal (Log_record.commit_upto ~cohort:t.ctx.range t.cmt);
        trace t "snapshot_installed"
          (Printf.sprintf "from n%d upto=%s" src (Lsn.to_string t.cmt));
        flush_parked_reads t
      end;
      (* Ack only once durable: the promise behind the ack is that a crash
         cannot silently lose this chunk. *)
      Wal.force t.ctx.wal (guard t ack)
    end
  end

(* ------------------------------------------------------------------ *)
(* Range split: a hot range [lo, hi) splits at a median key into
   [lo, at) + [at, hi), both children serving before any data is
   rewritten — the child shares the parent's SSTables.                  *)

(* Admin entry point (leader only). The split point is the store's median
   key; the child range id is allocated from the coordination service; the
   child's election znodes are pre-created with the parent's current epoch
   (so the child's first leader allocates a strictly larger one and its
   writes beat every inherited cell under LSN order); then the parent
   drains its commit queue, flushes, and logs the split record. *)
let request_split t =
  if
    t.role = Leader && t.open_for_writes && Option.is_none t.migration && not t.splitting
  then begin
    match Store.split_point t.ctx.store with
    | None -> false
    | Some at ->
      t.splitting <- true;
      trace t "split_start" (Printf.sprintf "at=%s" at);
      let zk = t.ctx.zk () in
      Coord.Zk_client.incr_counter zk ~path:"/next_range"
        (guard t (fun new_range ->
             if t.role = Leader && t.splitting then begin
               let prefix = Printf.sprintf "/ranges/%d" new_range in
               let create path k =
                 (* Already-exists errors are fine: a previous leader's split
                    attempt may have created the znodes before dying. *)
                 Coord.Zk_client.create_node zk ~path
                   ~data:(string_of_int t.epoch) (guard t (fun _ -> k ()))
               in
               create prefix (fun () ->
                   create (prefix ^ "/candidates") (fun () ->
                       create (prefix ^ "/epoch") (fun () ->
                           (* New writes are parked by [t.splitting]; wait for
                              the in-flight tail to commit, then flush so the
                              shared SSTables hold everything up to the split
                              record, and log it. *)
                           let rec drain () =
                             if t.role <> Leader then t.splitting <- false
                             else if Commit_queue.length t.queue > 0 then
                               after t (Sim.Sim_time.ms 50) drain
                             else begin
                               Store.flush t.ctx.store;
                               enqueue_meta t (Log_record.Split { at; new_range })
                             end
                           in
                           drain ())))
             end));
      true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Leader takeover (Figure 6).                                          *)

let start_takeover t =
  trace t "takeover_start"
    (Printf.sprintf "epoch=%d cmt=%s lst=%s" t.epoch (Lsn.to_string t.cmt)
       (Lsn.to_string t.lst));
  t.takeover_pending <- true;
  t.takeover_open_at <- t.lst;
  t.takeover_commit_wait <- false;
  t.open_for_writes <- false;
  t.active_followers <- [];
  (* Rebuild the commit queue with the unresolved writes in (l.cmt, l.lst]
     from the durable log (they may not be in memory if we just restarted).
     They are already forced locally; they commit once a follower acks. *)
  List.iter
    (fun (lsn, op, timestamp, origin) ->
      if not (Commit_queue.mem t.queue lsn) then
        Commit_queue.add t.queue ~lsn ~op ~timestamp ?origin ())
    (Wal.durable_writes_in t.ctx.wal ~cohort:t.ctx.range ~above:t.cmt ~upto:t.lst);
  Commit_queue.mark_forced_upto t.queue t.lst;
  (* Nothing above the contiguous prefix lst was ever committed — a
     committed record up there would have out-bid us in the max-lst
     election — so records beyond it (appends stranded past a loss-induced
     hole, or a deposed epoch's tail) are dead: purge them from the queue
     and logically truncate the log records so neither re-proposal nor local
     recovery can resurrect them under the new epoch. *)
  List.iter
    (fun (e : Commit_queue.entry) ->
      match e.Commit_queue.origin with
      | Some (client, request_id) -> clear_in_flight t ~client ~request_id
      | None -> ())
    (Commit_queue.drop_above t.queue t.lst);
  let orphans =
    List.filter
      (fun l -> not (Skipped_lsns.mem (Store.skipped t.ctx.store) l))
      (Store.durable_write_lsns_in t.ctx.store ~above:t.lst
         ~upto:(Wal.last_write_lsn t.ctx.wal ~cohort:t.ctx.range))
  in
  if orphans <> [] then begin
    Skipped_lsns.add (Store.skipped t.ctx.store) orphans;
    trace t "logical_truncation" (String.concat "," (List.map Lsn.to_string orphans))
  end;
  (* Pending entries' originating requests are in flight again: a client
     retry arriving mid-takeover must wait for the re-proposed original to
     commit, not enqueue a second copy behind it. *)
  List.iter
    (fun (e : Commit_queue.entry) ->
      match e.Commit_queue.origin with
      | Some key -> if not (Hashtbl.mem t.dedup key) then Hashtbl.replace t.dedup key In_flight
      | None -> ())
    (Commit_queue.to_list t.queue);
  (* Ask each follower for its last committed LSN (Figure 6 lines 3-4). *)
  List.iter
    (fun f -> t.ctx.send ~dst:f (Message.Takeover_query { range = t.ctx.range; epoch = t.epoch }))
    (others t);
  (* Followers may be down; retry the query until a quorum forms. *)
  let rec retry () =
    if t.role = Leader && t.takeover_pending then begin
      List.iter
        (fun f ->
          if not (List.mem f t.active_followers) then
            t.ctx.send ~dst:f (Message.Takeover_query { range = t.ctx.range; epoch = t.epoch }))
        (others t);
      after t (Sim.Sim_time.ms 1000) retry
    end
  in
  after t (Sim.Sim_time.ms 1000) retry

let handle_takeover_query t ~src ~epoch =
  if t.role <> Offline && epoch >= t.epoch then begin
    if epoch > t.epoch then t.epoch <- epoch;
    (* A deposed leader rejoins the cohort as a follower (§6.2). *)
    if t.role = Leader then begin
      trace t "stepdown" (Printf.sprintf "new_epoch=%d" epoch);
      t.open_for_writes <- false;
      t.takeover_pending <- false;
      t.takeover_commit_wait <- false;
      fail_guards t;
      (* A deposed leader's in-flight migration or split dies with its term;
         if the metadata record was already logged the new leader's takeover
         resolves it like any other write. *)
      abort_migration t "leader deposed";
      t.splitting <- false;
      let waiting = t.waiting in
      t.waiting <- [];
      List.iter
        (fun w ->
          clear_in_flight t ~client:w.client ~request_id:w.request_id;
          t.ctx.reply ~client:w.client ~request_id:w.request_id Message.Unavailable)
        waiting
    end;
    t.role <- Follower;
    t.election_running <- false;
    t.leader <- Some src;
    t.last_leader_msg <- Sim.Engine.now t.ctx.engine;
    !arm_leader_watch t;
    !arm_resync t;
    t.catching_up <- true;
    t.ctx.send ~dst:src
      (Message.Takeover_info
         { range = t.ctx.range; from = t.ctx.node_id; cmt = t.cmt; lst = t.lst })
  end

(* ------------------------------------------------------------------ *)
(* Leader election (Figure 7).                                          *)

let candidate_data t = Printf.sprintf "%s;%d" (Lsn.to_string t.lst) t.ctx.node_id

let parse_candidate data =
  match String.split_on_char ';' data with
  | [ lsn_s; node_s ] -> (
    match (String.split_on_char '.' lsn_s, int_of_string_opt node_s) with
    | [ e; s ], Some node -> (
      match (int_of_string_opt e, int_of_string_opt s) with
      | Some epoch, Some seq -> Some (Lsn.make ~epoch ~seq, node)
      | _ -> None)
    | _ -> None)
  | _ -> None

let rec become_follower t ~leader ~catchup =
  t.role <- Follower;
  t.leader <- Some leader;
  t.election_running <- false;
  (* Leader-side pipeline state is meaningless once we step down. *)
  t.unproposed <- [];
  Queue.clear t.inflight_props;
  t.last_leader_msg <- Sim.Engine.now t.ctx.engine;
  trace t "follower" (Printf.sprintf "leader=n%d" leader);
  watch_leader_liveness t;
  arm_resync_timer t;
  if catchup then begin
    t.catching_up <- true;
    request_catchup t
  end

(* A rejoining follower advertises f.cmt to the leader (§6.1); retried until
   the leader answers (it may itself still be coming up). *)
and request_catchup t =
  match t.leader with
  | Some leader when t.role = Follower && t.catching_up ->
    t.ctx.send ~dst:leader
      (Message.Catchup_request { range = t.ctx.range; from = t.ctx.node_id; cmt = t.cmt });
    after t (Sim.Sim_time.ms 1000) (fun () -> if t.catching_up then request_catchup t)
  | _ -> ()

(* A follower whose propose stream has a hole (a lost message) cannot make
   commit progress on its own; an explicit catch-up from the leader closes
   the gap. *)
and start_resync t =
  if t.role = Follower && not t.catching_up then begin
    t.catching_up <- true;
    request_catchup t
  end

(* Strand detection: the leader heartbeats every commit period (commit
   messages are sent even when idle), so a follower that has heard nothing
   for several periods is cut off — by loss, a one-way partition, or a
   silent leader change — and proactively re-syncs rather than serving ever
   staler timeline reads and holding a stale commit queue. *)
and arm_resync_timer t =
  if not t.resync_armed then begin
    t.resync_armed <- true;
    let period = t.ctx.config.Config.commit_period in
    let rec check () =
      if t.role = Follower || t.role = Candidate then begin
        (if t.role = Follower && (not t.catching_up) && t.leader <> None then begin
           let silent = Sim.Sim_time.diff (Sim.Engine.now t.ctx.engine) t.last_leader_msg in
           if Sim.Sim_time.span_compare silent (Sim.Sim_time.span_scale period 3.0) > 0 then begin
             trace t "resync"
               (Printf.sprintf "leader silent for %.0fms" (Sim.Sim_time.to_ms_f silent));
             start_resync t
           end
         end);
        after t period check
      end
      else t.resync_armed <- false
    in
    after t period check
  end

and watch_leader_liveness t =
  if not t.leader_watch_armed then begin
    t.leader_watch_armed <- true;
    let zk = t.ctx.zk () in
    Coord.Zk_client.watch_node zk ~path:(zk_leader t)
      (guard t (fun () ->
           t.leader_watch_armed <- false;
           Coord.Zk_client.get_data zk ~path:(zk_leader t)
             (guard t (function
               | Ok _ -> watch_leader_liveness t
               | Error _ ->
                 (* The leader's ephemeral znode vanished: its session
                    expired. Elect a new leader (§7). *)
                 t.leader <- None;
                 start_election t))))
  end

and become_leader t =
  t.election_running <- false;
  t.leader <- Some t.ctx.node_id;
  t.role <- Leader;
  t.catching_up <- false;
  (* Fresh leadership stint: no outstanding Propose batches yet, and any
     coalesced ack we owed the previous leader is moot. *)
  t.unproposed <- [];
  Queue.clear t.inflight_props;
  t.ack_pending <- None;
  trace t "leader_elected" (Printf.sprintf "lst=%s" (Lsn.to_string t.lst));
  watch_leader_liveness t;
  let zk = t.ctx.zk () in
  (* A new epoch number is stored in Zookeeper before the leader accepts any
     new writes (Appendix B), making new LSNs greater than any previously
     used in the cohort. *)
  Coord.Zk_client.incr_counter zk ~path:(zk_epoch t)
    (guard t (fun epoch ->
         if t.role = Leader then begin
           t.epoch <- Stdlib.max t.epoch epoch;
           (* Clean up the finished election's candidate znodes (the
              directory itself stays, so sequence numbers never clash with
              paths peers still remember). *)
           Coord.Zk_client.children zk ~path:(zk_candidates t) (fun result ->
               match result with
               | Ok kids ->
                 List.iter
                   (fun (name, _) ->
                     Coord.Zk_client.delete_node zk
                       ~path:(zk_candidates t ^ "/" ^ name)
                       (fun _ -> ()))
                   kids
               | Error _ -> ());
           t.own_candidate <- None;
           start_takeover t
         end))

and read_leader_then_follow t =
  let zk = t.ctx.zk () in
  Coord.Zk_client.get_data zk ~path:(zk_leader t)
    (guard t (function
      | Ok data -> (
        match int_of_string_opt data with
        | Some leader when leader = t.ctx.node_id ->
          if t.role = Leader then
            (* We already held leadership (e.g. spurious election). *)
            t.election_running <- false
          else begin
            (* The /leader znode carries our id but we do not hold the role:
               it is a stale ephemeral from our own previous session (we
               crashed and came back within the session timeout). Nobody
               else can win while it exists, and we must not claim
               leadership off a dying session — wait for the old session to
               expire (deleting the znode) and re-run the election. *)
            t.election_running <- false;
            trace t "stale_leader_znode" "own id from a previous session";
            Coord.Zk_client.watch_node zk ~path:(zk_leader t)
              (guard t (fun () -> if t.role <> Leader then start_election t))
          end
        | Some leader -> become_follower t ~leader ~catchup:true
        | None -> t.election_running <- false)
      | Error _ ->
        (* Not written yet: learn it when the winner writes it (Fig 7 l.11). *)
        Coord.Zk_client.watch_node zk ~path:(zk_leader t)
          (guard t (fun () -> read_leader_then_follow t))))

and evaluate_candidates t kids =
  (* The new leader is the candidate with the max n.lst (Figure 7 line 6).
     Ties prefer the earliest node in the cohort's chained-declustering
     order — keeping leadership balanced across the cluster (the primary
     leads its base range when logs are equal) — then znode sequence. *)
  let position node =
    let rec find i = function
      | [] -> max_int
      | m :: rest -> if m = node then i else find (i + 1) rest
    in
    find 0 (t.ctx.members ())
  in
  let parsed =
    List.filter_map
      (fun (name, data) -> Option.map (fun (lsn, node) -> (name, lsn, node)) (parse_candidate data))
      kids
  in
  match parsed with
  | [] -> ()
  | (name0, lsn0, node0) :: rest ->
    let _, _, winner =
      List.fold_left
        (fun (bn, bl, bw) (name, lsn, node) ->
          let beats =
            if not (Lsn.equal lsn bl) then Lsn.(lsn > bl)
            else if position node <> position bw then position node < position bw
            else String.compare name bn < 0
          in
          if beats then (name, lsn, node) else (bn, bl, bw))
        (name0, lsn0, node0) rest
    in
    trace t "election_eval" (Printf.sprintf "winner=n%d of %d candidates" winner (List.length kids));
    if winner = t.ctx.node_id then begin
      let zk = t.ctx.zk () in
      Coord.Zk_client.create_node zk ~path:(zk_leader t)
        ~data:(string_of_int t.ctx.node_id) ~ephemeral:true
        (guard t (function
          | Ok _ -> become_leader t
          | Error _ ->
            (* Someone else won the race to /r/leader; follow them. *)
            read_leader_then_follow t))
    end
    else read_leader_then_follow t

and announce_candidacy t =
  if t.election_running then begin
    let zk = t.ctx.zk () in
    (* Announce candidacy: a sequential ephemeral znode holding n.lst
       (Figure 7 line 4). *)
    Coord.Zk_client.create_node zk
      ~path:(zk_candidates t ^ "/c-")
      ~data:(candidate_data t) ~ephemeral:true ~sequential:true
      (guard t (function
        | Ok path ->
          trace t "candidate" path;
          t.own_candidate <- Some path;
          await_candidates t
        | Error e ->
          trace t "candidate_error" (Format.asprintf "%a" Coord.Ztree.pp_error e);
          t.election_running <- false;
          after t (Sim.Sim_time.ms 100) (fun () -> start_election t)))
  end

and await_candidates t =
  if t.election_running then begin
    let zk = t.ctx.zk () in
    (* Arm the watch before reading, so no change is missed (Fig 7 line 5). *)
    Coord.Zk_client.watch_children zk ~path:(zk_candidates t)
      (guard t (fun () -> await_candidates t));
    Coord.Zk_client.children zk ~path:(zk_candidates t)
      (guard t (fun result ->
           if t.election_running then
             match result with
             | Ok kids ->
               (* Our own candidacy can be swept away by a previous winner's
                  cleanup racing this election: re-announce rather than wait
                  on a znode that no longer exists. *)
               let own_present =
                 match t.own_candidate with
                 | Some path ->
                   List.exists (fun (name, _) -> zk_candidates t ^ "/" ^ name = path) kids
                 | None -> false
               in
               if not own_present then announce_candidacy t
               else if List.length kids >= Config.majority t.ctx.config then
                 evaluate_candidates t kids
             | Error _ -> ()))
  end

and start_election t =
  (* Learners and replicas no longer in the membership must not vote: a
     learner's log is a partial snapshot (its lst is not comparable under the
     max-lst rule), and a migrated-away replica claiming leadership would
     resurrect the old configuration. *)
  if
    t.role <> Offline && (not t.election_running) && (not t.learner)
    && List.mem t.ctx.node_id (t.ctx.members ())
  then begin
    t.election_running <- true;
    t.role <- Candidate;
    t.leader <- None;
    t.open_for_writes <- false;
    t.takeover_pending <- false;
    t.takeover_commit_wait <- false;
    trace t "election_start" (Printf.sprintf "lst=%s" (Lsn.to_string t.lst));
    let zk = t.ctx.zk () in
    (* Clean up our stale state from a previous round (Figure 7 line 1). *)
    match t.own_candidate with
    | Some path ->
      t.own_candidate <- None;
      Coord.Zk_client.delete_node zk ~path (guard t (fun _ -> announce_candidacy t))
    | None -> announce_candidacy t
  end

let () = arm_leader_watch := watch_leader_liveness
let () = arm_resync := arm_resync_timer
let () = trigger_resync := start_resync

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                           *)

let crash t =
  t.role <- Offline;
  t.epoch <- 0;
  t.cmt <- Lsn.zero;
  t.lst <- Lsn.zero;
  ignore (Commit_queue.drop_above t.queue Lsn.zero);
  t.leader <- None;
  t.open_for_writes <- false;
  t.active_followers <- [];
  t.pending_final <- [];
  t.takeover_pending <- false;
  t.takeover_commit_wait <- false;
  t.waiting <- [];
  t.commit_timer_armed <- false;
  Hashtbl.reset t.dedup;
  t.migration <- None;
  t.splitting <- false;
  t.catching_up <- false;
  t.learner <- false;
  t.snapshot_next <- 0;
  t.last_leader_msg <- Sim.Sim_time.zero;
  t.resync_armed <- false;
  t.election_running <- false;
  t.own_candidate <- None;
  t.leader_watch_armed <- false;
  (* Outstanding guard rounds and parked reads die with the node (no replies
     leave a crashed process); their clients time out and retry elsewhere.
     [lease_disabled] and [guard_seq] survive: the former is configuration,
     the latter stays monotone so a stale pre-crash ack can never complete a
     fresh round. *)
  Hashtbl.reset t.guards;
  t.parked_reads <- [];
  (* Accumulated phase samples survive the crash (cluster-lifetime metrics);
     in-flight tracking does not — those writes will never pop. *)
  Hashtbl.reset t.inflight_started;
  Hashtbl.reset t.locks;
  Hashtbl.reset t.pending_decisions;
  Hashtbl.reset t.resolving;
  t.txn_sweep_armed <- false;
  Store.crash t.ctx.store

let wipe_storage t = Store.wipe t.ctx.store

(* Read the current leader from Zookeeper and fall in line: follow it, or run
   an election if there is none (or the registered leader is ourselves — we
   no longer hold that role after a crash or session loss). *)
let join_cohort t =
  let zk = t.ctx.zk () in
  Coord.Zk_client.get_data zk ~path:(zk_leader t)
    (guard t (function
      | Ok data -> (
        match int_of_string_opt data with
        | Some leader when leader <> t.ctx.node_id ->
          become_follower t ~leader ~catchup:true
        | _ -> start_election t)
      | Error _ -> start_election t))

(* The honest last-LSN claim after recovery: the largest LSN reachable from
   cmt by walking consecutive sequence numbers through the durable log
   (taking the newest epoch where a seq was written twice). The raw log tail
   can sit beyond a loss-induced hole, and advertising it in an election
   (Figure 7) could out-bid the replica actually holding a committed write. *)
let recovered_contiguous_lst t ~cmt ~raw =
  let module Seq_map = Map.Make (Int) in
  let by_seq =
    List.fold_left
      (fun m (lsn, _, _, _) -> Seq_map.add lsn.Lsn.seq lsn m)
      Seq_map.empty
      (Wal.durable_writes_in t.ctx.wal ~cohort:t.ctx.range ~above:cmt ~upto:raw)
  in
  let rec walk seq best =
    match Seq_map.find_opt (seq + 1) by_seq with
    | Some lsn -> walk (seq + 1) lsn
    | None -> best
  in
  walk cmt.Lsn.seq cmt

let rejoin t =
  (* Local recovery first (§6.1): rebuild the memtable from the checkpoint
     through f.cmt; writes after f.cmt await the catch-up phase. *)
  let cmt, lst = Store.recover t.ctx.store in
  t.cmt <- cmt;
  t.lst <- recovered_contiguous_lst t ~cmt ~raw:lst;
  t.epoch <- lst.Lsn.epoch;
  t.role <- Candidate;
  (* Re-learn committed write outcomes from the durable log so duplicate
     suppression survives the crash: a client retrying a write this replica
     committed before going down must get an idempotent ack, not a second
     application. *)
  recache_outcomes_from_log t ~above:Lsn.zero ~upto:cmt;
  trace t "local_recovery"
    (Printf.sprintf "cmt=%s lst=%s" (Lsn.to_string cmt) (Lsn.to_string lst));
  dbg t "RECOVER cmt=%s lst=%s" (Lsn.to_string cmt) (Lsn.to_string t.lst);
  join_cohort t

(* The coordination-service session expired (§7): a leader must stop serving
   immediately — its znode is gone, so a new leader may be elected at any
   moment — and any replica loses its watches with the session. The node
   layer re-establishes a session and calls [zk_session_renewed], which
   re-reads the leader and falls back in line. *)
let zk_session_expired t =
  if t.role <> Offline then begin
    trace t "zk_session_expired"
      (Printf.sprintf "role=%s"
         (match t.role with
         | Leader -> "leader"
         | Follower -> "follower"
         | Candidate -> "candidate"
         | Offline -> "offline"));
    if t.role = Leader then begin
      let waiting = t.waiting in
      t.waiting <- [];
      List.iter
        (fun w ->
          clear_in_flight t ~client:w.client ~request_id:w.request_id;
          t.ctx.reply ~client:w.client ~request_id:w.request_id Message.Unavailable)
        waiting;
      (* The session is gone, so the lease is too; in-flight guard rounds can
         never complete under an epoch a new leader may already have beaten. *)
      fail_guards t
    end;
    t.role <- if t.learner then Follower else Candidate;
    t.leader <- None;
    t.open_for_writes <- false;
    t.takeover_pending <- false;
    t.takeover_commit_wait <- false;
    t.pending_final <- [];
    t.active_followers <- [];
    t.migration <- None;
    t.splitting <- false;
    t.catching_up <- false;
    t.election_running <- false;
    t.own_candidate <- None;
    t.leader_watch_armed <- false;
    (* Leader-term transaction state dies with the term; the next leader
       rebuilds it from its store and queue when the cohort reopens. *)
    Hashtbl.reset t.locks;
    Hashtbl.reset t.pending_decisions;
    Hashtbl.reset t.resolving
  end

let zk_session_renewed t = if t.role <> Offline && not t.learner then join_cohort t

(* Fresh boot is the restart path: local recovery (a no-op on an empty log)
   followed by election or follower catch-up (§7: "leader election is
   triggered whenever a cohort's leader has failed or following local
   recovery after a system restart"). *)
let startup = rejoin

let read_local t coord = Store.read t.ctx.store coord
let write_phases t = t.phases

let skipped_lsns t = Skipped_lsns.to_list (Store.skipped t.ctx.store)

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                            *)

let handle_peer t ~src ~sent_at msg =
  match msg with
  | Message.Propose { epoch; writes; piggyback_cmt; _ } ->
    handle_propose t ~src ~sent_at ~epoch ~writes ~piggyback_cmt
  | Message.Ack { from; upto; _ } ->
    (* Only members' acks count toward the majority: a learner's ack must
       not help commit a write the old configuration has not accepted — the
       learner could vanish with the only durable copy. *)
    if t.role = Leader && List.mem from (t.ctx.members ()) then begin
      record_transit t ~sent_at;
      Commit_queue.add_ack t.queue ~from ~upto;
      try_commit t
    end
  | Message.Commit { epoch; upto; _ } -> handle_commit t ~src ~epoch ~upto
  | Message.Read_guard { epoch; seq; _ } -> handle_guard t ~src ~epoch ~seq
  | Message.Read_guard_ack { from; seq; _ } -> handle_guard_ack t ~from ~seq
  | Message.Takeover_query { epoch; _ } -> handle_takeover_query t ~src ~epoch
  | Message.Takeover_info { from; cmt; _ } ->
    if t.role = Leader then leader_run_catchup t ~follower:from ~f_cmt:cmt
  | Message.Catchup_request { from; cmt; _ } ->
    if t.role = Leader then leader_run_catchup t ~follower:from ~f_cmt:cmt
  | Message.Catchup_data { epoch; cells; upto; final; _ } ->
    follower_handle_catchup_data t ~src ~epoch ~cells ~upto ~final
  | Message.Catchup_done { from; upto; _ } -> leader_catchup_done t ~follower:from ~upto
  | Message.Snapshot_chunk { epoch; seq; cells; upto; final; _ } ->
    handle_snapshot_chunk t ~src ~epoch ~seq ~cells ~upto ~final
  | Message.Snapshot_ack { from; seq; _ } -> handle_snapshot_ack t ~from ~seq
  | Message.Request _ | Message.Reply _ -> ()
