type client_op =
  | Get of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      consistent : bool;
      token : Storage.Lsn.t;
    }
  | Multi_get of {
      key : Storage.Row.key;
      cols : Storage.Row.column list;
      consistent : bool;
      token : Storage.Lsn.t;
    }
  | Put of { key : Storage.Row.key; col : Storage.Row.column; value : string }
  | Multi_put of { key : Storage.Row.key; cols : (Storage.Row.column * string) list }
  | Delete of { key : Storage.Row.key; col : Storage.Row.column }
  | Conditional_put of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      value : string;
      expected : int;
    }
  | Conditional_delete of { key : Storage.Row.key; col : Storage.Row.column; expected : int }
  | Multi_conditional_put of {
      key : Storage.Row.key;
      cols : (Storage.Row.column * string * int) list;
    }
  | Txn_put of { rows : (Storage.Row.key * Storage.Row.column * string) list }
  | Scan of {
      start_key : Storage.Row.key;
      end_key : Storage.Row.key;
      limit : int;
      consistent : bool;
      token : Storage.Lsn.t;
    }
  | Fence of { key : Storage.Row.key }
  | Snap_get of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      fence : Storage.Lsn.t;
      fence_ts : int;
    }
  | Txn_prepare_req of {
      txn : string;
      anchor : Storage.Row.key;
      fence : Storage.Lsn.t;
      fence_ts : int;
      writes : (Storage.Row.key * Storage.Row.column * string option) list;
    }
  | Txn_decide_req of { txn : string; anchor : Storage.Row.key; commit : bool }
  | Txn_status_req of { txn : string; anchor : Storage.Row.key }
  | Txn_resolve_req of { txn : string; key : Storage.Row.key; commit : bool; ts : int }

type value_reply = { value : string option; version : int }

type client_reply =
  | Value of value_reply
  | Values of (Storage.Row.column * value_reply) list
  | Rows of {
      rows : (Storage.Row.key * (Storage.Row.column * value_reply) list) list;
      next : Storage.Row.key option;
          (** where the serving range's coverage stopped, when short of the
              requested window — the client resumes its scan there. The
              server's answer, not the client's routing table, decides the
              step, so a scan cannot skip keys a concurrent split moved. *)
    }
  | Written of { lsn : Storage.Lsn.t }
      (** commit LSN of the acked write — the client's read-your-writes token
          for subsequent timeline reads against this cohort *)
  | Version_mismatch of { current : int }
  | Not_leader of { hint : int option }
  | Wrong_range of { hint : int option }
      (** the serving node no longer (or never did) own the key's range —
          the client must refresh its cached routing table; [hint] is the
          likely leader of the owning range under the server's layout *)
  | Unavailable
  | Cross_range
  | Fenced of { lsn : Storage.Lsn.t; ts : int }
      (** snapshot anchor for one range: the leader's applied commit point
          and the capture instant, taken under a valid lease/guard *)
  | Snap_blocked of { txn : string }
      (** the snapshot read hit an unresolved write intent at or below the
          fence; the client retries after the owning txn resolves *)
  | Txn_conflict
      (** prepare refused: first-committer-wins against the snapshot fence,
          a foreign intent, or a pending write on a touched coordinate *)
  | Txn_decided of { committed : bool; ts : int }
      (** the coordinator's durable decision (and its commit timestamp) *)

type t =
  | Request of { client : int; request_id : int; op : client_op }
  | Reply of { request_id : int; reply : client_reply }
  | Propose of {
      range : int;
      epoch : int;
      writes : (Storage.Lsn.t * Storage.Log_record.op * int * (int * int) option) list;
          (** (lsn, op, timestamp, origin); origin is the issuing
              (client, request id) when known, carried so followers can
              answer duplicate retries after a leader change *)
      piggyback_cmt : Storage.Lsn.t option;
    }
  | Ack of { range : int; from : int; upto : Storage.Lsn.t }
  | Commit of { range : int; epoch : int; upto : Storage.Lsn.t }
  | Read_guard of { range : int; epoch : int; seq : int }
      (** unleased strong reads: the leader confirms it is still the leader
          by collecting a majority of acks for this guard before answering *)
  | Read_guard_ack of { range : int; from : int; seq : int }
  | Takeover_query of { range : int; epoch : int }
  | Takeover_info of { range : int; from : int; cmt : Storage.Lsn.t; lst : Storage.Lsn.t }
  | Catchup_request of { range : int; from : int; cmt : Storage.Lsn.t }
  | Catchup_data of {
      range : int;
      epoch : int;
      cells : (Storage.Row.coord * Storage.Row.cell) list;
      upto : Storage.Lsn.t;
      final : bool;
    }
  | Catchup_done of { range : int; from : int; upto : Storage.Lsn.t }
  | Snapshot_chunk of {
      range : int;
      epoch : int;
      seq : int;
      total : int;
      cells : (Storage.Row.coord * Storage.Row.cell) list;
      upto : Storage.Lsn.t;
      final : bool;
    }
      (** replica migration: one bandwidth-modelled chunk of the source
          cohort's SSTable snapshot, shipped to a joining learner; [upto] is
          the snapshot's commit horizon (WAL catch-up resumes from there) *)
  | Snapshot_ack of { range : int; from : int; seq : int }

let is_write = function
  | Get _ | Multi_get _ | Scan _ | Fence _ | Snap_get _ -> false
  | Put _ | Multi_put _ | Delete _ | Conditional_put _ | Conditional_delete _
  | Multi_conditional_put _ | Txn_put _ | Txn_prepare_req _ | Txn_decide_req _
  | Txn_status_req _ | Txn_resolve_req _ ->
    true

let key_of_op = function
  | Get { key; _ }
  | Multi_get { key; _ }
  | Put { key; _ }
  | Multi_put { key; _ }
  | Delete { key; _ }
  | Conditional_put { key; _ }
  | Conditional_delete { key; _ }
  | Multi_conditional_put { key; _ }
  | Fence { key }
  | Snap_get { key; _ }
  | Txn_resolve_req { key; _ } ->
    key
  | Txn_put { rows } -> ( match rows with (key, _, _) :: _ -> key | [] -> "")
  | Txn_prepare_req { writes; anchor; _ } -> (
    match writes with (key, _, _) :: _ -> key | [] -> anchor)
  | Txn_decide_req { anchor; _ } | Txn_status_req { anchor; _ } -> anchor
  | Scan { start_key; _ } -> start_key

let size_of_op = function
  | Get { key; col; _ } -> String.length key + String.length col + 16
  | Multi_get { key; cols; _ } ->
    String.length key + List.fold_left (fun a c -> a + String.length c) 16 cols
  | Put { key; col; value } -> String.length key + String.length col + String.length value + 16
  | Multi_put { key; cols } ->
    String.length key
    + List.fold_left (fun a (c, v) -> a + String.length c + String.length v) 16 cols
  | Delete { key; col } -> String.length key + String.length col + 16
  | Conditional_put { key; col; value; _ } ->
    String.length key + String.length col + String.length value + 24
  | Conditional_delete { key; col; _ } -> String.length key + String.length col + 24
  | Multi_conditional_put { key; cols } ->
    String.length key
    + List.fold_left (fun a (c, v, _) -> a + String.length c + String.length v + 8) 16 cols
  | Txn_put { rows } ->
    List.fold_left
      (fun a (k, c, v) -> a + String.length k + String.length c + String.length v + 8)
      16 rows
  | Scan { start_key; end_key; _ } -> String.length start_key + String.length end_key + 24
  | Fence { key } -> String.length key + 16
  | Snap_get { key; col; _ } -> String.length key + String.length col + 32
  | Txn_prepare_req { txn; anchor; writes; _ } ->
    List.fold_left
      (fun a (k, c, v) ->
        a + String.length k + String.length c
        + (match v with Some v -> String.length v | None -> 0)
        + 8)
      (String.length txn + String.length anchor + 32)
      writes
  | Txn_decide_req { txn; anchor; _ } | Txn_status_req { txn; anchor } ->
    String.length txn + String.length anchor + 24
  | Txn_resolve_req { txn; key; _ } -> String.length txn + String.length key + 32

let size_of_value { value; _ } =
  (match value with Some v -> String.length v | None -> 0) + 12

let size_of_reply = function
  | Value v -> size_of_value v + 8
  | Values vs ->
    List.fold_left (fun a (c, v) -> a + String.length c + size_of_value v) 8 vs
  | Rows { rows; _ } ->
    List.fold_left
      (fun a (k, cols) ->
        List.fold_left
          (fun a (c, v) -> a + String.length c + size_of_value v)
          (a + String.length k + 8)
          cols)
      8 rows
  | Written _ | Version_mismatch _ | Not_leader _ | Wrong_range _ | Unavailable | Cross_range
  | Fenced _ | Txn_conflict | Txn_decided _ ->
    16
  | Snap_blocked { txn } -> String.length txn + 16

let size_of_cell ((key, col), (cell : Storage.Row.cell)) =
  String.length key + String.length col
  + (match cell.value with Some v -> String.length v | None -> 0)
  + 24

let size_of_write (_, op, _, _) =
  List.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | Storage.Log_record.Put { key; col; value; _ } ->
        String.length key + String.length col + String.length value
      | Storage.Log_record.Delete { key; col; _ } -> String.length key + String.length col
      | (Storage.Log_record.Txn_prepare _ | Storage.Log_record.Txn_decision _
        | Storage.Log_record.Txn_resolve _ | Storage.Log_record.Install_cell _) as op ->
        (* Approximate by the cells the record installs on apply. *)
        List.fold_left
          (fun a ((key, col), (cell : Storage.Row.cell)) ->
            a + String.length key + String.length col
            + (match cell.value with Some v -> String.length v | None -> 0))
          8
          (Storage.Log_record.cells_of_write op ~lsn:Storage.Lsn.zero ~timestamp:0)
      | Storage.Log_record.Batch _ | Storage.Log_record.Cohort_change _
      | Storage.Log_record.Split _ ->
        0)
    24
    (Storage.Log_record.flatten op)

let size = function
  | Request { op; _ } -> size_of_op op + 16
  | Reply { reply; _ } -> size_of_reply reply + 8
  | Propose { writes; _ } -> List.fold_left (fun a w -> a + size_of_write w) 32 writes
  | Ack _ | Commit _ | Read_guard _ | Read_guard_ack _ | Takeover_query _ | Takeover_info _
  | Catchup_request _ | Catchup_done _ | Snapshot_ack _ ->
    48
  | Catchup_data { cells; _ } | Snapshot_chunk { cells; _ } ->
    List.fold_left (fun a c -> a + size_of_cell c) 48 cells

let pp ppf = function
  | Request { client; request_id; op } ->
    Format.fprintf ppf "request#%d from c%d key=%s%s" request_id client (key_of_op op)
      (if is_write op then " (write)" else "")
  | Reply { request_id; _ } -> Format.fprintf ppf "reply#%d" request_id
  | Propose { range; epoch; writes; _ } ->
    Format.fprintf ppf "propose r%d e%d (%d writes)" range epoch (List.length writes)
  | Ack { range; from; upto } ->
    Format.fprintf ppf "ack r%d from n%d upto %a" range from Storage.Lsn.pp upto
  | Commit { range; upto; _ } -> Format.fprintf ppf "commit r%d upto %a" range Storage.Lsn.pp upto
  | Read_guard { range; epoch; seq } ->
    Format.fprintf ppf "read-guard r%d e%d #%d" range epoch seq
  | Read_guard_ack { range; from; seq } ->
    Format.fprintf ppf "read-guard-ack r%d n%d #%d" range from seq
  | Takeover_query { range; epoch } -> Format.fprintf ppf "takeover-query r%d e%d" range epoch
  | Takeover_info { range; from; cmt; lst } ->
    Format.fprintf ppf "takeover-info r%d n%d cmt=%a lst=%a" range from Storage.Lsn.pp cmt
      Storage.Lsn.pp lst
  | Catchup_request { range; from; cmt } ->
    Format.fprintf ppf "catchup-request r%d n%d cmt=%a" range from Storage.Lsn.pp cmt
  | Catchup_data { range; cells; final; _ } ->
    Format.fprintf ppf "catchup-data r%d (%d cells%s)" range (List.length cells)
      (if final then ", final" else "")
  | Catchup_done { range; from; upto } ->
    Format.fprintf ppf "catchup-done r%d n%d upto %a" range from Storage.Lsn.pp upto
  | Snapshot_chunk { range; seq; total; cells; final; _ } ->
    Format.fprintf ppf "snapshot-chunk r%d %d/%d (%d cells%s)" range seq total
      (List.length cells)
      (if final then ", final" else "")
  | Snapshot_ack { range; from; seq } ->
    Format.fprintf ppf "snapshot-ack r%d n%d #%d" range from seq
