type t = {
  id : int;
  engine : Sim.Engine.t;
  net : Message.t Sim.Network.t;
  zk_server : Coord.Zk_server.t;
  partition : Partition.t;
  config : Config.t;
  trace : Sim.Trace.t;
  cpu : Sim.Resource.t;
  disk : Sim.Resource.t;
  wal : Storage.Wal.t;
  cohorts : (int * Cohort.t) list;
  mutable zk : Coord.Zk_client.t option;
  mutable zk_reachable : bool;
      (** this node's link to the coordination service (nemesis-controlled);
          independent of the data network and of node liveness *)
  mutable zk_reconnecting : bool;  (** a session-reconnect loop is running *)
  mutable alive : bool;
  mutable incarnation : int;
}

let id t = t.id
let alive t = t.alive
let incarnation t = t.incarnation
let wal t = t.wal
let ranges t = List.map fst t.cohorts
let cohort t ~range = List.assoc_opt range t.cohorts

let send t ~dst msg =
  if t.alive then t.net |> fun net -> Sim.Network.send net ~src:t.id ~dst ~size:(Message.size msg) msg

let reply t ~client ~request_id reply =
  send t ~dst:client (Message.Reply { request_id; reply })

let rec zk_exn t =
  match t.zk with
  | Some zk when Coord.Zk_client.alive zk -> zk
  | _ ->
    (* A fresh session after restart or session expiry. It inherits the
       node's current link state, and its expiry hands control back here so
       the cohorts step down and a reconnect loop starts. *)
    let zk = Coord.Zk_client.connect t.zk_server ~owner:(Printf.sprintf "node-%d" t.id) () in
    Coord.Zk_client.set_reachable zk t.zk_reachable;
    let inc = t.incarnation in
    Coord.Zk_client.set_on_session_expiry zk (fun () ->
        if t.alive && t.incarnation = inc then handle_session_expiry t);
    t.zk <- Some zk;
    zk

(* Group membership (§4.2): each node holds an ephemeral znode under /nodes
   for the lifetime of its session, so cluster tooling can watch the live
   set; the per-range failure handling itself is cohort-driven. *)
and register_membership t =
  let zk = zk_exn t in
  Coord.Zk_client.create_node zk
    ~path:(Printf.sprintf "/nodes/%d" t.id)
    ~data:(Printf.sprintf "node-%d" t.id)
    ~ephemeral:true
    (fun _ -> ())

and handle_session_expiry t =
  Sim.Trace.event t.trace ~node:t.id ~tag:"zk_session"
    (Printf.sprintf "n%d session expired" t.id);
  t.zk <- None;
  List.iter (fun (_, c) -> Cohort.zk_session_expired c) t.cohorts;
  if not t.zk_reconnecting then reconnect_zk t

(* Poll until the coordination service is reachable again, then open a fresh
   session and let every cohort fall back in line. At most one loop per node
   incarnation; it dies with the incarnation. *)
and reconnect_zk t =
  t.zk_reconnecting <- true;
  let inc = t.incarnation in
  let retry_after =
    Sim.Sim_time.us
      (Stdlib.max 1 (Sim.Sim_time.to_us (Coord.Zk_server.session_timeout t.zk_server) / 4))
  in
  let rec attempt () =
    if t.alive && t.incarnation = inc then begin
      if t.zk_reachable then begin
        t.zk_reconnecting <- false;
        ignore (zk_exn t);
        register_membership t;
        Sim.Trace.event t.trace ~node:t.id ~tag:"zk_session"
          (Printf.sprintf "n%d session renewed" t.id);
        List.iter (fun (_, c) -> Cohort.zk_session_renewed c) t.cohorts
      end
      else ignore (Sim.Engine.schedule t.engine ~after:retry_after attempt)
    end
    else t.zk_reconnecting <- false
  in
  ignore (Sim.Engine.schedule t.engine ~after:retry_after attempt)

let set_zk_reachable t r =
  if t.zk_reachable <> r then begin
    t.zk_reachable <- r;
    Sim.Trace.event t.trace ~node:t.id ~tag:"zk_link"
      (Printf.sprintf "n%d coordination link %s" t.id (if r then "healed" else "cut"));
    match t.zk with Some zk -> Coord.Zk_client.set_reachable zk r | None -> ()
  end

let handle t (env : Message.t Sim.Network.envelope) =
  if t.alive then begin
    match env.payload with
    | Message.Request { client; request_id; op } -> (
      let range = Partition.route t.partition (Message.key_of_op op) in
      match cohort t ~range with
      | Some c -> Cohort.handle_client c ~client ~request_id op
      | None ->
        (* Misrouted: point the client at the range's primary. *)
        reply t ~client ~request_id
          (Message.Not_leader { hint = Some (Partition.primary t.partition ~range) }))
    | Message.Reply _ -> ()
    | Message.Propose { range; _ }
    | Message.Ack { range; _ }
    | Message.Commit { range; _ }
    | Message.Takeover_query { range; _ }
    | Message.Takeover_info { range; _ }
    | Message.Catchup_request { range; _ }
    | Message.Catchup_data { range; _ }
    | Message.Catchup_done { range; _ } -> (
      match cohort t ~range with
      | Some c -> Cohort.handle_peer c ~src:env.src env.payload
      | None -> ())
  end

let create ~engine ~net ~zk_server ~partition ~config ~trace ~id =
  let cpu = Sim.Resource.create engine ~name:(Printf.sprintf "cpu-%d" id) ~servers:4 () in
  let disk = Sim.Resource.create engine ~name:(Printf.sprintf "logdisk-%d" id) () in
  let model = Sim.Disk_model.create config.Config.disk in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let wal =
    Storage.Wal.create engine ~disk ~model ~rng ~max_batch:config.Config.wal_max_batch ()
  in
  let rec t =
    lazy
      (let make_cohort range =
         let store =
           Storage.Store.create ~cohort:range ~wal ~flush_bytes:config.Config.flush_bytes
             ~compaction_fanin:config.Config.compaction_fanin
             ~max_sstables:config.Config.max_sstables
             ~cache_capacity:config.Config.row_cache_capacity ()
         in
         let ctx : Cohort.ctx =
           {
             engine;
             node_id = id;
             range;
             members = Partition.cohort partition ~range;
             config;
             store;
             wal;
             cpu;
             trace;
             send = (fun ~dst msg -> send (Lazy.force t) ~dst msg);
             reply =
               (fun ~client ~request_id r -> reply (Lazy.force t) ~client ~request_id r);
             zk = (fun () -> zk_exn (Lazy.force t));
             incarnation = (fun () -> incarnation (Lazy.force t));
             routes_here = (fun key -> Partition.route partition key = range);
             range_bounds = Partition.range_bounds partition ~range;
           }
         in
         (range, Cohort.create ctx)
       in
       {
         id;
         engine;
         net;
         zk_server;
         partition;
         config;
         trace;
         cpu;
         disk;
         wal;
         cohorts = List.map make_cohort (Partition.ranges_of_node partition ~node:id);
         zk = None;
         zk_reachable = true;
         zk_reconnecting = false;
         alive = false;
         incarnation = 0;
       })
  in
  Lazy.force t

let start t =
  t.alive <- true;
  Sim.Network.register t.net ~node:t.id (handle t);
  ignore (zk_exn t);
  register_membership t;
  List.iter (fun (_, c) -> Cohort.startup c) t.cohorts

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.incarnation <- t.incarnation + 1;
    Sim.Network.set_up t.net t.id false;
    (match t.zk with Some zk -> Coord.Zk_client.crash zk | None -> ());
    t.zk <- None;
    t.zk_reconnecting <- false;
    Storage.Wal.crash t.wal;
    List.iter (fun (_, c) -> Cohort.crash c) t.cohorts;
    Sim.Trace.event t.trace ~node:t.id ~tag:"node_crash" (Printf.sprintf "n%d" t.id)
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.incarnation <- t.incarnation + 1;
    Sim.Network.register t.net ~node:t.id (handle t);
    ignore (zk_exn t);
    register_membership t;
    Sim.Trace.event t.trace ~node:t.id ~tag:"node_restart" (Printf.sprintf "n%d" t.id);
    List.iter (fun (_, c) -> Cohort.rejoin c) t.cohorts
  end

let lose_disk t =
  Storage.Wal.wipe t.wal;
  List.iter (fun (_, c) -> Cohort.wipe_storage c) t.cohorts;
  Sim.Trace.event t.trace ~node:t.id ~tag:"disk_lost" (Printf.sprintf "n%d" t.id)

let failure_target t =
  Sim.Failure.
    {
      label = Printf.sprintf "node-%d" t.id;
      crash = (fun () -> crash t);
      restart = (fun () -> restart t);
      lose_disk = (fun () -> lose_disk t);
    }
