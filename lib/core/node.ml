type t = {
  id : int;
  engine : Sim.Engine.t;
  net : Message.t Sim.Network.t;
  zk_server : Coord.Zk_server.t;
  partition : Partition.t;
  config : Config.t;
  trace : Sim.Trace.t;
  cpu : Sim.Resource.t;
  disk : Sim.Resource.t;
  xfer : Sim.Resource.t;
      (** bulk-transfer link: replica-migration snapshot chunks stream
          through it, so shipping a store takes bandwidth-modelled time *)
  wal : Storage.Wal.t;
  mutable cohorts : (int * Cohort.t) list;
      (** hosted replicas; changes at runtime with splits and migrations *)
  mutable zk : Coord.Zk_client.t option;
  mutable zk_reachable : bool;
      (** this node's link to the coordination service (nemesis-controlled);
          independent of the data network and of node liveness *)
  mutable zk_reconnecting : bool;  (** a session-reconnect loop is running *)
  mutable layout_watch_armed : bool;
  mutable alive : bool;
  mutable incarnation : int;
  mutable txn_escalation :
    (txn:string -> anchor:Storage.Row.key -> key:Storage.Row.key -> unit) option;
      (** presumed-abort escalation for in-doubt intents found by a leader
          cohort's sweep; the cluster layer installs a client-backed resolver
          (raw-node tests leave it unset — the sweep is then inert) *)
}

let id t = t.id
let alive t = t.alive
let incarnation t = t.incarnation
let wal t = t.wal
let ranges t = List.map fst t.cohorts
let cohort t ~range = List.assoc_opt range t.cohorts

let send t ?(trace_id = -1) ~dst msg =
  if t.alive then
    Sim.Network.send t.net ~src:t.id ~dst ~size:(Message.size msg) ~trace_id msg

let reply t ~client ~request_id reply =
  (* The reply's transit span joins the request's causal DAG: the owning
     trace id is a pure function of (client, request id). *)
  let trace_id =
    if Sim.Trace.is_enabled t.trace then Sim.Trace.request_trace_id ~client ~request_id
    else -1
  in
  send t ~trace_id ~dst:client (Message.Reply { request_id; reply })

(* The session-renewal path wants to reconcile the layout, but the membership
   machinery is defined after the reconnect loop; tied together below. *)
let on_session_renewed : (t -> unit) ref = ref (fun _ -> ())

let rec zk_exn t =
  match t.zk with
  | Some zk when Coord.Zk_client.alive zk -> zk
  | _ ->
    (* A fresh session after restart or session expiry. It inherits the
       node's current link state, and its expiry hands control back here so
       the cohorts step down and a reconnect loop starts. *)
    let zk = Coord.Zk_client.connect t.zk_server ~owner:(Printf.sprintf "node-%d" t.id) () in
    Coord.Zk_client.set_reachable zk t.zk_reachable;
    let inc = t.incarnation in
    Coord.Zk_client.set_on_session_expiry zk (fun () ->
        if t.alive && t.incarnation = inc then handle_session_expiry t);
    t.zk <- Some zk;
    zk

(* Group membership (§4.2): each node holds an ephemeral znode under /nodes
   for the lifetime of its session, so cluster tooling can watch the live
   set; the per-range failure handling itself is cohort-driven. *)
and register_membership t =
  let zk = zk_exn t in
  Coord.Zk_client.create_node zk
    ~path:(Printf.sprintf "/nodes/%d" t.id)
    ~data:(Printf.sprintf "node-%d" t.id)
    ~ephemeral:true
    (fun _ -> ())

and handle_session_expiry t =
  Sim.Trace.event t.trace ~node:t.id ~tag:"zk_session"
    (Printf.sprintf "n%d session expired" t.id);
  t.zk <- None;
  t.layout_watch_armed <- false;
  List.iter (fun (_, c) -> Cohort.zk_session_expired c) t.cohorts;
  if not t.zk_reconnecting then reconnect_zk t

(* Poll until the coordination service is reachable again, then open a fresh
   session and let every cohort fall back in line. At most one loop per node
   incarnation; it dies with the incarnation. *)
and reconnect_zk t =
  t.zk_reconnecting <- true;
  let inc = t.incarnation in
  let retry_after =
    Sim.Sim_time.us
      (Stdlib.max 1 (Sim.Sim_time.to_us (Coord.Zk_server.session_timeout t.zk_server) / 4))
  in
  let rec attempt () =
    if t.alive && t.incarnation = inc then begin
      if t.zk_reachable then begin
        t.zk_reconnecting <- false;
        ignore (zk_exn t);
        register_membership t;
        Sim.Trace.event t.trace ~node:t.id ~tag:"zk_session"
          (Printf.sprintf "n%d session renewed" t.id);
        (* Catch up on layout changes missed while disconnected, then let
           every cohort fall back in line under the current layout. *)
        !on_session_renewed t;
        List.iter (fun (_, c) -> Cohort.zk_session_renewed c) t.cohorts
      end
      else ignore (Sim.Engine.schedule t.engine ~after:retry_after attempt)
    end
    else t.zk_reconnecting <- false
  in
  ignore (Sim.Engine.schedule t.engine ~after:retry_after attempt)

let set_zk_reachable t r =
  if t.zk_reachable <> r then begin
    t.zk_reachable <- r;
    Sim.Trace.event t.trace ~node:t.id ~tag:"zk_link"
      (Printf.sprintf "n%d coordination link %s" t.id (if r then "healed" else "cut"));
    match t.zk with Some zk -> Coord.Zk_client.set_reachable zk r | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Cohort construction and the live-membership machinery (§10).        *)

let rec make_cohort_with_store t range store =
  let ctx : Cohort.ctx =
    {
      engine = t.engine;
      node_id = t.id;
      range;
      config = t.config;
      store;
      wal = t.wal;
      cpu = t.cpu;
      trace = t.trace;
      send = (fun ?trace_id ~dst msg -> send t ?trace_id ~dst msg);
      reply = (fun ~client ~request_id r -> reply t ~client ~request_id r);
      zk = (fun () -> zk_exn t);
      incarnation = (fun () -> incarnation t);
      routes_here = (fun key -> Partition.route t.partition key = range);
      range_bounds = (fun () -> Partition.range_bounds t.partition ~range);
      members = (fun () -> try Partition.cohort t.partition ~range with _ -> []);
      xfer = t.xfer;
      apply_meta = (fun ~op ~leader -> apply_meta t ~range ~op ~leader);
      retire_self = (fun () -> retire_cohort t ~range);
      resolve_in_doubt =
        (fun ~txn ~anchor ~key ->
          match t.txn_escalation with
          | Some f -> f ~txn ~anchor ~key
          | None -> ());
    }
  in
  Cohort.create ctx

and make_cohort t range =
  let store =
    Storage.Store.create ~cohort:range ~wal:t.wal ~flush_bytes:t.config.Config.flush_bytes
      ~compaction_fanin:t.config.Config.compaction_fanin
      ~max_sstables:t.config.Config.max_sstables
      ~cache_capacity:t.config.Config.row_cache_capacity ()
  in
  (match Partition.range_bounds t.partition ~range with
  | lo, hi -> Storage.Store.set_bounds store ~lo ~hi
  | exception _ -> ());
  make_cohort_with_store t range store

(* The node no longer hosts [range]: drop the replica and its log records.
   Without the log drop, a node later re-added to a range it once hosted
   would recover stale commit markers and reject perfectly good data. *)
and retire_cohort t ~range =
  match List.assoc_opt range t.cohorts with
  | None -> ()
  | Some c ->
    Cohort.retire c;
    t.cohorts <- List.remove_assoc range t.cohorts;
    Storage.Wal.drop_cohort t.wal ~cohort:range;
    Sim.Trace.event t.trace ~node:t.id ~cohort:range ~tag:"range_retired"
      (Printf.sprintf "r%d n%d" range t.id)

(* A snapshot chunk arrived for a range this node does not host: a migration
   source picked us as the joiner. Spawn a learner replica on a clean slate. *)
and ensure_learner t ~range ~src =
  match List.assoc_opt range t.cohorts with
  | Some c -> Some c
  | None ->
    if Partition.mem_range t.partition ~range then begin
      Storage.Wal.drop_cohort t.wal ~cohort:range;
      let c = make_cohort t range in
      t.cohorts <- t.cohorts @ [ (range, c) ];
      Cohort.start_learner c ~leader:src;
      Some c
    end
    else None

(* Publish the routing table to /layout so clients (and nodes that slept
   through a change) can refresh; versioned, so stale publications lose. *)
and publish_layout t =
  Coord.Zk_client.set_data (zk_exn t) ~path:"/layout" ~data:(Partition.to_string t.partition)
    (fun _ -> ())

(* Node-level side effects of a committed metadata record. Invoked by the
   hosting cohort when the record commits (leader) or applies (follower), in
   LSN order relative to the range's data records. *)
and apply_meta t ~range ~op ~leader =
  match op with
  | Storage.Log_record.Cohort_change { add; remove } ->
    let members = try Partition.cohort t.partition ~range with _ -> [] in
    let members' =
      let without =
        match remove with Some r -> List.filter (fun n -> n <> r) members | None -> members
      in
      match add with
      | Some a when not (List.mem a without) -> without @ [ a ]
      | _ -> without
    in
    ignore (Partition.set_members t.partition ~range members');
    if leader then publish_layout t;
    (match remove with
    | Some r when r = t.id ->
      (* Swapped out: retire once the current apply unwinds (retiring inside
         the cohort's own apply loop would pull state out from under it). *)
      ignore
        (Sim.Engine.schedule t.engine ~after:(Sim.Sim_time.us 1) (fun () ->
             if t.alive then retire_cohort t ~range))
    | _ -> ())
  | Storage.Log_record.Split { at; new_range } -> (
    match List.assoc_opt range t.cohorts with
    | Some parent ->
      let pstore = Cohort.store parent in
      (* Every record at or below the split LSN is already applied (LSN
         order); flush so the shared SSTables capture all of it before the
         child starts reading them. *)
      Storage.Store.flush pstore;
      let lo, hi =
        match Storage.Store.bounds pstore with
        | Some b -> b
        | None -> Partition.range_bounds t.partition ~range
      in
      ignore (Partition.split t.partition ~range ~at ~new_range);
      let child_members = try Partition.cohort t.partition ~range:new_range with _ -> [] in
      if List.mem t.id child_members && not (List.mem_assoc new_range t.cohorts) then begin
        let child_store = Storage.Store.split_child pstore ~cohort:new_range ~lo:at ~hi in
        let c = make_cohort_with_store t new_range child_store in
        t.cohorts <- t.cohorts @ [ (new_range, c) ];
        Sim.Trace.event t.trace ~node:t.id ~cohort:new_range ~tag:"split_child"
          (Printf.sprintf "r%d n%d from r%d at %s" new_range t.id range at);
        Cohort.startup c
      end;
      Storage.Store.set_bounds pstore ~lo ~hi:at;
      if leader then publish_layout t
    | None -> ignore (Partition.split t.partition ~range ~at ~new_range))
  | _ -> ()

(* Bring this node's hosted set in line with the current routing table —
   the catch-all for changes it missed while down or disconnected (metadata
   records are invisible to cell-based catch-up):
   (a) hosted stores wider than their range (a split committed while we were
       away): recover + flush so the shared tables capture the parent's log,
       carve out the child replicas we should host, clamp the parent;
   (b) ranges we should host but do not: fresh empty replicas that recover
       entirely from peers via catch-up;
   (c) ranges we host but are no longer a member of (and are not currently
       joining): retire them. *)
and reconcile_layout t =
  if t.alive then begin
    List.iter
      (fun (range, c) ->
        let store = Cohort.store c in
        match Storage.Store.bounds store with
        | Some (slo, shi) when Partition.mem_range t.partition ~range ->
          let _, phi = Partition.range_bounds t.partition ~range in
          if String.compare shi phi > 0 then begin
            ignore (Storage.Store.recover store);
            Storage.Store.flush store;
            List.iter
              (fun (d : Partition.desc) ->
                if
                  String.compare d.lo phi >= 0
                  && String.compare d.lo shi < 0
                  && List.mem t.id d.members
                  && not (List.mem_assoc d.id t.cohorts)
                then begin
                  let child_store =
                    Storage.Store.split_child store ~cohort:d.id ~lo:d.lo ~hi:d.hi
                  in
                  let child = make_cohort_with_store t d.id child_store in
                  t.cohorts <- t.cohorts @ [ (d.id, child) ];
                  Sim.Trace.event t.trace ~node:t.id ~cohort:d.id ~tag:"split_child"
                    (Printf.sprintf "r%d n%d reconciled from r%d" d.id t.id range);
                  Cohort.startup child
                end)
              (Partition.descs t.partition);
            Storage.Store.set_bounds store ~lo:slo ~hi:phi
          end
        | _ -> ())
      t.cohorts;
    List.iter
      (fun (d : Partition.desc) ->
        if List.mem t.id d.members && not (List.mem_assoc d.id t.cohorts) then begin
          Storage.Wal.drop_cohort t.wal ~cohort:d.id;
          let c = make_cohort t d.id in
          t.cohorts <- t.cohorts @ [ (d.id, c) ];
          Sim.Trace.event t.trace ~node:t.id ~cohort:d.id ~tag:"range_adopted"
            (Printf.sprintf "r%d n%d" d.id t.id);
          Cohort.startup c
        end)
      (Partition.descs t.partition);
    List.iter
      (fun (range, c) ->
        if
          (not (Cohort.is_learner c))
          && not (List.mem t.id (try Partition.cohort t.partition ~range with _ -> []))
        then retire_cohort t ~range)
      t.cohorts
  end

(* Watch /layout (one-shot, re-armed) so nodes that did not participate in a
   change — e.g. the replica a migration swapped out, which stops receiving
   the cohort's commits the moment the change commits — still learn of it. *)
and arm_layout_watch t =
  if t.alive && not t.layout_watch_armed then begin
    t.layout_watch_armed <- true;
    let inc = t.incarnation in
    let zk = zk_exn t in
    Coord.Zk_client.watch_node zk ~path:"/layout" (fun () ->
        if t.alive && t.incarnation = inc then begin
          t.layout_watch_armed <- false;
          Coord.Zk_client.get_data zk ~path:"/layout" (fun r ->
              if t.alive && t.incarnation = inc then begin
                (match r with
                | Ok data -> ignore (Partition.update_from_string t.partition data)
                | Error _ -> ());
                reconcile_layout t;
                arm_layout_watch t
              end)
        end)
  end

let () =
  on_session_renewed :=
    fun t ->
      Coord.Zk_client.get_data (zk_exn t) ~path:"/layout" (fun r ->
          if t.alive then begin
            (match r with
            | Ok data -> ignore (Partition.update_from_string t.partition data)
            | Error _ -> ());
            reconcile_layout t;
            arm_layout_watch t
          end)

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

let handle t (env : Message.t Sim.Network.envelope) =
  if t.alive then begin
    match env.payload with
    | Message.Request { client; request_id; op } -> (
      let range = Partition.route t.partition (Message.key_of_op op) in
      match cohort t ~range with
      | Some c -> Cohort.handle_client c ~client ~request_id op
      | None ->
        (* This node does not serve the key's range under the current layout
           (a split or migration may have moved it): tell the client to
           refresh its routing table, pointing at the probable leader. *)
        reply t ~client ~request_id
          (Message.Wrong_range { hint = Some (Partition.primary t.partition ~range) }))
    | Message.Reply _ -> ()
    | Message.Snapshot_chunk { range; _ } -> (
      match ensure_learner t ~range ~src:env.src with
      | Some c -> Cohort.handle_peer c ~src:env.src ~sent_at:env.sent_at env.payload
      | None -> ())
    | Message.Propose { range; _ }
    | Message.Ack { range; _ }
    | Message.Commit { range; _ }
    | Message.Read_guard { range; _ }
    | Message.Read_guard_ack { range; _ }
    | Message.Takeover_query { range; _ }
    | Message.Takeover_info { range; _ }
    | Message.Catchup_request { range; _ }
    | Message.Catchup_data { range; _ }
    | Message.Catchup_done { range; _ }
    | Message.Snapshot_ack { range; _ } -> (
      match cohort t ~range with
      | Some c -> Cohort.handle_peer c ~src:env.src ~sent_at:env.sent_at env.payload
      | None -> ())
  end

let create ~engine ~net ~zk_server ~partition ~config ~trace ~id =
  let cpu = Sim.Resource.create engine ~name:(Printf.sprintf "cpu-%d" id) ~servers:4 () in
  let disk = Sim.Resource.create engine ~name:(Printf.sprintf "logdisk-%d" id) () in
  let xfer = Sim.Resource.create engine ~name:(Printf.sprintf "xfer-%d" id) () in
  let model = Sim.Disk_model.create config.Config.disk in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let wal =
    Storage.Wal.create engine ~disk ~model ~rng ~max_batch:config.Config.wal_max_batch ()
  in
  let t =
    {
      id;
      engine;
      net;
      zk_server;
      partition;
      config;
      trace;
      cpu;
      disk;
      xfer;
      wal;
      cohorts = [];
      zk = None;
      zk_reachable = true;
      zk_reconnecting = false;
      layout_watch_armed = false;
      alive = false;
      incarnation = 0;
      txn_escalation = None;
    }
  in
  t.cohorts <-
    List.map
      (fun range -> (range, make_cohort t range))
      (Partition.ranges_of_node partition ~node:id);
  t

let set_txn_escalation t f = t.txn_escalation <- Some f

let start t =
  t.alive <- true;
  Sim.Network.register t.net ~node:t.id (handle t);
  ignore (zk_exn t);
  register_membership t;
  (* A node added after cluster bootstrap starts with no hosted ranges until
     a migration targets it; reconcile adopts anything it already owns. *)
  reconcile_layout t;
  List.iter (fun (_, c) -> if Cohort.role c = Cohort.Offline then Cohort.startup c) t.cohorts;
  arm_layout_watch t

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.incarnation <- t.incarnation + 1;
    Sim.Network.set_up t.net t.id false;
    (match t.zk with Some zk -> Coord.Zk_client.crash zk | None -> ());
    t.zk <- None;
    t.zk_reconnecting <- false;
    t.layout_watch_armed <- false;
    Storage.Wal.crash t.wal;
    List.iter (fun (_, c) -> Cohort.crash c) t.cohorts;
    Sim.Trace.event t.trace ~node:t.id ~tag:"node_crash" (Printf.sprintf "n%d" t.id)
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.incarnation <- t.incarnation + 1;
    Sim.Network.register t.net ~node:t.id (handle t);
    ignore (zk_exn t);
    register_membership t;
    Sim.Trace.event t.trace ~node:t.id ~tag:"node_restart" (Printf.sprintf "n%d" t.id);
    (* The layout may have moved while we were down (the shared routing
       table is authoritative): first shed ranges we no longer own and adopt
       ones we missed — including splits, whose metadata records cell-based
       catch-up cannot convey — then rejoin the survivors. *)
    reconcile_layout t;
    List.iter (fun (_, c) -> if Cohort.role c = Cohort.Offline then Cohort.rejoin c) t.cohorts;
    arm_layout_watch t
  end

let lose_disk t =
  Storage.Wal.wipe t.wal;
  List.iter (fun (_, c) -> Cohort.wipe_storage c) t.cohorts;
  Sim.Trace.event t.trace ~node:t.id ~tag:"disk_lost" (Printf.sprintf "n%d" t.id)

let failure_target t =
  Sim.Failure.
    {
      label = Printf.sprintf "node-%d" t.id;
      crash = (fun () -> crash t);
      restart = (fun () -> restart t);
      lose_disk = (fun () -> lose_disk t);
    }
