(** Cluster assembly: network, coordination service, nodes, and clients
    wired onto one simulation engine — the deployment of Figure 2. *)

type t

val create : Sim.Engine.t -> Config.t -> t
(** Builds (but does not start) the cluster: creates the coordination
    service, bootstraps its range directories, and instantiates the nodes. *)

val start : t -> unit
(** Boot every node; leader elections begin immediately. *)

val run_until_ready : ?timeout:Sim.Sim_time.span -> t -> bool
(** Advance the simulation until every range has an open leader (or the
    timeout, default 60 simulated seconds, expires). *)

val engine : t -> Sim.Engine.t

val config : t -> Config.t

val partition : t -> Partition.t

val net : t -> Message.t Sim.Network.t

val zk_server : t -> Coord.Zk_server.t

val trace : t -> Sim.Trace.t
(** The cluster-wide structured trace (ring buffer sized by
    [Config.trace_capacity]); shared by nodes, cohorts, clients, the
    network, and the coordination service. *)

val flight : t -> Sim.Trace.Flight.t
(** The cluster-wide outlier flight recorder: every client created through
    {!new_client} reports its completed requests here, and each
    [Config.outlier_window]'s top [Config.outlier_top_k] slowest keep their
    trace events pinned past ring eviction (export with
    {!Sim.Trace_export.outliers_to_file}). *)

val metrics : t -> Sim.Metrics.Registry.t
(** The cluster metrics registry. [create] registers the cluster-wide
    [trace_dropped] gauge (ring-buffer evictions) and per-node gauges
    ([wal_volatile_bytes] and, per hosted range [r<N>],
    [r<N>_memtable_bytes], [r<N>_sstable_count], [r<N>_commit_queue_depth],
    [r<N>_reply_cache_size], [r<N>_cache_hits], [r<N>_cache_misses],
    [r<N>_cache_evictions]); {!start} begins sampling them every
    [Config.metrics_sample_period]. *)

val node : t -> int -> Node.t

val nodes : t -> Node.t array

val add_node : t -> int
(** Scale-out (§10): create and start a fresh node on the running cluster,
    returning its id. The node hosts nothing until a replica migration
    ({!request_join}) or range split makes it a cohort member. *)

val request_join : t -> range:int -> joiner:int -> ?remove:int -> unit -> bool
(** Ask the range's current leader to migrate a replica: ship a snapshot to
    [joiner], catch it up from the log, then commit the membership change
    that swaps it in (and [remove] out, when given). Asynchronous; [false]
    if no open leader was found or one is already mid-migration — retry. *)

val request_split : t -> range:int -> bool
(** Ask the range's current leader to split the range at its median key.
    Asynchronous, like {!request_join}. *)

val new_client : t -> Client.t
(** Clients route on their own {!Partition.copy} of the table and re-fetch
    the published /layout znode whenever a server answers [Wrong_range]. *)

val leader_of : t -> range:int -> int option
(** Ground truth for tests: the node currently acting as the range's open
    leader, if any. *)

val is_ready : t -> bool

val migrations_in_flight : t -> int
(** Cohorts with a replica migration currently in flight — a live hazard
    signal for conditional failure multipliers (crash probability spiking
    while data is on the move). *)

type read_path_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  sstables_skipped : int;
  sstables_probed : int;
  compactions : int;
  full_compactions : int;
  max_compaction_input_bytes : int;
  total_compaction_input_bytes : int;
  max_store_bytes_at_compaction : int;
  tables_per_node : (int * int list) list;
      (** per node, the SSTable count of each hosted cohort *)
}
(** Cluster-wide read-path accounting, summed (or maxed, for the
    [max_*_bytes] fields) over every cohort store. Counters are cumulative;
    benchmark series take before/after deltas. *)

val read_path_stats : t -> read_path_stats

val set_lease_enabled : t -> bool -> unit
(** Flip every cohort between lease-served strong reads ([true], the default
    when [Config.lease_fraction] > 0) and the per-read quorum-guard fallback
    ([false]) at runtime — the bench's leased-vs-unleased A/B switch, usable
    without rebuilding or re-preloading the cluster. *)

type read_serve_stats = {
  leased : int;  (** strong reads served locally under a live lease *)
  guarded : int;  (** strong reads served via a read-index quorum round *)
  lease_rejects : int;  (** strong reads refused because the lease lapsed *)
  guard_fails : int;  (** guard rounds abandoned without a quorum *)
  leader_timeline : int;  (** timeline reads served by the leader *)
  follower_timeline : int;  (** timeline reads served by a follower *)
  token_waits : int;  (** timeline reads parked waiting for a token's LSN *)
  token_redirects : int;  (** parked reads redirected at the staleness bound *)
}
(** Cluster-wide read-serve accounting, summed over every cohort. Counters
    are cumulative (cohort-lifetime); benchmark series take before/after
    deltas. *)

val read_serve_stats : t -> read_serve_stats

val write_phases : t -> Sim.Metrics.Write_phases.t
(** Merged per-phase write-path breakdown over every cohort in the cluster —
    the data behind the write-latency decomposition in [BENCH_*.json]. *)

val crash_node : t -> int -> unit

val restart_node : t -> int -> unit

val set_zk_reachable : t -> int -> bool -> unit
(** Cut (false) or heal (true) one node's link to the coordination service,
    leaving the data network untouched (see {!Node.set_zk_reachable}). *)

val failure_targets : t -> Sim.Failure.target list

val registered_nodes : t -> int list
(** Nodes currently registered in the coordination service's group-membership
    directory (§4.2) — live sessions with an ephemeral /nodes/<id> znode.
    Lags crashes by the session timeout, exactly as the failure detector does. *)

val pp_status : Format.formatter -> t -> unit
(** Operator view: per-range roles, commit points, and the live-node set. *)
