(** Spinnaker client library: the transactional get-put API of §3.

    Each call is a single-operation transaction executed through the cohort
    leader (writes and strong reads) or any replica (timeline reads). The
    client caches leader locations per range, follows [Not_leader] hints,
    falls back to a coordination-service lookup, and retries through
    failovers with a timeout — which is how availability windows (Table 1)
    are observed from outside.

    All calls are asynchronous: the callback fires when a reply arrives or
    retries are exhausted. *)

type t

type read_result = { value : string option; version : int }

type error =
  | Version_mismatch of { current : int }
      (** conditional operation lost the optimistic-concurrency race *)
  | Timed_out  (** retries exhausted (cohort unavailable) *)
  | Cross_range  (** transaction keys span key ranges (§8.2 extension) *)
  | Conflict
      (** a 2PC prepare lost the first-committer-wins race: a foreign intent
          or a version newer than the transaction's snapshot *)

val create :
  engine:Sim.Engine.t ->
  net:Message.t Sim.Network.t ->
  partition:Partition.t ->
  config:Config.t ->
  id:int ->
  ?trace:Sim.Trace.t ->
  ?flight:Sim.Trace.Flight.t ->
  lookup_leader:(range:int -> (int option -> unit) -> unit) ->
  ?fetch_layout:((string option -> unit) -> unit) ->
  unit ->
  t
(** [trace] enables causal request spans: each submitted operation opens a
    [client.request] span (trace id derived from [(id, request_id)] via
    {!Sim.Trace.request_trace_id}) closed with the final outcome, with
    [client.retry] instants per retransmission. Every request additionally
    tags its network messages so {!Sim.Network} stamps [net.transit] spans
    into the same trace.

    [flight] attaches the outlier flight recorder: every completed request
    is reported to it, and the window's top-K slowest keep their trace
    events pinned past ring-buffer eviction.

    [partition] should be the client's own copy of the routing table
    ({!Partition.copy}); [fetch_layout] reads the serialized layout published
    on the coordination service's [/layout] znode, and is invoked whenever a
    server answers [Wrong_range] — i.e. the cached copy went stale because a
    range split or replica migration committed (§10). Defaults to a no-op
    (static-layout deployments). *)

val id : t -> int

val get :
  t -> ?consistent:bool -> Storage.Row.key -> Storage.Row.column ->
  ((read_result, error) result -> unit) -> unit
(** [consistent] defaults to [true] (strong read, routed to the leader);
    [false] selects timeline consistency (any replica, possibly stale). *)

val multi_get :
  t -> ?consistent:bool -> Storage.Row.key -> Storage.Row.column list ->
  (((Storage.Row.column * read_result) list, error) result -> unit) -> unit

val put :
  t -> Storage.Row.key -> Storage.Row.column -> value:string ->
  ((unit, error) result -> unit) -> unit

val multi_put :
  t -> Storage.Row.key -> (Storage.Row.column * string) list ->
  ((unit, error) result -> unit) -> unit

val delete :
  t -> Storage.Row.key -> Storage.Row.column -> ((unit, error) result -> unit) -> unit

val conditional_put :
  t -> Storage.Row.key -> Storage.Row.column -> value:string -> expected:int ->
  ((unit, error) result -> unit) -> unit
(** Succeeds only if the column's current version equals [expected] (§3). *)

val conditional_delete :
  t -> Storage.Row.key -> Storage.Row.column -> expected:int ->
  ((unit, error) result -> unit) -> unit

val multi_conditional_put :
  t -> Storage.Row.key -> (Storage.Row.column * string * int) list ->
  ((unit, error) result -> unit) -> unit

val transact_put :
  t -> (Storage.Row.key * Storage.Row.column * string) list ->
  ((unit, error) result -> unit) -> unit
(** Multi-operation transaction (§8.2): writes several rows atomically.
    All keys must belong to one key range (they are replicated as a single
    log record by that range's cohort); otherwise fails with [Cross_range].
    Atomicity holds across crashes: after any failure sequence either every
    row of the transaction is visible or none is. *)

val scan :
  t ->
  ?consistent:bool ->
  start_key:Storage.Row.key ->
  end_key:Storage.Row.key ->
  ?limit:int ->
  (((Storage.Row.key * (Storage.Row.column * read_result) list) list, error) result -> unit) ->
  unit
(** Range scan over [start_key, end_key) (exclusive end), ascending, at most
    [limit] rows (default 1000). Spans key ranges transparently: the client
    walks the cohorts covering the window left to right — the locality that
    key-range partitioning (§4) exists to provide. [consistent] selects
    strong (leaders) or timeline (any replica) reads per cohort. *)

(** {2 Multi-range transaction primitives (MVCC snapshots + 2PC over Paxos)}

    The building blocks {!Txn} composes into serializable multi-key
    transactions; exposed individually for recovery tooling and tests. *)

type snap_read =
  | Snap_value of read_result  (** the version visible at the fence *)
  | Snap_intent of string
      (** an unresolved write intent of this transaction sits at or below the
          fence; retry after it resolves *)

val fence :
  t -> Storage.Row.key -> ((Storage.Lsn.t * int, error) result -> unit) -> unit
(** Capture the snapshot anchor of [key]'s range: its applied commit LSN and
    the capture instant (µs), read strongly at the leader. *)

val snap_get :
  t -> Storage.Row.key -> Storage.Row.column -> fence:Storage.Lsn.t -> fence_ts:int ->
  ((snap_read, error) result -> unit) -> unit
(** MVCC read of the newest version visible under a snapshot anchored at the
    range's [fence] and the snapshot's global [fence_ts]. Served by any
    replica whose applied prefix covers the fence (token-parked otherwise). *)

val txn_prepare :
  t -> txn:string -> anchor:Storage.Row.key -> fence:Storage.Lsn.t -> fence_ts:int ->
  (Storage.Row.key * Storage.Row.column * string option) list ->
  ((unit, error) result -> unit) -> unit
(** 2PC phase one at the range owning the writes' keys: replicate write
    intents after first-committer-wins conflict checks ([Error Conflict] on
    loss). All keys must fall in one range ([Error Cross_range] otherwise). *)

val txn_decide :
  t -> txn:string -> anchor:Storage.Row.key -> commit:bool ->
  ((bool * int, error) result -> unit) -> unit
(** Replicate the commit/abort decision through the coordinator cohort (the
    owner of [anchor]). First decision wins: the result is the outcome
    actually recorded and its commit timestamp. *)

val txn_status :
  t -> txn:string -> anchor:Storage.Row.key -> ((bool * int, error) result -> unit) -> unit
(** Presumed-abort recovery: the transaction's recorded outcome; if none is
    on record the coordinator logs an abort and answers with it. *)

val txn_resolve :
  t -> txn:string -> key:Storage.Row.key -> commit:bool -> ts:int ->
  ((unit, error) result -> unit) -> unit
(** 2PC phase two at [key]'s range: install final cells (commit) or discard
    intents (abort) for every intent the transaction holds there.
    Idempotent. *)

val retries : t -> int
(** Total retransmissions performed (failovers, stale leader caches). *)

val pp_error : Format.formatter -> error -> unit
