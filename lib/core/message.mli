(** Client operations, replies, and the cohort replication protocol messages
    (Figure 4, §6, §3).

    Everything exchanged over the simulated network is one [t], so a node has
    a single typed inbox. *)

type client_op =
  | Get of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      consistent : bool;
      token : Storage.Lsn.t;
    }
      (** strong ([consistent = true]) or timeline read (§3). [token] is the
          client's read-your-writes fence for timeline reads: a replica may
          answer only once it has applied commits up to [token]
          ([Storage.Lsn.zero] = no fence). Ignored for strong reads. *)
  | Multi_get of {
      key : Storage.Row.key;
      cols : Storage.Row.column list;
      consistent : bool;
      token : Storage.Lsn.t;
    }
  | Put of { key : Storage.Row.key; col : Storage.Row.column; value : string }
  | Multi_put of { key : Storage.Row.key; cols : (Storage.Row.column * string) list }
      (** multiple columns of one row, one single-operation transaction *)
  | Delete of { key : Storage.Row.key; col : Storage.Row.column }
  | Conditional_put of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      value : string;
      expected : int;  (** version the caller read; optimistic concurrency *)
    }
  | Conditional_delete of { key : Storage.Row.key; col : Storage.Row.column; expected : int }
  | Multi_conditional_put of {
      key : Storage.Row.key;
      cols : (Storage.Row.column * string * int) list;  (** (col, value, expected) *)
    }
  | Txn_put of { rows : (Storage.Row.key * Storage.Row.column * string) list }
      (** Multi-operation transaction (§8.2): several rows written atomically.
          All keys must fall in one key range — the transaction is replicated
          as a single log record by that range's cohort. *)
  | Scan of {
      start_key : Storage.Row.key;  (** inclusive *)
      end_key : Storage.Row.key;  (** exclusive *)
      limit : int;
      consistent : bool;
      token : Storage.Lsn.t;  (** read-your-writes fence, as for [Get] *)
    }
      (** Range scan over one cohort's slice of [start_key, end_key); the
          client stitches multi-range scans together range by range. *)
  | Fence of { key : Storage.Row.key }
      (** Strong read of the range's snapshot anchor: the leader answers
          [Fenced] with its applied commit point and the capture instant,
          under the same lease/guard gate as any strong read — the
          linearization point of a multi-range snapshot in this range. *)
  | Snap_get of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      fence : Storage.Lsn.t;  (** this range's fence LSN (from [Fenced]) *)
      fence_ts : int;  (** the snapshot's global timestamp (min of captures) *)
    }
      (** MVCC snapshot read: served by any replica once its applied commit
          point reaches [fence] (the PR 9 token-parking path), evaluating
          interval visibility against [fence]/[fence_ts]. *)
  | Txn_prepare_req of {
      txn : string;
      anchor : Storage.Row.key;  (** coordinator anchor key *)
      fence : Storage.Lsn.t;  (** this range's snapshot fence *)
      fence_ts : int;
      writes : (Storage.Row.key * Storage.Row.column * string option) list;
          (** proposed writes in this range ([None] = delete) *)
    }
      (** 2PC phase one: replicate write intents through this participant's
          Paxos log after key-level first-committer-wins conflict checks. *)
  | Txn_decide_req of { txn : string; anchor : Storage.Row.key; commit : bool }
      (** Ask the coordinator cohort (owner of [anchor]) to replicate the
          commit/abort decision. First decision wins; the reply carries the
          outcome actually recorded. *)
  | Txn_status_req of { txn : string; anchor : Storage.Row.key }
      (** Presumed-abort recovery: what happened to [txn]? If no decision is
          recorded, the coordinator logs an abort and answers with it. *)
  | Txn_resolve_req of { txn : string; key : Storage.Row.key; commit : bool; ts : int }
      (** 2PC phase two at [key]'s range: install final cells (commit) and
          clear every intent [txn] holds in that range. Idempotent. *)

type value_reply = { value : string option; version : int }

type client_reply =
  | Value of value_reply
  | Values of (Storage.Row.column * value_reply) list
  | Rows of {
      rows : (Storage.Row.key * (Storage.Row.column * value_reply) list) list;
          (** this cohort's rows in the window, ascending by key *)
      next : Storage.Row.key option;
          (** where this range's coverage stopped when short of the requested
              window; the client resumes the scan there. Server-reported so a
              client with a stale routing table cannot skip keys that a
              concurrent range split moved to a new cohort. *)
    }
  | Written of { lsn : Storage.Lsn.t }
      (** acked write with its commit LSN — the client remembers the highest
          per cohort as its read-your-writes token for timeline reads *)
  | Version_mismatch of { current : int }  (** conditional put/delete failed *)
  | Not_leader of { hint : int option }  (** strong ops must go to the leader *)
  | Wrong_range of { hint : int option }
      (** the serving node does not own the key's range under the current
          layout — the client must refresh its cached routing table (the
          layout epoch moved: a split or migration committed); [hint] is the
          probable leader of the owning range *)
  | Unavailable  (** cohort closed for writes (no leader / takeover running) *)
  | Cross_range  (** transaction keys span key ranges; not supported (§8.2) *)
  | Fenced of { lsn : Storage.Lsn.t; ts : int }
      (** snapshot anchor for one range: applied commit point + capture
          instant (µs), taken while the leader's lease/guard was valid *)
  | Snap_blocked of { txn : string }
      (** the snapshot read hit [txn]'s unresolved write intent at or below
          the fence; retry after it resolves (the owner may yet commit
          inside the snapshot) *)
  | Txn_conflict
      (** prepare refused: a foreign intent, a committed version newer than
          the snapshot fence (first-committer-wins), or a pending write on a
          touched coordinate *)
  | Txn_decided of { committed : bool; ts : int }
      (** the coordinator's durable decision and its commit timestamp *)

type t =
  | Request of { client : int; request_id : int; op : client_op }
  | Reply of { request_id : int; reply : client_reply }
  (* --- replication (Figure 4) --- *)
  | Propose of {
      range : int;
      epoch : int;  (** sender's leadership epoch; stale epochs are rejected *)
      writes : (Storage.Lsn.t * Storage.Log_record.op * int * (int * int) option) list;
          (** (lsn, op, timestamp, origin); >1 entry for multi-column
              transactions. The origin — the issuing (client, request id),
              when known — travels with the write so every replica can
              recognise a duplicate retry even after a leader change. *)
      piggyback_cmt : Storage.Lsn.t option;
    }
  | Ack of { range : int; from : int; upto : Storage.Lsn.t }
  | Commit of { range : int; epoch : int; upto : Storage.Lsn.t }
  | Read_guard of { range : int; epoch : int; seq : int }
      (** read-index round for unleased strong reads: before answering, the
          leader must hear a majority confirm its epoch is still current —
          the quorum-intersection argument that replaces the lease *)
  | Read_guard_ack of { range : int; from : int; seq : int }
  (* --- recovery (§6) --- *)
  | Takeover_query of { range : int; epoch : int }
      (** new leader asks a follower for its last committed LSN (Fig 6 l.4) *)
  | Takeover_info of { range : int; from : int; cmt : Storage.Lsn.t; lst : Storage.Lsn.t }
  | Catchup_request of { range : int; from : int; cmt : Storage.Lsn.t }
      (** recovering follower advertises f.cmt to the leader (§6.1) *)
  | Catchup_data of {
      range : int;
      epoch : int;
      cells : (Storage.Row.coord * Storage.Row.cell) list;  (** ascending LSN *)
      upto : Storage.Lsn.t;
      final : bool;  (** leader blocked writes; follower is fully caught up after this *)
    }
  | Catchup_done of { range : int; from : int; upto : Storage.Lsn.t }
  (* --- replica migration (§10) --- *)
  | Snapshot_chunk of {
      range : int;
      epoch : int;
      seq : int;  (** chunk number, 0-based; shipped stop-and-wait *)
      total : int;  (** total chunks in this snapshot (>= 1, even if empty) *)
      cells : (Storage.Row.coord * Storage.Row.cell) list;
      upto : Storage.Lsn.t;  (** snapshot commit horizon; catch-up resumes here *)
      final : bool;
    }
      (** one bandwidth-modelled chunk of the SSTable snapshot a cohort
          ships to a joining learner replica *)
  | Snapshot_ack of { range : int; from : int; seq : int }

val is_write : client_op -> bool

val key_of_op : client_op -> Storage.Row.key

val size_of_op : client_op -> int
(** Wire-size estimate in bytes, for network accounting. *)

val size_of_reply : client_reply -> int

val size : t -> int

val pp : Format.formatter -> t -> unit
