(** Client operations, replies, and the cohort replication protocol messages
    (Figure 4, §6, §3).

    Everything exchanged over the simulated network is one [t], so a node has
    a single typed inbox. *)

type client_op =
  | Get of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      consistent : bool;
      token : Storage.Lsn.t;
    }
      (** strong ([consistent = true]) or timeline read (§3). [token] is the
          client's read-your-writes fence for timeline reads: a replica may
          answer only once it has applied commits up to [token]
          ([Storage.Lsn.zero] = no fence). Ignored for strong reads. *)
  | Multi_get of {
      key : Storage.Row.key;
      cols : Storage.Row.column list;
      consistent : bool;
      token : Storage.Lsn.t;
    }
  | Put of { key : Storage.Row.key; col : Storage.Row.column; value : string }
  | Multi_put of { key : Storage.Row.key; cols : (Storage.Row.column * string) list }
      (** multiple columns of one row, one single-operation transaction *)
  | Delete of { key : Storage.Row.key; col : Storage.Row.column }
  | Conditional_put of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      value : string;
      expected : int;  (** version the caller read; optimistic concurrency *)
    }
  | Conditional_delete of { key : Storage.Row.key; col : Storage.Row.column; expected : int }
  | Multi_conditional_put of {
      key : Storage.Row.key;
      cols : (Storage.Row.column * string * int) list;  (** (col, value, expected) *)
    }
  | Txn_put of { rows : (Storage.Row.key * Storage.Row.column * string) list }
      (** Multi-operation transaction (§8.2): several rows written atomically.
          All keys must fall in one key range — the transaction is replicated
          as a single log record by that range's cohort. *)
  | Scan of {
      start_key : Storage.Row.key;  (** inclusive *)
      end_key : Storage.Row.key;  (** exclusive *)
      limit : int;
      consistent : bool;
      token : Storage.Lsn.t;  (** read-your-writes fence, as for [Get] *)
    }
      (** Range scan over one cohort's slice of [start_key, end_key); the
          client stitches multi-range scans together range by range. *)

type value_reply = { value : string option; version : int }

type client_reply =
  | Value of value_reply
  | Values of (Storage.Row.column * value_reply) list
  | Rows of {
      rows : (Storage.Row.key * (Storage.Row.column * value_reply) list) list;
          (** this cohort's rows in the window, ascending by key *)
      next : Storage.Row.key option;
          (** where this range's coverage stopped when short of the requested
              window; the client resumes the scan there. Server-reported so a
              client with a stale routing table cannot skip keys that a
              concurrent range split moved to a new cohort. *)
    }
  | Written of { lsn : Storage.Lsn.t }
      (** acked write with its commit LSN — the client remembers the highest
          per cohort as its read-your-writes token for timeline reads *)
  | Version_mismatch of { current : int }  (** conditional put/delete failed *)
  | Not_leader of { hint : int option }  (** strong ops must go to the leader *)
  | Wrong_range of { hint : int option }
      (** the serving node does not own the key's range under the current
          layout — the client must refresh its cached routing table (the
          layout epoch moved: a split or migration committed); [hint] is the
          probable leader of the owning range *)
  | Unavailable  (** cohort closed for writes (no leader / takeover running) *)
  | Cross_range  (** transaction keys span key ranges; not supported (§8.2) *)

type t =
  | Request of { client : int; request_id : int; op : client_op }
  | Reply of { request_id : int; reply : client_reply }
  (* --- replication (Figure 4) --- *)
  | Propose of {
      range : int;
      epoch : int;  (** sender's leadership epoch; stale epochs are rejected *)
      writes : (Storage.Lsn.t * Storage.Log_record.op * int * (int * int) option) list;
          (** (lsn, op, timestamp, origin); >1 entry for multi-column
              transactions. The origin — the issuing (client, request id),
              when known — travels with the write so every replica can
              recognise a duplicate retry even after a leader change. *)
      piggyback_cmt : Storage.Lsn.t option;
    }
  | Ack of { range : int; from : int; upto : Storage.Lsn.t }
  | Commit of { range : int; epoch : int; upto : Storage.Lsn.t }
  | Read_guard of { range : int; epoch : int; seq : int }
      (** read-index round for unleased strong reads: before answering, the
          leader must hear a majority confirm its epoch is still current —
          the quorum-intersection argument that replaces the lease *)
  | Read_guard_ack of { range : int; from : int; seq : int }
  (* --- recovery (§6) --- *)
  | Takeover_query of { range : int; epoch : int }
      (** new leader asks a follower for its last committed LSN (Fig 6 l.4) *)
  | Takeover_info of { range : int; from : int; cmt : Storage.Lsn.t; lst : Storage.Lsn.t }
  | Catchup_request of { range : int; from : int; cmt : Storage.Lsn.t }
      (** recovering follower advertises f.cmt to the leader (§6.1) *)
  | Catchup_data of {
      range : int;
      epoch : int;
      cells : (Storage.Row.coord * Storage.Row.cell) list;  (** ascending LSN *)
      upto : Storage.Lsn.t;
      final : bool;  (** leader blocked writes; follower is fully caught up after this *)
    }
  | Catchup_done of { range : int; from : int; upto : Storage.Lsn.t }
  (* --- replica migration (§10) --- *)
  | Snapshot_chunk of {
      range : int;
      epoch : int;
      seq : int;  (** chunk number, 0-based; shipped stop-and-wait *)
      total : int;  (** total chunks in this snapshot (>= 1, even if empty) *)
      cells : (Storage.Row.coord * Storage.Row.cell) list;
      upto : Storage.Lsn.t;  (** snapshot commit horizon; catch-up resumes here *)
      final : bool;
    }
      (** one bandwidth-modelled chunk of the SSTable snapshot a cohort
          ships to a joining learner replica *)
  | Snapshot_ack of { range : int; from : int; seq : int }

val is_write : client_op -> bool

val key_of_op : client_op -> Storage.Row.key

val size_of_op : client_op -> int
(** Wire-size estimate in bytes, for network accounting. *)

val size_of_reply : client_reply -> int

val size : t -> int

val pp : Format.formatter -> t -> unit
