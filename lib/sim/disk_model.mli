(** Service-time models for logging devices.

    Mirrors the three logging configurations the paper evaluates: a dedicated
    magnetic SATA disk (§9.2 — with the primitive Cassandra log manager that
    incurs metadata seeks), a FusionIO-style SSD (§D.4), and a main-memory log
    flushed in the background (§D.6.2). *)

type kind =
  | Magnetic  (** dedicated SATA logging disk, write-back cache off *)
  | Ssd  (** NAND flash, no seek penalty *)
  | Memory  (** main-memory log; a force is just an append *)

type t

val create : kind -> t

val kind : t -> kind

val force_service : t -> Distribution.t
(** Service-time distribution of one log force (group commit batches share a
    single force). *)

val read_service : t -> Distribution.t
(** Service time of reading a page (SSTable access during catch-up). *)

val write_bandwidth_bytes_per_sec : t -> float
(** Sequential write bandwidth; a group-commit batch additionally pays
    [bytes / bandwidth] on top of the per-force cost. *)

val pp_kind : Format.formatter -> kind -> unit
