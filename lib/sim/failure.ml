type target = {
  label : string;
  crash : unit -> unit;
  restart : unit -> unit;
  lose_disk : unit -> unit;
}

type toggle = {
  t_label : string;
  engage : unit -> unit;
  disengage : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* First-class injections. A fault names its subject by label, so a
   schedule is plain data: it serializes, diffs, and replays against any
   run that registered the same labels. *)

type fault_kind = Crash | Restart | Destroy | Engage | Disengage

type fault = { kind : fault_kind; who : string }

type injection = { at : Sim_time.t; fault : fault }

type schedule = injection list

let kind_to_string = function
  | Crash -> "crash"
  | Restart -> "restart"
  | Destroy -> "destroy"
  | Engage -> "engage"
  | Disengage -> "disengage"

let kind_of_string = function
  | "crash" -> Some Crash
  | "restart" -> Some Restart
  | "destroy" -> Some Destroy
  | "engage" -> Some Engage
  | "disengage" -> Some Disengage
  | _ -> None

let pp_fault ppf f = Format.fprintf ppf "%s %s" (kind_to_string f.kind) f.who

let json_of_schedule s =
  Json.List
    (List.map
       (fun { at; fault } ->
         Json.Obj
           [
             ("at_us", Json.Int (Sim_time.time_to_us at));
             ("kind", Json.String (kind_to_string fault.kind));
             ("who", Json.String fault.who);
           ])
       s)

let schedule_of_json j =
  let injection_of_json = function
    | Json.Obj _ as o -> (
      match (Json.member "at_us" o, Json.member "kind" o, Json.member "who" o) with
      | Some (Json.Int at_us), Some (Json.String kind), Some (Json.String who) -> (
        match kind_of_string kind with
        | Some kind -> Ok { at = Sim_time.at_us at_us; fault = { kind; who } }
        | None -> Error (Printf.sprintf "unknown fault kind %S" kind))
      | _ -> Error "injection needs at_us (int), kind (string), who (string)")
    | _ -> Error "injection is not an object"
  in
  match j with
  | Json.List items ->
    List.fold_left
      (fun acc item ->
        match (acc, injection_of_json item) with
        | Ok inis, Ok i -> Ok (i :: inis)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "schedule is not a JSON array"

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mutable log : injection list;  (** newest first *)
  targets : (string, target) Hashtbl.t;
  toggles : (string, toggle) Hashtbl.t;
  counts : (fault_kind, int ref) Hashtbl.t;
  mutable zk_cuts : int;
}

let create engine =
  {
    engine;
    rng = Rng.split (Engine.rng engine);
    log = [];
    targets = Hashtbl.create 16;
    toggles = Hashtbl.create 16;
    counts = Hashtbl.create 8;
    zk_cuts = 0;
  }

let injections t = List.rev t.log

let pp_injections ppf t =
  List.iter
    (fun { at; fault } ->
      Format.fprintf ppf "%8.3fs  %a@."
        (float_of_int (Sim_time.time_to_us at) /. 1e6)
        pp_fault fault)
    (injections t)

let register_target t target = Hashtbl.replace t.targets target.label target

let register_toggle t tg = Hashtbl.replace t.toggles tg.t_label tg

(* Heuristic: coordination-service cuts are toggles named for ZooKeeper.
   Counted separately so audit reports can distinguish "the data network
   misbehaved" from "the failure detector itself was blinded". *)
let is_zk_label who =
  let who = String.lowercase_ascii who in
  let has_prefix p =
    String.length who >= String.length p && String.sub who 0 (String.length p) = p
  in
  has_prefix "zk" || has_prefix "zk-" || has_prefix "zookeeper"

let note t fault =
  t.log <- { at = Engine.now t.engine; fault } :: t.log;
  (match Hashtbl.find_opt t.counts fault.kind with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts fault.kind (ref 1));
  if fault.kind = Engage && is_zk_label fault.who then t.zk_cuts <- t.zk_cuts + 1

let count t kind =
  match Hashtbl.find_opt t.counts kind with Some r -> !r | None -> 0

let exposure t =
  [
    ("crashes", count t Crash);
    ("restarts", count t Restart);
    ("destroys", count t Destroy);
    ("engages", count t Engage);
    ("disengages", count t Disengage);
    ("zk_cuts", t.zk_cuts);
  ]

let json_of_exposure t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (exposure t))

let attach_metrics t registry =
  List.iter
    (fun (name, _) ->
      ignore
        (Metrics.Registry.register_gauge registry ~node:(-1)
           ~name:(Printf.sprintf "nemesis_%s" name) (fun () ->
             List.assoc name (exposure t))))
    (exposure t)

(* Exponential samples are clamped to >= 1 µs: a zero-length interval would
   schedule a repair at the same timestamp as the fault, and the event
   queue's tie order would decide which one "wins". *)
let exp_span t mean =
  Sim_time.us (Stdlib.max 1 (int_of_float (Rng.exponential t.rng mean)))

let crash_at t time target =
  register_target t target;
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t { kind = Crash; who = target.label };
         target.crash ()))

let restart_at t time target =
  register_target t target;
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t { kind = Restart; who = target.label };
         target.restart ()))

let crash_for t ~at ~down_for target =
  crash_at t at target;
  restart_at t (Sim_time.add at down_for) target

let destroy_at t time target =
  register_target t target;
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t { kind = Destroy; who = target.label };
         target.crash ();
         target.lose_disk ()))

let chaos t ~mean_time_to_failure ~mean_time_to_repair ~until targets =
  let mttf = float_of_int (Sim_time.to_us mean_time_to_failure) in
  let mttr = float_of_int (Sim_time.to_us mean_time_to_repair) in
  let schedule_target target =
    let rec next_failure from =
      let at = Sim_time.add from (exp_span t mttf) in
      if Sim_time.(at < until) then begin
        crash_at t at target;
        let back = Sim_time.add at (exp_span t mttr) in
        let back = Sim_time.min back until in
        restart_at t back target;
        next_failure back
      end
    in
    next_failure (Engine.now t.engine)
  in
  List.iter schedule_target targets

(* ------------------------------------------------------------------ *)
(* Nemesis toggles: named faults that can be engaged and disengaged —
   partitions, link loss, coordination-service cuts. Every transition is
   recorded in the injection log, so a failing chaos run replays from the
   (seed, log) pair alone. *)

let toggle ~label ~engage ~disengage = { t_label = label; engage; disengage }

let engage_at t time tg =
  register_toggle t tg;
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t { kind = Engage; who = tg.t_label };
         tg.engage ()))

let disengage_at t time tg =
  register_toggle t tg;
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t { kind = Disengage; who = tg.t_label };
         tg.disengage ()))

let toggle_for t ~at ~down_for tg =
  engage_at t at tg;
  disengage_at t (Sim_time.add at down_for) tg

let toggle_chaos t ~mean_time_to_fault ~mean_time_to_heal ~until toggles =
  let mttf = float_of_int (Sim_time.to_us mean_time_to_fault) in
  let mtth = float_of_int (Sim_time.to_us mean_time_to_heal) in
  let schedule_toggle tg =
    let rec next_fault from =
      let at = Sim_time.add from (exp_span t mttf) in
      if Sim_time.(at < until) then begin
        engage_at t at tg;
        let back = Sim_time.add at (exp_span t mtth) in
        let back = Sim_time.min back until in
        disengage_at t back tg;
        next_fault back
      end
    in
    next_fault (Engine.now t.engine)
  in
  List.iter schedule_toggle toggles

(* ------------------------------------------------------------------ *)
(* Replay: re-execute an explicit schedule against the registered label
   universe. Injections are scheduled in list order, so equal-timestamp
   ties resolve by list position (the event heap is FIFO per instant) —
   replaying the same schedule twice is byte-identical. *)

exception Unresolved_label of fault

let resolve t fault =
  match fault.kind with
  | Crash | Restart | Destroy -> (
    match Hashtbl.find_opt t.targets fault.who with
    | Some _ -> true
    | None -> false)
  | Engage | Disengage -> (
    match Hashtbl.find_opt t.toggles fault.who with Some _ -> true | None -> false)

let apply t schedule =
  List.iter
    (fun { at; fault } ->
      if not (resolve t fault) then raise (Unresolved_label fault);
      match fault.kind with
      | Crash -> crash_at t at (Hashtbl.find t.targets fault.who)
      | Restart -> restart_at t at (Hashtbl.find t.targets fault.who)
      | Destroy -> destroy_at t at (Hashtbl.find t.targets fault.who)
      | Engage -> engage_at t at (Hashtbl.find t.toggles fault.who)
      | Disengage -> disengage_at t at (Hashtbl.find t.toggles fault.who))
    schedule

(* ------------------------------------------------------------------ *)
(* Conditional failure multipliers. Unlike [chaos], whose whole timeline
   is drawn eagerly from the seed at setup, a hazard process decides at
   run time: every [period] it flips a coin per target whose odds are
   [p_per_tick] scaled by [multiplier ()] — a closure reading live signals
   (a migration in flight, a compaction storm). The draws happen lazily,
   but every injection that fires still lands in the log, so a failing
   hazard run shrinks and replays exactly like a planned one. *)

let hazard_crash_chaos t ~period ~p_per_tick ?(multiplier = fun () -> 1.0)
    ?(max_concurrent = max_int) ~mean_time_to_repair ~until targets =
  let mttr = float_of_int (Sim_time.to_us mean_time_to_repair) in
  List.iter (register_target t) targets;
  let down = Hashtbl.create (List.length targets) in
  let n_down () = Hashtbl.length down in
  let rec tick () =
    let now = Engine.now t.engine in
    if Sim_time.(now < until) then begin
      List.iter
        (fun target ->
          (* Draw for every target every tick, even when suppressed: the
             consumed randomness must not depend on live cluster state or
             the stream would decohere from the schedule under replay. *)
          let u = Rng.float t.rng 1.0 in
          let m = multiplier () in
          if
            (not (Hashtbl.mem down target.label))
            && n_down () < max_concurrent
            && u < p_per_tick *. m
          then begin
            Hashtbl.replace down target.label ();
            note t { kind = Crash; who = target.label };
            target.crash ();
            let back = Sim_time.min (Sim_time.add now (exp_span t mttr)) until in
            ignore
              (Engine.schedule_at t.engine back (fun () ->
                   Hashtbl.remove down target.label;
                   note t { kind = Restart; who = target.label };
                   target.restart ()))
          end)
        targets;
      ignore (Engine.schedule t.engine ~after:period tick)
    end
  in
  ignore (Engine.schedule t.engine ~after:period tick)

(* ------------------------------------------------------------------ *)
(* Ready-made network scenarios. *)

let group_label g = "[" ^ String.concat "," (List.map string_of_int g) ^ "]"

let partition_toggle ?label net group_a group_b =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "partition %s|%s" (group_label group_a) (group_label group_b)
  in
  toggle ~label
    ~engage:(fun () -> Network.partition net group_a group_b)
    ~disengage:(fun () -> Network.unpartition net group_a group_b)

let isolate_toggle ?label net ~node ~peers =
  let peers = List.filter (fun p -> p <> node) peers in
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "isolate n%d from %s" node (group_label peers)
  in
  partition_toggle ~label net [ node ] peers

let pair_partition_toggle net a b =
  (* Canonical order, so the label is the same whichever way the pair was
     drawn — replay resolves it against a universe registered once per pair. *)
  let a, b = if a <= b then (a, b) else (b, a) in
  toggle
    ~label:(Printf.sprintf "pair-partition %d<->%d" a b)
    ~engage:(fun () -> Network.partition_pair net a b)
    ~disengage:(fun () -> Network.heal_pair net a b)

let oneway_toggle ?label net ~src ~dst =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "oneway-partition %d->%d" src dst
  in
  toggle ~label
    ~engage:(fun () -> Network.partition_oneway net ~src ~dst)
    ~disengage:(fun () -> Network.heal_oneway net ~src ~dst)

let link_faults_toggle ?label net ?(loss = 0.0) ?(duplicate = 0.0) ?jitter nodes =
  let label =
    match label with
    | Some l -> l
    | None ->
      Printf.sprintf "link-faults %s loss=%.3f dup=%.3f" (group_label nodes) loss duplicate
  in
  let each f =
    List.iter (fun a -> List.iter (fun b -> if a <> b then f a b) nodes) nodes
  in
  toggle ~label
    ~engage:(fun () ->
      each (fun src dst -> Network.set_link_faults net ~src ~dst ~loss ~duplicate ?jitter ()))
    ~disengage:(fun () -> each (fun src dst -> Network.clear_link_faults net ~src ~dst))

let random_pair_partition_chaos t net ~nodes ~mean_time_to_fault ~mean_time_to_heal ~until =
  match nodes with
  | [] | [ _ ] -> ()
  | _ ->
    let arr = Array.of_list nodes in
    let n = Array.length arr in
    let mttf = float_of_int (Sim_time.to_us mean_time_to_fault) in
    let mtth = float_of_int (Sim_time.to_us mean_time_to_heal) in
    let rec next_fault from =
      let at = Sim_time.add from (exp_span t mttf) in
      if Sim_time.(at < until) then begin
        (* Draw the pair and the flavour now so the schedule is a pure
           function of the seed (replayable from the injection log). *)
        let a = arr.(Rng.int t.rng n) in
        let b =
          let rec draw () =
            let b = arr.(Rng.int t.rng n) in
            if b = a then draw () else b
          in
          draw ()
        in
        let tg =
          if Rng.bool t.rng then pair_partition_toggle net a b
          else oneway_toggle net ~src:a ~dst:b
        in
        engage_at t at tg;
        let back = Sim_time.min (Sim_time.add at (exp_span t mtth)) until in
        disengage_at t back tg;
        next_fault back
      end
    in
    next_fault (Engine.now t.engine)
