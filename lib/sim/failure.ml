type target = {
  label : string;
  crash : unit -> unit;
  restart : unit -> unit;
  lose_disk : unit -> unit;
}

type toggle = {
  t_label : string;
  engage : unit -> unit;
  disengage : unit -> unit;
}

type t = { engine : Engine.t; rng : Rng.t; mutable log : (Sim_time.t * string) list }

let create engine = { engine; rng = Rng.split (Engine.rng engine); log = [] }
let injections t = List.rev t.log

let pp_injections ppf t =
  List.iter
    (fun (at, what) ->
      Format.fprintf ppf "%8.3fs  %s@." (float_of_int (Sim_time.time_to_us at) /. 1e6) what)
    (injections t)

let note t what = t.log <- (Engine.now t.engine, what) :: t.log

(* Exponential samples are clamped to >= 1 µs: a zero-length interval would
   schedule a repair at the same timestamp as the fault, and the event
   queue's tie order would decide which one "wins". *)
let exp_span t mean =
  Sim_time.us (Stdlib.max 1 (int_of_float (Rng.exponential t.rng mean)))

let crash_at t time target =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "crash %s" target.label);
         target.crash ()))

let restart_at t time target =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "restart %s" target.label);
         target.restart ()))

let crash_for t ~at ~down_for target =
  crash_at t at target;
  restart_at t (Sim_time.add at down_for) target

let destroy_at t time target =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "destroy %s" target.label);
         target.crash ();
         target.lose_disk ()))

let chaos t ~mean_time_to_failure ~mean_time_to_repair ~until targets =
  let mttf = float_of_int (Sim_time.to_us mean_time_to_failure) in
  let mttr = float_of_int (Sim_time.to_us mean_time_to_repair) in
  let schedule_target target =
    let rec next_failure from =
      let at = Sim_time.add from (exp_span t mttf) in
      if Sim_time.(at < until) then begin
        crash_at t at target;
        let back = Sim_time.add at (exp_span t mttr) in
        let back = Sim_time.min back until in
        restart_at t back target;
        next_failure back
      end
    in
    next_failure (Engine.now t.engine)
  in
  List.iter schedule_target targets

(* ------------------------------------------------------------------ *)
(* Nemesis toggles: named faults that can be engaged and disengaged —
   partitions, link loss, coordination-service cuts. Every transition is
   recorded in the injection log, so a failing chaos run replays from the
   (seed, log) pair alone. *)

let toggle ~label ~engage ~disengage = { t_label = label; engage; disengage }

let engage_at t time tg =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "engage %s" tg.t_label);
         tg.engage ()))

let disengage_at t time tg =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "disengage %s" tg.t_label);
         tg.disengage ()))

let toggle_for t ~at ~down_for tg =
  engage_at t at tg;
  disengage_at t (Sim_time.add at down_for) tg

let toggle_chaos t ~mean_time_to_fault ~mean_time_to_heal ~until toggles =
  let mttf = float_of_int (Sim_time.to_us mean_time_to_fault) in
  let mtth = float_of_int (Sim_time.to_us mean_time_to_heal) in
  let schedule_toggle tg =
    let rec next_fault from =
      let at = Sim_time.add from (exp_span t mttf) in
      if Sim_time.(at < until) then begin
        engage_at t at tg;
        let back = Sim_time.add at (exp_span t mtth) in
        let back = Sim_time.min back until in
        disengage_at t back tg;
        next_fault back
      end
    in
    next_fault (Engine.now t.engine)
  in
  List.iter schedule_toggle toggles

(* ------------------------------------------------------------------ *)
(* Ready-made network scenarios. *)

let group_label g = "[" ^ String.concat "," (List.map string_of_int g) ^ "]"

let partition_toggle ?label net group_a group_b =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "partition %s|%s" (group_label group_a) (group_label group_b)
  in
  toggle ~label
    ~engage:(fun () -> Network.partition net group_a group_b)
    ~disengage:(fun () -> Network.unpartition net group_a group_b)

let isolate_toggle ?label net ~node ~peers =
  let peers = List.filter (fun p -> p <> node) peers in
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "isolate n%d from %s" node (group_label peers)
  in
  partition_toggle ~label net [ node ] peers

let oneway_toggle ?label net ~src ~dst =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "oneway-partition %d->%d" src dst
  in
  toggle ~label
    ~engage:(fun () -> Network.partition_oneway net ~src ~dst)
    ~disengage:(fun () -> Network.heal_oneway net ~src ~dst)

let link_faults_toggle ?label net ?(loss = 0.0) ?(duplicate = 0.0) ?jitter nodes =
  let label =
    match label with
    | Some l -> l
    | None ->
      Printf.sprintf "link-faults %s loss=%.3f dup=%.3f" (group_label nodes) loss duplicate
  in
  let each f =
    List.iter (fun a -> List.iter (fun b -> if a <> b then f a b) nodes) nodes
  in
  toggle ~label
    ~engage:(fun () ->
      each (fun src dst -> Network.set_link_faults net ~src ~dst ~loss ~duplicate ?jitter ()))
    ~disengage:(fun () -> each (fun src dst -> Network.clear_link_faults net ~src ~dst))

let random_pair_partition_chaos t net ~nodes ~mean_time_to_fault ~mean_time_to_heal ~until =
  match nodes with
  | [] | [ _ ] -> ()
  | _ ->
    let arr = Array.of_list nodes in
    let n = Array.length arr in
    let mttf = float_of_int (Sim_time.to_us mean_time_to_fault) in
    let mtth = float_of_int (Sim_time.to_us mean_time_to_heal) in
    let rec next_fault from =
      let at = Sim_time.add from (exp_span t mttf) in
      if Sim_time.(at < until) then begin
        (* Draw the pair and the flavour now so the schedule is a pure
           function of the seed (replayable from the injection log). *)
        let a = arr.(Rng.int t.rng n) in
        let b =
          let rec draw () =
            let b = arr.(Rng.int t.rng n) in
            if b = a then draw () else b
          in
          draw ()
        in
        let tg =
          if Rng.bool t.rng then
            toggle
              ~label:(Printf.sprintf "pair-partition %d<->%d" a b)
              ~engage:(fun () -> Network.partition_pair net a b)
              ~disengage:(fun () -> Network.heal_pair net a b)
          else oneway_toggle net ~src:a ~dst:b
        in
        engage_at t at tg;
        let back = Sim_time.min (Sim_time.add at (exp_span t mtth)) until in
        disengage_at t back tg;
        next_fault back
      end
    in
    next_fault (Engine.now t.engine)
