type target = {
  label : string;
  crash : unit -> unit;
  restart : unit -> unit;
  lose_disk : unit -> unit;
}

type t = { engine : Engine.t; rng : Rng.t; mutable log : (Sim_time.t * string) list }

let create engine = { engine; rng = Rng.split (Engine.rng engine); log = [] }
let injections t = List.rev t.log

let note t what = t.log <- (Engine.now t.engine, what) :: t.log

let crash_at t time target =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "crash %s" target.label);
         target.crash ()))

let restart_at t time target =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "restart %s" target.label);
         target.restart ()))

let crash_for t ~at ~down_for target =
  crash_at t at target;
  restart_at t (Sim_time.add at down_for) target

let destroy_at t time target =
  ignore
    (Engine.schedule_at t.engine time (fun () ->
         note t (Printf.sprintf "destroy %s" target.label);
         target.crash ();
         target.lose_disk ()))

let chaos t ~mean_time_to_failure ~mean_time_to_repair ~until targets =
  let mttf = float_of_int (Sim_time.to_us mean_time_to_failure) in
  let mttr = float_of_int (Sim_time.to_us mean_time_to_repair) in
  let schedule_target target =
    let rec next_failure from =
      let at = Sim_time.add from (Sim_time.us (int_of_float (Rng.exponential t.rng mttf))) in
      if Sim_time.(at < until) then begin
        crash_at t at target;
        let back = Sim_time.add at (Sim_time.us (int_of_float (Rng.exponential t.rng mttr))) in
        let back = Sim_time.min back until in
        restart_at t back target;
        next_failure back
      end
    in
    next_failure (Engine.now t.engine)
  in
  List.iter schedule_target targets
