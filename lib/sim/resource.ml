type t = {
  engine : Engine.t;
  name : string;
  free_at : Sim_time.t array;
  mutable jobs_completed : int;
  mutable busy_time : Sim_time.span;
}

let create engine ~name ?(servers = 1) () =
  assert (servers > 0);
  {
    engine;
    name;
    free_at = Array.make servers Sim_time.zero;
    jobs_completed = 0;
    busy_time = Sim_time.span_zero;
  }

let name t = t.name

let earliest_server t =
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if Sim_time.(t.free_at.(i) < t.free_at.(!best)) then best := i
  done;
  !best

(* Book the job on the earliest-free server and return its finish time,
   without scheduling anything. The queue model is purely analytic (FIFO,
   no preemption), so callers that already schedule a downstream event can
   fold the completion into it instead of paying for a separate one. *)
let reserve t ~service =
  let now = Engine.now t.engine in
  let i = earliest_server t in
  let start = Sim_time.max now t.free_at.(i) in
  let finish = Sim_time.add start service in
  t.free_at.(i) <- finish;
  t.busy_time <- Sim_time.span_add t.busy_time service;
  t.jobs_completed <- t.jobs_completed + 1;
  finish

let submit t ~service k =
  let finish = reserve t ~service in
  ignore (Engine.schedule_at t.engine finish k)

let submit_bytes t ~bytes ~bytes_per_sec k =
  let service = Sim_time.of_us_f (float_of_int (max 1 bytes) *. 1e6 /. bytes_per_sec) in
  submit t ~service k

let reset t =
  Array.fill t.free_at 0 (Array.length t.free_at) Sim_time.zero;
  t.jobs_completed <- 0;
  t.busy_time <- Sim_time.span_zero

let jobs_completed t = t.jobs_completed
let busy_time t = t.busy_time

let queue_delay_estimate t =
  let now = Engine.now t.engine in
  let i = earliest_server t in
  if Sim_time.(t.free_at.(i) <= now) then Sim_time.span_zero
  else Sim_time.diff t.free_at.(i) now
