type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Shifted_exponential of { base : float; mean_extra : float }
  | Normal of { mean : float; stddev : float }
  | Mixture of (float * t) list

let rec sample t rng =
  let v =
    match t with
    | Constant c -> c
    | Uniform (lo, hi) -> Rng.uniform rng lo hi
    | Exponential mean -> Rng.exponential rng mean
    | Shifted_exponential { base; mean_extra } -> base +. Rng.exponential rng mean_extra
    | Normal { mean; stddev } -> mean +. (stddev *. Rng.gaussian rng)
    | Mixture weighted ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
      let target = Rng.float rng total in
      let rec pick acc = function
        | [] -> invalid_arg "Distribution.Mixture: empty"
        | [ (_, d) ] -> sample d rng
        | (w, d) :: rest -> if acc +. w >= target then sample d rng else pick (acc +. w) rest
      in
      pick 0.0 weighted
  in
  Stdlib.max 0.0 v

let sample_span t rng = Sim_time.of_us_f (sample t rng)

let rec mean = function
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Shifted_exponential { base; mean_extra } -> base +. mean_extra
  | Normal { mean = m; _ } -> m
  | Mixture weighted ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    List.fold_left (fun acc (w, d) -> acc +. (w /. total *. mean d)) 0.0 weighted

let rec scale t k =
  match t with
  | Constant c -> Constant (c *. k)
  | Uniform (lo, hi) -> Uniform (lo *. k, hi *. k)
  | Exponential m -> Exponential (m *. k)
  | Shifted_exponential { base; mean_extra } ->
    Shifted_exponential { base = base *. k; mean_extra = mean_extra *. k }
  | Normal { mean; stddev } -> Normal { mean = mean *. k; stddev = stddev *. k }
  | Mixture weighted -> Mixture (List.map (fun (w, d) -> (w, scale d k)) weighted)

let rec pp ppf = function
  | Constant c -> Format.fprintf ppf "const(%.1fus)" c
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%.1f,%.1f)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(%.1fus)" m
  | Shifted_exponential { base; mean_extra } ->
    Format.fprintf ppf "shifted-exp(%.1f+%.1fus)" base mean_extra
  | Normal { mean; stddev } -> Format.fprintf ppf "normal(%.1f,%.1f)" mean stddev
  | Mixture l ->
    Format.fprintf ppf "mixture(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (w, d) -> Format.fprintf ppf "%.2f:%a" w pp d))
      l
