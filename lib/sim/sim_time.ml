type t = int

type span = int

let zero = 0
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = a <= b
let ( < ) (a : t) b = a < b
let ( >= ) (a : t) b = a >= b
let ( > ) (a : t) b = a > b
let max (a : t) b = Stdlib.max a b
let min (a : t) b = Stdlib.min a b
let add t s = t + s
let diff a b = a - b
let span_zero = 0
let span_add a b = a + b
let span_sub a b = a - b
let span_compare = Int.compare
let span_scale s f = int_of_float (float_of_int s *. f)
let span_max (a : span) b = Stdlib.max a b
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let of_sec_f f = int_of_float (f *. 1e6)
let of_ms_f f = int_of_float (f *. 1e3)
let of_us_f f = int_of_float f
let to_us s = s
let to_ms_f s = float_of_int s /. 1e3
let to_sec_f s = float_of_int s /. 1e6
let at_us n = n
let time_to_us t = t
let time_to_sec_f t = float_of_int t /. 1e6
let pp ppf t = Format.fprintf ppf "%.6fs" (time_to_sec_f t)
let pp_span ppf s = Format.fprintf ppf "%.3fms" (to_ms_f s)
