(** Measurement collection: latency histograms and counters.

    A {!Histogram.t} stores raw samples (microseconds) so exact means and
    percentiles can be computed afterwards — simulation run lengths keep the
    sample counts modest. *)

module Histogram : sig
  type t

  val create : ?name:string -> unit -> t

  val name : t -> string

  val record : t -> float -> unit
  (** Record one sample in microseconds. *)

  val record_span : t -> Sim_time.span -> unit

  val count : t -> int

  val mean : t -> float
  (** 0.0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile t 0.99]; nearest-rank on the sorted samples. 0.0 if empty.
      The sorted view is cached and invalidated by {!record}, so calling
      several percentiles in a row sorts once; samples themselves stay in
      insertion order. *)

  val samples : t -> float list
  (** Raw samples in insertion order. *)

  val min : t -> float

  val max : t -> float

  val stddev : t -> float

  val clear : t -> unit

  val merge : t -> t -> t
  (** Fresh histogram with both sample sets. *)

  val pp_summary : Format.formatter -> t -> unit

  val sum : t -> float
  (** Sum of all samples; 0.0 when empty. *)

  val json_summary : t -> Json.t
  (** [{count, mean_us, p50_us, p95_us, p99_us, p999_us, max_us}]. *)
end

(** Per-phase breakdown of the leader-side write path (Figure 4): CPU queue
    wait, local log force, replication wait, and commit apply. Recorded by
    {!Spinnaker.Cohort} for every write it leads; all samples are simulated
    microseconds. *)
module Write_phases : sig
  type t = {
    queue : Histogram.t;  (** client arrival at leader -> CPU grant *)
    force : Histogram.t;  (** log append -> local force durable *)
    replication : Histogram.t;
        (** log append -> in-order quorum reached (commit eligible); runs in
            parallel with [force], so the write's critical path is
            [queue + max(force, replication) + apply] *)
    apply : Histogram.t;  (** commit eligible -> applied and reply issued *)
    transit : Histogram.t;
        (** measured one-way network time of replication messages (the leader
            samples each accepted ack's flight time, followers sample each
            propose's), so [replication] no longer silently lumps wire time
            into quorum wait *)
  }

  val create : unit -> t

  val merge : t -> t -> t

  val clear : t -> unit

  val count : t -> int
  (** Number of writes that completed the full pipeline. *)

  val to_json : t -> Json.t
  (** Keeps the original four field names ([queue]/[force]/[replication]/
      [apply]) and adds a [transit] key. *)

  val pp : Format.formatter -> t -> unit
end

(** Per-segment critical-path attribution histograms, fed by
    [Critpath.record]: one histogram per named latency segment plus the
    end-to-end total. String-keyed so the analyzer owns the segment
    enumeration and this registry just owns the numbers. *)
module Attribution : sig
  type t

  val create : unit -> t

  val record : t -> segment:string -> float -> unit
  (** Add one sample (µs) to the named segment's histogram, creating it on
      first use. *)

  val record_total : t -> float -> unit
  (** Add one end-to-end request latency sample (µs). *)

  val count : t -> int
  (** Requests recorded via {!record_total}. *)

  val segments : t -> (string * Histogram.t) list
  (** In first-use order. *)

  val total : t -> Histogram.t

  val dominant : t -> string option
  (** The segment owning the largest share of total attributed time; [None]
      when nothing was recorded. *)

  val to_json : t -> Json.t
  (** [{requests, dominant, total, segments: {<name>: {sum_us, share,
      mean_us, p50_us, p99_us, p999_us}}}]. *)

  val pp : Format.formatter -> t -> unit
end

module Counter : sig
  type t

  val create : ?name:string -> unit -> t

  val name : t -> string

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int

  val clear : t -> unit
end

(** A named per-node gauge: a [unit -> int] callback sampled by the owning
    {!Registry}'s sim-time ticker into a capped [(µs, value)] time series. *)
module Gauge : sig
  type t

  val name : t -> string

  val node : t -> int

  val read : t -> int
  (** Invoke the callback now (does not record a point). *)

  val points : t -> (int * int) list
  (** [(sim-time µs, value)] pairs, oldest first. *)

  val point_count : t -> int

  val last : t -> (int * int) option

  val dropped : t -> int
  (** Points discarded once the per-gauge cap was reached (oldest first). *)

  val to_json : t -> Json.t
  (** [{name, node, dropped_points, points: [[ts_us, value], ...]}]. *)
end

(** Central instrument registry for one cluster: gauges registered per node,
    create-or-get named counters and histograms, and a periodic sim-time
    sampler that turns gauge reads into time series for [BENCH_*.json] and
    the Perfetto exporter's counter tracks. *)
module Registry : sig
  type t

  val create : ?max_points_per_gauge:int -> Engine.t -> t
  (** [max_points_per_gauge] caps each gauge's retained series (default
      4096); older points are dropped FIFO. *)

  val register_gauge : t -> node:int -> name:string -> (unit -> int) -> Gauge.t

  val counter : t -> name:string -> Counter.t
  (** Create-or-get by name. *)

  val histogram : t -> name:string -> Histogram.t
  (** Create-or-get by name. *)

  val gauges : t -> Gauge.t list
  (** In registration order. *)

  val counters : t -> Counter.t list

  val histograms : t -> Histogram.t list

  val sample : t -> unit
  (** Record one point per gauge at the engine's current time. *)

  val samples_taken : t -> int

  val start_sampling : t -> period:Sim_time.span -> unit
  (** Start the periodic sampler (idempotent). The ticker reschedules itself
      forever, so drive the engine with [run_for]/[run_until], not [run]. *)

  val to_json : t -> Json.t
  (** [{samples_taken, gauges, counters, histograms}]. *)
end

type run_stats = {
  throughput_per_sec : float;  (** completed operations / measured seconds *)
  mean_latency_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  completed : int;
  errors : int;
}

val run_stats_of :
  latency:Histogram.t -> errors:int -> duration:Sim_time.span -> run_stats

val pp_run_stats : Format.formatter -> run_stats -> unit

val json_of_run_stats : run_stats -> Json.t
(** [{throughput_per_sec, mean_ms, p50_ms, p95_ms, p99_ms, completed,
    errors}]. *)

type net_stats = {
  net_delivered : int;
  net_dropped_down : int;  (** sender or receiver process down *)
  net_dropped_partitioned : int;  (** directed link blocked by a partition *)
  net_dropped_lost : int;  (** random in-flight loss on a faulty link *)
  net_duplicated : int;
  net_bytes : int;
}
(** Network delivery counters broken down by drop cause; produced by
    [Network.stats] so experiments can report loss vs partition drops. *)

val json_of_net_stats : net_stats -> Json.t
(** [{delivered, dropped_down, dropped_partitioned, dropped_lost,
    duplicated, bytes}] — the per-cause drop breakdown audit reports pair
    with the nemesis exposure counters. *)

val pp_net_stats : Format.formatter -> net_stats -> unit
