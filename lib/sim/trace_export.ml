(* Chrome trace-event (Perfetto / chrome://tracing loadable) JSON export.

   Mapping: pid = node id (a synthetic pid for node-less events), tid =
   cohort (key range, 0 when unknown), ts = simulated microseconds.
   [Span_start]/[Span_end] become async "b"/"e" events keyed by span id so
   spans may cross nodes (e.g. a replication span that commits after acks
   arrive); instants become "i"; registry gauges become counter tracks
   ("C"). *)

let sim_pid = 9999
(* pid for events not attributed to a node (client/nemesis/global events) *)

let category_of_tag tag =
  match String.index_opt tag '.' with
  | Some i -> String.sub tag 0 i
  | None -> tag

let pid_of_node node = if node >= 0 then node else sim_pid
let tid_of_cohort cohort = if cohort >= 0 then cohort else 0

let event_json (e : Trace.event) =
  let base =
    [
      ("name", Json.String e.tag);
      ("cat", Json.String (category_of_tag e.tag));
      ("ts", Json.Int (Sim_time.time_to_us e.at));
      ("pid", Json.Int (pid_of_node e.node));
      ("tid", Json.Int (tid_of_cohort e.cohort));
    ]
  in
  let args =
    List.concat
      [
        (if String.equal e.detail "" then [] else [ ("detail", Json.String e.detail) ]);
        (if e.trace_id >= 0 then [ ("trace_id", Json.Int e.trace_id) ] else []);
        (if String.equal e.lsn "" then [] else [ ("lsn", Json.String e.lsn) ]);
      ]
  in
  let args = if args = [] then [] else [ ("args", Json.Obj args) ] in
  match e.kind with
  | Trace.Instant -> Json.Obj (base @ [ ("ph", Json.String "i"); ("s", Json.String "t") ] @ args)
  | Trace.Span_start ->
      Json.Obj (base @ [ ("ph", Json.String "b"); ("id", Json.Int e.span_id) ] @ args)
  | Trace.Span_end ->
      Json.Obj (base @ [ ("ph", Json.String "e"); ("id", Json.Int e.span_id) ] @ args)

(* Flow events ("s"/"f") synthesized from "net.transit" spans: the flow
   starts on the sender's track at send time and finishes on the receiver's
   track at delivery, drawing the cross-node arrow that turns per-node span
   tracks into a causal graph in the Perfetto UI. Flow ids reuse the span id
   (unique per trace), and binding point "e" attaches the finish to the
   enclosing slice's end. *)
let flow_json (e : Trace.event) =
  let base =
    [
      ("name", Json.String e.tag);
      ("cat", Json.String (category_of_tag e.tag));
      ("id", Json.Int e.span_id);
      ("ts", Json.Int (Sim_time.time_to_us e.at));
      ("pid", Json.Int (pid_of_node e.node));
      ("tid", Json.Int (tid_of_cohort e.cohort));
    ]
  in
  match e.kind with
  | Trace.Span_start -> Some (Json.Obj (base @ [ ("ph", Json.String "s") ]))
  | Trace.Span_end ->
    Some (Json.Obj (base @ [ ("ph", Json.String "f"); ("bp", Json.String "e") ]))
  | Trace.Instant -> None

let is_transit (e : Trace.event) = String.equal e.tag "net.transit"

let process_name_json pid name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let counter_json ~pid ~name (ts, v) =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "gauge");
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("value", Json.Int v) ]);
    ]

let to_json ?registry trace =
  let pids = Hashtbl.create 16 in
  let note_pid pid = if not (Hashtbl.mem pids pid) then Hashtbl.add pids pid () in
  let events = ref [] in
  Trace.iter trace (fun e ->
      note_pid (pid_of_node e.node);
      if is_transit e then
        Option.iter (fun f -> events := f :: !events) (flow_json e);
      events := event_json e :: !events);
  let gauge_events =
    match registry with
    | None -> []
    | Some reg ->
        List.concat_map
          (fun g ->
            let pid = pid_of_node (Metrics.Gauge.node g) in
            note_pid pid;
            List.map (counter_json ~pid ~name:(Metrics.Gauge.name g)) (Metrics.Gauge.points g))
          (Metrics.Registry.gauges reg)
  in
  let metadata =
    Hashtbl.fold
      (fun pid () acc ->
        let name = if pid = sim_pid then "sim" else Printf.sprintf "node %d" pid in
        process_name_json pid name :: acc)
      pids []
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.rev !events @ gauge_events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("dropped_events", Json.Int (Trace.dropped trace));
            ("retained_events", Json.Int (Trace.length trace));
          ] );
    ]

let to_file ?registry trace path = Json.to_file path (to_json ?registry trace)

(* ------------------------------------------------------------------ *)
(* Flight-recorder outlier export: one Perfetto-loadable trace holding the
   pinned events of every outlier (each request's events already carry its
   trace_id in args, and net.transit spans get flow arrows), plus an
   [otherData.outliers] summary table for programmatic consumers. *)

let outlier_json (o : Trace.Flight.outlier) =
  Json.Obj
    [
      ("trace_id", Json.Int o.Trace.Flight.trace_id);
      ("latency_us", Json.Float o.latency_us);
      ("completed_at_us", Json.Int (Sim_time.time_to_us o.completed_at));
      ("events", Json.Int (List.length o.events));
      ("incomplete", Json.Bool o.incomplete);
    ]

let outliers_to_json flight =
  let outliers = Trace.Flight.outliers flight in
  let pids = Hashtbl.create 16 in
  let note_pid pid = if not (Hashtbl.mem pids pid) then Hashtbl.add pids pid () in
  let events = ref [] in
  List.iter
    (fun (o : Trace.Flight.outlier) ->
      List.iter
        (fun (e : Trace.event) ->
          note_pid (pid_of_node e.node);
          if is_transit e then
            Option.iter (fun f -> events := f :: !events) (flow_json e);
          events := event_json e :: !events)
        o.Trace.Flight.events)
    outliers;
  let metadata =
    Hashtbl.fold
      (fun pid () acc ->
        let name = if pid = sim_pid then "sim" else Printf.sprintf "node %d" pid in
        process_name_json pid name :: acc)
      pids []
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.rev !events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("pinned", Json.Int (List.length outliers));
            ("outliers", Json.List (List.map outlier_json outliers));
          ] );
    ]

let outliers_to_file flight path = Json.to_file path (outliers_to_json flight)
