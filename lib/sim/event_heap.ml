type handle = { mutable cancelled : bool }

type 'a entry = { time : Sim_time.t; seq : int; payload : 'a; handle : handle }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { data = [||]; len = 0; next_seq = 0; live = 0 }
let is_empty t = t.live = 0
let size t = t.live
let backing_len t = t.len

let entry_before a b =
  match Sim_time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow t =
  let cap = Stdlib.max 16 (2 * Array.length t.data) in
  if t.len > 0 then begin
    let data = Array.make cap t.data.(0) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

(* 4-ary layout: children of [i] sit at [4i+1 .. 4i+4]. Pops dominate the
   simulator loop, and a wider node halves the sift depth while keeping all
   four children in one or two cache lines; the (time, seq) order — and thus
   the event schedule — is identical to the binary layout's. *)
let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if entry_before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let first = (4 * i) + 1 in
  if first < t.len then begin
    let last = Stdlib.min (first + 3) (t.len - 1) in
    let smallest = ref i in
    for c = first to last do
      if entry_before t.data.(c) t.data.(!smallest) then smallest := c
    done;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end
  end

(* Rebuild [data] with only the live entries and re-heapify. [entry_before]
   is a total order ((time, seq) with unique seq), so any valid heap over the
   same live set pops in the identical sequence — compaction cannot change
   the simulation schedule. The fresh array is sized to 2x the live count so
   the backing store shrinks after a cancellation storm. *)
let compact t =
  if t.live = 0 then begin
    t.data <- [||];
    t.len <- 0
  end
  else begin
    let seed = ref t.data.(0) in
    (try
       for i = 0 to t.len - 1 do
         if not t.data.(i).handle.cancelled then begin
           seed := t.data.(i);
           raise Exit
         end
       done
     with Exit -> ());
    let data = Array.make (Stdlib.max 16 (2 * t.live)) !seed in
    let j = ref 0 in
    for i = 0 to t.len - 1 do
      let e = t.data.(i) in
      if not e.handle.cancelled then begin
        data.(!j) <- e;
        incr j
      end
    done;
    t.data <- data;
    t.len <- !j;
    (* Floyd heapify: the last internal node of the 4-ary heap is (len-2)/4. *)
    for i = (t.len - 2) / 4 downto 0 do
      sift_down t i
    done
  end

(* Below this size the O(len) rebuild costs more than lazily skipping a
   handful of dead entries on pop. *)
let compact_threshold = 64

let push t ~time payload =
  let handle = { cancelled = false } in
  let entry = { time; seq = t.next_seq; payload; handle } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then begin
    if t.len = 0 then t.data <- Array.make 16 entry else grow t
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  handle

let cancel t h =
  if not h.cancelled then begin
    h.cancelled <- true;
    t.live <- t.live - 1;
    (* [2 * live < len] rather than [live < len / 2]: integer division lets
       an odd [len] slip one past the documented [len <= 2 * live] bound. *)
    if t.len >= compact_threshold && 2 * t.live < t.len then compact t
  end

let is_cancelled h = h.cancelled

let drop_top t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.data.(0) <- t.data.(t.len);
    sift_down t 0
  end

(* Shed cancelled entries off the top; true iff a live entry remains. After
   [normalize] returns true, [next_time]/[take] read the root directly — the
   simulator's hot loop uses this triple so popping an event costs zero
   allocations (no option, no tuple). *)
let rec normalize t =
  if t.len = 0 then false
  else if t.data.(0).handle.cancelled then begin
    drop_top t;
    normalize t
  end
  else true

let next_time t = t.data.(0).time

let take t =
  let e = t.data.(0) in
  drop_top t;
  (* Mark popped so a later [cancel] on this handle is a no-op. *)
  e.handle.cancelled <- true;
  t.live <- t.live - 1;
  e.payload

let pop t =
  if normalize t then begin
    let time = next_time t in
    Some (time, take t)
  end
  else None

let peek_time t = if normalize t then Some (next_time t) else None
