type handle = { mutable cancelled : bool }

type 'a entry = { time : Sim_time.t; seq : int; payload : 'a; handle : handle }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { data = [||]; len = 0; next_seq = 0; live = 0 }
let is_empty t = t.live = 0
let size t = t.live

let entry_before a b =
  match Sim_time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow t =
  let cap = Stdlib.max 16 (2 * Array.length t.data) in
  if t.len > 0 then begin
    let data = Array.make cap t.data.(0) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && entry_before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && entry_before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let handle = { cancelled = false } in
  let entry = { time; seq = t.next_seq; payload; handle } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then begin
    if t.len = 0 then t.data <- Array.make 16 entry else grow t
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  handle

let cancel t h =
  if not h.cancelled then begin
    h.cancelled <- true;
    t.live <- t.live - 1
  end

let is_cancelled h = h.cancelled

let pop_entry t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let rec pop t =
  match pop_entry t with
  | None -> None
  | Some e ->
    if e.handle.cancelled then pop t
    else begin
      (* Mark popped so a later [cancel] on this handle is a no-op. *)
      e.handle.cancelled <- true;
      t.live <- t.live - 1;
      Some (e.time, e.payload)
    end

let rec peek_time t =
  if t.len = 0 then None
  else if t.data.(0).handle.cancelled then begin
    ignore (pop_entry t);
    peek_time t
  end
  else Some t.data.(0).time
