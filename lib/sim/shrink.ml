type stats = {
  replays : int;
  reproduced : int;
  initial_injections : int;
  final_injections : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "%d -> %d injections in %d replays (%d reproduced)"
    s.initial_injections s.final_injections s.replays s.reproduced

(* [complement schedule ~start ~len] is the schedule with the chunk
   [start, start+len) removed. *)
let complement schedule ~start ~len =
  List.filteri (fun i _ -> i < start || i >= start + len) schedule

let ddmin ?(max_replays = 2000) ~replay schedule =
  let replays = ref 0 and reproduced = ref 0 in
  let try_schedule candidate =
    incr replays;
    let fails = replay candidate in
    if fails then incr reproduced;
    fails
  in
  let budget () = !replays < max_replays in
  (* Zeller-Hildebrandt ddmin, removal-only: try dropping each of [n]
     chunks; on success restart at the smaller schedule with coarse
     granularity, otherwise refine until chunks are single injections. *)
  let rec minimize schedule n =
    let len = List.length schedule in
    if len <= 1 || n > len || not (budget ()) then schedule
    else begin
      let chunk = Stdlib.max 1 (len / n) in
      (* Walk chunks back to front: chaos schedules front-load the setup
         (engage before crash), and tails — injections after the violation
         already happened — are the easiest wins. *)
      let starts =
        List.rev (List.init n (fun i -> i * chunk))
        |> List.filter (fun s -> s < len)
      in
      let rec attempt = function
        | [] ->
          if chunk <= 1 then schedule
          else minimize schedule (Stdlib.min len (2 * n))
        | start :: rest ->
          if not (budget ()) then schedule
          else begin
            let this = if start + chunk > len then len - start else chunk in
            let candidate = complement schedule ~start ~len:this in
            if candidate <> [] && try_schedule candidate then
              (* Keep the granularity coarse after progress: the schedule
                 shrank, so the same chunk count now means bigger bites. *)
              minimize candidate (Stdlib.max 2 (n - 1))
            else attempt rest
          end
      in
      attempt starts
    end
  in
  (* The caller vouches that [schedule] fails; ddmin assumes it. A final
     greedy pass retries every single-injection removal once more — ddmin
     can stop at a local minimum where only first-removals were tried at
     the finest granularity. *)
  let rec greedy schedule =
    let len = List.length schedule in
    let rec try_each i =
      if i >= len || not (budget ()) then None
      else
        let candidate = complement schedule ~start:(len - 1 - i) ~len:1 in
        if candidate <> [] && try_schedule candidate then Some candidate
        else try_each (i + 1)
    in
    if len <= 1 then schedule
    else match try_each 0 with Some smaller -> greedy smaller | None -> schedule
  in
  let initial = List.length schedule in
  let minimal = greedy (minimize schedule 2) in
  ( minimal,
    {
      replays = !replays;
      reproduced = !reproduced;
      initial_injections = initial;
      final_injections = List.length minimal;
    } )
