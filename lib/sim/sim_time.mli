(** Simulated time.

    Absolute instants ([t]) and durations ([span]) are integer microsecond
    counts since the start of the simulation. Using integers keeps the event
    queue total order exact and the simulation deterministic. *)

type t
(** An absolute instant in simulated time. *)

type span
(** A duration. Spans may be added to instants and to each other. *)

val zero : t
(** The simulation epoch. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val add : t -> span -> t

val diff : t -> t -> span
(** [diff a b] is [a - b]; negative if [a] precedes [b]. *)

val span_zero : span

val span_add : span -> span -> span

val span_sub : span -> span -> span

val span_compare : span -> span -> int

val span_scale : span -> float -> span

val span_max : span -> span -> span

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span

val sec : int -> span

val of_sec_f : float -> span

val of_ms_f : float -> span

val of_us_f : float -> span

val to_us : span -> int

val to_ms_f : span -> float

val to_sec_f : span -> float

val at_us : int -> t
(** Absolute instant [n] microseconds after the epoch. *)

val time_to_us : t -> int

val time_to_sec_f : t -> float

val pp : Format.formatter -> t -> unit

val pp_span : Format.formatter -> span -> unit
