(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the simulator draws from an explicit [t] so
    that whole-cluster runs are reproducible from a single seed, and so that
    independent components can be given split, non-overlapping streams. *)

type t

val create : int -> t
(** [create seed] makes a generator from a seed. *)

val split : t -> t
(** [split t] derives a new independent generator; [t] advances. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
