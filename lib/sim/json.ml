type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  (* JSON has no NaN/Infinity literals. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.6g" f

let rec write buf indent t =
  let pad n = String.make (2 * n) ' ' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        write buf (indent + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape key);
        Buffer.add_string buf "\": ";
        write buf (indent + 1) value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  write buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* Recursive-descent parser — the counterpart of [write], so traces and bench
   files we emit can be read back in tests without an external dependency. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail "expected '%c', found '%c'" c got
    | None -> fail "expected '%c', found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  let add_utf8 buf code =
    (* Encode the decoded \uXXXX codepoint back to UTF-8 bytes. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape '%s'" hex
              in
              add_utf8 buf code
          | c -> fail "bad escape '\\%c'" c);
          loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number '%s'" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number '%s'" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            fields := (key, value) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); field ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error m -> Error m

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
