type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  (* JSON has no NaN/Infinity literals. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.6g" f

let rec write buf indent t =
  let pad n = String.make (2 * n) ' ' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        write buf (indent + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape key);
        Buffer.add_string buf "\": ";
        write buf (indent + 1) value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  write buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
