(** Discrete-event simulation engine.

    The engine owns the virtual clock and the event queue. All other simulated
    components (network, disks, nodes) schedule closures on it. Execution is
    single-threaded and deterministic for a given seed. *)

type t

type timer
(** Handle for cancelling a scheduled event. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose clock starts at {!Sim_time.zero}.
    [seed] (default 42) seeds the root RNG. *)

val now : t -> Sim_time.t

val rng : t -> Rng.t
(** The engine's root RNG. Components should {!Rng.split} their own stream. *)

val seed : t -> int
(** The seed {!create} was given — embedded in replay artifacts so a shrunk
    fault schedule carries everything needed to re-run it. *)

val schedule : t -> after:Sim_time.span -> (unit -> unit) -> timer
(** Run the closure [after] from now. Negative spans are clamped to zero. *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> timer
(** Run the closure at an absolute instant (clamped to now if in the past). *)

val cancel : t -> timer -> unit

val pending : t -> int
(** Number of live scheduled events. *)

val events_run : t -> int
(** Total events executed since [create] — the denominator for per-event cost
    accounting when hunting hot-loop overhead. *)

val step : t -> bool
(** Execute the earliest event. Returns [false] when the queue is empty. *)

val run : ?max_events:int -> t -> unit
(** Drain the event queue ([max_events] bounds runaway simulations). *)

val run_until : t -> Sim_time.t -> unit
(** Execute events up to and including instant [until]; afterwards the clock
    reads [until] even if no event fired exactly then. *)

val run_for : t -> Sim_time.span -> unit
