type timer = Event_heap.handle

type t = {
  mutable clock : Sim_time.t;
  events : (unit -> unit) Event_heap.t;
  root_rng : Rng.t;
  seed : int;
}

let create ?(seed = 42) () =
  { clock = Sim_time.zero; events = Event_heap.create (); root_rng = Rng.create seed; seed }

let now t = t.clock
let rng t = t.root_rng
let seed t = t.seed

let schedule_at t time k =
  let time = Sim_time.max time t.clock in
  Event_heap.push t.events ~time k

let schedule t ~after k =
  let after = Sim_time.span_max after Sim_time.span_zero in
  schedule_at t (Sim_time.add t.clock after) k

let cancel t timer = Event_heap.cancel t.events timer
let pending t = Event_heap.size t.events

let step t =
  match Event_heap.pop t.events with
  | None -> false
  | Some (time, k) ->
    t.clock <- time;
    k ();
    true

let run ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining > 0 && step t then loop (remaining - 1)
  in
  loop max_events

let run_until t until =
  let rec loop () =
    match Event_heap.peek_time t.events with
    | Some time when Sim_time.(time <= until) ->
      ignore (step t);
      loop ()
    | _ -> t.clock <- Sim_time.max t.clock until
  in
  loop ()

let run_for t span = run_until t (Sim_time.add t.clock span)
