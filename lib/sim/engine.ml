type timer = Event_heap.handle

type t = {
  mutable clock : Sim_time.t;
  events : (unit -> unit) Event_heap.t;
  root_rng : Rng.t;
  seed : int;
  mutable events_run : int;
}

let create ?(seed = 42) () =
  {
    clock = Sim_time.zero;
    events = Event_heap.create ();
    root_rng = Rng.create seed;
    seed;
    events_run = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let seed t = t.seed

let schedule_at t time k =
  let time = Sim_time.max time t.clock in
  Event_heap.push t.events ~time k

let schedule t ~after k =
  let after = Sim_time.span_max after Sim_time.span_zero in
  schedule_at t (Sim_time.add t.clock after) k

let cancel t timer = Event_heap.cancel t.events timer
let pending t = Event_heap.size t.events

let events_run t = t.events_run

let step t =
  if Event_heap.normalize t.events then begin
    t.clock <- Event_heap.next_time t.events;
    let k = Event_heap.take t.events in
    t.events_run <- t.events_run + 1;
    k ();
    true
  end
  else false

let run ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining > 0 && step t then loop (remaining - 1)
  in
  loop max_events

(* The hot loop: normalize once, then read the heap top in place — no
   option/tuple is allocated per event, and the top is only examined once
   (the old peek-then-pop shape re-ran the cancellation check). *)
let run_until t until =
  let rec loop () =
    if Event_heap.normalize t.events then begin
      let time = Event_heap.next_time t.events in
      if Sim_time.(time <= until) then begin
        let k = Event_heap.take t.events in
        t.clock <- time;
        t.events_run <- t.events_run + 1;
        k ();
        loop ()
      end
      else t.clock <- Sim_time.max t.clock until
    end
    else t.clock <- Sim_time.max t.clock until
  in
  loop ()

let run_for t span = run_until t (Sim_time.add t.clock span)
