(** Lightweight event trace for debugging and for asserting on protocol
    behaviour in tests (e.g. "exactly one leader election ran"). *)

type t

type event = { at : Sim_time.t; tag : string; detail : string }

val create : Engine.t -> t

val enable : t -> bool -> unit
(** Disabled traces drop events (default: enabled). *)

val emit : t -> tag:string -> string -> unit

val emitf : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> event list
(** In emission order. *)

val find : t -> tag:string -> event list

val count : t -> tag:string -> int

val clear : t -> unit

val pp : Format.formatter -> t -> unit
