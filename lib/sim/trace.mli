(** Structured causal trace.

    Events are stored in a bounded ring buffer (O(1) append; oldest events
    are overwritten once full and counted in {!dropped}) and carry optional
    structure — a request-scoped trace id, a span id pairing start/end
    events, the emitting node, the cohort (key range), and an LSN — so tests
    and the {!Timeline} analyzer select on fields instead of string-matching
    details, and {!Trace_export} can lay events out on per-node/per-cohort
    tracks for Perfetto. *)

type t

type kind = Instant | Span_start | Span_end

type event = {
  at : Sim_time.t;
  tag : string;
  detail : string;
  kind : kind;
  trace_id : int;  (** -1 when not request-scoped *)
  span_id : int;  (** 0 for instants; pairs a [Span_start] with its [Span_end] *)
  node : int;  (** -1 when unknown *)
  cohort : int;  (** -1 when unknown *)
  lsn : string;  (** "" when not tied to a log position *)
}

val default_capacity : int

val create : ?capacity:int -> Engine.t -> t
(** Ring buffer holding at most [capacity] events (default
    {!default_capacity}, clamped to at least 1). *)

val enable : t -> bool -> unit
(** Disabled traces drop events (default: enabled). *)

val is_enabled : t -> bool
(** Hot emitters check this before formatting detail strings: a disabled
    trace must cost zero allocation, not a dropped-after-formatting event. *)

val capacity : t -> int

val length : t -> int
(** Number of currently retained events. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val event :
  t ->
  ?kind:kind ->
  ?trace_id:int ->
  ?span_id:int ->
  ?node:int ->
  ?cohort:int ->
  ?lsn:string ->
  tag:string ->
  string ->
  unit
(** Fully general emitter; the named emitters below cover the common cases. *)

val emit : t -> tag:string -> string -> unit
(** Unstructured instant (back-compat with the flat string trace). *)

val emitf : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val span_start :
  t ->
  ?trace_id:int ->
  ?node:int ->
  ?cohort:int ->
  ?lsn:string ->
  tag:string ->
  string ->
  int
(** Emit a [Span_start] and return the fresh span id to pass to
    {!span_end}. Span ids are unique per trace and never 0. *)

val span_end :
  t ->
  span:int ->
  ?trace_id:int ->
  ?node:int ->
  ?cohort:int ->
  ?lsn:string ->
  tag:string ->
  string ->
  unit

val request_trace_id : client:int -> request_id:int -> int
(** Deterministic trace id for a client request: every hop that knows the
    originating [(client, request_id)] pair derives the same id, so spans
    correlate across client, leader, and followers without protocol
    changes. *)

val iter : t -> (event -> unit) -> unit
(** In emission order (oldest retained first); allocation-free. *)

val events : t -> event list
(** In emission order (oldest retained first). *)

val find : t -> tag:string -> event list

val count : t -> tag:string -> int

val clear : t -> unit

val pp : Format.formatter -> t -> unit

type trace = t
(** Alias so {!Flight} can name the enclosing trace type. *)

(** Outlier flight recorder: pins the full causal traces of the top-K slowest
    requests per time window by copying their events out of the ring at
    completion time, so tail outliers survive ring-buffer eviction. Recording
    never schedules events or draws randomness, so it cannot perturb a
    deterministic run; with the trace disabled, {!Flight.note} is a no-op. *)
module Flight : sig
  type outlier = {
    trace_id : int;
    latency_us : float;
    completed_at : Sim_time.t;
    events : event list;  (** the request's events, oldest first *)
    incomplete : bool;
        (** the ring evicted the head of this request's trace before it
            completed, so [events] is missing its earliest entries *)
  }

  type t

  val create : ?top_k:int -> ?window:Sim_time.span -> trace -> t
  (** [top_k] defaults to 5 pins per window; [window] defaults to 1 s. *)

  val note : t -> trace_id:int -> started:Sim_time.t -> unit
  (** Report a completed request. If it ranks among the current window's
      top-K slowest, its events are copied out of the ring (an O(ring) scan,
      only paid on admission). Call at request completion time: latency is
      measured from [started] to now. *)

  val outliers : t -> outlier list
  (** All pinned outliers (current window plus retained closed windows),
      slowest first. *)

  val pinned : t -> int
  (** Number of currently pinned outliers. *)

  val top_k : t -> int

  val clear : t -> unit
end
