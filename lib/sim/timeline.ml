(* Failover-timeline analyzer (paper §7/§8).

   Consumes a structured trace from a crash-the-leader experiment and pulls
   out the causal chain the paper's availability analysis is built on:

     leader crash -> ZK session expiry -> election start -> leader elected
       -> cohort reopened -> first re-committed client write

   The unavailability window is crash -> first committed write (a
   "phase.apply" span end on the cohort), i.e. the client-visible outage.
   If the crashed node restarts, catch-up duration is restart ->
   follower_active on the same cohort. *)

type t = {
  crash_at : Sim_time.t;
  cohort : int;
  session_expired_at : Sim_time.t option;
  election_started_at : Sim_time.t option;
  leader_elected_at : Sim_time.t option;
  cohort_open_at : Sim_time.t option;
  first_commit_at : Sim_time.t option;
  restart_at : Sim_time.t option;
  catchup_done_at : Sim_time.t option;
  unavailability : Sim_time.span option;
  catchup : Sim_time.span option;
  incomplete : bool;
      (** the ring buffer dropped events during the window, so marks may be
          missing (an absent mark then means "evicted", not "never happened") *)
}

let first_at events ~since pred =
  List.find_opt (fun (e : Trace.event) -> Sim_time.(e.at >= since) && pred e) events
  |> Option.map (fun (e : Trace.event) -> e.at)

let analyze ?(leader = -1) ?(dropped = 0) ~events ~crash_at ~cohort () =
  let for_node (e : Trace.event) = leader < 0 || e.node = leader in
  let in_cohort (e : Trace.event) = e.cohort = cohort in
  let tagged tag (e : Trace.event) = String.equal e.tag tag in
  let since = crash_at in
  let session_expired_at =
    first_at events ~since (fun e -> tagged "zk.session_expired" e && for_node e)
  in
  let election_started_at =
    first_at events ~since (fun e -> tagged "election_start" e && in_cohort e)
  in
  let leader_elected_at =
    first_at events ~since (fun e -> tagged "leader_elected" e && in_cohort e)
  in
  let cohort_open_at =
    first_at events ~since (fun e -> tagged "cohort_open" e && in_cohort e)
  in
  let first_commit_at =
    first_at events ~since:(Sim_time.add crash_at (Sim_time.us 1)) (fun e ->
        tagged "phase.apply" e && e.kind = Trace.Span_end && in_cohort e)
  in
  let restart_at = first_at events ~since (fun e -> tagged "node_restart" e && for_node e) in
  let catchup_done_at =
    match restart_at with
    | None -> None
    | Some r ->
        first_at events ~since:r (fun e ->
            tagged "follower_active" e && in_cohort e && for_node e)
  in
  let span_from a b =
    match b with Some b -> Some (Sim_time.diff b a) | None -> None
  in
  {
    crash_at;
    cohort;
    session_expired_at;
    election_started_at;
    leader_elected_at;
    cohort_open_at;
    first_commit_at;
    restart_at;
    catchup_done_at;
    unavailability = span_from crash_at first_commit_at;
    catchup =
      (match restart_at with Some r -> span_from r catchup_done_at | None -> None);
    incomplete = dropped > 0;
  }

let opt_time = function
  | Some at -> Json.Int (Sim_time.time_to_us at)
  | None -> Json.Null

let opt_span = function
  | Some s -> Json.Float (Sim_time.to_ms_f s)
  | None -> Json.Null

let to_json t =
  Json.Obj
    [
      ("cohort", Json.Int t.cohort);
      ("crash_at_us", Json.Int (Sim_time.time_to_us t.crash_at));
      ("session_expired_at_us", opt_time t.session_expired_at);
      ("election_started_at_us", opt_time t.election_started_at);
      ("leader_elected_at_us", opt_time t.leader_elected_at);
      ("cohort_open_at_us", opt_time t.cohort_open_at);
      ("first_commit_at_us", opt_time t.first_commit_at);
      ("restart_at_us", opt_time t.restart_at);
      ("catchup_done_at_us", opt_time t.catchup_done_at);
      ("unavailability_ms", opt_span t.unavailability);
      ("catchup_ms", opt_span t.catchup);
      ("incomplete", Json.Bool t.incomplete);
    ]

let pp_mark ppf (label, at, crash_at) =
  match at with
  | None -> Format.fprintf ppf "  %-20s -@." label
  | Some at ->
      Format.fprintf ppf "  %-20s +%.1f ms@." label (Sim_time.to_ms_f (Sim_time.diff at crash_at))

let pp ppf t =
  Format.fprintf ppf "failover timeline (cohort r%d, t0 = crash)%s:@." t.cohort
    (if t.incomplete then " [INCOMPLETE: trace ring dropped events]" else "");
  List.iter
    (fun (label, at) -> pp_mark ppf (label, at, t.crash_at))
    [
      ("session expired", t.session_expired_at);
      ("election started", t.election_started_at);
      ("leader elected", t.leader_elected_at);
      ("cohort reopened", t.cohort_open_at);
      ("first commit", t.first_commit_at);
      ("node restarted", t.restart_at);
      ("catch-up done", t.catchup_done_at);
    ];
  (match t.unavailability with
  | Some s -> Format.fprintf ppf "  unavailability: %.1f ms@." (Sim_time.to_ms_f s)
  | None -> Format.fprintf ppf "  unavailability: not re-established within the run@.");
  match t.catchup with
  | Some s -> Format.fprintf ppf "  catch-up: %.1f ms@." (Sim_time.to_ms_f s)
  | None -> ()
