(* Structured causal trace.

   Events live in a bounded ring buffer: appending is O(1), and once the
   buffer is full the oldest events are overwritten (counted in [dropped]) so
   long chaos runs cannot accumulate unbounded history. Every event carries
   optional structure — a request-scoped trace id, a span id pairing
   [Span_start]/[Span_end] events, the emitting node, the cohort (key range),
   and an LSN rendered as a string — so tests and the timeline analyzer can
   select on fields instead of string-matching details, and the Chrome
   trace-event exporter can place events on per-node/per-cohort tracks. *)

type kind = Instant | Span_start | Span_end

type event = {
  at : Sim_time.t;
  tag : string;
  detail : string;
  kind : kind;
  trace_id : int;  (** -1 when not request-scoped *)
  span_id : int;  (** 0 for instants; pairs a start with its end *)
  node : int;  (** -1 when unknown *)
  cohort : int;  (** -1 when unknown *)
  lsn : string;  (** "" when not tied to a log position *)
}

type t = {
  engine : Engine.t;
  mutable enabled : bool;
  buf : event array;
  cap : int;
  mutable start : int;  (** index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
  mutable next_span : int;
}

let default_capacity = 65_536

let dummy =
  {
    at = Sim_time.zero;
    tag = "";
    detail = "";
    kind = Instant;
    trace_id = -1;
    span_id = 0;
    node = -1;
    cohort = -1;
    lsn = "";
  }

let create ?(capacity = default_capacity) engine =
  let cap = Stdlib.max 1 capacity in
  {
    engine;
    enabled = true;
    buf = Array.make cap dummy;
    cap;
    start = 0;
    len = 0;
    dropped = 0;
    next_span = 0;
  }

let enable t flag = t.enabled <- flag
let is_enabled t = t.enabled
let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped

let push t e =
  if t.enabled then begin
    if t.len = t.cap then begin
      t.buf.(t.start) <- e;
      t.start <- (t.start + 1) mod t.cap;
      t.dropped <- t.dropped + 1
    end
    else begin
      t.buf.((t.start + t.len) mod t.cap) <- e;
      t.len <- t.len + 1
    end
  end

let event t ?(kind = Instant) ?(trace_id = -1) ?(span_id = 0) ?(node = -1) ?(cohort = -1)
    ?(lsn = "") ~tag detail =
  push t { at = Engine.now t.engine; tag; detail; kind; trace_id; span_id; node; cohort; lsn }

let emit t ~tag detail = event t ~tag detail
let emitf t ~tag fmt = Format.kasprintf (fun s -> emit t ~tag s) fmt

let span_start t ?trace_id ?node ?cohort ?lsn ~tag detail =
  t.next_span <- t.next_span + 1;
  let id = t.next_span in
  event t ~kind:Span_start ?trace_id ~span_id:id ?node ?cohort ?lsn ~tag detail;
  id

let span_end t ~span ?trace_id ?node ?cohort ?lsn ~tag detail =
  event t ~kind:Span_end ?trace_id ~span_id:span ?node ?cohort ?lsn ~tag detail

(* (client, request id) pairs are unique, so a deterministic packing gives
   every client request the same trace id at every hop without threading new
   state through the message protocol. Request ids wrap into 24 bits; clients
   retire ids long before 16M in-flight requests, so collisions are moot. *)
let request_trace_id ~client ~request_id = (client lsl 24) lxor (request_id land 0xFFFFFF)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod t.cap)
  done

let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))
let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (events t)

let count t ~tag =
  let n = ref 0 in
  iter t (fun e -> if String.equal e.tag tag then incr n);
  !n

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0

let pp ppf t =
  iter t (fun e ->
      Format.fprintf ppf "[%a] %-18s %s@." Sim_time.pp e.at e.tag e.detail)

type trace = t

(* ------------------------------------------------------------------ *)
(* Outlier flight recorder.

   The ring buffer forgets: under load, a slow request's events are often
   evicted minutes before anyone asks why it was slow. The flight recorder
   pins full causal traces of the top-K slowest requests per time window by
   copying their events out of the ring at completion time — an O(ring) scan
   that only runs when a request beats the window's current K-th slowest, so
   after warm-up it is rare. It never schedules events or draws randomness,
   so enabling it cannot perturb a deterministic run. *)

module Flight = struct
  type outlier = {
    trace_id : int;
    latency_us : float;
    completed_at : Sim_time.t;
    events : event list;
    incomplete : bool;
  }

  type t = {
    trace : trace;
    top_k : int;
    window : Sim_time.span;
    mutable window_open : Sim_time.t;
    mutable current : outlier list;  (* descending latency, length <= top_k *)
    mutable retained : outlier list;  (* pins from closed windows, newest first *)
    mutable windows : int;  (* closed windows that retained at least one pin *)
  }

  (* Long chaos runs close thousands of windows; keep the most recent pins
     bounded rather than growing without limit. *)
  let max_retained_windows = 64

  let create ?(top_k = 5) ?(window = Sim_time.sec 1) trace =
    {
      trace;
      top_k;
      window;
      window_open = Sim_time.zero;
      current = [];
      retained = [];
      windows = 0;
    }

  let rotate f now =
    if Sim_time.span_compare (Sim_time.diff now f.window_open) f.window >= 0 then begin
      if f.current <> [] then begin
        f.retained <- f.current @ f.retained;
        f.windows <- f.windows + 1;
        let cap = max_retained_windows * f.top_k in
        if List.length f.retained > cap then
          f.retained <- List.filteri (fun i _ -> i < cap) f.retained
      end;
      f.current <- [];
      f.window_open <- now
    end

  (* Copy the request's events out of the ring. Eviction is oldest-first, so
     if the request's earliest event (emitted at [started]) survives, every
     later one does too; a first event newer than [started] means the head of
     the trace was already overwritten. *)
  let capture trace ~trace_id ~started =
    let evs = ref [] in
    iter trace (fun e -> if e.trace_id = trace_id then evs := e :: !evs);
    let events = List.rev !evs in
    let incomplete =
      match events with [] -> true | first :: _ -> Sim_time.(first.at > started)
    in
    (events, incomplete)

  let note f ~trace_id ~started =
    if f.trace.enabled && trace_id >= 0 && f.top_k > 0 then begin
      let now = Engine.now f.trace.engine in
      rotate f now;
      let latency_us = float_of_int (Sim_time.to_us (Sim_time.diff now started)) in
      let full = List.length f.current >= f.top_k in
      let floor_latency =
        if not full then neg_infinity
        else match List.rev f.current with o :: _ -> o.latency_us | [] -> neg_infinity
      in
      if latency_us > floor_latency then begin
        let events, incomplete = capture f.trace ~trace_id ~started in
        let o = { trace_id; latency_us; completed_at = now; events; incomplete } in
        let rec insert = function
          | [] -> [ o ]
          | x :: rest ->
            if o.latency_us > x.latency_us then o :: x :: rest else x :: insert rest
        in
        let inserted = insert f.current in
        f.current <-
          (if full then List.filteri (fun i _ -> i < f.top_k) inserted else inserted)
      end
    end

  let outliers f =
    List.sort
      (fun a b -> compare b.latency_us a.latency_us)
      (f.current @ f.retained)

  let pinned f = List.length f.current + List.length f.retained
  let top_k f = f.top_k

  let clear f =
    f.current <- [];
    f.retained <- [];
    f.windows <- 0;
    f.window_open <- Sim_time.zero
end
