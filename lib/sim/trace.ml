type event = { at : Sim_time.t; tag : string; detail : string }

type t = { engine : Engine.t; mutable enabled : bool; mutable events : event list }

let create engine = { engine; enabled = true; events = [] }
let enable t flag = t.enabled <- flag

let emit t ~tag detail =
  if t.enabled then
    t.events <- { at = Engine.now t.engine; tag; detail } :: t.events

let emitf t ~tag fmt = Format.kasprintf (fun s -> emit t ~tag s) fmt
let events t = List.rev t.events
let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (events t)
let count t ~tag = List.length (find t ~tag)
let clear t = t.events <- []

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%a] %-18s %s@." Sim_time.pp e.at e.tag e.detail)
    (events t)
