(* Structured causal trace.

   Events live in a bounded ring buffer: appending is O(1), and once the
   buffer is full the oldest events are overwritten (counted in [dropped]) so
   long chaos runs cannot accumulate unbounded history. Every event carries
   optional structure — a request-scoped trace id, a span id pairing
   [Span_start]/[Span_end] events, the emitting node, the cohort (key range),
   and an LSN rendered as a string — so tests and the timeline analyzer can
   select on fields instead of string-matching details, and the Chrome
   trace-event exporter can place events on per-node/per-cohort tracks. *)

type kind = Instant | Span_start | Span_end

type event = {
  at : Sim_time.t;
  tag : string;
  detail : string;
  kind : kind;
  trace_id : int;  (** -1 when not request-scoped *)
  span_id : int;  (** 0 for instants; pairs a start with its end *)
  node : int;  (** -1 when unknown *)
  cohort : int;  (** -1 when unknown *)
  lsn : string;  (** "" when not tied to a log position *)
}

type t = {
  engine : Engine.t;
  mutable enabled : bool;
  buf : event array;
  cap : int;
  mutable start : int;  (** index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
  mutable next_span : int;
}

let default_capacity = 65_536

let dummy =
  {
    at = Sim_time.zero;
    tag = "";
    detail = "";
    kind = Instant;
    trace_id = -1;
    span_id = 0;
    node = -1;
    cohort = -1;
    lsn = "";
  }

let create ?(capacity = default_capacity) engine =
  let cap = Stdlib.max 1 capacity in
  {
    engine;
    enabled = true;
    buf = Array.make cap dummy;
    cap;
    start = 0;
    len = 0;
    dropped = 0;
    next_span = 0;
  }

let enable t flag = t.enabled <- flag
let is_enabled t = t.enabled
let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped

let push t e =
  if t.enabled then begin
    if t.len = t.cap then begin
      t.buf.(t.start) <- e;
      t.start <- (t.start + 1) mod t.cap;
      t.dropped <- t.dropped + 1
    end
    else begin
      t.buf.((t.start + t.len) mod t.cap) <- e;
      t.len <- t.len + 1
    end
  end

let event t ?(kind = Instant) ?(trace_id = -1) ?(span_id = 0) ?(node = -1) ?(cohort = -1)
    ?(lsn = "") ~tag detail =
  push t { at = Engine.now t.engine; tag; detail; kind; trace_id; span_id; node; cohort; lsn }

let emit t ~tag detail = event t ~tag detail
let emitf t ~tag fmt = Format.kasprintf (fun s -> emit t ~tag s) fmt

let span_start t ?trace_id ?node ?cohort ?lsn ~tag detail =
  t.next_span <- t.next_span + 1;
  let id = t.next_span in
  event t ~kind:Span_start ?trace_id ~span_id:id ?node ?cohort ?lsn ~tag detail;
  id

let span_end t ~span ?trace_id ?node ?cohort ?lsn ~tag detail =
  event t ~kind:Span_end ?trace_id ~span_id:span ?node ?cohort ?lsn ~tag detail

(* (client, request id) pairs are unique, so a deterministic packing gives
   every client request the same trace id at every hop without threading new
   state through the message protocol. Request ids wrap into 24 bits; clients
   retire ids long before 16M in-flight requests, so collisions are moot. *)
let request_trace_id ~client ~request_id = (client lsl 24) lxor (request_id land 0xFFFFFF)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod t.cap)
  done

let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))
let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (events t)

let count t ~tag =
  let n = ref 0 in
  iter t (fun e -> if String.equal e.tag tag then incr n);
  !n

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0

let pp ppf t =
  iter t (fun e ->
      Format.fprintf ppf "[%a] %-18s %s@." Sim_time.pp e.at e.tag e.detail)
