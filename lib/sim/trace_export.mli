(** Chrome trace-event JSON export for {!Trace} — loadable in Perfetto
    ([ui.perfetto.dev]) or [chrome://tracing].

    Layout: one process per node ([pid] = node id; {!sim_pid} for events
    with no node), one track per cohort ([tid] = key range). Spans export as
    async begin/end pairs ("b"/"e") keyed by span id so a span may start and
    finish on different code paths; instants export as "i"; registry gauges
    export as counter tracks ("C"). *)

val sim_pid : int
(** Synthetic pid used for events not attributed to any node. *)

val to_json : ?registry:Metrics.Registry.t -> Trace.t -> Json.t
(** [{traceEvents; displayTimeUnit; otherData}]; pass [registry] to include
    sampled gauge series as counter tracks. ["net.transit"] spans
    additionally export as flow events ("s" on the sender's track, "f" with
    binding point "e" on the receiver's), drawing the cross-node causal
    arrows in the Perfetto UI. *)

val to_file : ?registry:Metrics.Registry.t -> Trace.t -> string -> unit

val outliers_to_json : Trace.Flight.t -> Json.t
(** One Perfetto-loadable trace holding every pinned outlier's events
    (slowest requests first), with transit flow arrows, plus an
    [otherData.outliers] summary table: [{trace_id, latency_us,
    completed_at_us, events, incomplete}] per outlier. *)

val outliers_to_file : Trace.Flight.t -> string -> unit
