(** Samplable latency/service-time distributions.

    All parameters and samples are in microseconds (as floats); negative
    samples are clamped to zero. *)

type t =
  | Constant of float
  | Uniform of float * float  (** inclusive low, exclusive high *)
  | Exponential of float  (** mean *)
  | Shifted_exponential of { base : float; mean_extra : float }
      (** [base] plus an exponential tail — typical of disk/network service. *)
  | Normal of { mean : float; stddev : float }
  | Mixture of (float * t) list
      (** Weighted mixture; weights need not sum to one. *)

val sample : t -> Rng.t -> float

val sample_span : t -> Rng.t -> Sim_time.span

val mean : t -> float
(** Analytic mean of the distribution. *)

val scale : t -> float -> t
(** [scale d k] multiplies every sample (and the mean) by [k]. *)

val pp : Format.formatter -> t -> unit
