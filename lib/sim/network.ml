type 'msg envelope = {
  src : int;
  dst : int;
  size : int;
  sent_at : Sim_time.t;
  payload : 'msg;
}

type drop_cause = Down | Partitioned | Lost

type faults = {
  loss : float;
  duplicate : float;
  jitter : Distribution.t option;
}

type 'msg endpoint = { mutable handler : 'msg envelope -> unit; mutable up : bool; nic : Resource.t }

(* One group partition, represented as the two (sorted) member lists plus
   membership tables. A nemesis toggle at n nodes used to rebuild the blocked
   refcount table with O(|a|·|b|) hashtable ops per flip; a cut is O(|a|+|b|)
   to engage and O(1) per reachability probe, and overlapping cuts compose
   the same way overlapping refcounts did. *)
type cut = {
  ga : int list;
  gb : int list;
  in_a : (int, unit) Hashtbl.t;
  in_b : (int, unit) Hashtbl.t;
}

type 'msg t = {
  engine : Engine.t;
  latency : Distribution.t;
  bandwidth_bps : int;
  rng : Rng.t;
  mutable endpoints : 'msg endpoint option array;  (* indexed by node id *)
  blocked : (int * int, int) Hashtbl.t;  (* directed (src, dst) -> refcount *)
  mutable cuts : cut list;  (* active group partitions *)
  link_faults : (int * int, faults) Hashtbl.t;  (* directed overrides *)
  mutable default_faults : faults option;
  mutable trace : Trace.t option;
  mutable delivered : int;
  mutable dropped_down : int;
  mutable dropped_partitioned : int;
  mutable dropped_lost : int;
  mutable duplicated : int;
  mutable bytes : int;
}

let default_latency = Distribution.Shifted_exponential { base = 80.0; mean_extra = 30.0 }

let create engine ?(latency = default_latency) ?(bandwidth_bps = 1_000_000_000) () =
  {
    engine;
    latency;
    bandwidth_bps;
    rng = Rng.split (Engine.rng engine);
    endpoints = Array.make 64 None;
    blocked = Hashtbl.create 16;
    cuts = [];
    link_faults = Hashtbl.create 16;
    default_faults = None;
    trace = None;
    delivered = 0;
    dropped_down = 0;
    dropped_partitioned = 0;
    dropped_lost = 0;
    duplicated = 0;
    bytes = 0;
  }

let engine t = t.engine
let attach_trace t trace = t.trace <- Some trace

(* Skip the formatting work entirely when no trace is attached. *)
let emit t fmt =
  match t.trace with
  | Some tr when Trace.is_enabled tr ->
    Printf.ksprintf (fun s -> Trace.emit tr ~tag:"net" s) fmt
  | _ -> Printf.ikfprintf ignore () fmt

(* Endpoints live in an array indexed by node id (node ids are small dense
   ints, client ids a dense block above them): the per-message endpoint
   probes on the send and deliver paths are plain loads instead of hashtable
   lookups. *)
let ensure_capacity t node =
  if node >= Array.length t.endpoints then begin
    let cap = ref (2 * Array.length t.endpoints) in
    while node >= !cap do
      cap := 2 * !cap
    done;
    let eps = Array.make !cap None in
    Array.blit t.endpoints 0 eps 0 (Array.length t.endpoints);
    t.endpoints <- eps
  end

let endpoint t node =
  if node < 0 then invalid_arg "Network.endpoint: negative node id";
  ensure_capacity t node;
  match Array.unsafe_get t.endpoints node with
  | Some e -> e
  | None ->
    let e =
      {
        handler = (fun _ -> ());
        up = false;
        nic = Resource.create t.engine ~name:(Printf.sprintf "nic-%d" node) ();
      }
    in
    t.endpoints.(node) <- Some e;
    e

let register t ~node handler =
  let e = endpoint t node in
  e.handler <- handler;
  e.up <- true

let set_up t node up = (endpoint t node).up <- up
let is_up t node = (endpoint t node).up

(* Partitions are directed and reference-counted so overlapping fault
   schedules (two nemesis toggles covering the same link) compose: a link
   stays blocked until every block on it is lifted. *)
let block t pair =
  Hashtbl.replace t.blocked pair
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.blocked pair))

let unblock t pair =
  match Hashtbl.find_opt t.blocked pair with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove t.blocked pair
  | Some n -> Hashtbl.replace t.blocked pair (n - 1)

let severed_by cut src dst =
  (Hashtbl.mem cut.in_a src && Hashtbl.mem cut.in_b dst)
  || (Hashtbl.mem cut.in_b src && Hashtbl.mem cut.in_a dst)

let reachable t src dst =
  (* Fast path first: probing [blocked] costs a tuple allocation plus a
     polymorphic hash, which the fault-free common case should not pay. *)
  (Hashtbl.length t.blocked = 0 || not (Hashtbl.mem t.blocked (src, dst)))
  && (match t.cuts with
     | [] -> true
     | cuts -> src = dst || not (List.exists (fun c -> severed_by c src dst) cuts))

let count_drop t = function
  | Down -> t.dropped_down <- t.dropped_down + 1
  | Partitioned -> t.dropped_partitioned <- t.dropped_partitioned + 1
  | Lost -> t.dropped_lost <- t.dropped_lost + 1

let transfer_span t size =
  Sim_time.of_us_f (float_of_int (size * 8) /. float_of_int t.bandwidth_bps *. 1e6)

let faults_for t src dst =
  if Hashtbl.length t.link_faults = 0 then t.default_faults
  else
    match Hashtbl.find_opt t.link_faults (src, dst) with
    | Some f -> Some f
    | None -> t.default_faults

(* Transit spans make the trace a causal graph: the span starts on the
   sender's track (node = src) when the message is handed to the NIC and
   ends on the receiver's track (node = dst) just before the handler runs,
   so any receiver span causally follows the transit end. Only messages
   carrying a request-scoped [trace_id] are instrumented; opening a span
   never schedules events or draws randomness, so delivery order and RNG
   streams are identical with tracing on or off. *)
let start_transit t ~trace_id ~src =
  match t.trace with
  | Some tr when trace_id >= 0 && Trace.is_enabled tr ->
    Trace.span_start tr ~trace_id ~node:src ~tag:"net.transit" ""
  | _ -> 0

let end_transit t ~span ~trace_id ~dst outcome =
  if span <> 0 then
    match t.trace with
    | Some tr -> Trace.span_end tr ~span ~trace_id ~node:dst ~tag:"net.transit" outcome
    | None -> ()

let deliver t ?(span = 0) ?(trace_id = -1) env =
  match
    if env.dst >= 0 && env.dst < Array.length t.endpoints then
      Array.unsafe_get t.endpoints env.dst
    else None
  with
  | None ->
    end_transit t ~span ~trace_id ~dst:env.dst "down";
    count_drop t Down
  | Some e ->
    if not e.up then begin
      end_transit t ~span ~trace_id ~dst:env.dst "down";
      count_drop t Down
    end
    else if not (reachable t env.src env.dst) then begin
      end_transit t ~span ~trace_id ~dst:env.dst "partitioned";
      count_drop t Partitioned
    end
    else begin
      end_transit t ~span ~trace_id ~dst:env.dst "delivered";
      t.delivered <- t.delivered + 1;
      e.handler env
    end

let send t ~src ~dst ?(size = 128) ?(trace_id = -1) payload =
  let sender = endpoint t src in
  if not sender.up then count_drop t Down
  else begin
    let env = { src; dst; size; sent_at = Engine.now t.engine; payload } in
    t.bytes <- t.bytes + size;
    if src = dst then begin
      let span = start_transit t ~trace_id ~src in
      ignore
        (Engine.schedule t.engine ~after:(Sim_time.us 5) (fun () ->
             deliver t ~span ~trace_id env))
    end
    else begin
      let faults = faults_for t src dst in
      (* Loss is a link property: the message is dropped in flight, after the
         sender paid for it (the sender cannot tell a lost message from a
         slow one, which is what forces retry/dedup machinery upstream). *)
      match faults with
      | Some f when f.loss > 0.0 && Rng.float t.rng 1.0 < f.loss -> count_drop t Lost
      | _ ->
        (* The NIC serialises the transfer; propagation happens afterwards.
           The NIC queue is analytic ([Resource.reserve] returns the finish
           time directly), so transfer + propagation collapse into a single
           scheduled delivery — one heap entry and one closure per message
           instead of two of each. Latency/jitter/duplication are sampled at
           send time; with a FIFO NIC the sample order per link is the same
           as it would be at transfer completion. *)
        let nic_done = Resource.reserve sender.nic ~service:(transfer_span t size) in
        let deliver_once span trace_id =
          let latency = Distribution.sample_span t.latency t.rng in
          let latency =
            match faults with
            | Some { jitter = Some j; _ } ->
              Sim_time.span_add latency (Distribution.sample_span j t.rng)
            | _ -> latency
          in
          ignore
            (Engine.schedule_at t.engine (Sim_time.add nic_done latency) (fun () ->
                 deliver t ~span ~trace_id env))
        in
        (* The span is opened after the loss draw (a lost message leaves no
           transit span — its absence is the signal) and rides only the
           primary copy; a duplicate takes its own path uninstrumented so the
           span is closed exactly once. *)
        deliver_once (start_transit t ~trace_id ~src) trace_id;
        (match faults with
        | Some f when f.duplicate > 0.0 && Rng.float t.rng 1.0 < f.duplicate ->
          (* A duplicated message takes its own independent path. *)
          t.duplicated <- t.duplicated + 1;
          deliver_once 0 (-1)
        | _ -> ())
    end
  end

let partition_oneway t ~src ~dst =
  if src <> dst then begin
    block t (src, dst);
    emit t "partition-oneway %d->%d" src dst
  end

let heal_oneway t ~src ~dst =
  unblock t (src, dst);
  emit t "heal-oneway %d->%d" src dst

let partition_pair t a b =
  if a <> b then begin
    block t (a, b);
    block t (b, a);
    emit t "partition-pair %d<->%d" a b
  end

let heal_pair t a b =
  unblock t (a, b);
  unblock t (b, a);
  emit t "heal-pair %d<->%d" a b

let member_table group =
  let h = Hashtbl.create (2 * List.length group) in
  List.iter (fun n -> Hashtbl.replace h n ()) group;
  h

let make_cut group_a group_b =
  {
    ga = List.sort_uniq compare group_a;
    gb = List.sort_uniq compare group_b;
    in_a = member_table group_a;
    in_b = member_table group_b;
  }

let same_cut c ga gb = (c.ga = ga && c.gb = gb) || (c.ga = gb && c.gb = ga)

let partition t group_a group_b =
  t.cuts <- make_cut group_a group_b :: t.cuts;
  emit t "partition [%s]|[%s]"
    (String.concat "," (List.map string_of_int group_a))
    (String.concat "," (List.map string_of_int group_b))

let unpartition t group_a group_b =
  let ga = List.sort_uniq compare group_a and gb = List.sort_uniq compare group_b in
  (* Lift one matching cut; overlapping cuts over the same groups compose
     like the refcounts they replaced. *)
  let rec drop_first = function
    | [] -> []
    | c :: rest -> if same_cut c ga gb then rest else c :: drop_first rest
  in
  t.cuts <- drop_first t.cuts;
  emit t "unpartition [%s]|[%s]"
    (String.concat "," (List.map string_of_int group_a))
    (String.concat "," (List.map string_of_int group_b))

let heal t =
  Hashtbl.reset t.blocked;
  t.cuts <- [];
  emit t "heal-all"

let set_link_faults t ~src ~dst ?(loss = 0.0) ?(duplicate = 0.0) ?jitter () =
  Hashtbl.replace t.link_faults (src, dst) { loss; duplicate; jitter };
  emit t "link-faults %d->%d loss=%.3f dup=%.3f" src dst loss duplicate

let clear_link_faults t ~src ~dst =
  Hashtbl.remove t.link_faults (src, dst);
  emit t "link-faults-clear %d->%d" src dst

let set_default_faults t ?(loss = 0.0) ?(duplicate = 0.0) ?jitter () =
  t.default_faults <- Some { loss; duplicate; jitter };
  emit t "default-faults loss=%.3f dup=%.3f" loss duplicate

let clear_default_faults t =
  t.default_faults <- None;
  emit t "default-faults-clear"

let messages_delivered t = t.delivered
let messages_dropped t = t.dropped_down + t.dropped_partitioned + t.dropped_lost

let dropped_by_cause t = function
  | Down -> t.dropped_down
  | Partitioned -> t.dropped_partitioned
  | Lost -> t.dropped_lost

let messages_duplicated t = t.duplicated
let bytes_sent t = t.bytes

let stats t : Metrics.net_stats =
  {
    Metrics.net_delivered = t.delivered;
    net_dropped_down = t.dropped_down;
    net_dropped_partitioned = t.dropped_partitioned;
    net_dropped_lost = t.dropped_lost;
    net_duplicated = t.duplicated;
    net_bytes = t.bytes;
  }
