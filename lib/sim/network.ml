type 'msg envelope = {
  src : int;
  dst : int;
  size : int;
  sent_at : Sim_time.t;
  payload : 'msg;
}

type 'msg endpoint = { mutable handler : 'msg envelope -> unit; mutable up : bool; nic : Resource.t }

type 'msg t = {
  engine : Engine.t;
  latency : Distribution.t;
  bandwidth_bps : int;
  rng : Rng.t;
  endpoints : (int, 'msg endpoint) Hashtbl.t;
  blocked : (int * int, unit) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

let default_latency = Distribution.Shifted_exponential { base = 80.0; mean_extra = 30.0 }

let create engine ?(latency = default_latency) ?(bandwidth_bps = 1_000_000_000) () =
  {
    engine;
    latency;
    bandwidth_bps;
    rng = Rng.split (Engine.rng engine);
    endpoints = Hashtbl.create 64;
    blocked = Hashtbl.create 16;
    delivered = 0;
    dropped = 0;
    bytes = 0;
  }

let engine t = t.engine

let endpoint t node =
  match Hashtbl.find_opt t.endpoints node with
  | Some e -> e
  | None ->
    let e =
      {
        handler = (fun _ -> ());
        up = false;
        nic = Resource.create t.engine ~name:(Printf.sprintf "nic-%d" node) ();
      }
    in
    Hashtbl.replace t.endpoints node e;
    e

let register t ~node handler =
  let e = endpoint t node in
  e.handler <- handler;
  e.up <- true

let set_up t node up = (endpoint t node).up <- up
let is_up t node = (endpoint t node).up

let reachable t src dst =
  (not (Hashtbl.mem t.blocked (src, dst))) && not (Hashtbl.mem t.blocked (dst, src))

let transfer_span t size =
  Sim_time.of_us_f (float_of_int (size * 8) /. float_of_int t.bandwidth_bps *. 1e6)

let deliver t env =
  match Hashtbl.find_opt t.endpoints env.dst with
  | Some e when e.up && reachable t env.src env.dst ->
    t.delivered <- t.delivered + 1;
    e.handler env
  | _ -> t.dropped <- t.dropped + 1

let send t ~src ~dst ?(size = 128) payload =
  let sender = endpoint t src in
  if not sender.up then t.dropped <- t.dropped + 1
  else begin
    let env = { src; dst; size; sent_at = Engine.now t.engine; payload } in
    t.bytes <- t.bytes + size;
    if src = dst then
      ignore (Engine.schedule t.engine ~after:(Sim_time.us 5) (fun () -> deliver t env))
    else
      (* The NIC serialises the transfer; propagation happens afterwards. *)
      Resource.submit sender.nic ~service:(transfer_span t size) (fun () ->
          let latency = Distribution.sample_span t.latency t.rng in
          ignore (Engine.schedule t.engine ~after:latency (fun () -> deliver t env)))
  end

let partition t group_a group_b =
  List.iter
    (fun a -> List.iter (fun b -> if a <> b then Hashtbl.replace t.blocked (a, b) ()) group_b)
    group_a

let heal t = Hashtbl.reset t.blocked
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let bytes_sent t = t.bytes
