type 'msg envelope = {
  src : int;
  dst : int;
  size : int;
  sent_at : Sim_time.t;
  payload : 'msg;
}

type drop_cause = Down | Partitioned | Lost

type faults = {
  loss : float;
  duplicate : float;
  jitter : Distribution.t option;
}

type 'msg endpoint = { mutable handler : 'msg envelope -> unit; mutable up : bool; nic : Resource.t }

type 'msg t = {
  engine : Engine.t;
  latency : Distribution.t;
  bandwidth_bps : int;
  rng : Rng.t;
  endpoints : (int, 'msg endpoint) Hashtbl.t;
  blocked : (int * int, int) Hashtbl.t;  (* directed (src, dst) -> refcount *)
  link_faults : (int * int, faults) Hashtbl.t;  (* directed overrides *)
  mutable default_faults : faults option;
  mutable trace : Trace.t option;
  mutable delivered : int;
  mutable dropped_down : int;
  mutable dropped_partitioned : int;
  mutable dropped_lost : int;
  mutable duplicated : int;
  mutable bytes : int;
}

let default_latency = Distribution.Shifted_exponential { base = 80.0; mean_extra = 30.0 }

let create engine ?(latency = default_latency) ?(bandwidth_bps = 1_000_000_000) () =
  {
    engine;
    latency;
    bandwidth_bps;
    rng = Rng.split (Engine.rng engine);
    endpoints = Hashtbl.create 64;
    blocked = Hashtbl.create 16;
    link_faults = Hashtbl.create 16;
    default_faults = None;
    trace = None;
    delivered = 0;
    dropped_down = 0;
    dropped_partitioned = 0;
    dropped_lost = 0;
    duplicated = 0;
    bytes = 0;
  }

let engine t = t.engine
let attach_trace t trace = t.trace <- Some trace

let emit t fmt =
  Printf.ksprintf
    (fun s -> match t.trace with Some tr -> Trace.emit tr ~tag:"net" s | None -> ())
    fmt

let endpoint t node =
  match Hashtbl.find_opt t.endpoints node with
  | Some e -> e
  | None ->
    let e =
      {
        handler = (fun _ -> ());
        up = false;
        nic = Resource.create t.engine ~name:(Printf.sprintf "nic-%d" node) ();
      }
    in
    Hashtbl.replace t.endpoints node e;
    e

let register t ~node handler =
  let e = endpoint t node in
  e.handler <- handler;
  e.up <- true

let set_up t node up = (endpoint t node).up <- up
let is_up t node = (endpoint t node).up

(* Partitions are directed and reference-counted so overlapping fault
   schedules (two nemesis toggles covering the same link) compose: a link
   stays blocked until every block on it is lifted. *)
let block t pair =
  Hashtbl.replace t.blocked pair
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.blocked pair))

let unblock t pair =
  match Hashtbl.find_opt t.blocked pair with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove t.blocked pair
  | Some n -> Hashtbl.replace t.blocked pair (n - 1)

let reachable t src dst = not (Hashtbl.mem t.blocked (src, dst))

let count_drop t = function
  | Down -> t.dropped_down <- t.dropped_down + 1
  | Partitioned -> t.dropped_partitioned <- t.dropped_partitioned + 1
  | Lost -> t.dropped_lost <- t.dropped_lost + 1

let transfer_span t size =
  Sim_time.of_us_f (float_of_int (size * 8) /. float_of_int t.bandwidth_bps *. 1e6)

let faults_for t src dst =
  match Hashtbl.find_opt t.link_faults (src, dst) with
  | Some f -> Some f
  | None -> t.default_faults

let deliver t env =
  match Hashtbl.find_opt t.endpoints env.dst with
  | None -> count_drop t Down
  | Some e ->
    if not e.up then count_drop t Down
    else if not (reachable t env.src env.dst) then count_drop t Partitioned
    else begin
      t.delivered <- t.delivered + 1;
      e.handler env
    end

let send t ~src ~dst ?(size = 128) payload =
  let sender = endpoint t src in
  if not sender.up then count_drop t Down
  else begin
    let env = { src; dst; size; sent_at = Engine.now t.engine; payload } in
    t.bytes <- t.bytes + size;
    if src = dst then
      ignore (Engine.schedule t.engine ~after:(Sim_time.us 5) (fun () -> deliver t env))
    else begin
      let faults = faults_for t src dst in
      (* Loss is a link property: the message is dropped in flight, after the
         sender paid for it (the sender cannot tell a lost message from a
         slow one, which is what forces retry/dedup machinery upstream). *)
      match faults with
      | Some f when f.loss > 0.0 && Rng.float t.rng 1.0 < f.loss -> count_drop t Lost
      | _ ->
        (* The NIC serialises the transfer; propagation happens afterwards. *)
        Resource.submit sender.nic ~service:(transfer_span t size) (fun () ->
            let deliver_once () =
              let latency = Distribution.sample_span t.latency t.rng in
              let latency =
                match faults with
                | Some { jitter = Some j; _ } ->
                  Sim_time.span_add latency (Distribution.sample_span j t.rng)
                | _ -> latency
              in
              ignore (Engine.schedule t.engine ~after:latency (fun () -> deliver t env))
            in
            deliver_once ();
            match faults with
            | Some f when f.duplicate > 0.0 && Rng.float t.rng 1.0 < f.duplicate ->
              (* A duplicated message takes its own independent path. *)
              t.duplicated <- t.duplicated + 1;
              deliver_once ()
            | _ -> ())
    end
  end

let partition_oneway t ~src ~dst =
  if src <> dst then begin
    block t (src, dst);
    emit t "partition-oneway %d->%d" src dst
  end

let heal_oneway t ~src ~dst =
  unblock t (src, dst);
  emit t "heal-oneway %d->%d" src dst

let partition_pair t a b =
  if a <> b then begin
    block t (a, b);
    block t (b, a);
    emit t "partition-pair %d<->%d" a b
  end

let heal_pair t a b =
  unblock t (a, b);
  unblock t (b, a);
  emit t "heal-pair %d<->%d" a b

let iter_pairs group_a group_b f =
  List.iter (fun a -> List.iter (fun b -> if a <> b then f a b) group_b) group_a

let partition t group_a group_b =
  iter_pairs group_a group_b (fun a b ->
      block t (a, b);
      block t (b, a));
  emit t "partition [%s]|[%s]"
    (String.concat "," (List.map string_of_int group_a))
    (String.concat "," (List.map string_of_int group_b))

let unpartition t group_a group_b =
  iter_pairs group_a group_b (fun a b ->
      unblock t (a, b);
      unblock t (b, a));
  emit t "unpartition [%s]|[%s]"
    (String.concat "," (List.map string_of_int group_a))
    (String.concat "," (List.map string_of_int group_b))

let heal t =
  Hashtbl.reset t.blocked;
  emit t "heal-all"

let set_link_faults t ~src ~dst ?(loss = 0.0) ?(duplicate = 0.0) ?jitter () =
  Hashtbl.replace t.link_faults (src, dst) { loss; duplicate; jitter };
  emit t "link-faults %d->%d loss=%.3f dup=%.3f" src dst loss duplicate

let clear_link_faults t ~src ~dst =
  Hashtbl.remove t.link_faults (src, dst);
  emit t "link-faults-clear %d->%d" src dst

let set_default_faults t ?(loss = 0.0) ?(duplicate = 0.0) ?jitter () =
  t.default_faults <- Some { loss; duplicate; jitter };
  emit t "default-faults loss=%.3f dup=%.3f" loss duplicate

let clear_default_faults t =
  t.default_faults <- None;
  emit t "default-faults-clear"

let messages_delivered t = t.delivered
let messages_dropped t = t.dropped_down + t.dropped_partitioned + t.dropped_lost

let dropped_by_cause t = function
  | Down -> t.dropped_down
  | Partitioned -> t.dropped_partitioned
  | Lost -> t.dropped_lost

let messages_duplicated t = t.duplicated
let bytes_sent t = t.bytes

let stats t : Metrics.net_stats =
  {
    Metrics.net_delivered = t.delivered;
    net_dropped_down = t.dropped_down;
    net_dropped_partitioned = t.dropped_partitioned;
    net_dropped_lost = t.dropped_lost;
    net_duplicated = t.duplicated;
    net_bytes = t.bytes;
  }
