(** Delta-debugging shrinker for fault schedules.

    A failing 20-seed chaos run hands the developer a haystack: dozens of
    injections, most irrelevant. [ddmin] reduces a failing
    {!Failure.schedule} to a locally minimal one — removing any single
    remaining injection no longer reproduces the violation — by re-running
    the deterministic simulation against candidate sub-schedules
    (Zeller-Hildebrandt ddmin, removal-only, followed by a greedy
    single-removal sweep).

    The shrinker is oblivious to what "fails" means: [replay] builds a
    fresh simulation, applies the candidate with {!Failure.apply}, and
    returns whether the original invariant violation still occurs. Because
    replays are seed-deterministic, the oracle is exact — no flaky
    shrinking. *)

type stats = {
  replays : int;  (** candidate schedules executed *)
  reproduced : int;  (** candidates that still failed *)
  initial_injections : int;
  final_injections : int;
}

val pp_stats : Format.formatter -> stats -> unit

val ddmin :
  ?max_replays:int ->
  replay:(Failure.schedule -> bool) ->
  Failure.schedule ->
  Failure.schedule * stats
(** [ddmin ~replay schedule] assumes [replay schedule = true] (the caller
    has already seen it fail) and returns a minimal failing sub-schedule.
    [max_replays] (default 2000) bounds total re-executions; on exhaustion
    the best schedule found so far is returned. Order within the schedule
    is preserved — only removals are attempted — and the result is never
    empty: a violation that needs no injection at all is not a fault-
    schedule bug, so the floor is one injection. *)
