type kind = Magnetic | Ssd | Memory

type t = { kind : kind; force : Distribution.t; read : Distribution.t; bandwidth : float }

(* Calibration: the paper's magnetic-log write latency sits at ~40 ms under
   light load because the primitive log manager triggers file-system metadata
   seeks (§C); an SSD force is ~0.25 ms; a memory "force" is a bounds-checked
   append. Values are means of shifted-exponential service times. *)
let create kind =
  let force, read, bandwidth =
    match kind with
    | Magnetic ->
      ( Distribution.Shifted_exponential { base = 17_000.0; mean_extra = 2_000.0 },
        Distribution.Shifted_exponential { base = 6_000.0; mean_extra = 2_000.0 },
        80e6 )
    | Ssd ->
      ( Distribution.Shifted_exponential { base = 220.0; mean_extra = 60.0 },
        Distribution.Shifted_exponential { base = 120.0; mean_extra = 40.0 },
        250e6 )
    | Memory ->
      ( Distribution.Shifted_exponential { base = 25.0; mean_extra = 10.0 },
        Distribution.Constant 5.0,
        10e9 )
  in
  { kind; force; read; bandwidth }

let kind t = t.kind
let force_service t = t.force
let read_service t = t.read
let write_bandwidth_bytes_per_sec t = t.bandwidth

let pp_kind ppf = function
  | Magnetic -> Format.pp_print_string ppf "magnetic"
  | Ssd -> Format.pp_print_string ppf "ssd"
  | Memory -> Format.pp_print_string ppf "memory"
