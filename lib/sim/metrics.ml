module Histogram = struct
  type t = {
    name : string;
    mutable samples : float array;  (** insertion order, always *)
    mutable len : int;
    mutable sorted_cache : float array option;
        (** sorted snapshot of [samples.(0..len-1)]; invalidated on record so
            percentile/min/max sort once per batch of records, not per call,
            and never scramble the insertion-ordered samples *)
  }

  let create ?(name = "") () = { name; samples = [||]; len = 0; sorted_cache = None }
  let name t = t.name

  let record t v =
    if t.len = Array.length t.samples then begin
      let cap = Stdlib.max 1024 (2 * Array.length t.samples) in
      let samples = Array.make cap 0.0 in
      Array.blit t.samples 0 samples 0 t.len;
      t.samples <- samples
    end;
    t.samples.(t.len) <- v;
    t.len <- t.len + 1;
    t.sorted_cache <- None

  let record_span t s = record t (float_of_int (Sim_time.to_us s))
  let count t = t.len

  let mean t =
    if t.len = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.len - 1 do
        sum := !sum +. t.samples.(i)
      done;
      !sum /. float_of_int t.len
    end

  (* Monomorphic in-place quicksort: [Array.sort Float.compare] pays a
     closure call plus two float boxings per comparison, which dominates
     stats extraction on multi-million-sample histograms. Samples are finite
     latencies (never NaN), so plain [<] is a total order here. *)
  let sort_floats (a : float array) =
    let swap i j =
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    in
    let insertion lo hi =
      for i = lo + 1 to hi do
        let v = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > v do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- v
      done
    in
    let rec qsort lo hi =
      if hi - lo < 16 then insertion lo hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if a.(mid) < a.(lo) then swap mid lo;
        if a.(hi) < a.(lo) then swap hi lo;
        if a.(hi) < a.(mid) then swap hi mid;
        let pivot = a.(mid) in
        let i = ref lo and j = ref hi in
        while !i <= !j do
          while a.(!i) < pivot do
            incr i
          done;
          while a.(!j) > pivot do
            decr j
          done;
          if !i <= !j then begin
            swap !i !j;
            incr i;
            decr j
          end
        done;
        qsort lo !j;
        qsort !i hi
      end
    in
    if Array.length a > 1 then qsort 0 (Array.length a - 1)

  (* LSD radix sort on the IEEE-754 bit patterns. Non-negative finite floats
     order identically to their bit patterns, and a positive pattern fits the
     63-bit native int exactly, so byte-wise counting passes sort without any
     comparisons. Latency samples are integral microseconds, which leaves the
     low mantissa bytes constant — those passes are detected (single occupied
     bucket) and skipped, so a multi-million-sample histogram sorts in ~4
     linear passes. Falls back to quicksort if any sample is negative. *)
  let radix_sort (a : float array) =
    let n = Array.length a in
    let neg = ref false in
    for i = 0 to n - 1 do
      if Array.unsafe_get a i < 0.0 then neg := true
    done;
    if !neg then sort_floats a
    else begin
      let keys = Array.init n (fun i -> Int64.to_int (Int64.bits_of_float a.(i))) in
      let tmp = Array.make n 0 in
      let counts = Array.make 256 0 in
      let src = ref keys and dst = ref tmp in
      for pass = 0 to 7 do
        let shift = 8 * pass in
        let s = !src in
        Array.fill counts 0 256 0;
        for i = 0 to n - 1 do
          let b = (Array.unsafe_get s i lsr shift) land 0xff in
          Array.unsafe_set counts b (Array.unsafe_get counts b + 1)
        done;
        let all_same_byte = counts.((Array.unsafe_get s 0 lsr shift) land 0xff) = n in
        if not all_same_byte then begin
          let acc = ref 0 in
          for b = 0 to 255 do
            let c = Array.unsafe_get counts b in
            Array.unsafe_set counts b !acc;
            acc := !acc + c
          done;
          let d = !dst in
          for i = 0 to n - 1 do
            let k = Array.unsafe_get s i in
            let b = (k lsr shift) land 0xff in
            let pos = Array.unsafe_get counts b in
            Array.unsafe_set counts b (pos + 1);
            Array.unsafe_set d pos k
          done;
          let t = !src in
          src := !dst;
          dst := t
        end
      done;
      let s = !src in
      (* Mask off the sign-extension [Int64.of_int] performs: the original
         pattern had bit 63 clear. *)
      for i = 0 to n - 1 do
        a.(i) <-
          Int64.float_of_bits
            (Int64.logand (Int64.of_int (Array.unsafe_get s i)) 0x7FFF_FFFF_FFFF_FFFFL)
      done
    end

  let sorted t =
    match t.sorted_cache with
    | Some a -> a
    | None ->
        let a = Array.sub t.samples 0 t.len in
        if t.len > 1 then radix_sort a;
        t.sorted_cache <- Some a;
        a

  let percentile t p =
    if t.len = 0 then 0.0
    else begin
      let a = sorted t in
      let rank = int_of_float (ceil (p *. float_of_int t.len)) - 1 in
      let rank = Stdlib.max 0 (Stdlib.min (t.len - 1) rank) in
      a.(rank)
    end

  let min t = if t.len = 0 then 0.0 else (sorted t).(0)
  let max t = if t.len = 0 then 0.0 else (sorted t).(t.len - 1)

  let stddev t =
    if t.len < 2 then 0.0
    else begin
      let m = mean t in
      let sum = ref 0.0 in
      for i = 0 to t.len - 1 do
        let d = t.samples.(i) -. m in
        sum := !sum +. (d *. d)
      done;
      sqrt (!sum /. float_of_int t.len)
    end

  let clear t =
    t.len <- 0;
    t.sorted_cache <- None

  let samples t = Array.to_list (Array.sub t.samples 0 t.len)

  let merge a b =
    let t = create ~name:a.name () in
    for i = 0 to a.len - 1 do
      record t a.samples.(i)
    done;
    for i = 0 to b.len - 1 do
      record t b.samples.(i)
    done;
    t

  let pp_summary ppf t =
    Format.fprintf ppf "%s: n=%d mean=%.2fms p50=%.2fms p99=%.2fms" t.name (count t)
      (mean t /. 1e3)
      (percentile t 0.5 /. 1e3)
      (percentile t 0.99 /. 1e3)

  let json_summary t =
    Json.Obj
      [
        ("count", Json.Int (count t));
        ("mean_us", Json.Float (mean t));
        ("p50_us", Json.Float (percentile t 0.5));
        ("p95_us", Json.Float (percentile t 0.95));
        ("p99_us", Json.Float (percentile t 0.99));
        ("p999_us", Json.Float (percentile t 0.999));
        ("max_us", Json.Float (max t));
      ]

  let sum t =
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      s := !s +. t.samples.(i)
    done;
    !s
end

(* Per-phase breakdown of the leader-side write path (Figure 4): CPU queue
   wait, local log force, replication (propose -> in-order quorum), and the
   commit apply + reply step. All samples are microseconds of simulated
   time, recorded by the cohort as each write moves through the pipeline. *)
module Write_phases = struct
  type t = {
    queue : Histogram.t;  (** client arrival at leader -> CPU grant *)
    force : Histogram.t;  (** log append -> local force durable *)
    replication : Histogram.t;  (** log append -> in-order quorum (commit eligible) *)
    apply : Histogram.t;  (** commit eligible -> applied and reply issued *)
    transit : Histogram.t;  (** measured one-way network time per replication message *)
  }

  let create () =
    {
      queue = Histogram.create ~name:"queue" ();
      force = Histogram.create ~name:"force" ();
      replication = Histogram.create ~name:"replication" ();
      apply = Histogram.create ~name:"apply" ();
      transit = Histogram.create ~name:"transit" ();
    }

  let merge a b =
    {
      queue = Histogram.merge a.queue b.queue;
      force = Histogram.merge a.force b.force;
      replication = Histogram.merge a.replication b.replication;
      apply = Histogram.merge a.apply b.apply;
      transit = Histogram.merge a.transit b.transit;
    }

  let clear t =
    Histogram.clear t.queue;
    Histogram.clear t.force;
    Histogram.clear t.replication;
    Histogram.clear t.apply;
    Histogram.clear t.transit

  let count t = Histogram.count t.replication

  let to_json t =
    Json.Obj
      [
        ("queue", Histogram.json_summary t.queue);
        ("force", Histogram.json_summary t.force);
        ("replication", Histogram.json_summary t.replication);
        ("apply", Histogram.json_summary t.apply);
        ("transit", Histogram.json_summary t.transit);
      ]

  let pp ppf t =
    Format.fprintf ppf
      "write phases (mean ms): queue %.2f, force %.2f, replication %.2f (transit %.2f), apply \
       %.2f (%d writes)"
      (Histogram.mean t.queue /. 1e3)
      (Histogram.mean t.force /. 1e3)
      (Histogram.mean t.replication /. 1e3)
      (Histogram.mean t.transit /. 1e3)
      (Histogram.mean t.apply /. 1e3)
      (count t)
end

(* Per-segment critical-path attribution: one histogram per named segment
   (leader queue, force, transit, ...), fed by [Critpath.record]. Kept
   string-keyed so this module does not depend on the segment enumeration —
   the analyzer owns the names, the registry owns the numbers. *)
module Attribution = struct
  type t = {
    mutable segments : (string * Histogram.t) list;  (** registration order *)
    total : Histogram.t;
  }

  let create () = { segments = []; total = Histogram.create ~name:"total" () }

  let histogram t name =
    match List.assoc_opt name t.segments with
    | Some h -> h
    | None ->
      let h = Histogram.create ~name () in
      t.segments <- t.segments @ [ (name, h) ];
      h

  let record t ~segment us = Histogram.record (histogram t segment) us
  let record_total t us = Histogram.record t.total us
  let count t = Histogram.count t.total
  let segments t = t.segments
  let total t = t.total

  (* The segment owning the largest share of total attributed time. *)
  let dominant t =
    match t.segments with
    | [] -> None
    | segs ->
      let name, sum =
        List.fold_left
          (fun (bn, bs) (name, h) ->
            let s = Histogram.sum h in
            if s > bs then (name, s) else (bn, bs))
          ("", neg_infinity) segs
      in
      if sum > 0.0 then Some name else None

  let to_json t =
    let grand = Histogram.sum t.total in
    Json.Obj
      [
        ("requests", Json.Int (count t));
        ( "dominant",
          match dominant t with Some s -> Json.String s | None -> Json.Null );
        ("total", Histogram.json_summary t.total);
        ( "segments",
          Json.Obj
            (List.map
               (fun (name, h) ->
                 let s = Histogram.sum h in
                 ( name,
                   Json.Obj
                     [
                       ("sum_us", Json.Float s);
                       ("share", Json.Float (if grand > 0.0 then s /. grand else 0.0));
                       ("mean_us", Json.Float (Histogram.mean h));
                       ("p50_us", Json.Float (Histogram.percentile h 0.5));
                       ("p99_us", Json.Float (Histogram.percentile h 0.99));
                       ("p999_us", Json.Float (Histogram.percentile h 0.999));
                     ] ))
               t.segments) );
      ]

  let pp ppf t =
    Format.fprintf ppf "attribution over %d requests:" (count t);
    let grand = Histogram.sum t.total in
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf " %s %.0f%%" name
          (if grand > 0.0 then 100.0 *. Histogram.sum h /. grand else 0.0))
      t.segments
end

module Counter = struct
  type t = { name : string; mutable value : int }

  let create ?(name = "") () = { name; value = 0 }
  let name t = t.name
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let clear t = t.value <- 0
end

(* A gauge is a named per-node callback ([unit -> int]) sampled by the
   registry's sim-time ticker into a capped time series; the cap drops the
   oldest points so week-long sim runs keep a sliding window rather than an
   unbounded history. *)
module Gauge = struct
  type t = {
    name : string;
    node : int;
    read : unit -> int;
    points : (int * int) Queue.t;  (** (sim-time µs, value), oldest first *)
    max_points : int;
    mutable dropped : int;
  }

  let name t = t.name
  let node t = t.node
  let read t = t.read ()
  let point_count t = Queue.length t.points
  let dropped t = t.dropped
  let points t = List.of_seq (Queue.to_seq t.points)

  let last t =
    Queue.fold (fun _ p -> Some p) None t.points

  let push t ~at_us v =
    if Queue.length t.points >= t.max_points then begin
      ignore (Queue.pop t.points);
      t.dropped <- t.dropped + 1
    end;
    Queue.push (at_us, v) t.points

  let to_json t =
    Json.Obj
      [
        ("name", Json.String t.name);
        ("node", Json.Int t.node);
        ("dropped_points", Json.Int t.dropped);
        ( "points",
          Json.List
            (List.map (fun (ts, v) -> Json.List [ Json.Int ts; Json.Int v ]) (points t)) );
      ]
end

module Registry = struct
  type t = {
    engine : Engine.t;
    mutable gauges : Gauge.t list;  (** newest-first; [gauges] reverses *)
    mutable counters : Counter.t list;
    mutable histograms : Histogram.t list;
    max_points : int;
    mutable sampling : bool;
    mutable samples_taken : int;
  }

  let create ?(max_points_per_gauge = 4096) engine =
    {
      engine;
      gauges = [];
      counters = [];
      histograms = [];
      max_points = Stdlib.max 1 max_points_per_gauge;
      sampling = false;
      samples_taken = 0;
    }

  let register_gauge t ~node ~name read =
    let g =
      {
        Gauge.name;
        node;
        read;
        points = Queue.create ();
        max_points = t.max_points;
        dropped = 0;
      }
    in
    t.gauges <- g :: t.gauges;
    g

  let counter t ~name =
    match List.find_opt (fun c -> String.equal (Counter.name c) name) t.counters with
    | Some c -> c
    | None ->
        let c = Counter.create ~name () in
        t.counters <- c :: t.counters;
        c

  let histogram t ~name =
    match List.find_opt (fun h -> String.equal (Histogram.name h) name) t.histograms with
    | Some h -> h
    | None ->
        let h = Histogram.create ~name () in
        t.histograms <- h :: t.histograms;
        h

  let gauges t = List.rev t.gauges
  let counters t = List.rev t.counters
  let histograms t = List.rev t.histograms
  let samples_taken t = t.samples_taken

  let sample t =
    let at_us = Sim_time.time_to_us (Engine.now t.engine) in
    List.iter (fun g -> Gauge.push g ~at_us (Gauge.read g)) t.gauges;
    t.samples_taken <- t.samples_taken + 1

  (* The ticker reschedules itself forever, like the ZK session sweeper:
     cluster engines are driven by [run_for]/[run_until], never drained. *)
  let start_sampling t ~period =
    if not t.sampling then begin
      t.sampling <- true;
      let rec tick () =
        sample t;
        ignore (Engine.schedule t.engine ~after:period tick)
      in
      ignore (Engine.schedule t.engine ~after:period tick)
    end

  let to_json t =
    Json.Obj
      [
        ("samples_taken", Json.Int t.samples_taken);
        ("gauges", Json.List (List.map Gauge.to_json (gauges t)));
        ( "counters",
          Json.List
            (List.map
               (fun c ->
                 Json.Obj
                   [
                     ("name", Json.String (Counter.name c));
                     ("value", Json.Int (Counter.value c));
                   ])
               (counters t)) );
        ("histograms", Json.List (List.map Histogram.json_summary (histograms t)));
      ]
end

type run_stats = {
  throughput_per_sec : float;
  mean_latency_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  completed : int;
  errors : int;
}

let run_stats_of ~latency ~errors ~duration =
  let seconds = Sim_time.to_sec_f duration in
  let completed = Histogram.count latency in
  {
    throughput_per_sec = (if seconds > 0.0 then float_of_int completed /. seconds else 0.0);
    mean_latency_ms = Histogram.mean latency /. 1e3;
    p50_ms = Histogram.percentile latency 0.5 /. 1e3;
    p95_ms = Histogram.percentile latency 0.95 /. 1e3;
    p99_ms = Histogram.percentile latency 0.99 /. 1e3;
    completed;
    errors;
  }

let pp_run_stats ppf s =
  Format.fprintf ppf "%.0f req/s, mean %.2f ms, p50 %.2f ms, p99 %.2f ms (%d ops, %d errors)"
    s.throughput_per_sec s.mean_latency_ms s.p50_ms s.p99_ms s.completed s.errors

let json_of_run_stats s =
  Json.Obj
    [
      ("throughput_per_sec", Json.Float s.throughput_per_sec);
      ("mean_ms", Json.Float s.mean_latency_ms);
      ("p50_ms", Json.Float s.p50_ms);
      ("p95_ms", Json.Float s.p95_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ("completed", Json.Int s.completed);
      ("errors", Json.Int s.errors);
    ]

type net_stats = {
  net_delivered : int;
  net_dropped_down : int;
  net_dropped_partitioned : int;
  net_dropped_lost : int;
  net_duplicated : int;
  net_bytes : int;
}

let json_of_net_stats s =
  Json.Obj
    [
      ("delivered", Json.Int s.net_delivered);
      ("dropped_down", Json.Int s.net_dropped_down);
      ("dropped_partitioned", Json.Int s.net_dropped_partitioned);
      ("dropped_lost", Json.Int s.net_dropped_lost);
      ("duplicated", Json.Int s.net_duplicated);
      ("bytes", Json.Int s.net_bytes);
    ]

let pp_net_stats ppf s =
  Format.fprintf ppf
    "%d delivered, %d dropped (down %d / partitioned %d / lost %d), %d duplicated, %d bytes"
    s.net_delivered
    (s.net_dropped_down + s.net_dropped_partitioned + s.net_dropped_lost)
    s.net_dropped_down s.net_dropped_partitioned s.net_dropped_lost s.net_duplicated
    s.net_bytes
