(** Minimal JSON values and serialisation.

    Just enough to emit machine-readable benchmark results ([BENCH_*.json])
    without an external dependency. Output is pretty-printed with two-space
    indentation; floats that JSON cannot represent (NaN, infinities) are
    emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed, newline-terminated. *)

val to_file : string -> t -> unit
(** [to_file path v] writes [to_string v] to [path] (truncating). *)

val of_string : string -> (t, string) result
(** Parse a JSON document. Numbers without [./e/E] parse as [Int], the rest
    as [Float]; [\uXXXX] escapes decode to UTF-8 bytes. Round-trips anything
    {!to_string} emits, which is what trace/bench tests rely on. *)

val of_file : string -> (t, string) result

val member : string -> t -> t option
(** [member key (Obj fields)] looks up [key]; [None] on non-objects. *)
