(** Minimal JSON values and serialisation.

    Just enough to emit machine-readable benchmark results ([BENCH_*.json])
    without an external dependency. Output is pretty-printed with two-space
    indentation; floats that JSON cannot represent (NaN, infinities) are
    emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed, newline-terminated. *)

val to_file : string -> t -> unit
(** [to_file path v] writes [to_string v] to [path] (truncating). *)
