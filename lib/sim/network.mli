(** Simulated datacenter network.

    Reliable, in-order point-to-point messages over TCP-like links — the
    message layer Spinnaker assumes (Appendix A.1). Each message pays a
    propagation latency plus a serialisation delay on the sender's NIC
    (modelled as a FIFO resource so large transfers and high fan-out saturate
    a 1-GbE port, as in the paper's read experiments). Messages to nodes that
    are down or partitioned away are silently dropped, which is how a crashed
    TCP peer looks to the sender. *)

type 'msg t

type 'msg envelope = {
  src : int;
  dst : int;
  size : int;  (** payload size in bytes *)
  sent_at : Sim_time.t;
  payload : 'msg;
}

val create :
  Engine.t ->
  ?latency:Distribution.t ->
  ?bandwidth_bps:int ->
  unit ->
  'msg t
(** [latency] defaults to a shifted-exponential around 100 µs (rack-local
    1-GbE RTT/2); [bandwidth_bps] defaults to 1 Gbit/s. *)

val engine : 'msg t -> Engine.t

val register : 'msg t -> node:int -> ('msg envelope -> unit) -> unit
(** Installs the delivery handler for [node] and marks it up. Re-registering
    replaces the handler (used on node restart). *)

val send : 'msg t -> src:int -> dst:int -> ?size:int -> 'msg -> unit
(** [size] defaults to 128 bytes (a small control message). Self-sends are
    delivered with a minimal local delay and no NIC charge. *)

val set_up : 'msg t -> int -> bool -> unit
(** Mark a node up/down. Down nodes neither send nor receive. *)

val is_up : 'msg t -> int -> bool

val partition : 'msg t -> int list -> int list -> unit
(** Block delivery between every pair drawn from the two groups. *)

val heal : 'msg t -> unit
(** Remove all partitions. *)

val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int

val bytes_sent : 'msg t -> int
