(** Simulated datacenter network.

    Point-to-point messages over TCP-like links — the message layer Spinnaker
    assumes (Appendix A.1). Each message pays a propagation latency plus a
    serialisation delay on the sender's NIC (modelled as a FIFO resource so
    large transfers and high fan-out saturate a 1-GbE port, as in the paper's
    read experiments).

    The network is reliable and in-order by default, but faults can be
    injected per directed link or globally: messages to nodes that are down
    or partitioned away are silently dropped (how a crashed TCP peer looks to
    the sender), and links can additionally be configured with a loss
    probability, a duplication probability, and extra delay jitter — the
    adversary the paper's availability claims (§1.1) are made against.
    Partitions are {e directed}: [partition_oneway] blocks only one
    direction, producing the asymmetric reachability that breaks naive
    leader-ack protocols. Every drop is counted by cause. *)

type 'msg t

type 'msg envelope = {
  src : int;
  dst : int;
  size : int;  (** payload size in bytes *)
  sent_at : Sim_time.t;
  payload : 'msg;
}

type drop_cause =
  | Down  (** sender or receiver process is down *)
  | Partitioned  (** directed link blocked by a partition *)
  | Lost  (** random in-flight loss on a faulty link *)

val create :
  Engine.t ->
  ?latency:Distribution.t ->
  ?bandwidth_bps:int ->
  unit ->
  'msg t
(** [latency] defaults to a shifted-exponential around 100 µs (rack-local
    1-GbE RTT/2); [bandwidth_bps] defaults to 1 Gbit/s. *)

val engine : 'msg t -> Engine.t

val attach_trace : 'msg t -> Trace.t -> unit
(** Emit a ["net"]-tagged trace event on every topology or fault-config
    change (not per message — chaos runs would drown the trace). *)

val register : 'msg t -> node:int -> ('msg envelope -> unit) -> unit
(** Installs the delivery handler for [node] and marks it up. Re-registering
    replaces the handler (used on node restart). *)

val send : 'msg t -> src:int -> dst:int -> ?size:int -> ?trace_id:int -> 'msg -> unit
(** [size] defaults to 128 bytes (a small control message). Self-sends are
    delivered with a minimal local delay and no NIC charge, and are exempt
    from link faults.

    When a trace is attached and [trace_id >= 0], the message gets a
    ["net.transit"] span: opened on the sender's track at send time, closed
    on the receiver's track just before the handler runs (with the outcome —
    ["delivered"], ["down"] or ["partitioned"] — as the detail), linking the
    sender's and receiver's spans into a causal graph. Lost messages leave no
    transit span; a duplicated message's extra copy is uninstrumented so the
    span closes exactly once. Tracing never schedules events or draws
    randomness, so it cannot perturb a deterministic run. *)

val set_up : 'msg t -> int -> bool -> unit
(** Mark a node up/down. Down nodes neither send nor receive. *)

val is_up : 'msg t -> int -> bool

(** {2 Partitions}

    Blocks are directed and reference-counted: overlapping fault schedules
    compose, and a link heals only when every block on it is lifted.
    [heal] clears everything regardless of refcounts. *)

val partition : 'msg t -> int list -> int list -> unit
(** Block delivery (both directions) between every pair drawn from the two
    groups. *)

val unpartition : 'msg t -> int list -> int list -> unit
(** Lift one [partition] of the same two groups. *)

val partition_pair : 'msg t -> int -> int -> unit
(** Block both directions between two nodes. *)

val heal_pair : 'msg t -> int -> int -> unit

val partition_oneway : 'msg t -> src:int -> dst:int -> unit
(** Block only [src]→[dst]; replies still flow. *)

val heal_oneway : 'msg t -> src:int -> dst:int -> unit

val heal : 'msg t -> unit
(** Remove all partitions, regardless of refcounts. *)

val reachable : 'msg t -> int -> int -> bool
(** Whether messages from the first node currently reach the second. *)

(** {2 Link faults}

    A per-link setting overrides the default; absent both, the link is
    perfect. Loss and duplication are per-message probabilities; [jitter] is
    sampled and added to the propagation latency of each delivery. *)

val set_link_faults :
  'msg t -> src:int -> dst:int ->
  ?loss:float -> ?duplicate:float -> ?jitter:Distribution.t -> unit -> unit

val clear_link_faults : 'msg t -> src:int -> dst:int -> unit

val set_default_faults :
  'msg t -> ?loss:float -> ?duplicate:float -> ?jitter:Distribution.t -> unit -> unit

val clear_default_faults : 'msg t -> unit

(** {2 Counters} *)

val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Total across all causes; see {!dropped_by_cause} for the breakdown. *)

val dropped_by_cause : 'msg t -> drop_cause -> int

val messages_duplicated : 'msg t -> int

val bytes_sent : 'msg t -> int

val stats : 'msg t -> Metrics.net_stats
(** Snapshot of the delivery/drop/duplication counters for reporting. *)
