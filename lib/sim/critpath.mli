(** Critical-path analysis over the causal trace.

    Reconstructs each request's causal DAG from the ring buffer —
    ["client.request"] and leader-side ["phase.*"] spans, ["follower.force"]
    spans, and the ["net.transit"] spans {!Network} stamps on every tagged
    message — and partitions the client-observed latency window into disjoint
    critical-path segments via a monotone milestone sweep. The sweep starts
    at the submit instant and ends exactly at the reply instant, so the
    segments sum to the end-to-end latency {e by construction} (see
    {!conservation_error}); a missing causal edge (coalesced ack tagged with
    another request, evicted event) degrades to a coarser charge and flags
    the request [incomplete] rather than mis-attributing. *)

(** One disjoint slice of a request's latency:
    - [Retry]: client-side retry/backoff (failed attempts, timeouts) plus
      final settling
    - [Transit]: network wire time on the critical path (request, propose,
      ack, reply)
    - [Queue]: leader CPU queue wait (including parking while the cohort was
      closed)
    - [Force]: leader-local log force when it was the binding branch of the
      force ∥ replication section
    - [Follower_force]: the quorum-closing follower's log force
    - [Ack_wait]: replication wait not explained by wire or follower force —
      pipeline hold-back, ack coalescing delay, in-order quorum wait
    - [Apply]: commit apply and reply issue on the leader
    - [Read]: serving-replica read execution (CPU queue plus store probe) not
      covered by the sub-spans below — reads only
    - [Wait_lsn]: a timeline read parked until the replica's applied state
      covered the client's read-your-writes token
    - [Guard]: an unleased strong read's read-index quorum round *)
type segment =
  | Retry
  | Transit
  | Queue
  | Force
  | Follower_force
  | Ack_wait
  | Apply
  | Read
  | Wait_lsn
  | Guard

val all_segments : segment list
(** Canonical order. *)

val segment_name : segment -> string
(** Stable JSON/attribution key: ["retry"], ["transit"], ["queue"],
    ["force"], ["follower_force"], ["ack_wait"], ["apply"], ["read"],
    ["wait_lsn"], ["guard"]. *)

type request = {
  trace_id : int;
  client : int;
  leader : int;
  total_us : float;  (** measured client latency (submit to settle) *)
  segments : (segment * float) list;
      (** every segment in canonical order, µs; zero-duration included *)
  dominant : segment;  (** the segment with the largest share *)
  incomplete : bool;
      (** a causal edge was missing, so some charge is coarser than usual *)
}

type analysis = {
  requests : request list;
  skipped : int;
      (** traces with neither a committed-write nor a read span pattern
          (unfinished requests, evicted server-side spans) *)
  dropped : int;  (** ring-buffer events overwritten during the window *)
  incomplete : bool;  (** [dropped > 0]: attribution may be missing requests *)
}

val analyze_request : events:Trace.event list -> request option
(** Analyze one request from its events (chronological, all sharing one
    trace id). Writes follow the force ∥ replication walk; reads (a
    ["phase.read"] span with no write pattern) follow the read sweep. [None]
    when the trace matches neither. *)

val analyze : ?dropped:int -> events:Trace.event list -> unit -> analysis
(** Group events by trace id and analyze each. Pass [dropped] (from
    [Trace.dropped]) so the analysis honestly reports when the window lost
    events instead of silently under-counting. *)

val conservation_error : request -> float
(** [|total - Σ segments| / total]; ~0 by construction (integer-µs exact). *)

val record : Metrics.Attribution.t -> request -> unit
(** Feed one request's segments (and its total) into per-segment attribution
    histograms. *)

val request_to_json : request -> Json.t
(** [{trace_id, client, leader, total_us, dominant, incomplete,
    segments: {<name>: µs}}]. *)

val to_json : analysis -> Json.t
(** Summary: [{requests, skipped, dropped_events, incomplete,
    max_conservation_error}]. *)

val pp : Format.formatter -> analysis -> unit
