(** Binary min-heap of timestamped events.

    Events with equal timestamps are ordered by insertion sequence number, so
    the simulation is fully deterministic. Cancellation is lazy: a cancelled
    entry stays in the heap and is skipped on pop — but once dead entries
    outnumber live ones the heap compacts itself (rebuilding the backing
    array with only live entries), so the backing store stays O(live). *)

type 'a t

type handle
(** Handle for cancelling a scheduled entry. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val backing_len : 'a t -> int
(** Number of slots (live + not-yet-compacted dead) in the backing array.
    Exposed for tests asserting the compaction invariant [backing_len = O(size)]. *)

val push : 'a t -> time:Sim_time.t -> 'a -> handle

val cancel : 'a t -> handle -> unit
(** Idempotent; cancelling after the entry popped is a no-op. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (Sim_time.t * 'a) option
(** Removes and returns the earliest live entry. *)

val peek_time : 'a t -> Sim_time.t option
(** Timestamp of the earliest live entry without removing it. *)

(** {2 Zero-allocation pop}

    The engine's event loop runs hundreds of millions of pops per bench; the
    option/tuple returned by {!pop} is pure garbage there. The protocol is:
    call {!normalize}; if it returns [true] the heap top is live and
    {!next_time}/{!take} may read it directly. Calling [next_time] or [take]
    without a preceding [normalize = true] is undefined. *)

val normalize : 'a t -> bool
(** Drop cancelled entries off the top; [true] iff a live entry remains. *)

val next_time : 'a t -> Sim_time.t
(** Timestamp of the heap top. Only valid right after [normalize] returned
    [true]. *)

val take : 'a t -> 'a
(** Remove and return the heap top's payload. Only valid right after
    [normalize] returned [true]. *)
