(** Binary min-heap of timestamped events.

    Events with equal timestamps are ordered by insertion sequence number, so
    the simulation is fully deterministic. Cancellation is lazy: a cancelled
    entry stays in the heap and is skipped on pop. *)

type 'a t

type handle
(** Handle for cancelling a scheduled entry. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val push : 'a t -> time:Sim_time.t -> 'a -> handle

val cancel : 'a t -> handle -> unit
(** Idempotent; cancelling after the entry popped is a no-op. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (Sim_time.t * 'a) option
(** Removes and returns the earliest live entry. *)

val peek_time : 'a t -> Sim_time.t option
(** Timestamp of the earliest live entry without removing it. *)
