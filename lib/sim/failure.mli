(** Fault injection — the nemesis.

    Drives crash/restart closures exposed by simulated processes and
    engage/disengage network faults. A crash loses volatile state but keeps
    stable storage; [destroy_at] additionally wipes stable storage (the
    double-disk-failure scenario of §1.1); the [chaos] schedules generate
    exponential fault/repair processes per target.

    Every injection is recorded in a log with its simulated timestamp, and
    all randomness is drawn from a stream split off the engine's seeded RNG
    at {!create} time — a failing chaos run is replayed exactly by re-running
    the same seed, and the injection log says what happened when. *)

type target = {
  label : string;
  crash : unit -> unit;
  restart : unit -> unit;
  lose_disk : unit -> unit;  (** wipe stable storage; only sensible while crashed *)
}

type toggle = {
  t_label : string;
  engage : unit -> unit;
  disengage : unit -> unit;
}
(** A reversible fault: a partition, a lossy-link episode, a
    coordination-service cut. Composable with crash {!chaos} over the same
    run. *)

type t

val create : Engine.t -> t

val injections : t -> (Sim_time.t * string) list
(** What was injected and when, newest last. *)

val pp_injections : Format.formatter -> t -> unit
(** The injection log, one line per event — printed by failing chaos tests so
    the schedule that broke the protocol is visible without re-tracing. *)

(** {2 Crash faults} *)

val crash_at : t -> Sim_time.t -> target -> unit

val restart_at : t -> Sim_time.t -> target -> unit

val crash_for : t -> at:Sim_time.t -> down_for:Sim_time.span -> target -> unit

val destroy_at : t -> Sim_time.t -> target -> unit
(** Crash and wipe the disk: a permanent failure unless later restarted
    (which then models a replacement node recovering from peers). *)

val chaos :
  t ->
  mean_time_to_failure:Sim_time.span ->
  mean_time_to_repair:Sim_time.span ->
  until:Sim_time.t ->
  target list ->
  unit
(** Schedule an independent random crash/repair process for each target, with
    exponential inter-failure and repair times (clamped to >= 1 µs so a
    repair never lands on the crash's own timestamp), stopping at [until]. *)

(** {2 Reversible faults} *)

val toggle : label:string -> engage:(unit -> unit) -> disengage:(unit -> unit) -> toggle

val engage_at : t -> Sim_time.t -> toggle -> unit

val disengage_at : t -> Sim_time.t -> toggle -> unit

val toggle_for : t -> at:Sim_time.t -> down_for:Sim_time.span -> toggle -> unit
(** Engage at [at], disengage [down_for] later. *)

val toggle_chaos :
  t ->
  mean_time_to_fault:Sim_time.span ->
  mean_time_to_heal:Sim_time.span ->
  until:Sim_time.t ->
  toggle list ->
  unit
(** Independent exponential engage/disengage process per toggle, like
    {!chaos} for reversible faults. Composable with {!chaos} on the same
    nemesis (both draw from the same logged, seeded stream). *)

(** {2 Ready-made network scenarios} *)

val partition_toggle : ?label:string -> 'msg Network.t -> int list -> int list -> toggle
(** Symmetric group split, e.g. majority|minority. *)

val isolate_toggle : ?label:string -> 'msg Network.t -> node:int -> peers:int list -> toggle
(** Cut one node off from all [peers] (both directions) — "isolate the
    leader" when [node] is the current leader. *)

val oneway_toggle : ?label:string -> 'msg Network.t -> src:int -> dst:int -> toggle
(** Asymmetric partition: [src]'s messages to [dst] are dropped while the
    reverse direction still flows. *)

val link_faults_toggle :
  ?label:string ->
  'msg Network.t ->
  ?loss:float ->
  ?duplicate:float ->
  ?jitter:Distribution.t ->
  int list ->
  toggle
(** Message loss / duplication / delay jitter on every directed link among
    [nodes] while engaged. *)

val random_pair_partition_chaos :
  t ->
  'msg Network.t ->
  nodes:int list ->
  mean_time_to_fault:Sim_time.span ->
  mean_time_to_heal:Sim_time.span ->
  until:Sim_time.t ->
  unit
(** Jepsen-style randomized partition/heal process: at exponential intervals
    pick a random pair of nodes and partition it (symmetric or one-way, coin
    flip), healing after an exponential episode length. All transitions are
    logged. *)
