(** Fault injection.

    Drives crash/restart closures exposed by simulated processes. A [Crash]
    loses volatile state but keeps stable storage; [Lose_disk] additionally
    wipes stable storage (the double-disk-failure scenario of §1.1); a chaos
    schedule generates an exponential crash/repair process per target. *)

type target = {
  label : string;
  crash : unit -> unit;
  restart : unit -> unit;
  lose_disk : unit -> unit;  (** wipe stable storage; only sensible while crashed *)
}

type t

val create : Engine.t -> t

val injections : t -> (Sim_time.t * string) list
(** What was injected and when, newest last. *)

val crash_at : t -> Sim_time.t -> target -> unit

val restart_at : t -> Sim_time.t -> target -> unit

val crash_for : t -> at:Sim_time.t -> down_for:Sim_time.span -> target -> unit

val destroy_at : t -> Sim_time.t -> target -> unit
(** Crash and wipe the disk: a permanent failure unless later restarted
    (which then models a replacement node recovering from peers). *)

val chaos :
  t ->
  mean_time_to_failure:Sim_time.span ->
  mean_time_to_repair:Sim_time.span ->
  until:Sim_time.t ->
  target list ->
  unit
(** Schedule an independent random crash/repair process for each target, with
    exponential inter-failure and repair times, stopping at [until]. *)
