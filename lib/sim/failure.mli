(** Fault injection — the nemesis.

    Drives crash/restart closures exposed by simulated processes and
    engage/disengage network faults. A crash loses volatile state but keeps
    stable storage; [destroy_at] additionally wipes stable storage (the
    double-disk-failure scenario of §1.1); the [chaos] schedules generate
    exponential fault/repair processes per target.

    Every injection is a first-class, serializable event: a {!fault} names
    its subject by label (targets and toggles self-register on first use),
    the whole run's {!injections} log is a replayable {!schedule}, and
    {!apply} re-executes an explicit schedule — seed-free — against any run
    that registered the same labels. [Sim.Json] round-trips schedules so a
    failing run's minimal fault schedule persists as a CI artifact
    ({!json_of_schedule}/{!schedule_of_json}). All randomness is drawn from
    a stream split off the engine's seeded RNG at {!create} time. *)

type target = {
  label : string;
  crash : unit -> unit;
  restart : unit -> unit;
  lose_disk : unit -> unit;  (** wipe stable storage; only sensible while crashed *)
}

type toggle = {
  t_label : string;
  engage : unit -> unit;
  disengage : unit -> unit;
}
(** A reversible fault: a partition, a lossy-link episode, a
    coordination-service cut. Composable with crash {!chaos} over the same
    run. *)

(** {2 Injections as data} *)

type fault_kind = Crash | Restart | Destroy | Engage | Disengage

type fault = { kind : fault_kind; who : string }
(** [who] is the target's [label] or the toggle's [t_label]. *)

type injection = { at : Sim_time.t; fault : fault }

type schedule = injection list
(** Chronological (oldest first). At equal timestamps, list order is
    execution order — the engine's event heap is FIFO per instant. *)

val kind_to_string : fault_kind -> string

val pp_fault : Format.formatter -> fault -> unit

val json_of_schedule : schedule -> Json.t
(** [[{at_us, kind, who}, ...]]. *)

val schedule_of_json : Json.t -> (schedule, string) result

type t

val create : Engine.t -> t

val injections : t -> schedule
(** What was injected and when, oldest first — the replayable record of the
    run. Replaying it with {!apply} appends the same entries to the new
    nemesis's log, so a replayed run's log equals its input schedule. *)

val pp_injections : Format.formatter -> t -> unit
(** The injection log, one line per event — printed by failing chaos tests so
    the schedule that broke the protocol is visible without re-tracing. *)

(** {2 Label registry and replay} *)

val register_target : t -> target -> unit
(** Make [target] resolvable by label for {!apply}. The [crash_at] family
    registers its subject automatically; pre-register the full universe when
    a schedule may name subjects the current run never drew. *)

val register_toggle : t -> toggle -> unit

exception Unresolved_label of fault

val apply : t -> schedule -> unit
(** Schedule every injection at its recorded instant, resolving labels
    through the registry. Raises {!Unresolved_label} (before scheduling
    anything) if a fault names an unregistered subject. *)

(** {2 Fault-exposure accounting} *)

val exposure : t -> (string * int) list
(** Injections fired so far, by kind: [crashes], [restarts], [destroys],
    [engages], [disengages], plus [zk_cuts] (engages of toggles labelled for
    the coordination service). How much chaos the run actually absorbed. *)

val json_of_exposure : t -> Json.t

val attach_metrics : t -> Metrics.Registry.t -> unit
(** Register one [nemesis_<kind>] gauge per exposure counter (node [-1],
    cluster-wide) so the periodic sampler time-lines the chaos dose. *)

(** {2 Crash faults} *)

val crash_at : t -> Sim_time.t -> target -> unit

val restart_at : t -> Sim_time.t -> target -> unit

val crash_for : t -> at:Sim_time.t -> down_for:Sim_time.span -> target -> unit

val destroy_at : t -> Sim_time.t -> target -> unit
(** Crash and wipe the disk: a permanent failure unless later restarted
    (which then models a replacement node recovering from peers). *)

val chaos :
  t ->
  mean_time_to_failure:Sim_time.span ->
  mean_time_to_repair:Sim_time.span ->
  until:Sim_time.t ->
  target list ->
  unit
(** Schedule an independent random crash/repair process for each target, with
    exponential inter-failure and repair times (clamped to >= 1 µs so a
    repair never lands on the crash's own timestamp), stopping at [until].
    The whole timeline is drawn eagerly at call time: the schedule is a pure
    function of the seed. *)

val hazard_crash_chaos :
  t ->
  period:Sim_time.span ->
  p_per_tick:float ->
  ?multiplier:(unit -> float) ->
  ?max_concurrent:int ->
  mean_time_to_repair:Sim_time.span ->
  until:Sim_time.t ->
  target list ->
  unit
(** Conditional failure multipliers: every [period], each up target crashes
    with probability [p_per_tick *. multiplier ()], restarting after an
    exponential repair. [multiplier] reads live signals at the tick — e.g.
    spike the hazard while a migration or compaction is in flight — which a
    seed-only replay cannot reproduce; the injections that actually fire are
    logged, so the run replays from its explicit {!schedule} instead.
    [max_concurrent] caps how many of [targets] this process holds down at
    once (default unlimited). RNG draws happen for every target every tick
    regardless of suppression, so consumed randomness does not depend on
    live state. *)

(** {2 Reversible faults} *)

val toggle : label:string -> engage:(unit -> unit) -> disengage:(unit -> unit) -> toggle

val engage_at : t -> Sim_time.t -> toggle -> unit

val disengage_at : t -> Sim_time.t -> toggle -> unit

val toggle_for : t -> at:Sim_time.t -> down_for:Sim_time.span -> toggle -> unit
(** Engage at [at], disengage [down_for] later. *)

val toggle_chaos :
  t ->
  mean_time_to_fault:Sim_time.span ->
  mean_time_to_heal:Sim_time.span ->
  until:Sim_time.t ->
  toggle list ->
  unit
(** Independent exponential engage/disengage process per toggle, like
    {!chaos} for reversible faults. Composable with {!chaos} on the same
    nemesis (both draw from the same logged, seeded stream). *)

(** {2 Ready-made network scenarios} *)

val partition_toggle : ?label:string -> 'msg Network.t -> int list -> int list -> toggle
(** Symmetric group split, e.g. majority|minority. *)

val isolate_toggle : ?label:string -> 'msg Network.t -> node:int -> peers:int list -> toggle
(** Cut one node off from all [peers] (both directions) — "isolate the
    leader" when [node] is the current leader. *)

val pair_partition_toggle : 'msg Network.t -> int -> int -> toggle
(** Symmetric two-node split, labelled ["pair-partition a<->b"] with the
    pair in canonical (ascending) order — the same toggles
    {!random_pair_partition_chaos} synthesizes, exposed so replay harnesses
    can pre-register the full pair universe. *)

val oneway_toggle : ?label:string -> 'msg Network.t -> src:int -> dst:int -> toggle
(** Asymmetric partition: [src]'s messages to [dst] are dropped while the
    reverse direction still flows. *)

val link_faults_toggle :
  ?label:string ->
  'msg Network.t ->
  ?loss:float ->
  ?duplicate:float ->
  ?jitter:Distribution.t ->
  int list ->
  toggle
(** Message loss / duplication / delay jitter on every directed link among
    [nodes] while engaged. *)

val random_pair_partition_chaos :
  t ->
  'msg Network.t ->
  nodes:int list ->
  mean_time_to_fault:Sim_time.span ->
  mean_time_to_heal:Sim_time.span ->
  until:Sim_time.t ->
  unit
(** Jepsen-style randomized partition/heal process: at exponential intervals
    pick a random pair of nodes and partition it (symmetric or one-way, coin
    flip), healing after an exponential episode length. All transitions are
    logged and the synthesized toggles registered, so the run replays. *)
