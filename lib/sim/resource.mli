(** FIFO queueing resource with one or more identical servers.

    Models a contended device — a log disk, a CPU, a NIC. Submitted jobs are
    served in order; a job's completion callback fires at
    [max(now, earliest server free) + service]. Queueing delay under load is
    what produces the latency "knee" curves of the paper's evaluation. *)

type t

val create : Engine.t -> name:string -> ?servers:int -> unit -> t
(** [servers] defaults to 1. *)

val name : t -> string

val submit : t -> service:Sim_time.span -> (unit -> unit) -> unit
(** Enqueue a job with the given service time; the callback fires when the
    job completes. *)

val reserve : t -> service:Sim_time.span -> Sim_time.t
(** Book a job on the earliest-free server and return its completion time
    without scheduling an event. Lets a caller that already schedules a
    downstream event (e.g. network delivery after a NIC transfer) avoid a
    second heap entry per message. Counts toward {!jobs_completed} and
    {!busy_time} immediately. *)

val submit_bytes : t -> bytes:int -> bytes_per_sec:float -> (unit -> unit) -> unit
(** Enqueue a job whose service time is [bytes / bytes_per_sec] — models a
    bandwidth-limited transfer (e.g. shipping an SSTable snapshot). *)

val reset : t -> unit
(** Forget queued work (e.g. the device's host crashed) and statistics. *)

val jobs_completed : t -> int

val busy_time : t -> Sim_time.span
(** Total service time of submitted jobs (for utilisation accounting). *)

val queue_delay_estimate : t -> Sim_time.span
(** How long a job submitted now would wait before service begins. *)
