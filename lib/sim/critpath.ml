(* Critical-path analysis over the causal trace.

   The trace is a causal graph: request-scoped spans on every hop
   ("client.request", the leader's "phase.*" spans, "follower.force") plus
   the "net.transit" spans Network stamps on each message, whose start sits
   on the sender's node and whose end sits on the receiver's. Reconstructing
   a request's DAG from those spans lets us answer "where did this request's
   latency actually go" — not the sum of overlapping phase durations, but a
   partition of the client-observed window into disjoint critical-path
   segments.

   The partition is a milestone sweep: a cursor starts at the request's
   submit instant and advances monotonically through the causal milestones
   (request transit arrives, write starts, the force/replication parallel
   section resolves, apply finishes, reply transit lands), charging each
   advance to one segment. Because the cursor only moves forward and finishes
   exactly at the reply instant, the segments partition the end-to-end window
   by construction — conservation (segments sum = measured latency) is exact,
   which is what makes per-segment histograms trustworthy.

   Inside the force ∥ replication parallel section the binding branch wins:
   if the local log force finished last, the whole section is leader force;
   otherwise the replication branch is walked through its own milestones —
   propose transit, follower force, ack wait (pipeline hold-back plus
   coalescing delay plus quorum wait), ack transit. A missing edge (a
   coalesced ack tagged with a different request, an event evicted from the
   ring) degrades to a coarser charge and flags the request, never a
   mis-attribution that still claims full detail. *)

type segment =
  | Retry
  | Transit
  | Queue
  | Force
  | Follower_force
  | Ack_wait
  | Apply
  | Read
  | Wait_lsn
  | Guard

let all_segments =
  [ Retry; Transit; Queue; Force; Follower_force; Ack_wait; Apply; Read; Wait_lsn; Guard ]

let segment_index = function
  | Retry -> 0
  | Transit -> 1
  | Queue -> 2
  | Force -> 3
  | Follower_force -> 4
  | Ack_wait -> 5
  | Apply -> 6
  | Read -> 7
  | Wait_lsn -> 8
  | Guard -> 9

let segment_name = function
  | Retry -> "retry"
  | Transit -> "transit"
  | Queue -> "queue"
  | Force -> "force"
  | Follower_force -> "follower_force"
  | Ack_wait -> "ack_wait"
  | Apply -> "apply"
  | Read -> "read"
  | Wait_lsn -> "wait_lsn"
  | Guard -> "guard"

type request = {
  trace_id : int;
  client : int;
  leader : int;
  total_us : float;
  segments : (segment * float) list;  (** all segments, canonical order, µs *)
  dominant : segment;
  incomplete : bool;
}

type analysis = {
  requests : request list;
  skipped : int;  (** traces without a full committed-write span pattern *)
  dropped : int;  (** ring-buffer events overwritten during the window *)
  incomplete : bool;  (** true iff [dropped > 0] *)
}

(* A paired span: start/end instants in µs, with the node each side ran on
   (for "net.transit" that is sender and receiver). *)
type span = { s_at : int; e_at : int; src : int; dst : int }

let pair_spans events ~tag =
  let open_spans = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if String.equal e.tag tag then
        match e.kind with
        | Trace.Span_start -> Hashtbl.replace open_spans e.span_id e
        | Trace.Span_end -> (
          match Hashtbl.find_opt open_spans e.span_id with
          | Some (s : Trace.event) ->
            Hashtbl.remove open_spans e.span_id;
            out :=
              {
                s_at = Sim_time.time_to_us s.at;
                e_at = Sim_time.time_to_us e.at;
                src = s.node;
                dst = e.node;
              }
              :: !out
          | None -> ())
        | Trace.Instant -> ())
    events;
  List.rev !out

let last_span = function [] -> None | l -> Some (List.nth l (List.length l - 1))

let last_where pred l =
  List.fold_left (fun acc sp -> if pred sp then Some sp else acc) None l

let first_where pred l = List.find_opt pred l

(* Analyze one request's events (chronological, all sharing a trace id).
   Writes follow the force ∥ replication milestone walk; reads (requests with
   a [phase.read] span but no committed-write pattern) follow their own sweep
   over the serving replica's read span and its guard / token-wait sub-spans.
   Returns [None] for traces with neither pattern (requests whose server-side
   spans never appeared). *)
let analyze_request ~events =
  match
    List.find_opt
      (fun (e : Trace.event) ->
        e.kind = Trace.Span_start && String.equal e.tag "client.request")
      events
  with
  | None -> None
  | Some req_start -> (
    match
      List.find_opt
        (fun (e : Trace.event) ->
          e.kind = Trace.Span_end && e.span_id = req_start.span_id)
        events
    with
    | None -> None
    | Some req_end -> (
      let t0 = Sim_time.time_to_us req_start.at in
      let t1 = Sim_time.time_to_us req_end.at in
      if t1 <= t0 then None
      else
        let client = req_start.node in
        let transits = pair_spans events ~tag:"net.transit" in
        let forces = pair_spans events ~tag:"phase.force" in
        let repls = pair_spans events ~tag:"phase.replication" in
        let applies = pair_spans events ~tag:"phase.apply" in
        let ffs = pair_spans events ~tag:"follower.force" in
        let seg = Array.make 10 0.0 in
        let cursor = ref t0 in
        let incomplete = ref false in
        let advance s target =
          let target = Stdlib.min target t1 in
          if target > !cursor then begin
            seg.(segment_index s) <-
              seg.(segment_index s) +. float_of_int (target - !cursor);
            cursor := target
          end
        in
        let finish ~leader =
          advance Retry t1;
          let segments = List.map (fun s -> (s, seg.(segment_index s))) all_segments in
          let dominant =
            fst
              (List.fold_left
                 (fun (bs, bv) (s, v) -> if v > bv then (s, v) else (bs, bv))
                 (Retry, neg_infinity) segments)
          in
          Some
            {
              trace_id = req_start.trace_id;
              client;
              leader;
              total_us = float_of_int (t1 - t0);
              segments;
              dominant;
              incomplete = !incomplete;
            }
        in
        (* The last completed force/replication pair is the winning write
           attempt (a deposed leader's abandoned attempt never completes its
           spans). *)
        match (last_span forces, last_span repls) with
        | Some force, Some repl ->
          let p1 = Stdlib.min force.s_at repl.s_at in
          let p2 = Stdlib.max force.e_at repl.e_at in
          let leader = force.src in
          (* Submit -> the request transit that started the write. Everything
             before that transit left the client is retry/backoff (failed
             attempts, timeouts); the transit itself is wire time. *)
          (match last_where (fun tr -> tr.src = client && tr.e_at <= p1) transits with
          | Some tr ->
            advance Retry tr.s_at;
            advance Transit tr.e_at
          | None -> incomplete := true);
          (* Arrival -> write start: leader CPU queue (plus any parking while
             the cohort was closed). *)
          advance Queue p1;
          (* The force ∥ replication parallel section. *)
          if force.e_at >= repl.e_at then advance Force p2
          else begin
            let ack =
              last_where
                (fun tr -> tr.dst = leader && tr.src <> client && tr.s_at >= p1 && tr.e_at <= p2)
                transits
            in
            let prop_any =
              first_where
                (fun tr -> tr.src = leader && tr.dst <> client && tr.s_at >= p1 && tr.s_at < p2)
                transits
            in
            match prop_any with
            | None ->
              (* Batching tagged the propose (and its ack) with another
                 request's id: the replication wait cannot be subdivided. *)
              incomplete := true;
              advance Ack_wait p2
            | Some prop_any ->
              (* Walk the branch through the follower whose ack closed the
                 quorum; fall back to the first proposed-to follower when the
                 committing ack was coalesced under a different trace id. *)
              let follower = match ack with Some a -> a.src | None -> prop_any.dst in
              let prop =
                match
                  first_where
                    (fun tr -> tr.src = leader && tr.dst = follower && tr.s_at >= p1)
                    transits
                with
                | Some p -> p
                | None -> prop_any
              in
              advance Ack_wait prop.s_at;  (* pipeline hold-back *)
              advance Transit prop.e_at;
              (match
                 first_where (fun sp -> sp.src = follower && sp.s_at >= prop.s_at) ffs
               with
              | Some ff -> advance Follower_force ff.e_at
              | None -> ());
              (match ack with
              | Some a ->
                advance Ack_wait a.s_at;  (* ack coalescing delay *)
                advance Transit a.e_at
              | None -> ());
              advance Ack_wait p2 (* in-order quorum wait *)
          end;
          (* Commit -> applied and reply issued. *)
          (match last_span applies with
          | Some ap -> advance Apply ap.e_at
          | None -> ());
          (* Reply transit back to the client; the tail to the measured end
             is client-side settling (zero on the happy path). *)
          (match last_where (fun tr -> tr.dst = client && tr.e_at <= t1) transits with
          | Some r ->
            advance Apply r.s_at;
            advance Transit r.e_at
          | None -> incomplete := true);
          finish ~leader
        | _ -> (
          (* No committed-write span pattern: a read. The last completed
             [phase.read] span is the winning attempt (earlier redirected or
             timed-out attempts land in Retry); inside it the quorum-guard
             round and the token park carry their own spans, and what remains
             is CPU queue plus serve time, charged to Read. *)
          match last_span (pair_spans events ~tag:"phase.read") with
          | None -> None
          | Some rs ->
            let server = rs.src in
            (match last_where (fun tr -> tr.src = client && tr.e_at <= rs.s_at) transits with
            | Some tr ->
              advance Retry tr.s_at;
              advance Transit tr.e_at
            | None -> incomplete := true);
            advance Read rs.s_at;
            let in_window sp = sp.s_at >= rs.s_at && sp.e_at <= rs.e_at in
            let subs =
              List.map (fun sp -> (Guard, sp))
                (List.filter in_window (pair_spans events ~tag:"read.guard"))
              @ List.map (fun sp -> (Wait_lsn, sp))
                  (List.filter in_window (pair_spans events ~tag:"read.wait_lsn"))
            in
            let subs = List.sort (fun (_, a) (_, b) -> Stdlib.compare a.s_at b.s_at) subs in
            List.iter
              (fun (k, sp) ->
                advance Read sp.s_at;
                advance k sp.e_at)
              subs;
            advance Read rs.e_at;
            (match last_where (fun tr -> tr.dst = client && tr.e_at <= t1) transits with
            | Some r ->
              advance Read r.s_at;
              advance Transit r.e_at
            | None -> incomplete := true);
            finish ~leader:server)))

let analyze ?(dropped = 0) ~events () =
  let by_trace : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.trace_id >= 0 then
        match Hashtbl.find_opt by_trace e.trace_id with
        | Some l -> l := e :: !l
        | None ->
          Hashtbl.add by_trace e.trace_id (ref [ e ]);
          order := e.trace_id :: !order)
    events;
  let requests = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun tid ->
      let evs = List.rev !(Hashtbl.find by_trace tid) in
      match analyze_request ~events:evs with
      | Some r -> requests := r :: !requests
      | None -> incr skipped)
    (List.rev !order);
  { requests = List.rev !requests; skipped = !skipped; dropped; incomplete = dropped > 0 }

let conservation_error r =
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 r.segments in
  if r.total_us <= 0.0 then 0.0 else abs_float (r.total_us -. sum) /. r.total_us

let record attribution r =
  List.iter
    (fun (s, v) -> Metrics.Attribution.record attribution ~segment:(segment_name s) v)
    r.segments;
  Metrics.Attribution.record_total attribution r.total_us

let request_to_json r =
  Json.Obj
    [
      ("trace_id", Json.Int r.trace_id);
      ("client", Json.Int r.client);
      ("leader", Json.Int r.leader);
      ("total_us", Json.Float r.total_us);
      ("dominant", Json.String (segment_name r.dominant));
      ("incomplete", Json.Bool r.incomplete);
      ( "segments",
        Json.Obj (List.map (fun (s, v) -> (segment_name s, Json.Float v)) r.segments) );
    ]

let to_json a =
  let max_err =
    List.fold_left (fun m r -> Stdlib.max m (conservation_error r)) 0.0 a.requests
  in
  Json.Obj
    [
      ("requests", Json.Int (List.length a.requests));
      ("skipped", Json.Int a.skipped);
      ("dropped_events", Json.Int a.dropped);
      ("incomplete", Json.Bool a.incomplete);
      ("max_conservation_error", Json.Float max_err);
    ]

let pp ppf a =
  Format.fprintf ppf "critical paths: %d requests analyzed, %d skipped%s"
    (List.length a.requests) a.skipped
    (if a.incomplete then Printf.sprintf " (INCOMPLETE: %d events dropped)" a.dropped
     else "")
