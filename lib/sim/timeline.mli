(** Failover-timeline analyzer (paper §7/§8).

    Consumes the structured {!Trace} of a crash-the-leader experiment and
    reconstructs the causal chain: leader crash → ZK session expiry →
    election start → leader elected → cohort reopened → first re-committed
    client write ("phase.apply" span end on the cohort), plus the recovery
    catch-up duration (node restart → follower_active) when the crashed
    node comes back. *)

type t = {
  crash_at : Sim_time.t;  (** injected crash instant (the analysis origin) *)
  cohort : int;
  session_expired_at : Sim_time.t option;
  election_started_at : Sim_time.t option;
  leader_elected_at : Sim_time.t option;
  cohort_open_at : Sim_time.t option;
  first_commit_at : Sim_time.t option;
      (** first committed client write on the cohort strictly after the crash *)
  restart_at : Sim_time.t option;
  catchup_done_at : Sim_time.t option;
  unavailability : Sim_time.span option;  (** [first_commit_at - crash_at] *)
  catchup : Sim_time.span option;  (** [catchup_done_at - restart_at] *)
  incomplete : bool;
      (** the ring buffer dropped events during the window, so marks may be
          missing (an absent mark then means "evicted", not "never happened") *)
}

val analyze :
  ?leader:int ->
  ?dropped:int ->
  events:Trace.event list ->
  crash_at:Sim_time.t ->
  cohort:int ->
  unit ->
  t
(** [leader] (the crashed node id) narrows session-expiry / restart /
    catch-up matching to that node; omit to accept any node. Pass [dropped]
    (from [Trace.dropped]) so the analysis reports honestly when the ring
    evicted events instead of presenting absent marks as facts. *)

val to_json : t -> Json.t
(** [{cohort, crash_at_us, *_at_us (null when unobserved), unavailability_ms,
    catchup_ms, incomplete}]. *)

val pp : Format.formatter -> t -> unit
