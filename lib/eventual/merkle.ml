let nbuckets = 1024

type t = {
  hashes : int array;  (** combined hash per bucket; 0 = empty bucket *)
  members : Storage.Row.coord list array;  (** bucket coordinates, descending *)
  root : int;
  leaves : int;
}

let bucket_of coord = Hashtbl.hash coord land (nbuckets - 1)

let cell_hash (cell : Storage.Row.cell) =
  Hashtbl.hash (cell.value, cell.version, cell.timestamp)

let build entries =
  let hashes = Array.make nbuckets 0 in
  let members = Array.make nbuckets [] in
  let leaves = ref 0 in
  (* Entries arrive sorted by coordinate, so each bucket's hash chain is
     deterministic regardless of which replica builds the tree. *)
  List.iter
    (fun ((coord, cell) : Storage.Row.coord * Storage.Row.cell) ->
      let b = bucket_of coord in
      hashes.(b) <- Hashtbl.hash (hashes.(b), coord, cell_hash cell);
      members.(b) <- coord :: members.(b);
      incr leaves)
    entries;
  (* Combine bucket hashes pairwise up to a root (the tree the wire protocol
     would actually ship level by level). *)
  let level = ref (Array.copy hashes) in
  while Array.length !level > 1 do
    let n = Array.length !level / 2 in
    let next = Array.make n 0 in
    for i = 0 to n - 1 do
      next.(i) <- Hashtbl.hash ((!level).(2 * i), (!level).((2 * i) + 1))
    done;
    level := next
  done;
  { hashes; members; root = (!level).(0); leaves = !leaves }

let root_hash t = t.root
let equal a b = a.root = b.root
let leaf_count t = t.leaves

let depth _ =
  let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
  log2 nbuckets 1

let diff a b =
  if equal a b then []
  else begin
    let acc = ref [] in
    for bucket = 0 to nbuckets - 1 do
      if a.hashes.(bucket) <> b.hashes.(bucket) then
        acc := List.rev_append a.members.(bucket) (List.rev_append b.members.(bucket) !acc)
    done;
    List.sort_uniq Storage.Row.compare_coord !acc
  end
