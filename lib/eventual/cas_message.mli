(** Wire protocol of the eventually consistent baseline (§9).

    Dynamo-style: any replica of a key coordinates a request. Writes go to
    all replicas; the consistency level says how many acks gate the client
    reply (weak = ONE, quorum = TWO). Reads at ONE are served locally, at
    QUORUM two replicas are consulted and timestamps resolve conflicts. *)

type level = One | Quorum

type t =
  | Client_read of {
      client : int;
      request_id : int;
      key : Storage.Row.key;
      col : Storage.Row.column;
      level : level;
    }
  | Client_write of {
      client : int;
      request_id : int;
      key : Storage.Row.key;
      col : Storage.Row.column;
      value : string option;  (** [None] deletes *)
      level : level;
    }
  | Read_reply of { request_id : int; cell : Storage.Row.cell option }
  | Write_reply of { request_id : int }
  | Replica_read of { req : int; coord : Storage.Row.coord; reply_to : int }
  | Replica_read_reply of { req : int; from : int; cell : Storage.Row.cell option }
  | Replica_write of {
      req : int option;  (** [None] for read repair / hint replays (no ack) *)
      coord : Storage.Row.coord;
      cell : Storage.Row.cell;
      reply_to : int;
    }
  | Replica_write_ack of { req : int; from : int }
  | Tree_exchange of { range : int; tree : Merkle.t; reply_to : int }
      (** anti-entropy: sender's Merkle tree for the range *)
  | Tree_cells_request of { range : int; coords : Storage.Row.coord list; reply_to : int }
  | Tree_cells of { range : int; cells : (Storage.Row.coord * Storage.Row.cell) list }

val acks_needed : level -> int

val size : t -> int

val pp_level : Format.formatter -> level -> unit
