(** Client for the eventually consistent baseline.

    Requests are routed to one of the key's replicas (round-robin), which
    coordinates. Weak ops use consistency level ONE, quorum ops level
    QUORUM; the paper compares Spinnaker against both (§9). *)

type t

type read_result = { value : string option; timestamp : int }

val create :
  engine:Sim.Engine.t ->
  net:Cas_message.t Sim.Network.t ->
  partition:Spinnaker.Partition.t ->
  config:Spinnaker.Config.t ->
  id:int ->
  t

val id : t -> int

val get :
  t -> level:Cas_message.level -> Storage.Row.key -> Storage.Row.column ->
  ((read_result option, [ `Timed_out ]) result -> unit) -> unit

val put :
  t -> level:Cas_message.level -> Storage.Row.key -> Storage.Row.column -> value:string ->
  ((unit, [ `Timed_out ]) result -> unit) -> unit

val delete :
  t -> level:Cas_message.level -> Storage.Row.key -> Storage.Row.column ->
  ((unit, [ `Timed_out ]) result -> unit) -> unit

val retries : t -> int
