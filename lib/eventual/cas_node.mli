(** A node of the eventually consistent baseline.

    Every replica of a key can coordinate client requests for it (no leader,
    no commit queue). The node reuses the same storage engine as Spinnaker —
    memtables, SSTables, shared WAL with group commit — mirroring the paper,
    where Spinnaker was derived from the Cassandra codebase (§C). Conflicts
    resolve last-writer-wins on timestamps; background read repair and
    Merkle-tree anti-entropy pull replicas back together (§2.3). *)

type t

val create :
  engine:Sim.Engine.t ->
  net:Cas_message.t Sim.Network.t ->
  partition:Spinnaker.Partition.t ->
  config:Spinnaker.Config.t ->
  trace:Sim.Trace.t ->
  anti_entropy_period:Sim.Sim_time.span option ->
  id:int ->
  t

val id : t -> int

val alive : t -> bool

val start : t -> unit

val crash : t -> unit

val restart : t -> unit

val lose_disk : t -> unit

val read_local : t -> Storage.Row.coord -> Storage.Row.cell option
(** Direct inspection for tests: the newest local cell (tombstones visible). *)

val hints_queued : t -> int

val repairs_sent : t -> int
(** Read-repair writes issued by this coordinator. *)

val failure_target : t -> Sim.Failure.target
