module Partition = Spinnaker.Partition
module Config = Spinnaker.Config

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  partition : Partition.t;
  net : Cas_message.t Sim.Network.t;
  nodes : Cas_node.t array;
  trace : Sim.Trace.t;
  mutable next_client : int;
}

let create engine ?anti_entropy_period config =
  let partition =
    Partition.create ~nodes:config.Config.nodes ~replication:config.Config.replication
      ~key_space:config.Config.key_space
  in
  let net = Sim.Network.create engine () in
  let trace = Sim.Trace.create engine in
  let nodes =
    Array.init config.Config.nodes (fun id ->
        Cas_node.create ~engine ~net ~partition ~config ~trace
          ~anti_entropy_period ~id)
  in
  { engine; config; partition; net; nodes; trace; next_client = 10_000 }

let start t = Array.iter Cas_node.start t.nodes
let engine t = t.engine
let config t = t.config
let partition t = t.partition
let net t = t.net
let trace t = t.trace
let node t i = t.nodes.(i)
let nodes t = t.nodes

let new_client t =
  let id = t.next_client in
  t.next_client <- id + 1;
  Cas_client.create ~engine:t.engine ~net:t.net ~partition:t.partition ~config:t.config ~id

let crash_node t i = Cas_node.crash t.nodes.(i)
let restart_node t i = Cas_node.restart t.nodes.(i)
let failure_targets t = Array.to_list (Array.map Cas_node.failure_target t.nodes)
