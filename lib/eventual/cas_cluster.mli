(** Assembly of the eventually consistent baseline cluster. Unlike
    Spinnaker there are no elections: the cluster serves requests as soon as
    nodes are up. *)

type t

val create :
  Sim.Engine.t ->
  ?anti_entropy_period:Sim.Sim_time.span ->
  Spinnaker.Config.t ->
  t
(** [anti_entropy_period] defaults to off (the paper's measurements exercise
    the request path; anti-entropy is a background repair knob). *)

val start : t -> unit

val engine : t -> Sim.Engine.t

val config : t -> Spinnaker.Config.t

val partition : t -> Spinnaker.Partition.t

val net : t -> Cas_message.t Sim.Network.t

val trace : t -> Sim.Trace.t

val node : t -> int -> Cas_node.t

val nodes : t -> Cas_node.t array

val new_client : t -> Cas_client.t

val crash_node : t -> int -> unit

val restart_node : t -> int -> unit

val failure_targets : t -> Sim.Failure.target list
