module Partition = Spinnaker.Partition
module Config = Spinnaker.Config

type read_result = { value : string option; timestamp : int }

type op =
  | Read of { key : Storage.Row.key; col : Storage.Row.column; level : Cas_message.level }
  | Write of {
      key : Storage.Row.key;
      col : Storage.Row.column;
      value : string option;
      level : Cas_message.level;
    }

type pending = {
  op : op;
  deliver_read : (read_result option, [ `Timed_out ]) result -> unit;
  deliver_write : (unit, [ `Timed_out ]) result -> unit;
  mutable attempts : int;
  mutable timer : Sim.Engine.timer option;
}

type t = {
  id : int;
  engine : Sim.Engine.t;
  net : Cas_message.t Sim.Network.t;
  partition : Partition.t;
  config : Config.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_request : int;
  mutable rr : int;
  mutable retries : int;
}

let max_attempts = 60

let id t = t.id
let retries t = t.retries

let target t key =
  let range = Partition.route t.partition key in
  let members = Partition.cohort t.partition ~range in
  t.rr <- t.rr + 1;
  List.nth members (t.rr mod List.length members)

let rec dispatch t request_id p =
  let key, msg =
    match p.op with
    | Read { key; col; level } ->
      (key, Cas_message.Client_read { client = t.id; request_id; key; col; level })
    | Write { key; col; value; level } ->
      (key, Cas_message.Client_write { client = t.id; request_id; key; col; value; level })
  in
  Sim.Network.send t.net ~src:t.id ~dst:(target t key) ~size:(Cas_message.size msg) msg;
  p.timer <-
    Some
      (Sim.Engine.schedule t.engine ~after:t.config.Config.client_timeout (fun () ->
           if Hashtbl.mem t.pending request_id then begin
             p.attempts <- p.attempts + 1;
             t.retries <- t.retries + 1;
             if p.attempts >= max_attempts then begin
               Hashtbl.remove t.pending request_id;
               match p.op with
               | Read _ -> p.deliver_read (Error `Timed_out)
               | Write _ -> p.deliver_write (Error `Timed_out)
             end
             else dispatch t request_id p
           end))

let handle_reply t request_id result =
  match Hashtbl.find_opt t.pending request_id with
  | None -> ()
  | Some p ->
    (match p.timer with Some timer -> Sim.Engine.cancel t.engine timer | None -> ());
    Hashtbl.remove t.pending request_id;
    (match result with
    | `Read cell ->
      p.deliver_read
        (Ok
           (Option.map
              (fun (c : Storage.Row.cell) -> { value = c.value; timestamp = c.timestamp })
              cell))
    | `Write -> p.deliver_write (Ok ()))

let create ~engine ~net ~partition ~config ~id =
  let t =
    {
      id;
      engine;
      net;
      partition;
      config;
      pending = Hashtbl.create 64;
      next_request = 0;
      rr = id;  (* desynchronise round-robin across clients *)
      retries = 0;
    }
  in
  Sim.Network.register net ~node:id (fun env ->
      match env.Sim.Network.payload with
      | Cas_message.Read_reply { request_id; cell } -> handle_reply t request_id (`Read cell)
      | Cas_message.Write_reply { request_id } -> handle_reply t request_id `Write
      | _ -> ());
  t

let submit t op ~deliver_read ~deliver_write =
  let request_id = t.next_request in
  t.next_request <- request_id + 1;
  let p = { op; deliver_read; deliver_write; attempts = 0; timer = None } in
  Hashtbl.replace t.pending request_id p;
  dispatch t request_id p

let no_read _ = ()
let no_write _ = ()

let get t ~level key col k =
  submit t (Read { key; col; level }) ~deliver_read:k ~deliver_write:no_write

let put t ~level key col ~value k =
  submit t (Write { key; col; value = Some value; level }) ~deliver_read:no_read ~deliver_write:k

let delete t ~level key col k =
  submit t (Write { key; col; value = None; level }) ~deliver_read:no_read ~deliver_write:k
