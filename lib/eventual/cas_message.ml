type level = One | Quorum

type t =
  | Client_read of {
      client : int;
      request_id : int;
      key : Storage.Row.key;
      col : Storage.Row.column;
      level : level;
    }
  | Client_write of {
      client : int;
      request_id : int;
      key : Storage.Row.key;
      col : Storage.Row.column;
      value : string option;
      level : level;
    }
  | Read_reply of { request_id : int; cell : Storage.Row.cell option }
  | Write_reply of { request_id : int }
  | Replica_read of { req : int; coord : Storage.Row.coord; reply_to : int }
  | Replica_read_reply of { req : int; from : int; cell : Storage.Row.cell option }
  | Replica_write of {
      req : int option;
      coord : Storage.Row.coord;
      cell : Storage.Row.cell;
      reply_to : int;
    }
  | Replica_write_ack of { req : int; from : int }
  | Tree_exchange of { range : int; tree : Merkle.t; reply_to : int }
  | Tree_cells_request of { range : int; coords : Storage.Row.coord list; reply_to : int }
  | Tree_cells of { range : int; cells : (Storage.Row.coord * Storage.Row.cell) list }

let acks_needed = function One -> 1 | Quorum -> 2

let cell_size (cell : Storage.Row.cell) =
  (match cell.value with Some v -> String.length v | None -> 0) + 24

let coord_size (key, col) = String.length key + String.length col

let size = function
  | Client_read { key; col; _ } -> String.length key + String.length col + 24
  | Client_write { key; col; value; _ } ->
    String.length key + String.length col
    + (match value with Some v -> String.length v | None -> 0)
    + 24
  | Read_reply { cell; _ } -> (match cell with Some c -> cell_size c | None -> 0) + 16
  | Write_reply _ -> 16
  | Replica_read { coord; _ } -> coord_size coord + 24
  | Replica_read_reply { cell; _ } -> (match cell with Some c -> cell_size c | None -> 0) + 24
  | Replica_write { coord; cell; _ } -> coord_size coord + cell_size cell + 24
  | Replica_write_ack _ -> 24
  | Tree_exchange { tree; _ } -> 64 + (Merkle.depth tree * 32)
  | Tree_cells_request { coords; _ } ->
    List.fold_left (fun a c -> a + coord_size c) 24 coords
  | Tree_cells { cells; _ } ->
    List.fold_left (fun a (c, cell) -> a + coord_size c + cell_size cell) 24 cells

let pp_level ppf = function
  | One -> Format.pp_print_string ppf "ONE"
  | Quorum -> Format.pp_print_string ppf "QUORUM"
