module Row = Storage.Row
module Lsn = Storage.Lsn
module Store = Storage.Store
module Wal = Storage.Wal
module Log_record = Storage.Log_record
module Partition = Spinnaker.Partition
module Config = Spinnaker.Config

type pending_write = {
  needed : int;
  client : int;
  request_id : int;
  replicas : int list;
  coord : Row.coord;
  cell : Row.cell;
  mutable acked_by : int list;
  mutable replied : bool;
}

type pending_read = {
  r_needed : int;
  r_client : int;
  r_request_id : int;
  r_coord : Row.coord;
  mutable replies : (int * Row.cell option) list;
  mutable r_replied : bool;
}

type t = {
  id : int;
  engine : Sim.Engine.t;
  net : Cas_message.t Sim.Network.t;
  partition : Partition.t;
  config : Config.t;
  trace : Sim.Trace.t;
  anti_entropy_period : Sim.Sim_time.span option;
  cpu : Sim.Resource.t;
  wal : Wal.t;
  stores : (int * Store.t) list;
  seqs : (int, int ref) Hashtbl.t;  (** local per-range LSN counters *)
  clock_skew_us : int;  (** LWW conflicts need imperfect clocks to matter *)
  pending_writes : (int, pending_write) Hashtbl.t;
  pending_reads : (int, pending_read) Hashtbl.t;
  pending_hints : (int, int * Row.coord * Row.cell) Hashtbl.t;  (** req -> (dst, ...) *)
  mutable next_req : int;
  mutable repairs : int;
  mutable alive : bool;
  mutable incarnation : int;
}

let id t = t.id
let alive t = t.alive
let hints_queued t = Hashtbl.length t.pending_hints
let repairs_sent t = t.repairs

let create ~engine ~net ~partition ~config ~trace ~anti_entropy_period ~id =
  let cpu = Sim.Resource.create engine ~name:(Printf.sprintf "cas-cpu-%d" id) ~servers:4 () in
  let disk = Sim.Resource.create engine ~name:(Printf.sprintf "cas-logdisk-%d" id) () in
  let model = Sim.Disk_model.create config.Config.disk in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let wal = Wal.create engine ~disk ~model ~rng ~max_batch:config.Config.wal_max_batch () in
  let stores =
    List.map
      (fun range ->
        ( range,
          Store.create ~cohort:range ~wal ~newer:Row.newer_by_timestamp
            ~flush_bytes:config.Config.flush_bytes
            ~compaction_fanin:config.Config.compaction_fanin
            ~max_sstables:config.Config.max_sstables
            ~cache_capacity:config.Config.row_cache_capacity () ))
      (Partition.ranges_of_node partition ~node:id)
  in
  let seqs = Hashtbl.create 8 in
  List.iter (fun (range, _) -> Hashtbl.replace seqs range (ref 0)) stores;
  {
    id;
    engine;
    net;
    partition;
    config;
    trace;
    anti_entropy_period;
    cpu;
    wal;
    stores;
    seqs;
    clock_skew_us = Sim.Rng.int (Sim.Rng.split (Sim.Engine.rng engine)) 2000 - 1000;
    pending_writes = Hashtbl.create 64;
    pending_reads = Hashtbl.create 64;
    pending_hints = Hashtbl.create 16;
    next_req = 0;
    repairs = 0;
    alive = false;
    incarnation = 0;
  }


let read_local t coord =
  let range = Partition.route t.partition (fst coord) in
  match List.assoc_opt range t.stores with
  | Some store -> Store.get store coord
  | None -> None

let local_timestamp t = Sim.Sim_time.time_to_us (Sim.Engine.now t.engine) + t.clock_skew_us

let next_lsn t range =
  let counter = Hashtbl.find t.seqs range in
  incr counter;
  Lsn.make ~epoch:0 ~seq:!counter

let send t ~dst msg =
  if t.alive then Sim.Network.send t.net ~src:t.id ~dst ~size:(Cas_message.size msg) msg

let guard t k =
  let inc = t.incarnation in
  fun x -> if t.alive && t.incarnation = inc then k x

let replicas_of t key =
  let range = Partition.route t.partition key in
  (range, Partition.cohort t.partition ~range)

(* --- replica side ---------------------------------------------------- *)

(* Apply a replicated cell locally: log it, force, apply to the memtable,
   then ack if the coordinator asked for one. Last-writer-wins: the store's
   [newer_by_timestamp] keeps the newest cell on overlap. *)
let replica_apply t ~req ~coord ~(cell : Row.cell) ~reply_to =
  let service = Sim.Sim_time.of_us_f t.config.Config.follower_write_service_us in
  Sim.Resource.submit t.cpu ~service
    (guard t (fun () ->
         let range = Partition.route t.partition (fst coord) in
         match List.assoc_opt range t.stores with
         | None -> ()
         | Some store ->
           let lsn = next_lsn t range in
           let cell = { cell with lsn } in
           let key, col = coord in
           let op =
             match cell.value with
             | Some value -> Log_record.Put { key; col; value; version = cell.version }
             | None -> Log_record.Delete { key; col; version = cell.version }
           in
           Wal.append t.wal (Log_record.write ~cohort:range ~lsn ~timestamp:cell.timestamp op);
           Wal.force t.wal
             (guard t (fun () ->
                  Store.apply store ~lsn ~timestamp:cell.timestamp op;
                  match req with
                  | Some req ->
                    send t ~dst:reply_to
                      (Cas_message.Replica_write_ack { req; from = t.id })
                  | None -> ()))))

let replica_read t ~req ~coord ~reply_to =
  let service = Sim.Sim_time.of_us_f t.config.Config.read_service_us in
  Sim.Resource.submit t.cpu ~service
    (guard t (fun () ->
         let cell = read_local t coord in
         send t ~dst:reply_to (Cas_message.Replica_read_reply { req; from = t.id; cell })))

(* --- coordinator side ------------------------------------------------ *)

let coordinate_write t ~client ~request_id ~key ~col ~value ~level =
  let service = Sim.Sim_time.of_us_f t.config.Config.write_service_us in
  Sim.Resource.submit t.cpu ~service
    (guard t (fun () ->
         let _, replicas = replicas_of t key in
         let cell : Row.cell =
           { value; version = 0; lsn = Lsn.zero; timestamp = local_timestamp t; txn_ts = None }
         in
         let req = t.next_req in
         t.next_req <- req + 1;
         let pending =
           {
             needed = Cas_message.acks_needed level;
             client;
             request_id;
             replicas;
             coord = (key, col);
             cell;
             acked_by = [];
             replied = false;
           }
         in
         Hashtbl.replace t.pending_writes req pending;
         (* A write is sent to all replicas regardless of level (§9). *)
         List.iter
           (fun r ->
             send t ~dst:r
               (Cas_message.Replica_write
                  { req = Some req; coord = (key, col); cell; reply_to = t.id }))
           replicas;
         (* Hinted handoff: replicas that have not acked after a grace period
            get their write stored as a hint and replayed until delivered. *)
         ignore
           (Sim.Engine.schedule t.engine ~after:(Sim.Sim_time.ms 500)
              (guard t (fun () ->
                   match Hashtbl.find_opt t.pending_writes req with
                   | None -> ()
                   | Some p ->
                     Hashtbl.remove t.pending_writes req;
                     List.iter
                       (fun r ->
                         if not (List.mem r p.acked_by) then begin
                           let hint_req = t.next_req in
                           t.next_req <- hint_req + 1;
                           Hashtbl.replace t.pending_hints hint_req (r, p.coord, p.cell)
                         end)
                       p.replicas)))))

let write_ack t ~req ~from =
  (match Hashtbl.find_opt t.pending_writes req with
  | Some p ->
    if not (List.mem from p.acked_by) then p.acked_by <- from :: p.acked_by;
    if (not p.replied) && List.length p.acked_by >= p.needed then begin
      p.replied <- true;
      send t ~dst:p.client (Cas_message.Write_reply { request_id = p.request_id })
    end
  | None -> ());
  (* Or it may acknowledge a hint replay. *)
  match Hashtbl.find_opt t.pending_hints req with
  | Some _ -> Hashtbl.remove t.pending_hints req
  | None -> ()

let coordinate_read t ~client ~request_id ~key ~col ~level =
  match level with
  | Cas_message.One ->
    (* A weak read accesses just one replica (§9) — the coordinator itself,
       since clients route to a replica of the key. *)
    let service = Sim.Sim_time.of_us_f t.config.Config.read_service_us in
    Sim.Resource.submit t.cpu ~service
      (guard t (fun () ->
           let cell = read_local t (key, col) in
           send t ~dst:client (Cas_message.Read_reply { request_id; cell })))
  | Cas_message.Quorum ->
    (* A quorum read accesses two replicas and checks for conflicts (§9). *)
    let service = Sim.Sim_time.of_us_f (t.config.Config.read_service_us /. 2.0) in
    Sim.Resource.submit t.cpu ~service
      (guard t (fun () ->
           let _, replicas = replicas_of t key in
           let req = t.next_req in
           t.next_req <- req + 1;
           Hashtbl.replace t.pending_reads req
             {
               r_needed = 2;
               r_client = client;
               r_request_id = request_id;
               r_coord = (key, col);
               replies = [];
               r_replied = false;
             };
           List.iter
             (fun r ->
               send t ~dst:r
                 (Cas_message.Replica_read { req; coord = (key, col); reply_to = t.id }))
             replicas))

let newest cells =
  List.fold_left
    (fun best (_, cell) ->
      match (best, cell) with
      | None, Some c -> Some c
      | Some b, Some c when Row.newer_by_timestamp c b -> Some c
      | _ -> best)
    None cells

let read_reply t ~req ~from ~cell =
  match Hashtbl.find_opt t.pending_reads req with
  | None -> ()
  | Some p ->
    p.replies <- (from, cell) :: p.replies;
    let resolved = newest p.replies in
    if (not p.r_replied) && List.length p.replies >= p.r_needed then begin
      p.r_replied <- true;
      let visible =
        match resolved with
        | Some c when not (Row.is_tombstone c) -> Some c
        | _ -> None
      in
      send t ~dst:p.r_client (Cas_message.Read_reply { request_id = p.r_request_id; cell = visible })
    end;
    (* Read repair: push the resolved newest cell to any stale replier. *)
    (match resolved with
    | Some best ->
      List.iter
        (fun (r, c) ->
          let stale =
            match c with Some c -> Row.newer_by_timestamp best c | None -> true
          in
          if stale then begin
            t.repairs <- t.repairs + 1;
            send t ~dst:r
              (Cas_message.Replica_write
                 { req = None; coord = p.r_coord; cell = best; reply_to = t.id })
          end)
        p.replies
    | None -> ());
    if List.length p.replies >= 3 then Hashtbl.remove t.pending_reads req

(* --- hint replay ------------------------------------------------------ *)

let start_hint_replay t =
  let rec loop () =
    if t.alive then begin
      Hashtbl.iter
        (fun req (dst, coord, cell) ->
          send t ~dst
            (Cas_message.Replica_write { req = Some req; coord; cell; reply_to = t.id }))
        t.pending_hints;
      ignore (Sim.Engine.schedule t.engine ~after:(Sim.Sim_time.sec 1) (guard t loop))
    end
  in
  ignore (Sim.Engine.schedule t.engine ~after:(Sim.Sim_time.sec 1) (guard t loop))

(* --- anti-entropy ------------------------------------------------------ *)

let start_anti_entropy t =
  match t.anti_entropy_period with
  | None -> ()
  | Some period ->
    let rec loop () =
      if t.alive then begin
        List.iter
          (fun (range, store) ->
            (* The range's first replica initiates tree exchanges. *)
            if Partition.primary t.partition ~range = t.id then begin
              let tree = Merkle.build (Store.all_cells store) in
              List.iter
                (fun peer ->
                  if peer <> t.id then
                    send t ~dst:peer
                      (Cas_message.Tree_exchange { range; tree; reply_to = t.id }))
                (Partition.cohort t.partition ~range)
            end)
          t.stores;
        ignore (Sim.Engine.schedule t.engine ~after:period (guard t loop))
      end
    in
    ignore (Sim.Engine.schedule t.engine ~after:period (guard t loop))

let handle_tree_exchange t ~range ~tree ~reply_to =
  match List.assoc_opt range t.stores with
  | None -> ()
  | Some store ->
    let mine = Merkle.build (Store.all_cells store) in
    let differing = Merkle.diff mine tree in
    if differing <> [] then begin
      Sim.Trace.emitf t.trace ~tag:"anti_entropy" "r%d n%d<->n%d %d coords" range t.id
        reply_to (List.length differing);
      (* Pull the peer's versions and push ours: both sides converge. *)
      send t ~dst:reply_to (Cas_message.Tree_cells_request { range; coords = differing; reply_to = t.id });
      let cells =
        List.filter_map
          (fun coord -> Option.map (fun c -> (coord, c)) (Store.get store coord))
          differing
      in
      if cells <> [] then send t ~dst:reply_to (Cas_message.Tree_cells { range; cells })
    end

let handle_tree_cells_request t ~range ~coords ~reply_to =
  match List.assoc_opt range t.stores with
  | None -> ()
  | Some store ->
    let cells =
      List.filter_map
        (fun coord -> Option.map (fun c -> (coord, c)) (Store.get store coord))
        coords
    in
    if cells <> [] then send t ~dst:reply_to (Cas_message.Tree_cells { range; cells })

let handle_tree_cells t ~range ~cells =
  ignore range;
  List.iter
    (fun (coord, (cell : Row.cell)) ->
      replica_apply t ~req:None ~coord ~cell ~reply_to:t.id)
    cells

(* --- dispatch ---------------------------------------------------------- *)

let handle t (env : Cas_message.t Sim.Network.envelope) =
  if t.alive then begin
    match env.payload with
    | Cas_message.Client_read { client; request_id; key; col; level } ->
      coordinate_read t ~client ~request_id ~key ~col ~level
    | Cas_message.Client_write { client; request_id; key; col; value; level } ->
      coordinate_write t ~client ~request_id ~key ~col ~value ~level
    | Cas_message.Replica_read { req; coord; reply_to } -> replica_read t ~req ~coord ~reply_to
    | Cas_message.Replica_read_reply { req; from; cell } -> read_reply t ~req ~from ~cell
    | Cas_message.Replica_write { req; coord; cell; reply_to } ->
      replica_apply t ~req ~coord ~cell ~reply_to
    | Cas_message.Replica_write_ack { req; from } -> write_ack t ~req ~from
    | Cas_message.Tree_exchange { range; tree; reply_to } ->
      handle_tree_exchange t ~range ~tree ~reply_to
    | Cas_message.Tree_cells_request { range; coords; reply_to } ->
      handle_tree_cells_request t ~range ~coords ~reply_to
    | Cas_message.Tree_cells { range; cells } -> handle_tree_cells t ~range ~cells
    | Cas_message.Read_reply _ | Cas_message.Write_reply _ -> ()
  end

let start t =
  t.alive <- true;
  Sim.Network.register t.net ~node:t.id (handle t);
  start_hint_replay t;
  start_anti_entropy t

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.incarnation <- t.incarnation + 1;
    Sim.Network.set_up t.net t.id false;
    Wal.crash t.wal;
    List.iter (fun (_, store) -> Store.crash store) t.stores;
    Hashtbl.reset t.pending_writes;
    Hashtbl.reset t.pending_reads;
    Hashtbl.reset t.pending_hints;
    Sim.Trace.emitf t.trace ~tag:"node_crash" "cas n%d" t.id
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.incarnation <- t.incarnation + 1;
    Sim.Network.register t.net ~node:t.id (handle t);
    List.iter
      (fun (range, store) ->
        let lst = Store.recover_all store in
        Hashtbl.replace t.seqs range (ref lst.Lsn.seq))
      t.stores;
    start_hint_replay t;
    start_anti_entropy t;
    Sim.Trace.emitf t.trace ~tag:"node_restart" "cas n%d" t.id
  end

let lose_disk t =
  Wal.wipe t.wal;
  List.iter (fun (_, store) -> Store.wipe store) t.stores

let failure_target t =
  Sim.Failure.
    {
      label = Printf.sprintf "cas-node-%d" t.id;
      crash = (fun () -> crash t);
      restart = (fun () -> restart t);
      lose_disk = (fun () -> lose_disk t);
    }
