(** Merkle trees over a replica's key space — the Dynamo-style anti-entropy
    primitive (§2.3): two replicas compare trees and transfer only the
    buckets whose hashes differ.

    Coordinates are hashed into a fixed number of buckets (so two replicas'
    trees always align structurally); each bucket's hash covers its
    coordinates and cell contents. [diff] returns every coordinate living in
    a differing bucket: a superset of the truly divergent coordinates (bucket
    collisions can add a few extra), never missing one — exchanging the
    returned cells always reconciles the replicas. *)

type t

val build : (Storage.Row.coord * Storage.Row.cell) list -> t
(** Input must be sorted ascending by coordinate (duplicates not allowed). *)

val root_hash : t -> int

val equal : t -> t -> bool
(** Root hashes match (identical content with overwhelming probability). *)

val diff : t -> t -> Storage.Row.coord list
(** Union of both sides' coordinates in differing buckets, ascending.
    Complete: contains every coordinate whose cell differs (or exists on
    only one side). Empty iff the trees are equal. *)

val leaf_count : t -> int
(** Number of coordinates covered. *)

val depth : t -> int
(** Depth of the implied binary tree over buckets (message-size model). *)
