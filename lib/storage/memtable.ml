module Coord_map = Map.Make (struct
  type t = Row.coord

  let compare = Row.compare_coord
end)

type t = {
  mutable cells : Row.cell Coord_map.t;
  mutable bytes : int;
  mutable max_lsn : Lsn.t;
}

let create () = { cells = Coord_map.empty; bytes = 0; max_lsn = Lsn.zero }

let cell_bytes (key, col) (cell : Row.cell) =
  String.length key + String.length col
  + (match cell.value with Some v -> String.length v | None -> 0)
  + 32

let put t ?newer coord cell =
  let keep_existing =
    match (newer, Coord_map.find_opt coord t.cells) with
    | Some newer, Some existing -> newer existing cell
    | _ -> false
  in
  if not keep_existing then begin
    (match Coord_map.find_opt coord t.cells with
    | Some old -> t.bytes <- t.bytes - cell_bytes coord old
    | None -> ());
    t.cells <- Coord_map.add coord cell t.cells;
    t.bytes <- t.bytes + cell_bytes coord cell;
    t.max_lsn <- Lsn.max t.max_lsn cell.lsn
  end

let get t coord = Coord_map.find_opt coord t.cells
let size t = Coord_map.cardinal t.cells
let approx_bytes t = t.bytes
let is_empty t = Coord_map.is_empty t.cells
let to_sorted_list t = Coord_map.bindings t.cells

let range t ~low ~high =
  (* Seek to the first coord at or after (low, "") and walk forward until the
     key reaches [high]: O(log n + slice), not a full-map fold. *)
  let rec collect seq acc =
    match seq () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons ((((key, _) as coord), cell), rest) ->
      if String.compare key high >= 0 then List.rev acc
      else collect rest ((coord, cell) :: acc)
  in
  collect (Coord_map.to_seq_from (low, "") t.cells) []
let iter t f = Coord_map.iter f t.cells
let to_seq_from t ~low = Coord_map.to_seq_from (low, "") t.cells

let clear t =
  t.cells <- Coord_map.empty;
  t.bytes <- 0;
  t.max_lsn <- Lsn.zero

let max_lsn t = t.max_lsn
