(** Two-part log sequence numbers.

    An LSN is [epoch.seq] (Appendix B): the epoch is incremented in Zookeeper
    on every leader takeover, guaranteeing that a new leader assigns LSNs
    greater than any previously used in the cohort; the sequence number grows
    within an epoch. LSNs play the role of Paxos proposal numbers. *)

type t = { epoch : int; seq : int }

val zero : t
(** [0.0]: smaller than every assigned LSN. *)

val make : epoch:int -> seq:int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val next : t -> t
(** Successor within the same epoch. *)

val with_epoch : epoch:int -> t -> t
(** [with_epoch ~epoch t] keeps the sequence number, replaces the epoch. *)

val pp : Format.formatter -> t -> unit
(** Prints [epoch.seq], matching the paper's notation. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} ([epoch.seq]); [None] on malformed input. *)
