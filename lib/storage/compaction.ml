let build_table ~newer ?(drop_tombstones = false) sources =
  let it = Iterator.merge ~newer sources in
  let entries =
    Iterator.fold it
      (fun acc coord cell ->
        if drop_tombstones && Row.is_tombstone cell then acc else (coord, cell) :: acc)
      []
  in
  Sstable.build (List.rev entries)

let merge ~newer ?(drop_tombstones = false) tables =
  build_table ~newer ~drop_tombstones (List.map (fun t -> Iterator.of_sstable t) tables)

type plan = All | Run of { start : int; length : int }

let default_growth = 2.0

let plan ~fanin ~max_tables ?(growth = default_growth) tables =
  let n = List.length tables in
  if n = 0 then None
  else if n >= max_tables then Some All
  else if n < fanin then None
  else begin
    let bytes = Array.of_list (List.map Sstable.approx_bytes tables) in
    let similar lo hi = float_of_int hi <= growth *. float_of_int (Stdlib.max 1 lo) in
    (* Cheapest window of [fanin] adjacent similar-sized tables. Adjacency
       keeps the newest-first stacking order intact when the merged table is
       spliced back in place of the run. *)
    let best = ref None in
    for start = 0 to n - fanin do
      let lo = ref max_int and hi = ref 0 and total = ref 0 in
      for i = start to start + fanin - 1 do
        lo := Stdlib.min !lo bytes.(i);
        hi := Stdlib.max !hi bytes.(i);
        total := !total + bytes.(i)
      done;
      if similar !lo !hi then
        match !best with
        | Some (_, t) when t <= !total -> ()
        | _ -> best := Some (start, !total)
    done;
    match !best with
    | None -> None
    | Some (start, _) ->
      (* Absorb older tables that still fit the tier, up to twice the fan-in,
         so one merge retires a whole tier rather than leaving a remainder. *)
      let lo = ref max_int and hi = ref 0 in
      for i = start to start + fanin - 1 do
        lo := Stdlib.min !lo bytes.(i);
        hi := Stdlib.max !hi bytes.(i)
      done;
      let length = ref fanin in
      while
        start + !length < n
        && !length < 2 * fanin
        && similar
             (Stdlib.min !lo bytes.(start + !length))
             (Stdlib.max !hi bytes.(start + !length))
      do
        lo := Stdlib.min !lo bytes.(start + !length);
        hi := Stdlib.max !hi bytes.(start + !length);
        incr length
      done;
      Some (Run { start; length = !length })
  end

let should_compact tables ~threshold = List.length tables >= threshold
