let merge ~newer ?(drop_tombstones = false) tables =
  let module Coord_map = Map.Make (struct
    type t = Row.coord

    let compare = Row.compare_coord
  end) in
  let best = ref Coord_map.empty in
  List.iter
    (fun table ->
      Sstable.iter table (fun coord cell ->
          match Coord_map.find_opt coord !best with
          | Some existing when newer existing cell -> ()
          | _ -> best := Coord_map.add coord cell !best))
    tables;
  let entries =
    Coord_map.bindings !best
    |> List.filter (fun (_, cell) -> not (drop_tombstones && Row.is_tombstone cell))
  in
  Sstable.build entries

let should_compact tables ~threshold = List.length tables >= threshold
