(** Per-cohort storage: memtable + size-tiered SSTables + LRU row cache +
    shared WAL + skipped-LSN list.

    One [t] exists per (node, key-range) pair. It owns the cohort's slice of
    the node's shared log and implements local recovery (§6.1): after a
    restart the memtable is rebuilt by re-applying durable log records from
    the most recent checkpoint through f.cmt, consulting the skipped-LSN
    list; records after f.cmt stay in the log for the catch-up phase.

    The read/maintenance path is streaming: point reads consult the row
    cache first, then probe memtable and bloom/LSN-pruned SSTables; scans and
    compactions run through {!Iterator}'s k-way heap merge. Compaction is
    size-tiered ({!Compaction.plan}): each merge covers one tier of adjacent
    similar-sized tables, so its work is bounded by the tier's bytes, with a
    full merge (and tombstone GC) only at the [max_sstables] safety valve or
    via {!major_compact}. *)

type t

type read_cost =
  | Cache_hit  (** served from the row cache, no table probed *)
  | Probed of int
      (** resolved against the memtable plus this many SSTable probes
          (bloom- and LSN-pruned tables excluded) *)

val create :
  cohort:int ->
  wal:Wal.t ->
  ?newer:(Row.cell -> Row.cell -> bool) ->
  ?flush_bytes:int ->
  ?compaction_fanin:int ->
  ?max_sstables:int ->
  ?tier_growth:float ->
  ?cache_capacity:int ->
  ?mvcc_depth:int ->
  unit ->
  t
(** [newer] (default {!Row.newer_by_lsn}) resolves overlaps between tables on
    reads and compaction; the eventually consistent baseline passes
    {!Row.newer_by_timestamp}. [flush_bytes] (default 4 MiB) triggers
    memtable flush. [compaction_fanin] (default 4) is the tier width: a
    merge starts once that many adjacent similar-sized tables exist
    (similarity factor [tier_growth], default {!Compaction.default_growth}).
    [max_sstables] (default 16) forces a full merge with tombstone GC.
    [cache_capacity] (default 0 = disabled) bounds the LRU row cache in
    entries. [mvcc_depth] (default 64) caps each coordinate's in-memory
    version chain; snapshot reads below the cap fall back to the plain
    durable-LSN rule. *)

val cohort : t -> int

val wal : t -> Wal.t

val bounds : t -> (Row.key * Row.key) option
(** The range's [lo, hi) key bounds, when set. Cells outside the bounds
    (possible once SSTables are shared across a range split) are filtered
    from applies, scans, exports, catch-up, and compaction output. *)

val set_bounds : t -> lo:Row.key -> hi:Row.key -> unit

val inherited_upto : t -> Lsn.t
(** For a split child sharing the parent's SSTables: the highest LSN those
    tables may contain. [Lsn.zero] otherwise. Survives {!crash} (the tables
    themselves are durable); cleared by {!wipe}. *)

val split_point : t -> Row.key option
(** The median distinct key strictly inside the store's population — a
    balanced place to split the range — or [None] if the population is too
    small or too skewed to yield an interior key. *)

val split_child : t -> cohort:int -> lo:Row.key -> hi:Row.key -> t
(** A new store for the child range [[lo, hi)] sharing this store's
    (immutable) SSTables — no data copied or rewritten; the sibling's cells
    are dropped lazily by the child's own compactions. The parent's memtable
    must be flushed first. The child's flush horizon and [inherited_upto]
    are the shared tables' max LSN. *)

val skipped : t -> Skipped_lsns.t

val apply : t -> lsn:Lsn.t -> timestamp:int -> Log_record.op -> unit
(** Apply a committed write to the memtable, flushing/compacting as needed
    and invalidating the written coordinates in the row cache. Idempotent:
    re-applying a record yields the same state. *)

val get : t -> Row.coord -> Row.cell option
(** The newest cell across memtable and SSTables — including tombstones, so
    callers can expose version numbers for conditional puts. Cached: repeat
    lookups of a coordinate (negative results included) are O(1) until a
    write invalidates it or it falls out of the LRU. *)

val get_profiled : t -> Row.coord -> Row.cell option * read_cost
(** {!get} plus where the answer came from — the input to the leader's read
    CPU cost model. *)

val read : t -> Row.coord -> Row.cell option
(** Like {!get} but tombstones map to [None] (client-visible read). *)

val current_version : t -> Row.coord -> int
(** Version of the newest cell, 0 if the coordinate was never written. *)

(** {2 MVCC snapshot reads and the transaction intent index} *)

type snap_result =
  | Snap_cell of Row.cell  (** visible at the fence (may be a tombstone) *)
  | Snap_none  (** nothing visible at the fence *)
  | Snap_blocked of string
      (** an unresolved write intent of this transaction sits at or below
          the fence; the reader must wait for (or force) its resolution *)

val snapshot_get : t -> Row.coord -> fence:Lsn.t -> fence_ts:int -> snap_result
(** The coordinate's newest version visible under a snapshot anchored at
    this range's commit-LSN [fence] and the snapshot's global commit
    timestamp [fence_ts] (µs). Plain writes are visible iff their LSN is at
    or below [fence]; transactionally installed versions iff their commit
    timestamp is at or below [fence_ts]. Callers must only invoke this once
    the applied commit point has reached [fence]. Never served from the LRU
    row cache. *)

val head_info : t -> Row.coord -> (Lsn.t * int option) option
(** Newest installed version of a base coordinate: its LSN and, when it was
    installed by a committed transaction, that transaction's commit
    timestamp. The first-committer-wins conflict check's input. *)

val intent_txn_at : t -> Row.coord -> string option
(** The transaction holding an unresolved write intent on this (base)
    coordinate, if any. *)

val intents_of : t -> string -> (Row.coord * string option) list
(** The transaction's unresolved intents in this store: base coordinates
    with proposed values ([None] = proposed delete), ascending by
    coordinate. Empty once resolved. *)

val intent_anchor : t -> string -> Row.key option
(** The coordinator anchor key recorded in the transaction's intents. *)

val live_intents : t -> (string * Row.key * Row.coord list) list
(** Every unresolved transaction in this store: (txn, anchor, coords). The
    orphaned-intent audit's input; sorted for determinism. *)

val in_doubt : t -> now:int -> older_than:int -> (string * Row.key * Row.key) list
(** Transactions whose intents have been unresolved for at least
    [older_than] µs as of [now]: (txn, anchor, sample key). The presumed-
    abort sweep queries the anchor's cohort and resolves these. *)

val scan :
  t -> low:Row.key -> high:Row.key -> limit:int ->
  (Row.key * (Row.column * Row.cell) list) list
(** Rows with [low <= key < high], ascending by key, at most [limit] rows.
    Each row lists its live columns (per-column newest cell wins across
    memtable and SSTables; fully tombstoned rows are omitted). Streaming:
    stops reading the merged cursors as soon as [limit] rows are complete. *)

val flushed_upto : t -> Lsn.t

val sstable_count : t -> int

val sstable_bytes : t -> int
(** Total approximate bytes across current SSTables. *)

val memtable_size : t -> int
(** Entries currently in the memtable. *)

val memtable_bytes : t -> int
(** Approximate memtable payload bytes (the flush-threshold gauge). *)

val flush : t -> unit
(** Force a memtable flush (also invoked automatically by [apply]). Appends a
    checkpoint record, then rolls the WAL over for this cohort only once the
    checkpoint is durable — GC-ing before the force opens a crash window in
    which the log holds neither the flushed writes nor the checkpoint. *)

val major_compact : t -> unit
(** Merge every SSTable into one, dropping tombstones — the explicit
    full-range GC; automatic compaction is tier-scoped. *)

val crash : t -> unit
(** Lose the memtable and row cache (volatile), including the in-memory
    flush horizon; the next {!recover} rederives it from the durable
    checkpoint. The WAL itself is crashed separately by the node, since it
    is shared. *)

val wipe : t -> unit
(** Lose SSTables and the skipped-LSN list too (disk failure). *)

val recover : t -> Lsn.t * Lsn.t
(** Local recovery. Rebuilds the memtable from the checkpoint through f.cmt
    and returns [(f.cmt, f.lst)] as read from stable storage. *)

val recover_all : t -> Lsn.t
(** Local recovery without a commit horizon: re-apply every durable record
    after the checkpoint and return the last LSN. Used by the eventually
    consistent baseline, where any logged write is immediately applied and
    divergence is reconciled by read repair / anti-entropy instead. *)

val all_cells : t -> (Row.coord * Row.cell) list
(** The newest cell for every coordinate (tombstones included), ascending by
    coordinate — Merkle-tree build input for anti-entropy. *)

val committed_cells_in : t -> above:Lsn.t -> upto:Lsn.t -> (Row.coord * Row.cell) list
(** Committed writes with LSN in (above, upto], ascending by LSN — served
    from the log when available, otherwise from SSTables tagged with an
    overlapping LSN range (§6.1). Used by leader-side catch-up. Coordinates
    only touched by plain writes collapse to their newest cell; a coordinate
    with any transactionally installed version in the window keeps every
    version, because the receiver rebuilds its MVCC chain from these cells
    and a missing intermediate version would turn a later interval snapshot
    read into a silent stale read. *)

val chain_history_cells : t -> (Row.coord * Row.cell) list
(** Retained MVCC versions behind the newest cell (the chain tails), for
    coordinates a committed transaction ever touched. Shipped with
    {!all_cells} in migration snapshots so the joiner can answer interval
    snapshot reads below a coordinate's newest version; plain-only chains
    are skipped (their visibility is decided by LSN alone). *)

val durable_write_lsns_in : t -> above:Lsn.t -> upto:Lsn.t -> Lsn.t list
(** LSNs of this cohort's durable log records in (above, upto] — the
    follower's side of logical-truncation bookkeeping. *)

val served_from_sstables : t -> int
(** How many catch-up requests could not be served from the log alone. *)

val sstables_skipped : t -> int
(** SSTables pruned from reads without probing: bloom-filter misses and
    tables whose [max_lsn] (point reads under LSN order) or key span (scans)
    could not beat the best cell already found. *)

val sstables_probed : t -> int
(** SSTables actually probed (binary-searched) by point reads. *)

(** {2 Row-cache counters} (all 0 when the cache is disabled) *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_evictions : t -> int
val cache_invalidations : t -> int
val cache_size : t -> int

val cache_hit_rate : t -> float
(** hits / (hits + misses); 0.0 before any lookup or when disabled. *)

(** {2 Compaction work accounting} *)

val compactions : t -> int
(** Merges run (tier-scoped and full). *)

val full_compactions : t -> int
(** Merges that covered every table (tombstone GC points). *)

val last_compaction_input_bytes : t -> int

val max_compaction_input_bytes : t -> int
(** Largest single-merge input — stays near one tier's bytes under tiered
    compaction instead of tracking the whole store. *)

val total_compaction_input_bytes : t -> int
(** Cumulative merge input (the write-amplification numerator). *)

val max_store_bytes_at_compaction : t -> int
(** Largest total SSTable footprint observed when a compaction ran — the
    baseline the tier-bounded-work claim is measured against. *)
