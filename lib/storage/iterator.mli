(** Streaming k-way merge over sorted cursors.

    The shared machinery of the LSM read path: {!Compaction.merge},
    [Store.scan], [Store.all_cells], and the memtable-flush table build all
    consume ascending [(coord, cell)] cursors through one binary-heap merge
    instead of materialising a per-call coordinate map.

    Duplicate coordinates across sources resolve exactly as the former
    map-based merges did: sources are ranked by their position in the list
    (first = consulted first, i.e. memtable before SSTables, newer tables
    before older ones) and a later cell replaces the current winner unless
    the winner is strictly [newer]. *)

type source = unit -> (Row.coord * Row.cell) option
(** A destructive cursor yielding entries in ascending {!Row.compare_coord}
    order; [None] once exhausted. *)

val of_sorted_list : (Row.coord * Row.cell) list -> source

val of_seq : ?high:Row.key -> (Row.coord * Row.cell) Seq.t -> source
(** Cursor over a lazy ascending sequence (e.g. {!Memtable.to_seq_from}),
    stopping before the first key at or beyond [high]. *)

val of_sstable : ?low:Row.key -> ?high:Row.key -> Sstable.t -> source
(** Cursor over an SSTable, optionally restricted to [low <= key < high];
    seeks to [low] by binary search. *)

type t

val merge : newer:(Row.cell -> Row.cell -> bool) -> source list -> t
(** O(k) heap build; each {!next} costs O(log k) per source holding the
    minimal coordinate. *)

val next : t -> (Row.coord * Row.cell) option
(** The next coordinate in ascending order with its winning cell (one result
    per distinct coordinate). Lazy: consumers that stop early (scans with a
    row limit) never touch the rest of the sources. *)

val iter : t -> (Row.coord -> Row.cell -> unit) -> unit

val fold : t -> ('a -> Row.coord -> Row.cell -> 'a) -> 'a -> 'a

val to_list : t -> (Row.coord * Row.cell) list
