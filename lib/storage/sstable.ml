type t = {
  coords : Row.coord array;
  cells : Row.cell array;
  bloom : Bloom.t;
  min_lsn : Lsn.t;
  max_lsn : Lsn.t;
  bytes : int;
}

let build entries =
  let n = List.length entries in
  let coords = Array.make n ("", "") in
  let cells =
    Array.make n Row.{ value = None; version = 0; lsn = Lsn.zero; timestamp = 0; txn_ts = None }
  in
  let bloom = Bloom.create ~expected:(Stdlib.max 1 n) () in
  let min_lsn = ref Lsn.zero and max_lsn = ref Lsn.zero and bytes = ref 0 in
  let first = ref true in
  List.iteri
    (fun i (coord, (cell : Row.cell)) ->
      if i > 0 && Row.compare_coord coords.(i - 1) coord >= 0 then
        invalid_arg "Sstable.build: entries not strictly ascending";
      coords.(i) <- coord;
      cells.(i) <- cell;
      Bloom.add bloom (fst coord);
      bytes :=
        !bytes + String.length (fst coord) + String.length (snd coord)
        + (match cell.value with Some v -> String.length v | None -> 0)
        + 32;
      if !first then begin
        min_lsn := cell.lsn;
        max_lsn := cell.lsn;
        first := false
      end
      else begin
        min_lsn := Lsn.min !min_lsn cell.lsn;
        max_lsn := Lsn.max !max_lsn cell.lsn
      end)
    entries;
  { coords; cells; bloom; min_lsn = !min_lsn; max_lsn = !max_lsn; bytes = !bytes }

let binary_search t coord =
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      match Row.compare_coord t.coords.(mid) coord with
      | 0 -> Some mid
      | c when c < 0 -> go (mid + 1) hi
      | _ -> go lo mid
    end
  in
  go 0 (Array.length t.coords)

let get t coord =
  if not (Bloom.mem t.bloom (fst coord)) then None
  else Option.map (fun i -> t.cells.(i)) (binary_search t coord)

let may_contain_key t key = Bloom.mem t.bloom key
let count t = Array.length t.coords

let iter t f =
  for i = 0 to Array.length t.coords - 1 do
    f t.coords.(i) t.cells.(i)
  done

let to_list t =
  List.init (Array.length t.coords) (fun i -> (t.coords.(i), t.cells.(i)))

let min_lsn t = t.min_lsn
let max_lsn t = t.max_lsn
let min_key t = if Array.length t.coords = 0 then None else Some (fst t.coords.(0))

let max_key t =
  let n = Array.length t.coords in
  if n = 0 then None else Some (fst t.coords.(n - 1))

let cells_with_lsn_in t ~above ~upto =
  let acc = ref [] in
  for i = Array.length t.coords - 1 downto 0 do
    let cell = t.cells.(i) in
    if Lsn.(cell.lsn > above) && Lsn.(cell.lsn <= upto) then
      acc := (t.coords.(i), cell) :: !acc
  done;
  !acc

(* First index whose key is >= low (keys are the major sort component). *)
let lower_bound t low =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if String.compare (fst t.coords.(mid)) low < 0 then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length t.coords)

let seek = lower_bound
let entry t i = (t.coords.(i), t.cells.(i))

let range t ~low ~high =
  let acc = ref [] in
  let n = Array.length t.coords in
  let rec walk i =
    if i < n then begin
      let key = fst t.coords.(i) in
      if String.compare key high < 0 then begin
        acc := (t.coords.(i), t.cells.(i)) :: !acc;
        walk (i + 1)
      end
    end
  in
  walk (lower_bound t low);
  List.rev !acc

let approx_bytes t = t.bytes
