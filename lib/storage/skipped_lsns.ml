module Lsn_set = Set.Make (struct
  type t = Lsn.t

  let compare = Lsn.compare
end)

type t = { mutable set : Lsn_set.t }

let create () = { set = Lsn_set.empty }
let add t lsns = t.set <- List.fold_left (fun s l -> Lsn_set.add l s) t.set lsns
let mem t lsn = Lsn_set.mem lsn t.set
let count t = Lsn_set.cardinal t.set
let is_empty t = Lsn_set.is_empty t.set
let to_list t = Lsn_set.elements t.set
let gc_upto t lsn = t.set <- Lsn_set.filter (fun l -> Lsn.(l > lsn)) t.set
let clear t = t.set <- Lsn_set.empty
