(** Logical log truncation (§6.1.1).

    A follower's log cannot be physically truncated at f.cmt because the log
    is shared with other cohorts, so LSNs of discarded (never-committed)
    records are remembered in a skipped-LSN list kept on stable storage;
    local recovery consults it before re-applying records. *)

type t

val create : unit -> t

val add : t -> Lsn.t list -> unit

val mem : t -> Lsn.t -> bool

val count : t -> int

val is_empty : t -> bool

val to_list : t -> Lsn.t list
(** Ascending. *)

val gc_upto : t -> Lsn.t -> unit
(** Forget skipped LSNs [<=] the argument — managed and garbage-collected
    along with the log files they shadow. *)

val clear : t -> unit
