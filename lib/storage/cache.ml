(* Bounded LRU cache keyed by coordinate, doubly-linked recency list over a
   hash table: O(1) find/put/invalidate.

   The recency list is circular through a sentinel node, so relinking an
   entry on a hit is six pointer writes and zero allocations (the previous
   option-linked list allocated [Some _] wrappers on every promotion, which
   showed up in the read-bench profile: every row-cache hit relinks). *)

type 'v node = {
  key : Row.coord;
  mutable value : 'v;
  mutable prev : 'v node;  (** towards the most recent end *)
  mutable next : 'v node;  (** towards the least recent end *)
}

type 'v t = {
  capacity : int;
  tbl : (Row.coord, 'v node) Hashtbl.t;
  sentinel : 'v node;  (** [sentinel.next] = MRU, [sentinel.prev] = LRU *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  (* The sentinel's key/value are never read; [Obj.magic] only fabricates the
     unused ['v] slot. *)
  let rec sentinel = { key = ("", ""); value = Obj.magic 0; prev = sentinel; next = sentinel } in
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    sentinel;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  let first = t.sentinel.next in
  node.prev <- t.sentinel;
  node.next <- first;
  first.prev <- node;
  t.sentinel.next <- node

let find t key =
  (* [Hashtbl.find] + the preallocated [Not_found] rather than [find_opt]:
     hits are ~90% of row-cache traffic and this spares the [Some] box. *)
  match Hashtbl.find t.tbl key with
  | node ->
    t.hits <- t.hits + 1;
    if t.sentinel.next != node then begin
      unlink node;
      push_front t node
    end;
    Some node.value
  | exception Not_found ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  let node = t.sentinel.prev in
  if node != t.sentinel then begin
    unlink node;
    Hashtbl.remove t.tbl node.key;
    t.evictions <- t.evictions + 1
  end

let put t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    if t.sentinel.next != node then begin
      unlink node;
      push_front t node
    end
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let rec node = { key; value; prev = node; next = node } in
    Hashtbl.replace t.tbl key node;
    push_front t node

let invalidate t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
    unlink node;
    Hashtbl.remove t.tbl key;
    t.invalidations <- t.invalidations + 1

let clear t =
  Hashtbl.reset t.tbl;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel
