(* Bounded LRU cache keyed by coordinate, doubly-linked recency list over a
   hash table: O(1) find/put/invalidate. *)

type 'v node = {
  key : Row.coord;
  mutable value : 'v;
  mutable prev : 'v node option;  (** towards the most recent end *)
  mutable next : 'v node option;  (** towards the least recent end *)
}

type 'v t = {
  capacity : int;
  tbl : (Row.coord, 'v node) Hashtbl.t;
  mutable head : 'v node option;  (** most recently used *)
  mutable tail : 'v node option;  (** least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl node.key;
    t.evictions <- t.evictions + 1

let put t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node

let invalidate t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl key;
    t.invalidations <- t.invalidations + 1

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None
