type t = { data : Bytes.t; nbits : int; nhashes : int }

let create ~expected ?(false_positive_rate = 0.01) () =
  let expected = Stdlib.max 1 expected in
  let ln2 = log 2.0 in
  let nbits =
    int_of_float
      (ceil (-.float_of_int expected *. log false_positive_rate /. (ln2 *. ln2)))
  in
  let nbits = Stdlib.max 64 nbits in
  let nhashes =
    Stdlib.max 1 (int_of_float (Float.round (float_of_int nbits /. float_of_int expected *. ln2)))
  in
  { data = Bytes.make ((nbits + 7) / 8) '\000'; nbits; nhashes }

(* Double hashing: h_i = h1 + i*h2 (Kirsch & Mitzenmacher). *)
let hash_pair s =
  let h1 = Hashtbl.hash s in
  let h2 = Hashtbl.hash (s ^ "\x00bloom") in
  (h1, (2 * h2) + 1)

let set_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set t.data byte (Char.chr (Char.code (Bytes.get t.data byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get t.data byte) land (1 lsl bit) <> 0

let index t h1 h2 i = abs (h1 + (i * h2)) mod t.nbits

let add t s =
  let h1, h2 = hash_pair s in
  for i = 0 to t.nhashes - 1 do
    set_bit t (index t h1 h2 i)
  done

let mem t s =
  let h1, h2 = hash_pair s in
  let rec check i = i >= t.nhashes || (get_bit t (index t h1 h2 i) && check (i + 1)) in
  check 0

let bits t = t.nbits
let hashes t = t.nhashes
