(** Shared write-ahead log with group commit (§4.1, §5).

    One log per node, shared by all of the node's cohorts; a dedicated
    logging device (a {!Sim.Resource.t} with a {!Sim.Disk_model.t} service
    time) serialises forces. Appends are buffered in a volatile tail;
    [force] makes everything appended so far durable. Concurrent force
    requests share a single device force — group commit [DeWitt et al. 84].

    Crash semantics: the volatile tail is lost, the durable prefix survives.
    [wipe] models losing the disk itself.

    Log rollover (§6.1): once a cohort's writes are captured in an SSTable,
    [gc_cohort] drops them from the log; catch-up requests that reach below
    the GC horizon must then be served from SSTables.

    The durable log is stored as a per-cohort LSN index, so the marker and
    range queries below cost O(log n + answer) rather than a scan of the
    whole log, and [gc_cohort] touches only the cohort being rolled over. *)

type t

val create :
  Sim.Engine.t ->
  disk:Sim.Resource.t ->
  model:Sim.Disk_model.t ->
  rng:Sim.Rng.t ->
  ?max_batch:int ->
  unit ->
  t
(** [max_batch] (default 16) bounds how many records one device force covers
    — the log buffer of a primitive log manager (§C). [max_batch:1] disables
    group commit (ablation). A force's service time is the device force cost
    plus the batch bytes over the device's sequential write bandwidth. *)

val model : t -> Sim.Disk_model.t

val append : t -> Log_record.t -> unit
(** Buffered, non-forced append (used for [Commit_upto] markers, §5). *)

val append_and_force : t -> Log_record.t -> (unit -> unit) -> unit

val force : t -> (unit -> unit) -> unit
(** Callback fires once everything appended before this call is durable. *)

val crash : t -> unit
(** Lose the volatile tail; cancel pending force callbacks. *)

val wipe : t -> unit
(** Lose the entire log (disk failure). *)

val durable_records : t -> Log_record.t list
(** Oldest first. What recovery reads after a crash. *)

val durable_count : t -> int

val forces_issued : t -> int
(** Device-level forces (batches), for group-commit accounting. *)

val volatile_bytes : t -> int
(** Bytes buffered in the volatile tail, maintained incrementally (never
    recounted); exposed for group-commit accounting tests. *)

val last_write_lsn : t -> cohort:int -> Lsn.t
(** Largest durable [Write] LSN for the cohort — f.lst after a restart. *)

val last_commit_marker : t -> cohort:int -> Lsn.t
(** Largest durable [Commit_upto] value for the cohort. *)

val last_checkpoint : t -> cohort:int -> Lsn.t
(** Largest durable [Checkpoint] value for the cohort. *)

val durable_writes_in : t -> cohort:int -> above:Lsn.t -> upto:Lsn.t ->
  (Lsn.t * Log_record.op * int * (int * int) option) list
(** Durable [Write] records with LSN in (above, upto], ascending; the [int]
    is the record's timestamp, the option its (client, request id) origin. *)

val gc_cohort : t -> cohort:int -> upto:Lsn.t -> unit
(** Roll over: drop the cohort's durable [Write] records with LSN [<= upto]
    and all but the newest [Commit_upto]/[Checkpoint] markers. *)

val drop_cohort : t -> cohort:int -> unit
(** Forget every record (durable and volatile) for the cohort — the node no
    longer hosts it. Without this, a node re-added to a range it once hosted
    would recover stale commit/checkpoint markers far beyond its (empty)
    replacement store and refuse perfectly good catch-up data. *)

val min_available_write_lsn : t -> cohort:int -> Lsn.t option
(** Smallest durable [Write] LSN still in the log for the cohort, or [None]
    if the log holds none — tells catch-up whether it can be served from the
    log or must fall back to SSTables. *)
