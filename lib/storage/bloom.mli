(** Bloom filter over row keys, attached to each SSTable so point reads skip
    tables that cannot contain the key (Bigtable-style, §4.1). *)

type t

val create : expected:int -> ?false_positive_rate:float -> unit -> t
(** Sizes the bit array and hash count for [expected] insertions at the
    target false-positive rate (default 1%). *)

val add : t -> string -> unit

val mem : t -> string -> bool
(** Never a false negative. *)

val bits : t -> int

val hashes : t -> int
