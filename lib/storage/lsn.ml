type t = { epoch : int; seq : int }

let zero = { epoch = 0; seq = 0 }
let make ~epoch ~seq = { epoch; seq }

let compare a b =
  match Int.compare a.epoch b.epoch with 0 -> Int.compare a.seq b.seq | c -> c

let equal a b = compare a b = 0
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0
let ( > ) a b = compare a b > 0
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let next t = { t with seq = t.seq + 1 }
let with_epoch ~epoch t = { t with epoch }
let pp ppf t = Format.fprintf ppf "%d.%d" t.epoch t.seq
let to_string t = Printf.sprintf "%d.%d" t.epoch t.seq

let of_string s =
  match String.index_opt s '.' with
  | None -> None
  | Some i -> (
    match
      ( int_of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some epoch, Some seq -> Some { epoch; seq }
    | _ -> None)
