type key = string
type column = string

type cell = {
  value : string option;
  version : int;
  lsn : Lsn.t;
  timestamp : int;
  txn_ts : int option;
}

type coord = key * column

let compare_coord (k1, c1) (k2, c2) =
  match String.compare k1 k2 with 0 -> String.compare c1 c2 | c -> c

let equal_coord a b = compare_coord a b = 0

let tombstone ~version ~lsn ~timestamp =
  { value = None; version; lsn; timestamp; txn_ts = None }
let is_tombstone cell = cell.value = None
let newer_by_lsn a b = Lsn.(a.lsn > b.lsn)

let newer_by_timestamp a b =
  match Int.compare a.timestamp b.timestamp with
  | 0 -> Lsn.(a.lsn > b.lsn)
  | c -> c > 0

(* ------------------------------------------------------------------ *)
(* System columns: transaction bookkeeping stored as ordinary cells.

   Write intents and 2PC decision records live in columns prefixed with a
   byte no user column can start with ('\x00'), so they flow through the
   memtable / SSTable / WAL / catch-up / migration machinery unchanged and
   are exactly as durable and replicated as data. Readers filter them. *)

let system_byte = '\x00'
let is_system_col col = String.length col > 0 && col.[0] = system_byte
let intent_prefix = "\x00i:"
let intent_col col = intent_prefix ^ col

let is_intent_col col =
  String.length col >= 3 && String.equal (String.sub col 0 3) intent_prefix

let base_of_intent_col col = String.sub col 3 (String.length col - 3)
let decision_prefix = "\x00d:"
let decision_col txn = decision_prefix ^ txn

let is_decision_col col =
  String.length col >= 3 && String.equal (String.sub col 0 3) decision_prefix

let txn_of_decision_col col = String.sub col 3 (String.length col - 3)

type intent = { i_txn : string; i_anchor : key; i_fence : Lsn.t; i_value : string option }

let sep = '\x01'

let encode_intent { i_txn; i_anchor; i_fence; i_value } =
  Printf.sprintf "%s%c%s%c%s%c%s" i_txn sep i_anchor sep (Lsn.to_string i_fence) sep
    (match i_value with Some v -> "v" ^ v | None -> "d")

let decode_intent s =
  (* The proposed value is the last field and may itself contain the
     separator, so split only the first three fields. *)
  match String.index_opt s sep with
  | None -> None
  | Some a -> (
    match String.index_from_opt s (a + 1) sep with
    | None -> None
    | Some b -> (
      match String.index_from_opt s (b + 1) sep with
      | None -> None
      | Some c -> (
        match Lsn.of_string (String.sub s (b + 1) (c - b - 1)) with
        | None -> None
        | Some fence ->
          let tail = String.sub s (c + 1) (String.length s - c - 1) in
          let value =
            if String.length tail > 0 && tail.[0] = 'v' then
              Some (String.sub tail 1 (String.length tail - 1))
            else None
          in
          Some
            {
              i_txn = String.sub s 0 a;
              i_anchor = String.sub s (a + 1) (b - a - 1);
              i_fence = fence;
              i_value = value;
            })))

let encode_decision ~commit ~ts = Printf.sprintf "%c%c%d" (if commit then 'c' else 'a') sep ts

let decode_decision s =
  match String.split_on_char sep s with
  | [ d; ts ] when d = "c" || d = "a" -> (
    match int_of_string_opt ts with Some ts -> Some (d = "c", ts) | None -> None)
  | _ -> None

let pp_cell ppf c =
  Format.fprintf ppf "{%s v%d @%a}"
    (match c.value with Some v -> String.escaped (if String.length v > 16 then String.sub v 0 16 ^ "..." else v) | None -> "<tombstone>")
    c.version Lsn.pp c.lsn
