type key = string
type column = string

type cell = { value : string option; version : int; lsn : Lsn.t; timestamp : int }
type coord = key * column

let compare_coord (k1, c1) (k2, c2) =
  match String.compare k1 k2 with 0 -> String.compare c1 c2 | c -> c

let equal_coord a b = compare_coord a b = 0
let tombstone ~version ~lsn ~timestamp = { value = None; version; lsn; timestamp }
let is_tombstone cell = cell.value = None
let newer_by_lsn a b = Lsn.(a.lsn > b.lsn)

let newer_by_timestamp a b =
  match Int.compare a.timestamp b.timestamp with
  | 0 -> Lsn.(a.lsn > b.lsn)
  | c -> c > 0

let pp_cell ppf c =
  Format.fprintf ppf "{%s v%d @%a}"
    (match c.value with Some v -> String.escaped (if String.length v > 16 then String.sub v 0 16 ^ "..." else v) | None -> "<tombstone>")
    c.version Lsn.pp c.lsn
