(** Rows, columns, cells.

    Spinnaker's data model (§3): a table maps a row key to any number of
    columns; each column holds an opaque value and a monotonically increasing
    version number managed by the datastore. A cell with [value = None] is a
    tombstone left by a delete. [timestamp] is the write's wall-clock stamp;
    Spinnaker ignores it, the eventually consistent baseline uses it for
    last-writer-wins conflict resolution. *)

type key = string

type column = string

type cell = {
  value : string option;  (** [None] is a tombstone *)
  version : int;
  lsn : Lsn.t;
  timestamp : int;  (** microseconds; Dynamo-style conflict resolution *)
  txn_ts : int option;
      (** commit timestamp when this version was installed by a committed
          multi-key transaction, [None] for plain single-key writes. Carried
          on the cell itself so interval MVCC visibility (txn versions order
          by commit timestamp, plain versions by LSN) survives every path
          that ships materialized cells — SSTable flush, catch-up, snapshot
          migration — rather than living only in a volatile side table. *)
}

type coord = key * column
(** The unit of storage addressing. *)

val compare_coord : coord -> coord -> int
(** Key-major, then column — the SSTable sort order (§4.1). *)

val equal_coord : coord -> coord -> bool

val tombstone : version:int -> lsn:Lsn.t -> timestamp:int -> cell

val is_tombstone : cell -> bool

val newer_by_lsn : cell -> cell -> bool
(** Spinnaker replica ordering: writes apply in LSN order within a cohort. *)

val newer_by_timestamp : cell -> cell -> bool
(** Dynamo/Cassandra ordering: last writer (by timestamp) wins; LSN breaks
    timestamp ties deterministically. *)

(** {2 System columns}

    Transaction bookkeeping (write intents, 2PC decision records) is stored
    in columns prefixed with ['\x00'] — a byte user columns cannot start
    with — so it rides the ordinary cell machinery (memtable, SSTables, WAL,
    catch-up, migration) and is exactly as durable and replicated as data.
    Read paths filter system columns out of user-visible results. *)

val is_system_col : column -> bool

val intent_col : column -> column
(** The system column holding a write intent for user column [col]. *)

val is_intent_col : column -> bool

val base_of_intent_col : column -> column
(** Inverse of {!intent_col}. *)

val decision_col : string -> column
(** The system column on the coordinator's anchor row holding transaction
    [txn]'s commit/abort decision. *)

val is_decision_col : column -> bool

val txn_of_decision_col : column -> string

type intent = {
  i_txn : string;  (** owning transaction id *)
  i_anchor : key;  (** coordinator anchor key (where the decision record lives) *)
  i_fence : Lsn.t;  (** the snapshot fence the transaction read this range at *)
  i_value : string option;  (** proposed value; [None] is a proposed delete *)
}

val encode_intent : intent -> string

val decode_intent : string -> intent option

val encode_decision : commit:bool -> ts:int -> string
(** Payload of a decision cell: the verdict plus the commit timestamp that
    orders the transaction in the global MVCC timeline. *)

val decode_decision : string -> (bool * int) option

val pp_cell : Format.formatter -> cell -> unit
