(** Rows, columns, cells.

    Spinnaker's data model (§3): a table maps a row key to any number of
    columns; each column holds an opaque value and a monotonically increasing
    version number managed by the datastore. A cell with [value = None] is a
    tombstone left by a delete. [timestamp] is the write's wall-clock stamp;
    Spinnaker ignores it, the eventually consistent baseline uses it for
    last-writer-wins conflict resolution. *)

type key = string

type column = string

type cell = {
  value : string option;  (** [None] is a tombstone *)
  version : int;
  lsn : Lsn.t;
  timestamp : int;  (** microseconds; Dynamo-style conflict resolution *)
}

type coord = key * column
(** The unit of storage addressing. *)

val compare_coord : coord -> coord -> int
(** Key-major, then column — the SSTable sort order (§4.1). *)

val equal_coord : coord -> coord -> bool

val tombstone : version:int -> lsn:Lsn.t -> timestamp:int -> cell

val is_tombstone : cell -> bool

val newer_by_lsn : cell -> cell -> bool
(** Spinnaker replica ordering: writes apply in LSN order within a cohort. *)

val newer_by_timestamp : cell -> cell -> bool
(** Dynamo/Cassandra ordering: last writer (by timestamp) wins; LSN breaks
    timestamp ties deterministically. *)

val pp_cell : Format.formatter -> cell -> unit
