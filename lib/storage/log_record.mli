(** Write-ahead-log records.

    A node's log is shared by the (by default three) cohorts it belongs to
    (§4.1); each record is tagged with its cohort's key-range id and carries a
    logical, per-cohort LSN. There is no separate transaction-commit record —
    each write is a single-operation transaction (§5); instead the leader
    periodically logs the last committed LSN with a non-forced
    [Commit_upto] write, and memtable flushes log a [Checkpoint]. *)

type op =
  | Put of { key : Row.key; col : Row.column; value : string; version : int }
  | Delete of { key : Row.key; col : Row.column; version : int }
  | Batch of op list
      (** A multi-operation transaction (§8.2): several cell writes bound to
          one log record and one LSN, so the whole batch is exactly as
          durable and as replicated as any single write — all-or-nothing
          across crashes by construction. Batches are not nested. *)
  | Cohort_change of { add : int option; remove : int option }
      (** Membership-change meta record (§10): replicated and committed like
          a write, but produces no cells — applying it swaps [add] into the
          cohort and/or retires [remove]. *)
  | Split of { at : Row.key; new_range : int }
      (** Range-split meta record: the range splits at [at]; keys at or
          above [at] move to the new range id. Produces no cells. *)
  | Txn_prepare of {
      txn : string;
      anchor : Row.key;
      fence : Lsn.t;
      writes : (Row.key * Row.column * string option) list;
    }
      (** 2PC phase one at a participant cohort: replicates one write intent
          per coordinate (a {!Row.intent_col} system cell encoding the
          proposed value, the coordinator anchor, and the snapshot fence).
          Intents block snapshot readers and conflict with other writers
          until resolved. *)
  | Txn_decision of { txn : string; anchor : Row.key; commit : bool; ts : int }
      (** The coordinator cohort's commit/abort decision, replicated through
          its own Paxos log (a {!Row.decision_col} cell on the anchor row) —
          coordinator failover cannot lose it. [ts] is the commit timestamp
          ordering the transaction in the MVCC timeline. *)
  | Txn_resolve of {
      txn : string;
      commit : bool;
      ts : int;
      writes : (Row.key * Row.column * string option * int) list;
    }
      (** 2PC phase two at a participant: atomically installs the final data
          cells (on commit) and tombstones the intents. The concrete
          (key, col, value, version) list is computed once at the leader and
          embedded, so replicas apply deterministically. *)
  | Install_cell of { coord : Row.coord; cell : Row.cell }
      (** A materialized cell shipped by catch-up or snapshot migration,
          applied and logged verbatim on the receiver. Reconstructing a
          [Put]/[Delete] from a shipped cell would drop its [Row.cell.txn_ts]
          classification and a caught-up replica's snapshot reads would
          degrade to plain LSN visibility — exposing half a transaction. *)

type entry =
  | Write of {
      lsn : Lsn.t;
      op : op;
      timestamp : int;
      origin : (int * int) option;
          (** the (client, request id) that issued the write, when known —
              lets a replica rebuild its duplicate-suppression cache from the
              durable log, so a retried write is acked idempotently even
              across leader failover and restart *)
    }
  | Commit_upto of Lsn.t  (** last committed LSN; non-forced log write (§5) *)
  | Checkpoint of Lsn.t  (** memtable flushed up to this LSN; log rolled over *)

type t = { cohort : int; entry : entry }

val write : cohort:int -> lsn:Lsn.t -> timestamp:int -> ?origin:int * int -> op -> t

val commit_upto : cohort:int -> Lsn.t -> t

val checkpoint : cohort:int -> Lsn.t -> t

val is_meta : op -> bool
(** Membership/split meta records (no cells). *)

val flatten : op -> op list
(** Batches flattened to their primitive puts/deletes, in order. Meta
    records flatten to nothing. *)

val op_coord : op -> Row.coord
(** First coordinate touched (a batch's routing/representative coordinate). *)

val op_version : op -> int

val cell_of_write : op -> lsn:Lsn.t -> timestamp:int -> Row.cell
(** The cell a primitive write produces when applied ([Delete] yields a
    tombstone). Raises [Invalid_argument] on a [Batch]; use {!cells_of_write}. *)

val cells_of_write : op -> lsn:Lsn.t -> timestamp:int -> (Row.coord * Row.cell) list
(** Every cell the op produces (one per primitive write, in order). *)

val approx_bytes : t -> int
(** Serialised size estimate, for log-force accounting. *)

val pp : Format.formatter -> t -> unit
