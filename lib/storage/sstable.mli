(** Immutable sorted string table (§4.1).

    Built from a flushed memtable or a compaction merge. Indexed by
    (key, column) for point lookups, guarded by a per-key bloom filter, and
    tagged with the min and max LSN of the writes it contains so that
    recovery catch-up can be served from SSTables after the corresponding log
    records are rolled over (§6.1). *)

type t

val build : (Row.coord * Row.cell) list -> t
(** Input must be ascending in {!Row.compare_coord} with no duplicate
    coordinates; raises [Invalid_argument] otherwise. *)

val get : t -> Row.coord -> Row.cell option

val may_contain_key : t -> Row.key -> bool
(** Bloom-filter test (false positives possible). *)

val count : t -> int

val iter : t -> (Row.coord -> Row.cell -> unit) -> unit
(** Ascending coordinate order. *)

val to_list : t -> (Row.coord * Row.cell) list

val min_lsn : t -> Lsn.t
(** {!Lsn.zero} for an empty table. *)

val max_lsn : t -> Lsn.t

val min_key : t -> Row.key option

val max_key : t -> Row.key option

val cells_with_lsn_in : t -> above:Lsn.t -> upto:Lsn.t -> (Row.coord * Row.cell) list
(** Cells whose LSN lies in (above, upto] — the catch-up extraction path. *)

val range : t -> low:Row.key -> high:Row.key -> (Row.coord * Row.cell) list
(** Entries with [low <= key < high] (all columns), ascending; binary-searches
    to the start of the window. *)

val seek : t -> Row.key -> int
(** Index of the first entry whose key is at or after the given key (keys are
    the major sort component); [count t] when none is. Cursor support for
    {!Iterator}. *)

val entry : t -> int -> Row.coord * Row.cell
(** The i-th entry in ascending coordinate order. *)

val approx_bytes : t -> int
