(** Bounded LRU row cache for the read path.

    Keyed by (key, column); the store caches resolved {!Store.get} results
    (the winning cell, tombstones and negative lookups included) so hot-key
    reads skip the memtable probe, bloom filters, and per-SSTable binary
    searches entirely. Writes invalidate the touched coordinates
    (write-through invalidation); tombstone-dropping compactions clear the
    cache wholesale. All operations are O(1).

    Counters (hits, misses, evictions, invalidations) are cumulative for the
    cache's lifetime; they feed the per-node metrics gauges and the
    [BENCH_read.json] series. *)

type 'v t

val create : capacity:int -> unit -> 'v t
(** Raises [Invalid_argument] when [capacity <= 0] (callers gate a disabled
    cache themselves). *)

val find : 'v t -> Row.coord -> 'v option
(** Lookup; promotes the entry to most-recently-used and counts a hit or a
    miss. *)

val put : 'v t -> Row.coord -> 'v -> unit
(** Insert or refresh, evicting the least recently used entry when full. *)

val invalidate : 'v t -> Row.coord -> unit
(** Drop one coordinate (no-op when absent). *)

val clear : 'v t -> unit
(** Drop every entry, keeping the counters. *)

val capacity : 'v t -> int
val size : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
val invalidations : 'v t -> int

val hit_rate : 'v t -> float
(** hits / (hits + misses); 0.0 before any lookup. *)
