type op =
  | Put of { key : Row.key; col : Row.column; value : string; version : int }
  | Delete of { key : Row.key; col : Row.column; version : int }
  | Batch of op list
  | Cohort_change of { add : int option; remove : int option }
  | Split of { at : Row.key; new_range : int }
  | Txn_prepare of {
      txn : string;
      anchor : Row.key;
      fence : Lsn.t;
      writes : (Row.key * Row.column * string option) list;
    }
  | Txn_decision of { txn : string; anchor : Row.key; commit : bool; ts : int }
  | Txn_resolve of {
      txn : string;
      commit : bool;
      ts : int;
      writes : (Row.key * Row.column * string option * int) list;
    }
  | Install_cell of { coord : Row.coord; cell : Row.cell }

type entry =
  | Write of { lsn : Lsn.t; op : op; timestamp : int; origin : (int * int) option }
  | Commit_upto of Lsn.t
  | Checkpoint of Lsn.t

type t = { cohort : int; entry : entry }

let write ~cohort ~lsn ~timestamp ?origin op =
  { cohort; entry = Write { lsn; op; timestamp; origin } }
let commit_upto ~cohort lsn = { cohort; entry = Commit_upto lsn }
let checkpoint ~cohort lsn = { cohort; entry = Checkpoint lsn }

let is_meta = function
  | Cohort_change _ | Split _ -> true
  | Put _ | Delete _ | Batch _ | Txn_prepare _ | Txn_decision _ | Txn_resolve _
  | Install_cell _ ->
    false

let rec flatten = function
  | Batch ops -> List.concat_map flatten ops
  | (Put _ | Delete _) as op -> [ op ]
  | Cohort_change _ | Split _ -> []
  | (Txn_prepare _ | Txn_decision _ | Txn_resolve _ | Install_cell _) as op ->
    (* Transaction and install records are atomic units: their cells are
       derived by [cells_of_write], not by flattening into primitive
       writes. *)
    [ op ]

let rec op_coord = function
  | Put { key; col; _ } -> (key, col)
  | Delete { key; col; _ } -> (key, col)
  | Batch [] -> ("", "")
  | Batch (op :: _) -> op_coord op
  | Cohort_change _ | Split _ -> ("", "")
  | Txn_prepare { writes = (key, col, _) :: _; _ } -> (key, Row.intent_col col)
  | Txn_prepare { anchor; _ } -> (anchor, "")
  | Txn_decision { txn; anchor; _ } -> (anchor, Row.decision_col txn)
  | Txn_resolve { writes = (key, col, _, _) :: _; _ } -> (key, col)
  | Txn_resolve _ -> ("", "")
  | Install_cell { coord; _ } -> coord

let rec op_version = function
  | Put { version; _ } -> version
  | Delete { version; _ } -> version
  | Batch [] -> 0
  | Batch (op :: _) -> op_version op
  | Cohort_change _ | Split _ -> 0
  | Txn_prepare _ | Txn_decision _ -> 0
  | Txn_resolve { writes = (_, _, _, version) :: _; _ } -> version
  | Txn_resolve _ -> 0
  | Install_cell { cell; _ } -> cell.Row.version

let cell_of_write op ~lsn ~timestamp : Row.cell =
  match op with
  | Put { value; version; _ } ->
    { value = Some value; version; lsn; timestamp; txn_ts = None }
  | Delete { version; _ } -> { value = None; version; lsn; timestamp; txn_ts = None }
  | Install_cell { cell; _ } -> cell
  | Batch _ | Cohort_change _ | Split _ | Txn_prepare _ | Txn_decision _ | Txn_resolve _ ->
    invalid_arg "Log_record.cell_of_write: not a cell write"

let cells_of_write op ~lsn ~timestamp =
  match op with
  | Txn_prepare { txn; anchor; fence; writes } ->
    (* One intent cell per written coordinate; versions stay 0 — the base
       coordinate's version is assigned at resolve time. *)
    List.map
      (fun (key, col, value) ->
        ( (key, Row.intent_col col),
          {
            Row.value =
              Some
                (Row.encode_intent
                   { Row.i_txn = txn; i_anchor = anchor; i_fence = fence; i_value = value });
            version = 0;
            lsn;
            timestamp;
            txn_ts = None;
          } ))
      writes
  | Txn_decision { txn; anchor; commit; ts } ->
    [
      ( (anchor, Row.decision_col txn),
        {
          Row.value = Some (Row.encode_decision ~commit ~ts);
          version = 0;
          lsn;
          timestamp;
          txn_ts = None;
        } );
    ]
  | Txn_resolve { commit; ts; writes; _ } ->
    (* Concrete final cells are embedded in the record (computed once at the
       leader), so replicas apply deterministically. Committed data cells
       carry the decision timestamp as [txn_ts] — their position in the
       global MVCC timeline — and it doubles as the cell timestamp; intent
       cells are tombstoned either way. *)
    List.concat_map
      (fun (key, col, value, version) ->
        let clear_intent =
          ((key, Row.intent_col col), Row.tombstone ~version:0 ~lsn ~timestamp)
        in
        if commit then
          [
            ((key, col), { Row.value; version; lsn; timestamp = ts; txn_ts = Some ts });
            clear_intent;
          ]
        else [ clear_intent ])
      writes
  | Install_cell { coord; cell } ->
    (* A materialized cell shipped by catch-up or snapshot migration: applied
       and logged verbatim, so [txn_ts] (and everything else) survives the
       trip exactly — including crash-recovery replay on the receiver. *)
    [ (coord, cell) ]
  | _ -> List.map (fun o -> (op_coord o, cell_of_write o ~lsn ~timestamp)) (flatten op)

let approx_bytes t =
  match t.entry with
  | Write { op; _ } ->
    List.fold_left
      (fun acc op ->
        acc
        +
        match op with
        | Put { key; col; value; _ } ->
          String.length key + String.length col + String.length value
        | Delete { key; col; _ } -> String.length key + String.length col
        | Txn_prepare { txn; writes; _ } ->
          List.fold_left
            (fun a (k, c, v) ->
              a + String.length k + String.length c
              + (match v with Some v -> String.length v | None -> 0))
            (String.length txn + 24)
            writes
        | Txn_decision { txn; anchor; _ } -> String.length txn + String.length anchor + 16
        | Txn_resolve { txn; writes; _ } ->
          List.fold_left
            (fun a (k, c, v, _) ->
              a + String.length k + String.length c
              + (match v with Some v -> String.length v | None -> 0)
              + 8)
            (String.length txn + 16)
            writes
        | Install_cell { coord = key, col; cell } ->
          String.length key + String.length col
          + (match cell.Row.value with Some v -> String.length v | None -> 0)
          + 16
        | Batch _ | Cohort_change _ | Split _ -> 0)
      (24 + if is_meta op then 8 else 0)
      (flatten op)
  | Commit_upto _ | Checkpoint _ -> 24

let pp ppf t =
  match t.entry with
  | Write { lsn; op; _ } ->
    let kind, (key, col) =
      match op with
      | Put _ -> ("put", op_coord op)
      | Delete _ -> ("del", op_coord op)
      | Batch ops -> (Printf.sprintf "txn(%d)" (List.length ops), op_coord op)
      | Cohort_change { add; remove } ->
        let show = function Some n -> string_of_int n | None -> "-" in
        (Printf.sprintf "cohort+%s-%s" (show add) (show remove), ("", ""))
      | Split { at; new_range } -> (Printf.sprintf "split@%s->r%d" at new_range, ("", ""))
      | Txn_prepare { txn; writes; _ } ->
        (Printf.sprintf "prepare[%s](%d)" txn (List.length writes), op_coord op)
      | Txn_decision { txn; commit; _ } ->
        (Printf.sprintf "decide[%s]=%s" txn (if commit then "commit" else "abort"), op_coord op)
      | Txn_resolve { txn; commit; writes; _ } ->
        ( Printf.sprintf "resolve[%s]=%s(%d)" txn
            (if commit then "commit" else "abort")
            (List.length writes),
          op_coord op )
      | Install_cell _ -> ("install", op_coord op)
    in
    Format.fprintf ppf "[r%d %a %s %s/%s]" t.cohort Lsn.pp lsn kind key col
  | Commit_upto lsn -> Format.fprintf ppf "[r%d commit<=%a]" t.cohort Lsn.pp lsn
  | Checkpoint lsn -> Format.fprintf ppf "[r%d ckpt<=%a]" t.cohort Lsn.pp lsn
