type op =
  | Put of { key : Row.key; col : Row.column; value : string; version : int }
  | Delete of { key : Row.key; col : Row.column; version : int }
  | Batch of op list
  | Cohort_change of { add : int option; remove : int option }
  | Split of { at : Row.key; new_range : int }

type entry =
  | Write of { lsn : Lsn.t; op : op; timestamp : int; origin : (int * int) option }
  | Commit_upto of Lsn.t
  | Checkpoint of Lsn.t

type t = { cohort : int; entry : entry }

let write ~cohort ~lsn ~timestamp ?origin op =
  { cohort; entry = Write { lsn; op; timestamp; origin } }
let commit_upto ~cohort lsn = { cohort; entry = Commit_upto lsn }
let checkpoint ~cohort lsn = { cohort; entry = Checkpoint lsn }

let is_meta = function Cohort_change _ | Split _ -> true | Put _ | Delete _ | Batch _ -> false

let rec flatten = function
  | Batch ops -> List.concat_map flatten ops
  | (Put _ | Delete _) as op -> [ op ]
  | Cohort_change _ | Split _ -> []

let rec op_coord = function
  | Put { key; col; _ } -> (key, col)
  | Delete { key; col; _ } -> (key, col)
  | Batch [] -> ("", "")
  | Batch (op :: _) -> op_coord op
  | Cohort_change _ | Split _ -> ("", "")

let rec op_version = function
  | Put { version; _ } -> version
  | Delete { version; _ } -> version
  | Batch [] -> 0
  | Batch (op :: _) -> op_version op
  | Cohort_change _ | Split _ -> 0

let cell_of_write op ~lsn ~timestamp : Row.cell =
  match op with
  | Put { value; version; _ } -> { value = Some value; version; lsn; timestamp }
  | Delete { version; _ } -> { value = None; version; lsn; timestamp }
  | Batch _ | Cohort_change _ | Split _ -> invalid_arg "Log_record.cell_of_write: not a cell write"

let cells_of_write op ~lsn ~timestamp =
  List.map (fun o -> (op_coord o, cell_of_write o ~lsn ~timestamp)) (flatten op)

let approx_bytes t =
  match t.entry with
  | Write { op; _ } ->
    List.fold_left
      (fun acc op ->
        acc
        +
        match op with
        | Put { key; col; value; _ } ->
          String.length key + String.length col + String.length value
        | Delete { key; col; _ } -> String.length key + String.length col
        | Batch _ | Cohort_change _ | Split _ -> 0)
      (24 + if is_meta op then 8 else 0)
      (flatten op)
  | Commit_upto _ | Checkpoint _ -> 24

let pp ppf t =
  match t.entry with
  | Write { lsn; op; _ } ->
    let kind, (key, col) =
      match op with
      | Put _ -> ("put", op_coord op)
      | Delete _ -> ("del", op_coord op)
      | Batch ops -> (Printf.sprintf "txn(%d)" (List.length ops), op_coord op)
      | Cohort_change { add; remove } ->
        let show = function Some n -> string_of_int n | None -> "-" in
        (Printf.sprintf "cohort+%s-%s" (show add) (show remove), ("", ""))
      | Split { at; new_range } -> (Printf.sprintf "split@%s->r%d" at new_range, ("", ""))
    in
    Format.fprintf ppf "[r%d %a %s %s/%s]" t.cohort Lsn.pp lsn kind key col
  | Commit_upto lsn -> Format.fprintf ppf "[r%d commit<=%a]" t.cohort Lsn.pp lsn
  | Checkpoint lsn -> Format.fprintf ppf "[r%d ckpt<=%a]" t.cohort Lsn.pp lsn
