type t = {
  engine : Sim.Engine.t;
  disk : Sim.Resource.t;
  model : Sim.Disk_model.t;
  rng : Sim.Rng.t;
  mutable durable : Log_record.t list;  (** newest first *)
  mutable durable_count : int;
  mutable volatile : Log_record.t list;  (** newest first *)
  mutable volatile_count : int;
  mutable appended_total : int;  (** absolute index of last appended record *)
  mutable durable_total : int;  (** absolute index of last durable record *)
  mutable waiters : (int * (unit -> unit)) list;  (** (target, callback), oldest first *)
  mutable force_in_flight : bool;
  mutable forces_issued : int;
  mutable incarnation : int;
  max_batch : int;
}

let create engine ~disk ~model ~rng ?(max_batch = 16) () =
  {
    engine;
    disk;
    model;
    rng;
    max_batch;
    durable = [];
    durable_count = 0;
    volatile = [];
    volatile_count = 0;
    appended_total = 0;
    durable_total = 0;
    waiters = [];
    force_in_flight = false;
    forces_issued = 0;
    incarnation = 0;
  }

let model t = t.model

let append t record =
  t.volatile <- record :: t.volatile;
  t.volatile_count <- t.volatile_count + 1;
  t.appended_total <- t.appended_total + 1

(* Promote the [n] oldest volatile records to the durable prefix. *)
let promote t n =
  if n > 0 then begin
    let rev = List.rev t.volatile in
    let rec take i acc rest =
      if i = n then (acc, rest)
      else
        match rest with
        | [] -> (acc, [])
        | r :: rest -> take (i + 1) (r :: acc) rest
    in
    (* [moved] ends newest-first, matching [t.durable]'s order. *)
    let moved, remaining = take 0 [] rev in
    t.durable <- moved @ t.durable;
    t.durable_count <- t.durable_count + n;
    t.volatile <- List.rev remaining;
    t.volatile_count <- t.volatile_count - n
  end

let rec kick t =
  let ready, pending = List.partition (fun (target, _) -> target <= t.durable_total) t.waiters in
  t.waiters <- pending;
  List.iter (fun (_, k) -> k ()) ready;
  if t.waiters <> [] && not t.force_in_flight then begin
    t.force_in_flight <- true;
    t.forces_issued <- t.forces_issued + 1;
    (* Group commit: one device force covers up to [max_batch] of the records
       appended so far; the rest wait for the next force. *)
    let moving = Stdlib.min t.volatile_count t.max_batch in
    let goal = t.appended_total - (t.volatile_count - moving) in
    let batch_bytes =
      let rec sum i acc = function
        | [] -> acc
        | r :: rest ->
          if i = 0 then acc else sum (i - 1) (acc + Log_record.approx_bytes r) rest
      in
      (* [t.volatile] is newest-first; the batch is its [moving] oldest. *)
      sum moving 0 (List.rev t.volatile)
    in
    let incarnation = t.incarnation in
    let service =
      Sim.Sim_time.span_add
        (Sim.Distribution.sample_span (Sim.Disk_model.force_service t.model) t.rng)
        (Sim.Sim_time.of_us_f
           (float_of_int batch_bytes /. Sim.Disk_model.write_bandwidth_bytes_per_sec t.model *. 1e6))
    in
    Sim.Resource.submit t.disk ~service (fun () ->
        if t.incarnation = incarnation then begin
          t.force_in_flight <- false;
          promote t moving;
          t.durable_total <- Stdlib.max t.durable_total goal;
          kick t
        end)
  end

let force t k =
  t.waiters <- t.waiters @ [ (t.appended_total, k) ];
  kick t

let append_and_force t record k =
  append t record;
  force t k

let crash t =
  t.incarnation <- t.incarnation + 1;
  t.volatile <- [];
  t.volatile_count <- 0;
  t.appended_total <- t.durable_total;
  t.waiters <- [];
  t.force_in_flight <- false

let wipe t =
  crash t;
  t.durable <- [];
  t.durable_count <- 0

let durable_records t = List.rev t.durable
let durable_count t = t.durable_count
let forces_issued t = t.forces_issued

let fold_cohort t ~cohort ~init f =
  List.fold_left
    (fun acc (r : Log_record.t) -> if r.cohort = cohort then f acc r.entry else acc)
    init t.durable

let last_write_lsn t ~cohort =
  fold_cohort t ~cohort ~init:Lsn.zero (fun acc entry ->
      match entry with Log_record.Write { lsn; _ } -> Lsn.max acc lsn | _ -> acc)

let last_commit_marker t ~cohort =
  fold_cohort t ~cohort ~init:Lsn.zero (fun acc entry ->
      match entry with Log_record.Commit_upto lsn -> Lsn.max acc lsn | _ -> acc)

let last_checkpoint t ~cohort =
  fold_cohort t ~cohort ~init:Lsn.zero (fun acc entry ->
      match entry with Log_record.Checkpoint lsn -> Lsn.max acc lsn | _ -> acc)

let durable_writes_in t ~cohort ~above ~upto =
  let writes =
    fold_cohort t ~cohort ~init:[] (fun acc entry ->
        match entry with
        | Log_record.Write { lsn; op; timestamp; origin }
          when Lsn.(lsn > above) && Lsn.(lsn <= upto) ->
          (lsn, op, timestamp, origin) :: acc
        | _ -> acc)
  in
  List.sort_uniq (fun (a, _, _, _) (b, _, _, _) -> Lsn.compare a b) writes

let gc_cohort t ~cohort ~upto =
  let last_commit = last_commit_marker t ~cohort in
  let last_ckpt = last_checkpoint t ~cohort in
  let keep (r : Log_record.t) =
    if r.cohort <> cohort then true
    else
      match r.entry with
      | Log_record.Write { lsn; _ } -> Lsn.(lsn > upto)
      | Log_record.Commit_upto lsn -> Lsn.equal lsn last_commit
      | Log_record.Checkpoint lsn -> Lsn.equal lsn last_ckpt
  in
  (* Deduplicate retained markers: keep only the first (newest) occurrence. *)
  let seen_commit = ref false and seen_ckpt = ref false in
  let keep_once (r : Log_record.t) =
    if r.cohort <> cohort then true
    else
      match r.entry with
      | Log_record.Commit_upto _ ->
        if !seen_commit then false
        else begin
          seen_commit := true;
          true
        end
      | Log_record.Checkpoint _ ->
        if !seen_ckpt then false
        else begin
          seen_ckpt := true;
          true
        end
      | Log_record.Write _ -> true
  in
  t.durable <- List.filter (fun r -> keep r && keep_once r) t.durable;
  t.durable_count <- List.length t.durable

let min_available_write_lsn t ~cohort =
  fold_cohort t ~cohort ~init:None (fun acc entry ->
      match entry with
      | Log_record.Write { lsn; _ } ->
        Some (match acc with None -> lsn | Some m -> Lsn.min m lsn)
      | _ -> acc)
