(* Indexed write-ahead log.

   The durable portion of the log is held as a per-cohort index rather than
   one flat list: each cohort keeps its durable [Write] records in an
   LSN-keyed map (duplicate retransmissions collapse into one slot that
   remembers every copy), its marker records ([Commit_upto]/[Checkpoint]) as
   small newest-first lists, and its marker maxima incrementally. Recovery,
   catch-up, and takeover queries therefore cost O(log n + answer) instead of
   O(total log), and [gc_cohort] touches only the cohort being rolled over.

   The volatile tail is a FIFO queue with incremental byte accounting, so a
   group-commit force pays O(batch) to assemble its batch instead of
   re-walking (and re-reversing) the whole backlog. The in-flight batch is
   popped off the queue when the device force is submitted and indexed into
   the durable structures when it completes; a crash in between loses it,
   exactly as it loses the rest of the volatile tail. *)

module Lsn_map = Map.Make (struct
  type t = Lsn.t

  let compare = Lsn.compare
end)

type write_slot = {
  op : Log_record.op;
  timestamp : int;
  origin : (int * int) option;
  gseqs : int list;  (** durable-order stamps, oldest first; >1 means duplicate copies *)
}

type cohort_index = {
  mutable writes : write_slot Lsn_map.t;
  mutable write_records : int;  (** durable [Write] records, duplicate copies included *)
  mutable commits : (Lsn.t * int) list;  (** durable [Commit_upto] records, newest first *)
  mutable ckpts : (Lsn.t * int) list;  (** durable [Checkpoint] records, newest first *)
  mutable last_commit : Lsn.t;  (** max over [commits]; maintained incrementally *)
  mutable last_ckpt : Lsn.t;  (** max over [ckpts]; maintained incrementally *)
}

type t = {
  engine : Sim.Engine.t;
  disk : Sim.Resource.t;
  model : Sim.Disk_model.t;
  rng : Sim.Rng.t;
  cohorts : (int, cohort_index) Hashtbl.t;
  mutable gseq : int;  (** global durable-order stamp, for [durable_records] *)
  mutable durable_count : int;
  volatile : Log_record.t Queue.t;  (** oldest first *)
  mutable volatile_count : int;
  mutable volatile_bytes : int;  (** incremental byte accounting for group commit *)
  mutable in_flight_batch : Log_record.t list;  (** oldest first; volatile until the force lands *)
  mutable appended_total : int;  (** absolute index of last appended record *)
  mutable durable_total : int;  (** absolute index of last durable record *)
  waiters : (int * (unit -> unit)) Queue.t;
      (** (target, callback); targets are monotone (appended_total at force
          time), so the queue is sorted and the ready prefix pops in O(ready) *)
  mutable force_in_flight : bool;
  mutable forces_issued : int;
  mutable incarnation : int;
  max_batch : int;
}

let create engine ~disk ~model ~rng ?(max_batch = 16) () =
  {
    engine;
    disk;
    model;
    rng;
    max_batch;
    cohorts = Hashtbl.create 8;
    gseq = 0;
    durable_count = 0;
    volatile = Queue.create ();
    volatile_count = 0;
    volatile_bytes = 0;
    in_flight_batch = [];
    appended_total = 0;
    durable_total = 0;
    waiters = Queue.create ();
    force_in_flight = false;
    forces_issued = 0;
    incarnation = 0;
  }

let model t = t.model

let cidx t cohort =
  match Hashtbl.find_opt t.cohorts cohort with
  | Some c -> c
  | None ->
    let c =
      {
        writes = Lsn_map.empty;
        write_records = 0;
        commits = [];
        ckpts = [];
        last_commit = Lsn.zero;
        last_ckpt = Lsn.zero;
      }
    in
    Hashtbl.add t.cohorts cohort c;
    c

let append t record =
  Queue.push record t.volatile;
  t.volatile_count <- t.volatile_count + 1;
  t.volatile_bytes <- t.volatile_bytes + Log_record.approx_bytes record;
  t.appended_total <- t.appended_total + 1

(* Index one record that just became durable. *)
let index_durable t (r : Log_record.t) =
  let c = cidx t r.cohort in
  t.gseq <- t.gseq + 1;
  t.durable_count <- t.durable_count + 1;
  match r.entry with
  | Log_record.Write { lsn; op; timestamp; origin } ->
    c.write_records <- c.write_records + 1;
    let slot =
      match Lsn_map.find_opt lsn c.writes with
      | Some slot -> { slot with gseqs = slot.gseqs @ [ t.gseq ] }
      | None -> { op; timestamp; origin; gseqs = [ t.gseq ] }
    in
    c.writes <- Lsn_map.add lsn slot c.writes
  | Log_record.Commit_upto lsn ->
    c.commits <- (lsn, t.gseq) :: c.commits;
    c.last_commit <- Lsn.max c.last_commit lsn
  | Log_record.Checkpoint lsn ->
    c.ckpts <- (lsn, t.gseq) :: c.ckpts;
    c.last_ckpt <- Lsn.max c.last_ckpt lsn

let rec kick t =
  (* Waiters are sorted by target (appends are monotone), so the satisfied
     prefix is exactly the queue front — no full-list partition per force. *)
  while
    (not (Queue.is_empty t.waiters)) && fst (Queue.peek t.waiters) <= t.durable_total
  do
    let _, k = Queue.pop t.waiters in
    k ()
  done;
  if (not (Queue.is_empty t.waiters)) && not t.force_in_flight then begin
    t.force_in_flight <- true;
    t.forces_issued <- t.forces_issued + 1;
    (* Group commit: one device force covers up to [max_batch] of the records
       appended so far; the rest wait for the next force. The batch is the
       oldest [moving] volatile records — popped now, indexed on completion. *)
    let moving = Stdlib.min t.volatile_count t.max_batch in
    let batch = ref [] and batch_bytes = ref 0 in
    for _ = 1 to moving do
      let r = Queue.pop t.volatile in
      batch := r :: !batch;
      batch_bytes := !batch_bytes + Log_record.approx_bytes r
    done;
    t.volatile_count <- t.volatile_count - moving;
    t.volatile_bytes <- t.volatile_bytes - !batch_bytes;
    t.in_flight_batch <- List.rev !batch;
    let goal = t.appended_total - t.volatile_count in
    let incarnation = t.incarnation in
    let service =
      Sim.Sim_time.span_add
        (Sim.Distribution.sample_span (Sim.Disk_model.force_service t.model) t.rng)
        (Sim.Sim_time.of_us_f
           (float_of_int !batch_bytes /. Sim.Disk_model.write_bandwidth_bytes_per_sec t.model
          *. 1e6))
    in
    Sim.Resource.submit t.disk ~service (fun () ->
        if t.incarnation = incarnation then begin
          t.force_in_flight <- false;
          List.iter (index_durable t) t.in_flight_batch;
          t.in_flight_batch <- [];
          t.durable_total <- Stdlib.max t.durable_total goal;
          kick t
        end)
  end

let force t k =
  Queue.push (t.appended_total, k) t.waiters;
  kick t

let append_and_force t record k =
  append t record;
  force t k

let crash t =
  t.incarnation <- t.incarnation + 1;
  Queue.clear t.volatile;
  t.volatile_count <- 0;
  t.volatile_bytes <- 0;
  t.in_flight_batch <- [];
  t.appended_total <- t.durable_total;
  Queue.clear t.waiters;
  t.force_in_flight <- false

let wipe t =
  crash t;
  Hashtbl.reset t.cohorts;
  t.durable_count <- 0

let durable_records t =
  let all = ref [] in
  Hashtbl.iter
    (fun cohort c ->
      Lsn_map.iter
        (fun lsn slot ->
          List.iter
            (fun g ->
              all :=
                ( g,
                  Log_record.write ~cohort ~lsn ~timestamp:slot.timestamp ?origin:slot.origin
                    slot.op )
                :: !all)
            slot.gseqs)
        c.writes;
      List.iter (fun (lsn, g) -> all := (g, Log_record.commit_upto ~cohort lsn) :: !all) c.commits;
      List.iter (fun (lsn, g) -> all := (g, Log_record.checkpoint ~cohort lsn) :: !all) c.ckpts)
    t.cohorts;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !all |> List.map snd

let durable_count t = t.durable_count
let forces_issued t = t.forces_issued
let volatile_bytes t = t.volatile_bytes

let last_write_lsn t ~cohort =
  match Hashtbl.find_opt t.cohorts cohort with
  | None -> Lsn.zero
  | Some c -> (
    match Lsn_map.max_binding_opt c.writes with Some (lsn, _) -> lsn | None -> Lsn.zero)

let last_commit_marker t ~cohort =
  match Hashtbl.find_opt t.cohorts cohort with None -> Lsn.zero | Some c -> c.last_commit

let last_checkpoint t ~cohort =
  match Hashtbl.find_opt t.cohorts cohort with None -> Lsn.zero | Some c -> c.last_ckpt

let durable_writes_in t ~cohort ~above ~upto =
  match Hashtbl.find_opt t.cohorts cohort with
  | None -> []
  | Some c ->
    (* Ascending slice of the LSN index: only the head of the sequence can
       sit at [above] itself, so the walk is O(log n + answer). *)
    let rec collect seq acc =
      match seq () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons ((lsn, slot), rest) ->
        if Lsn.(lsn > upto) then List.rev acc
        else if Lsn.(lsn <= above) then collect rest acc
        else collect rest ((lsn, slot.op, slot.timestamp, slot.origin) :: acc)
    in
    collect (Lsn_map.to_seq_from above c.writes) []

let gc_cohort t ~cohort ~upto =
  match Hashtbl.find_opt t.cohorts cohort with
  | None -> ()
  | Some c ->
    let keep, dropped = Lsn_map.partition (fun lsn _ -> Lsn.(lsn > upto)) c.writes in
    let removed = Lsn_map.fold (fun _ slot acc -> acc + List.length slot.gseqs) dropped 0 in
    c.writes <- keep;
    c.write_records <- c.write_records - removed;
    t.durable_count <- t.durable_count - removed;
    (* Markers: keep only the newest record carrying the max value. *)
    let prune records last =
      match List.find_opt (fun (lsn, _) -> Lsn.equal lsn last) records with
      | Some newest -> ([ newest ], List.length records - 1)
      | None -> (records, 0)
    in
    let commits, removed_commits = prune c.commits c.last_commit in
    c.commits <- commits;
    let ckpts, removed_ckpts = prune c.ckpts c.last_ckpt in
    c.ckpts <- ckpts;
    t.durable_count <- t.durable_count - removed_commits - removed_ckpts

let drop_cohort t ~cohort =
  (* Any volatile/in-flight records for the cohort become no-ops once the
     index is gone: they are indexed into a fresh (empty) cohort_index if a
     force lands later, which only matters if the cohort is re-created — and
     a re-created cohort starts from a wiped store anyway. Simpler and safe
     to drop just the durable index here. *)
  (match Hashtbl.find_opt t.cohorts cohort with
  | None -> ()
  | Some c ->
    t.durable_count <-
      t.durable_count - c.write_records - List.length c.commits - List.length c.ckpts;
    Hashtbl.remove t.cohorts cohort);
  (* Volatile records for the cohort must not resurrect markers after the
     drop: filter them out of the tail (the in-flight batch, if any, is
     already on the device and will re-index into a fresh empty slot, which
     recovery treats the same as absent for a wiped store). *)
  let keep = Queue.create () in
  Queue.iter
    (fun (r : Log_record.t) ->
      if r.cohort <> cohort then Queue.push r keep
      else begin
        t.volatile_count <- t.volatile_count - 1;
        t.volatile_bytes <- t.volatile_bytes - Log_record.approx_bytes r
      end)
    t.volatile;
  Queue.clear t.volatile;
  Queue.transfer keep t.volatile

let min_available_write_lsn t ~cohort =
  match Hashtbl.find_opt t.cohorts cohort with
  | None -> None
  | Some c -> (
    match Lsn_map.min_binding_opt c.writes with Some (lsn, _) -> Some lsn | None -> None)
