(** Background SSTable merging (§4.1), size-tiered.

    Instead of rebuilding the whole store whenever the table count crosses a
    threshold, {!plan} picks a run of adjacent, similar-sized tables (one
    size tier) to merge, so each compaction's work is bounded by that tier's
    bytes rather than the store's. A full merge — the only point where
    tombstones may be garbage-collected — happens only as a safety valve when
    the table count reaches [max_tables], or explicitly via
    [Store.major_compact]. *)

val build_table :
  newer:(Row.cell -> Row.cell -> bool) ->
  ?drop_tombstones:bool ->
  Iterator.source list ->
  Sstable.t
(** Stream the k-way merge of [sources] into a fresh SSTable — the single
    table-build path shared by compaction and memtable flush. *)

val merge :
  newer:(Row.cell -> Row.cell -> bool) ->
  ?drop_tombstones:bool ->
  Sstable.t list ->
  Sstable.t
(** K-way merge keeping, for each coordinate, the cell that [newer] prefers
    (ties go to the earlier table in the list, i.e. the newer one).
    [drop_tombstones] (default false) additionally discards tombstones — only
    safe on a full compaction covering every table of the store. *)

type plan =
  | All  (** full merge: every table, tombstone GC allowed *)
  | Run of { start : int; length : int }
      (** merge [length] adjacent tables starting at index [start] of the
          newest-first table list, splicing the result back in place *)

val default_growth : float
(** Size-similarity factor for a tier: a window qualifies when its largest
    table is at most [growth ×] its smallest (2.0). *)

val plan : fanin:int -> max_tables:int -> ?growth:float -> Sstable.t list -> plan option
(** [plan ~fanin ~max_tables tables] on the newest-first table list: [All]
    once [max_tables] is reached; otherwise the cheapest (fewest total bytes)
    window of [fanin] adjacent similar-sized tables, extended over the rest
    of its tier up to [2 × fanin] tables; [None] when no tier is full. *)

val should_compact : Sstable.t list -> threshold:int -> bool
(** True once the read fan-in ([List.length]) reaches [threshold]. Legacy
    trigger retained for the pre-tiered semantics used in tests. *)
