(** Background SSTable merging (§4.1): smaller SSTables are merged into
    larger ones to garbage-collect deleted rows and improve read fan-in. *)

val merge :
  newer:(Row.cell -> Row.cell -> bool) ->
  ?drop_tombstones:bool ->
  Sstable.t list ->
  Sstable.t
(** K-way merge keeping, for each coordinate, the cell that [newer] prefers.
    [drop_tombstones] (default false) additionally discards tombstones — only
    safe on a full compaction covering every table of the store. *)

val should_compact : Sstable.t list -> threshold:int -> bool
(** True once the read fan-in ([List.length]) reaches [threshold]. *)
