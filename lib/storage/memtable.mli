(** In-memory sorted write buffer (§4.1).

    Committed writes are applied here and periodically flushed to an
    SSTable. Keeps at most one cell per (key, column): the caller decides
    which of the existing and incoming cells is newer via [newer]. *)

type t

val create : unit -> t

val put : t -> ?newer:(Row.cell -> Row.cell -> bool) -> Row.coord -> Row.cell -> unit
(** Insert/overwrite. With [newer] (e.g. {!Row.newer_by_timestamp}) the
    existing cell is kept when it is newer than the incoming one; by default
    the incoming cell always wins (Spinnaker applies in LSN order). *)

val get : t -> Row.coord -> Row.cell option

val size : t -> int
(** Number of distinct (key, column) entries. *)

val approx_bytes : t -> int
(** Rough heap footprint, used to trigger flushes. *)

val is_empty : t -> bool

val to_sorted_list : t -> (Row.coord * Row.cell) list
(** Ascending {!Row.compare_coord} order — SSTable build input. *)

val range : t -> low:Row.key -> high:Row.key -> (Row.coord * Row.cell) list
(** Entries with [low <= key < high] (all columns), ascending. The bound
    convention (low inclusive, high exclusive, byte-wise key compare) matches
    {!Sstable.range} and [Store.scan]. O(log n + slice). *)

val iter : t -> (Row.coord -> Row.cell -> unit) -> unit

val to_seq_from : t -> low:Row.key -> (Row.coord * Row.cell) Seq.t
(** Lazy ascending walk starting at the first coordinate with key >= [low].
    Cursor support for {!Iterator} (scans stop consuming at their high
    bound instead of materialising the window). *)

val clear : t -> unit

val max_lsn : t -> Lsn.t
(** Largest LSN applied; {!Lsn.zero} when empty. *)
