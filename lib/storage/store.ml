type read_cost = Cache_hit | Probed of int

(* One entry in a coordinate's in-memory version chain (newest first).
   [mv_txn_ts] is [Some ts] when the cell was installed by a committed
   transaction: its visibility under a snapshot is decided by the commit
   timestamp, not the per-range LSN. *)
type mvcc_version = { mv_cell : Row.cell; mv_txn_ts : int option }

type snap_result =
  | Snap_cell of Row.cell  (** visible at the fence (may be a tombstone) *)
  | Snap_none  (** nothing visible at the fence *)
  | Snap_blocked of string  (** an undecided intent of this txn blocks the read *)

(* Live (unresolved) write intents of one transaction in this range. *)
type intent_info = {
  mutable ii_writes : (Row.coord * string option) list;  (** base coords + proposed values *)
  ii_anchor : Row.key;
  ii_fence : Lsn.t;
  ii_lsn : Lsn.t;  (** prepare LSN (first intent cell seen) *)
  ii_time : int;  (** prepare apply timestamp, µs — ages into in-doubt *)
}

type t = {
  cohort : int;
  wal : Wal.t;
  skipped : Skipped_lsns.t;
  newer : Row.cell -> Row.cell -> bool;
  flush_bytes : int;
  compaction_fanin : int;
  max_sstables : int;
  tier_growth : float;
  cache_capacity : int;
  cache : Row.cell option Cache.t option;
  mutable bounds : (Row.key * Row.key) option;
      (** [lo, hi) key bounds once the range has split; cells outside are
          the sibling's and are filtered from exports, catch-up, and
          compaction output *)
  mutable inherited_upto : Lsn.t;
      (** for a split child sharing the parent's SSTables: the highest LSN
          those tables may contain. Durable metadata — survives [crash] —
          because the child's own log starts after the split, so recovery
          must not pretend the log covers the inherited prefix *)
  mutable memtable : Memtable.t;
  mutable sstables : Sstable.t list;  (** newest first *)
  mutable flushed_upto : Lsn.t;
  mutable served_from_sstables : int;
  lsn_ordered : bool;
      (** [newer] is LSN order, so an SSTable whose [max_lsn] is at or below
          the best cell found so far cannot improve a read. *)
  mutable sstables_skipped : int;
  mutable sstables_probed : int;
  mutable compactions : int;
  mutable full_compactions : int;
  mutable last_compaction_input_bytes : int;
  mutable max_compaction_input_bytes : int;
  mutable total_compaction_input_bytes : int;
  mutable max_store_bytes : int;
      (** largest total SSTable footprint observed when a compaction ran —
          the denominator of the tier-bounded-work claim *)
  mvcc_depth : int;  (** per-coordinate version-chain cap *)
  mvcc : (Row.coord, mvcc_version list) Hashtbl.t;
      (** in-memory version chains, newest first; rebuilt from the WAL on
          recovery (versions that only survive in SSTables fall back to the
          plain LSN visibility rule) *)
  intents : (string, intent_info) Hashtbl.t;  (** txn id -> live intents *)
  intent_at : (Row.coord, string) Hashtbl.t;  (** base coord -> owning txn *)
}

let create ~cohort ~wal ?(newer = Row.newer_by_lsn) ?(flush_bytes = 4 * 1024 * 1024)
    ?(compaction_fanin = 4) ?(max_sstables = 16) ?(tier_growth = Compaction.default_growth)
    ?(cache_capacity = 0) ?(mvcc_depth = 64) () =
  {
    cohort;
    wal;
    skipped = Skipped_lsns.create ();
    newer;
    flush_bytes;
    compaction_fanin;
    max_sstables;
    tier_growth;
    cache_capacity;
    cache = (if cache_capacity > 0 then Some (Cache.create ~capacity:cache_capacity ()) else None);
    bounds = None;
    inherited_upto = Lsn.zero;
    memtable = Memtable.create ();
    sstables = [];
    flushed_upto = Lsn.zero;
    served_from_sstables = 0;
    lsn_ordered = newer == Row.newer_by_lsn;
    sstables_skipped = 0;
    sstables_probed = 0;
    compactions = 0;
    full_compactions = 0;
    last_compaction_input_bytes = 0;
    max_compaction_input_bytes = 0;
    total_compaction_input_bytes = 0;
    max_store_bytes = 0;
    mvcc_depth;
    mvcc = Hashtbl.create 256;
    intents = Hashtbl.create 16;
    intent_at = Hashtbl.create 16;
  }

let cohort t = t.cohort
let wal t = t.wal
let skipped t = t.skipped
let bounds t = t.bounds
let set_bounds t ~lo ~hi = t.bounds <- Some (lo, hi)
let inherited_upto t = t.inherited_upto

let in_bounds t key =
  match t.bounds with
  | None -> true
  | Some (lo, hi) -> String.compare lo key <= 0 && String.compare key hi < 0
let flushed_upto t = t.flushed_upto
let sstable_count t = List.length t.sstables
let memtable_size t = Memtable.size t.memtable
let memtable_bytes t = Memtable.approx_bytes t.memtable
let served_from_sstables t = t.served_from_sstables
let sstables_skipped t = t.sstables_skipped
let sstables_probed t = t.sstables_probed
let sstable_bytes t = List.fold_left (fun a s -> a + Sstable.approx_bytes s) 0 t.sstables
let compactions t = t.compactions
let full_compactions t = t.full_compactions
let last_compaction_input_bytes t = t.last_compaction_input_bytes
let max_compaction_input_bytes t = t.max_compaction_input_bytes
let total_compaction_input_bytes t = t.total_compaction_input_bytes
let max_store_bytes_at_compaction t = t.max_store_bytes
let cache_hits t = match t.cache with Some c -> Cache.hits c | None -> 0
let cache_misses t = match t.cache with Some c -> Cache.misses c | None -> 0
let cache_evictions t = match t.cache with Some c -> Cache.evictions c | None -> 0
let cache_invalidations t = match t.cache with Some c -> Cache.invalidations c | None -> 0
let cache_size t = match t.cache with Some c -> Cache.size c | None -> 0

let cache_hit_rate t = match t.cache with Some c -> Cache.hit_rate c | None -> 0.0

let clear_cache t = match t.cache with Some c -> Cache.clear c | None -> ()

(* ------------------------------------------------------------------ *)
(* Compaction: size-tiered runs, full merge only at the table cap.      *)

let record_compaction t ~input_bytes ~full =
  t.compactions <- t.compactions + 1;
  if full then t.full_compactions <- t.full_compactions + 1;
  t.last_compaction_input_bytes <- input_bytes;
  if input_bytes > t.max_compaction_input_bytes then
    t.max_compaction_input_bytes <- input_bytes;
  t.total_compaction_input_bytes <- t.total_compaction_input_bytes + input_bytes;
  let store_bytes = sstable_bytes t in
  if store_bytes > t.max_store_bytes then t.max_store_bytes <- store_bytes

(* Split-aware compaction: a child range shares its parent's tables, so a
   merge is where the sibling's cells finally get dropped. *)
let clamp_table t table =
  match t.bounds with
  | None -> table
  | Some _ ->
    Compaction.build_table ~newer:t.newer
      [
        Iterator.of_sorted_list
          (List.filter (fun ((key, _), _) -> in_bounds t key) (Sstable.to_list table));
      ]

(* Split [tables] into (prefix, run, suffix) with [run] the [length] tables
   starting at [start]. *)
let split_run tables ~start ~length =
  let rec go i acc = function
    | rest when i = start ->
      let rec take n run rest =
        match (n, rest) with
        | 0, _ -> (List.rev acc, List.rev run, rest)
        | _, x :: tl -> take (n - 1) (x :: run) tl
        | _, [] -> invalid_arg "Store.split_run: run exceeds table list"
      in
      take length [] rest
    | x :: tl -> go (i + 1) (x :: acc) tl
    | [] -> invalid_arg "Store.split_run: start exceeds table list"
  in
  go 0 [] tables

let rec maybe_compact t =
  match
    Compaction.plan ~fanin:t.compaction_fanin ~max_tables:t.max_sstables
      ~growth:t.tier_growth t.sstables
  with
  | None -> ()
  | Some Compaction.All ->
    (* Safety valve: the tiers failed to keep the fan-in down (or a caller
       forced a major compaction). Covers every table, so tombstone GC is
       safe (§4.1) — which in turn can change [get]'s answer for deleted
       coordinates, so the row cache must drop its entries. *)
    let input_bytes = sstable_bytes t in
    record_compaction t ~input_bytes ~full:true;
    t.sstables <- [ clamp_table t (Compaction.merge ~newer:t.newer ~drop_tombstones:true t.sstables) ];
    clear_cache t
  | Some (Compaction.Run { start; length }) ->
    let prefix, run, suffix = split_run t.sstables ~start ~length in
    let input_bytes = List.fold_left (fun a s -> a + Sstable.approx_bytes s) 0 run in
    record_compaction t ~input_bytes ~full:false;
    (* Partial merge: tombstones must survive, they may shadow live cells in
       older tables outside the run. *)
    let merged = clamp_table t (Compaction.merge ~newer:t.newer run) in
    t.sstables <- prefix @ (merged :: suffix);
    (* The merged table may complete the next tier down; cascade until no
       tier is full. Terminates: every merge shrinks the table count. *)
    maybe_compact t

let major_compact t =
  if t.sstables <> [] then begin
    let input_bytes = sstable_bytes t in
    record_compaction t ~input_bytes ~full:true;
    t.sstables <- [ clamp_table t (Compaction.merge ~newer:t.newer ~drop_tombstones:true t.sstables) ];
    clear_cache t
  end

let flush t =
  if not (Memtable.is_empty t.memtable) then begin
    let table =
      clamp_table t
        (Compaction.build_table ~newer:t.newer
           [ Iterator.of_sorted_list (Memtable.to_sorted_list t.memtable) ])
    in
    let upto = Lsn.max t.flushed_upto (Memtable.max_lsn t.memtable) in
    t.sstables <- table :: t.sstables;
    t.flushed_upto <- upto;
    t.memtable <- Memtable.create ();
    Wal.append t.wal (Log_record.checkpoint ~cohort:t.cohort upto);
    (* Roll the log over only once the checkpoint record is durable. GC-ing
       eagerly opens a crash window in which the durable log holds neither
       the flushed writes nor the checkpoint that replaced them, so recovery
       would silently lose committed data. [Wal.crash] cancels the waiter,
       leaving the log intact across a crash inside the window. *)
    Wal.force t.wal (fun () ->
        Wal.gc_cohort t.wal ~cohort:t.cohort ~upto;
        Skipped_lsns.gc_upto t.skipped upto);
    maybe_compact t
  end

(* ------------------------------------------------------------------ *)
(* MVCC chains and the intent index, maintained on every applied cell.   *)

let push_version t coord (cell : Row.cell) ~txn_ts =
  let chain = match Hashtbl.find_opt t.mvcc coord with Some l -> l | None -> [] in
  let entry = { mv_cell = cell; mv_txn_ts = txn_ts } in
  let chain =
    match chain with
    | head :: rest when Lsn.equal head.mv_cell.Row.lsn cell.Row.lsn ->
      (* Idempotent re-apply (catch-up, recovery replay): replace in place. *)
      entry :: rest
    | head :: _ when Lsn.(cell.Row.lsn < head.mv_cell.Row.lsn) ->
      (* Out-of-order duplicate below the head: already represented. *)
      if List.exists (fun v -> Lsn.equal v.mv_cell.Row.lsn cell.Row.lsn) chain then chain
      else
        (* Insert in descending-LSN position (rare; bounded by the cap). *)
        let rec ins = function
          | v :: tl when Lsn.(v.mv_cell.Row.lsn > cell.Row.lsn) -> v :: ins tl
          | tl -> entry :: tl
        in
        ins chain
    | _ -> entry :: chain
  in
  let chain = if List.length chain > t.mvcc_depth then List.filteri (fun i _ -> i < t.mvcc_depth) chain else chain in
  Hashtbl.replace t.mvcc coord chain

(* Track an applied intent/decision system cell in the in-memory intent
   index. Driven by the cell's coordinate, not the op shape, so catch-up
   and migration (which replay cells as plain puts) keep the index right. *)
let track_system_cell t (key, col) (cell : Row.cell) =
  if Row.is_intent_col col then begin
    let base = (key, Row.base_of_intent_col col) in
    match cell.Row.value with
    | Some payload -> (
      match Row.decode_intent payload with
      | Some { Row.i_txn; i_anchor; i_fence; i_value } -> (
        (* A newer intent at this coordinate proves the previous one was
           resolved (its prepare would have conflicted otherwise) — evict
           the prior owner even if we never saw its tombstone, e.g. when
           catch-up's newest-per-coordinate collapse shipped only the
           newer intent over the tombstone that cleared the old one. *)
        (match Hashtbl.find_opt t.intent_at base with
        | Some prev when prev <> i_txn -> (
          match Hashtbl.find_opt t.intents prev with
          | Some info ->
            info.ii_writes <-
              List.filter (fun (c, _) -> not (Row.equal_coord c base)) info.ii_writes;
            if info.ii_writes = [] then Hashtbl.remove t.intents prev
          | None -> ())
        | _ -> ());
        Hashtbl.replace t.intent_at base i_txn;
        match Hashtbl.find_opt t.intents i_txn with
        | Some info ->
          if not (List.mem_assoc base info.ii_writes) then
            info.ii_writes <- (base, i_value) :: info.ii_writes
        | None ->
          Hashtbl.replace t.intents i_txn
            {
              ii_writes = [ (base, i_value) ];
              ii_anchor = i_anchor;
              ii_fence = i_fence;
              ii_lsn = cell.Row.lsn;
              ii_time = cell.Row.timestamp;
            })
      | None -> ())
    | None -> (
      (* Intent tombstone: the transaction resolved at this coordinate. *)
      match Hashtbl.find_opt t.intent_at base with
      | Some txn -> (
        Hashtbl.remove t.intent_at base;
        match Hashtbl.find_opt t.intents txn with
        | Some info ->
          info.ii_writes <-
            List.filter (fun (c, _) -> not (Row.equal_coord c base)) info.ii_writes;
          if info.ii_writes = [] then Hashtbl.remove t.intents txn
        | None -> ())
      | None -> ())
  end

(* The per-cell ingest shared by [apply] and recovery replay. The cell's own
   [txn_ts] marks data cells installed by a committed transaction — carried
   on the cell (not derived from the op shape) so catch-up and migration,
   which ship materialized cells, classify versions identically. *)
let ingest_cell t ((key, col) as coord) (cell : Row.cell) =
  if in_bounds t key then begin
    Memtable.put t.memtable ~newer:t.newer coord cell;
    if Row.is_system_col col then track_system_cell t coord cell
    else begin
      push_version t coord cell ~txn_ts:cell.Row.txn_ts;
      (* Write-through invalidation: the next read re-resolves the winner. *)
      match t.cache with Some c -> Cache.invalidate c coord | None -> ()
    end
  end

let apply t ~lsn ~timestamp op =
  List.iter
    (fun (coord, cell) -> ingest_cell t coord cell)
    (Log_record.cells_of_write op ~lsn ~timestamp);
  if Memtable.approx_bytes t.memtable >= t.flush_bytes then flush t

(* The uncached lookup: newest cell across memtable and SSTables, counting
   how many tables were actually probed (bloom/LSN-pruned tables are not). *)
let lookup t coord =
  let best = ref (Memtable.get t.memtable coord) in
  let probed = ref 0 in
  let consider cell =
    match !best with
    | Some existing when t.newer existing cell -> ()
    | _ -> best := Some cell
  in
  List.iter
    (fun table ->
      (* Skip tables that cannot beat the best cell found so far: bloom says
         the key is absent, or (under LSN order) every cell in the table is
         at or below the current best. Equal LSNs denote the same write, so
         skipping the tie is safe. *)
      let cannot_win =
        (not (Sstable.may_contain_key table (fst coord)))
        ||
        match !best with
        | Some existing when t.lsn_ordered -> Lsn.(existing.Row.lsn >= Sstable.max_lsn table)
        | _ -> false
      in
      if cannot_win then t.sstables_skipped <- t.sstables_skipped + 1
      else begin
        incr probed;
        t.sstables_probed <- t.sstables_probed + 1;
        match Sstable.get table coord with Some cell -> consider cell | None -> ()
      end)
    t.sstables;
  (!best, !probed)

let get_profiled t coord =
  match t.cache with
  | None ->
    let cell, probed = lookup t coord in
    (cell, Probed probed)
  | Some cache ->
    (* System columns (intents, decision records) bypass the row cache in
       both directions: they mutate out of band of the user write path, and
       a cached copy could hand a snapshot reader a stale resolution
       state. *)
    if Row.is_system_col (snd coord) then begin
      let cell, probed = lookup t coord in
      (cell, Probed probed)
    end
    else (
      match Cache.find cache coord with
      | Some cell -> (cell, Cache_hit)
      | None ->
        let cell, probed = lookup t coord in
        Cache.put cache coord cell;
        (cell, Probed probed))

let get t coord = fst (get_profiled t coord)

(* ------------------------------------------------------------------ *)
(* Snapshot reads at a commit-LSN fence (Minnal-style interval MVCC).

   A version installed by a plain write is visible iff its LSN is at or
   below this range's fence; a version installed by a committed transaction
   is visible iff its commit timestamp is at or below the snapshot's global
   timestamp. An unresolved intent at or below the fence blocks the reader —
   the owning transaction may yet commit with a timestamp inside the
   snapshot. Never served from the LRU row cache: the cache holds only the
   newest resolution, which may postdate the fence. *)

(* Every cell version still reachable for [coord] across memtable and
   SSTables (each table keeps at most one per coord). Newest-first order is
   not guaranteed; callers pick by predicate. *)
let all_versions_at t coord =
  let acc = ref (match Memtable.get t.memtable coord with Some c -> [ c ] | None -> []) in
  List.iter
    (fun table ->
      if Sstable.may_contain_key table (fst coord) then begin
        t.sstables_probed <- t.sstables_probed + 1;
        match Sstable.get table coord with Some c -> acc := c :: !acc | None -> ()
      end
      else t.sstables_skipped <- t.sstables_skipped + 1)
    t.sstables;
  !acc

let snapshot_get t coord ~fence ~fence_ts =
  let key, col = coord in
  let blocked_by =
    match fst (lookup t (key, Row.intent_col col)) with
    | Some c when (not (Row.is_tombstone c)) && Lsn.(c.Row.lsn <= fence) -> (
      match c.Row.value with
      | Some payload -> (
        match Row.decode_intent payload with Some i -> Some i.Row.i_txn | None -> None)
      | None -> None)
    | _ -> None
  in
  match blocked_by with
  | Some txn -> Snap_blocked txn
  | None -> (
    let fallback () =
      (* The chain does not cover the fence (deep history only in SSTables,
         the coordinate was never chained, or the chain was reset by a
         crash): every durable version still carries its own classification,
         so the interval rule applies cell by cell — commit-timestamp
         visibility for transactional versions, plain LSN for the rest. *)
      let visible (c : Row.cell) =
        match c.txn_ts with Some ts -> ts <= fence_ts | None -> Lsn.(c.lsn <= fence)
      in
      match List.filter visible (all_versions_at t coord) with
      | [] -> Snap_none
      | c :: rest -> Snap_cell (List.fold_left (fun a b -> if t.newer a b then a else b) c rest)
    in
    match Hashtbl.find_opt t.mvcc coord with
    | Some chain -> (
      match
        List.find_opt
          (fun v ->
            match v.mv_txn_ts with
            | Some ts -> ts <= fence_ts
            | None -> Lsn.(v.mv_cell.Row.lsn <= fence))
          chain
      with
      | Some v -> Snap_cell v.mv_cell
      | None -> fallback ())
    | None -> fallback ())

(* Newest installed version of a base coordinate with its transactional
   classification — the first-committer-wins conflict check's input. *)
let head_info t coord =
  match Hashtbl.find_opt t.mvcc coord with
  | Some (v :: _) -> Some (v.mv_cell.Row.lsn, v.mv_txn_ts)
  | _ -> (
    match fst (lookup t coord) with
    | Some c -> Some (c.Row.lsn, c.Row.txn_ts)
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Intent index accessors.                                              *)

let intent_txn_at t coord = Hashtbl.find_opt t.intent_at coord

let intents_of t txn =
  match Hashtbl.find_opt t.intents txn with
  | Some i -> List.sort (fun (a, _) (b, _) -> Row.compare_coord a b) i.ii_writes
  | None -> []

let intent_anchor t txn =
  match Hashtbl.find_opt t.intents txn with Some i -> Some i.ii_anchor | None -> None

let live_intents t =
  Hashtbl.fold (fun txn i acc -> (txn, i.ii_anchor, List.map fst i.ii_writes) :: acc) t.intents []
  |> List.sort compare

let in_doubt t ~now ~older_than =
  Hashtbl.fold
    (fun txn i acc ->
      if now - i.ii_time >= older_than then
        let sample =
          match i.ii_writes with ((k, _), _) :: _ -> k | [] -> i.ii_anchor
        in
        (txn, i.ii_anchor, sample) :: acc
      else acc)
    t.intents []
  |> List.sort compare

let read t coord =
  match get t coord with
  | Some cell when not (Row.is_tombstone cell) -> Some cell
  | _ -> None

let current_version t coord =
  match get t coord with Some cell -> cell.Row.version | None -> 0

let scan t ~low ~high ~limit =
  (* Clamp to the range's bounds: shared post-split tables hold the
     sibling's keys too, which must not leak into this range's scans. *)
  let low, high =
    match t.bounds with
    | None -> (low, high)
    | Some (lo, hi) ->
      ((if String.compare low lo < 0 then lo else low),
       if String.compare high hi > 0 then hi else high)
  in
  if limit <= 0 then []
  else begin
    (* Stream the k-way merge of the window and stop as soon as [limit] rows
       are complete — tables outside the key window are never opened, tables
       past the limit never drained. *)
    let sources =
      Iterator.of_seq ~high (Memtable.to_seq_from t.memtable ~low)
      :: List.filter_map
           (fun table ->
             let overlaps =
               match (Sstable.min_key table, Sstable.max_key table) with
               | Some min_key, Some max_key ->
                 String.compare max_key low >= 0 && String.compare min_key high < 0
               | _ -> false
             in
             if overlaps then Some (Iterator.of_sstable ~low ~high table)
             else begin
               t.sstables_skipped <- t.sstables_skipped + 1;
               None
             end)
           t.sstables
    in
    let it = Iterator.merge ~newer:t.newer sources in
    (* Rows accumulate newest-key-last with columns reversed; tombstones
       contribute nothing and fully tombstoned rows never start a row, so
       they do not count toward [limit]. *)
    let finalize rows = List.rev_map (fun (k, cols) -> (k, List.rev cols)) rows in
    let rec go rows nrows =
      match Iterator.next it with
      | None -> finalize rows
      | Some ((key, col), cell) ->
        (* System columns (intents, decision records) never surface in user
           scans. *)
        if Row.is_tombstone cell || Row.is_system_col col then go rows nrows
        else begin
          match rows with
          | (k, cols) :: rest when String.equal k key ->
            go ((k, (col, cell) :: cols) :: rest) nrows
          | _ ->
            if nrows >= limit then finalize rows
            else go ((key, [ (col, cell) ]) :: rows) (nrows + 1)
        end
    in
    go [] 0
  end

(* The MVCC chains and intent index are volatile; recovery rebuilds them
   (chains from the replayed log suffix, intents from the durable heads). *)
let reset_txn_state t =
  Hashtbl.reset t.mvcc;
  Hashtbl.reset t.intents;
  Hashtbl.reset t.intent_at

let crash t =
  t.memtable <- Memtable.create ();
  (* [flushed_upto] is volatile bookkeeping: a crash can land after the
     memtable flush but before the checkpoint record is durable, in which
     case recovery must rederive the flush horizon from stable storage. The
     row cache is volatile too. *)
  t.flushed_upto <- Lsn.zero;
  reset_txn_state t;
  clear_cache t

let wipe t =
  crash t;
  t.sstables <- [];
  t.flushed_upto <- Lsn.zero;
  t.inherited_upto <- Lsn.zero;
  Skipped_lsns.clear t.skipped

(* Rebuild the intent index from durable state: the newest resolution of
   every intent coordinate across memtable and SSTables. A live (untombstoned)
   head means the transaction is still unresolved here — exactly the
   in-doubt set presumed-abort recovery must chase. *)
let rebuild_intents t =
  Hashtbl.reset t.intents;
  Hashtbl.reset t.intent_at;
  Iterator.to_list
    (Iterator.merge ~newer:t.newer
       (Iterator.of_sorted_list (Memtable.to_sorted_list t.memtable)
       :: List.map (fun table -> Iterator.of_sstable table) t.sstables))
  |> List.iter (fun (((key, col) as coord), cell) ->
         if in_bounds t key && Row.is_intent_col col && not (Row.is_tombstone cell) then
           track_system_cell t coord cell)

let recover t =
  t.memtable <- Memtable.create ();
  clear_cache t;
  reset_txn_state t;
  let checkpoint = Wal.last_checkpoint t.wal ~cohort:t.cohort in
  (* SSTables survive the crash; data through the checkpoint is in them.
     A flushed write is definitionally committed (only committed writes reach
     the memtable, §5), so f.cmt is at least the checkpoint even when older
     commit markers were rolled over with the log. A split child's inherited
     tables likewise hold everything through [inherited_upto] — its own log
     only starts after the split. *)
  t.flushed_upto <- Lsn.max t.flushed_upto (Lsn.max checkpoint t.inherited_upto);
  let cmt = Lsn.max t.flushed_upto (Wal.last_commit_marker t.wal ~cohort:t.cohort) in
  let lst = Lsn.max cmt (Wal.last_write_lsn t.wal ~cohort:t.cohort) in
  let replay =
    Wal.durable_writes_in t.wal ~cohort:t.cohort ~above:t.flushed_upto ~upto:cmt
  in
  List.iter
    (fun (lsn, op, timestamp, _) ->
      if not (Skipped_lsns.mem t.skipped lsn) then
        List.iter
          (fun (coord, cell) -> ingest_cell t coord cell)
          (Log_record.cells_of_write op ~lsn ~timestamp))
    replay;
  rebuild_intents t;
  (cmt, lst)

let recover_all t =
  t.memtable <- Memtable.create ();
  clear_cache t;
  reset_txn_state t;
  let checkpoint = Wal.last_checkpoint t.wal ~cohort:t.cohort in
  t.flushed_upto <- Lsn.max t.flushed_upto (Lsn.max checkpoint t.inherited_upto);
  let lst = Wal.last_write_lsn t.wal ~cohort:t.cohort in
  let replay = Wal.durable_writes_in t.wal ~cohort:t.cohort ~above:t.flushed_upto ~upto:lst in
  List.iter
    (fun (lsn, op, timestamp, _) ->
      List.iter
        (fun (coord, cell) -> ingest_cell t coord cell)
        (Log_record.cells_of_write op ~lsn ~timestamp))
    replay;
  rebuild_intents t;
  lst

let all_cells t =
  Iterator.to_list
    (Iterator.merge ~newer:t.newer
       (Iterator.of_sorted_list (Memtable.to_sorted_list t.memtable)
       :: List.map (fun table -> Iterator.of_sstable table) t.sstables))
  |> List.filter (fun ((key, _), _) -> in_bounds t key)

(* Every retained MVCC version *behind* each coordinate's newest — the chain
   tails. A migration snapshot ships these alongside {!all_cells} so the
   joiner can answer interval snapshot reads whose timestamp predates a
   coordinate's newest version, instead of silently serving something
   older still. *)
let chain_history_cells t =
  Hashtbl.fold
    (fun coord chain acc ->
      match chain with
      | [] | [ _ ] -> acc
      | _ :: tail when List.exists (fun v -> v.mv_txn_ts <> None) chain ->
        (* Only chains a committed transaction ever touched: interval reads
           classify plain-only chains by LSN, and skipping them keeps
           migration payloads byte-identical for non-transactional runs. *)
        List.fold_left (fun acc v -> (coord, v.mv_cell) :: acc) acc tail
      | _ -> acc)
    t.mvcc []

let committed_cells_in t ~above ~upto =
  if Lsn.(upto <= above) then []
  else begin
    let from_log = Wal.durable_writes_in t.wal ~cohort:t.cohort ~above ~upto in
    let log_floor = Wal.min_available_write_lsn t.wal ~cohort:t.cohort in
    let log_covers =
      match log_floor with
      | Some floor -> Lsn.(floor <= Lsn.next above) || Lsn.(t.flushed_upto <= above)
      | None -> Lsn.(t.flushed_upto <= above)
    in
    let module Coord_map = Map.Make (struct
      type t = Row.coord

      let compare = Row.compare_coord
    end) in
    (* Per coordinate: every version in the window, in encounter order,
       deduplicated by LSN (the log and SSTable sources can overlap). *)
    let acc = ref Coord_map.empty in
    let consider ((key, _) as coord) (cell : Row.cell) =
      if in_bounds t key then begin
        let prev =
          match Coord_map.find_opt coord !acc with Some l -> l | None -> []
        in
        if not (List.exists (fun (c : Row.cell) -> Lsn.equal c.lsn cell.Row.lsn) prev)
        then acc := Coord_map.add coord (cell :: prev) !acc
      end
    in
    if not log_covers then begin
      (* The log was rolled over below [above]: pull the missing range out of
         SSTables tagged with an overlapping LSN range (§6.1). *)
      t.served_from_sstables <- t.served_from_sstables + 1;
      List.iter
        (fun table ->
          if Lsn.(Sstable.max_lsn table > above) then
            List.iter (fun (coord, cell) -> consider coord cell)
              (Sstable.cells_with_lsn_in table ~above ~upto))
        t.sstables
    end;
    List.iter
      (fun (lsn, op, timestamp, _) ->
        List.iter
          (fun (coord, cell) -> consider coord cell)
          (Log_record.cells_of_write op ~lsn ~timestamp))
      from_log;
    (* Coordinates only touched by plain writes collapse to the newest cell —
       the historical wire format, so purely non-transactional runs ship
       byte-identical payloads. A coordinate with any transactionally
       installed version in the window keeps every version: the receiver
       rebuilds its MVCC chain from these cells, and a missing intermediate
       version would turn a later interval snapshot read (commit timestamp
       between two shipped versions) into a silent stale read. *)
    Coord_map.bindings !acc
    |> List.concat_map (fun (coord, rev_cells) ->
           let cells = List.rev rev_cells in
           if List.exists (fun (c : Row.cell) -> c.Row.txn_ts <> None) cells then
             List.map (fun c -> (coord, c)) cells
           else
             match
               List.fold_left
                 (fun best c ->
                   match best with Some b when t.newer b c -> best | _ -> Some c)
                 None cells
             with
             | Some c -> [ (coord, c) ]
             | None -> [])
    |> List.sort (fun (_, (a : Row.cell)) (_, (b : Row.cell)) -> Lsn.compare a.lsn b.lsn)
  end

let durable_write_lsns_in t ~above ~upto =
  Wal.durable_writes_in t.wal ~cohort:t.cohort ~above ~upto
  |> List.map (fun (lsn, _, _, _) -> lsn)

(* ------------------------------------------------------------------ *)
(* Range split (§10): both children serve before any data is rewritten.  *)

let split_point t =
  (* Median distinct key of the live key population — tombstoned rows still
     occupy key space, so they count. *)
  let keys =
    all_cells t
    |> List.fold_left
         (fun acc ((key, _), _) ->
           match acc with k :: _ when String.equal k key -> acc | _ -> key :: acc)
         []
    |> List.rev
  in
  let n = List.length keys in
  if n < 2 then None
  else
    let median = List.nth keys (n / 2) in
    (* The split point must lie strictly inside the range. *)
    if String.equal median (List.hd keys) then None else Some median

let split_child parent ~cohort ~lo ~hi =
  (* The child shares the parent's immutable SSTables — no data is copied or
     rewritten; out-of-bounds cells are dropped lazily by compaction. The
     parent's memtable must already be flushed (the split protocol flushes
     before logging the split record), so the tables hold everything. *)
  let inherited =
    List.fold_left (fun acc table -> Lsn.max acc (Sstable.max_lsn table)) Lsn.zero
      parent.sstables
  in
  let child =
    create ~cohort ~wal:parent.wal ~newer:parent.newer ~flush_bytes:parent.flush_bytes
      ~compaction_fanin:parent.compaction_fanin ~max_sstables:parent.max_sstables
      ~tier_growth:parent.tier_growth ~cache_capacity:parent.cache_capacity ()
  in
  child.bounds <- Some (lo, hi);
  child.sstables <- parent.sstables;
  child.inherited_upto <- inherited;
  (* The shared tables cover everything through [inherited]; the child's own
     log only starts after the split, so the flush horizon must say so or
     recovery/catch-up would trust a log that cannot cover the prefix. *)
  child.flushed_upto <- inherited;
  (* Unresolved intents in the child's half of the key space ride the shared
     tables; the child must know about them to block snapshot readers and
     answer the in-doubt sweep. *)
  rebuild_intents child;
  child
