type t = {
  cohort : int;
  wal : Wal.t;
  skipped : Skipped_lsns.t;
  newer : Row.cell -> Row.cell -> bool;
  flush_bytes : int;
  compaction_fanin : int;
  mutable memtable : Memtable.t;
  mutable sstables : Sstable.t list;  (** newest first *)
  mutable flushed_upto : Lsn.t;
  mutable served_from_sstables : int;
  lsn_ordered : bool;
      (** [newer] is LSN order, so an SSTable whose [max_lsn] is at or below
          the best cell found so far cannot improve a read. *)
  mutable sstables_skipped : int;
}

let create ~cohort ~wal ?(newer = Row.newer_by_lsn) ?(flush_bytes = 4 * 1024 * 1024)
    ?(compaction_fanin = 4) () =
  {
    cohort;
    wal;
    skipped = Skipped_lsns.create ();
    newer;
    flush_bytes;
    compaction_fanin;
    memtable = Memtable.create ();
    sstables = [];
    flushed_upto = Lsn.zero;
    served_from_sstables = 0;
    lsn_ordered = newer == Row.newer_by_lsn;
    sstables_skipped = 0;
  }

let cohort t = t.cohort
let wal t = t.wal
let skipped t = t.skipped
let flushed_upto t = t.flushed_upto
let sstable_count t = List.length t.sstables
let memtable_size t = Memtable.size t.memtable
let memtable_bytes t = Memtable.approx_bytes t.memtable
let served_from_sstables t = t.served_from_sstables
let sstables_skipped t = t.sstables_skipped

let maybe_compact t =
  if Compaction.should_compact t.sstables ~threshold:t.compaction_fanin then
    (* Full merge over every table, so tombstone GC is safe (§4.1). *)
    t.sstables <- [ Compaction.merge ~newer:t.newer ~drop_tombstones:true t.sstables ]

let flush t =
  if not (Memtable.is_empty t.memtable) then begin
    let table = Sstable.build (Memtable.to_sorted_list t.memtable) in
    let upto = Lsn.max t.flushed_upto (Memtable.max_lsn t.memtable) in
    t.sstables <- table :: t.sstables;
    t.flushed_upto <- upto;
    t.memtable <- Memtable.create ();
    Wal.append t.wal (Log_record.checkpoint ~cohort:t.cohort upto);
    (* Roll the log over only once the checkpoint record is durable. GC-ing
       eagerly opens a crash window in which the durable log holds neither
       the flushed writes nor the checkpoint that replaced them, so recovery
       would silently lose committed data. [Wal.crash] cancels the waiter,
       leaving the log intact across a crash inside the window. *)
    Wal.force t.wal (fun () ->
        Wal.gc_cohort t.wal ~cohort:t.cohort ~upto;
        Skipped_lsns.gc_upto t.skipped upto);
    maybe_compact t
  end

let apply t ~lsn ~timestamp op =
  List.iter
    (fun (coord, cell) -> Memtable.put t.memtable ~newer:t.newer coord cell)
    (Log_record.cells_of_write op ~lsn ~timestamp);
  if Memtable.approx_bytes t.memtable >= t.flush_bytes then flush t

let get t coord =
  let best = ref (Memtable.get t.memtable coord) in
  let consider cell =
    match !best with
    | Some existing when t.newer existing cell -> ()
    | _ -> best := Some cell
  in
  List.iter
    (fun table ->
      (* Skip tables that cannot beat the best cell found so far: bloom says
         the key is absent, or (under LSN order) every cell in the table is
         at or below the current best. Equal LSNs denote the same write, so
         skipping the tie is safe. *)
      let cannot_win =
        (not (Sstable.may_contain_key table (fst coord)))
        ||
        match !best with
        | Some existing when t.lsn_ordered -> Lsn.(existing.Row.lsn >= Sstable.max_lsn table)
        | _ -> false
      in
      if cannot_win then t.sstables_skipped <- t.sstables_skipped + 1
      else
        match Sstable.get table coord with Some cell -> consider cell | None -> ())
    t.sstables;
  !best

let read t coord =
  match get t coord with
  | Some cell when not (Row.is_tombstone cell) -> Some cell
  | _ -> None

let current_version t coord =
  match get t coord with Some cell -> cell.Row.version | None -> 0

let scan t ~low ~high ~limit =
  let module Coord_map = Map.Make (struct
    type t = Row.coord

    let compare = Row.compare_coord
  end) in
  (* Merge the window across memtable and every SSTable, newest cell per
     coordinate. *)
  let acc = ref Coord_map.empty in
  let consider (coord, (cell : Row.cell)) =
    match Coord_map.find_opt coord !acc with
    | Some existing when t.newer existing cell -> ()
    | _ -> acc := Coord_map.add coord cell !acc
  in
  List.iter consider (Memtable.range t.memtable ~low ~high);
  List.iter
    (fun table ->
      (* Skip tables whose key span misses the [low, high) window. *)
      let overlaps =
        match (Sstable.min_key table, Sstable.max_key table) with
        | Some min_key, Some max_key ->
          String.compare max_key low >= 0 && String.compare min_key high < 0
        | _ -> false
      in
      if overlaps then List.iter consider (Sstable.range table ~low ~high)
      else t.sstables_skipped <- t.sstables_skipped + 1)
    t.sstables;
  (* Group by row key (bindings come out coordinate-sorted: key-major). *)
  let rows =
    Coord_map.fold
      (fun (key, col) cell rows ->
        if Row.is_tombstone cell then rows
        else
          match rows with
          | (k, cols) :: rest when String.equal k key -> (k, (col, cell) :: cols) :: rest
          | _ -> (key, [ (col, cell) ]) :: rows)
      !acc []
  in
  let rows = List.rev_map (fun (k, cols) -> (k, List.rev cols)) rows in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | row :: rest -> row :: take (n - 1) rest
  in
  take limit rows

let crash t =
  t.memtable <- Memtable.create ();
  (* [flushed_upto] is volatile bookkeeping: a crash can land after the
     memtable flush but before the checkpoint record is durable, in which
     case recovery must rederive the flush horizon from stable storage. *)
  t.flushed_upto <- Lsn.zero

let wipe t =
  crash t;
  t.sstables <- [];
  t.flushed_upto <- Lsn.zero;
  Skipped_lsns.clear t.skipped

let recover t =
  t.memtable <- Memtable.create ();
  let checkpoint = Wal.last_checkpoint t.wal ~cohort:t.cohort in
  (* SSTables survive the crash; data through the checkpoint is in them.
     A flushed write is definitionally committed (only committed writes reach
     the memtable, §5), so f.cmt is at least the checkpoint even when older
     commit markers were rolled over with the log. *)
  t.flushed_upto <- Lsn.max t.flushed_upto checkpoint;
  let cmt = Lsn.max t.flushed_upto (Wal.last_commit_marker t.wal ~cohort:t.cohort) in
  let lst = Lsn.max cmt (Wal.last_write_lsn t.wal ~cohort:t.cohort) in
  let replay =
    Wal.durable_writes_in t.wal ~cohort:t.cohort ~above:t.flushed_upto ~upto:cmt
  in
  List.iter
    (fun (lsn, op, timestamp, _) ->
      if not (Skipped_lsns.mem t.skipped lsn) then
        List.iter
          (fun (coord, cell) -> Memtable.put t.memtable ~newer:t.newer coord cell)
          (Log_record.cells_of_write op ~lsn ~timestamp))
    replay;
  (cmt, lst)

let recover_all t =
  t.memtable <- Memtable.create ();
  let checkpoint = Wal.last_checkpoint t.wal ~cohort:t.cohort in
  t.flushed_upto <- Lsn.max t.flushed_upto checkpoint;
  let lst = Wal.last_write_lsn t.wal ~cohort:t.cohort in
  let replay = Wal.durable_writes_in t.wal ~cohort:t.cohort ~above:t.flushed_upto ~upto:lst in
  List.iter
    (fun (lsn, op, timestamp, _) ->
      List.iter
        (fun (coord, cell) -> Memtable.put t.memtable ~newer:t.newer coord cell)
        (Log_record.cells_of_write op ~lsn ~timestamp))
    replay;
  lst

let all_cells t =
  let module Coord_map = Map.Make (struct
    type t = Row.coord

    let compare = Row.compare_coord
  end) in
  let acc = ref Coord_map.empty in
  let consider coord (cell : Row.cell) =
    match Coord_map.find_opt coord !acc with
    | Some existing when t.newer existing cell -> ()
    | _ -> acc := Coord_map.add coord cell !acc
  in
  Memtable.iter t.memtable consider;
  List.iter (fun table -> Sstable.iter table consider) t.sstables;
  Coord_map.bindings !acc

let committed_cells_in t ~above ~upto =
  if Lsn.(upto <= above) then []
  else begin
    let from_log = Wal.durable_writes_in t.wal ~cohort:t.cohort ~above ~upto in
    let log_floor = Wal.min_available_write_lsn t.wal ~cohort:t.cohort in
    let log_covers =
      match log_floor with
      | Some floor -> Lsn.(floor <= Lsn.next above) || Lsn.(t.flushed_upto <= above)
      | None -> Lsn.(t.flushed_upto <= above)
    in
    let module Coord_map = Map.Make (struct
      type t = Row.coord

      let compare = Row.compare_coord
    end) in
    let acc = ref Coord_map.empty in
    let consider coord (cell : Row.cell) =
      match Coord_map.find_opt coord !acc with
      | Some existing when t.newer existing cell -> ()
      | _ -> acc := Coord_map.add coord cell !acc
    in
    if not log_covers then begin
      (* The log was rolled over below [above]: pull the missing range out of
         SSTables tagged with an overlapping LSN range (§6.1). *)
      t.served_from_sstables <- t.served_from_sstables + 1;
      List.iter
        (fun table ->
          if Lsn.(Sstable.max_lsn table > above) then
            List.iter (fun (coord, cell) -> consider coord cell)
              (Sstable.cells_with_lsn_in table ~above ~upto))
        t.sstables
    end;
    List.iter
      (fun (lsn, op, timestamp, _) ->
        List.iter
          (fun (coord, cell) -> consider coord cell)
          (Log_record.cells_of_write op ~lsn ~timestamp))
      from_log;
    Coord_map.bindings !acc
    |> List.sort (fun (_, (a : Row.cell)) (_, (b : Row.cell)) -> Lsn.compare a.lsn b.lsn)
  end

let durable_write_lsns_in t ~above ~upto =
  Wal.durable_writes_in t.wal ~cohort:t.cohort ~above ~upto
  |> List.map (fun (lsn, _, _, _) -> lsn)
