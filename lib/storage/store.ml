type read_cost = Cache_hit | Probed of int

type t = {
  cohort : int;
  wal : Wal.t;
  skipped : Skipped_lsns.t;
  newer : Row.cell -> Row.cell -> bool;
  flush_bytes : int;
  compaction_fanin : int;
  max_sstables : int;
  tier_growth : float;
  cache_capacity : int;
  cache : Row.cell option Cache.t option;
  mutable bounds : (Row.key * Row.key) option;
      (** [lo, hi) key bounds once the range has split; cells outside are
          the sibling's and are filtered from exports, catch-up, and
          compaction output *)
  mutable inherited_upto : Lsn.t;
      (** for a split child sharing the parent's SSTables: the highest LSN
          those tables may contain. Durable metadata — survives [crash] —
          because the child's own log starts after the split, so recovery
          must not pretend the log covers the inherited prefix *)
  mutable memtable : Memtable.t;
  mutable sstables : Sstable.t list;  (** newest first *)
  mutable flushed_upto : Lsn.t;
  mutable served_from_sstables : int;
  lsn_ordered : bool;
      (** [newer] is LSN order, so an SSTable whose [max_lsn] is at or below
          the best cell found so far cannot improve a read. *)
  mutable sstables_skipped : int;
  mutable sstables_probed : int;
  mutable compactions : int;
  mutable full_compactions : int;
  mutable last_compaction_input_bytes : int;
  mutable max_compaction_input_bytes : int;
  mutable total_compaction_input_bytes : int;
  mutable max_store_bytes : int;
      (** largest total SSTable footprint observed when a compaction ran —
          the denominator of the tier-bounded-work claim *)
}

let create ~cohort ~wal ?(newer = Row.newer_by_lsn) ?(flush_bytes = 4 * 1024 * 1024)
    ?(compaction_fanin = 4) ?(max_sstables = 16) ?(tier_growth = Compaction.default_growth)
    ?(cache_capacity = 0) () =
  {
    cohort;
    wal;
    skipped = Skipped_lsns.create ();
    newer;
    flush_bytes;
    compaction_fanin;
    max_sstables;
    tier_growth;
    cache_capacity;
    cache = (if cache_capacity > 0 then Some (Cache.create ~capacity:cache_capacity ()) else None);
    bounds = None;
    inherited_upto = Lsn.zero;
    memtable = Memtable.create ();
    sstables = [];
    flushed_upto = Lsn.zero;
    served_from_sstables = 0;
    lsn_ordered = newer == Row.newer_by_lsn;
    sstables_skipped = 0;
    sstables_probed = 0;
    compactions = 0;
    full_compactions = 0;
    last_compaction_input_bytes = 0;
    max_compaction_input_bytes = 0;
    total_compaction_input_bytes = 0;
    max_store_bytes = 0;
  }

let cohort t = t.cohort
let wal t = t.wal
let skipped t = t.skipped
let bounds t = t.bounds
let set_bounds t ~lo ~hi = t.bounds <- Some (lo, hi)
let inherited_upto t = t.inherited_upto

let in_bounds t key =
  match t.bounds with
  | None -> true
  | Some (lo, hi) -> String.compare lo key <= 0 && String.compare key hi < 0
let flushed_upto t = t.flushed_upto
let sstable_count t = List.length t.sstables
let memtable_size t = Memtable.size t.memtable
let memtable_bytes t = Memtable.approx_bytes t.memtable
let served_from_sstables t = t.served_from_sstables
let sstables_skipped t = t.sstables_skipped
let sstables_probed t = t.sstables_probed
let sstable_bytes t = List.fold_left (fun a s -> a + Sstable.approx_bytes s) 0 t.sstables
let compactions t = t.compactions
let full_compactions t = t.full_compactions
let last_compaction_input_bytes t = t.last_compaction_input_bytes
let max_compaction_input_bytes t = t.max_compaction_input_bytes
let total_compaction_input_bytes t = t.total_compaction_input_bytes
let max_store_bytes_at_compaction t = t.max_store_bytes
let cache_hits t = match t.cache with Some c -> Cache.hits c | None -> 0
let cache_misses t = match t.cache with Some c -> Cache.misses c | None -> 0
let cache_evictions t = match t.cache with Some c -> Cache.evictions c | None -> 0
let cache_invalidations t = match t.cache with Some c -> Cache.invalidations c | None -> 0
let cache_size t = match t.cache with Some c -> Cache.size c | None -> 0

let cache_hit_rate t = match t.cache with Some c -> Cache.hit_rate c | None -> 0.0

let clear_cache t = match t.cache with Some c -> Cache.clear c | None -> ()

(* ------------------------------------------------------------------ *)
(* Compaction: size-tiered runs, full merge only at the table cap.      *)

let record_compaction t ~input_bytes ~full =
  t.compactions <- t.compactions + 1;
  if full then t.full_compactions <- t.full_compactions + 1;
  t.last_compaction_input_bytes <- input_bytes;
  if input_bytes > t.max_compaction_input_bytes then
    t.max_compaction_input_bytes <- input_bytes;
  t.total_compaction_input_bytes <- t.total_compaction_input_bytes + input_bytes;
  let store_bytes = sstable_bytes t in
  if store_bytes > t.max_store_bytes then t.max_store_bytes <- store_bytes

(* Split-aware compaction: a child range shares its parent's tables, so a
   merge is where the sibling's cells finally get dropped. *)
let clamp_table t table =
  match t.bounds with
  | None -> table
  | Some _ ->
    Compaction.build_table ~newer:t.newer
      [
        Iterator.of_sorted_list
          (List.filter (fun ((key, _), _) -> in_bounds t key) (Sstable.to_list table));
      ]

(* Split [tables] into (prefix, run, suffix) with [run] the [length] tables
   starting at [start]. *)
let split_run tables ~start ~length =
  let rec go i acc = function
    | rest when i = start ->
      let rec take n run rest =
        match (n, rest) with
        | 0, _ -> (List.rev acc, List.rev run, rest)
        | _, x :: tl -> take (n - 1) (x :: run) tl
        | _, [] -> invalid_arg "Store.split_run: run exceeds table list"
      in
      take length [] rest
    | x :: tl -> go (i + 1) (x :: acc) tl
    | [] -> invalid_arg "Store.split_run: start exceeds table list"
  in
  go 0 [] tables

let rec maybe_compact t =
  match
    Compaction.plan ~fanin:t.compaction_fanin ~max_tables:t.max_sstables
      ~growth:t.tier_growth t.sstables
  with
  | None -> ()
  | Some Compaction.All ->
    (* Safety valve: the tiers failed to keep the fan-in down (or a caller
       forced a major compaction). Covers every table, so tombstone GC is
       safe (§4.1) — which in turn can change [get]'s answer for deleted
       coordinates, so the row cache must drop its entries. *)
    let input_bytes = sstable_bytes t in
    record_compaction t ~input_bytes ~full:true;
    t.sstables <- [ clamp_table t (Compaction.merge ~newer:t.newer ~drop_tombstones:true t.sstables) ];
    clear_cache t
  | Some (Compaction.Run { start; length }) ->
    let prefix, run, suffix = split_run t.sstables ~start ~length in
    let input_bytes = List.fold_left (fun a s -> a + Sstable.approx_bytes s) 0 run in
    record_compaction t ~input_bytes ~full:false;
    (* Partial merge: tombstones must survive, they may shadow live cells in
       older tables outside the run. *)
    let merged = clamp_table t (Compaction.merge ~newer:t.newer run) in
    t.sstables <- prefix @ (merged :: suffix);
    (* The merged table may complete the next tier down; cascade until no
       tier is full. Terminates: every merge shrinks the table count. *)
    maybe_compact t

let major_compact t =
  if t.sstables <> [] then begin
    let input_bytes = sstable_bytes t in
    record_compaction t ~input_bytes ~full:true;
    t.sstables <- [ clamp_table t (Compaction.merge ~newer:t.newer ~drop_tombstones:true t.sstables) ];
    clear_cache t
  end

let flush t =
  if not (Memtable.is_empty t.memtable) then begin
    let table =
      clamp_table t
        (Compaction.build_table ~newer:t.newer
           [ Iterator.of_sorted_list (Memtable.to_sorted_list t.memtable) ])
    in
    let upto = Lsn.max t.flushed_upto (Memtable.max_lsn t.memtable) in
    t.sstables <- table :: t.sstables;
    t.flushed_upto <- upto;
    t.memtable <- Memtable.create ();
    Wal.append t.wal (Log_record.checkpoint ~cohort:t.cohort upto);
    (* Roll the log over only once the checkpoint record is durable. GC-ing
       eagerly opens a crash window in which the durable log holds neither
       the flushed writes nor the checkpoint that replaced them, so recovery
       would silently lose committed data. [Wal.crash] cancels the waiter,
       leaving the log intact across a crash inside the window. *)
    Wal.force t.wal (fun () ->
        Wal.gc_cohort t.wal ~cohort:t.cohort ~upto;
        Skipped_lsns.gc_upto t.skipped upto);
    maybe_compact t
  end

let apply t ~lsn ~timestamp op =
  List.iter
    (fun ((key, _) as coord, cell) ->
      if in_bounds t key then begin
        Memtable.put t.memtable ~newer:t.newer coord cell;
        (* Write-through invalidation: the next read re-resolves the winner. *)
        match t.cache with Some c -> Cache.invalidate c coord | None -> ()
      end)
    (Log_record.cells_of_write op ~lsn ~timestamp);
  if Memtable.approx_bytes t.memtable >= t.flush_bytes then flush t

(* The uncached lookup: newest cell across memtable and SSTables, counting
   how many tables were actually probed (bloom/LSN-pruned tables are not). *)
let lookup t coord =
  let best = ref (Memtable.get t.memtable coord) in
  let probed = ref 0 in
  let consider cell =
    match !best with
    | Some existing when t.newer existing cell -> ()
    | _ -> best := Some cell
  in
  List.iter
    (fun table ->
      (* Skip tables that cannot beat the best cell found so far: bloom says
         the key is absent, or (under LSN order) every cell in the table is
         at or below the current best. Equal LSNs denote the same write, so
         skipping the tie is safe. *)
      let cannot_win =
        (not (Sstable.may_contain_key table (fst coord)))
        ||
        match !best with
        | Some existing when t.lsn_ordered -> Lsn.(existing.Row.lsn >= Sstable.max_lsn table)
        | _ -> false
      in
      if cannot_win then t.sstables_skipped <- t.sstables_skipped + 1
      else begin
        incr probed;
        t.sstables_probed <- t.sstables_probed + 1;
        match Sstable.get table coord with Some cell -> consider cell | None -> ()
      end)
    t.sstables;
  (!best, !probed)

let get_profiled t coord =
  match t.cache with
  | None ->
    let cell, probed = lookup t coord in
    (cell, Probed probed)
  | Some cache -> (
    match Cache.find cache coord with
    | Some cell -> (cell, Cache_hit)
    | None ->
      let cell, probed = lookup t coord in
      Cache.put cache coord cell;
      (cell, Probed probed))

let get t coord = fst (get_profiled t coord)

let read t coord =
  match get t coord with
  | Some cell when not (Row.is_tombstone cell) -> Some cell
  | _ -> None

let current_version t coord =
  match get t coord with Some cell -> cell.Row.version | None -> 0

let scan t ~low ~high ~limit =
  (* Clamp to the range's bounds: shared post-split tables hold the
     sibling's keys too, which must not leak into this range's scans. *)
  let low, high =
    match t.bounds with
    | None -> (low, high)
    | Some (lo, hi) ->
      ((if String.compare low lo < 0 then lo else low),
       if String.compare high hi > 0 then hi else high)
  in
  if limit <= 0 then []
  else begin
    (* Stream the k-way merge of the window and stop as soon as [limit] rows
       are complete — tables outside the key window are never opened, tables
       past the limit never drained. *)
    let sources =
      Iterator.of_seq ~high (Memtable.to_seq_from t.memtable ~low)
      :: List.filter_map
           (fun table ->
             let overlaps =
               match (Sstable.min_key table, Sstable.max_key table) with
               | Some min_key, Some max_key ->
                 String.compare max_key low >= 0 && String.compare min_key high < 0
               | _ -> false
             in
             if overlaps then Some (Iterator.of_sstable ~low ~high table)
             else begin
               t.sstables_skipped <- t.sstables_skipped + 1;
               None
             end)
           t.sstables
    in
    let it = Iterator.merge ~newer:t.newer sources in
    (* Rows accumulate newest-key-last with columns reversed; tombstones
       contribute nothing and fully tombstoned rows never start a row, so
       they do not count toward [limit]. *)
    let finalize rows = List.rev_map (fun (k, cols) -> (k, List.rev cols)) rows in
    let rec go rows nrows =
      match Iterator.next it with
      | None -> finalize rows
      | Some ((key, col), cell) ->
        if Row.is_tombstone cell then go rows nrows
        else begin
          match rows with
          | (k, cols) :: rest when String.equal k key ->
            go ((k, (col, cell) :: cols) :: rest) nrows
          | _ ->
            if nrows >= limit then finalize rows
            else go ((key, [ (col, cell) ]) :: rows) (nrows + 1)
        end
    in
    go [] 0
  end

let crash t =
  t.memtable <- Memtable.create ();
  (* [flushed_upto] is volatile bookkeeping: a crash can land after the
     memtable flush but before the checkpoint record is durable, in which
     case recovery must rederive the flush horizon from stable storage. The
     row cache is volatile too. *)
  t.flushed_upto <- Lsn.zero;
  clear_cache t

let wipe t =
  crash t;
  t.sstables <- [];
  t.flushed_upto <- Lsn.zero;
  t.inherited_upto <- Lsn.zero;
  Skipped_lsns.clear t.skipped

let recover t =
  t.memtable <- Memtable.create ();
  clear_cache t;
  let checkpoint = Wal.last_checkpoint t.wal ~cohort:t.cohort in
  (* SSTables survive the crash; data through the checkpoint is in them.
     A flushed write is definitionally committed (only committed writes reach
     the memtable, §5), so f.cmt is at least the checkpoint even when older
     commit markers were rolled over with the log. A split child's inherited
     tables likewise hold everything through [inherited_upto] — its own log
     only starts after the split. *)
  t.flushed_upto <- Lsn.max t.flushed_upto (Lsn.max checkpoint t.inherited_upto);
  let cmt = Lsn.max t.flushed_upto (Wal.last_commit_marker t.wal ~cohort:t.cohort) in
  let lst = Lsn.max cmt (Wal.last_write_lsn t.wal ~cohort:t.cohort) in
  let replay =
    Wal.durable_writes_in t.wal ~cohort:t.cohort ~above:t.flushed_upto ~upto:cmt
  in
  List.iter
    (fun (lsn, op, timestamp, _) ->
      if not (Skipped_lsns.mem t.skipped lsn) then
        List.iter
          (fun (((key, _) as coord), cell) ->
            if in_bounds t key then Memtable.put t.memtable ~newer:t.newer coord cell)
          (Log_record.cells_of_write op ~lsn ~timestamp))
    replay;
  (cmt, lst)

let recover_all t =
  t.memtable <- Memtable.create ();
  clear_cache t;
  let checkpoint = Wal.last_checkpoint t.wal ~cohort:t.cohort in
  t.flushed_upto <- Lsn.max t.flushed_upto (Lsn.max checkpoint t.inherited_upto);
  let lst = Wal.last_write_lsn t.wal ~cohort:t.cohort in
  let replay = Wal.durable_writes_in t.wal ~cohort:t.cohort ~above:t.flushed_upto ~upto:lst in
  List.iter
    (fun (lsn, op, timestamp, _) ->
      List.iter
        (fun (((key, _) as coord), cell) ->
          if in_bounds t key then Memtable.put t.memtable ~newer:t.newer coord cell)
        (Log_record.cells_of_write op ~lsn ~timestamp))
    replay;
  lst

let all_cells t =
  Iterator.to_list
    (Iterator.merge ~newer:t.newer
       (Iterator.of_sorted_list (Memtable.to_sorted_list t.memtable)
       :: List.map (fun table -> Iterator.of_sstable table) t.sstables))
  |> List.filter (fun ((key, _), _) -> in_bounds t key)

let committed_cells_in t ~above ~upto =
  if Lsn.(upto <= above) then []
  else begin
    let from_log = Wal.durable_writes_in t.wal ~cohort:t.cohort ~above ~upto in
    let log_floor = Wal.min_available_write_lsn t.wal ~cohort:t.cohort in
    let log_covers =
      match log_floor with
      | Some floor -> Lsn.(floor <= Lsn.next above) || Lsn.(t.flushed_upto <= above)
      | None -> Lsn.(t.flushed_upto <= above)
    in
    let module Coord_map = Map.Make (struct
      type t = Row.coord

      let compare = Row.compare_coord
    end) in
    let acc = ref Coord_map.empty in
    let consider ((key, _) as coord) (cell : Row.cell) =
      if in_bounds t key then
        match Coord_map.find_opt coord !acc with
        | Some existing when t.newer existing cell -> ()
        | _ -> acc := Coord_map.add coord cell !acc
    in
    if not log_covers then begin
      (* The log was rolled over below [above]: pull the missing range out of
         SSTables tagged with an overlapping LSN range (§6.1). *)
      t.served_from_sstables <- t.served_from_sstables + 1;
      List.iter
        (fun table ->
          if Lsn.(Sstable.max_lsn table > above) then
            List.iter (fun (coord, cell) -> consider coord cell)
              (Sstable.cells_with_lsn_in table ~above ~upto))
        t.sstables
    end;
    List.iter
      (fun (lsn, op, timestamp, _) ->
        List.iter
          (fun (coord, cell) -> consider coord cell)
          (Log_record.cells_of_write op ~lsn ~timestamp))
      from_log;
    Coord_map.bindings !acc
    |> List.sort (fun (_, (a : Row.cell)) (_, (b : Row.cell)) -> Lsn.compare a.lsn b.lsn)
  end

let durable_write_lsns_in t ~above ~upto =
  Wal.durable_writes_in t.wal ~cohort:t.cohort ~above ~upto
  |> List.map (fun (lsn, _, _, _) -> lsn)

(* ------------------------------------------------------------------ *)
(* Range split (§10): both children serve before any data is rewritten.  *)

let split_point t =
  (* Median distinct key of the live key population — tombstoned rows still
     occupy key space, so they count. *)
  let keys =
    all_cells t
    |> List.fold_left
         (fun acc ((key, _), _) ->
           match acc with k :: _ when String.equal k key -> acc | _ -> key :: acc)
         []
    |> List.rev
  in
  let n = List.length keys in
  if n < 2 then None
  else
    let median = List.nth keys (n / 2) in
    (* The split point must lie strictly inside the range. *)
    if String.equal median (List.hd keys) then None else Some median

let split_child parent ~cohort ~lo ~hi =
  (* The child shares the parent's immutable SSTables — no data is copied or
     rewritten; out-of-bounds cells are dropped lazily by compaction. The
     parent's memtable must already be flushed (the split protocol flushes
     before logging the split record), so the tables hold everything. *)
  let inherited =
    List.fold_left (fun acc table -> Lsn.max acc (Sstable.max_lsn table)) Lsn.zero
      parent.sstables
  in
  let child =
    create ~cohort ~wal:parent.wal ~newer:parent.newer ~flush_bytes:parent.flush_bytes
      ~compaction_fanin:parent.compaction_fanin ~max_sstables:parent.max_sstables
      ~tier_growth:parent.tier_growth ~cache_capacity:parent.cache_capacity ()
  in
  child.bounds <- Some (lo, hi);
  child.sstables <- parent.sstables;
  child.inherited_upto <- inherited;
  (* The shared tables cover everything through [inherited]; the child's own
     log only starts after the split, so the flush horizon must say so or
     recovery/catch-up would trust a log that cannot cover the prefix. *)
  child.flushed_upto <- inherited;
  child
