(* Streaming k-way merge over sorted (coord, cell) cursors. *)

type source = unit -> (Row.coord * Row.cell) option

let of_sorted_list entries =
  let rest = ref entries in
  fun () ->
    match !rest with
    | [] -> None
    | e :: tl ->
      rest := tl;
      Some e

let of_seq ?high seq =
  let rest = ref seq in
  fun () ->
    match !rest () with
    | Seq.Nil -> None
    | Seq.Cons ((((key, _), _) as e), tl) -> (
      match high with
      | Some h when String.compare key h >= 0 ->
        rest := Seq.empty;
        None
      | _ ->
        rest := tl;
        Some e)

let of_sstable ?low ?high table =
  let i = ref (match low with Some l -> Sstable.seek table l | None -> 0) in
  let n = Sstable.count table in
  fun () ->
    if !i >= n then None
    else begin
      let (((key, _), _) as e) = Sstable.entry table !i in
      match high with
      | Some h when String.compare key h >= 0 ->
        i := n;
        None
      | _ ->
        incr i;
        Some e
    end

(* One live cursor in the heap. [rank] is the source's position in the list
   passed to [merge]; it breaks coordinate ties so that duplicates pop in
   source order, making the winner-resolution below replay the seed's
   newest-table-first fold exactly. *)
type slot = { mutable cur : Row.coord * Row.cell; src : source; rank : int }

type t = {
  newer : Row.cell -> Row.cell -> bool;
  heap : slot array;  (** binary min-heap by (coord, rank); [0, len) live *)
  mutable len : int;
}

let slot_lt a b =
  match Row.compare_coord (fst a.cur) (fst b.cur) with
  | 0 -> a.rank < b.rank
  | c -> c < 0

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && slot_lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && slot_lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let merge ~newer sources =
  let live =
    List.concat_map
      (fun (rank, src) ->
        match src () with Some cur -> [ { cur; src; rank } ] | None -> [])
      (List.mapi (fun rank src -> (rank, src)) sources)
  in
  let heap = Array.of_list live in
  let t = { newer; heap; len = Array.length heap } in
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

(* Advance the root's source; drop the cursor when exhausted. *)
let advance_root t =
  let root = t.heap.(0) in
  match root.src () with
  | Some cur ->
    root.cur <- cur;
    sift_down t 0
  | None ->
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end

let next t =
  if t.len = 0 then None
  else begin
    let coord = fst t.heap.(0).cur in
    let best = ref (snd t.heap.(0).cur) in
    advance_root t;
    (* Duplicates pop rank-ascending: keep [best] unless the candidate is at
       least as new (the incoming cell wins unless the existing one is
       strictly newer, as in the map-based merge this replaces). *)
    while t.len > 0 && Row.compare_coord (fst t.heap.(0).cur) coord = 0 do
      let cand = snd t.heap.(0).cur in
      if not (t.newer !best cand) then best := cand;
      advance_root t
    done;
    Some (coord, !best)
  end

let rec iter t f =
  match next t with
  | None -> ()
  | Some (coord, cell) ->
    f coord cell;
    iter t f

let fold t f init =
  let acc = ref init in
  iter t (fun coord cell -> acc := f !acc coord cell);
  !acc

let to_list t = List.rev (fold t (fun acc coord cell -> (coord, cell) :: acc) [])
