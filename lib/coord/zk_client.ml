type t = {
  server : Zk_server.t;
  engine : Sim.Engine.t;
  owner : string;
  session : int;
  latency : Sim.Distribution.t;
  rng : Sim.Rng.t;
  mutable alive : bool;
  mutable reachable : bool;
      (** the owner's link to the coordination service; when cut, calls,
          heartbeats, and watch deliveries are all suppressed *)
  mutable last_contact : Sim.Sim_time.t;
      (** last successful exchange with the service; basis for the client's
          conservative session-expiry detection *)
  mutable on_session_expiry : (unit -> unit) option;
  mutable pending_watches : (unit -> unit) list;
      (** watch events that fired while unreachable, newest first; replayed
          on reconnect (the service tracks watches per session, so a client
          that reconnects within its timeout still learns what changed) *)
  mutable fifo_horizon : Sim.Sim_time.t;
      (** server-side execution time of the client's latest request; later
          requests may not execute before it (ZooKeeper's FIFO client order,
          which watch-then-read patterns rely on) *)
}

let default_latency = Sim.Distribution.Shifted_exponential { base = 150.0; mean_extra = 50.0 }

(* The client declares its own session dead once it has been out of contact
   for over half the timeout — deliberately ahead of the server, which
   expires it only after the full timeout. A partitioned leader therefore
   stops serving strictly before a new leader can be elected on the other
   side (§7). The dead session is never resumed: heartbeats stop, so the
   server expires it (and deletes its ephemerals) even if the partition heals
   meanwhile, and the owner reconnects with a fresh session. *)
let expire t =
  if t.alive then begin
    t.alive <- false;
    match t.on_session_expiry with Some f -> f () | None -> ()
  end

let heartbeat_loop t =
  let timeout_us = Sim.Sim_time.to_us (Zk_server.session_timeout t.server) in
  let interval = Sim.Sim_time.us (timeout_us / 4) in
  let rec beat () =
    if t.alive then begin
      if t.reachable then begin
        Zk_server.heartbeat t.server ~session:t.session;
        t.last_contact <- Sim.Engine.now t.engine
      end
      else begin
        let silent =
          Sim.Sim_time.to_us (Sim.Sim_time.diff (Sim.Engine.now t.engine) t.last_contact)
        in
        if silent * 2 > timeout_us then expire t
      end;
      if t.alive then ignore (Sim.Engine.schedule t.engine ~after:interval beat)
    end
  in
  ignore (Sim.Engine.schedule t.engine ~after:interval beat)

let connect server ~owner ?(latency = default_latency) () =
  let engine = Zk_server.engine server in
  let t =
    {
      server;
      engine;
      owner;
      session = Zk_server.open_session ~owner server;
      latency;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      alive = true;
      reachable = true;
      last_contact = Sim.Engine.now engine;
      on_session_expiry = None;
      pending_watches = [];
      fifo_horizon = Sim.Sim_time.zero;
    }
  in
  heartbeat_loop t;
  t

let owner t = t.owner
let session t = t.session
let alive t = t.alive
let reachable t = t.reachable
let last_contact t = t.last_contact
let set_on_session_expiry t f = t.on_session_expiry <- Some f
let crash t = t.alive <- false

let close t =
  t.alive <- false;
  Zk_server.close_session t.server ~session:t.session

let delay t = Sim.Distribution.sample_span t.latency t.rng

let set_reachable t r =
  if t.reachable <> r then begin
    t.reachable <- r;
    if r && t.alive then begin
      (* Reconnected: the handshake itself is contact, and queued watch
         events are delivered (one service-to-client hop late). *)
      Zk_server.heartbeat t.server ~session:t.session;
      t.last_contact <- Sim.Engine.now t.engine;
      let pending = List.rev t.pending_watches in
      t.pending_watches <- [];
      List.iter
        (fun w ->
          ignore
            (Sim.Engine.schedule t.engine ~after:(delay t) (fun () -> if t.alive then w ())))
        pending
    end
  end

(* One round trip: request travels to the service, executes atomically there,
   and the response travels back. Requests from one client execute in issue
   order (TCP-like FIFO, as in ZooKeeper — the election's arm-watch-then-read
   pattern depends on it). Both legs are suppressed if the client crashed,
   and nothing is sent (or received) while the service is unreachable —
   callers rely on their own retries or on session expiry. *)
let call t op k =
  if t.alive && t.reachable then begin
    let arrival =
      Sim.Sim_time.max
        (Sim.Sim_time.add (Sim.Engine.now t.engine) (delay t))
        (Sim.Sim_time.add t.fifo_horizon (Sim.Sim_time.us 1))
    in
    t.fifo_horizon <- arrival;
    ignore
      (Sim.Engine.schedule_at t.engine arrival (fun () ->
           let result = op () in
           ignore
             (Sim.Engine.schedule t.engine ~after:(delay t) (fun () ->
                  if t.alive && t.reachable then begin
                    t.last_contact <- Sim.Engine.now t.engine;
                    k result
                  end))))
  end

let create_node t ~path ?(data = "") ?(ephemeral = false) ?(sequential = false) k =
  call t
    (fun () ->
      Zk_server.create_node t.server ~session:t.session ~path ~data ~ephemeral ~sequential)
    k

let delete_node t ~path k =
  call t (fun () -> Zk_server.delete_node t.server ~session:t.session ~path) k

let delete_recursive t ~path k =
  call t (fun () -> Zk_server.delete_recursive t.server ~session:t.session ~path) k

let get_data t ~path k = call t (fun () -> Zk_server.get_data t.server ~path) k

let set_data t ~path ~data k =
  call t (fun () -> Zk_server.set_data t.server ~session:t.session ~path ~data) k

let children t ~path k = call t (fun () -> Zk_server.children t.server ~path) k

let incr_counter t ~path k =
  call t (fun () -> Zk_server.incr_counter t.server ~session:t.session ~path) k

let exists t ~path k = call t (fun () -> Zk_server.exists t.server ~path) k

let wrap_watch t w () =
  if t.alive then begin
    if t.reachable then
      ignore
        (Sim.Engine.schedule t.engine ~after:(delay t) (fun () ->
             if not t.alive then ()
             else if t.reachable then w ()
             else t.pending_watches <- w :: t.pending_watches))
    else t.pending_watches <- w :: t.pending_watches
  end

let watch_node t ~path w =
  call t (fun () -> Zk_server.watch_node t.server ~path (wrap_watch t w)) (fun () -> ())

let watch_children t ~path w =
  call t (fun () -> Zk_server.watch_children t.server ~path (wrap_watch t w)) (fun () -> ())
