type t = {
  server : Zk_server.t;
  engine : Sim.Engine.t;
  owner : string;
  session : int;
  latency : Sim.Distribution.t;
  rng : Sim.Rng.t;
  mutable alive : bool;
  mutable fifo_horizon : Sim.Sim_time.t;
      (** server-side execution time of the client's latest request; later
          requests may not execute before it (ZooKeeper's FIFO client order,
          which watch-then-read patterns rely on) *)
}

let default_latency = Sim.Distribution.Shifted_exponential { base = 150.0; mean_extra = 50.0 }

let heartbeat_loop t =
  let interval = Sim.Sim_time.us (Sim.Sim_time.to_us (Zk_server.session_timeout t.server) / 4) in
  let rec beat () =
    if t.alive then begin
      Zk_server.heartbeat t.server ~session:t.session;
      ignore (Sim.Engine.schedule t.engine ~after:interval beat)
    end
  in
  ignore (Sim.Engine.schedule t.engine ~after:interval beat)

let connect server ~owner ?(latency = default_latency) () =
  let engine = Zk_server.engine server in
  let t =
    {
      server;
      engine;
      owner;
      session = Zk_server.open_session server;
      latency;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      alive = true;
      fifo_horizon = Sim.Sim_time.zero;
    }
  in
  heartbeat_loop t;
  t

let owner t = t.owner
let session t = t.session
let alive t = t.alive
let crash t = t.alive <- false

let close t =
  t.alive <- false;
  Zk_server.close_session t.server ~session:t.session

let delay t = Sim.Distribution.sample_span t.latency t.rng

(* One round trip: request travels to the service, executes atomically there,
   and the response travels back. Requests from one client execute in issue
   order (TCP-like FIFO, as in ZooKeeper — the election's arm-watch-then-read
   pattern depends on it). Both legs are suppressed if the client crashed. *)
let call t op k =
  if t.alive then begin
    let arrival =
      Sim.Sim_time.max
        (Sim.Sim_time.add (Sim.Engine.now t.engine) (delay t))
        (Sim.Sim_time.add t.fifo_horizon (Sim.Sim_time.us 1))
    in
    t.fifo_horizon <- arrival;
    ignore
      (Sim.Engine.schedule_at t.engine arrival (fun () ->
           let result = op () in
           ignore
             (Sim.Engine.schedule t.engine ~after:(delay t) (fun () ->
                  if t.alive then k result))))
  end

let create_node t ~path ?(data = "") ?(ephemeral = false) ?(sequential = false) k =
  call t
    (fun () ->
      Zk_server.create_node t.server ~session:t.session ~path ~data ~ephemeral ~sequential)
    k

let delete_node t ~path k =
  call t (fun () -> Zk_server.delete_node t.server ~session:t.session ~path) k

let delete_recursive t ~path k =
  call t (fun () -> Zk_server.delete_recursive t.server ~session:t.session ~path) k

let get_data t ~path k = call t (fun () -> Zk_server.get_data t.server ~path) k

let set_data t ~path ~data k =
  call t (fun () -> Zk_server.set_data t.server ~session:t.session ~path ~data) k

let children t ~path k = call t (fun () -> Zk_server.children t.server ~path) k

let incr_counter t ~path k =
  call t (fun () -> Zk_server.incr_counter t.server ~session:t.session ~path) k

let exists t ~path k = call t (fun () -> Zk_server.exists t.server ~path) k

let wrap_watch t w () =
  if t.alive then ignore (Sim.Engine.schedule t.engine ~after:(delay t) (fun () -> if t.alive then w ()))

let watch_node t ~path w =
  call t (fun () -> Zk_server.watch_node t.server ~path (wrap_watch t w)) (fun () -> ())

let watch_children t ~path w =
  call t (fun () -> Zk_server.watch_children t.server ~path (wrap_watch t w)) (fun () -> ())
