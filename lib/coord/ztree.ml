type error = No_node | Node_exists | Not_empty
type mode = Persistent | Ephemeral of int

type znode = {
  mutable data : string;
  mode : mode;
  children : (string, znode) Hashtbl.t;
}

type t = { root : znode; mutable seq : int }
(* The sequential-znode counter is tree-global and never resets (ZooKeeper
   derives suffixes from transaction ids, which are monotonic for the life
   of the ensemble) — deleting and recreating a directory must not let new
   children reuse the names of old ones. *)

let make_znode data mode = { data; mode; children = Hashtbl.create 4 }
let create () = { root = make_znode "" Persistent; seq = 0 }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let parent_path path =
  match List.rev (split_path path) with
  | [] | [ _ ] -> "/"
  | _ :: rev_parents -> "/" ^ String.concat "/" (List.rev rev_parents)

let find t path =
  let rec go node = function
    | [] -> Some node
    | name :: rest -> (
      match Hashtbl.find_opt node.children name with
      | Some child -> go child rest
      | None -> None)
  in
  go t.root (split_path path)

let create_node t ~path ~data ~mode ~sequential =
  match List.rev (split_path path) with
  | [] -> Error Node_exists
  | leaf :: rev_parents -> (
    let parent = "/" ^ String.concat "/" (List.rev rev_parents) in
    match find t parent with
    | None -> Error No_node
    | Some parent_node ->
      let name =
        if sequential then begin
          let seq = t.seq in
          t.seq <- seq + 1;
          Printf.sprintf "%s%010d" leaf seq
        end
        else leaf
      in
      if Hashtbl.mem parent_node.children name then Error Node_exists
      else begin
        Hashtbl.replace parent_node.children name (make_znode data mode);
        Ok (if parent = "/" then "/" ^ name else parent ^ "/" ^ name)
      end)

let delete_node t ~path =
  match List.rev (split_path path) with
  | [] -> Error No_node
  | leaf :: rev_parents -> (
    let parent = "/" ^ String.concat "/" (List.rev rev_parents) in
    match find t parent with
    | None -> Error No_node
    | Some parent_node -> (
      match Hashtbl.find_opt parent_node.children leaf with
      | None -> Error No_node
      | Some node ->
        if Hashtbl.length node.children > 0 then Error Not_empty
        else begin
          Hashtbl.remove parent_node.children leaf;
          Ok ()
        end))

let rec delete_subtree node =
  Hashtbl.iter (fun _ child -> delete_subtree child) node.children;
  Hashtbl.reset node.children

let delete_recursive t ~path =
  match find t path with
  | None -> ()
  | Some node ->
    delete_subtree node;
    ignore (delete_node t ~path)

let exists t ~path = find t path <> None

let get_data t ~path =
  match find t path with Some node -> Ok node.data | None -> Error No_node

let set_data t ~path ~data =
  match find t path with
  | Some node ->
    node.data <- data;
    Ok ()
  | None -> Error No_node

let children t ~path =
  match find t path with
  | None -> Error No_node
  | Some node ->
    let list = Hashtbl.fold (fun name child acc -> (name, child.data) :: acc) node.children [] in
    Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) list)

let ephemerals_of_session t ~session =
  let acc = ref [] in
  let rec walk prefix node =
    Hashtbl.iter
      (fun name child ->
        let path = if prefix = "/" then "/" ^ name else prefix ^ "/" ^ name in
        walk path child;
        match child.mode with
        | Ephemeral s when s = session -> acc := path :: !acc
        | _ -> ())
      node.children
  in
  walk "/" t.root;
  !acc

let pp_error ppf = function
  | No_node -> Format.pp_print_string ppf "no-node"
  | Node_exists -> Format.pp_print_string ppf "node-exists"
  | Not_empty -> Format.pp_print_string ppf "not-empty"
