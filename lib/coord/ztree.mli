(** The coordination service's data tree (§7.1).

    A directory tree of znodes identified by slash-separated paths. Znodes
    carry opaque binary data, are persistent or ephemeral (auto-deleted when
    the owning session dies), and may be sequential (the service appends a
    unique, monotonically increasing, zero-padded counter to the name, so
    lexicographic order equals creation order). *)

type t

type error = No_node | Node_exists | Not_empty

type mode = Persistent | Ephemeral of int  (** owning session id *)

val create : unit -> t

val create_node :
  t -> path:string -> data:string -> mode:mode -> sequential:bool ->
  (string, error) result
(** Returns the actual path (with the sequence suffix if [sequential]).
    The parent must exist. *)

val delete_node : t -> path:string -> (unit, error) result
(** Fails with [Not_empty] if the znode has children. *)

val delete_recursive : t -> path:string -> unit
(** Removes the subtree if present; no-op otherwise. *)

val exists : t -> path:string -> bool

val get_data : t -> path:string -> (string, error) result

val set_data : t -> path:string -> data:string -> (unit, error) result

val children : t -> path:string -> ((string * string) list, error) result
(** (name, data) pairs sorted by name; for sequential children this is
    creation order. *)

val ephemerals_of_session : t -> session:int -> string list
(** Absolute paths of all ephemerals owned by the session, leaf-first. *)

val parent_path : string -> string
(** ["/a/b/c"] -> ["/a/b"]; the parent of ["/"] is ["/"]. *)

val pp_error : Format.formatter -> error -> unit
