type session = {
  id : int;
  owner : string;
  mutable last_seen : Sim.Sim_time.t;
  mutable live : bool;
}

type t = {
  engine : Sim.Engine.t;
  tree : Ztree.t;
  session_timeout : Sim.Sim_time.span;
  sessions : (int, session) Hashtbl.t;
  mutable next_session : int;
  node_watches : (string, (unit -> unit) list) Hashtbl.t;
  child_watches : (string, (unit -> unit) list) Hashtbl.t;
  mutable trace : Sim.Trace.t option;
}

let engine t = t.engine
let session_timeout t = t.session_timeout
let attach_trace t trace = t.trace <- Some trace

(* Owners follow the "node-%d"/"client-%d" convention; recovering the node id
   lets lifecycle events land on that node's track in the exported trace. *)
let node_of_owner owner =
  match String.index_opt owner '-' with
  | Some i when String.length owner > i + 1 && String.sub owner 0 i = "node" -> (
      match int_of_string_opt (String.sub owner (i + 1) (String.length owner - i - 1)) with
      | Some id -> id
      | None -> -1)
  | _ -> -1

let lifecycle t ?(node = -1) ~tag detail =
  match t.trace with
  | None -> ()
  | Some trace -> Sim.Trace.event trace ~node ~tag detail

let fire table path =
  match Hashtbl.find_opt table path with
  | None -> ()
  | Some watchers ->
    Hashtbl.remove table path;
    List.iter (fun w -> w ()) (List.rev watchers)

let notify_created_or_deleted t path =
  fire t.node_watches path;
  fire t.child_watches (Ztree.parent_path path)

let expire_session t session =
  if session.live then begin
    session.live <- false;
    lifecycle t ~node:(node_of_owner session.owner) ~tag:"zk.session_expired"
      (Printf.sprintf "session=%d owner=%s" session.id session.owner);
    let ephemerals = Ztree.ephemerals_of_session t.tree ~session:session.id in
    List.iter
      (fun path ->
        Ztree.delete_recursive t.tree ~path;
        lifecycle t ~node:(node_of_owner session.owner) ~tag:"zk.znode_deleted"
          (Printf.sprintf "%s (session %d expired)" path session.id);
        notify_created_or_deleted t path)
      ephemerals
  end

let sweep t =
  let now = Sim.Engine.now t.engine in
  Hashtbl.iter
    (fun _ s ->
      if s.live && Sim.Sim_time.(add s.last_seen t.session_timeout < now) then expire_session t s)
    t.sessions

let create engine ?(session_timeout = Sim.Sim_time.sec 2) () =
  let t =
    {
      engine;
      tree = Ztree.create ();
      session_timeout;
      sessions = Hashtbl.create 32;
      next_session = 1;
      node_watches = Hashtbl.create 32;
      child_watches = Hashtbl.create 32;
      trace = None;
    }
  in
  let sweep_every = Sim.Sim_time.us (Stdlib.max 1 (Sim.Sim_time.to_us session_timeout / 4)) in
  let rec tick () =
    sweep t;
    ignore (Sim.Engine.schedule engine ~after:sweep_every tick)
  in
  ignore (Sim.Engine.schedule engine ~after:sweep_every tick);
  t

let open_session ?(owner = "") t =
  let id = t.next_session in
  t.next_session <- id + 1;
  Hashtbl.replace t.sessions id { id; owner; last_seen = Sim.Engine.now t.engine; live = true };
  lifecycle t ~node:(node_of_owner owner) ~tag:"zk.session_created"
    (Printf.sprintf "session=%d owner=%s" id owner);
  id

let heartbeat t ~session =
  match Hashtbl.find_opt t.sessions session with
  | Some s when s.live -> s.last_seen <- Sim.Engine.now t.engine
  | _ -> ()

let close_session t ~session =
  match Hashtbl.find_opt t.sessions session with
  | Some s -> expire_session t s
  | None -> ()

let session_live t ~session =
  match Hashtbl.find_opt t.sessions session with Some s -> s.live | None -> false

let owner_node t ~session =
  match Hashtbl.find_opt t.sessions session with
  | Some s -> node_of_owner s.owner
  | None -> -1

let create_node t ~session ~path ~data ~ephemeral ~sequential =
  heartbeat t ~session;
  let mode = if ephemeral then Ztree.Ephemeral session else Ztree.Persistent in
  match Ztree.create_node t.tree ~path ~data ~mode ~sequential with
  | Ok actual ->
    lifecycle t ~node:(owner_node t ~session) ~tag:"zk.znode_created"
      (if ephemeral then actual ^ " (ephemeral)" else actual);
    notify_created_or_deleted t actual;
    Ok actual
  | Error _ as e -> e

let delete_node t ~session ~path =
  heartbeat t ~session;
  match Ztree.delete_node t.tree ~path with
  | Ok () ->
    lifecycle t ~node:(owner_node t ~session) ~tag:"zk.znode_deleted" path;
    notify_created_or_deleted t path;
    Ok ()
  | Error _ as e -> e

let delete_recursive t ~session ~path =
  heartbeat t ~session;
  if Ztree.exists t.tree ~path then begin
    Ztree.delete_recursive t.tree ~path;
    lifecycle t ~node:(owner_node t ~session) ~tag:"zk.znode_deleted" (path ^ " (recursive)");
    notify_created_or_deleted t path
  end

let exists t ~path = Ztree.exists t.tree ~path
let get_data t ~path = Ztree.get_data t.tree ~path

let set_data t ~session ~path ~data =
  heartbeat t ~session;
  match Ztree.set_data t.tree ~path ~data with
  | Ok () ->
    fire t.node_watches path;
    Ok ()
  | Error _ as e -> e

let children t ~path = Ztree.children t.tree ~path

let incr_counter t ~session ~path =
  heartbeat t ~session;
  let current =
    match Ztree.get_data t.tree ~path with
    | Ok data -> ( match int_of_string_opt data with Some v -> v | None -> 0)
    | Error _ -> 0
  in
  let next = current + 1 in
  (match Ztree.set_data t.tree ~path ~data:(string_of_int next) with
  | Ok () -> ()
  | Error _ ->
    ignore
      (Ztree.create_node t.tree ~path ~data:(string_of_int next) ~mode:Ztree.Persistent
         ~sequential:false));
  fire t.node_watches path;
  next

let add_watch table path w =
  let existing = Option.value ~default:[] (Hashtbl.find_opt table path) in
  Hashtbl.replace table path (w :: existing)

let watch_node t ~path w = add_watch t.node_watches path w
let watch_children t ~path w = add_watch t.child_watches path w
let expire_sessions_now t = sweep t
