(** The coordination service process (§4.2, §7.1).

    Holds the znode tree, client sessions, and watches. Sessions are kept
    alive by heartbeats; when one expires, its ephemeral znodes are deleted
    and the relevant watches fire — this is Spinnaker's failure detector.
    Watches are one-shot, as in Zookeeper.

    The service is modelled as a single highly available process: the paper
    treats Zookeeper (internally a replicated Paxos/ZAB ensemble) as an
    external fault-tolerant building block that is off the critical path of
    reads and writes. *)

type t

val create : Sim.Engine.t -> ?session_timeout:Sim.Sim_time.span -> unit -> t
(** [session_timeout] defaults to 2 s, the paper's Zookeeper setting (§D.1). *)

val engine : t -> Sim.Engine.t

val session_timeout : t -> Sim.Sim_time.span

val attach_trace : t -> Sim.Trace.t -> unit
(** Emit structured lifecycle events ([zk.session_created],
    [zk.session_expired], [zk.znode_created], [zk.znode_deleted]) to the
    trace. Owners named ["node-<id>"] have their events attributed to that
    node. *)

(** {2 Sessions} *)

val open_session : ?owner:string -> t -> int
(** Returns a fresh session id; the caller must heartbeat it. [owner] is a
    display name recorded in lifecycle events. *)

val heartbeat : t -> session:int -> unit
(** Any client request also counts as a heartbeat. *)

val close_session : t -> session:int -> unit
(** Graceful close: ephemerals deleted immediately. *)

val session_live : t -> session:int -> bool

(** {2 Znode operations} — synchronous; the client handle adds latency. *)

val create_node :
  t -> session:int -> path:string -> data:string -> ephemeral:bool -> sequential:bool ->
  (string, Ztree.error) result

val delete_node : t -> session:int -> path:string -> (unit, Ztree.error) result

val delete_recursive : t -> session:int -> path:string -> unit

val exists : t -> path:string -> bool

val get_data : t -> path:string -> (string, Ztree.error) result

val set_data : t -> session:int -> path:string -> data:string -> (unit, Ztree.error) result

val children : t -> path:string -> ((string * string) list, Ztree.error) result

val incr_counter : t -> session:int -> path:string -> int
(** Atomic fetch-and-increment of an integer znode, creating it at 1 if
    absent; returns the new value. Used for epoch numbers (Appendix B). *)

(** {2 Watches} — one-shot. *)

val watch_node : t -> path:string -> (unit -> unit) -> unit
(** Fires when the znode at [path] is created, deleted or its data set. *)

val watch_children : t -> path:string -> (unit -> unit) -> unit
(** Fires when a child is created or deleted under [path]. *)

val expire_sessions_now : t -> unit
(** Test hook: run the expiry sweep immediately. *)
