(** Client handle to the coordination service.

    Each datastore node embeds one (§7.2). Calls pay a round-trip latency to
    the service; responses and watch notifications are suppressed once the
    owner crashes (its session then expires and ephemerals disappear). A
    restarted node connects with a {e new} session. Heartbeats run
    automatically until [crash] or [close]. *)

type t

val connect :
  Zk_server.t -> owner:string -> ?latency:Sim.Distribution.t -> unit -> t
(** [latency] is the one-way client-service delay (default ~200 µs —
    the service sits on the same rack fabric but behind its own switch hop). *)

val owner : t -> string

val session : t -> int

val alive : t -> bool

val reachable : t -> bool

val last_contact : t -> Sim.Sim_time.t
(** Time of the last successful exchange with the service (heartbeat,
    reconnect handshake, or call response). Conservative from the server's
    point of view: the server has heard from this session at least this
    recently. Leader leases are anchored to it — a lease of less than half
    the session timeout past [last_contact] lapses strictly before the
    client-side expiry that lets a new leader be elected. *)

val set_reachable : t -> bool -> unit
(** Cut (or heal) the owner's link to the coordination service, leaving the
    owner itself and the data network untouched. While unreachable: calls
    are never sent, responses and watch notifications are not delivered
    (watch events queue for replay on reconnect), and heartbeats stop — so
    the server expires the session after its timeout. The client itself
    conservatively declares the session dead once it has been out of contact
    for over half the timeout, strictly before the server-side expiry that
    lets a new leader be elected (§7). *)

val set_on_session_expiry : t -> (unit -> unit) -> unit
(** Hook invoked once when the client declares its session dead (see
    {!set_reachable}). The handle is unusable afterwards ([alive] is false);
    the owner must {!connect} a fresh session. *)

val crash : t -> unit
(** Stop heartbeating and drop pending responses; the server will expire the
    session after its timeout, deleting this client's ephemerals. *)

val close : t -> unit
(** Graceful shutdown: the session closes immediately on the server. *)

val create_node :
  t -> path:string -> ?data:string -> ?ephemeral:bool -> ?sequential:bool ->
  ((string, Ztree.error) result -> unit) -> unit

val delete_node : t -> path:string -> ((unit, Ztree.error) result -> unit) -> unit

val delete_recursive : t -> path:string -> (unit -> unit) -> unit

val get_data : t -> path:string -> ((string, Ztree.error) result -> unit) -> unit

val set_data : t -> path:string -> data:string -> ((unit, Ztree.error) result -> unit) -> unit

val children : t -> path:string -> (((string * string) list, Ztree.error) result -> unit) -> unit

val incr_counter : t -> path:string -> (int -> unit) -> unit

val exists : t -> path:string -> (bool -> unit) -> unit

val watch_node : t -> path:string -> (unit -> unit) -> unit
(** One-shot; the notification pays the service-to-client latency and is
    dropped if this handle crashed meanwhile. *)

val watch_children : t -> path:string -> (unit -> unit) -> unit
