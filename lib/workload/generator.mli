(** Workload key/value generation (§C): 4 KB values, random rows for reads,
    consecutive keys for writes. *)

type key_mode =
  | Uniform_random  (** each op picks a uniformly random row *)
  | Consecutive of { stride : int }
      (** thread [i] walks keys [offset + i], [offset + i + stride], ... *)
  | Hotspot of { fraction_hot : float; hot_keys : int }
      (** skew: [fraction_hot] of ops hit a fixed hot set of [hot_keys] keys
          strided evenly across the key space (so the skew spans every range
          instead of saturating one leader) *)

(** {2 Operation-weight specs}

    The audit battery mixes operations by weight instead of a single
    read/write fraction: weights need not sum to one (they are normalized
    at draw time), and conditional increments are a first-class class so
    figure-14-style compare-and-set load composes with plain reads and
    writes in one run. *)

type op = Read | Write | Cond_incr

type weights = { read : float; write : float; cond_incr : float }

val weights : ?read:float -> ?write:float -> ?cond_incr:float -> unit -> weights
(** Missing weights default to 0. Raises [Invalid_argument] if any weight is
    negative or all are zero. *)

val read_only : weights

val of_write_fraction : conditional:bool -> float -> weights
(** The legacy spec surface: write fraction [f], conditionally routed
    through the compare-and-set path. *)

val write_fraction_of : weights -> float
(** Fraction of operations that mutate ([write + cond_incr], normalized) —
    what legacy reports called the write fraction. *)

val pick_op : Sim.Rng.t -> weights -> op
(** One draw from the normalized weight distribution. *)

type t

val create :
  rng:Sim.Rng.t ->
  key_space:int ->
  mode:key_mode ->
  thread:int ->
  t
(** The generator encodes keys directly (zero-padded decimal, the same
    encoding as [Partition.key_of_int]) rather than consulting a routing
    table: the key space is fixed while the range layout under it moves as
    splits and migrations commit. *)

val next_key : t -> Storage.Row.key

val account_pair : Sim.Rng.t -> accounts:int -> int * int
(** Two distinct account indices for a bank transfer, uniform over ordered
    pairs; exactly two rng draws. Raises if [accounts < 2]. *)

val value : size:int -> string
(** A deterministic payload of the given size (shared; contents opaque). *)
