(** Workload key/value generation (§C): 4 KB values, random rows for reads,
    consecutive keys for writes. *)

type key_mode =
  | Uniform_random  (** each op picks a uniformly random row *)
  | Consecutive of { stride : int }
      (** thread [i] walks keys [offset + i], [offset + i + stride], ... *)
  | Hotspot of { fraction_hot : float; hot_keys : int }
      (** skew: [fraction_hot] of ops hit a fixed hot set of [hot_keys] keys
          strided evenly across the key space (so the skew spans every range
          instead of saturating one leader) *)

type t

val create :
  rng:Sim.Rng.t ->
  key_space:int ->
  mode:key_mode ->
  thread:int ->
  t
(** The generator encodes keys directly (zero-padded decimal, the same
    encoding as [Partition.key_of_int]) rather than consulting a routing
    table: the key space is fixed while the range layout under it moves as
    splits and migrations commit. *)

val next_key : t -> Storage.Row.key

val value : size:int -> string
(** A deterministic payload of the given size (shared; contents opaque). *)
