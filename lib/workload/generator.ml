type key_mode =
  | Uniform_random
  | Consecutive of { stride : int }
  | Hotspot of { fraction_hot : float; hot_keys : int }

type op = Read | Write | Cond_incr

type weights = { read : float; write : float; cond_incr : float }

let weights ?(read = 0.0) ?(write = 0.0) ?(cond_incr = 0.0) () =
  if read < 0.0 || write < 0.0 || cond_incr < 0.0 then
    invalid_arg "Generator.weights: negative weight";
  if read +. write +. cond_incr <= 0.0 then
    invalid_arg "Generator.weights: all weights zero";
  { read; write; cond_incr }

let read_only = { read = 1.0; write = 0.0; cond_incr = 0.0 }

let of_write_fraction ~conditional f =
  if f <= 0.0 then read_only
  else if conditional then { read = 1.0 -. f; write = 0.0; cond_incr = f }
  else { read = 1.0 -. f; write = f; cond_incr = 0.0 }

let write_fraction_of w =
  (w.write +. w.cond_incr) /. (w.read +. w.write +. w.cond_incr)

(* Mutating classes first: with weights from [of_write_fraction] (which sum
   to 1), one draw lands writes on [0, f) — bit-identical to the historical
   [float rng 1.0 < write_fraction] stream, so seeded benchmarks keep their
   exact schedules. *)
let pick_op rng w =
  let u = Sim.Rng.float rng (w.read +. w.write +. w.cond_incr) in
  if u < w.write then Write
  else if u < w.write +. w.cond_incr then Cond_incr
  else Read

type t = {
  rng : Sim.Rng.t;
  key_space : int;
  width : int;
  mode : key_mode;
  mutable cursor : int;
}

let create ~rng ~key_space ~mode ~thread =
  (* Consecutive threads start at independent random offsets (distinct client
     machines in the paper's setup), so the walk spreads across ranges. *)
  let cursor =
    match mode with
    | Consecutive _ -> Sim.Rng.int rng key_space + thread
    | Uniform_random | Hotspot _ -> thread
  in
  (* Zero-padded decimal encoding, same as [Partition.key_of_int]. The
     generator deliberately does not hold a routing table: keys are a
     property of the key space, and the layout underneath them moves as
     ranges split and migrate. *)
  { rng; key_space; width = String.length (string_of_int key_space); mode; cursor }

let next_key t =
  let k =
    match t.mode with
    | Uniform_random -> Sim.Rng.int t.rng t.key_space
    | Consecutive { stride } ->
      let k = t.cursor mod t.key_space in
      t.cursor <- t.cursor + stride;
      k
    | Hotspot { fraction_hot; hot_keys } ->
      if Sim.Rng.float t.rng 1.0 < fraction_hot then
        (* Stride the hot set across the whole key space so it spans every
           range; contiguous hot keys would all hash to one leader and
           measure that leader's saturation rather than the read path. *)
        let stride = Stdlib.max 1 (t.key_space / hot_keys) in
        Sim.Rng.int t.rng hot_keys * stride
      else Sim.Rng.int t.rng t.key_space
  in
  (* Zero-padded decimal, equivalent to [Printf.sprintf "%0*d" t.width k]
     for the non-negative k < 10^width generated above — hand-rolled because
     this runs once per simulated request. *)
  let b = Bytes.make t.width '0' in
  let rec fill i k =
    if k > 0 then begin
      Bytes.unsafe_set b i (Char.unsafe_chr (48 + (k mod 10)));
      fill (i - 1) (k / 10)
    end
  in
  fill (t.width - 1) k;
  Bytes.unsafe_to_string b

(* Transfer endpoints for the bank workload: two distinct accounts, uniform
   over ordered pairs. The second draw is an offset in [1, accounts), so no
   rejection loop perturbs the rng stream. *)
let account_pair rng ~accounts =
  if accounts < 2 then invalid_arg "Generator.account_pair: need >= 2 accounts";
  let a = Sim.Rng.int rng accounts in
  let b = (a + 1 + Sim.Rng.int rng (accounts - 1)) mod accounts in
  (a, b)

let values : (int, string) Hashtbl.t = Hashtbl.create 4

let value ~size =
  match Hashtbl.find_opt values size with
  | Some v -> v
  | None ->
    let v = String.init size (fun i -> Char.chr (33 + ((i * 31) mod 90))) in
    Hashtbl.replace values size v;
    v
