(** Datastore-agnostic operation interface, so one experiment harness can
    drive Spinnaker (consistent or timeline) and the eventually consistent
    baseline (weak or quorum) identically — the four lines of Figures 8/12. *)

type t = {
  name : string;
  read : key:Storage.Row.key -> ok:(bool -> unit) -> unit;
  write : key:Storage.Row.key -> value:string -> ok:(bool -> unit) -> unit;
  conditional_increment : key:Storage.Row.key -> ok:(bool -> unit) -> unit;
      (** read-modify-write via conditional put where supported; plain
          read+write elsewhere *)
}

val spinnaker :
  Spinnaker.Cluster.t -> consistent_reads:bool -> unit -> t
(** Fresh protocol client per call; use one driver per simulated thread. *)

val spinnaker_conditional : Spinnaker.Cluster.t -> t
(** Writes use conditional put (read version, then conditional put) — the
    Figure 14 workload. *)

val masterslave : Masterslave.Ms_pair.t -> unit -> t
(** The §1.1 baseline pair: whole key space on one synchronously replicated
    master; conditional increments degrade to read-then-write. *)

val cassandra :
  Eventual.Cas_cluster.t ->
  read_level:Eventual.Cas_message.level ->
  write_level:Eventual.Cas_message.level ->
  unit ->
  t
