type t = {
  name : string;
  read : key:Storage.Row.key -> ok:(bool -> unit) -> unit;
  write : key:Storage.Row.key -> value:string -> ok:(bool -> unit) -> unit;
  conditional_increment : key:Storage.Row.key -> ok:(bool -> unit) -> unit;
}

let column = "v"

let spinnaker cluster ~consistent_reads () =
  let client = Spinnaker.Cluster.new_client cluster in
  let read ~key ~ok =
    Spinnaker.Client.get client ~consistent:consistent_reads key column (fun r ->
        ok (Result.is_ok r))
  in
  let write ~key ~value ~ok =
    Spinnaker.Client.put client key column ~value (fun r -> ok (Result.is_ok r))
  in
  let conditional_increment ~key ~ok =
    Spinnaker.Client.get client ~consistent:true key column (function
      | Error _ -> ok false
      | Ok { version; _ } ->
        Spinnaker.Client.conditional_put client key column ~value:"1" ~expected:version
          (fun r -> ok (Result.is_ok r)))
  in
  {
    name = (if consistent_reads then "spinnaker-consistent" else "spinnaker-timeline");
    read;
    write;
    conditional_increment;
  }

(* Figure 14's workload: every write is a conditional put replacing the
   current value, with the version obtained from a prior consistent read. *)
let spinnaker_conditional cluster =
  let client = Spinnaker.Cluster.new_client cluster in
  let read ~key ~ok =
    Spinnaker.Client.get client ~consistent:true key column (fun r -> ok (Result.is_ok r))
  in
  let write ~key ~value ~ok =
    Spinnaker.Client.get client ~consistent:true key column (function
      | Error _ -> ok false
      | Ok { version; _ } ->
        Spinnaker.Client.conditional_put client key column ~value ~expected:version (fun r ->
            ok (Result.is_ok r)))
  in
  let conditional_increment ~key ~ok = write ~key ~value:"1" ~ok in
  { name = "spinnaker-conditional"; read; write; conditional_increment }

(* The §1.1 baseline: one synchronously replicated master-slave pair. No
   per-key routing (the pair holds the whole key space) and no versioned
   conditional primitive — conditional increments degrade to read-then-write
   on the acting master, which is race-free only because the pair serializes
   all writes anyway. *)
let masterslave pair () =
  let read ~key ~ok = Masterslave.Ms_pair.get pair ~key (fun v -> ok (v <> None)) in
  let write ~key ~value ~ok =
    Masterslave.Ms_pair.put pair ~key ~value (fun r -> ok (Result.is_ok r))
  in
  let conditional_increment ~key ~ok =
    Masterslave.Ms_pair.get pair ~key (function
      | None -> ok false
      | Some _ -> Masterslave.Ms_pair.put pair ~key ~value:"1" (fun r -> ok (Result.is_ok r)))
  in
  { name = "masterslave"; read; write; conditional_increment }

let cassandra cluster ~read_level ~write_level () =
  let client = Eventual.Cas_cluster.new_client cluster in
  let read ~key ~ok =
    Eventual.Cas_client.get client ~level:read_level key column (fun r -> ok (Result.is_ok r))
  in
  let write ~key ~value ~ok =
    Eventual.Cas_client.put client ~level:write_level key column ~value (fun r ->
        ok (Result.is_ok r))
  in
  let conditional_increment ~key ~ok =
    (* No conditional primitive in the eventually consistent store: emulate
       with read-then-write (last writer wins, races unresolved). *)
    Eventual.Cas_client.get client ~level:read_level key column (function
      | Error _ -> ok false
      | Ok _ ->
        Eventual.Cas_client.put client ~level:write_level key column ~value:"1" (fun r ->
            ok (Result.is_ok r)))
  in
  let level_name = function Eventual.Cas_message.One -> "weak" | Eventual.Cas_message.Quorum -> "quorum" in
  {
    name = Printf.sprintf "cassandra-%s-read-%s-write" (level_name read_level) (level_name write_level);
    read;
    write;
    conditional_increment;
  }
