(** Closed-loop load experiments (§C).

    A fixed number of client threads each issue one request at a time; the
    reported "load" on the X axis of the paper's figures is the measured
    request rate, a function of the thread count. Latency samples are taken
    only inside the measurement window (after warm-up). *)

type spec = {
  threads : int;
  write_fraction : float;  (** 0.0 = pure reads, 1.0 = pure writes *)
  conditional : bool;  (** use the conditional-increment path for writes *)
  weights : Generator.weights option;
      (** when set, overrides [write_fraction]/[conditional]: each op is one
          weighted draw over read / write / conditional-increment *)
  key_mode : Generator.key_mode;
  value_bytes : int;
  warmup : Sim.Sim_time.span;
  measure : Sim.Sim_time.span;
}

val default_spec : spec

val spec_weights : spec -> Generator.weights
(** The effective operation mix: [weights] when present, otherwise the
    legacy [write_fraction]/[conditional] pair lifted to weights. *)

type outcome = {
  spec : spec;
  all : Sim.Metrics.run_stats;
  reads : Sim.Metrics.run_stats;
  writes : Sim.Metrics.run_stats;
}

val run :
  engine:Sim.Engine.t ->
  key_space:int ->
  make_driver:(unit -> Driver.t) ->
  spec ->
  outcome
(** Runs the engine through warm-up plus measurement. [make_driver] is
    called once per thread (each gets its own protocol client). *)

type sweep_point = { threads : int; outcome : outcome }

val sweep :
  engine:Sim.Engine.t ->
  key_space:int ->
  make_driver:(unit -> Driver.t) ->
  thread_counts:int list ->
  spec ->
  sweep_point list
(** Re-runs [spec] at each thread count (powers of two in the paper). *)

val pp_outcome : Format.formatter -> outcome -> unit

val json_of_outcome : outcome -> Sim.Json.t
(** [{threads, write_fraction, all, reads, writes}] with per-class
    {!Sim.Metrics.json_of_run_stats} summaries. *)

val json_of_sweep : sweep_point list -> Sim.Json.t
(** JSON array of {!json_of_outcome}, one element per thread count — the
    [series] payload of a [BENCH_*.json] file. *)
