(** Closed-loop load experiments (§C).

    A fixed number of client threads each issue one request at a time; the
    reported "load" on the X axis of the paper's figures is the measured
    request rate, a function of the thread count. Latency samples are taken
    only inside the measurement window (after warm-up). *)

type spec = {
  threads : int;
  write_fraction : float;  (** 0.0 = pure reads, 1.0 = pure writes *)
  conditional : bool;  (** use the conditional-increment path for writes *)
  weights : Generator.weights option;
      (** when set, overrides [write_fraction]/[conditional]: each op is one
          weighted draw over read / write / conditional-increment *)
  key_mode : Generator.key_mode;
  value_bytes : int;
  warmup : Sim.Sim_time.span;
  measure : Sim.Sim_time.span;
}

val default_spec : spec

val spec_weights : spec -> Generator.weights
(** The effective operation mix: [weights] when present, otherwise the
    legacy [write_fraction]/[conditional] pair lifted to weights. *)

type outcome = {
  spec : spec;
  all : Sim.Metrics.run_stats;
  reads : Sim.Metrics.run_stats;
  writes : Sim.Metrics.run_stats;
}

val run :
  engine:Sim.Engine.t ->
  key_space:int ->
  make_driver:(unit -> Driver.t) ->
  spec ->
  outcome
(** Runs the engine through warm-up plus measurement. [make_driver] is
    called once per thread (each gets its own protocol client). *)

(** {2 Bank transfers: the multi-key transaction workload}

    A YCSB+T-style closed economy: [accounts] balances strided across the
    whole key space (so transfers cross ranges and exercise real 2PC), each
    teller thread repeatedly moving a small amount between two random
    accounts inside one {!Spinnaker.Txn.run}. Concurrent read-only snapshot
    audits assert the total balance is conserved at every snapshot, and
    everything that committed feeds {!History.check_serializable}. *)

type bank_outcome = {
  transfers_committed : int;
  transfers_aborted : int;  (** conflicts, blocked reads, decided aborts *)
  transfers_unresolved : int;
      (** outcome unknown even after the post-quiesce status query *)
  bank_audits : int;  (** committed snapshot audits (incl. the final one) *)
  bank_violations : (string * string) list;
      (** (invariant, detail): [conservation] and [serializability] *)
  bank_history : History.t;
  transfer_stats : Sim.Metrics.run_stats;  (** committed-transfer latency *)
}

val run_bank :
  engine:Sim.Engine.t ->
  cluster:Spinnaker.Cluster.t ->
  ?accounts:int ->
  ?initial_balance:int ->
  ?threads:int ->
  ?duration:Sim.Sim_time.span ->
  ?audit_period:Sim.Sim_time.span ->
  ?heal:(unit -> unit) ->
  ?quiesce:Sim.Sim_time.span ->
  ?in_flight:int ref ->
  unit ->
  bank_outcome
(** Drive the bank for [duration], call [heal] (fault cleanup, for chaos
    harnesses), quiesce, resolve in-doubt transfers against their
    coordinators, run a final audit, and check serializability.
    [in_flight], when given, tracks the number of transfers mid-protocol —
    chaos harnesses couple it to a hazard crash process so leaders die
    preferentially between prepare and resolve. *)

val json_of_bank : bank_outcome -> Sim.Json.t
(** The [BENCH_txn.json] payload: counts, violations, transfer latency. *)

type sweep_point = { threads : int; outcome : outcome }

val sweep :
  engine:Sim.Engine.t ->
  key_space:int ->
  make_driver:(unit -> Driver.t) ->
  thread_counts:int list ->
  spec ->
  sweep_point list
(** Re-runs [spec] at each thread count (powers of two in the paper). *)

val pp_outcome : Format.formatter -> outcome -> unit

val json_of_outcome : outcome -> Sim.Json.t
(** [{threads, write_fraction, all, reads, writes}] with per-class
    {!Sim.Metrics.json_of_run_stats} summaries. *)

val json_of_sweep : sweep_point list -> Sim.Json.t
(** JSON array of {!json_of_outcome}, one element per thread count — the
    [series] payload of a [BENCH_*.json] file. *)
