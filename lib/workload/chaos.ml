(* The chaos harness behind the nemesis tests, the shrinker fixture, and the
   cross-backend audit battery. One seeded run = keyed serial writers plus
   concurrent strong readers driven through a fault profile, then heal,
   quiesce, and check the §1.1 claims; instead of asserting, the run returns
   a [verdict] whose violation list the caller (a test, the ddmin shrinker's
   oracle, or `bench audit`) interprets. Passing [?schedule] replays an
   explicit injection log — seed-free chaos — against a pre-registered
   universe of crash targets and fault toggles. *)

open Spinnaker
module Failure = Sim.Failure

(* ------------------------------------------------------------------ *)
(* Fault profiles                                                      *)

type profile = Steady | Crashes | Partitions | Lossy | Mixed

let profile_name = function
  | Steady -> "steady"
  | Crashes -> "crashes"
  | Partitions -> "partitions"
  | Lossy -> "lossy"
  | Mixed -> "mixed"

let profile_of_string = function
  | "steady" -> Some Steady
  | "crashes" -> Some Crashes
  | "partitions" -> Some Partitions
  | "lossy" -> Some Lossy
  | "mixed" -> Some Mixed
  | _ -> None

(* Lossy-link parameters are module constants so the toggle's label — the
   name injections carry in a schedule — is identical in the run that
   records and the run that replays. *)
let lossy_loss = 0.08
let lossy_duplicate = 0.08
let lossy_jitter = Sim.Distribution.Uniform (0.0, 400.0)

let default_config =
  {
    Config.default with
    Config.nodes = 5;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

type verdict = {
  seed : int;
  profile : profile;
  planted_bug : bool;
  schedule : Failure.schedule;
  exposure : (string * int) list;
  violations : (string * string) list;
  fingerprint : string;
  acked : int;
  indeterminate : int;
  n_writes : int;
  n_reads : int;
  outliers : Sim.Json.t option;
      (** flight-recorder dump (Perfetto trace of the run's slowest pinned
          requests), captured automatically when the verdict has violations
          so the failure ships with its own latency evidence *)
}

let failed v = v.violations <> []

let json_of_verdict v =
  Sim.Json.Obj
    [
      ("seed", Sim.Json.Int v.seed);
      ("profile", Sim.Json.String (profile_name v.profile));
      ("planted_bug", Sim.Json.Bool v.planted_bug);
      ( "violations",
        Sim.Json.List
          (List.map
             (fun (invariant, detail) ->
               Sim.Json.Obj
                 [
                   ("invariant", Sim.Json.String invariant);
                   ("detail", Sim.Json.String detail);
                 ])
             v.violations) );
      ("fingerprint", Sim.Json.String v.fingerprint);
      ("acked", Sim.Json.Int v.acked);
      ("indeterminate", Sim.Json.Int v.indeterminate);
      ("writes", Sim.Json.Int v.n_writes);
      ("reads", Sim.Json.Int v.n_reads);
      ("injections", Failure.json_of_schedule v.schedule);
    ]

let schedule_of_artifact_json = function
  | Sim.Json.List _ as l -> Failure.schedule_of_json l
  | Sim.Json.Obj _ as o -> (
    match Sim.Json.member "injections" o with
    | Some s -> Failure.schedule_of_json s
    | None -> Error "artifact object has no \"injections\" field")
  | _ -> Error "expected a schedule array or a verdict artifact object"

(* ------------------------------------------------------------------ *)
(* The replayable fault universe                                       *)

(* Register every subject a recorded schedule could name, whether or not
   this run's own generators would have drawn it: crash targets for all
   nodes, symmetric and one-way partition toggles for all pairs, the lossy
   episode, and per-node coordination-service cuts. *)
let register_universe failure cluster =
  let net = Cluster.net cluster in
  let nodes = Array.length (Cluster.nodes cluster) in
  let all = List.init nodes Fun.id in
  List.iter (Failure.register_target failure) (Cluster.failure_targets cluster);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then
            Failure.register_toggle failure (Failure.pair_partition_toggle net a b);
          if a <> b then
            Failure.register_toggle failure (Failure.oneway_toggle net ~src:a ~dst:b))
        all)
    all;
  Failure.register_toggle failure
    (Failure.link_faults_toggle net ~loss:lossy_loss ~duplicate:lossy_duplicate
       ~jitter:lossy_jitter all);
  List.iter
    (fun n ->
      Failure.register_toggle failure
        (Failure.toggle
           ~label:(Printf.sprintf "zk-cut-n%d" n)
           ~engage:(fun () -> Cluster.set_zk_reachable cluster n false)
           ~disengage:(fun () -> Cluster.set_zk_reachable cluster n true)))
    all

(* Seed-driven gauntlet for one profile. [Mixed] composes everything and
   adds a hazard crash process whose per-tick probability spikes while a
   replica migration is in flight — a live signal a seed alone cannot
   encode, which is exactly why fired injections are logged for replay. *)
let unleash failure cluster ~profile ~until =
  let net = Cluster.net cluster in
  let nodes = Array.length (Cluster.nodes cluster) in
  let all_nodes = List.init nodes Fun.id in
  let targets = Cluster.failure_targets cluster in
  let crash_targets = List.filteri (fun i _ -> i < 2) targets in
  let crashes () =
    Failure.chaos failure
      ~mean_time_to_failure:(Sim.Sim_time.sec 3)
      ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
      ~until crash_targets
  in
  let partitions () =
    Failure.random_pair_partition_chaos failure net ~nodes:all_nodes
      ~mean_time_to_fault:(Sim.Sim_time.ms 1500)
      ~mean_time_to_heal:(Sim.Sim_time.ms 700)
      ~until
  in
  let lossy () =
    let tog =
      Failure.link_faults_toggle net ~loss:lossy_loss ~duplicate:lossy_duplicate
        ~jitter:lossy_jitter all_nodes
    in
    Failure.toggle_chaos failure
      ~mean_time_to_fault:(Sim.Sim_time.ms 900)
      ~mean_time_to_heal:(Sim.Sim_time.ms 900)
      ~until [ tog ]
  in
  match profile with
  | Steady -> ()
  | Crashes -> crashes ()
  | Partitions -> partitions ()
  | Lossy -> lossy ()
  | Mixed ->
    crashes ();
    partitions ();
    lossy ();
    let zkn = nodes - 1 in
    let zk =
      Failure.toggle
        ~label:(Printf.sprintf "zk-cut-n%d" zkn)
        ~engage:(fun () -> Cluster.set_zk_reachable cluster zkn false)
        ~disengage:(fun () -> Cluster.set_zk_reachable cluster zkn true)
    in
    Failure.toggle_chaos failure
      ~mean_time_to_fault:(Sim.Sim_time.sec 4)
      ~mean_time_to_heal:(Sim.Sim_time.sec 1)
      ~until [ zk ];
    if nodes > 2 then
      Failure.hazard_crash_chaos failure
        ~period:(Sim.Sim_time.ms 250)
        ~p_per_tick:0.02
        ~multiplier:(fun () ->
          if Cluster.migrations_in_flight cluster > 0 then 6.0 else 1.0)
        ~max_concurrent:1
        ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
        ~until
        [ List.nth targets 2 ]

let heal_everything cluster =
  let net = Cluster.net cluster in
  let nodes = Array.length (Cluster.nodes cluster) in
  let all_nodes = List.init nodes Fun.id in
  Sim.Network.heal net;
  Sim.Network.clear_default_faults net;
  List.iter
    (fun s ->
      List.iter
        (fun d -> if s <> d then Sim.Network.clear_link_faults net ~src:s ~dst:d)
        all_nodes)
    all_nodes;
  List.iter (fun n -> Cluster.set_zk_reachable cluster n true) all_nodes;
  List.iter (fun n -> Cluster.restart_node cluster n) all_nodes

(* ------------------------------------------------------------------ *)
(* The Spinnaker gauntlet run                                          *)

type outcome_count = { mutable acked : int; mutable indeterminate : int }

(* Serial writer per key, values = sequence numbers: the final version
   counter must land in [acked, acked + indeterminate]. *)
let spawn_probe_writer engine client history outcomes running ~key ~period =
  let seq = ref 0 in
  let rec write_loop () =
    if !running then begin
      incr seq;
      let this = !seq in
      let invoked = Sim.Engine.now engine in
      Client.put client key "c" ~value:(string_of_int this) (fun result ->
          let o = Hashtbl.find outcomes key in
          if Result.is_ok result then o.acked <- o.acked + 1
          else o.indeterminate <- o.indeterminate + 1;
          History.record_write history ~key ~seq:this ~invoked
            ~completed:(Sim.Engine.now engine)
            ~acked:(Result.is_ok result);
          ignore (Sim.Engine.schedule engine ~after:period write_loop))
    end
  in
  write_loop ()

let spawn_probe_reader engine client history running ~key ~period =
  let rec read_loop () =
    if !running then begin
      let invoked = Sim.Engine.now engine in
      Client.get client key "c" (fun result ->
          (match result with
          | Ok Client.{ value; _ } ->
            History.record_read history ~key
              ~observed:(Option.map int_of_string value)
              ~invoked
              ~completed:(Sim.Engine.now engine)
          | Error _ -> ());
          ignore (Sim.Engine.schedule engine ~after:period read_loop))
    end
  in
  read_loop ()

let drive_read engine client ~key =
  let r = ref None in
  Client.get client key "c" (fun x -> r := Some x);
  let rec drive n =
    match !r with
    | Some v -> v
    | None when n = 0 -> Error Client.Timed_out
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
      drive (n - 1)
  in
  drive 3000

(* Exactly-once at the log level: in the committed, non-truncated prefix no
   (client, request id) origin may appear under two LSNs. *)
let check_no_double_commit cluster flag =
  let partition = Cluster.partition cluster in
  for range = 0 to Partition.ranges partition - 1 do
    match Cluster.leader_of cluster ~range with
    | None -> flag "layout-incoherence" (Printf.sprintf "range %d has no open leader after heal" range)
    | Some l -> (
      let node = Cluster.node cluster l in
      match Node.cohort node ~range with
      | None -> ()
      | Some c ->
        let skipped = Cohort.skipped_lsns c in
        let seen = Hashtbl.create 64 in
        List.iter
          (fun (lsn, _, _, origin) ->
            if not (List.exists (Storage.Lsn.equal lsn) skipped) then
              match origin with
              | None -> ()
              | Some o -> (
                match Hashtbl.find_opt seen o with
                | Some prev when not (Storage.Lsn.equal prev lsn) ->
                  flag "double-apply"
                    (Printf.sprintf "range %d origin (c%d,#%d) committed twice (lsn %s and %s)"
                       range (fst o) (snd o) (Storage.Lsn.to_string prev)
                       (Storage.Lsn.to_string lsn))
                | _ -> Hashtbl.replace seen o lsn))
          (Storage.Wal.durable_writes_in (Node.wal node) ~cohort:range
             ~above:Storage.Lsn.zero ~upto:(Cohort.cmt c)))
  done

let run_spinnaker ?(config = default_config) ?(profile = Mixed) ?schedule
    ?(planted_hole_ack_bug = false) ?(chaos_for = Sim.Sim_time.sec 10)
    ?(quiesce_for = Sim.Sim_time.sec 10) ~seed () =
  Cohort.chaos_ack_past_holes := planted_hole_ack_bug;
  Fun.protect ~finally:(fun () -> Cohort.chaos_ack_past_holes := false)
  @@ fun () ->
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  let violations = ref [] in
  let flag invariant detail = violations := (invariant, detail) :: !violations in
  let verdict ~schedule ~exposure ~fingerprint ~acked ~indeterminate ~n_writes ~n_reads =
    (* A failing run carries its flight-recorder pins out with it: the
       slowest requests' full causal traces, dumpable next to the schedule
       artifact without re-running anything. *)
    let outliers =
      if !violations <> [] && Sim.Trace.Flight.pinned (Cluster.flight cluster) > 0 then
        Some (Sim.Trace_export.outliers_to_json (Cluster.flight cluster))
      else None
    in
    {
      seed;
      profile;
      planted_bug = planted_hole_ack_bug;
      schedule;
      exposure;
      violations = List.rev !violations;
      fingerprint;
      acked;
      indeterminate;
      n_writes;
      n_reads;
      outliers;
    }
  in
  if not (Cluster.run_until_ready cluster) then begin
    flag "setup" "cluster never became ready";
    verdict ~schedule:[] ~exposure:[] ~fingerprint:"" ~acked:0 ~indeterminate:0
      ~n_writes:0 ~n_reads:0
  end
  else begin
    let partition = Cluster.partition cluster in
    let failure = Failure.create engine in
    register_universe failure cluster;
    (* Satellite: fault exposure doubles as nemesis_* gauges in the cluster
       registry, sampled alongside the storage gauges. *)
    Failure.attach_metrics failure (Cluster.metrics cluster);
    let history = History.create () in
    let keys = List.map (Partition.key_of_int partition) [ 3; 47; 91 ] in
    let outcomes = Hashtbl.create 8 in
    List.iter
      (fun key -> Hashtbl.replace outcomes key { acked = 0; indeterminate = 0 })
      keys;
    let running = ref true in
    List.iter
      (fun key ->
        spawn_probe_writer engine (Cluster.new_client cluster) history outcomes
          running ~key ~period:(Sim.Sim_time.ms 60))
      keys;
    List.iter
      (fun key ->
        spawn_probe_reader engine (Cluster.new_client cluster) history running ~key
          ~period:(Sim.Sim_time.ms 45))
      keys;
    let until = Sim.Sim_time.add (Sim.Engine.now engine) chaos_for in
    (match schedule with
    | Some s -> Failure.apply failure s
    | None -> unleash failure cluster ~profile ~until);
    Sim.Engine.run_for engine (Sim.Sim_time.span_add chaos_for (Sim.Sim_time.sec 1));
    running := false;
    heal_everything cluster;
    Sim.Engine.run_for engine quiesce_for;
    (* Final strong reads close the history and pin each key's version. *)
    let final_client = Cluster.new_client cluster in
    List.iter
      (fun key ->
        let invoked = Sim.Engine.now engine in
        match drive_read engine final_client ~key with
        | Ok Client.{ value; version } ->
          History.record_read history ~key
            ~observed:(Option.map int_of_string value)
            ~invoked
            ~completed:(Sim.Engine.now engine);
          let o = Hashtbl.find outcomes key in
          if version < o.acked then
            flag "lost-acked-write"
              (Printf.sprintf "key %s: version %d < %d acked" key version o.acked);
          if version > o.acked + o.indeterminate then
            flag "double-apply"
              (Printf.sprintf "key %s: version %d > %d acked + %d indeterminate" key
                 version o.acked o.indeterminate)
        | _ -> flag "unavailable-after-heal" (Printf.sprintf "final read of %s failed" key))
      keys;
    check_no_double_commit cluster flag;
    List.iter
      (fun v ->
        flag "linearizability" (Format.asprintf "%a" History.pp_violation v))
      (History.check history);
    let acked = Hashtbl.fold (fun _ o a -> a + o.acked) outcomes 0 in
    let indeterminate = Hashtbl.fold (fun _ o a -> a + o.indeterminate) outcomes 0 in
    verdict ~schedule:(Failure.injections failure) ~exposure:(Failure.exposure failure)
      ~fingerprint:(History.fingerprint history) ~acked ~indeterminate
      ~n_writes:(History.writes history) ~n_reads:(History.reads history)
  end

(* Shrinking: ddmin over the recorded schedule, oracle = "replaying the
   candidate under the same seed still violates an invariant". The baseline
   replay of the full log is checked first so the shrinker never chases a
   failure that does not survive the record/replay round-trip. *)
let shrink_spinnaker ?config ?profile ?planted_hole_ack_bug ?chaos_for ?quiesce_for
    ?max_replays ~seed () =
  let run ?schedule () =
    run_spinnaker ?config ?profile ?schedule ?planted_hole_ack_bug ?chaos_for
      ?quiesce_for ~seed ()
  in
  let recorded = run () in
  if not (failed recorded) then None
  else begin
    let replayed = run ~schedule:recorded.schedule () in
    if not (failed replayed) then None
    else
      let minimal, stats =
        Sim.Shrink.ddmin ?max_replays
          ~replay:(fun s -> failed (run ~schedule:s ()))
          recorded.schedule
      in
      Some (recorded, minimal, stats)
  end

(* ------------------------------------------------------------------ *)
(* The transaction gauntlet: cross-range bank transfers under crashes  *)

(* Crash chaos aimed at 2PC's weakest moment: a hazard process whose rate
   multiplies while transfers are mid-protocol, with two concurrent crash
   slots — so a coordinator's leader and a participant's leader die together
   between prepare and resolve. Recovery then has to finish the transaction
   from its logs: decision lookup, presumed abort, intent sweep. *)
let unleash_txn failure cluster ~in_flight ~until =
  let targets = Cluster.failure_targets cluster in
  (match targets with
  | first :: _ ->
    Failure.chaos failure
      ~mean_time_to_failure:(Sim.Sim_time.sec 4)
      ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
      ~until [ first ]
  | [] -> ());
  let hazard_targets = List.filteri (fun i _ -> i >= 1 && i < 3) targets in
  if hazard_targets <> [] then
    Failure.hazard_crash_chaos failure
      ~period:(Sim.Sim_time.ms 200)
      ~p_per_tick:0.015
      ~multiplier:(fun () -> if !in_flight > 0 then 8.0 else 1.0)
      ~max_concurrent:2
      ~mean_time_to_repair:(Sim.Sim_time.ms 1200)
      ~until hazard_targets

(* After heal + quiesce the intent sweep must have converged every range on
   every replica: a write intent with no live transaction is an orphan that
   would block snapshot readers forever. *)
let check_no_orphaned_intents cluster flag =
  let partition = Cluster.partition cluster in
  Array.iteri
    (fun n node ->
      for range = 0 to Partition.ranges partition - 1 do
        match Node.cohort node ~range with
        | None -> ()
        | Some c ->
          List.iter
            (fun (txn, _, coords) ->
              flag "orphaned-intent"
                (Printf.sprintf
                   "node %d range %d: txn %s still holds %d intents after quiesce" n
                   range txn (List.length coords)))
            (Storage.Store.live_intents (Cohort.store c))
      done)
    (Cluster.nodes cluster)

let run_txn_bank ?(config = default_config) ?schedule
    ?(chaos_for = Sim.Sim_time.sec 8) ?(quiesce_for = Sim.Sim_time.sec 12) ~seed () =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  let violations = ref [] in
  let flag invariant detail = violations := (invariant, detail) :: !violations in
  let verdict ~schedule ~exposure ~fingerprint ~acked ~indeterminate ~n_writes ~n_reads =
    let outliers =
      if !violations <> [] && Sim.Trace.Flight.pinned (Cluster.flight cluster) > 0 then
        Some (Sim.Trace_export.outliers_to_json (Cluster.flight cluster))
      else None
    in
    {
      seed;
      profile = Crashes;
      planted_bug = false;
      schedule;
      exposure;
      violations = List.rev !violations;
      fingerprint;
      acked;
      indeterminate;
      n_writes;
      n_reads;
      outliers;
    }
  in
  if not (Cluster.run_until_ready cluster) then begin
    flag "setup" "cluster never became ready";
    verdict ~schedule:[] ~exposure:[] ~fingerprint:"" ~acked:0 ~indeterminate:0
      ~n_writes:0 ~n_reads:0
  end
  else begin
    let failure = Failure.create engine in
    register_universe failure cluster;
    Failure.attach_metrics failure (Cluster.metrics cluster);
    let in_flight = ref 0 in
    let until = Sim.Sim_time.add (Sim.Engine.now engine) chaos_for in
    (match schedule with
    | Some s -> Failure.apply failure s
    | None -> unleash_txn failure cluster ~in_flight ~until);
    let bank =
      Experiment.run_bank ~engine ~cluster ~accounts:12 ~threads:4
        ~duration:chaos_for ~in_flight
        ~heal:(fun () -> heal_everything cluster)
        ~quiesce:quiesce_for ()
    in
    List.iter (fun (invariant, detail) -> flag invariant detail)
      bank.Experiment.bank_violations;
    check_no_orphaned_intents cluster flag;
    verdict ~schedule:(Failure.injections failure) ~exposure:(Failure.exposure failure)
      ~fingerprint:(History.fingerprint bank.Experiment.bank_history)
      ~acked:bank.Experiment.transfers_committed
      ~indeterminate:bank.Experiment.transfers_unresolved
      ~n_writes:(History.txns bank.Experiment.bank_history)
      ~n_reads:bank.Experiment.bank_audits
  end

let shrink_txn_bank ?config ?chaos_for ?quiesce_for ?max_replays ~seed () =
  let run ?schedule () = run_txn_bank ?config ?schedule ?chaos_for ?quiesce_for ~seed () in
  let recorded = run () in
  if not (failed recorded) then None
  else begin
    let replayed = run ~schedule:recorded.schedule () in
    if not (failed replayed) then None
    else
      let minimal, stats =
        Sim.Shrink.ddmin ?max_replays
          ~replay:(fun s -> failed (run ~schedule:s ()))
          recorded.schedule
      in
      Some (recorded, minimal, stats)
  end

(* ------------------------------------------------------------------ *)
(* Audit cells: one backend under one fault profile and workload spec  *)

type audit = {
  a_outcome : Experiment.outcome;
  a_exposure : (string * int) list;
  a_net : Sim.Json.t option;
  a_violations : (string * string) list;
}

let audit_spinnaker ?(track = fun (_ : Sim.Engine.t) -> ()) ~seed ~config ~profile ~spec ~key_space () =
  let engine = Sim.Engine.create ~seed () in
  track engine;
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  let violations = ref [] in
  let flag invariant detail = violations := (invariant, detail) :: !violations in
  if not (Cluster.run_until_ready cluster) then
    flag "setup" "cluster never became ready";
  let failure = Failure.create engine in
  register_universe failure cluster;
  Failure.attach_metrics failure (Cluster.metrics cluster);
  let history = History.create () in
  let partition = Cluster.partition cluster in
  let probe_key = Partition.key_of_int partition 7 in
  let outcomes = Hashtbl.create 1 in
  Hashtbl.replace outcomes probe_key { acked = 0; indeterminate = 0 };
  let running = ref true in
  spawn_probe_writer engine (Cluster.new_client cluster) history outcomes running
    ~key:probe_key ~period:(Sim.Sim_time.ms 80);
  spawn_probe_reader engine (Cluster.new_client cluster) history running
    ~key:probe_key ~period:(Sim.Sim_time.ms 65);
  let horizon =
    Sim.Sim_time.add
      (Sim.Sim_time.add (Sim.Engine.now engine) spec.Experiment.warmup)
      spec.Experiment.measure
  in
  unleash failure cluster ~profile ~until:horizon;
  let outcome =
    Experiment.run ~engine ~key_space
      ~make_driver:(Driver.spinnaker cluster ~consistent_reads:true)
      spec
  in
  running := false;
  heal_everything cluster;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 8);
  let final_client = Cluster.new_client cluster in
  (match drive_read engine final_client ~key:probe_key with
  | Ok Client.{ version; _ } ->
    let o = Hashtbl.find outcomes probe_key in
    if version < o.acked then
      flag "lost-acked-write"
        (Printf.sprintf "probe key: version %d < %d acked" version o.acked);
    if version > o.acked + o.indeterminate then
      flag "double-apply"
        (Printf.sprintf "probe key: version %d > %d acked + %d indeterminate" version
           o.acked o.indeterminate)
  | _ -> flag "unavailable-after-heal" "final probe read failed");
  List.iter
    (fun v -> flag "linearizability" (Format.asprintf "%a" History.pp_violation v))
    (History.check history);
  {
    a_outcome = outcome;
    a_exposure = Failure.exposure failure;
    a_net = Some (Sim.Metrics.json_of_net_stats (Sim.Network.stats (Cluster.net cluster)));
    a_violations = List.rev !violations;
  }

(* The eventually consistent baseline has no linearizability promise to
   check; what it does promise (QUORUM writes forced to the WAL before the
   ack, R + W > N) is that an acked quorum write survives crashes and is
   visible to a healed quorum read — the lost-acked-write invariant only. *)
let audit_eventual ?(track = fun (_ : Sim.Engine.t) -> ()) ~seed ~config ~profile ~spec ~key_space () =
  let engine = Sim.Engine.create ~seed () in
  track engine;
  let cluster = Eventual.Cas_cluster.create engine config in
  Eventual.Cas_cluster.start cluster;
  let violations = ref [] in
  let flag invariant detail = violations := (invariant, detail) :: !violations in
  let failure = Failure.create engine in
  let net = Eventual.Cas_cluster.net cluster in
  let nodes = config.Config.nodes in
  let all_nodes = List.init nodes Fun.id in
  let targets = Eventual.Cas_cluster.failure_targets cluster in
  let horizon =
    Sim.Sim_time.add
      (Sim.Sim_time.add (Sim.Engine.now engine) spec.Experiment.warmup)
      spec.Experiment.measure
  in
  (match profile with
  | Steady -> ()
  | Crashes | Mixed ->
    Failure.chaos failure
      ~mean_time_to_failure:(Sim.Sim_time.sec 3)
      ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
      ~until:horizon
      (List.filteri (fun i _ -> i < 2) targets)
  | Partitions ->
    Failure.random_pair_partition_chaos failure net ~nodes:all_nodes
      ~mean_time_to_fault:(Sim.Sim_time.ms 1500)
      ~mean_time_to_heal:(Sim.Sim_time.ms 700)
      ~until:horizon
  | Lossy ->
    let tog =
      Failure.link_faults_toggle net ~loss:lossy_loss ~duplicate:lossy_duplicate
        ~jitter:lossy_jitter all_nodes
    in
    Failure.toggle_chaos failure
      ~mean_time_to_fault:(Sim.Sim_time.ms 900)
      ~mean_time_to_heal:(Sim.Sim_time.ms 900)
      ~until:horizon [ tog ]);
  let partition = Eventual.Cas_cluster.partition cluster in
  let probe_key = Partition.key_of_int partition 7 in
  let probe = Eventual.Cas_cluster.new_client cluster in
  let max_acked = ref 0 in
  let seq = ref 0 in
  let running = ref true in
  let rec probe_loop () =
    if !running then begin
      incr seq;
      let this = !seq in
      Eventual.Cas_client.put probe ~level:Eventual.Cas_message.Quorum probe_key "c"
        ~value:(string_of_int this) (fun result ->
          if Result.is_ok result then max_acked := Stdlib.max !max_acked this;
          ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 80) probe_loop))
    end
  in
  probe_loop ();
  let outcome =
    Experiment.run ~engine ~key_space
      ~make_driver:
        (Driver.cassandra cluster ~read_level:Eventual.Cas_message.Quorum
           ~write_level:Eventual.Cas_message.Quorum)
      spec
  in
  running := false;
  Sim.Network.heal net;
  Sim.Network.clear_default_faults net;
  List.iter
    (fun s ->
      List.iter
        (fun d -> if s <> d then Sim.Network.clear_link_faults net ~src:s ~dst:d)
        all_nodes)
    all_nodes;
  List.iter (fun n -> Eventual.Cas_cluster.restart_node cluster n) all_nodes;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  let r = ref None in
  Eventual.Cas_client.get probe ~level:Eventual.Cas_message.Quorum probe_key "c"
    (fun x -> r := Some x);
  let rec drive n =
    match !r with
    | Some v -> Some v
    | None when n = 0 -> None
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
      drive (n - 1)
  in
  (match drive 3000 with
  | Some (Ok (Some Eventual.Cas_client.{ value = Some v; _ })) ->
    if int_of_string v < !max_acked then
      flag "lost-acked-write"
        (Printf.sprintf "probe key: quorum read saw seq %s < %d acked" v !max_acked)
  | Some (Ok _) ->
    if !max_acked > 0 then
      flag "lost-acked-write"
        (Printf.sprintf "probe key: quorum read saw nothing, %d writes acked" !max_acked)
  | Some (Error _) | None ->
    if !max_acked > 0 then flag "unavailable-after-heal" "final quorum read failed");
  {
    a_outcome = outcome;
    a_exposure = Failure.exposure failure;
    a_net = Some (Sim.Metrics.json_of_net_stats (Sim.Network.stats net));
    a_violations = List.rev !violations;
  }

(* The §1.1 pair: no network to partition (the replication link is modelled
   inside the pair), so network-fault profiles degrade to crash chaos. The
   invariant is the Figure 1 counter itself — no committed write may end up
   on no surviving disk — plus probe visibility after heal. *)
let audit_masterslave ?(track = fun (_ : Sim.Engine.t) -> ()) ~seed ~profile ~spec ~key_space () =
  let engine = Sim.Engine.create ~seed () in
  track engine;
  let pair = Masterslave.Ms_pair.create engine ~disk:Sim.Disk_model.Ssd () in
  let violations = ref [] in
  let flag invariant detail = violations := (invariant, detail) :: !violations in
  let failure = Failure.create engine in
  let target which label =
    Failure.
      {
        label;
        crash = (fun () -> Masterslave.Ms_pair.crash pair which);
        restart = (fun () -> Masterslave.Ms_pair.restart pair which);
        lose_disk = (fun () -> Masterslave.Ms_pair.destroy pair which);
      }
  in
  let targets =
    [ target Masterslave.Ms_pair.Master "ms-master"; target Masterslave.Ms_pair.Slave "ms-slave" ]
  in
  let horizon =
    Sim.Sim_time.add
      (Sim.Sim_time.add (Sim.Engine.now engine) spec.Experiment.warmup)
      spec.Experiment.measure
  in
  (match profile with
  | Steady -> ()
  | Crashes | Partitions | Lossy | Mixed ->
    Failure.chaos failure
      ~mean_time_to_failure:(Sim.Sim_time.sec 3)
      ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
      ~until:horizon targets);
  let probe_key = "probe" in
  let max_acked = ref 0 in
  let seq = ref 0 in
  let running = ref true in
  let rec probe_loop () =
    if !running then begin
      incr seq;
      let this = !seq in
      Masterslave.Ms_pair.put pair ~key:probe_key ~value:(string_of_int this)
        (fun result ->
          if Result.is_ok result then max_acked := Stdlib.max !max_acked this;
          ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 80) probe_loop))
    end
  in
  probe_loop ();
  let outcome =
    Experiment.run ~engine ~key_space ~make_driver:(Driver.masterslave pair) spec
  in
  running := false;
  List.iter
    (fun which -> Masterslave.Ms_pair.restart pair which)
    [ Masterslave.Ms_pair.Master; Masterslave.Ms_pair.Slave ];
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  if Masterslave.Ms_pair.lost_writes pair > 0 then
    flag "lost-acked-write"
      (Printf.sprintf "%d committed writes on no surviving disk"
         (Masterslave.Ms_pair.lost_writes pair));
  let r = ref None in
  Masterslave.Ms_pair.get pair ~key:probe_key (fun x -> r := Some x);
  let rec drive n =
    match !r with
    | Some v -> Some v
    | None when n = 0 -> None
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
      drive (n - 1)
  in
  (match drive 500 with
  | Some (Some v) ->
    if int_of_string v < !max_acked then
      flag "lost-acked-write"
        (Printf.sprintf "probe key: read saw seq %s < %d acked" v !max_acked)
  | Some None ->
    if !max_acked > 0 then
      flag "lost-acked-write"
        (Printf.sprintf "probe key: read saw nothing, %d writes acked" !max_acked)
  | None -> if !max_acked > 0 then flag "unavailable-after-heal" "final read stalled");
  {
    a_outcome = outcome;
    a_exposure = Failure.exposure failure;
    a_net = None;
    a_violations = List.rev !violations;
  }
