(** Operation-history recording and register-linearizability checking.

    Strong reads in Spinnaker promise linearizability per key: each read
    returns the latest committed value, consistent with the real-time order
    of operations — across leader failovers. This module records timed
    operation histories and checks that promise for single-writer registers
    (one serial writer per key, unique monotone values; any number of
    concurrent readers), which is exactly the shape test harnesses produce.

    Checks performed per key:
    - every read observes a value that was actually written (no corruption);
    - reads never travel back in time: if read A completes before read B
      begins (any clients), B observes a value at least as new as A's;
    - reads dominate acknowledged writes: a read invoked after write W was
      acknowledged observes W's value or newer;
    - a read never observes a value before that value's write was invoked. *)

type t

val create : unit -> t

val record_write :
  t -> key:Storage.Row.key -> seq:int ->
  invoked:Sim.Sim_time.t -> completed:Sim.Sim_time.t -> acked:bool -> unit
(** [seq] is the writer's serial number for the key (strictly increasing). *)

val record_read :
  t -> key:Storage.Row.key -> observed:int option ->
  invoked:Sim.Sim_time.t -> completed:Sim.Sim_time.t -> unit
(** [observed] is the seq parsed from the value read; [None] = key absent. *)

type violation = {
  key : Storage.Row.key;
  explanation : string;
}

val check : t -> violation list
(** Empty iff the recorded history is consistent with a linearizable
    register per key. *)

val record_txn :
  t -> id:string -> commit_ts:int ->
  reads:(Storage.Row.key * string option) list ->
  writes:Storage.Row.key list -> unit
(** Record one {e committed} transaction for {!check_serializable}. Each read
    reports the id of the transaction whose write it observed ([None] = the
    initial state) — the harness encodes the writer's id into every value so
    observations identify their writers. *)

val check_serializable : t -> violation list
(** Empty iff the recorded transactions are serializable. Builds the direct
    serialization graph — wr (read-from), ww (per-key writer order by commit
    timestamp), and rw (anti-dependency) edges — and reports each dependency
    cycle as a minimal witness (the shortest cycle in its strongly connected
    component), plus any read of a transaction that never committed. *)

val reads : t -> int

val writes : t -> int

val txns : t -> int

val pp_violation : Format.formatter -> violation -> unit

val fingerprint : t -> string
(** Hex digest of the full recorded history, folded in canonical (sorted)
    order so it is independent of internal table layout. Two runs with the
    same seed and the same fault schedule must produce equal fingerprints —
    the determinism regression oracle. *)
