type write = {
  w_seq : int;
  w_invoked : Sim.Sim_time.t;
  w_completed : Sim.Sim_time.t;
  w_acked : bool;
}

type read = {
  r_observed : int option;
  r_invoked : Sim.Sim_time.t;
  r_completed : Sim.Sim_time.t;
}

type txn = {
  x_id : string;
  x_commit_ts : int;
  x_reads : (Storage.Row.key * string option) list;
  x_writes : Storage.Row.key list;
}

type t = {
  writes : (Storage.Row.key, write list) Hashtbl.t;
  reads : (Storage.Row.key, read list) Hashtbl.t;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable txns : txn list;
}

type violation = { key : Storage.Row.key; explanation : string }

let create () =
  { writes = Hashtbl.create 16; reads = Hashtbl.create 16; n_reads = 0; n_writes = 0;
    txns = [] }

let push table key v =
  Hashtbl.replace table key (v :: Option.value ~default:[] (Hashtbl.find_opt table key))

let record_write t ~key ~seq ~invoked ~completed ~acked =
  t.n_writes <- t.n_writes + 1;
  push t.writes key { w_seq = seq; w_invoked = invoked; w_completed = completed; w_acked = acked }

let record_read t ~key ~observed ~invoked ~completed =
  t.n_reads <- t.n_reads + 1;
  push t.reads key { r_observed = observed; r_invoked = invoked; r_completed = completed }

let record_txn t ~id ~commit_ts ~reads ~writes =
  t.txns <- { x_id = id; x_commit_ts = commit_ts; x_reads = reads; x_writes = writes } :: t.txns

let reads t = t.n_reads
let writes t = t.n_writes
let txns t = List.length t.txns

let check t =
  let violations = ref [] in
  let bad key fmt = Format.kasprintf (fun s -> violations := { key; explanation = s } :: !violations) fmt in
  Hashtbl.iter
    (fun key reads ->
      let writes = Option.value ~default:[] (Hashtbl.find_opt t.writes key) in
      let find_write seq = List.find_opt (fun w -> w.w_seq = seq) writes in
      (* Reads sorted by completion time for the monotonicity pass. *)
      let by_completion =
        List.sort (fun a b -> Sim.Sim_time.compare a.r_completed b.r_completed) reads
      in
      List.iter
        (fun r ->
          match r.r_observed with
          | None -> ()
          | Some seq -> (
            match find_write seq with
            | None -> bad key "read observed seq %d, which was never written" seq
            | Some w ->
              if Sim.Sim_time.(r.r_completed < w.w_invoked) then
                bad key "read of seq %d completed before its write was invoked" seq))
        reads;
      (* Real-time monotonicity: a read that starts after another read ended
         must not observe an older value. *)
      let rec monotonic = function
        | a :: rest ->
          List.iter
            (fun b ->
              if Sim.Sim_time.(a.r_completed < b.r_invoked) then
                match (a.r_observed, b.r_observed) with
                | Some va, Some vb when vb < va ->
                  bad key "reads travel back in time: saw %d then later read saw %d" va vb
                | Some va, None ->
                  bad key "later read lost the key after seq %d was observed" va
                | _ -> ())
            rest;
          monotonic rest
        | [] -> ()
      in
      monotonic by_completion;
      (* Acknowledged writes are visible: a read invoked after W's ack must
         observe at least W. *)
      List.iter
        (fun w ->
          if w.w_acked then
            List.iter
              (fun r ->
                if Sim.Sim_time.(w.w_completed < r.r_invoked) then
                  match r.r_observed with
                  | Some seq when seq >= w.w_seq -> ()
                  | Some seq ->
                    bad key "read after ack of seq %d observed only seq %d" w.w_seq seq
                  | None -> bad key "read after ack of seq %d observed nothing" w.w_seq)
              reads)
        writes)
    t.reads;
  List.rev !violations

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.key v.explanation

(* Serializability of the recorded transactions, via the classic direct
   serialization graph over committed transactions:
   - wr: T1 -> T2 when T2 read a version T1 wrote (values encode their
     writer's transaction id);
   - ww: per key, committed writers ordered by (commit_ts, id) — each writer
     points to its successor;
   - rw: T1 read key k from W (or the initial state); the writer installed
     immediately after W in k's ww order overwrote what T1 saw, so T1 points
     to it (anti-dependency).
   The history is serializable iff the graph is acyclic; a cycle is reported
   as a minimal witness (shortest cycle inside its strongly connected
   component). A read observing a transaction id never committed is the
   read-from-aborted anomaly and is reported directly. *)
let check_serializable t =
  let violations = ref [] in
  let bad key fmt =
    Format.kasprintf (fun s -> violations := { key; explanation = s } :: !violations) fmt
  in
  let txns = List.rev t.txns in
  let committed = Hashtbl.create (List.length txns) in
  List.iter (fun x -> Hashtbl.replace committed x.x_id x) txns;
  (* Edges, deduplicated; label = (kind, key) of the first witness found. *)
  let edges : (string, (string, string * Storage.Row.key) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_edge u v ~kind ~key =
    if not (String.equal u v) then begin
      let out =
        match Hashtbl.find_opt edges u with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 4 in
          Hashtbl.replace edges u h;
          h
      in
      if not (Hashtbl.mem out v) then Hashtbl.replace out v (kind, key)
    end
  in
  (* ww order per key. *)
  let writers_of : (Storage.Row.key, txn list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun x ->
      List.iter
        (fun key -> push writers_of key x)
        (List.sort_uniq String.compare x.x_writes))
    txns;
  let order = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key ws ->
      let ws =
        List.sort
          (fun a b -> compare (a.x_commit_ts, a.x_id) (b.x_commit_ts, b.x_id))
          ws
      in
      Hashtbl.replace order key ws;
      let rec chain = function
        | a :: (b :: _ as rest) ->
          add_edge a.x_id b.x_id ~kind:"ww" ~key;
          chain rest
        | _ -> ()
      in
      chain ws)
    writers_of;
  let successor_of key from =
    match Hashtbl.find_opt order key with
    | None -> None
    | Some ws -> (
      match from with
      | None -> (match ws with w :: _ -> Some w | [] -> None)
      | Some id ->
        let rec after = function
          | a :: (b :: _) when String.equal a.x_id id -> Some b
          | _ :: rest -> after rest
          | [] -> None
        in
        after ws)
  in
  (* wr and rw edges from each transaction's reads. *)
  List.iter
    (fun x ->
      List.iter
        (fun (key, from) ->
          (match from with
          | Some w when not (Hashtbl.mem committed w) ->
            bad key "txn %s read %s, written by %s which never committed" x.x_id key w
          | Some w -> add_edge w x.x_id ~kind:"wr" ~key
          | None -> ());
          match successor_of key from with
          | Some s when not (String.equal s.x_id x.x_id) ->
            add_edge x.x_id s.x_id ~kind:"rw" ~key
          | _ -> ())
        x.x_reads)
    txns;
  let out_of u =
    match Hashtbl.find_opt edges u with
    | None -> []
    | Some h -> Hashtbl.fold (fun v label acc -> (v, label) :: acc) h []
  in
  (* Tarjan SCC over the edge set. *)
  let index = Hashtbl.create 64 and lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (out_of v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      if List.length scc > 1 then sccs := scc :: !sccs
    end
  in
  Hashtbl.iter (fun u _ -> if not (Hashtbl.mem index u) then strongconnect u) edges;
  (* Minimal witness per SCC: shortest cycle through its first member, BFS
     restricted to the component. *)
  List.iter
    (fun scc ->
      let inside = Hashtbl.create (List.length scc) in
      List.iter (fun v -> Hashtbl.replace inside v ()) scc;
      let start = List.hd (List.sort String.compare scc) in
      let parent = Hashtbl.create 16 in
      let queue = Queue.create () in
      Queue.push start queue;
      let found = ref None in
      while !found = None && not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun (v, label) ->
            if Hashtbl.mem inside v && !found = None then
              if String.equal v start then found := Some (u, label)
              else if not (Hashtbl.mem parent v) then begin
                Hashtbl.replace parent v (u, label);
                Queue.push v queue
              end)
          (out_of u)
      done;
      match !found with
      | None -> ()
      | Some (last, closing) ->
        (* Walk parents back from [last] to [start], then close the loop. *)
        let rec walk v acc =
          if String.equal v start then acc
          else
            let u, label = Hashtbl.find parent v in
            walk u ((u, label, v) :: acc)
        in
        let path = walk last [] @ [ (last, closing, start) ] in
        let buf = Buffer.create 64 in
        List.iteri
          (fun i (u, (kind, key), v) ->
            if i = 0 then Buffer.add_string buf u;
            Buffer.add_string buf (Printf.sprintf " -%s[%s]-> %s" kind key v))
          path;
        let _, (_, first_key), _ = List.hd path in
        bad first_key "dependency cycle: %s" (Buffer.contents buf))
    !sccs;
  List.rev !violations

(* Canonical digest of everything recorded. Entries are folded in sorted
   order (never Hashtbl iteration order), so two histories built from the
   same sequence of events — in any insertion order — digest identically.
   This is the oracle for "same seed + same schedule => same run". *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  let keys_of table = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
  let all_keys =
    List.sort_uniq String.compare (keys_of t.writes @ keys_of t.reads)
  in
  let us ts = Sim.Sim_time.time_to_us ts in
  List.iter
    (fun key ->
      Buffer.add_string buf key;
      Buffer.add_char buf '\n';
      let ws =
        List.sort
          (fun a b ->
            match compare (us a.w_invoked) (us b.w_invoked) with
            | 0 -> compare (a.w_seq, us a.w_completed, a.w_acked)
                     (b.w_seq, us b.w_completed, b.w_acked)
            | c -> c)
          (Option.value ~default:[] (Hashtbl.find_opt t.writes key))
      in
      List.iter
        (fun w ->
          Buffer.add_string buf
            (Printf.sprintf "w %d %d %d %b\n" w.w_seq (us w.w_invoked)
               (us w.w_completed) w.w_acked))
        ws;
      let rs =
        List.sort
          (fun a b ->
            match compare (us a.r_invoked) (us b.r_invoked) with
            | 0 -> compare (a.r_observed, us a.r_completed)
                     (b.r_observed, us b.r_completed)
            | c -> c)
          (Option.value ~default:[] (Hashtbl.find_opt t.reads key))
      in
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "r %s %d %d\n"
               (match r.r_observed with None -> "-" | Some s -> string_of_int s)
               (us r.r_invoked) (us r.r_completed)))
        rs)
    all_keys;
  (* Transactions fold in only when present, so digests of non-transactional
     histories are unchanged from before transactions existed. *)
  if t.txns <> [] then begin
    let xs =
      List.sort (fun a b -> compare (a.x_commit_ts, a.x_id) (b.x_commit_ts, b.x_id))
        t.txns
    in
    List.iter
      (fun x ->
        Buffer.add_string buf (Printf.sprintf "t %s %d" x.x_id x.x_commit_ts);
        List.iter
          (fun (key, from) ->
            Buffer.add_string buf
              (Printf.sprintf " r:%s=%s" key (Option.value ~default:"-" from)))
          x.x_reads;
        List.iter (fun key -> Buffer.add_string buf (Printf.sprintf " w:%s" key)) x.x_writes;
        Buffer.add_char buf '\n')
      xs
  end;
  Digest.to_hex (Digest.string (Buffer.contents buf))
