type write = {
  w_seq : int;
  w_invoked : Sim.Sim_time.t;
  w_completed : Sim.Sim_time.t;
  w_acked : bool;
}

type read = {
  r_observed : int option;
  r_invoked : Sim.Sim_time.t;
  r_completed : Sim.Sim_time.t;
}

type t = {
  writes : (Storage.Row.key, write list) Hashtbl.t;
  reads : (Storage.Row.key, read list) Hashtbl.t;
  mutable n_reads : int;
  mutable n_writes : int;
}

type violation = { key : Storage.Row.key; explanation : string }

let create () =
  { writes = Hashtbl.create 16; reads = Hashtbl.create 16; n_reads = 0; n_writes = 0 }

let push table key v =
  Hashtbl.replace table key (v :: Option.value ~default:[] (Hashtbl.find_opt table key))

let record_write t ~key ~seq ~invoked ~completed ~acked =
  t.n_writes <- t.n_writes + 1;
  push t.writes key { w_seq = seq; w_invoked = invoked; w_completed = completed; w_acked = acked }

let record_read t ~key ~observed ~invoked ~completed =
  t.n_reads <- t.n_reads + 1;
  push t.reads key { r_observed = observed; r_invoked = invoked; r_completed = completed }

let reads t = t.n_reads
let writes t = t.n_writes

let check t =
  let violations = ref [] in
  let bad key fmt = Format.kasprintf (fun s -> violations := { key; explanation = s } :: !violations) fmt in
  Hashtbl.iter
    (fun key reads ->
      let writes = Option.value ~default:[] (Hashtbl.find_opt t.writes key) in
      let find_write seq = List.find_opt (fun w -> w.w_seq = seq) writes in
      (* Reads sorted by completion time for the monotonicity pass. *)
      let by_completion =
        List.sort (fun a b -> Sim.Sim_time.compare a.r_completed b.r_completed) reads
      in
      List.iter
        (fun r ->
          match r.r_observed with
          | None -> ()
          | Some seq -> (
            match find_write seq with
            | None -> bad key "read observed seq %d, which was never written" seq
            | Some w ->
              if Sim.Sim_time.(r.r_completed < w.w_invoked) then
                bad key "read of seq %d completed before its write was invoked" seq))
        reads;
      (* Real-time monotonicity: a read that starts after another read ended
         must not observe an older value. *)
      let rec monotonic = function
        | a :: rest ->
          List.iter
            (fun b ->
              if Sim.Sim_time.(a.r_completed < b.r_invoked) then
                match (a.r_observed, b.r_observed) with
                | Some va, Some vb when vb < va ->
                  bad key "reads travel back in time: saw %d then later read saw %d" va vb
                | Some va, None ->
                  bad key "later read lost the key after seq %d was observed" va
                | _ -> ())
            rest;
          monotonic rest
        | [] -> ()
      in
      monotonic by_completion;
      (* Acknowledged writes are visible: a read invoked after W's ack must
         observe at least W. *)
      List.iter
        (fun w ->
          if w.w_acked then
            List.iter
              (fun r ->
                if Sim.Sim_time.(w.w_completed < r.r_invoked) then
                  match r.r_observed with
                  | Some seq when seq >= w.w_seq -> ()
                  | Some seq ->
                    bad key "read after ack of seq %d observed only seq %d" w.w_seq seq
                  | None -> bad key "read after ack of seq %d observed nothing" w.w_seq)
              reads)
        writes)
    t.reads;
  List.rev !violations

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.key v.explanation

(* Canonical digest of everything recorded. Entries are folded in sorted
   order (never Hashtbl iteration order), so two histories built from the
   same sequence of events — in any insertion order — digest identically.
   This is the oracle for "same seed + same schedule => same run". *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  let keys_of table = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
  let all_keys =
    List.sort_uniq String.compare (keys_of t.writes @ keys_of t.reads)
  in
  let us ts = Sim.Sim_time.time_to_us ts in
  List.iter
    (fun key ->
      Buffer.add_string buf key;
      Buffer.add_char buf '\n';
      let ws =
        List.sort
          (fun a b ->
            match compare (us a.w_invoked) (us b.w_invoked) with
            | 0 -> compare (a.w_seq, us a.w_completed, a.w_acked)
                     (b.w_seq, us b.w_completed, b.w_acked)
            | c -> c)
          (Option.value ~default:[] (Hashtbl.find_opt t.writes key))
      in
      List.iter
        (fun w ->
          Buffer.add_string buf
            (Printf.sprintf "w %d %d %d %b\n" w.w_seq (us w.w_invoked)
               (us w.w_completed) w.w_acked))
        ws;
      let rs =
        List.sort
          (fun a b ->
            match compare (us a.r_invoked) (us b.r_invoked) with
            | 0 -> compare (a.r_observed, us a.r_completed)
                     (b.r_observed, us b.r_completed)
            | c -> c)
          (Option.value ~default:[] (Hashtbl.find_opt t.reads key))
      in
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "r %s %d %d\n"
               (match r.r_observed with None -> "-" | Some s -> string_of_int s)
               (us r.r_invoked) (us r.r_completed)))
        rs)
    all_keys;
  Digest.to_hex (Digest.string (Buffer.contents buf))
