(** The chaos harness: seeded fault gauntlets, schedule replay, verdicts.

    One run drives keyed serial writers and concurrent strong readers
    through a fault profile, heals, quiesces, and checks the §1.1 claims
    (no lost acked write, no double apply, linearizable strong reads, a
    coherent layout after heal). Instead of asserting, a run returns a
    {!verdict} so the same harness serves the nemesis tests, the ddmin
    shrinker's replay oracle, and the `bench audit` battery. *)

type profile = Steady | Crashes | Partitions | Lossy | Mixed
(** [Mixed] composes crash chaos, randomized pair partitions, lossy links,
    coordination-service cuts, and a hazard crash process whose per-tick
    probability spikes while a replica migration is in flight. *)

val profile_name : profile -> string

val profile_of_string : string -> profile option

val default_config : Spinnaker.Config.t
(** 5 nodes, SSDs, 200 ms commit period, 500 ms sessions — the nemesis
    suite's configuration. *)

type verdict = {
  seed : int;
  profile : profile;
  planted_bug : bool;
  schedule : Sim.Failure.schedule;  (** the injections that actually fired *)
  exposure : (string * int) list;
  violations : (string * string) list;  (** (invariant, detail), empty = clean *)
  fingerprint : string;  (** {!History.fingerprint} of the recorded history *)
  acked : int;
  indeterminate : int;
  n_writes : int;
  n_reads : int;
  outliers : Sim.Json.t option;
      (** flight-recorder dump ({!Sim.Trace_export.outliers_to_json}) of the
          run's slowest pinned requests, captured when [violations] is
          non-empty — write it next to the failing schedule artifact *)
}

val failed : verdict -> bool

val json_of_verdict : verdict -> Sim.Json.t
(** The replay artifact: seed, profile, planted-bug flag, violations, and
    the [injections] schedule — everything needed to re-run the failure. *)

val schedule_of_artifact_json : Sim.Json.t -> (Sim.Failure.schedule, string) result
(** Accepts either a bare schedule array or a {!json_of_verdict} object
    (reads its [injections] field) — so [NEMESIS_SCHEDULE] files can be
    minimal-schedule artifacts straight from CI. *)

val run_spinnaker :
  ?config:Spinnaker.Config.t ->
  ?profile:profile ->
  ?schedule:Sim.Failure.schedule ->
  ?planted_hole_ack_bug:bool ->
  ?chaos_for:Sim.Sim_time.span ->
  ?quiesce_for:Sim.Sim_time.span ->
  seed:int ->
  unit ->
  verdict
(** One gauntlet run. With [?schedule], the seed-driven generators are
    skipped and the explicit schedule replays against a pre-registered
    universe of every crash target and fault toggle the generators could
    have drawn — the replayed run's injection log equals its input.
    [?planted_hole_ack_bug] re-enables the pre-fix follower ack bug
    ({!Spinnaker.Cohort.chaos_ack_past_holes}) for shrinker fixtures; the
    flag is always cleared on return. *)

val shrink_spinnaker :
  ?config:Spinnaker.Config.t ->
  ?profile:profile ->
  ?planted_hole_ack_bug:bool ->
  ?chaos_for:Sim.Sim_time.span ->
  ?quiesce_for:Sim.Sim_time.span ->
  ?max_replays:int ->
  seed:int ->
  unit ->
  (verdict * Sim.Failure.schedule * Sim.Shrink.stats) option
(** Record the seed's run; if it violates an invariant AND the violation
    survives replay of the full recorded schedule, ddmin the schedule down
    to a minimal still-failing subset. [None] if the run is clean or the
    failure does not replay. *)

(** {2 The transaction gauntlet}

    Cross-range bank transfers ({!Experiment.run_bank}) under crash chaos
    coupled to the 2PC critical section: a hazard crash process with two
    concurrent slots whose rate multiplies ([×8]) while transfers are
    mid-protocol, so coordinator and participant leaders die together
    between prepare and resolve. After heal + quiesce the verdict checks
    atomicity and conservation (snapshot audits), serializability of the
    committed history, and that no replica holds an orphaned in-doubt
    intent. *)

val run_txn_bank :
  ?config:Spinnaker.Config.t ->
  ?schedule:Sim.Failure.schedule ->
  ?chaos_for:Sim.Sim_time.span ->
  ?quiesce_for:Sim.Sim_time.span ->
  seed:int ->
  unit ->
  verdict
(** One gauntlet run; in the verdict, [acked] counts committed transfers,
    [indeterminate] transfers unresolved even by the post-quiesce status
    query, [n_writes] transactions in the checked history, and [n_reads]
    committed snapshot audits. [quiesce_for] must exceed the in-doubt
    threshold plus a sweep period or live intents will be flagged. *)

val shrink_txn_bank :
  ?config:Spinnaker.Config.t ->
  ?chaos_for:Sim.Sim_time.span ->
  ?quiesce_for:Sim.Sim_time.span ->
  ?max_replays:int ->
  seed:int ->
  unit ->
  (verdict * Sim.Failure.schedule * Sim.Shrink.stats) option
(** Record/replay/ddmin for the transaction gauntlet, mirroring
    {!shrink_spinnaker}. *)

(** {2 Audit cells}

    One backend under one fault profile and one workload spec: a throughput/
    latency {!Experiment.outcome} plus fault exposure, network counters, and
    invariant violations — the comparable unit of [BENCH_audit.json]. Each
    backend checks the strongest invariant it actually promises: Spinnaker
    full per-key linearizability, the quorum-configured eventual store
    lost-acked-write only, the master-slave pair its Figure 1 lost-committed-
    write counter. *)

type audit = {
  a_outcome : Experiment.outcome;
  a_exposure : (string * int) list;
  a_net : Sim.Json.t option;  (** [None] for the networkless pair *)
  a_violations : (string * string) list;
}

val audit_spinnaker :
  ?track:(Sim.Engine.t -> unit) ->
  seed:int ->
  config:Spinnaker.Config.t ->
  profile:profile ->
  spec:Experiment.spec ->
  key_space:int ->
  unit ->
  audit
(** [track] observes the cell's engine right after creation (sim-time
    accounting in the bench driver). *)

val audit_eventual :
  ?track:(Sim.Engine.t -> unit) ->
  seed:int ->
  config:Spinnaker.Config.t ->
  profile:profile ->
  spec:Experiment.spec ->
  key_space:int ->
  unit ->
  audit
(** QUORUM reads and writes; network-fault profiles apply, [Mixed] degrades
    to crash chaos. *)

val audit_masterslave :
  ?track:(Sim.Engine.t -> unit) ->
  seed:int ->
  profile:profile ->
  spec:Experiment.spec ->
  key_space:int ->
  unit ->
  audit
(** No network module: every non-steady profile degrades to crash chaos on
    the two replicas. *)
