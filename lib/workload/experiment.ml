type spec = {
  threads : int;
  write_fraction : float;
  conditional : bool;
  weights : Generator.weights option;
  key_mode : Generator.key_mode;
  value_bytes : int;
  warmup : Sim.Sim_time.span;
  measure : Sim.Sim_time.span;
}

let default_spec =
  {
    threads = 8;
    write_fraction = 0.0;
    conditional = false;
    weights = None;
    key_mode = Generator.Uniform_random;
    value_bytes = 4096;
    warmup = Sim.Sim_time.sec 2;
    measure = Sim.Sim_time.sec 10;
  }

let spec_weights spec =
  match spec.weights with
  | Some w -> w
  | None -> Generator.of_write_fraction ~conditional:spec.conditional spec.write_fraction

let spec_write_fraction spec = Generator.write_fraction_of (spec_weights spec)

type outcome = {
  spec : spec;
  all : Sim.Metrics.run_stats;
  reads : Sim.Metrics.run_stats;
  writes : Sim.Metrics.run_stats;
}

let run ~engine ~key_space ~make_driver spec =
  let read_hist = Sim.Metrics.Histogram.create ~name:"reads" () in
  let write_hist = Sim.Metrics.Histogram.create ~name:"writes" () in
  let errors = ref 0 in
  let start = Sim.Engine.now engine in
  let measure_from = Sim.Sim_time.add start spec.warmup in
  let stop = Sim.Sim_time.add measure_from spec.measure in
  let value = Generator.value ~size:spec.value_bytes in
  let weights = spec_weights spec in
  let spawn_thread thread =
    let driver = make_driver () in
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let gen =
      Generator.create ~rng ~key_space ~mode:spec.key_mode ~thread
    in
    (* One outstanding op per thread, so per-request issue state lives in the
       thread's mutable cells and the [finish] callback is allocated once per
       thread, not once per request (the per-request closure was measurable
       churn at bench request rates). *)
    let issued = ref Sim.Sim_time.zero in
    let last_op = ref Generator.Read in
    let rec next () =
      let now = Sim.Engine.now engine in
      if Sim.Sim_time.(now < stop) then begin
        let key = Generator.next_key gen in
        let op = Generator.pick_op rng weights in
        issued := now;
        last_op := op;
        match op with
        | Generator.Read -> driver.Driver.read ~key ~ok:finish
        | Generator.Write -> driver.Driver.write ~key ~value ~ok:finish
        | Generator.Cond_incr -> driver.Driver.conditional_increment ~key ~ok:finish
      end
    and finish ok =
      let done_at = Sim.Engine.now engine in
      if Sim.Sim_time.(!issued >= measure_from) && Sim.Sim_time.(done_at <= stop) then begin
        if ok then
          Sim.Metrics.Histogram.record_span
            (match !last_op with Generator.Read -> read_hist | _ -> write_hist)
            (Sim.Sim_time.diff done_at !issued)
        else incr errors
      end;
      next ()
    in
    (* Stagger thread start to avoid lock-step batching artifacts. *)
    ignore
      (Sim.Engine.schedule engine
         ~after:(Sim.Sim_time.us (Sim.Rng.int rng 10_000))
         next)
  in
  for thread = 0 to spec.threads - 1 do
    spawn_thread thread
  done;
  Sim.Engine.run_until engine stop;
  (* Drain in-flight requests so their callbacks do not leak into a later
     experiment on the same engine. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  let stats hist =
    Sim.Metrics.run_stats_of ~latency:hist ~errors:!errors ~duration:spec.measure
  in
  {
    spec;
    all = stats (Sim.Metrics.Histogram.merge read_hist write_hist);
    reads = stats read_hist;
    writes = stats write_hist;
  }

(* ------------------------------------------------------------------ *)
(* Bank transfers: the multi-key transaction workload.                 *)

type bank_outcome = {
  transfers_committed : int;
  transfers_aborted : int;
  transfers_unresolved : int;
  bank_audits : int;
  bank_violations : (string * string) list;
  bank_history : History.t;
  transfer_stats : Sim.Metrics.run_stats;
}

let bank_column = "b"

(* TXN_DEBUG=1 streams every committed transfer and audit snapshot to
   stderr — enough to reconstruct by hand which read of a flagged audit
   went wrong and against which transaction. *)
let bank_debug = Sys.getenv_opt "TXN_DEBUG" <> None

(* Every value carries its writer's harness tag, so any later observation
   identifies the transaction it read from — the wr edges of the
   serialization graph come straight out of the data. *)
let bank_encode ~tag ~balance = Printf.sprintf "%s|%d" tag balance

let bank_decode ~initial = function
  | None -> (None, initial)
  | Some v -> (
    match String.index_opt v '|' with
    | None -> (None, int_of_string v)
    | Some i ->
      ( Some (String.sub v 0 i),
        int_of_string (String.sub v (i + 1) (String.length v - i - 1)) ))

let run_bank ~engine ~cluster ?(accounts = 16) ?(initial_balance = 100)
    ?(threads = 4) ?(duration = Sim.Sim_time.sec 10)
    ?(audit_period = Sim.Sim_time.ms 700) ?(heal = fun () -> ())
    ?(quiesce = Sim.Sim_time.sec 8) ?in_flight () =
  let partition = Spinnaker.Cluster.partition cluster in
  let config = Spinnaker.Cluster.config cluster in
  (* Accounts strided across the whole key space: transfers cross ranges,
     which is the point — single-range transfers would never need 2PC. *)
  let stride = Stdlib.max 1 (Spinnaker.Partition.key_space partition / accounts) in
  let keys = Array.init accounts (fun i -> Spinnaker.Partition.key_of_int partition (i * stride)) in
  let history = History.create () in
  let committed = ref 0 and aborted = ref 0 and audits = ref 0 in
  let violations = ref [] in
  let flag invariant detail = violations := (invariant, detail) :: !violations in
  let pending_status = ref [] in
  let transfer_hist = Sim.Metrics.Histogram.create ~name:"transfers" () in
  let stop = Sim.Sim_time.add (Sim.Engine.now engine) duration in
  let running = ref true in
  let track d = match in_flight with Some r -> r := !r + d | None -> () in
  let spawn_teller thread =
    let client = Spinnaker.Cluster.new_client cluster in
    let mgr = Spinnaker.Txn.manager ~engine ~config client in
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let n = ref 0 in
    let rec next () =
      if !running && Sim.Sim_time.(Sim.Engine.now engine < stop) then begin
        incr n;
        let tag = Printf.sprintf "x%d.%d" thread !n in
        let a, b = Generator.account_pair rng ~accounts in
        let ka = keys.(a) and kb = keys.(b) in
        let amount = 1 + Sim.Rng.int rng 5 in
        let observed = ref [] in
        let invoked = Sim.Engine.now engine in
        track 1;
        Spinnaker.Txn.run mgr
          ~reads:[ (ka, bank_column); (kb, bank_column) ]
          ~compute:(fun values ->
            let decoded =
              List.map
                (fun (key, _, v, _) -> (key, bank_decode ~initial:initial_balance v))
                values
            in
            observed := List.map (fun (key, (from, _)) -> (key, from)) decoded;
            let balance key = snd (List.assoc key decoded) in
            [
              (ka, bank_column, Some (bank_encode ~tag ~balance:(balance ka - amount)));
              (kb, bank_column, Some (bank_encode ~tag ~balance:(balance kb + amount)));
            ])
          (fun outcome ->
            track (-1);
            (match outcome with
            | Spinnaker.Txn.Committed { ts } ->
              incr committed;
              Sim.Metrics.Histogram.record_span transfer_hist
                (Sim.Sim_time.diff (Sim.Engine.now engine) invoked);
              if bank_debug then
                Printf.eprintf "TXN %s ts=%d %s->%s amount=%d read=[%s]\n%!" tag ts ka kb
                  amount
                  (String.concat ";"
                     (List.map
                        (fun (k, from) ->
                          k ^ "<" ^ Option.value from ~default:"-")
                        !observed));
              History.record_txn history ~id:tag ~commit_ts:ts ~reads:!observed
                ~writes:[ ka; kb ]
            | Spinnaker.Txn.Aborted _ -> incr aborted
            | Spinnaker.Txn.Indeterminate { txn } ->
              (* ka is the anchor: the first written key carries the
                 decision record. Resolved against it after quiesce. *)
              pending_status := (txn, ka, tag, !observed, [ ka; kb ]) :: !pending_status);
            ignore
              (Sim.Engine.schedule engine
                 ~after:(Sim.Sim_time.ms (5 + Sim.Rng.int rng 20))
                 next))
      end
    in
    ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.us (Sim.Rng.int rng 5_000)) next)
  in
  for thread = 0 to threads - 1 do
    spawn_teller thread
  done;
  (* The audit: one read-only snapshot transaction over every account. Its
     snapshot is consistent by construction, so the balance total must equal
     the invariant exactly — mid-transfer states are never visible. *)
  let audit_client = Spinnaker.Cluster.new_client cluster in
  let audit_mgr = Spinnaker.Txn.manager ~engine ~config audit_client in
  let all_reads = Array.to_list (Array.map (fun k -> (k, bank_column)) keys) in
  let expected_total = accounts * initial_balance in
  let audit_n = ref 0 in
  let run_audit k =
    incr audit_n;
    let tag = Printf.sprintf "audit.%d" !audit_n in
    let stash = ref None in
    Spinnaker.Txn.run audit_mgr ~reads:all_reads
      ~compute:(fun values ->
        stash :=
          Some
            (List.map
               (fun (key, _, v, _) -> (key, bank_decode ~initial:initial_balance v))
               values);
        [])
      (fun outcome ->
        (match (outcome, !stash) with
        | Spinnaker.Txn.Committed { ts }, Some decoded ->
          incr audits;
          if bank_debug then
            Printf.eprintf "AUDIT %s ts=%d [%s]\n%!" tag ts
              (String.concat ";"
                 (List.map
                    (fun (k, (from, bal)) ->
                      Printf.sprintf "%s<%s=%d" k (Option.value from ~default:"-") bal)
                    decoded));
          let total = List.fold_left (fun acc (_, (_, bal)) -> acc + bal) 0 decoded in
          if total <> expected_total then
            flag "conservation"
              (Printf.sprintf "%s: balances total %d, expected %d" tag total expected_total);
          History.record_txn history ~id:tag ~commit_ts:ts
            ~reads:(List.map (fun (key, (from, _)) -> (key, from)) decoded)
            ~writes:[]
        | _ -> ());
        k outcome)
  in
  let rec audit_loop () =
    if !running && Sim.Sim_time.(Sim.Engine.now engine < stop) then
      run_audit (fun _ -> ignore (Sim.Engine.schedule engine ~after:audit_period audit_loop))
  in
  ignore (Sim.Engine.schedule engine ~after:audit_period audit_loop);
  Sim.Engine.run_until engine stop;
  running := false;
  heal ();
  Sim.Engine.run_for engine quiesce;
  (* Presumed-abort post-mortem: every transfer whose decide was lost asks
     the coordinator range for the recorded outcome. A committed answer
     joins the history (its writes are visible); anything still unreachable
     counts as unresolved. *)
  let unresolved = ref 0 in
  let pending = ref (List.length !pending_status) in
  List.iter
    (fun (txn, anchor, tag, observed, writes) ->
      Spinnaker.Client.txn_status audit_client ~txn ~anchor (fun r ->
          (match r with
          | Ok (true, ts) ->
            incr committed;
            History.record_txn history ~id:tag ~commit_ts:ts ~reads:observed ~writes
          | Ok (false, _) -> incr aborted
          | Error _ -> incr unresolved);
          decr pending))
    !pending_status;
  let rec drain n =
    if !pending > 0 && n > 0 then begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
      drain (n - 1)
    end
  in
  drain 600;
  unresolved := !unresolved + !pending;
  (* Final audit after the dust settles, then the serializability check over
     everything that committed. *)
  let final_done = ref false in
  run_audit (fun outcome ->
      (match outcome with
      | Spinnaker.Txn.Committed _ -> ()
      | o ->
        flag "conservation"
          (Format.asprintf "final audit did not commit: %a" Spinnaker.Txn.pp_outcome o));
      final_done := true);
  let rec drain_final n =
    if (not !final_done) && n > 0 then begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
      drain_final (n - 1)
    end
  in
  drain_final 600;
  List.iter
    (fun v -> flag "serializability" (Format.asprintf "%a" History.pp_violation v))
    (History.check_serializable history);
  {
    transfers_committed = !committed;
    transfers_aborted = !aborted;
    transfers_unresolved = !unresolved;
    bank_audits = !audits;
    bank_violations = List.rev !violations;
    bank_history = history;
    transfer_stats =
      Sim.Metrics.run_stats_of ~latency:transfer_hist ~errors:!aborted ~duration;
  }

let json_of_bank b =
  Sim.Json.Obj
    [
      ("committed", Sim.Json.Int b.transfers_committed);
      ("aborted", Sim.Json.Int b.transfers_aborted);
      ("unresolved", Sim.Json.Int b.transfers_unresolved);
      ("audits", Sim.Json.Int b.bank_audits);
      ( "violations",
        Sim.Json.List
          (List.map
             (fun (invariant, detail) ->
               Sim.Json.Obj
                 [
                   ("invariant", Sim.Json.String invariant);
                   ("detail", Sim.Json.String detail);
                 ])
             b.bank_violations) );
      ("txns_recorded", Sim.Json.Int (History.txns b.bank_history));
      ("transfers", Sim.Metrics.json_of_run_stats b.transfer_stats);
    ]

type sweep_point = { threads : int; outcome : outcome }

let sweep ~engine ~key_space ~make_driver ~thread_counts spec =
  List.map
    (fun threads ->
      { threads; outcome = run ~engine ~key_space ~make_driver { spec with threads } })
    thread_counts

let pp_outcome ppf o =
  Format.fprintf ppf "%d threads: %a" o.spec.threads Sim.Metrics.pp_run_stats o.all

let json_of_outcome o =
  Sim.Json.Obj
    [
      ("threads", Sim.Json.Int o.spec.threads);
      ("write_fraction", Sim.Json.Float (spec_write_fraction o.spec));
      ("all", Sim.Metrics.json_of_run_stats o.all);
      ("reads", Sim.Metrics.json_of_run_stats o.reads);
      ("writes", Sim.Metrics.json_of_run_stats o.writes);
    ]

let json_of_sweep points = Sim.Json.List (List.map (fun p -> json_of_outcome p.outcome) points)
