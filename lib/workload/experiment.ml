type spec = {
  threads : int;
  write_fraction : float;
  conditional : bool;
  weights : Generator.weights option;
  key_mode : Generator.key_mode;
  value_bytes : int;
  warmup : Sim.Sim_time.span;
  measure : Sim.Sim_time.span;
}

let default_spec =
  {
    threads = 8;
    write_fraction = 0.0;
    conditional = false;
    weights = None;
    key_mode = Generator.Uniform_random;
    value_bytes = 4096;
    warmup = Sim.Sim_time.sec 2;
    measure = Sim.Sim_time.sec 10;
  }

let spec_weights spec =
  match spec.weights with
  | Some w -> w
  | None -> Generator.of_write_fraction ~conditional:spec.conditional spec.write_fraction

let spec_write_fraction spec = Generator.write_fraction_of (spec_weights spec)

type outcome = {
  spec : spec;
  all : Sim.Metrics.run_stats;
  reads : Sim.Metrics.run_stats;
  writes : Sim.Metrics.run_stats;
}

let run ~engine ~key_space ~make_driver spec =
  let read_hist = Sim.Metrics.Histogram.create ~name:"reads" () in
  let write_hist = Sim.Metrics.Histogram.create ~name:"writes" () in
  let errors = ref 0 in
  let start = Sim.Engine.now engine in
  let measure_from = Sim.Sim_time.add start spec.warmup in
  let stop = Sim.Sim_time.add measure_from spec.measure in
  let value = Generator.value ~size:spec.value_bytes in
  let weights = spec_weights spec in
  let spawn_thread thread =
    let driver = make_driver () in
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let gen =
      Generator.create ~rng ~key_space ~mode:spec.key_mode ~thread
    in
    (* One outstanding op per thread, so per-request issue state lives in the
       thread's mutable cells and the [finish] callback is allocated once per
       thread, not once per request (the per-request closure was measurable
       churn at bench request rates). *)
    let issued = ref Sim.Sim_time.zero in
    let last_op = ref Generator.Read in
    let rec next () =
      let now = Sim.Engine.now engine in
      if Sim.Sim_time.(now < stop) then begin
        let key = Generator.next_key gen in
        let op = Generator.pick_op rng weights in
        issued := now;
        last_op := op;
        match op with
        | Generator.Read -> driver.Driver.read ~key ~ok:finish
        | Generator.Write -> driver.Driver.write ~key ~value ~ok:finish
        | Generator.Cond_incr -> driver.Driver.conditional_increment ~key ~ok:finish
      end
    and finish ok =
      let done_at = Sim.Engine.now engine in
      if Sim.Sim_time.(!issued >= measure_from) && Sim.Sim_time.(done_at <= stop) then begin
        if ok then
          Sim.Metrics.Histogram.record_span
            (match !last_op with Generator.Read -> read_hist | _ -> write_hist)
            (Sim.Sim_time.diff done_at !issued)
        else incr errors
      end;
      next ()
    in
    (* Stagger thread start to avoid lock-step batching artifacts. *)
    ignore
      (Sim.Engine.schedule engine
         ~after:(Sim.Sim_time.us (Sim.Rng.int rng 10_000))
         next)
  in
  for thread = 0 to spec.threads - 1 do
    spawn_thread thread
  done;
  Sim.Engine.run_until engine stop;
  (* Drain in-flight requests so their callbacks do not leak into a later
     experiment on the same engine. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  let stats hist =
    Sim.Metrics.run_stats_of ~latency:hist ~errors:!errors ~duration:spec.measure
  in
  {
    spec;
    all = stats (Sim.Metrics.Histogram.merge read_hist write_hist);
    reads = stats read_hist;
    writes = stats write_hist;
  }

type sweep_point = { threads : int; outcome : outcome }

let sweep ~engine ~key_space ~make_driver ~thread_counts spec =
  List.map
    (fun threads ->
      { threads; outcome = run ~engine ~key_space ~make_driver { spec with threads } })
    thread_counts

let pp_outcome ppf o =
  Format.fprintf ppf "%d threads: %a" o.spec.threads Sim.Metrics.pp_run_stats o.all

let json_of_outcome o =
  Sim.Json.Obj
    [
      ("threads", Sim.Json.Int o.spec.threads);
      ("write_fraction", Sim.Json.Float (spec_write_fraction o.spec));
      ("all", Sim.Metrics.json_of_run_stats o.all);
      ("reads", Sim.Metrics.json_of_run_stats o.reads);
      ("writes", Sim.Metrics.json_of_run_stats o.writes);
    ]

let json_of_sweep points = Sim.Json.List (List.map (fun p -> json_of_outcome p.outcome) points)
