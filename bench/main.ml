(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§9, Appendix D), plus ablations and Bechamel microbenchmarks.

   Usage:  dune exec bench/main.exe [-- EXPERIMENT...] [--quick] [--json [PATH]]
             [--trace-out [PATH]]

   Experiments: fig1 fig8 fig9 read paxos-tuning table1 failover tail fig11 fig12
   fig13 fig14 fig15 fig16 scaleout audit txn ablations micro all (default: all). Absolute numbers come from a
   calibrated simulation (see DESIGN.md); the paper-comparable quantity is
   the *shape* of each series.

   With [--json], each experiment also writes a machine-readable
   [BENCH_<experiment>.json] mirroring the printed tables (per-series
   throughput and latency percentiles, the per-phase write-path breakdown,
   and the experiment's simulated-versus-wall-clock time).

   With [--trace-out], each experiment also writes the last cluster's
   structured trace as Chrome trace-event JSON ([TRACE_<experiment>.json],
   Perfetto-loadable), with registry gauges as counter tracks. The [failover]
   experiment crashes a range leader under load and prints the analyzed
   recovery timeline (see lib/sim/timeline.mli). *)

open Spinnaker

let quick = ref false

let sec_f s = Sim.Sim_time.of_sec_f s
let measure_span () = if !quick then sec_f 2.0 else sec_f 8.0
let warmup_span () = if !quick then sec_f 0.5 else sec_f 2.0

let read_threads () = if !quick then [ 8; 64; 256 ] else [ 4; 8; 16; 32; 64; 128; 256; 384 ]
let write_threads () = if !quick then [ 8; 64; 256 ] else [ 4; 8; 16; 32; 64; 128; 256; 384 ]

let header title = Format.printf "@.=== %s ===@." title

(* --- structured result collection ----------------------------------------
   Experiments append JSON fragments while they print; the driver resets the
   accumulators per experiment and assembles BENCH_<experiment>.json. *)

module J = Sim.Json

let series_acc : J.t list ref = ref []
let extras_acc : (string * J.t) list ref = ref []
let tracked_engines : Sim.Engine.t list ref = ref []

(* The last Spinnaker cluster's trace + metrics registry, for [--trace-out].
   Experiments that build several clusters export the final one. *)
let traced : (Sim.Trace.t * Sim.Metrics.Registry.t) option ref = ref None

let track_engine engine = tracked_engines := engine :: !tracked_engines

(* Simulated seconds consumed by the experiment, over every engine it built. *)
let sim_seconds () =
  List.fold_left
    (fun acc e -> acc +. (float_of_int (Sim.Sim_time.time_to_us (Sim.Engine.now e)) /. 1e6))
    0.0 !tracked_engines

let record_field key v = extras_acc := (key, v) :: !extras_acc

let record_series ?phases ?(extra = []) name points =
  let fields =
    (("name", J.String name) :: extra)
    @ [ ("points", Workload.Experiment.json_of_sweep points) ]
    @
    match phases with
    | Some p -> [ ("write_phases", Sim.Metrics.Write_phases.to_json p) ]
    | None -> []
  in
  series_acc := J.Obj fields :: !series_acc

let print_series name (points : Workload.Experiment.sweep_point list)
    (select : Workload.Experiment.outcome -> Sim.Metrics.run_stats) =
  Format.printf "  %-34s %8s %12s %10s %10s@." name "threads" "load(req/s)" "mean(ms)" "p99(ms)";
  List.iter
    (fun Workload.Experiment.{ threads; outcome } ->
      let s = select outcome in
      Format.printf "  %-34s %8d %12.0f %10.2f %10.2f@." "" threads
        s.Sim.Metrics.throughput_per_sec s.Sim.Metrics.mean_latency_ms s.Sim.Metrics.p99_ms)
    points

(* Print a series and record it for the JSON output; [phases] is the
   cluster's write-path breakdown (printed when it has samples, always
   recorded so the JSON schema is stable). *)
let emit_series ?phases ?extra name points select =
  print_series name points select;
  (match phases with
  | Some p when Sim.Metrics.Write_phases.count p > 0 ->
    Format.printf "  %-34s %a@." "" Sim.Metrics.Write_phases.pp p
  | _ -> ());
  record_series ?phases ?extra name points

(* Wall-clock marks for the setup/measure split: experiments with a
   heavyweight setup phase (preloading an LSM, booting a large cluster) call
   [measurement_begins] when the measured run starts, and the driver reports
   setup separately instead of folding it into the headline sim-s/wall-s
   figure. The first call per experiment wins. *)
let measure_mark : (float * float) option ref = ref None

let measurement_begins () =
  if !measure_mark = None then measure_mark := Some (Unix.gettimeofday (), sim_seconds ())

(* --- cluster builders --------------------------------------------------- *)

(* Tracing and gauge sampling cost real wall-clock time in the hot loop, so
   clusters are built "lean" by default — trace disabled, gauge sampler off.
   Experiments that analyze their own trace ([failover], [table1]) pass
   [~lean:false], and [--trace-out] forces tracing back on everywhere. *)
let want_trace = ref false

let spin_cluster ?(config = Config.default) ?(lean = true) () =
  let lean = lean && not !want_trace in
  let config =
    if lean then { config with Config.metrics_sample_period = Sim.Sim_time.span_zero }
    else config
  in
  let engine = Sim.Engine.create ~seed:config.Config.seed () in
  track_engine engine;
  let cluster = Cluster.create engine config in
  if lean then Sim.Trace.enable (Cluster.trace cluster) false;
  traced := Some (Cluster.trace cluster, Cluster.metrics cluster);
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then failwith "spinnaker cluster not ready";
  (engine, cluster)

let cas_cluster ?(config = Config.default) () =
  let engine = Sim.Engine.create ~seed:config.Config.seed () in
  track_engine engine;
  let cluster = Eventual.Cas_cluster.create engine config in
  Eventual.Cas_cluster.start cluster;
  (engine, cluster)

let base_spec ?(write_fraction = 0.0) ?(conditional = false)
    ?(key_mode = Workload.Generator.Uniform_random) () =
  {
    Workload.Experiment.default_spec with
    Workload.Experiment.write_fraction;
    conditional;
    key_mode;
    warmup = warmup_span ();
    measure = measure_span ();
  }

let consecutive = Workload.Generator.Consecutive { stride = 257 }

(* Returns the sweep points plus the cluster's accumulated write-path phase
   breakdown (empty for read-only specs). *)
let spin_sweep ?config ~consistent_reads ?(conditional = false) ~spec threads =
  let engine, cluster = spin_cluster ?config () in
  let points =
    Workload.Experiment.sweep ~engine
      ~key_space:(Cluster.config cluster).Config.key_space
      ~make_driver:(fun () ->
        if conditional then Workload.Driver.spinnaker_conditional cluster
        else Workload.Driver.spinnaker cluster ~consistent_reads ())
      ~thread_counts:threads
      { spec with Workload.Experiment.conditional }
  in
  (points, Cluster.write_phases cluster)

let cas_sweep ?config ~read_level ~write_level ~spec threads =
  let engine, cluster = cas_cluster ?config () in
  Workload.Experiment.sweep ~engine
    ~key_space:(Eventual.Cas_cluster.config cluster).Config.key_space
    ~make_driver:(fun () -> Workload.Driver.cassandra cluster ~read_level ~write_level ())
    ~thread_counts:threads spec

(* --- Figure 1: master-slave unavailability ------------------------------- *)

let fig1 () =
  header "Figure 1: master-slave replication loses availability (and data)";
  let engine = Sim.Engine.create () in
  track_engine engine;
  let pair = Masterslave.Ms_pair.create engine () in
  let put key =
    let done_ = ref None in
    Masterslave.Ms_pair.put pair ~key ~value:"v" (fun r -> done_ := Some r);
    let rec wait () =
      match !done_ with
      | Some r -> r
      | None ->
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        wait ()
    in
    wait ()
  in
  for i = 1 to 10 do
    ignore (put (Printf.sprintf "k%d" i))
  done;
  Format.printf "  (a) both up:            master LSN=%d  slave LSN=%d@."
    (Masterslave.Ms_pair.committed_lsn pair Masterslave.Ms_pair.Master)
    (Masterslave.Ms_pair.committed_lsn pair Masterslave.Ms_pair.Slave);
  Masterslave.Ms_pair.crash pair Masterslave.Ms_pair.Slave;
  for i = 11 to 20 do
    ignore (put (Printf.sprintf "k%d" i))
  done;
  Format.printf "  (b,c) slave down, master continues to LSN=%d, then master dies@."
    (Masterslave.Ms_pair.committed_lsn pair Masterslave.Ms_pair.Master);
  Masterslave.Ms_pair.crash pair Masterslave.Ms_pair.Master;
  Masterslave.Ms_pair.restart pair Masterslave.Ms_pair.Slave;
  let available = Masterslave.Ms_pair.available_for_writes pair in
  Format.printf "  (d) slave back, master down: available for writes = %b@." available;
  Masterslave.Ms_pair.destroy pair Masterslave.Ms_pair.Master;
  let lost = Masterslave.Ms_pair.lost_writes pair in
  Format.printf "      after permanent master failure: %d committed writes lost@." lost;
  record_field "masterslave"
    (J.Obj
       [
         ("available_for_writes_after_failover", J.Bool available);
         ("lost_writes_after_master_loss", J.Int lost);
       ]);
  Format.printf
    "  contrast: Spinnaker's quorum commit keeps the cohort available through@.\
    \  the same sequence and loses nothing (see the masterslave test suite).@."

(* --- Figure 8: read latency vs load -------------------------------------- *)

let fig8 () =
  header "Figure 8: average read latency vs load (4KB random reads, 10 nodes)";
  let spec = base_spec () in
  let threads = read_threads () in
  let consistent, phases_c = spin_sweep ~consistent_reads:true ~spec threads in
  emit_series ~phases:phases_c "Spinnaker consistent reads" consistent (fun o ->
      o.Workload.Experiment.all);
  let timeline, phases_t = spin_sweep ~consistent_reads:false ~spec threads in
  emit_series ~phases:phases_t "Spinnaker timeline reads" timeline (fun o ->
      o.Workload.Experiment.all);
  emit_series "Cassandra quorum reads"
    (cas_sweep ~read_level:Eventual.Cas_message.Quorum ~write_level:Eventual.Cas_message.Quorum
       ~spec threads)
    (fun o -> o.Workload.Experiment.all);
  emit_series "Cassandra weak reads"
    (cas_sweep ~read_level:Eventual.Cas_message.One ~write_level:Eventual.Cas_message.Quorum
       ~spec threads)
    (fun o -> o.Workload.Experiment.all)

(* --- Figure 9: write latency vs load -------------------------------------- *)

let fig9 () =
  header "Figure 9: average write latency vs load (4KB consecutive keys, magnetic log)";
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  let threads = write_threads () in
  let points, phases = spin_sweep ~consistent_reads:true ~spec threads in
  emit_series ~phases "Spinnaker writes" points (fun o -> o.Workload.Experiment.all);
  emit_series "Cassandra quorum writes"
    (cas_sweep ~read_level:Eventual.Cas_message.Quorum ~write_level:Eventual.Cas_message.Quorum
       ~spec threads)
    (fun o -> o.Workload.Experiment.all)

(* --- Table 1: cohort recovery time vs commit period ------------------------ *)

(* A single client's threads write 4KB values into one cohort's key range;
   we kill the leader and measure how long the cohort stays unavailable for
   writes, excluding failure detection (the paper excludes its 2 s Zookeeper
   timeout; we measure from the moment the survivors start electing). *)
let availability_run ~commit_period ~piggyback =
  let config =
    {
      Config.default with
      Config.nodes = 5;
      commit_period;
      piggyback_commits = piggyback;
      session_timeout = Sim.Sim_time.sec 2;
    }
  in
  (* Not lean: the run reads [cohort_open]/[election_start] off the trace. *)
  let engine, cluster = spin_cluster ~config ~lean:false () in
  let client = Cluster.new_client cluster in
  let width = config.Config.key_space / config.Config.nodes in
  let cursor = ref 0 in
  let last_completion = ref Sim.Sim_time.zero in
  let value = Workload.Generator.value ~size:4096 in
  let rec writer () =
    let key = Partition.key_of_int (Cluster.partition cluster) (!cursor mod width) in
    incr cursor;
    Client.put client key "c" ~value (fun _ ->
        last_completion := Sim.Engine.now engine;
        writer ())
  in
  for _ = 1 to 8 do
    writer ()
  done;
  (* Reach steady state: followers lag the leader by up to a commit period. *)
  let settle = Sim.Sim_time.span_add commit_period (Sim.Sim_time.sec 5) in
  Sim.Engine.run_for engine settle;
  let leader = Option.get (Cluster.leader_of cluster ~range:0) in
  (* Crash just before the leader's next commit message, when the followers'
     backlog — the writes the new leader must re-propose — is maximal; this
     is the regime the paper's proportionality describes. *)
  (let t0 =
     match
       List.find_opt
         (fun e -> String.equal e.Sim.Trace.tag "cohort_open" && e.Sim.Trace.cohort = 0)
         (Sim.Trace.events (Cluster.trace cluster))
     with
     | Some e -> e.Sim.Trace.at
     | None -> Sim.Sim_time.zero
   in
   let period_us = Sim.Sim_time.to_us commit_period in
   let elapsed_us = Sim.Sim_time.to_us (Sim.Sim_time.diff (Sim.Engine.now engine) t0) in
   let next_tick = ((elapsed_us / period_us) + 2) * period_us in
   let crash_at = Sim.Sim_time.add t0 (Sim.Sim_time.us (next_tick - 50_000)) in
   Sim.Engine.run_until engine crash_at);
  let t_crash = Sim.Engine.now engine in
  Cluster.crash_node cluster leader;
  (* Run until a write completes after the crash. *)
  let deadline = Sim.Sim_time.add t_crash (Sim.Sim_time.sec 120) in
  let rec wait () =
    if Sim.Sim_time.(!last_completion > t_crash) then ()
    else if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then
      failwith "availability run: no recovery within 120 s"
    else begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 20);
      wait ()
    end
  in
  wait ();
  let trace = Cluster.trace cluster in
  let detection =
    List.filter_map
      (fun e ->
        if
          String.equal e.Sim.Trace.tag "election_start"
          && Sim.Sim_time.(e.Sim.Trace.at > t_crash)
          && e.Sim.Trace.cohort = 0
        then Some e.Sim.Trace.at
        else None)
      (Sim.Trace.events trace)
  in
  let t_detect = match detection with t :: _ -> t | [] -> t_crash in
  Sim.Sim_time.to_sec_f (Sim.Sim_time.diff !last_completion t_detect)

let table1 () =
  header "Table 1: cohort recovery time vs commit period (failure detection excluded)";
  let periods = if !quick then [ 1; 5 ] else [ 1; 5; 10; 15 ] in
  let results =
    List.map
      (fun p -> (p, availability_run ~commit_period:(Sim.Sim_time.sec p) ~piggyback:false))
      periods
  in
  Format.printf "  %-22s" "Commit Period (sec)";
  List.iter (fun (p, _) -> Format.printf "%8d" p) results;
  Format.printf "@.  %-22s" "Recovery Time (sec)";
  List.iter (fun (_, r) -> Format.printf "%8.1f" r) results;
  Format.printf "@.";
  record_field "recovery_vs_commit_period"
    (J.List
       (List.map
          (fun (p, r) ->
            J.Obj [ ("commit_period_sec", J.Int p); ("recovery_sec", J.Float r) ])
          results))

(* --- Failover timeline: crash-the-leader under full tracing ---------------- *)

(* Drives range 0 with a small write load, crashes its leader, restarts it,
   and runs the causal trace through the timeline analyzer: unavailability is
   crash -> first re-committed client write; catch-up is restart ->
   follower_active. With [--trace-out] the whole run is inspectable in
   Perfetto. *)
let failover () =
  header "Failover timeline: crash the range-0 leader, analyze the trace";
  let config =
    {
      Config.default with
      Config.nodes = 5;
      session_timeout = Sim.Sim_time.sec 2;
      trace_capacity = 1 lsl 20;
      metrics_sample_period = Sim.Sim_time.ms 50;
    }
  in
  (* Not lean: the whole point is the analyzed trace. *)
  let engine, cluster = spin_cluster ~config ~lean:false () in
  let client = Cluster.new_client cluster in
  let width = config.Config.key_space / config.Config.nodes in
  let cursor = ref 0 in
  let value = Workload.Generator.value ~size:1024 in
  let rec writer () =
    let key = Partition.key_of_int (Cluster.partition cluster) (!cursor mod width) in
    incr cursor;
    Client.put client key "c" ~value (fun _ -> writer ())
  in
  for _ = 1 to 8 do
    writer ()
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec (if !quick then 2 else 5));
  let leader = Option.get (Cluster.leader_of cluster ~range:0) in
  let t_crash = Sim.Engine.now engine in
  Cluster.crash_node cluster leader;
  (* Run until a client write commits under the new leader — the same
     [phase.apply] span end the analyzer takes as the end of the outage. *)
  let committed_since t0 () =
    List.exists
      (fun e ->
        e.Sim.Trace.cohort = 0
        && e.Sim.Trace.kind = Sim.Trace.Span_end
        && Sim.Sim_time.(e.Sim.Trace.at > t0))
      (Sim.Trace.find (Cluster.trace cluster) ~tag:"phase.apply")
  in
  let deadline = Sim.Sim_time.add t_crash (Sim.Sim_time.sec 60) in
  let rec wait_write () =
    if committed_since t_crash () then ()
    else if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then
      failwith "failover: no post-crash write within 60 s"
    else begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 20);
      wait_write ()
    end
  in
  wait_write ();
  (* Bring the old leader back as a follower and let catch-up finish. *)
  Cluster.restart_node cluster leader;
  let t_restart = Sim.Engine.now engine in
  let caught_up () =
    List.exists
      (fun e ->
        e.Sim.Trace.cohort = 0 && e.Sim.Trace.node = leader
        && Sim.Sim_time.(e.Sim.Trace.at > t_restart))
      (Sim.Trace.find (Cluster.trace cluster) ~tag:"follower_active")
  in
  let catchup_deadline = Sim.Sim_time.add t_restart (Sim.Sim_time.sec 60) in
  let rec wait_catchup () =
    if caught_up () then ()
    else if Sim.Sim_time.(Sim.Engine.now engine >= catchup_deadline) then
      Format.printf "  (restarted leader did not finish catch-up within 60 s)@."
    else begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
      wait_catchup ()
    end
  in
  wait_catchup ();
  (* One more second so the gauge sampler captures the recovered state. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  let trace = Cluster.trace cluster in
  let timeline =
    Sim.Timeline.analyze ~leader ~events:(Sim.Trace.events trace) ~crash_at:t_crash ~cohort:0 ()
  in
  Format.printf "%a" Sim.Timeline.pp timeline;
  Format.printf "  trace: %d events retained, %d dropped@." (Sim.Trace.length trace)
    (Sim.Trace.dropped trace);
  record_field "failover_timeline" (Sim.Timeline.to_json timeline);
  record_field "crashed_leader" (J.Int leader)

(* --- Tail attribution: critical-path segment breakdown vs load --------------- *)

(* One fresh cluster per load level runs a closed-loop write workload under
   full tracing; Sim.Critpath then partitions every committed write's
   client-observed latency into disjoint critical-path segments. The
   experiment asserts the bookkeeping — segments sum to the measured latency
   within 1% on every request — and the physics: the dominant segment must
   shift as load grows (a tail that is all log force at 1 writer must not
   still be all log force at 48). The top level's flight recorder dumps its
   pinned outliers as a Perfetto flow-event trace (TRACE_outliers.json). *)
let tail () =
  header "Tail attribution: critical-path segments vs load";
  let loads = if !quick then [ 1; 8; 256 ] else [ 1; 4; 12; 48; 256 ] in
  let span = if !quick then sec_f 3.0 else sec_f 8.0 in
  let cdf_json h =
    J.List
      (List.map
         (fun p ->
           J.Obj
             [ ("p", J.Float p); ("us", J.Float (Sim.Metrics.Histogram.percentile h p)) ])
         [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99; 0.995; 0.999; 1.0 ])
  in
  let outlier_json = ref None in
  let dominants = ref [] in
  let levels =
    List.map
      (fun threads ->
        (* A big ring so the whole measured window survives for analysis. *)
        let config = { Config.default with Config.trace_capacity = 1 lsl 20 } in
        let engine, cluster = spin_cluster ~config ~lean:false () in
        let client = Cluster.new_client cluster in
        let cursor = ref 0 in
        let value = Workload.Generator.value ~size:1024 in
        let rec writer () =
          let key =
            Partition.key_of_int (Cluster.partition cluster)
              (!cursor mod config.Config.key_space)
          in
          incr cursor;
          Client.put client key "c" ~value (fun _ -> writer ())
        in
        for _ = 1 to threads do
          writer ()
        done;
        Sim.Engine.run_for engine span;
        let trace = Cluster.trace cluster in
        let analysis =
          Sim.Critpath.analyze ~dropped:(Sim.Trace.dropped trace)
            ~events:(Sim.Trace.events trace) ()
        in
        if analysis.Sim.Critpath.requests = [] then
          failwith (Printf.sprintf "tail: no analyzable writes at %d writers" threads);
        let attr = Sim.Metrics.Attribution.create () in
        let worst = ref 0.0 in
        List.iter
          (fun r ->
            let e = Sim.Critpath.conservation_error r in
            if e > !worst then worst := e;
            Sim.Critpath.record attr r)
          analysis.Sim.Critpath.requests;
        if !worst > 0.01 then
          failwith
            (Printf.sprintf "tail: conservation violated at %d writers (max error %.4f)"
               threads !worst);
        let dominant =
          Option.value ~default:"?" (Sim.Metrics.Attribution.dominant attr)
        in
        dominants := dominant :: !dominants;
        let total = Sim.Metrics.Attribution.total attr in
        let pct p = Sim.Metrics.Histogram.percentile total p /. 1000.0 in
        Format.printf
          "  %4d writers: %5d writes  p50 %8.2f ms  p99 %8.2f ms  p99.9 %8.2f ms  \
           dominant %s@."
          threads (Sim.Metrics.Attribution.count attr) (pct 0.50) (pct 0.99) (pct 0.999)
          dominant;
        Format.printf "  %4s %a@." "" Sim.Metrics.Attribution.pp attr;
        (* The highest load level's flight recorder ships the outlier dump. *)
        outlier_json := Some (Sim.Trace_export.outliers_to_json (Cluster.flight cluster));
        J.Obj
          [
            ("threads", J.Int threads);
            ("writes", J.Int (Sim.Metrics.Attribution.count attr));
            ("dominant", J.String dominant);
            ("max_conservation_error", J.Float !worst);
            ("latency_cdf", cdf_json total);
            ("attribution", Sim.Metrics.Attribution.to_json attr);
            ("critpath", Sim.Critpath.to_json analysis);
          ])
      loads
  in
  record_field "levels" (J.List levels);
  let order = List.rev !dominants in
  Format.printf "  dominant segment by load: %s@." (String.concat " -> " order);
  record_field "dominants" (J.List (List.map (fun d -> J.String d) order));
  if List.length (List.sort_uniq String.compare order) < 2 then
    failwith "tail: dominant segment never shifted across load levels";
  (* Always emit the outlier trace; CI uploads TRACE_*.json. It must
     round-trip through the JSON parser — Perfetto is stricter than we are. *)
  (match !outlier_json with
  | None -> ()
  | Some json ->
    let path = "TRACE_outliers.json" in
    J.to_file path json;
    (match J.of_file path with
    | Ok _ -> Format.printf "  wrote %s (outlier flight-recorder trace)@." path
    | Error e -> failwith (Printf.sprintf "TRACE_outliers.json does not round-trip: %s" e)));
  (* Read attribution: the same conservation bar over the read path. One
     cluster runs writers plus strong and timeline readers; mid-window the
     lease switch flips off, so the trace holds leased reads, guarded reads
     (read.guard sub-spans), and token timeline reads (read.wait_lsn
     sub-spans when a follower parks). Every analyzed read must conserve
     within 1%, and the unleased half guarantees at least one guard-segment
     request. *)
  let config =
    {
      Config.default with
      Config.trace_capacity = 1 lsl 20;
      (* Fast commits so parked token reads flush inside the staleness
         bound instead of all redirecting to the leader. *)
      commit_period = Sim.Sim_time.ms 20;
      piggyback_commits = true;
    }
  in
  let engine, cluster = spin_cluster ~config ~lean:false () in
  let client = Cluster.new_client cluster in
  let value = Workload.Generator.value ~size:256 in
  let key i = Partition.key_of_int (Cluster.partition cluster) (i mod 1000) in
  let cursor = ref 0 in
  let rec writer () =
    incr cursor;
    Client.put client (key !cursor) "c" ~value (fun _ -> writer ())
  in
  let rec strong_reader () =
    incr cursor;
    Client.get client ~consistent:true (key !cursor) "c" (fun _ -> strong_reader ())
  in
  let rec timeline_reader () =
    incr cursor;
    Client.get client ~consistent:false (key !cursor) "c" (fun _ -> timeline_reader ())
  in
  for _ = 1 to 4 do
    writer ()
  done;
  for _ = 1 to 8 do
    strong_reader ();
    timeline_reader ()
  done;
  let half = if !quick then sec_f 1.0 else sec_f 2.0 in
  Sim.Engine.run_for engine half;
  Cluster.set_lease_enabled cluster false;
  Sim.Engine.run_for engine half;
  Cluster.set_lease_enabled cluster true;
  let trace = Cluster.trace cluster in
  let analysis =
    Sim.Critpath.analyze ~dropped:(Sim.Trace.dropped trace) ~events:(Sim.Trace.events trace) ()
  in
  let seg_of r s = try List.assoc s r.Sim.Critpath.segments with Not_found -> 0.0 in
  let reads =
    List.filter (fun r -> seg_of r Sim.Critpath.Read > 0.0) analysis.Sim.Critpath.requests
  in
  if reads = [] then failwith "tail: no analyzable reads in the read-attribution window";
  let read_attr = Sim.Metrics.Attribution.create () in
  let worst_read = ref 0.0 in
  List.iter
    (fun r ->
      let e = Sim.Critpath.conservation_error r in
      if e > !worst_read then worst_read := e;
      Sim.Critpath.record read_attr r)
    reads;
  if !worst_read > 0.01 then
    failwith
      (Printf.sprintf "tail: read conservation violated (max error %.4f)" !worst_read);
  let count_pos s = List.length (List.filter (fun r -> seg_of r s > 0.0) reads) in
  let guarded = count_pos Sim.Critpath.Guard in
  let waited = count_pos Sim.Critpath.Wait_lsn in
  Format.printf
    "  read attribution: %d reads (%d guarded, %d token-parked), max conservation error %.4f@."
    (List.length reads) guarded waited !worst_read;
  Format.printf "  %4s %a@." "" Sim.Metrics.Attribution.pp read_attr;
  if guarded = 0 then
    failwith "tail: the unleased window produced no guard-segment reads";
  record_field "read_attribution"
    (J.Obj
       [
         ("reads", J.Int (List.length reads));
         ("guarded_reads", J.Int guarded);
         ("token_parked_reads", J.Int waited);
         ("max_conservation_error", J.Float !worst_read);
         ("attribution", Sim.Metrics.Attribution.to_json read_attr);
       ])

(* --- Read path: hot vs uniform key mixes over a preloaded LSM ---------------- *)

(* The Figs. 9-10 regime: read throughput/latency against a real local LSM.
   One cluster is preloaded with enough writes that every cohort carries
   several tiers of SSTables, then the read-only series run on it: hot and
   uniform key mixes, strong and timeline reads, plus the hot strong mix
   with leases flipped off at runtime (every strong read pays a read-index
   quorum round instead of the local lease check). Per point we record the
   row-cache hit rate, SSTables skipped vs probed, and the read-serve
   counter deltas (leased / guarded / follower-served / token waits). A
   final mixed run measures follower offload: writers hand their client a
   read-your-writes token and the timeline reads round-robin over replicas.
   The experiment asserts the headline effects: the hot mix must actually
   hit the cache, hot-key strong-read throughput must be at least 2x the
   uniform mix at the highest thread count, leased strong reads must beat
   the unleased guard path by at least 1.5x at saturation, and followers
   must actually serve timeline token reads in the offload run. *)
let read_exp () =
  header "Read path: hot vs uniform key mix, strong vs timeline reads, leases on/off";
  let config =
    {
      Config.default with
      (* A smaller key space and flush threshold so the preload produces a
         populated, multi-tier LSM in bounded simulated time; the row cache
         is deliberately smaller than one range's share of the key space so
         only a skewed mix can live in it. *)
      Config.key_space = 20_000;
      flush_bytes = 64 * 1024;
      value_bytes = 1024;
      row_cache_capacity = 256;
      (* Keep followers fresh (commits land within ~100 ms of the leader) so
         timeline token reads can be absorbed by followers instead of
         bouncing off the read_lsn_wait staleness bound. *)
      commit_period = Sim.Sim_time.ms 100;
      piggyback_commits = true;
    }
  in
  let engine, cluster = spin_cluster ~config () in
  let key_space = config.Config.key_space in
  let preload =
    {
      (base_spec ~write_fraction:1.0 ~key_mode:consecutive ()) with
      Workload.Experiment.threads = 128;
      value_bytes = config.Config.value_bytes;
      warmup = sec_f 0.2;
      measure = (if !quick then sec_f 3.0 else sec_f 8.0);
    }
  in
  ignore
    (Workload.Experiment.run ~engine ~key_space
       ~make_driver:(fun () -> Workload.Driver.spinnaker cluster ~consistent_reads:true ())
       preload);
  (* Everything up to here built the LSM under test; only the read series
     below are the measured run. *)
  measurement_begins ();
  let s0 = Cluster.read_path_stats cluster in
  Format.printf
    "  preload: %d compactions (%d full), max merge input %d KB vs max store %d KB@."
    s0.Cluster.compactions s0.Cluster.full_compactions
    (s0.Cluster.max_compaction_input_bytes / 1024)
    (s0.Cluster.max_store_bytes_at_compaction / 1024);
  Format.printf "  tables per node:";
  List.iter
    (fun (n, ts) ->
      Format.printf " n%d=[%s]" n (String.concat "," (List.map string_of_int ts)))
    s0.Cluster.tables_per_node;
  Format.printf "@.";
  let threads = read_threads () in
  let hot_mode = Workload.Generator.Hotspot { fraction_hot = 0.9; hot_keys = 512 } in
  (* (series label, key mode, consistent reads, leases enabled); strong
     series first so the 2x assertion compares like with like, and the
     unleased hot strong series runs over the same preloaded stores with
     only the runtime lease switch flipped. *)
  let series =
    [
      ("hot keys, strong reads", hot_mode, true, true);
      ("uniform keys, strong reads", Workload.Generator.Uniform_random, true, true);
      ("hot keys, strong reads (unleased)", hot_mode, true, false);
      ("hot keys, timeline reads", hot_mode, false, true);
      ("uniform keys, timeline reads", Workload.Generator.Uniform_random, false, true);
    ]
  in
  let read_serve_json (b : Cluster.read_serve_stats) (a : Cluster.read_serve_stats) =
    [
      ("leased_reads", J.Int (a.Cluster.leased - b.Cluster.leased));
      ("guarded_reads", J.Int (a.Cluster.guarded - b.Cluster.guarded));
      ("lease_rejects", J.Int (a.Cluster.lease_rejects - b.Cluster.lease_rejects));
      ("guard_fails", J.Int (a.Cluster.guard_fails - b.Cluster.guard_fails));
      ("leader_timeline", J.Int (a.Cluster.leader_timeline - b.Cluster.leader_timeline));
      ("follower_timeline", J.Int (a.Cluster.follower_timeline - b.Cluster.follower_timeline));
      ("token_waits", J.Int (a.Cluster.token_waits - b.Cluster.token_waits));
      ("token_redirects", J.Int (a.Cluster.token_redirects - b.Cluster.token_redirects));
    ]
  in
  let peak = Hashtbl.create 4 in
  let hot_hit_rate = ref 0.0 in
  List.iter
    (fun (name, key_mode, consistent, leased) ->
      Cluster.set_lease_enabled cluster leased;
      Format.printf "  %-34s %8s %12s %10s %10s %7s@." name "threads" "load(req/s)" "mean(ms)"
        "p99(ms)" "hit%";
      let points =
        List.map
          (fun th ->
            let before = Cluster.read_path_stats cluster in
            let serve0 = Cluster.read_serve_stats cluster in
            let outcome =
              Workload.Experiment.run ~engine
                ~key_space
                ~make_driver:(fun () ->
                  Workload.Driver.spinnaker cluster ~consistent_reads:consistent ())
                {
                  (base_spec ~key_mode ()) with
                  Workload.Experiment.threads = th;
                  value_bytes = config.Config.value_bytes;
                  warmup = sec_f 0.5;
                  measure = measure_span ();
                }
            in
            let after = Cluster.read_path_stats cluster in
            let serve1 = Cluster.read_serve_stats cluster in
            let hits = after.Cluster.cache_hits - before.Cluster.cache_hits in
            let misses = after.Cluster.cache_misses - before.Cluster.cache_misses in
            let hit_rate =
              if hits + misses = 0 then 0.0
              else float_of_int hits /. float_of_int (hits + misses)
            in
            let s = outcome.Workload.Experiment.all in
            Format.printf "  %-34s %8d %12.0f %10.2f %10.2f %7.1f@." "" th
              s.Sim.Metrics.throughput_per_sec s.Sim.Metrics.mean_latency_ms
              s.Sim.Metrics.p99_ms (100.0 *. hit_rate);
            if consistent then begin
              Hashtbl.replace peak (name, th) s.Sim.Metrics.throughput_per_sec;
              if name = "hot keys, strong reads" && hit_rate > !hot_hit_rate then
                hot_hit_rate := hit_rate
            end;
            match Workload.Experiment.json_of_outcome outcome with
            | J.Obj fields ->
              J.Obj
                (fields
                @ [
                    ("cache_hit_rate", J.Float hit_rate);
                    ("cache_hits", J.Int hits);
                    ("cache_misses", J.Int misses);
                    ( "cache_evictions",
                      J.Int (after.Cluster.cache_evictions - before.Cluster.cache_evictions) );
                    ( "sstables_skipped",
                      J.Int (after.Cluster.sstables_skipped - before.Cluster.sstables_skipped) );
                    ( "sstables_probed",
                      J.Int (after.Cluster.sstables_probed - before.Cluster.sstables_probed) );
                  ]
                @ read_serve_json serve0 serve1)
            | other -> other)
          threads
      in
      series_acc :=
        J.Obj
          [
            ("name", J.String name);
            ("leases", J.Bool leased);
            ("points", J.List points);
          ]
        :: !series_acc)
    series;
  (* Follower offload: a mixed run in which every write hands the client a
     read-your-writes token and timeline reads round-robin over the cohort's
     replicas. Followers serve the reads whose token their applied state
     already covers (parking briefly when it does not), so the leader keeps
     only the write load plus its share of the reads. *)
  Cluster.set_lease_enabled cluster true;
  let offload_top = List.fold_left Stdlib.max 0 threads in
  let serve0 = Cluster.read_serve_stats cluster in
  let offload_outcome =
    Workload.Experiment.run ~engine ~key_space
      ~make_driver:(fun () -> Workload.Driver.spinnaker cluster ~consistent_reads:false ())
      {
        (base_spec ~write_fraction:0.2 ~key_mode:hot_mode ()) with
        Workload.Experiment.threads = offload_top;
        value_bytes = config.Config.value_bytes;
        warmup = sec_f 0.5;
        measure = measure_span ();
      }
  in
  let serve1 = Cluster.read_serve_stats cluster in
  let d sel = sel serve1 - sel serve0 in
  let follower_served = d (fun (s : Cluster.read_serve_stats) -> s.Cluster.follower_timeline) in
  let leader_served = d (fun (s : Cluster.read_serve_stats) -> s.Cluster.leader_timeline) in
  let offload_fraction =
    if follower_served + leader_served = 0 then 0.0
    else float_of_int follower_served /. float_of_int (follower_served + leader_served)
  in
  Format.printf
    "  follower offload at %d threads (20%% writes): leader %d / follower %d timeline reads \
     (%.0f%% offloaded), %d token waits, %d redirects@."
    offload_top leader_served follower_served
    (100.0 *. offload_fraction)
    (d (fun (s : Cluster.read_serve_stats) -> s.Cluster.token_waits))
    (d (fun (s : Cluster.read_serve_stats) -> s.Cluster.token_redirects));
  record_field "follower_offload"
    (J.Obj
       (read_serve_json serve0 serve1
       @ [
           ("threads", J.Int offload_top);
           ("offload_fraction", J.Float offload_fraction);
           ("outcome", Workload.Experiment.json_of_outcome offload_outcome);
         ]));
  let final = Cluster.read_path_stats cluster in
  record_field "tables_per_node"
    (J.List
       (List.map
          (fun (node, tables) ->
            J.Obj
              [
                ("node", J.Int node);
                ("sstables", J.List (List.map (fun n -> J.Int n) tables));
              ])
          final.Cluster.tables_per_node));
  record_field "compaction"
    (J.Obj
       [
         ("compactions", J.Int final.Cluster.compactions);
         ("full_compactions", J.Int final.Cluster.full_compactions);
         ("max_input_bytes", J.Int final.Cluster.max_compaction_input_bytes);
         ("total_input_bytes", J.Int final.Cluster.total_compaction_input_bytes);
         ("max_store_bytes", J.Int final.Cluster.max_store_bytes_at_compaction);
       ]);
  (* Smoke assertions: the cache must be effective on the hot mix, hot-key
     strong reads must beat the uniform mix by at least 2x at the highest
     thread count, leased strong reads must beat the per-read quorum guard
     by at least 1.5x at saturation, and the offload run must have served
     timeline token reads from followers. *)
  let top = List.fold_left Stdlib.max 0 threads in
  let hot_tp =
    try Hashtbl.find peak ("hot keys, strong reads", top) with Not_found -> 0.0
  in
  let uni_tp =
    try Hashtbl.find peak ("uniform keys, strong reads", top) with Not_found -> infinity
  in
  let unleased_tp =
    try Hashtbl.find peak ("hot keys, strong reads (unleased)", top) with Not_found -> infinity
  in
  let speedup = if uni_tp > 0.0 then hot_tp /. uni_tp else 0.0 in
  let lease_speedup = if unleased_tp > 0.0 then hot_tp /. unleased_tp else 0.0 in
  record_field "hot_over_uniform_speedup" (J.Float speedup);
  record_field "hot_cache_hit_rate" (J.Float !hot_hit_rate);
  record_field "leased_over_unleased_speedup" (J.Float lease_speedup);
  Format.printf "  hot/uniform strong-read speedup at %d threads: %.2fx (hot hit rate %.1f%%)@."
    top speedup (100.0 *. !hot_hit_rate);
  Format.printf "  leased/unleased strong-read speedup at %d threads: %.2fx@." top lease_speedup;
  if !hot_hit_rate <= 0.0 then failwith "read: cache hit rate on the hot-key mix is zero";
  if speedup < 2.0 then
    failwith
      (Printf.sprintf "read: hot-key speedup %.2fx below the 2x bar (hot %.0f vs uniform %.0f req/s)"
         speedup hot_tp uni_tp);
  if lease_speedup < 1.5 then
    failwith
      (Printf.sprintf
         "read: leased speedup %.2fx below the 1.5x bar (leased %.0f vs unleased %.0f req/s)"
         lease_speedup hot_tp unleased_tp);
  if follower_served <= 0 then
    failwith "read: followers served no timeline token reads in the offload run"

(* --- Paxos tuning: group-commit batching x replication pipelining ----------- *)

(* The raw-speed campaign's protocol half: sweep the WAL group-commit bound
   against the replication pipeline depth on a pure-write workload and emit
   the full throughput heatmap (plus an ack-coalescing ablation at the best
   cell), then run a fig11-shaped closed-loop load at 80 nodes with 1e5
   clients to show the tuned write path at scale. The heatmap optimum must
   land away from (batch=1, depth=1) — if it does not, batching regressed. *)
let paxos_tuning () =
  header "Paxos tuning: group-commit batch bound x replication pipeline depth";
  let batches = if !quick then [ 1; 8; 64 ] else [ 1; 4; 16; 64 ] in
  let depths = if !quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16 ] in
  let threads = 256 in
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  let cell config =
    let points, _ = spin_sweep ~config ~consistent_reads:true ~spec [ threads ] in
    (List.hd points).Workload.Experiment.outcome.Workload.Experiment.all
  in
  let cells = ref [] in
  let best = ref (0.0, (0, 0)) in
  Format.printf "  writes/s at %d closed-loop writers; rows: wal_max_batch, cols: pipeline_depth@."
    threads;
  Format.printf "  %12s" "batch\\depth";
  List.iter (fun d -> Format.printf "%10d" d) depths;
  Format.printf "@.";
  List.iter
    (fun batch ->
      Format.printf "  %12d" batch;
      List.iter
        (fun depth ->
          let s =
            cell { Config.default with Config.wal_max_batch = batch; pipeline_depth = depth }
          in
          let tp = s.Sim.Metrics.throughput_per_sec in
          if tp > fst !best then best := (tp, (batch, depth));
          Format.printf "%10.0f" tp;
          cells :=
            J.Obj
              [
                ("wal_max_batch", J.Int batch);
                ("pipeline_depth", J.Int depth);
                ("throughput_per_sec", J.Float tp);
                ("mean_latency_ms", J.Float s.Sim.Metrics.mean_latency_ms);
                ("p99_ms", J.Float s.Sim.Metrics.p99_ms);
                ("errors", J.Int s.Sim.Metrics.errors);
              ]
            :: !cells)
        depths;
      Format.printf "@.")
    batches;
  let best_tp, (best_batch, best_depth) = !best in
  Format.printf "  best cell: batch=%d depth=%d (%.0f writes/s)@." best_batch best_depth best_tp;
  record_field "heatmap" (J.List (List.rev !cells));
  record_field "best"
    (J.Obj
       [
         ("wal_max_batch", J.Int best_batch);
         ("pipeline_depth", J.Int best_depth);
         ("throughput_per_sec", J.Float best_tp);
       ]);
  if best_batch <= 1 && best_depth <= 1 then
    failwith "paxos-tuning: heatmap optimum landed on (batch=1, depth=1) — batching is a no-op";
  (* Ack coalescing at the best cell: cumulative acks make deferral lossless,
     so a small window should trade a little latency for fewer messages
     without hurting throughput. *)
  Format.printf "  ack coalescing at the best cell:@.";
  record_field "ack_coalesce"
    (J.List
       (List.map
          (fun window_us ->
            let s =
              cell
                {
                  Config.default with
                  Config.wal_max_batch = best_batch;
                  pipeline_depth = best_depth;
                  ack_coalesce = Sim.Sim_time.us window_us;
                }
            in
            Format.printf "    window %5d us: %9.0f writes/s, mean %6.2f ms, p99 %6.2f ms@."
              window_us s.Sim.Metrics.throughput_per_sec s.Sim.Metrics.mean_latency_ms
              s.Sim.Metrics.p99_ms;
            J.Obj
              [
                ("ack_coalesce_us", J.Int window_us);
                ("throughput_per_sec", J.Float s.Sim.Metrics.throughput_per_sec);
                ("mean_latency_ms", J.Float s.Sim.Metrics.mean_latency_ms);
                ("p99_ms", J.Float s.Sim.Metrics.p99_ms);
              ])
          [ 0; 200; 1000 ]));
  (* Fig-11 shape at scale: a tuned 80-node cluster under 100k closed-loop
     clients. The client timeout is raised so the (deliberately) saturating
     load queues instead of dissolving into retry storms, and the window is
     sized to the queueing delay — at saturation the mean latency is
     clients/capacity (~1s here), so a sub-second measure phase would close
     before any write issued inside it completes. *)
  let nodes = 80 in
  let clients = 100_000 in
  let config =
    {
      (Config.with_nodes nodes Config.default) with
      Config.wal_max_batch = best_batch;
      pipeline_depth = best_depth;
      value_bytes = 256;
      client_timeout = Sim.Sim_time.sec 10;
    }
  in
  let scale_spec =
    {
      (base_spec ~write_fraction:1.0 ~key_mode:consecutive ()) with
      Workload.Experiment.threads = clients;
      value_bytes = config.Config.value_bytes;
      warmup = sec_f 1.0;
      measure = sec_f 2.0;
    }
  in
  let engine, cluster = spin_cluster ~config () in
  let outcome =
    Workload.Experiment.run ~engine ~key_space:config.Config.key_space
      ~make_driver:(fun () -> Workload.Driver.spinnaker cluster ~consistent_reads:true ())
      scale_spec
  in
  let s = outcome.Workload.Experiment.all in
  Format.printf "  fig11 shape at scale: %d nodes, %d clients: %.0f writes/s, mean %.1f ms, p99 %.1f ms@."
    nodes clients s.Sim.Metrics.throughput_per_sec s.Sim.Metrics.mean_latency_ms
    s.Sim.Metrics.p99_ms;
  record_field "fig11_at_scale"
    (J.Obj
       [
         ("nodes", J.Int nodes);
         ("clients", J.Int clients);
         ("wal_max_batch", J.Int best_batch);
         ("pipeline_depth", J.Int best_depth);
         ("throughput_per_sec", J.Float s.Sim.Metrics.throughput_per_sec);
         ("mean_latency_ms", J.Float s.Sim.Metrics.mean_latency_ms);
         ("p99_ms", J.Float s.Sim.Metrics.p99_ms);
         ("errors", J.Int s.Sim.Metrics.errors);
       ]);
  if s.Sim.Metrics.throughput_per_sec <= 0.0 then
    failwith "paxos-tuning: the at-scale run completed no writes"

(* --- Figure 11: write latency vs cluster size ------------------------------ *)

let fig11 () =
  header "Figure 11: write latency with increasing cluster size (fixed per-node load)";
  let sizes = if !quick then [ 20; 40 ] else [ 20; 40; 80 ] in
  Format.printf "  %-28s %8s %12s %10s@." "" "nodes" "load(req/s)" "mean(ms)";
  List.iter
    (fun nodes ->
      let config = { Config.default with Config.nodes } in
      let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
      let threads = nodes * 4 in
      let spin_points, phases = spin_sweep ~config ~consistent_reads:true ~spec [ threads ] in
      List.iter
        (fun Workload.Experiment.{ outcome; _ } ->
          Format.printf "  %-28s %8d %12.0f %10.2f@." "Spinnaker writes" nodes
            outcome.Workload.Experiment.all.Sim.Metrics.throughput_per_sec
            outcome.Workload.Experiment.all.Sim.Metrics.mean_latency_ms)
        spin_points;
      record_series ~phases ~extra:[ ("nodes", J.Int nodes) ] "Spinnaker writes" spin_points;
      let cas_points =
        cas_sweep ~config ~read_level:Eventual.Cas_message.Quorum
          ~write_level:Eventual.Cas_message.Quorum ~spec [ threads ]
      in
      List.iter
        (fun Workload.Experiment.{ outcome; _ } ->
          Format.printf "  %-28s %8d %12.0f %10.2f@." "Cassandra quorum writes" nodes
            outcome.Workload.Experiment.all.Sim.Metrics.throughput_per_sec
            outcome.Workload.Experiment.all.Sim.Metrics.mean_latency_ms)
        cas_points;
      record_series ~extra:[ ("nodes", J.Int nodes) ] "Cassandra quorum writes" cas_points)
    sizes

(* --- Figure 12: mixed workload ---------------------------------------------- *)

let fig12 () =
  header "Figure 12: average latency on a mixed workload vs write percentage";
  let fractions = if !quick then [ 0.1; 0.5 ] else [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ] in
  let threads = 16 in
  let run name sweep =
    Format.printf "  %-40s %8s %12s %10s@." name "write%" "load(req/s)" "mean(ms)";
    List.iter
      (fun wf ->
        let spec = base_spec ~write_fraction:wf () in
        let points, phases = sweep spec in
        List.iter
          (fun Workload.Experiment.{ outcome; _ } ->
            Format.printf "  %-40s %8.0f %12.0f %10.2f@." "" (wf *. 100.0)
              outcome.Workload.Experiment.all.Sim.Metrics.throughput_per_sec
              outcome.Workload.Experiment.all.Sim.Metrics.mean_latency_ms)
          points;
        record_series ?phases ~extra:[ ("write_fraction", J.Float wf) ] name points)
      fractions
  in
  run "Spinnaker consistent reads + writes" (fun spec ->
      let points, phases = spin_sweep ~consistent_reads:true ~spec [ threads ] in
      (points, Some phases));
  run "Spinnaker timeline reads + writes" (fun spec ->
      let points, phases = spin_sweep ~consistent_reads:false ~spec [ threads ] in
      (points, Some phases));
  run "Cassandra quorum reads + quorum writes" (fun spec ->
      ( cas_sweep ~read_level:Eventual.Cas_message.Quorum
          ~write_level:Eventual.Cas_message.Quorum ~spec [ threads ],
        None ));
  run "Cassandra weak reads + quorum writes" (fun spec ->
      ( cas_sweep ~read_level:Eventual.Cas_message.One ~write_level:Eventual.Cas_message.Quorum
          ~spec [ threads ],
        None ))

(* --- Figure 13: SSD log ------------------------------------------------------ *)

let fig13 () =
  header "Figure 13: average write latency using an SSD for logging";
  let config = { Config.default with Config.disk = Sim.Disk_model.Ssd } in
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  let threads = write_threads () in
  let points, phases = spin_sweep ~config ~consistent_reads:true ~spec threads in
  emit_series ~phases "Spinnaker writes (SSD log)" points (fun o -> o.Workload.Experiment.all);
  emit_series "Cassandra quorum writes (SSD log)"
    (cas_sweep ~config ~read_level:Eventual.Cas_message.Quorum
       ~write_level:Eventual.Cas_message.Quorum ~spec threads)
    (fun o -> o.Workload.Experiment.all)

(* --- Figure 14: conditional put vs put ---------------------------------------- *)

let fig14 () =
  header "Figure 14: conditional put vs regular put (Spinnaker)";
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  let threads = write_threads () in
  let cond_points, cond_phases = spin_sweep ~consistent_reads:true ~conditional:true ~spec threads in
  emit_series ~phases:cond_phases "Spinnaker conditional put" cond_points (fun o ->
      o.Workload.Experiment.all);
  let put_points, put_phases = spin_sweep ~consistent_reads:true ~spec threads in
  emit_series ~phases:put_phases "Spinnaker regular put" put_points (fun o ->
      o.Workload.Experiment.all)

(* --- Figure 15: weak vs quorum writes (Cassandra) ------------------------------- *)

let fig15 () =
  header "Figure 15: weak vs quorum writes in Cassandra";
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  let threads = write_threads () in
  emit_series "Cassandra weak writes"
    (cas_sweep ~read_level:Eventual.Cas_message.One ~write_level:Eventual.Cas_message.One ~spec
       threads)
    (fun o -> o.Workload.Experiment.all);
  emit_series "Cassandra quorum writes"
    (cas_sweep ~read_level:Eventual.Cas_message.Quorum ~write_level:Eventual.Cas_message.Quorum
       ~spec threads)
    (fun o -> o.Workload.Experiment.all)

(* --- Figure 16: main-memory log -------------------------------------------------- *)

let fig16 () =
  header "Figure 16: write latency with a main-memory log (commit = 2/3 memory logs)";
  let config = { Config.default with Config.disk = Sim.Disk_model.Memory } in
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  let threads = write_threads () in
  let points, phases = spin_sweep ~config ~consistent_reads:true ~spec threads in
  emit_series ~phases "Spinnaker writes (main-memory log)" points (fun o ->
      o.Workload.Experiment.all)

(* --- Ablations --------------------------------------------------------------------- *)

let ablation_group_commit () =
  header "Ablation: group commit on/off (Spinnaker writes, magnetic log)";
  let spec = base_spec ~write_fraction:1.0 ~key_mode:consecutive () in
  List.iter
    (fun (label, batch) ->
      let config = { Config.default with Config.wal_max_batch = batch } in
      let points, phases = spin_sweep ~config ~consistent_reads:true ~spec [ 64 ] in
      emit_series ~phases ~extra:[ ("wal_max_batch", J.Int batch) ] label points (fun o ->
          o.Workload.Experiment.all))
    [ ("group commit (batch 24)", 24); ("no group commit (batch 1)", 1) ]

let ablation_piggyback () =
  header "Ablation: piggy-backed commit messages (§D.1) — recovery at 10 s commit period";
  record_field "piggyback_recovery"
    (J.List
       (List.map
          (fun (label, piggyback) ->
            let r = availability_run ~commit_period:(Sim.Sim_time.sec 10) ~piggyback in
            Format.printf "  %-44s recovery %.2f s@." label r;
            J.Obj
              [
                ("label", J.String label);
                ("piggyback", J.Bool piggyback);
                ("recovery_sec", J.Float r);
              ])
          [ ("commit messages every 10 s", false); ("piggy-backed on proposes", true) ]))

let ablation_staleness () =
  header "Ablation: timeline-read staleness vs commit period";
  let periods = if !quick then [ 200; 1000 ] else [ 200; 1000; 5000 ] in
  let staleness_points = ref [] in
  List.iter
    (fun period_ms ->
      let config =
        { Config.default with Config.nodes = 5; commit_period = Sim.Sim_time.ms period_ms }
      in
      let engine, cluster = spin_cluster ~config () in
      let client = Cluster.new_client cluster in
      let key = Partition.key_of_int (Cluster.partition cluster) 7 in
      (* A writer stamps the key with the current time; timeline readers
         measure the age of the value they observe. *)
      let rec writer () =
        let now_us = Sim.Sim_time.time_to_us (Sim.Engine.now engine) in
        Client.put client key "c" ~value:(string_of_int now_us) (fun _ ->
            ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 20) writer))
      in
      writer ();
      let ages = Sim.Metrics.Histogram.create ~name:"staleness" () in
      let rec reader n =
        if n > 0 then
          Client.get client ~consistent:false key "c" (fun r ->
              (match r with
              | Ok Client.{ value = Some v; _ } ->
                let age = Sim.Sim_time.time_to_us (Sim.Engine.now engine) - int_of_string v in
                Sim.Metrics.Histogram.record ages (float_of_int age)
              | _ -> ());
              ignore
                (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 10) (fun () ->
                     reader (n - 1))))
      in
      Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
      reader 400;
      Sim.Engine.run_for engine (Sim.Sim_time.sec 10);
      let mean_ms = Sim.Metrics.Histogram.mean ages /. 1e3 in
      let p99_ms = Sim.Metrics.Histogram.percentile ages 0.99 /. 1e3 in
      let reads = Sim.Metrics.Histogram.count ages in
      Format.printf "  commit period %5d ms: mean staleness %7.1f ms, p99 %7.1f ms (%d reads)@."
        period_ms mean_ms p99_ms reads;
      staleness_points :=
        J.Obj
          [
            ("commit_period_ms", J.Int period_ms);
            ("mean_staleness_ms", J.Float mean_ms);
            ("p99_staleness_ms", J.Float p99_ms);
            ("reads", J.Int reads);
          ]
        :: !staleness_points)
    periods;
  record_field "timeline_staleness" (J.List (List.rev !staleness_points))

let ablations () =
  ablation_group_commit ();
  ablation_staleness ();
  ablation_piggyback ()

(* --- Scale-out (§10) --------------------------------------------------------------- *)

(* Throughput timeline while the cluster grows under load: a 10-node cluster
   runs a closed-loop write workload, then nodes 11..13 join. Each joiner
   absorbs replicas migrated off distinct donors (snapshot ship + log
   catch-up + Paxos-replicated membership change), and one range splits.
   Fewer cohorts per node means less follower log-force traffic contending
   with each leader's own writes, so the windowed throughput steps up. *)
let scaleout () =
  header "Scale-out (§10): throughput while nodes 11..13 join and a range splits";
  let config =
    {
      Config.default with
      Config.nodes = 10;
      replication = 3;
      (* Snapshots ship while the donor cohort is saturated; give a
         migration room before the leader declares it wedged. *)
      migration_timeout = Sim.Sim_time.sec 30;
    }
  in
  let engine, cluster = spin_cluster ~config () in
  let partition = Cluster.partition cluster in
  let n_clients = if !quick then 240 else 400 in
  let completed = ref 0 in
  let running = ref true in
  let value = Workload.Generator.value ~size:512 in
  List.iter
    (fun thread ->
      let client = Cluster.new_client cluster in
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      let gen =
        Workload.Generator.create ~rng ~key_space:config.Config.key_space
          ~mode:(Workload.Generator.Consecutive { stride = 257 }) ~thread
      in
      let rec loop () =
        if !running then
          Client.put client (Workload.Generator.next_key gen) "c" ~value (fun r ->
              (match r with Ok () -> incr completed | Error _ -> ());
              loop ())
      in
      loop ())
    (List.init n_clients Fun.id);
  (* Windowed throughput: completions per half-second bucket. *)
  let now_sec () = Sim.Sim_time.time_to_sec_f (Sim.Engine.now engine) in
  let windows = ref [] in
  let last = ref 0 in
  let rec sample () =
    if !running then begin
      let delta = !completed - !last in
      last := !completed;
      windows := (now_sec (), float_of_int delta /. 0.5) :: !windows;
      ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 500) sample)
    end
  in
  ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 500) sample);
  let timeline = ref [] in
  let note label = timeline := (now_sec (), label) :: !timeline in
  (* Step the engine until [cond] holds (or the timeout passes). *)
  let await ?(timeout = 30.0) cond =
    let deadline = Sim.Sim_time.add (Sim.Engine.now engine) (sec_f timeout) in
    let rec loop () =
      cond ()
      || (Sim.Sim_time.(Sim.Engine.now engine < deadline)
         &&
         (Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
          loop ()))
    in
    loop ()
  in
  (* Phase 1: steady state on the original 10 nodes. *)
  let pre_span = if !quick then 4.0 else 8.0 in
  Sim.Engine.run_for engine (sec_f pre_span);
  (* Phase 2: three nodes join at once; each takes over replicas from
     distinct donor followers (never the leader, so writes keep flowing).
     The nine migrations run concurrently — one per cohort — to keep the
     transition window short. A busy leader rejects the request and a
     timed-out migration aborts cleanly, so each kicker polls until the
     membership change lands. *)
  let migrated = ref [] in
  let plans =
    List.concat_map
      (fun ranges ->
        let joiner = Cluster.add_node cluster in
        note (Printf.sprintf "node %d joined" joiner);
        List.map (fun range -> (range, joiner)) ranges)
      [ [ 0; 3; 6 ]; [ 1; 4; 7 ]; [ 2; 5; 8 ] ]
  in
  List.iter
    (fun (range, joiner) ->
      let rec kick () =
        if List.mem joiner (Partition.cohort partition ~range) then begin
          migrated := (range, joiner) :: !migrated;
          note (Printf.sprintf "range %d replica migrated to node %d" range joiner)
        end
        else begin
          let members = Partition.cohort partition ~range in
          let leader = Cluster.leader_of cluster ~range in
          (match List.filter (fun n -> Some n <> leader) members with
          | d :: _ -> ignore (Cluster.request_join cluster ~range ~joiner ~remove:d ())
          | [] -> ());
          ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 250) kick)
        end
      in
      kick ())
    plans;
  if not (await ~timeout:90.0 (fun () -> List.length !migrated = List.length plans)) then
    Format.printf "  WARNING: only %d/%d migrations completed@." (List.length !migrated)
      (List.length plans);
  (* Phase 3: split one range; both children serve before any data moves. *)
  let ranges_before = Partition.ranges partition in
  if
    await (fun () -> Cluster.request_split cluster ~range:9)
    && await (fun () -> Partition.ranges partition > ranges_before)
  then note (Printf.sprintf "range 9 split (now %d ranges)" (Partition.ranges partition))
  else Format.printf "  WARNING: split of range 9 did not complete@.";
  ignore (await (fun () -> Cluster.is_ready cluster));
  (* Phase 4: steady state on 13 nodes (after a settling window: the last
     catch-up rounds and the split drain park writes briefly). *)
  let post_start = now_sec () +. 2.0 in
  Sim.Engine.run_for engine (sec_f (if !quick then 6.0 else 10.0));
  running := false;
  let series = List.rev !windows in
  let mean sel =
    match List.filter sel series with
    | [] -> 0.0
    | pts -> List.fold_left (fun a (_, r) -> a +. r) 0.0 pts /. float_of_int (List.length pts)
  in
  (* Skip the first simulated second (cold caches, empty pipelines). *)
  let pre_mean = mean (fun (t, _) -> t > 1.0 && t <= pre_span) in
  let post_mean = mean (fun (t, _) -> t > post_start) in
  Format.printf "  %-22s %10s@." "window end (s)" "req/s";
  List.iter (fun (t, r) -> Format.printf "  %-22.1f %10.0f@." t r) series;
  List.iter (fun (t, l) -> Format.printf "  %8.2fs %s@." t l) (List.rev !timeline);
  Format.printf "  pre-join mean %8.0f req/s   post-join mean %8.0f req/s (%+.0f%%)@." pre_mean
    post_mean
    (100.0 *. (post_mean -. pre_mean) /. pre_mean);
  record_field "scaleout"
    (J.Obj
       [
         ("pre_mean_req_per_sec", J.Float pre_mean);
         ("post_mean_req_per_sec", J.Float post_mean);
         ("migrations", J.Int (List.length !migrated));
         ("ranges", J.Int (Partition.ranges partition));
         ( "throughput",
           J.List
             (List.map
                (fun (t, r) -> J.Obj [ ("t_sec", J.Float t); ("req_per_sec", J.Float r) ])
                series) );
         ( "timeline",
           J.List
             (List.map
                (fun (t, l) -> J.Obj [ ("t_sec", J.Float t); ("event", J.String l) ])
                (List.rev !timeline)) );
       ]);
  if post_mean <= pre_mean then
    failwith
      (Printf.sprintf "scaleout: no throughput gain (pre %.0f, post %.0f req/s)" pre_mean
         post_mean)

(* --- Audit: cross-backend robustness battery ----------------------------------------- *)

(* Sweeps operation mix x key skew x fault profile x cluster size across the
   three backends (Spinnaker consistent, the quorum-configured eventual
   store, the master-slave pair) and emits one comparable cell per
   combination: throughput/latency, fault exposure, per-cause network
   counters, and invariant violations. A clean tree produces zero violations
   — CI asserts exactly that — so any non-empty [violations] list marks the
   cell that found a safety bug together with the fault schedule that fired.
   Quick mode trims the sweep to uniform keys, two fault profiles, and one
   cluster size (the acceptance floor: 3 backends x 2 profiles x 2 mixes). *)
let audit () =
  header "Audit: operation mix x key skew x fault profile x backend";
  let mixes =
    [
      ("read-heavy", Workload.Generator.weights ~read:0.95 ~write:0.05 ());
      ("write-heavy", Workload.Generator.weights ~read:0.25 ~write:0.60 ~cond_incr:0.15 ());
    ]
  in
  let skews =
    ("uniform", Workload.Generator.Uniform_random)
    ::
    (if !quick then []
     else [ ("hotspot", Workload.Generator.Hotspot { fraction_hot = 0.9; hot_keys = 512 }) ])
  in
  let profiles =
    if !quick then [ Workload.Chaos.Steady; Workload.Chaos.Crashes ]
    else
      [
        Workload.Chaos.Steady;
        Workload.Chaos.Crashes;
        Workload.Chaos.Partitions;
        Workload.Chaos.Lossy;
      ]
  in
  let sizes = if !quick then [ 5 ] else [ 5; 10 ] in
  let total_violations = ref 0 in
  let cell_index = ref 0 in
  Format.printf "  %-16s %-11s %-8s %-10s %5s %12s %9s %9s %6s@." "backend" "mix" "skew"
    "profile" "nodes" "load(req/s)" "mean(ms)" "p99(ms)" "viol";
  let emit_cell ~backend ~mix ~skew ~profile ~nodes (a : Workload.Chaos.audit) =
    let s = a.Workload.Chaos.a_outcome.Workload.Experiment.all in
    Format.printf "  %-16s %-11s %-8s %-10s %5d %12.0f %9.2f %9.2f %6d@." backend mix skew
      (Workload.Chaos.profile_name profile) nodes s.Sim.Metrics.throughput_per_sec
      s.Sim.Metrics.mean_latency_ms s.Sim.Metrics.p99_ms
      (List.length a.Workload.Chaos.a_violations);
    List.iter
      (fun (invariant, detail) ->
        Format.printf "    VIOLATION [%s] %s@." invariant detail)
      a.Workload.Chaos.a_violations;
    total_violations := !total_violations + List.length a.Workload.Chaos.a_violations;
    series_acc :=
      J.Obj
        [
          ("backend", J.String backend);
          ("mix", J.String mix);
          ("skew", J.String skew);
          ("profile", J.String (Workload.Chaos.profile_name profile));
          ("nodes", J.Int nodes);
          ("outcome", Workload.Experiment.json_of_outcome a.Workload.Chaos.a_outcome);
          ( "exposure",
            J.Obj
              (List.map (fun (k, v) -> (k, J.Int v)) a.Workload.Chaos.a_exposure) );
          ("net", Option.value ~default:J.Null a.Workload.Chaos.a_net);
          ( "violations",
            J.List
              (List.map
                 (fun (invariant, detail) ->
                   J.Obj
                     [
                       ("invariant", J.String invariant);
                       ("detail", J.String detail);
                     ])
                 a.Workload.Chaos.a_violations) );
        ]
      :: !series_acc
  in
  List.iter
    (fun nodes ->
      let config = { Workload.Chaos.default_config with Config.nodes } in
      let key_space = config.Config.key_space in
      List.iter
        (fun (mix, weights) ->
          List.iter
            (fun (skew, key_mode) ->
              let spec =
                {
                  Workload.Experiment.default_spec with
                  Workload.Experiment.threads = 16;
                  weights = Some weights;
                  key_mode;
                  value_bytes = 1024;
                  warmup = warmup_span ();
                  measure = measure_span ();
                }
              in
              List.iter
                (fun profile ->
                  incr cell_index;
                  let seed = 1000 + !cell_index in
                  emit_cell ~backend:"spinnaker" ~mix ~skew ~profile ~nodes
                    (Workload.Chaos.audit_spinnaker ~track:track_engine ~seed ~config ~profile ~spec
                       ~key_space ());
                  emit_cell ~backend:"eventual-quorum" ~mix ~skew ~profile ~nodes
                    (Workload.Chaos.audit_eventual ~track:track_engine ~seed ~config ~profile ~spec
                       ~key_space ());
                  (* The pair's cluster-size and skew axes are degenerate (2
                     nodes, one log); run it once per (mix, profile). *)
                  if nodes = List.hd sizes && skew = fst (List.hd skews) then
                    emit_cell ~backend:"masterslave" ~mix ~skew ~profile ~nodes:2
                      (Workload.Chaos.audit_masterslave ~track:track_engine ~seed ~profile ~spec
                         ~key_space ()))
                profiles)
            skews)
        mixes)
    sizes;
  record_field "backends"
    (J.List (List.map (fun b -> J.String b) [ "spinnaker"; "eventual-quorum"; "masterslave" ]));
  record_field "invariant_violations" (J.Int !total_violations);
  Format.printf "  %d cells, %d invariant violations@." (List.length !series_acc)
    !total_violations

(* --- Transactions: bank transfers over MVCC snapshots + 2PC over Paxos ----- *)

(* Two cells. Steady: closed-loop cross-range transfers with concurrent
   snapshot audits on a healthy cluster — throughput/latency of the 2PC
   path plus the conservation and serializability verdicts. Chaos: the same
   bank under the transaction gauntlet (crash hazard ×8 while transfers are
   mid-commit), a small seed battery of the 20-seed nemesis suite. The
   experiment fails if no transfer commits or any invariant is violated —
   the CI smoke assertions read the same fields out of BENCH_txn.json. *)
let txn () =
  header "Transactions: cross-range bank transfers (MVCC snapshots + 2PC over Paxos)";
  let config =
    { Config.default with Config.nodes = 5; disk = Sim.Disk_model.Ssd }
  in
  let engine, cluster = spin_cluster ~config () in
  let duration = if !quick then sec_f 6.0 else sec_f 20.0 in
  let bank =
    Workload.Experiment.run_bank ~engine ~cluster ~accounts:16
      ~threads:(if !quick then 4 else 8) ~duration ()
  in
  let s = bank.Workload.Experiment.transfer_stats in
  Format.printf
    "  steady: %d committed, %d aborted, %d unresolved, %d audits; %.0f txn/s, mean %.2f ms, \
     p99 %.2f ms@."
    bank.Workload.Experiment.transfers_committed bank.Workload.Experiment.transfers_aborted
    bank.Workload.Experiment.transfers_unresolved bank.Workload.Experiment.bank_audits
    s.Sim.Metrics.throughput_per_sec s.Sim.Metrics.mean_latency_ms s.Sim.Metrics.p99_ms;
  List.iter
    (fun (invariant, detail) -> Format.printf "    VIOLATION [%s] %s@." invariant detail)
    bank.Workload.Experiment.bank_violations;
  record_field "steady" (Workload.Experiment.json_of_bank bank);
  (* TXN_SEEDS=3 (or "3,7,21") replays specific gauntlet seeds — the
     reproduction knob for a failing battery entry. *)
  let seeds =
    match Sys.getenv_opt "TXN_SEEDS" with
    | Some s -> String.split_on_char ',' s |> List.filter_map int_of_string_opt
    | None -> if !quick then [ 7001; 7002 ] else [ 7001; 7002; 7003; 7004; 7005 ]
  in
  let chaos_violations = ref 0 in
  let verdicts =
    List.map
      (fun seed ->
        let v = Workload.Chaos.run_txn_bank ~seed () in
        Format.printf
          "  chaos seed %d: %d committed, %d unresolved, %d txns checked, %d audits, %d \
           violations@."
          seed v.Workload.Chaos.acked v.Workload.Chaos.indeterminate
          v.Workload.Chaos.n_writes v.Workload.Chaos.n_reads
          (List.length v.Workload.Chaos.violations);
        List.iter
          (fun (invariant, detail) -> Format.printf "    VIOLATION [%s] %s@." invariant detail)
          v.Workload.Chaos.violations;
        chaos_violations := !chaos_violations + List.length v.Workload.Chaos.violations;
        Workload.Chaos.json_of_verdict v)
      seeds
  in
  record_field "chaos" (J.List verdicts);
  record_field "invariant_violations"
    (J.Int (List.length bank.Workload.Experiment.bank_violations + !chaos_violations));
  if bank.Workload.Experiment.transfers_committed = 0 then
    failwith "txn: no transfer committed in the steady cell";
  if bank.Workload.Experiment.bank_violations <> [] then
    failwith "txn: steady cell violated conservation or serializability";
  if !chaos_violations > 0 then failwith "txn: chaos cell violated an invariant"

(* --- Bechamel microbenchmarks ------------------------------------------------------- *)

let micro () =
  header "Microbenchmarks (Bechamel): substrate operations";
  let open Bechamel in
  let memtable_insert =
    Test.make ~name:"memtable-insert-1k"
      (Staged.stage (fun () ->
           let m = Storage.Memtable.create () in
           for i = 0 to 999 do
             Storage.Memtable.put m
               (Printf.sprintf "key-%d" i, "c")
               {
                 Storage.Row.value = Some "value";
                 version = 1;
                 lsn = Storage.Lsn.make ~epoch:1 ~seq:i;
                 timestamp = 0;
                 txn_ts = None;
               }
           done))
  in
  let entries =
    List.init 1000 (fun i ->
        ( (Printf.sprintf "key-%06d" i, "c"),
          {
            Storage.Row.value = Some "value";
            version = 1;
            lsn = Storage.Lsn.make ~epoch:1 ~seq:(i + 1);
            timestamp = 0;
            txn_ts = None;
          } ))
  in
  let table = Storage.Sstable.build entries in
  let sstable_lookup =
    Test.make ~name:"sstable-get-1k"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Storage.Sstable.get table (Printf.sprintf "key-%06d" i, "c"))
           done))
  in
  let bloom = Storage.Bloom.create ~expected:10_000 () in
  let () =
    for i = 0 to 9_999 do
      Storage.Bloom.add bloom (string_of_int i)
    done
  in
  let bloom_query =
    Test.make ~name:"bloom-mem-1k"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Storage.Bloom.mem bloom (string_of_int i))
           done))
  in
  let merkle_build =
    Test.make ~name:"merkle-build-1k"
      (Staged.stage (fun () -> ignore (Eventual.Merkle.build entries)))
  in
  let heap_churn =
    Test.make ~name:"event-heap-push-pop-1k"
      (Staged.stage (fun () ->
           let h = Sim.Event_heap.create () in
           for i = 0 to 999 do
             ignore (Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us (i * 7919 mod 10_000)) i)
           done;
           while Sim.Event_heap.pop h <> None do
             ()
           done))
  in
  let sim_second =
    Test.make ~name:"paxos-cohort-sim-second"
      (Staged.stage (fun () ->
           (* One simulated second of a small Spinnaker cluster under write
              load: end-to-end cost of the whole stack. *)
           let config = { Config.default with Config.nodes = 3; disk = Sim.Disk_model.Ssd } in
           let engine, cluster = spin_cluster ~config () in
           let client = Cluster.new_client cluster in
           let rec writer i =
             Client.put client
               (Partition.key_of_int (Cluster.partition cluster) (i mod 1000))
               "c" ~value:"x"
               (fun _ -> writer (i + 1))
           in
           writer 0;
           Sim.Engine.run_for engine (Sim.Sim_time.sec 1)))
  in
  let tests =
    Test.make_grouped ~name:"spinnaker"
      [ memtable_insert; sstable_lookup; bloom_query; merkle_build; heap_churn; sim_second ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let figures = ref [] in
  List.iter
    (fun instance ->
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> nan
          in
          Format.printf "  %-44s %14.0f ns/run@." name estimate;
          figures := (name, J.Float estimate) :: !figures)
        results)
    instances;
  record_field "micro_ns_per_run"
    (J.Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) !figures))

(* --- driver ----------------------------------------------------------------------------- *)

let all_experiments =
  [
    ("fig1", fig1);
    ("fig8", fig8);
    ("fig9", fig9);
    ("read", read_exp);
    ("paxos-tuning", paxos_tuning);
    ("table1", table1);
    ("failover", failover);
    ("tail", tail);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("scaleout", scaleout);
    ("audit", audit);
    ("txn", txn);
    ("ablations", ablations);
    ("micro", micro);
  ]

(* Resolve an output-path argument ([--json] or [--trace-out]) for one
   experiment: a bare flag writes <prefix><name>.json in the current
   directory; a directory argument writes the files there; a single
   experiment with an argument ending in [.json] writes exactly that file. *)
let out_path ~prefix ~arg ~single name =
  match arg with
  | None -> None
  | Some "" -> Some (Printf.sprintf "%s%s.json" prefix name)
  | Some path when single && Filename.check_suffix path ".json" -> Some path
  | Some dir ->
    (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
    Some (Filename.concat dir (Printf.sprintf "%s%s.json" prefix name))

let json_path ~json ~single name = out_path ~prefix:"BENCH_" ~arg:json ~single name

let run_experiments names quick_flag json trace_out =
  quick := quick_flag;
  want_trace := trace_out <> None;
  let names = if names = [] || names = [ "all" ] then List.map fst all_experiments else names in
  let single = match names with [ _ ] -> true | _ -> false in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f ->
        series_acc := [];
        extras_acc := [];
        tracked_engines := [];
        traced := None;
        measure_mark := None;
        let wall0 = Unix.gettimeofday () in
        f ();
        let total_wall = Unix.gettimeofday () -. wall0 in
        let total_sim = sim_seconds () in
        (* The measured phase excludes any setup the experiment marked off
           with [measurement_begins] (e.g. the read experiment's preload);
           the headline sim-s/wall-s is for the measured phase only. *)
        let setup_wall, setup_sim =
          match !measure_mark with Some (w, s) -> (w -. wall0, s) | None -> (0.0, 0.0)
        in
        let wall = total_wall -. setup_wall in
        let sim = total_sim -. setup_sim in
        let rate = if wall > 0.0 then sim /. wall else 0.0 in
        Format.printf "  [%s] %.1f sim-s in %.1f wall-s (%.1f sim-s per wall-s%s)@." name sim
          wall rate
          (if setup_wall > 0.0 then
             Printf.sprintf "; setup %.1f sim-s in %.1f wall-s" setup_sim setup_wall
           else "");
        (match json_path ~json ~single name with
        | None -> ()
        | Some path ->
          let doc =
            J.Obj
              ([
                 ("experiment", J.String name);
                 ("quick", J.Bool !quick);
                 ("wall_seconds", J.Float wall);
                 ("sim_seconds", J.Float sim);
                 ("sim_seconds_per_wall_second", J.Float rate);
                 ("setup_wall_seconds", J.Float setup_wall);
                 ("setup_sim_seconds", J.Float setup_sim);
                 ("total_wall_seconds", J.Float total_wall);
                 ("total_sim_seconds", J.Float total_sim);
                 ("series", J.List (List.rev !series_acc));
               ]
              @ List.rev !extras_acc)
          in
          J.to_file path doc;
          Format.printf "  wrote %s@." path);
        (match (out_path ~prefix:"TRACE_" ~arg:trace_out ~single name, !traced) with
        | Some path, Some (trace, registry) ->
          Sim.Trace_export.to_file ~registry trace path;
          Format.printf "  wrote %s (%d events, %d dropped)@." path (Sim.Trace.length trace)
            (Sim.Trace.dropped trace)
        | Some _, None ->
          Format.printf "  (no Spinnaker cluster built by %s: no trace written)@." name
        | None, _ -> ())
      | None ->
        Format.printf "unknown experiment %s (known: %s)@." name
          (String.concat ", " (List.map fst all_experiments)))
    names

open Cmdliner

let names_t =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiments to run.")

let quick_t = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps for CI.")

let json_t =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write a machine-readable BENCH_<experiment>.json per experiment. With no \
           value, files go to the current directory; with a directory $(docv) they go \
           there; with a single experiment and a $(docv) ending in .json, exactly that \
           file is written.")

let trace_out_t =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "trace-out" ] ~docv:"PATH"
        ~doc:
          "Write each experiment's structured trace as Chrome trace-event JSON \
           (TRACE_<experiment>.json, loadable in Perfetto or chrome://tracing), with \
           metrics-registry gauges as counter tracks. Path resolution follows --json.")

let cmd =
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run_experiments $ names_t $ quick_t $ json_t $ trace_out_t)

let () = exit (Cmd.eval cmd)
