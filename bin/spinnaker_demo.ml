(* CLI driving a simulated Spinnaker cluster: boots it, runs a scripted
   put/get/failover session, and prints what happened. *)

open Spinnaker

let run nodes seed verbose =
  let engine = Sim.Engine.create ~seed () in
  let config = { Config.default with Config.nodes; seed } in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then begin
    print_endline "cluster failed to become ready";
    if verbose then Format.printf "%a@." Sim.Trace.pp (Cluster.trace cluster);
    exit 1
  end;
  Format.printf "cluster ready at %a; leaders:@." Sim.Sim_time.pp (Sim.Engine.now engine);
  for r = 0 to Partition.ranges (Cluster.partition cluster) - 1 do
    match Cluster.leader_of cluster ~range:r with
    | Some l -> Format.printf "  range %d -> node %d@." r l
    | None -> Format.printf "  range %d -> (none)@." r
  done;
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 123 in
  Client.put client key "status" ~value:"hello-spinnaker" (fun r ->
      Format.printf "put -> %s@."
        (match r with Ok () -> "ok" | Error e -> Format.asprintf "%a" Client.pp_error e));
  Sim.Engine.run_for engine (Sim.Sim_time.ms 500);
  Client.get client key "status" (fun r ->
      match r with
      | Ok { value; version } ->
        Format.printf "get -> %s (version %d)@."
          (Option.value ~default:"<none>" value)
          version
      | Error e -> Format.printf "get -> error: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 500);
  (* Failover: kill the leader of the key's range, keep reading/writing. *)
  let range = Partition.route (Cluster.partition cluster) key in
  (match Cluster.leader_of cluster ~range with
  | Some l ->
    Format.printf "killing leader of range %d (node %d)...@." range l;
    Cluster.crash_node cluster l
  | None -> ());
  Client.put client key "status" ~value:"after-failover" (fun r ->
      Format.printf "put during failover -> %s at %a@."
        (match r with Ok () -> "ok" | Error e -> Format.asprintf "%a" Client.pp_error e)
        Sim.Sim_time.pp (Sim.Engine.now engine));
  Sim.Engine.run_for engine (Sim.Sim_time.sec 10);
  Client.get client key "status" (fun r ->
      match r with
      | Ok { value; version } ->
        Format.printf "get after failover -> %s (version %d)@."
          (Option.value ~default:"<none>" value)
          version
      | Error e -> Format.printf "get after failover -> error: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  Format.printf "@.--- cluster status ---@.%a" Cluster.pp_status cluster;
  if verbose then Format.printf "--- trace ---@.%a" Sim.Trace.pp (Cluster.trace cluster);
  Format.printf "done at %a@." Sim.Sim_time.pp (Sim.Engine.now engine)

open Cmdliner

let nodes_t =
  Arg.(value & opt int 10 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
let verbose_t = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump the event trace.")

let cmd =
  Cmd.v
    (Cmd.info "spinnaker_demo" ~doc:"Drive a simulated Spinnaker cluster")
    Term.(const run $ nodes_t $ seed_t $ verbose_t)

let () = exit (Cmd.eval cmd)
