(* Differential test for the tiered read path.

   A store with tight tiering knobs (small fanin, low full-merge safety
   valve, row cache on) and a reference store that never compacts and never
   caches are driven through the same randomized schedule of puts, deletes,
   flushes, and major compactions. Observable equivalence:

   - [read] (client-visible: tombstones hidden) must agree exactly;
   - [scan] over random windows/limits must agree exactly;
   - [get] may differ only where the tiered store has garbage-collected a
     tombstone the reference still holds (reference = Some tombstone,
     tiered = None) — that is precisely the state change a full-range
     compaction is allowed to make. *)

module Lsn = Storage.Lsn
module Row = Storage.Row
module Store = Storage.Store
module Log_record = Storage.Log_record
module Wal = Storage.Wal

type op =
  | Put of int * int * int  (* key, col, value *)
  | Delete of int * int
  | Flush
  | Major_compact

let keys = 8
let cols = 2

let key_of k = Printf.sprintf "k%02d" k
let col_of c = Printf.sprintf "c%d" c

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map3 (fun k c v -> Put (k, c, v)) (int_bound (keys - 1)) (int_bound (cols - 1)) small_nat);
        (2, map2 (fun k c -> Delete (k, c)) (int_bound (keys - 1)) (int_bound (cols - 1)));
        (2, return Flush);
        (1, return Major_compact);
      ])

let pp_op = function
  | Put (k, c, v) -> Printf.sprintf "Put(%d,%d,%d)" k c v
  | Delete (k, c) -> Printf.sprintf "Del(%d,%d)" k c
  | Flush -> "Flush"
  | Major_compact -> "Major"

let arbitrary_schedule =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 80) op_gen)

let make_store ~tiered () =
  let engine = Sim.Engine.create () in
  let resource = Sim.Resource.create engine ~name:"d" () in
  let model = Sim.Disk_model.create Sim.Disk_model.Ssd in
  let wal = Wal.create engine ~disk:resource ~model ~rng:(Sim.Rng.create 1) ~max_batch:16 () in
  let store =
    if tiered then
      (* Aggressive knobs: tier merges every 2 similar tables, full merges
         (tombstone GC) at 6, cache small enough to see evictions. *)
      Store.create ~cohort:0 ~wal ~compaction_fanin:2 ~max_sstables:6 ~cache_capacity:4 ()
    else
      (* Reference: no compaction ever, no cache — every flushed table is
         retained, reads do the seed's full newest-first resolution. *)
      Store.create ~cohort:0 ~wal ~compaction_fanin:max_int ~max_sstables:max_int
        ~cache_capacity:0 ()
  in
  (engine, store)

let apply_schedule (engine, store) ops =
  List.iteri
    (fun i op ->
      let l = Lsn.make ~epoch:1 ~seq:(i + 1) in
      (match op with
      | Put (k, c, v) ->
        Store.apply store ~lsn:l ~timestamp:i
          (Log_record.Put { key = key_of k; col = col_of c; value = string_of_int v; version = i + 1 })
      | Delete (k, c) ->
        Store.apply store ~lsn:l ~timestamp:i
          (Log_record.Delete { key = key_of k; col = col_of c; version = i + 1 })
      | Flush -> Store.flush store
      | Major_compact -> Store.major_compact store);
      (* Drain WAL forces scheduled by flush checkpoints. *)
      Sim.Engine.run engine)
    ops

let same_cell (a : Row.cell option) (b : Row.cell option) =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
    x.Row.value = y.Row.value && x.version = y.version && Lsn.equal x.lsn y.lsn
  | _ -> false

let scan_eq a b =
  let flat rows =
    List.concat_map
      (fun (k, cells) -> List.map (fun (c, (cell : Row.cell)) -> (k, c, cell.Row.value)) cells)
      rows
  in
  flat a = flat b

let prop_tiered_equals_reference =
  QCheck.Test.make ~name:"tiered store == never-compacting reference (read/get/scan)" ~count:300
    arbitrary_schedule
    (fun ops ->
      let tiered = make_store ~tiered:true () in
      let reference = make_store ~tiered:false () in
      apply_schedule tiered ops;
      apply_schedule reference ops;
      let _, ts = tiered and _, rs = reference in
      let coords_ok =
        List.for_all
          (fun k ->
            List.for_all
              (fun c ->
                let coord = (key_of k, col_of c) in
                (* Client-visible read: exact agreement (checked twice so the
                   second tiered lookup exercises the cache-hit path). *)
                same_cell (Store.read ts coord) (Store.read rs coord)
                && same_cell (Store.read ts coord) (Store.read rs coord)
                &&
                (* Internal get: agreement modulo GC'd tombstones. *)
                match (Store.get ts coord, Store.get rs coord) with
                | Some t, Some r -> same_cell (Some t) (Some r)
                | None, None -> true
                | None, Some r -> r.Row.value = None  (* tiered GC'd a tombstone *)
                | Some _, None -> false)
              (List.init cols Fun.id))
          (List.init keys Fun.id)
      in
      (* Random-ish scan windows derived from the schedule length. *)
      let n = List.length ops in
      let windows =
        [ ("", "zz", 100); (key_of (n mod keys), key_of keys, 3); (key_of 2, key_of 6, 2) ]
      in
      let scans_ok =
        List.for_all
          (fun (low, high, limit) ->
            scan_eq (Store.scan ts ~low ~high ~limit) (Store.scan rs ~low ~high ~limit))
          windows
      in
      coords_ok && scans_ok)

let prop_tiered_survives_crash_recover =
  QCheck.Test.make ~name:"tiered store: crash+recover_all preserves reads vs reference" ~count:100
    arbitrary_schedule
    (fun ops ->
      let ((engine, ts) as tiered) = make_store ~tiered:true () in
      let reference = make_store ~tiered:false () in
      (* Log every write durably the way a cohort would, so recovery has a
         log to replay from. *)
      List.iteri
        (fun i op ->
          let l = Lsn.make ~epoch:1 ~seq:(i + 1) in
          match op with
          | Put (k, c, v) ->
            Wal.append (Store.wal ts)
              (Log_record.write ~cohort:0 ~lsn:l ~timestamp:i
                 (Log_record.Put { key = key_of k; col = col_of c; value = string_of_int v; version = i + 1 }))
          | Delete (k, c) ->
            Wal.append (Store.wal ts)
              (Log_record.write ~cohort:0 ~lsn:l ~timestamp:i
                 (Log_record.Delete { key = key_of k; col = col_of c; version = i + 1 }))
          | Flush | Major_compact -> ())
        ops;
      Wal.force (Store.wal ts) (fun () -> ());
      Sim.Engine.run engine;
      apply_schedule tiered ops;
      apply_schedule reference ops;
      let _, rs = reference in
      Store.crash ts;
      ignore (Store.recover_all ts);
      List.for_all
        (fun k ->
          List.for_all
            (fun c ->
              let coord = (key_of k, col_of c) in
              same_cell (Store.read ts coord) (Store.read rs coord))
            (List.init cols Fun.id))
        (List.init keys Fun.id))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tiered_equals_reference;
    QCheck_alcotest.to_alcotest prop_tiered_survives_crash_recover;
  ]
