(* Tests for the Zookeeper-like coordination service: znode tree semantics,
   sequential/ephemeral znodes, sessions, watches, and the client handle. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- ztree ---------------------------------------------------------------- *)

let tree () = Coord.Ztree.create ()

let create_ok t path =
  match
    Coord.Ztree.create_node t ~path ~data:"" ~mode:Coord.Ztree.Persistent ~sequential:false
  with
  | Ok p -> p
  | Error e -> Alcotest.failf "create %s: %a" path Coord.Ztree.pp_error e

let test_ztree_create_get_set () =
  let t = tree () in
  ignore (create_ok t "/a");
  ignore (create_ok t "/a/b");
  check_bool "exists" true (Coord.Ztree.exists t ~path:"/a/b");
  check_bool "set" true (Coord.Ztree.set_data t ~path:"/a/b" ~data:"x" = Ok ());
  Alcotest.(check string) "get" "x"
    (match Coord.Ztree.get_data t ~path:"/a/b" with Ok d -> d | Error _ -> "?")

let test_ztree_missing_parent () =
  let t = tree () in
  check_bool "no parent" true
    (Coord.Ztree.create_node t ~path:"/x/y" ~data:"" ~mode:Coord.Ztree.Persistent
       ~sequential:false
    = Error Coord.Ztree.No_node)

let test_ztree_duplicate () =
  let t = tree () in
  ignore (create_ok t "/a");
  check_bool "dup" true
    (Coord.Ztree.create_node t ~path:"/a" ~data:"" ~mode:Coord.Ztree.Persistent
       ~sequential:false
    = Error Coord.Ztree.Node_exists)

let test_ztree_sequential_names () =
  let t = tree () in
  ignore (create_ok t "/dir");
  let mk () =
    match
      Coord.Ztree.create_node t ~path:"/dir/c-" ~data:"" ~mode:Coord.Ztree.Persistent
        ~sequential:true
    with
    | Ok p -> p
    | Error _ -> "?"
  in
  let a = mk () and b = mk () and c = mk () in
  check_bool "distinct" true (a <> b && b <> c);
  check_bool "lexicographic = creation order" true (a < b && b < c)

let test_ztree_delete_nonempty () =
  let t = tree () in
  ignore (create_ok t "/a");
  ignore (create_ok t "/a/b");
  check_bool "refuses non-empty" true
    (Coord.Ztree.delete_node t ~path:"/a" = Error Coord.Ztree.Not_empty);
  Coord.Ztree.delete_recursive t ~path:"/a";
  check_bool "gone" false (Coord.Ztree.exists t ~path:"/a")

let test_ztree_children_sorted () =
  let t = tree () in
  ignore (create_ok t "/d");
  List.iter (fun n -> ignore (create_ok t ("/d/" ^ n))) [ "b"; "c"; "a" ];
  match Coord.Ztree.children t ~path:"/d" with
  | Ok kids -> Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (List.map fst kids)
  | Error _ -> Alcotest.fail "children"

let test_ztree_ephemerals_of_session () =
  let t = tree () in
  ignore (create_ok t "/d");
  ignore
    (Coord.Ztree.create_node t ~path:"/d/e1" ~data:"" ~mode:(Coord.Ztree.Ephemeral 7)
       ~sequential:false);
  ignore
    (Coord.Ztree.create_node t ~path:"/d/e2" ~data:"" ~mode:(Coord.Ztree.Ephemeral 8)
       ~sequential:false);
  check_int "one ephemeral of session 7" 1
    (List.length (Coord.Ztree.ephemerals_of_session t ~session:7))

(* --- server: sessions, ephemerals, watches -------------------------------- *)

let server () =
  let engine = Sim.Engine.create () in
  let server = Coord.Zk_server.create engine ~session_timeout:(Sim.Sim_time.sec 2) () in
  (engine, server)

let test_session_expiry_deletes_ephemerals () =
  let engine, server = server () in
  let session = Coord.Zk_server.open_session server in
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/e" ~data:"" ~ephemeral:true
       ~sequential:false);
  check_bool "exists while live" true (Coord.Zk_server.exists server ~path:"/e");
  (* Stop heartbeating and let the sweep expire the session. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  check_bool "expired" false (Coord.Zk_server.session_live server ~session);
  check_bool "ephemeral deleted" false (Coord.Zk_server.exists server ~path:"/e")

let test_heartbeats_keep_session () =
  let engine, server = server () in
  let session = Coord.Zk_server.open_session server in
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/e" ~data:"" ~ephemeral:true
       ~sequential:false);
  (* Heartbeat every 500 ms for 5 s. *)
  for i = 1 to 10 do
    ignore
      (Sim.Engine.schedule engine
         ~after:(Sim.Sim_time.ms (i * 500))
         (fun () -> Coord.Zk_server.heartbeat server ~session))
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  check_bool "still live" true (Coord.Zk_server.session_live server ~session);
  check_bool "ephemeral survives" true (Coord.Zk_server.exists server ~path:"/e")

let test_watch_fires_on_delete () =
  let engine, server = server () in
  let session = Coord.Zk_server.open_session server in
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/w" ~data:"" ~ephemeral:false
       ~sequential:false);
  let fired = ref 0 in
  Coord.Zk_server.watch_node server ~path:"/w" (fun () -> incr fired);
  ignore (Coord.Zk_server.delete_node server ~session ~path:"/w");
  check_int "fired once" 1 !fired;
  (* One-shot: re-creating must not fire the consumed watch. *)
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/w" ~data:"" ~ephemeral:false
       ~sequential:false);
  check_int "one-shot" 1 !fired;
  ignore engine

let test_child_watch () =
  let _engine, server = server () in
  let session = Coord.Zk_server.open_session server in
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/d" ~data:"" ~ephemeral:false
       ~sequential:false);
  let fired = ref 0 in
  Coord.Zk_server.watch_children server ~path:"/d" (fun () -> incr fired);
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/d/x" ~data:"" ~ephemeral:false
       ~sequential:false);
  check_int "child creation fires parent watch" 1 !fired

let test_watch_fires_on_session_expiry () =
  let engine, server = server () in
  let session = Coord.Zk_server.open_session server in
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/leader" ~data:"n1" ~ephemeral:true
       ~sequential:false);
  let fired = ref false in
  Coord.Zk_server.watch_node server ~path:"/leader" (fun () -> fired := true);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  check_bool "expiry fired the watch" true !fired

let test_incr_counter () =
  let _engine, server = server () in
  let session = Coord.Zk_server.open_session server in
  check_int "first" 1 (Coord.Zk_server.incr_counter server ~session ~path:"/epoch");
  check_int "second" 2 (Coord.Zk_server.incr_counter server ~session ~path:"/epoch");
  check_int "third" 3 (Coord.Zk_server.incr_counter server ~session ~path:"/epoch")

(* --- client ----------------------------------------------------------------- *)

let test_client_roundtrip_and_latency () =
  let engine, server = server () in
  let client = Coord.Zk_client.connect server ~owner:"t" () in
  let created_at = ref Sim.Sim_time.zero in
  Coord.Zk_client.create_node client ~path:"/c" (fun r ->
      check_bool "ok" true (Result.is_ok r);
      created_at := Sim.Engine.now engine);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
  check_bool "paid a round trip" true Sim.Sim_time.(!created_at > Sim.Sim_time.zero)

let test_client_crash_suppresses_callbacks () =
  let engine, server = server () in
  let client = Coord.Zk_client.connect server ~owner:"t" () in
  let hits = ref 0 in
  Coord.Zk_client.create_node client ~path:"/c" (fun _ -> incr hits);
  Coord.Zk_client.crash client;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
  check_int "no callback after crash" 0 !hits

let test_client_crash_expires_session () =
  let engine, server = server () in
  let client = Coord.Zk_client.connect server ~owner:"t" () in
  Coord.Zk_client.create_node client ~path:"/e" ~ephemeral:true (fun _ -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
  check_bool "created" true (Coord.Zk_server.exists server ~path:"/e");
  Coord.Zk_client.crash client;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  check_bool "ephemeral gone after expiry" false (Coord.Zk_server.exists server ~path:"/e")

let test_client_watch_delivery () =
  let engine, server = server () in
  let watcher = Coord.Zk_client.connect server ~owner:"w" () in
  let actor = Coord.Zk_client.connect server ~owner:"a" () in
  let fired = ref false in
  Coord.Zk_client.create_node actor ~path:"/n" (fun _ -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
  Coord.Zk_client.watch_node watcher ~path:"/n" (fun () -> fired := true);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
  Coord.Zk_client.delete_node actor ~path:"/n" (fun _ -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
  check_bool "watch delivered to client" true !fired

(* Regression for a real liveness bug: a client's requests must execute at
   the service in issue order (ZooKeeper's FIFO guarantee). The election's
   arm-watch-then-read pattern deadlocks without it. *)
let test_client_fifo_order () =
  let engine, server = server () in
  let client = Coord.Zk_client.connect server ~owner:"fifo" () in
  (* Issue many writes to one znode back-to-back; with FIFO the final data is
     the last issued value, deterministically. *)
  Coord.Zk_client.create_node client ~path:"/f" ~data:"0" (fun _ -> ());
  for i = 1 to 50 do
    Coord.Zk_client.set_data client ~path:"/f" ~data:(string_of_int i) (fun _ -> ())
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  Alcotest.(check string) "last write wins in issue order" "50"
    (match Coord.Zk_server.get_data server ~path:"/f" with Ok d -> d | Error _ -> "?");
  (* And the watch-then-read pattern cannot miss a concurrent create: arm a
     watch and read children back-to-back; a create that the read misses must
     fire the watch. *)
  let other = Coord.Zk_client.connect server ~owner:"other" () in
  Coord.Zk_client.create_node client ~path:"/dir" (fun _ -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
  let seen = ref 0 and fired = ref false in
  Coord.Zk_client.watch_children client ~path:"/dir" (fun () -> fired := true);
  Coord.Zk_client.children client ~path:"/dir" (function
    | Ok kids -> seen := List.length kids
    | Error _ -> ());
  Coord.Zk_client.create_node other ~path:"/dir/x" (fun _ -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
  check_bool "create visible to read or watch" true (!seen = 1 || !fired)

let prop_expired_sessions_leave_no_ephemerals =
  QCheck.Test.make ~name:"zk: expired sessions never leave ephemerals behind" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 3) bool))
    (fun clients_spec ->
      let engine = Sim.Engine.create () in
      let server = Coord.Zk_server.create engine ~session_timeout:(Sim.Sim_time.ms 500) () in
      let clients =
        List.mapi
          (fun i (_, keep_alive) ->
            let c = Coord.Zk_server.open_session server in
            ignore
              (Coord.Zk_server.create_node server ~session:c
                 ~path:(Printf.sprintf "/e%d" i)
                 ~data:"" ~ephemeral:true ~sequential:false);
            (i, c, keep_alive))
          clients_spec
      in
      (* Heartbeat only the keep-alive sessions across the whole window. *)
      for tick = 1 to 20 do
        ignore
          (Sim.Engine.schedule engine
             ~after:(Sim.Sim_time.ms (tick * 250))
             (fun () ->
               List.iter
                 (fun (_, session, keep) ->
                   if keep then Coord.Zk_server.heartbeat server ~session)
                 clients))
      done;
      Sim.Engine.run_for engine (Sim.Sim_time.sec 4);
      List.for_all
        (fun (i, _, keep) ->
          Coord.Zk_server.exists server ~path:(Printf.sprintf "/e%d" i) = keep)
        clients)

let prop_sequential_znodes_monotone =
  QCheck.Test.make ~name:"sequential znodes strictly increase" ~count:50
    (QCheck.int_range 2 30) (fun n ->
      let t = Coord.Ztree.create () in
      ignore
        (Coord.Ztree.create_node t ~path:"/d" ~data:"" ~mode:Coord.Ztree.Persistent
           ~sequential:false);
      let names =
        List.init n (fun _ ->
            match
              Coord.Ztree.create_node t ~path:"/d/s-" ~data:"" ~mode:Coord.Ztree.Persistent
                ~sequential:true
            with
            | Ok p -> p
            | Error _ -> "")
      in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | _ -> true
      in
      strictly_increasing names)

(* --- lifecycle events through the structured trace -------------------------- *)

let test_lifecycle_events_traced () =
  let engine = Sim.Engine.create () in
  let server = Coord.Zk_server.create engine ~session_timeout:(Sim.Sim_time.sec 2) () in
  let trace = Sim.Trace.create ~capacity:256 engine in
  Coord.Zk_server.attach_trace server trace;
  let session = Coord.Zk_server.open_session ~owner:"node-7" server in
  check_int "session creation traced" 1 (Sim.Trace.count trace ~tag:"zk.session_created");
  (match Sim.Trace.find trace ~tag:"zk.session_created" with
  | [ e ] ->
    check_int "owner parsed to node id" 7 e.Sim.Trace.node;
    check_bool "owner named in detail" true
      (String.length e.Sim.Trace.detail > 0
      && Option.is_some (String.index_opt e.Sim.Trace.detail '7'))
  | _ -> Alcotest.fail "expected one session_created event");
  check_bool "ephemeral create ok" true
    (Coord.Zk_server.create_node server ~session ~path:"/e" ~data:"" ~ephemeral:true
       ~sequential:false
    |> Result.is_ok);
  (match Sim.Trace.find trace ~tag:"zk.znode_created" with
  | [ e ] ->
    check_bool "created path in detail" true
      (String.length e.Sim.Trace.detail >= 2 && String.sub e.Sim.Trace.detail 0 2 = "/e")
  | _ -> Alcotest.fail "expected one znode_created event");
  (* Stop heartbeating: the sweep expires the session and reaps /e. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  check_bool "session gone" false (Coord.Zk_server.session_live server ~session);
  check_int "expiry traced" 1 (Sim.Trace.count trace ~tag:"zk.session_expired");
  (match Sim.Trace.find trace ~tag:"zk.session_expired" with
  | [ e ] -> check_int "expiry attributed to the owner node" 7 e.Sim.Trace.node
  | _ -> Alcotest.fail "expected one session_expired event");
  check_bool "ephemeral reap traced" true (Sim.Trace.count trace ~tag:"zk.znode_deleted" >= 1)

let test_explicit_delete_traced () =
  let engine = Sim.Engine.create () in
  let server = Coord.Zk_server.create engine ~session_timeout:(Sim.Sim_time.sec 2) () in
  let trace = Sim.Trace.create ~capacity:64 engine in
  Coord.Zk_server.attach_trace server trace;
  let session = Coord.Zk_server.open_session server in
  ignore
    (Coord.Zk_server.create_node server ~session ~path:"/d" ~data:"" ~ephemeral:false
       ~sequential:false);
  check_bool "delete ok" true (Coord.Zk_server.delete_node server ~session ~path:"/d" |> Result.is_ok);
  check_int "delete traced" 1 (Sim.Trace.count trace ~tag:"zk.znode_deleted")

let suite =
  [
    Alcotest.test_case "ztree: create/get/set" `Quick test_ztree_create_get_set;
    Alcotest.test_case "ztree: missing parent" `Quick test_ztree_missing_parent;
    Alcotest.test_case "ztree: duplicate create" `Quick test_ztree_duplicate;
    Alcotest.test_case "ztree: sequential names" `Quick test_ztree_sequential_names;
    Alcotest.test_case "ztree: delete semantics" `Quick test_ztree_delete_nonempty;
    Alcotest.test_case "ztree: children sorted" `Quick test_ztree_children_sorted;
    Alcotest.test_case "ztree: ephemerals by session" `Quick test_ztree_ephemerals_of_session;
    Alcotest.test_case "server: session expiry deletes ephemerals" `Quick
      test_session_expiry_deletes_ephemerals;
    Alcotest.test_case "server: heartbeats keep session" `Quick test_heartbeats_keep_session;
    Alcotest.test_case "server: node watch one-shot" `Quick test_watch_fires_on_delete;
    Alcotest.test_case "server: child watch" `Quick test_child_watch;
    Alcotest.test_case "server: watch on expiry" `Quick test_watch_fires_on_session_expiry;
    Alcotest.test_case "server: epoch counter" `Quick test_incr_counter;
    Alcotest.test_case "server: lifecycle events traced" `Quick test_lifecycle_events_traced;
    Alcotest.test_case "server: explicit delete traced" `Quick test_explicit_delete_traced;
    Alcotest.test_case "client: roundtrip latency" `Quick test_client_roundtrip_and_latency;
    Alcotest.test_case "client: crash suppresses callbacks" `Quick
      test_client_crash_suppresses_callbacks;
    Alcotest.test_case "client: crash expires session" `Quick test_client_crash_expires_session;
    Alcotest.test_case "client: watch delivery" `Quick test_client_watch_delivery;
    Alcotest.test_case "client: FIFO request order (regression)" `Quick test_client_fifo_order;
    QCheck_alcotest.to_alcotest prop_expired_sessions_leave_no_ephemerals;
    QCheck_alcotest.to_alcotest prop_sequential_znodes_monotone;
  ]
