(* Tests for the discrete-event simulation kernel. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- event heap ------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Sim.Event_heap.create () in
  ignore (Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 30) "c");
  ignore (Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 10) "a");
  ignore (Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 20) "b");
  let pop () = match Sim.Event_heap.pop h with Some (_, v) -> v | None -> "-" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Sim.Event_heap.create () in
  let t = Sim.Sim_time.at_us 5 in
  for i = 0 to 9 do
    ignore (Sim.Event_heap.push h ~time:t i)
  done;
  let order = List.init 10 (fun _ -> match Sim.Event_heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order on tie" (List.init 10 Fun.id) order

let test_heap_cancel () =
  let h = Sim.Event_heap.create () in
  let _a = Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 1) "a" in
  let b = Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 2) "b" in
  let _c = Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 3) "c" in
  Sim.Event_heap.cancel h b;
  check_int "live size" 2 (Sim.Event_heap.size h);
  let first = Sim.Event_heap.pop h in
  let second = Sim.Event_heap.pop h in
  let third = Sim.Event_heap.pop h in
  Alcotest.(check (list (option string)))
    "b skipped"
    [ Some "a"; Some "c"; None ]
    (List.map (Option.map snd) [ first; second; third ])

let test_heap_cancel_after_pop_noop () =
  let h = Sim.Event_heap.create () in
  let a = Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us 1) "a" in
  ignore (Sim.Event_heap.pop h);
  Sim.Event_heap.cancel h a;
  check_int "size stays zero" 0 (Sim.Event_heap.size h)

(* The client timeout pattern: every request pushes a timer and cancels it
   moments later. Without compaction the backing array grows with the number
   of requests ever issued; with it the array tracks the live count. *)
let test_heap_compaction_bounds_backing_array () =
  let h = Sim.Event_heap.create () in
  let handles =
    Array.init 100_000 (fun i -> Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us i) i)
  in
  Array.iteri (fun i handle -> if i mod 100 <> 0 then Sim.Event_heap.cancel h handle) handles;
  check_int "live" 1000 (Sim.Event_heap.size h);
  Alcotest.(check bool)
    "backing array is O(live)" true
    (Sim.Event_heap.backing_len h <= 2 * Sim.Event_heap.size h);
  (* Dead entries must still be invisible to pop, in (time, seq) order. *)
  let popped = ref [] in
  let rec drain () =
    match Sim.Event_heap.pop h with
    | None -> ()
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
  in
  drain ();
  Alcotest.(check (list int))
    "survivors in order"
    (List.init 1000 (fun i -> i * 100))
    (List.rev !popped)

(* Model-based check: a heap driven by a random push/cancel/pop schedule must
   agree with a naive sorted-list model on every pop, keep [size] equal to the
   model's cardinality, and keep the backing array O(live) at every cancel. *)
type heap_op = HPush of int | HCancel of int | HPop

let arb_heap_ops =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (5, map (fun t -> HPush t) (int_range 0 500));
          (4, map (fun i -> HCancel i) (int_range 0 5000));
          (3, return HPop);
        ])
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (function
             | HPush t -> Printf.sprintf "push %d" t
             | HCancel i -> Printf.sprintf "cancel %d" i
             | HPop -> "pop")
           l))
    QCheck.Gen.(list_size (int_range 1 400) op_gen)

let prop_event_heap_matches_model =
  QCheck.Test.make ~name:"event heap: model equivalence (order, cancel, O(live) backing)"
    ~count:300 arb_heap_ops (fun ops ->
      let h = Sim.Event_heap.create () in
      let handles = Hashtbl.create 64 in
      (* seq -> time for entries the model still considers pending *)
      let model = Hashtbl.create 64 in
      let n_push = ref 0 in
      let model_min () =
        Hashtbl.fold
          (fun seq time acc ->
            match acc with
            | Some (t', s') when t' < time || (t' = time && s' < seq) -> acc
            | _ -> Some (time, seq))
          model None
      in
      let pop_agrees () =
        match (Sim.Event_heap.pop h, model_min ()) with
        | None, None -> true
        | Some (time, seq), Some (mt, ms) ->
          Hashtbl.remove model ms;
          seq = ms && time = Sim.Sim_time.at_us mt
        | Some _, None | None, Some _ -> false
      in
      let step op =
        (match op with
        | HPush t ->
          let handle = Sim.Event_heap.push h ~time:(Sim.Sim_time.at_us t) !n_push in
          Hashtbl.replace handles !n_push handle;
          Hashtbl.replace model !n_push t;
          incr n_push;
          true
        | HCancel _ when !n_push = 0 -> true
        | HCancel i ->
          let i = i mod !n_push in
          (* Cancel is idempotent and a no-op after pop, in heap and model. *)
          let handle = Hashtbl.find handles i in
          let effective = not (Sim.Event_heap.is_cancelled handle) in
          Sim.Event_heap.cancel h handle;
          Hashtbl.remove model i;
          (* An effective cancel re-establishes the compaction invariant;
             a no-op cancel (already popped/cancelled) need not. *)
          (not effective)
          || Sim.Event_heap.backing_len h <= Stdlib.max 64 (2 * Sim.Event_heap.size h)
        | HPop -> pop_agrees ())
        && Sim.Event_heap.size h = Hashtbl.length model
      in
      List.for_all step ops
      &&
      (* Drain: remaining live entries must come out in model order. *)
      let rec drain () = if Hashtbl.length model = 0 then pop_agrees () else pop_agrees () && drain () in
      drain ())

(* --- engine ----------------------------------------------------------- *)

let test_engine_runs_in_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 3) (fun () -> log := 3 :: !log));
  ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 2) (fun () -> log := 2 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref Sim.Sim_time.zero in
  ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 7) (fun () -> seen := Sim.Engine.now e));
  Sim.Engine.run e;
  check_int "clock at event" 7_000 (Sim.Sim_time.time_to_us !seen)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  ignore
    (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 1) (fun () ->
         incr hits;
         ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 1) (fun () -> incr hits))));
  Sim.Engine.run e;
  check_int "both ran" 2 !hits;
  check_int "final clock" 2_000 (Sim.Sim_time.time_to_us (Sim.Engine.now e))

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let hit = ref false in
  let timer = Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 1) (fun () -> hit := true) in
  Sim.Engine.cancel e timer;
  Sim.Engine.run e;
  check_bool "cancelled" false !hit

let test_run_until_stops_and_sets_clock () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 5) (fun () -> incr hits));
  ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 15) (fun () -> incr hits));
  Sim.Engine.run_until e (Sim.Sim_time.at_us 10_000);
  check_int "only first ran" 1 !hits;
  check_int "clock at until" 10_000 (Sim.Sim_time.time_to_us (Sim.Engine.now e));
  Sim.Engine.run e;
  check_int "second ran later" 2 !hits

let test_determinism () =
  let run () =
    let e = Sim.Engine.create ~seed:7 () in
    let rng = Sim.Rng.split (Sim.Engine.rng e) in
    let acc = ref [] in
    for _ = 1 to 5 do
      let d = Sim.Rng.int rng 1000 in
      ignore (Sim.Engine.schedule e ~after:(Sim.Sim_time.us d) (fun () -> acc := d :: !acc))
    done;
    Sim.Engine.run e;
    !acc
  in
  Alcotest.(check (list int)) "same seed, same schedule" (run ()) (run ())

(* --- resource ---------------------------------------------------------- *)

let test_resource_fifo_queueing () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~name:"disk" () in
  let finished = ref [] in
  for i = 1 to 3 do
    Sim.Resource.submit r ~service:(Sim.Sim_time.ms 10) (fun () ->
        finished := (i, Sim.Sim_time.time_to_us (Sim.Engine.now e)) :: !finished)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int)))
    "serialised completions"
    [ (1, 10_000); (2, 20_000); (3, 30_000) ]
    (List.rev !finished)

let test_resource_multi_server () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~name:"cpu" ~servers:2 () in
  let finished = ref [] in
  for i = 1 to 4 do
    Sim.Resource.submit r ~service:(Sim.Sim_time.ms 10) (fun () ->
        finished := (i, Sim.Sim_time.time_to_us (Sim.Engine.now e)) :: !finished)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int)))
    "two at a time"
    [ (1, 10_000); (2, 10_000); (3, 20_000); (4, 20_000) ]
    (List.rev !finished)

let test_resource_idle_then_busy () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~name:"disk" () in
  let at = ref 0 in
  ignore
    (Sim.Engine.schedule e ~after:(Sim.Sim_time.ms 50) (fun () ->
         Sim.Resource.submit r ~service:(Sim.Sim_time.ms 5) (fun () ->
             at := Sim.Sim_time.time_to_us (Sim.Engine.now e))));
  Sim.Engine.run e;
  check_int "starts when submitted, not at zero" 55_000 !at

(* --- network ------------------------------------------------------------ *)

let make_net () =
  let e = Sim.Engine.create () in
  let net = Sim.Network.create e ~latency:(Sim.Distribution.Constant 100.0) () in
  (e, net)

let test_network_delivery () =
  let e, net = make_net () in
  let got = ref None in
  Sim.Network.register net ~node:1 (fun _ -> ());
  Sim.Network.register net ~node:2 (fun env -> got := Some env.Sim.Network.payload);
  Sim.Network.send net ~src:1 ~dst:2 "hello";
  Sim.Engine.run e;
  Alcotest.(check (option string)) "delivered" (Some "hello") !got

let test_network_down_node_drops () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net ~node:1 (fun _ -> ());
  Sim.Network.register net ~node:2 (fun _ -> incr got);
  Sim.Network.set_up net 2 false;
  Sim.Network.send net ~src:1 ~dst:2 "x";
  Sim.Engine.run e;
  check_int "dropped" 0 !got;
  check_int "counted as dropped" 1 (Sim.Network.messages_dropped net)

let test_network_partition_and_heal () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.register net ~node:1 (fun _ -> ());
  Sim.Network.register net ~node:2 (fun _ -> incr got);
  Sim.Network.partition net [ 1 ] [ 2 ];
  Sim.Network.send net ~src:1 ~dst:2 "x";
  Sim.Engine.run e;
  check_int "partitioned" 0 !got;
  Sim.Network.heal net;
  Sim.Network.send net ~src:1 ~dst:2 "y";
  Sim.Engine.run e;
  check_int "healed" 1 !got

let test_network_in_order_per_pair () =
  let e, net = make_net () in
  let got = ref [] in
  Sim.Network.register net ~node:1 (fun _ -> ());
  Sim.Network.register net ~node:2 (fun env -> got := env.Sim.Network.payload :: !got);
  for i = 1 to 20 do
    Sim.Network.send net ~src:1 ~dst:2 ~size:128 (string_of_int i)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list string))
    "FIFO per sender-receiver pair"
    (List.init 20 (fun i -> string_of_int (i + 1)))
    (List.rev !got)

let test_network_transfer_time_scales_with_size () =
  let e = Sim.Engine.create () in
  let net = Sim.Network.create e ~latency:(Sim.Distribution.Constant 0.0) ~bandwidth_bps:8_000_000 () in
  (* 8 Mbit/s => 1 byte/us *)
  let at = ref 0 in
  Sim.Network.register net ~node:1 (fun _ -> ());
  Sim.Network.register net ~node:2 (fun _ -> at := Sim.Sim_time.time_to_us (Sim.Engine.now e));
  Sim.Network.send net ~src:1 ~dst:2 ~size:4096 "big";
  Sim.Engine.run e;
  check_int "4096 bytes at 1B/us" 4096 !at

(* --- metrics ------------------------------------------------------------ *)

let test_histogram_stats () =
  let h = Sim.Metrics.Histogram.create () in
  List.iter (Sim.Metrics.Histogram.record h) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Sim.Metrics.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Sim.Metrics.Histogram.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 5.0 (Sim.Metrics.Histogram.percentile h 0.99);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Sim.Metrics.Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Sim.Metrics.Histogram.max h)

let test_histogram_interleaved_record_and_query () =
  let h = Sim.Metrics.Histogram.create () in
  Sim.Metrics.Histogram.record h 10.0;
  ignore (Sim.Metrics.Histogram.percentile h 0.5);
  Sim.Metrics.Histogram.record h 1.0;
  (* Sorting for the earlier percentile must not corrupt later inserts. *)
  Alcotest.(check (float 1e-9)) "min after re-sort" 1.0 (Sim.Metrics.Histogram.min h);
  check_int "count" 2 (Sim.Metrics.Histogram.count h)

(* --- distributions / rng ------------------------------------------------ *)

let test_rng_determinism () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 1 in
  let xs = List.init 10 (fun _ -> Sim.Rng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Sim.Rng.int b 1_000_000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_split_independent () =
  let a = Sim.Rng.create 1 in
  let b = Sim.Rng.split a in
  let xs = List.init 10 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Sim.Rng.int b 1000) in
  check_bool "streams differ" true (xs <> ys)

let prop_distribution_nonnegative =
  QCheck.Test.make ~name:"distribution samples are nonnegative" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 5))
    (fun (seed, which) ->
      let rng = Sim.Rng.create seed in
      let d =
        match which with
        | 0 -> Sim.Distribution.Constant 5.0
        | 1 -> Sim.Distribution.Uniform (0.0, 10.0)
        | 2 -> Sim.Distribution.Exponential 3.0
        | 3 -> Sim.Distribution.Shifted_exponential { base = 1.0; mean_extra = 2.0 }
        | 4 -> Sim.Distribution.Normal { mean = 1.0; stddev = 5.0 }
        | _ -> Sim.Distribution.Mixture [ (1.0, Constant 1.0); (2.0, Exponential 4.0) ]
      in
      Sim.Distribution.sample d rng >= 0.0)

let prop_exponential_mean =
  QCheck.Test.make ~name:"exponential sample mean approaches parameter" ~count:20
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Sim.Rng.create seed in
      let n = 5000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Sim.Distribution.sample (Sim.Distribution.Exponential 10.0) rng
      done;
      let mean = !sum /. float_of_int n in
      mean > 8.0 && mean < 12.0)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

(* --- JSON parser ------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Sim.Json.Obj
      [
        ("null", Sim.Json.Null);
        ("flags", Sim.Json.List [ Sim.Json.Bool true; Sim.Json.Bool false ]);
        ("int", Sim.Json.Int (-42));
        ("float", Sim.Json.Float 2.5);
        ("text", Sim.Json.String "line\nquote\" tab\t back\\slash");
        ("nested", Sim.Json.Obj [ ("xs", Sim.Json.List [ Sim.Json.Int 1; Sim.Json.Int 2 ]) ]);
        ("empty_list", Sim.Json.List []);
        ("empty_obj", Sim.Json.Obj []);
      ]
  in
  match Sim.Json.of_string (Sim.Json.to_string doc) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok parsed -> check_bool "identical after round-trip" true (parsed = doc)

let test_json_parses_plain_syntax () =
  (match Sim.Json.of_string {| {"a": [1, 2.5, "xA", true, null]} |} with
  | Ok (Sim.Json.Obj [ ("a", Sim.Json.List l) ]) ->
    check_bool "values" true
      (l = [ Sim.Json.Int 1; Sim.Json.Float 2.5; Sim.Json.String "xA"; Sim.Json.Bool true;
             Sim.Json.Null ])
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* exponents parse as floats, bare ints as ints *)
  (match Sim.Json.of_string "[1e3, 10]" with
  | Ok (Sim.Json.List [ Sim.Json.Float f; Sim.Json.Int 10 ]) ->
    Alcotest.(check (float 0.001)) "exponent" 1000.0 f
  | _ -> Alcotest.fail "number discrimination")

let test_json_rejects_garbage () =
  let bad s =
    match Sim.Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "{} trailing"

let test_json_member () =
  let doc = Sim.Json.Obj [ ("a", Sim.Json.Int 1) ] in
  check_bool "present" true (Sim.Json.member "a" doc = Some (Sim.Json.Int 1));
  check_bool "absent" true (Sim.Json.member "b" doc = None);
  check_bool "non-object" true (Sim.Json.member "a" (Sim.Json.Int 3) = None)

let suite =
  [
    Alcotest.test_case "heap: time ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap: FIFO on equal times" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap: cancellation" `Quick test_heap_cancel;
    Alcotest.test_case "heap: cancel after pop is noop" `Quick test_heap_cancel_after_pop_noop;
    Alcotest.test_case "heap: compaction bounds backing array" `Quick
      test_heap_compaction_bounds_backing_array;
    QCheck_alcotest.to_alcotest prop_event_heap_matches_model;
    Alcotest.test_case "engine: time order" `Quick test_engine_runs_in_time_order;
    Alcotest.test_case "engine: clock advances" `Quick test_engine_clock_advances;
    Alcotest.test_case "engine: nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: run_until semantics" `Quick test_run_until_stops_and_sets_clock;
    Alcotest.test_case "engine: determinism under seed" `Quick test_determinism;
    Alcotest.test_case "resource: FIFO queueing" `Quick test_resource_fifo_queueing;
    Alcotest.test_case "resource: multi-server" `Quick test_resource_multi_server;
    Alcotest.test_case "resource: idle then busy" `Quick test_resource_idle_then_busy;
    Alcotest.test_case "network: delivery" `Quick test_network_delivery;
    Alcotest.test_case "network: down node drops" `Quick test_network_down_node_drops;
    Alcotest.test_case "network: partition & heal" `Quick test_network_partition_and_heal;
    Alcotest.test_case "network: in-order per pair" `Quick test_network_in_order_per_pair;
    Alcotest.test_case "network: size-scaled transfer" `Quick test_network_transfer_time_scales_with_size;
    Alcotest.test_case "metrics: histogram stats" `Quick test_histogram_stats;
    Alcotest.test_case "metrics: interleaved record/query" `Quick test_histogram_interleaved_record_and_query;
    Alcotest.test_case "json: printer/parser round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: parses plain syntax" `Quick test_json_parses_plain_syntax;
    Alcotest.test_case "json: rejects malformed input" `Quick test_json_rejects_garbage;
    Alcotest.test_case "json: member lookup" `Quick test_json_member;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_distribution_nonnegative;
    QCheck_alcotest.to_alcotest prop_exponential_mean;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
  ]
