(* The self-shrinking chaos harness: ddmin on synthetic schedules, schedule
   JSON round-trips, determinism regressions (same seed => byte-identical
   history fingerprint and injection log), and the planted-bug fixture — a
   guarded re-enable of the pre-fix follower hole-ack bug whose dozens-of-
   injections failing run must shrink to a handful that still reproduce.

   The minimal schedule the fixture finds is written to
   [MINIMAL_SCHEDULE_planted.json] (CI uploads it); replay it by hand with
   [NEMESIS_SCHEDULE=<path> dune exec test/test_main.exe -- test nemesis]. *)

module Chaos = Workload.Chaos
module Failure = Sim.Failure

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- ddmin on synthetic schedules (no simulation) ------------------------- *)

let crash_at us who =
  { Failure.at = Sim.Sim_time.at_us us; fault = { Failure.kind = Crash; who } }

let synthetic n = List.init n (fun i -> crash_at (1000 * (i + 1)) (Printf.sprintf "node-%d" i))

let contains who s = List.exists (fun (i : Failure.injection) -> String.equal i.fault.who who) s

let test_ddmin_pins_needed_pair () =
  let full = synthetic 20 in
  (* The "violation" needs exactly two of the twenty injections. *)
  let replay s = contains "node-3" s && contains "node-7" s in
  let minimal, stats = Sim.Shrink.ddmin ~replay full in
  check_int "minimal size" 2 (List.length minimal);
  check_bool "kept node-3" true (contains "node-3" minimal);
  check_bool "kept node-7" true (contains "node-7" minimal);
  (* Removal-only: original order survives. *)
  (match minimal with
  | [ a; b ] ->
    check_string "order preserved" "node-3" a.Failure.fault.who;
    check_string "order preserved" "node-7" b.Failure.fault.who
  | _ -> Alcotest.fail "expected exactly two injections");
  check_int "stats initial" 20 stats.Sim.Shrink.initial_injections;
  check_int "stats final" 2 stats.Sim.Shrink.final_injections;
  check_bool "replays counted" true (stats.Sim.Shrink.replays > 0);
  check_bool "replays bounded" true (stats.Sim.Shrink.replays <= 2000)

let test_ddmin_keeps_all_when_all_needed () =
  let full = synthetic 5 in
  let replay s = List.length s = 5 in
  let minimal, stats = Sim.Shrink.ddmin ~replay full in
  check_int "nothing removable" 5 (List.length minimal);
  check_int "final" 5 stats.Sim.Shrink.final_injections

let test_ddmin_floor_is_one_injection () =
  (* The shrinker never proposes the empty schedule — a violation that needs
     no injections at all is not a fault-schedule bug — so an always-failing
     predicate bottoms out at a single injection. *)
  let full = synthetic 8 in
  let minimal, _ = Sim.Shrink.ddmin ~replay:(fun _ -> true) full in
  check_int "shrinks to one" 1 (List.length minimal)

let test_ddmin_respects_budget () =
  let full = synthetic 64 in
  let replays = ref 0 in
  let replay s =
    incr replays;
    contains "node-13" s && contains "node-47" s
  in
  let minimal, stats = Sim.Shrink.ddmin ~max_replays:10 ~replay full in
  check_bool "budget respected" true (!replays <= 10 && stats.Sim.Shrink.replays <= 10);
  (* On exhaustion the best-so-far schedule must still fail. *)
  check_bool "result still fails" true (replay minimal)

(* --- schedule JSON round-trip --------------------------------------------- *)

let test_schedule_json_roundtrip () =
  let mk us kind who = { Failure.at = Sim.Sim_time.at_us us; fault = { Failure.kind; who } } in
  let schedule =
    [
      mk 10 Failure.Crash "node-1";
      mk 500 Failure.Engage "pair-partition 0<->3";
      mk 501 Failure.Engage "link-faults [0,1,2] loss=0.080 dup=0.080";
      mk 900 Failure.Disengage "pair-partition 0<->3";
      mk 1200 Failure.Restart "node-1";
      mk 1500 Failure.Destroy "node-4";
    ]
  in
  let json = Failure.json_of_schedule schedule in
  let text = Sim.Json.to_string json in
  match Sim.Json.of_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok reparsed -> (
    match Failure.schedule_of_json reparsed with
    | Error e -> Alcotest.failf "decode failed: %s" e
    | Ok decoded ->
      check_int "length" (List.length schedule) (List.length decoded);
      List.iter2
        (fun (a : Failure.injection) (b : Failure.injection) ->
          check_int "at" (Sim.Sim_time.time_to_us a.at) (Sim.Sim_time.time_to_us b.at);
          check_string "kind" (Failure.kind_to_string a.fault.kind)
            (Failure.kind_to_string b.fault.kind);
          check_string "who" a.fault.who b.fault.who)
        schedule decoded)

let test_artifact_json_accepts_verdict_object () =
  (* schedule_of_artifact_json must read the [injections] member of a full
     verdict artifact, so CI artifacts replay without surgery. *)
  let v = Chaos.run_spinnaker ~profile:Chaos.Crashes ~chaos_for:(Sim.Sim_time.sec 2)
      ~quiesce_for:(Sim.Sim_time.sec 5) ~seed:3 ()
  in
  let text = Sim.Json.to_string (Chaos.json_of_verdict v) in
  match Sim.Json.of_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok json -> (
    match Chaos.schedule_of_artifact_json json with
    | Error e -> Alcotest.failf "artifact decode failed: %s" e
    | Ok s -> check_int "schedule length" (List.length v.Chaos.schedule) (List.length s))

(* --- fault exposure as metrics gauges ------------------------------------- *)

let test_exposure_gauges () =
  let engine = Sim.Engine.create ~seed:9 () in
  let failure = Failure.create engine in
  let registry = Sim.Metrics.Registry.create engine in
  Failure.attach_metrics failure registry;
  let target =
    {
      Failure.label = "node-0";
      crash = (fun () -> ());
      restart = (fun () -> ());
      lose_disk = (fun () -> ());
    }
  in
  Failure.crash_at failure (Sim.Sim_time.at_us 100) target;
  Failure.restart_at failure (Sim.Sim_time.at_us 200) target;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 1);
  let gauge name =
    match
      List.find_opt
        (fun g -> String.equal (Sim.Metrics.Gauge.name g) name)
        (Sim.Metrics.Registry.gauges registry)
    with
    | Some g -> g
    | None -> Alcotest.failf "gauge %s not registered" name
  in
  (* Gauges read the live exposure counters; cluster-wide, so node -1. *)
  check_int "crash gauge" 1 (Sim.Metrics.Gauge.read (gauge "nemesis_crashes"));
  check_int "restart gauge" 1 (Sim.Metrics.Gauge.read (gauge "nemesis_restarts"));
  check_int "engage gauge" 0 (Sim.Metrics.Gauge.read (gauge "nemesis_engages"));
  check_int "cluster-wide node id" (-1) (Sim.Metrics.Gauge.node (gauge "nemesis_crashes"))

(* --- determinism regressions ---------------------------------------------- *)

let schedule_text s = Sim.Json.to_string (Failure.json_of_schedule s)

(* Same seed, same gauntlet => byte-identical history fingerprint and
   injection log. This is the regression that keeps replayable schedules
   honest: any nondeterminism in the engine, the RNG splits, or the fault
   layer shows up here first. *)
let test_seed_run_determinism () =
  let run () = Chaos.run_spinnaker ~profile:Chaos.Mixed ~seed:5 () in
  let a = run () and b = run () in
  check_string "fingerprint" a.Chaos.fingerprint b.Chaos.fingerprint;
  check_string "injection log" (schedule_text a.Chaos.schedule) (schedule_text b.Chaos.schedule);
  check_bool "ran chaos" true (List.length a.Chaos.schedule > 0)

let test_schedule_replay_determinism () =
  let recorded = Chaos.run_spinnaker ~profile:Chaos.Mixed ~seed:5 () in
  let replay () = Chaos.run_spinnaker ~schedule:recorded.Chaos.schedule ~seed:5 () in
  let a = replay () and b = replay () in
  check_string "replay fingerprint" a.Chaos.fingerprint b.Chaos.fingerprint;
  (* A replayed run's injection log is exactly its input schedule. *)
  check_string "log equals input" (schedule_text recorded.Chaos.schedule)
    (schedule_text a.Chaos.schedule)

(* Pinned fingerprints for fixed (profile, seed) pairs. Unlike the same-process
   check above, these goldens catch *cross-version* drift: any change to event
   ordering — the event heap, network delivery, timer queues, an RNG stream —
   silently reshuffles the history even when each individual run is still
   self-consistent. The event-heap rewrite (lazy cancellation, 4-ary layout,
   compaction) was required to preserve the exact (time, seq) pop order, and
   these values prove it did. If a future change is *meant* to alter the
   schedule (say, a different tie-break), re-capture deliberately:
     Workload.Chaos.run_spinnaker ~profile ~seed () |> fun r -> r.fingerprint *)
let golden_fingerprints =
  [
    (Chaos.Mixed, 1, "3113716eb69147387f1d7a0687675a6e");
    (Chaos.Mixed, 7, "865eb4c1bf0c6e1876b31ee7bd551323");
    (Chaos.Mixed, 42, "0502470f22b0ef05fa514e42f5199031");
    (Chaos.Crashes, 1, "270faf241bbc2ebd7e6fd3e76150006c");
    (Chaos.Crashes, 7, "e3b8912fc2059946a7532f4ced23ceeb");
    (Chaos.Crashes, 42, "2b895e0e7b387cadcfc13b54c4fbb5f4");
  ]

let test_golden_fingerprints () =
  List.iter
    (fun (profile, seed, expected) ->
      let r = Chaos.run_spinnaker ~profile ~seed () in
      check_bool (Printf.sprintf "seed %d run is clean" seed) false (Chaos.failed r);
      check_string
        (Printf.sprintf "seed %d fingerprint" seed)
        expected r.Chaos.fingerprint)
    golden_fingerprints

(* --- the planted-bug fixture ---------------------------------------------- *)

(* Re-enable the pre-fix follower ack bug (acking past loss-induced log
   holes) and shrink a seed that fails under it. Empirically, seed 11's
   mixed gauntlet fires 36 injections and ddmin pins the failure to two:
   a lossy-link episode (opens the hole) and the leader crash (elects the
   follower that acked past it). *)
let planted_seed = 11

let test_planted_bug_shrinks () =
  (* Sanity: the shipped code survives this exact gauntlet. *)
  let fixed = Chaos.run_spinnaker ~profile:Chaos.Mixed ~seed:planted_seed () in
  check_bool "fixed code is clean" false (Chaos.failed fixed);
  match
    Chaos.shrink_spinnaker ~planted_hole_ack_bug:true ~profile:Chaos.Mixed ~seed:planted_seed ()
  with
  | None -> Alcotest.fail "planted bug did not fail (or did not replay)"
  | Some (recorded, minimal, stats) ->
    check_bool "recorded run failed" true (Chaos.failed recorded);
    check_bool "lost an acked write" true
      (List.mem_assoc "lost-acked-write" recorded.Chaos.violations);
    check_bool
      (Printf.sprintf "enough injections to be worth shrinking (%d)"
         stats.Sim.Shrink.initial_injections)
      true
      (stats.Sim.Shrink.initial_injections >= 20);
    check_bool
      (Printf.sprintf "minimal schedule is small (%d)" (List.length minimal))
      true
      (List.length minimal <= 3);
    (* The minimal schedule round-trips through JSON... *)
    let rt =
      match Failure.schedule_of_json (Failure.json_of_schedule minimal) with
      | Ok s -> s
      | Error e -> Alcotest.failf "minimal schedule does not round-trip: %s" e
    in
    check_string "round-trip is lossless" (schedule_text minimal) (schedule_text rt);
    (* ...replays deterministically, still reproducing the violation... *)
    let r1 = Chaos.run_spinnaker ~schedule:rt ~planted_hole_ack_bug:true ~seed:planted_seed () in
    let r2 = Chaos.run_spinnaker ~schedule:rt ~planted_hole_ack_bug:true ~seed:planted_seed () in
    check_bool "minimal schedule reproduces" true (Chaos.failed r1 && Chaos.failed r2);
    check_string "replay is deterministic" r1.Chaos.fingerprint r2.Chaos.fingerprint;
    (* ...and does NOT break the fixed code: the bug, not the schedule, is
       at fault. *)
    let on_fixed = Chaos.run_spinnaker ~schedule:rt ~seed:planted_seed () in
    check_bool "fixed code survives the minimal schedule" false (Chaos.failed on_fixed);
    (* Persist the artifact CI uploads; replay with NEMESIS_SCHEDULE=. *)
    let oc = open_out "MINIMAL_SCHEDULE_planted.json" in
    output_string oc (Sim.Json.to_string (Chaos.json_of_verdict { r1 with schedule = minimal }));
    output_char oc '\n';
    close_out oc;
    (* The failing replay's flight-recorder pins ride along: the slowest
       requests' causal traces from the very run that violated the
       invariant, next to the schedule that reproduces it. *)
    (match r1.Chaos.outliers with
    | Some json ->
      let oc = open_out "TRACE_outliers_planted.json" in
      output_string oc (Sim.Json.to_string json);
      output_char oc '\n';
      close_out oc
    | None -> ())

let suite =
  [
    Alcotest.test_case "ddmin pins the needed pair out of 20" `Quick test_ddmin_pins_needed_pair;
    Alcotest.test_case "ddmin keeps a schedule that is all needed" `Quick
      test_ddmin_keeps_all_when_all_needed;
    Alcotest.test_case "ddmin never proposes the empty schedule" `Quick
      test_ddmin_floor_is_one_injection;
    Alcotest.test_case "ddmin respects the replay budget" `Quick test_ddmin_respects_budget;
    Alcotest.test_case "schedule JSON round-trips" `Quick test_schedule_json_roundtrip;
    Alcotest.test_case "artifact JSON accepts a verdict object" `Slow
      test_artifact_json_accepts_verdict_object;
    Alcotest.test_case "fault exposure surfaces as nemesis_* gauges" `Quick
      test_exposure_gauges;
    Alcotest.test_case "same seed, same history fingerprint" `Slow test_seed_run_determinism;
    Alcotest.test_case "schedule replay is deterministic" `Slow
      test_schedule_replay_determinism;
    Alcotest.test_case "history fingerprints match pinned goldens" `Slow
      test_golden_fingerprints;
    Alcotest.test_case "planted hole-ack bug shrinks to a minimal schedule" `Slow
      test_planted_bug_shrinks;
  ]
