(* Integration tests for the Spinnaker core: replication, consistency
   levels, conditional operations, failover, recovery, and availability
   invariants. Uses small clusters on an SSD log so forces are fast. *)

open Spinnaker

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_config =
  {
    Config.default with
    Config.nodes = 5;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

let boot ?(config = test_config) ?(seed = 42) () =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then Alcotest.fail "cluster not ready";
  (engine, cluster)

(* Drive the engine until an async result lands (or fail). *)
let await engine ?(timeout = Sim.Sim_time.sec 60) cell =
  let deadline = Sim.Sim_time.add (Sim.Engine.now engine) timeout in
  let rec loop () =
    match !cell with
    | Some v -> v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then Alcotest.fail "await timeout"
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let put_sync engine client key col value =
  let r = ref None in
  Client.put client key col ~value (fun x -> r := Some x);
  await engine r

let get_sync ?(consistent = true) engine client key col =
  let r = ref None in
  Client.get client ~consistent key col (fun x -> r := Some x);
  await engine r

let cond_put_sync engine client key col value expected =
  let r = ref None in
  Client.conditional_put client key col ~value ~expected (fun x -> r := Some x);
  await engine r

let value_of = function
  | Ok Client.{ value; _ } -> value
  | Error e -> Alcotest.failf "request failed: %a" Client.pp_error e

let version_of = function
  | Ok Client.{ version; _ } -> version
  | Error e -> Alcotest.failf "request failed: %a" Client.pp_error e

let key_for cluster i = Partition.key_of_int (Cluster.partition cluster) i

(* --- basic API -------------------------------------------------------------- *)

let test_put_get_roundtrip () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 1234 in
  check_bool "put ok" true (Result.is_ok (put_sync engine client key "c" "hello"));
  Alcotest.(check (option string)) "get" (Some "hello") (value_of (get_sync engine client key "c"))

let test_get_missing_key () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  Alcotest.(check (option string))
    "missing" None
    (value_of (get_sync engine client (key_for cluster 777) "nope"))

let test_versions_increment () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 5 in
  ignore (put_sync engine client key "c" "v1");
  check_int "v1" 1 (version_of (get_sync engine client key "c"));
  ignore (put_sync engine client key "c" "v2");
  check_int "v2" 2 (version_of (get_sync engine client key "c"))

let test_delete () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 6 in
  ignore (put_sync engine client key "c" "x");
  let r = ref None in
  Client.delete client key "c" (fun x -> r := Some x);
  check_bool "delete ok" true (Result.is_ok (await engine r));
  Alcotest.(check (option string)) "gone" None (value_of (get_sync engine client key "c"));
  (* The tombstone still carries a version for optimistic concurrency. *)
  check_int "tombstone version" 2 (version_of (get_sync engine client key "c"))

let test_conditional_put () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 7 in
  ignore (put_sync engine client key "c" "base");
  (* Correct expected version succeeds. *)
  check_bool "match" true (Result.is_ok (cond_put_sync engine client key "c" "next" 1));
  (* Stale expected version fails with the current version. *)
  (match cond_put_sync engine client key "c" "loser" 1 with
  | Error (Client.Version_mismatch { current }) -> check_int "current" 2 current
  | _ -> Alcotest.fail "expected mismatch");
  Alcotest.(check (option string)) "winner kept" (Some "next")
    (value_of (get_sync engine client key "c"))

let test_conditional_increment_loop () =
  (* The paper's counter idiom (§3): read version, conditional-put, retry. *)
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 8 in
  ignore (put_sync engine client key "n" "0");
  for _ = 1 to 5 do
    let v = get_sync engine client key "n" in
    let current = version_of v in
    let n = int_of_string (Option.get (value_of v)) in
    check_bool "increment accepted" true
      (Result.is_ok (cond_put_sync engine client key "n" (string_of_int (n + 1)) current))
  done;
  Alcotest.(check (option string)) "count" (Some "5") (value_of (get_sync engine client key "n"))

let test_conditional_racers_one_wins () =
  let engine, cluster = boot () in
  let a = Cluster.new_client cluster and b = Cluster.new_client cluster in
  let key = key_for cluster 9 in
  ignore (put_sync engine a key "c" "base");
  (* Two clients race a conditional put against the same version. *)
  let ra = ref None and rb = ref None in
  Client.conditional_put a key "c" ~value:"A" ~expected:1 (fun x -> ra := Some x);
  Client.conditional_put b key "c" ~value:"B" ~expected:1 (fun x -> rb := Some x);
  let xa = await engine ra and xb = await engine rb in
  let wins = List.length (List.filter Result.is_ok [ xa; xb ]) in
  check_int "exactly one winner" 1 wins

let test_multi_column_put_and_get () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 10 in
  let r = ref None in
  Client.multi_put client key [ ("a", "1"); ("b", "2"); ("c", "3") ] (fun x -> r := Some x);
  check_bool "multi_put ok" true (Result.is_ok (await engine r));
  let g = ref None in
  Client.multi_get client key [ "a"; "b"; "c" ] (fun x -> g := Some x);
  (match await engine g with
  | Ok cols ->
    Alcotest.(check (list (pair string (option string))))
      "all columns"
      [ ("a", Some "1"); ("b", Some "2"); ("c", Some "3") ]
      (List.map (fun (c, Client.{ value; _ }) -> (c, value)) cols)
  | Error e -> Alcotest.failf "multi_get: %a" Client.pp_error e)

let test_multi_conditional_put () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 11 in
  let r = ref None in
  Client.multi_put client key [ ("a", "1"); ("b", "2") ] (fun x -> r := Some x);
  ignore (await engine r);
  let r2 = ref None in
  Client.multi_conditional_put client key [ ("a", "10", 1); ("b", "20", 1) ] (fun x ->
      r2 := Some x);
  check_bool "matching versions succeed" true (Result.is_ok (await engine r2));
  let r3 = ref None in
  Client.multi_conditional_put client key [ ("a", "x", 1); ("b", "y", 2) ] (fun x ->
      r3 := Some x);
  check_bool "any stale version fails" true (Result.is_error (await engine r3));
  Alcotest.(check (option string)) "a kept" (Some "10") (value_of (get_sync engine client key "a"))

(* --- multi-operation transactions (§8.2 extension) ----------------------------- *)

let test_transaction_commits_atomically () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  (* Keys 1,2,3 all fall in range 0. *)
  let key i = key_for cluster i in
  let r = ref None in
  Client.transact_put client
    [ (key 1, "bal", "100"); (key 2, "bal", "200"); (key 3, "bal", "300") ]
    (fun x -> r := Some x);
  check_bool "txn ok" true (Result.is_ok (await engine r));
  List.iter
    (fun (i, v) ->
      Alcotest.(check (option string))
        (Printf.sprintf "row %d" i)
        (Some v)
        (value_of (get_sync engine client (key i) "bal")))
    [ (1, "100"); (2, "200"); (3, "300") ]

let test_transaction_cross_range_rejected () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  (* Key 1 is in range 0; a key from the far end of the space is not. *)
  let far = Config.default.Config.key_space - 1 in
  let r = ref None in
  Client.transact_put client
    [ (key_for cluster 1, "c", "x"); (key_for cluster far, "c", "y") ]
    (fun x -> r := Some x);
  (match await engine r with
  | Error Client.Cross_range -> ()
  | Ok () -> Alcotest.fail "cross-range transaction accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Client.pp_error e);
  (* And nothing was written. *)
  Alcotest.(check (option string)) "no partial write" None
    (value_of (get_sync engine client (key_for cluster 1) "c"))

let test_transaction_versions_assigned () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  ignore (put_sync engine client (key_for cluster 4) "c" "pre");
  let r = ref None in
  Client.transact_put client
    [ (key_for cluster 4, "c", "post"); (key_for cluster 5, "c", "fresh") ]
    (fun x -> r := Some x);
  ignore (await engine r);
  check_int "existing row bumped" 2 (version_of (get_sync engine client (key_for cluster 4) "c"));
  check_int "new row at 1" 1 (version_of (get_sync engine client (key_for cluster 5) "c"))

let test_transaction_atomic_across_failover () =
  (* Fire transactions continuously, kill the leader mid-stream, and verify
     afterwards that every transaction is all-or-nothing: the single-log-
     record design makes partial commits impossible even across crashes. *)
  let engine, cluster = boot ~seed:21 () in
  let client = Cluster.new_client cluster in
  let rows_per_txn = 4 in
  let issued = ref 0 in
  let spawn_txn i =
    let rows =
      List.init rows_per_txn (fun j ->
          (key_for cluster ((i * rows_per_txn) + j), "c", Printf.sprintf "t%d" i))
    in
    Client.transact_put client rows (fun _ -> ())
  in
  let rec stream i =
    if i < 40 then begin
      spawn_txn i;
      issued := i + 1;
      ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 20) (fun () -> stream (i + 1)))
    end
  in
  stream 0;
  (* Kill the range-0 leader while transactions are in flight. *)
  Sim.Engine.run_for engine (Sim.Sim_time.ms 330);
  (match Cluster.leader_of cluster ~range:0 with
  | Some leader -> Cluster.crash_node cluster leader
  | None -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.sec 10);
  for i = 0 to !issued - 1 do
    let present =
      List.filter
        (fun j ->
          value_of (get_sync engine client (key_for cluster ((i * rows_per_txn) + j)) "c")
          = Some (Printf.sprintf "t%d" i))
        (List.init rows_per_txn Fun.id)
    in
    let n = List.length present in
    check_bool
      (Printf.sprintf "txn %d all-or-nothing (%d/%d rows)" i n rows_per_txn)
      true
      (n = 0 || n = rows_per_txn)
  done

let test_conditional_delete () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 12 in
  ignore (put_sync engine client key "c" "x");
  (* Wrong version fails and leaves the value... *)
  let r = ref None in
  Client.conditional_delete client key "c" ~expected:7 (fun x -> r := Some x);
  check_bool "stale version rejected" true (Result.is_error (await engine r));
  Alcotest.(check (option string)) "value intact" (Some "x")
    (value_of (get_sync engine client key "c"));
  (* ...the right version deletes. *)
  let r2 = ref None in
  Client.conditional_delete client key "c" ~expected:1 (fun x -> r2 := Some x);
  check_bool "matching version deletes" true (Result.is_ok (await engine r2));
  Alcotest.(check (option string)) "gone" None (value_of (get_sync engine client key "c"))

let test_multi_get_missing_columns () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 13 in
  ignore (put_sync engine client key "present" "yes");
  let g = ref None in
  Client.multi_get client key [ "present"; "absent" ] (fun x -> g := Some x);
  match await engine g with
  | Ok cols ->
    Alcotest.(check (list (pair string (option string))))
      "present and absent distinguished"
      [ ("present", Some "yes"); ("absent", None) ]
      (List.map (fun (c, Client.{ value; _ }) -> (c, value)) cols)
  | Error e -> Alcotest.failf "multi_get: %a" Client.pp_error e

(* --- range scans ---------------------------------------------------------------- *)

let scan_sync ?(consistent = true) ?limit engine client ~start_key ~end_key =
  let r = ref None in
  Client.scan client ~consistent ~start_key ~end_key ?limit (fun x -> r := Some x);
  match await engine r with
  | Ok rows -> rows
  | Error e -> Alcotest.failf "scan failed: %a" Client.pp_error e

let test_scan_single_range () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  for i = 10 to 19 do
    ignore (put_sync engine client (key_for cluster i) "c" (Printf.sprintf "v%d" i))
  done;
  let rows =
    scan_sync engine client ~start_key:(key_for cluster 12) ~end_key:(key_for cluster 16)
  in
  Alcotest.(check (list string))
    "window [12,16)"
    (List.map (key_for cluster) [ 12; 13; 14; 15 ])
    (List.map fst rows);
  (* Values and versions ride along. *)
  (match rows with
  | (_, [ ("c", Client.{ value; version }) ]) :: _ ->
    Alcotest.(check (option string)) "value" (Some "v12") value;
    check_int "version" 1 version
  | _ -> Alcotest.fail "row shape")

let test_scan_spans_ranges () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  (* nodes=5 -> range width 20000; straddle the 20000 boundary. *)
  let keys = [ 19_998; 19_999; 20_000; 20_001; 20_002 ] in
  List.iter (fun i -> ignore (put_sync engine client (key_for cluster i) "c" "x")) keys;
  let rows =
    scan_sync engine client ~start_key:(key_for cluster 19_998)
      ~end_key:(key_for cluster 20_003)
  in
  Alcotest.(check (list string))
    "stitched across cohorts"
    (List.map (key_for cluster) keys)
    (List.map fst rows)

let test_scan_limit_respected_across_ranges () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  List.iter
    (fun i -> ignore (put_sync engine client (key_for cluster i) "c" "x"))
    [ 19_998; 19_999; 20_000; 20_001 ];
  let rows =
    scan_sync engine client ~limit:3 ~start_key:(key_for cluster 19_998)
      ~end_key:(key_for cluster 20_003)
  in
  check_int "limit across cohorts" 3 (List.length rows)

let test_scan_timeline_mode () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  for i = 30 to 34 do
    ignore (put_sync engine client (key_for cluster i) "c" "x")
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  let rows =
    scan_sync ~consistent:false engine client ~start_key:(key_for cluster 30)
      ~end_key:(key_for cluster 35)
  in
  check_int "timeline scan sees converged rows" 5 (List.length rows)

let test_scan_across_failover () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  for i = 50 to 54 do
    ignore (put_sync engine client (key_for cluster i) "c" "x")
  done;
  (* Kill the leader of the scanned range; the strong scan must retry through
     the election and still return every row. *)
  let range = Partition.route (Cluster.partition cluster) (key_for cluster 50) in
  (match Cluster.leader_of cluster ~range with
  | Some l -> Cluster.crash_node cluster l
  | None -> ());
  let rows =
    scan_sync engine client ~start_key:(key_for cluster 50) ~end_key:(key_for cluster 55)
  in
  check_int "all rows after failover" 5 (List.length rows)

let test_scan_excludes_deleted () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  for i = 40 to 44 do
    ignore (put_sync engine client (key_for cluster i) "c" "x")
  done;
  let r = ref None in
  Client.delete client (key_for cluster 42) "c" (fun x -> r := Some x);
  ignore (await engine r);
  let rows =
    scan_sync engine client ~start_key:(key_for cluster 40) ~end_key:(key_for cluster 45)
  in
  Alcotest.(check (list string))
    "deleted row omitted"
    (List.map (key_for cluster) [ 40; 41; 43; 44 ])
    (List.map fst rows)

(* --- consistency levels ------------------------------------------------------- *)

let test_strong_reads_see_latest () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 20 in
  for i = 1 to 10 do
    ignore (put_sync engine client key "c" (string_of_int i));
    Alcotest.(check (option string))
      "read your write" (Some (string_of_int i))
      (value_of (get_sync engine client key "c"))
  done

let test_timeline_read_eventually_fresh () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 21 in
  ignore (put_sync engine client key "c" "fresh");
  (* After a commit period (plus slack), every replica has applied the
     write, so any timeline read sees it. *)
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  for _ = 1 to 6 do
    Alcotest.(check (option string))
      "timeline read" (Some "fresh")
      (value_of (get_sync ~consistent:false engine client key "c"))
  done

let test_timeline_read_staleness_bounded () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 22 in
  ignore (put_sync engine client key "c" "old");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  ignore (put_sync engine client key "c" "new");
  (* Immediately after the write, followers may still serve the old value
     (that is the timeline contract)... *)
  let seen = ref [] in
  for _ = 1 to 6 do
    seen := value_of (get_sync ~consistent:false engine client key "c") :: !seen
  done;
  List.iter
    (fun v -> check_bool "old or new, never garbage" true (v = Some "old" || v = Some "new"))
    !seen;
  (* ...but staleness is bounded by the commit period. *)
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  for _ = 1 to 6 do
    Alcotest.(check (option string))
      "converged" (Some "new")
      (value_of (get_sync ~consistent:false engine client key "c"))
  done

let test_timeline_read_your_writes () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 24 in
  ignore (put_sync engine client key "c" "old");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  (* Immediately after each write — well inside the commit period, so
     followers have NOT applied it yet — the writing client's own timeline
     reads must still observe the write: its read-your-writes token parks
     the read at a follower (or redirects it to the leader) instead of
     letting a stale answer through. *)
  for i = 1 to 8 do
    ignore (put_sync engine client key "c" (string_of_int i));
    Alcotest.(check (option string))
      "timeline read sees own write" (Some (string_of_int i))
      (value_of (get_sync ~consistent:false engine client key "c"))
  done

let test_offline_replica_answers_unavailable () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 25 in
  ignore (put_sync engine client key "c" "x");
  let range = Partition.route (Cluster.partition cluster) key in
  let follower =
    List.find
      (fun n ->
        match Node.cohort (Cluster.node cluster n) ~range with
        | Some c -> Cohort.role c = Cohort.Follower
        | None -> false)
      (Partition.cohort (Cluster.partition cluster) ~range)
  in
  (* Knock just the cohort offline; the node stays up and reachable, so the
     request is delivered and must be answered. A silent drop here used to
     burn the client's whole retry timeout. *)
  Cohort.crash (Option.get (Node.cohort (Cluster.node cluster follower) ~range));
  let net = Cluster.net cluster in
  let probe_id = 99_999 in
  let got = ref None in
  Sim.Network.register net ~node:probe_id (fun env ->
      match env.Sim.Network.payload with
      | Message.Reply { reply; _ } -> got := Some reply
      | _ -> ());
  Sim.Network.send net ~src:probe_id ~dst:follower
    (Message.Request
       {
         client = probe_id;
         request_id = 1;
         op = Message.Get { key; col = "c"; consistent = false; token = Storage.Lsn.zero };
       });
  (match await engine ~timeout:(Sim.Sim_time.sec 2) got with
  | Message.Unavailable -> ()
  | _ -> Alcotest.fail "offline replica answered a timeline read with data, not Unavailable")

(* --- failover & recovery -------------------------------------------------------- *)

let leader_of_key cluster key =
  let range = Partition.route (Cluster.partition cluster) key in
  (range, Cluster.leader_of cluster ~range)

let test_leader_failover_no_committed_loss () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 30 in
  for i = 1 to 20 do
    ignore (put_sync engine client key "c" (string_of_int i))
  done;
  let range, leader = leader_of_key cluster key in
  let old_leader = Option.get leader in
  Cluster.crash_node cluster old_leader;
  (* The next write rides through election + takeover. *)
  check_bool "write succeeds across failover" true
    (Result.is_ok (put_sync engine client key "c" "21"));
  let new_leader = Cluster.leader_of cluster ~range in
  check_bool "new leader exists" true (new_leader <> None);
  check_bool "leader changed" true (new_leader <> Some old_leader);
  Alcotest.(check (option string)) "no committed write lost" (Some "21")
    (value_of (get_sync engine client key "c"));
  check_int "versions intact" 21 (version_of (get_sync engine client key "c"))

let test_old_leader_rejoins_as_follower () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 31 in
  ignore (put_sync engine client key "c" "1");
  let range, leader = leader_of_key cluster key in
  let old_leader = Option.get leader in
  Cluster.crash_node cluster old_leader;
  check_bool "write during failover" true (Result.is_ok (put_sync engine client key "c" "2"));
  Cluster.restart_node cluster old_leader;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);
  (* The old leader is back as a follower of the same range. *)
  (match Node.cohort (Cluster.node cluster old_leader) ~range with
  | Some c -> check_bool "follower role" true (Cohort.role c = Cohort.Follower)
  | None -> Alcotest.fail "cohort missing");
  check_bool "writes still work" true (Result.is_ok (put_sync engine client key "c" "3"));
  Alcotest.(check (option string)) "state" (Some "3") (value_of (get_sync engine client key "c"))

let test_epoch_increases_after_failover () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 32 in
  ignore (put_sync engine client key "c" "1");
  let range, leader = leader_of_key cluster key in
  let epoch_before =
    match Node.cohort (Cluster.node cluster (Option.get leader)) ~range with
    | Some c -> Cohort.epoch c
    | None -> 0
  in
  Cluster.crash_node cluster (Option.get leader);
  ignore (put_sync engine client key "c" "2");
  let new_leader = Option.get (Cluster.leader_of cluster ~range) in
  let epoch_after =
    match Node.cohort (Cluster.node cluster new_leader) ~range with
    | Some c -> Cohort.epoch c
    | None -> 0
  in
  check_bool "epoch grew" true (epoch_after > epoch_before)

let test_follower_crash_catchup_from_log () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 33 in
  ignore (put_sync engine client key "c" "1");
  let range, leader = leader_of_key cluster key in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  let follower = List.find (fun n -> Some n <> leader) members in
  Cluster.crash_node cluster follower;
  (* Majority still up: writes proceed while the follower is down. *)
  for i = 2 to 10 do
    check_bool "write with follower down" true
      (Result.is_ok (put_sync engine client key "c" (string_of_int i)))
  done;
  Cluster.restart_node cluster follower;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);
  (* The recovered follower serves a fresh timeline read. *)
  (match Node.cohort (Cluster.node cluster follower) ~range with
  | Some c ->
    check_bool "caught up" true (Storage.Lsn.compare (Cohort.cmt c) Storage.Lsn.zero > 0);
    check_bool "follower role" true (Cohort.role c = Cohort.Follower)
  | None -> Alcotest.fail "cohort missing");
  Alcotest.(check (option string)) "state intact" (Some "10")
    (value_of (get_sync engine client key "c"))

let test_minority_blocks_writes_timeline_survives () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 34 in
  ignore (put_sync engine client key "c" "alive");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  let range, _ = leader_of_key cluster key in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  (* Kill two of the three replicas: no quorum. *)
  (match members with
  | a :: b :: _ ->
    Cluster.crash_node cluster a;
    Cluster.crash_node cluster b
  | _ -> Alcotest.fail "cohort too small");
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  (* Strong write fails (retries exhausted)... *)
  check_bool "write blocked without majority" true
    (Result.is_error (put_sync engine client key "c" "nope"));
  (* ...but a timeline read is still served by the surviving replica (§8.1). *)
  Alcotest.(check (option string))
    "timeline read survives" (Some "alive")
    (value_of (get_sync ~consistent:false engine client key "c"));
  (* Restore one node: quorum returns and writes flow again. *)
  (match members with a :: _ -> Cluster.restart_node cluster a | [] -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);
  check_bool "write after quorum restored" true
    (Result.is_ok (put_sync engine client key "c" "back"))

let test_leader_partition_cannot_commit () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 35 in
  ignore (put_sync engine client key "c" "pre");
  let range, leader = leader_of_key cluster key in
  let leader = Option.get leader in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  let others = List.filter (fun n -> n <> leader) members in
  (* Cut the leader off from its followers (but not from clients or the
     coordination service in this model). *)
  Sim.Network.partition (Cluster.net cluster) [ leader ] others;
  let r = ref None in
  Client.put client key "c" ~value:"partitioned" (fun x -> r := Some x);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  (* No follower ack => not committed => no reply yet. *)
  check_bool "write not acknowledged under partition" true (!r = None);
  Sim.Network.heal (Cluster.net cluster);
  check_bool "commits after heal" true (Result.is_ok (await engine r))

let test_full_cohort_restart_recovers_committed_state () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 36 in
  for i = 1 to 15 do
    ignore (put_sync engine client key "c" (string_of_int i))
  done;
  let range, _ = leader_of_key cluster key in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  List.iter (Cluster.crash_node cluster) members;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  List.iter (Cluster.restart_node cluster) members;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  Alcotest.(check (option string))
    "committed state recovered from logs" (Some "15")
    (value_of (get_sync engine client key "c"))

let test_disk_loss_recovered_from_peers () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 37 in
  for i = 1 to 10 do
    ignore (put_sync engine client key "c" (string_of_int i))
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  let range, leader = leader_of_key cluster key in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  let follower = List.find (fun n -> Some n <> leader) members in
  (* Destroy the follower's disk entirely; it must rebuild via catch-up. *)
  Cluster.crash_node cluster follower;
  Node.lose_disk (Cluster.node cluster follower);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  Cluster.restart_node cluster follower;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  (match Node.cohort (Cluster.node cluster follower) ~range with
  | Some c ->
    check_bool "rebuilt from peers" true
      (Storage.Lsn.compare (Cohort.cmt c) Storage.Lsn.zero > 0)
  | None -> Alcotest.fail "cohort missing");
  Alcotest.(check (option string)) "data intact" (Some "10")
    (value_of (get_sync engine client key "c"))

(* --- routing ---------------------------------------------------------------------- *)

let test_misrouted_request_redirected () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  (* Writes to many keys across all ranges: every request finds its leader
     through hints even though the client cache starts empty. *)
  for i = 0 to 19 do
    let key = key_for cluster (i * 4777 mod Config.default.Config.key_space) in
    check_bool "routed write" true (Result.is_ok (put_sync engine client key "c" "x"))
  done

(* --- durability (§8.1) ---------------------------------------------------------------- *)

let test_survives_two_permanent_failures () =
  (* "A cohort will not lose committed data even if 2 out of 3 of its nodes
     permanently fail" (§8.1): destroy two replicas' disks; the survivor is
     elected (max last-LSN) and the data is intact once a quorum of
     replacement nodes catches up from it. *)
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 50 in
  ignore (put_sync engine client key "c" "precious");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 600);
  let range, _ = leader_of_key cluster key in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  (match members with
  | a :: b :: _ ->
    (* Permanent failures: crash and destroy stable storage. *)
    Cluster.crash_node cluster a;
    Node.lose_disk (Cluster.node cluster a);
    Cluster.crash_node cluster b;
    Node.lose_disk (Cluster.node cluster b);
    Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
    (* Replacement (blank) nodes come back; they must catch up from the
       survivor, which wins the election on max lst. *)
    Cluster.restart_node cluster a;
    Cluster.restart_node cluster b;
    Sim.Engine.run_for engine (Sim.Sim_time.sec 5)
  | _ -> Alcotest.fail "cohort too small");
  Alcotest.(check (option string))
    "committed data survives 2 permanent failures" (Some "precious")
    (value_of (get_sync engine client key "c"))

let test_piggybacked_commits_reduce_staleness () =
  let config = { test_config with Config.piggyback_commits = true; commit_period = Sim.Sim_time.sec 30 } in
  let engine, cluster = boot ~config () in
  let client = Cluster.new_client cluster in
  let key = key_for cluster 60 in
  (* With a 30 s commit period, follower freshness can only come from
     piggy-backed commit info on subsequent proposes (§D.1). *)
  ignore (put_sync engine client key "c" "first");
  ignore (put_sync engine client key "c" "second");
  ignore (put_sync engine client key "c" "third");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  (* Any replica now serves at most one write behind, despite no commit
     message ever having fired. *)
  for _ = 1 to 6 do
    let v = value_of (get_sync ~consistent:false engine client key "c") in
    check_bool "follower nearly fresh via piggyback" true
      (v = Some "third" || v = Some "second")
  done

(* --- group membership (§4.2) -------------------------------------------------------- *)

let test_membership_tracks_sessions () =
  let engine, cluster = boot () in
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  Alcotest.(check (list int))
    "all registered" [ 0; 1; 2; 3; 4 ]
    (List.sort compare (Cluster.registered_nodes cluster));
  Cluster.crash_node cluster 2;
  (* The ephemeral registration survives until the session expires. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  Alcotest.(check (list int))
    "crashed node dropped after expiry" [ 0; 1; 3; 4 ]
    (List.sort compare (Cluster.registered_nodes cluster));
  Cluster.restart_node cluster 2;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  Alcotest.(check (list int))
    "rejoin re-registers" [ 0; 1; 2; 3; 4 ]
    (List.sort compare (Cluster.registered_nodes cluster))

(* --- rolling upgrade (§1.1) --------------------------------------------------------- *)

let test_rolling_upgrade_stays_available () =
  (* "Online upgrades become easier, since one replica can be taken off line
     and upgraded, while the other 2 replicas are kept online" (§1.1): take
     every node down in turn; reads and writes keep flowing throughout. *)
  let engine, cluster = boot ~seed:29 () in
  let client = Cluster.new_client cluster in
  let ok = ref 0 and failed = ref 0 in
  let tick = ref 0 in
  let rec writer () =
    incr tick;
    let key = key_for cluster (!tick * 997 mod Config.default.Config.key_space) in
    Client.put client key "c" ~value:"x" (fun r ->
        (match r with Ok () -> incr ok | Error _ -> incr failed);
        ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 50) writer))
  in
  writer ();
  for node = 0 to 4 do
    Cluster.crash_node cluster node;
    Sim.Engine.run_for engine (Sim.Sim_time.sec 4);
    Cluster.restart_node cluster node;
    (* Let it catch up before upgrading the next one. *)
    Sim.Engine.run_for engine (Sim.Sim_time.sec 4)
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  check_bool
    (Printf.sprintf "writes flowed through rolling restarts (%d ok, %d failed)" !ok !failed)
    true
    (!ok > 200 && !failed = 0)

(* --- chaos ------------------------------------------------------------------------ *)

let test_chaos_no_acked_write_lost () =
  let engine, cluster = boot ~seed:7 () in
  let client = Cluster.new_client cluster in
  let acked : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let failure = Sim.Failure.create engine in
  (* One random node crashes and recovers, twice, while writes flow. *)
  let victims = [ 1; 3 ] in
  List.iteri
    (fun i v ->
      Sim.Failure.crash_for failure
        ~at:(Sim.Sim_time.at_us ((i + 1) * 2_000_000))
        ~down_for:(Sim.Sim_time.sec 1)
        (Node.failure_target (Cluster.node cluster v)))
    victims;
  for i = 0 to 39 do
    let key = key_for cluster (i * 2501 mod Config.default.Config.key_space) in
    let value = Printf.sprintf "v%d" i in
    (match put_sync engine client key "c" value with
    | Ok () -> Hashtbl.replace acked key value
    | Error _ -> ());
    Sim.Engine.run_for engine (Sim.Sim_time.ms 150)
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  (* Every acknowledged write must be durable and visible. *)
  Hashtbl.iter
    (fun key value ->
      Alcotest.(check (option string))
        (Printf.sprintf "acked write %s survives chaos" key)
        (Some value)
        (value_of (get_sync engine client key "c")))
    acked

let suite =
  [
    Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
    Alcotest.test_case "get missing key" `Quick test_get_missing_key;
    Alcotest.test_case "versions increment" `Quick test_versions_increment;
    Alcotest.test_case "delete + tombstone version" `Quick test_delete;
    Alcotest.test_case "conditional put" `Quick test_conditional_put;
    Alcotest.test_case "conditional increment loop" `Quick test_conditional_increment_loop;
    Alcotest.test_case "conditional race: one winner" `Quick test_conditional_racers_one_wins;
    Alcotest.test_case "multi-column put/get" `Quick test_multi_column_put_and_get;
    Alcotest.test_case "multi-column conditional put" `Quick test_multi_conditional_put;
    Alcotest.test_case "transaction: atomic commit" `Quick test_transaction_commits_atomically;
    Alcotest.test_case "transaction: cross-range rejected" `Quick
      test_transaction_cross_range_rejected;
    Alcotest.test_case "transaction: version assignment" `Quick test_transaction_versions_assigned;
    Alcotest.test_case "transaction: atomic across failover" `Slow
      test_transaction_atomic_across_failover;
    Alcotest.test_case "scan: single range" `Quick test_scan_single_range;
    Alcotest.test_case "scan: spans ranges" `Quick test_scan_spans_ranges;
    Alcotest.test_case "scan: limit across ranges" `Quick test_scan_limit_respected_across_ranges;
    Alcotest.test_case "scan: timeline mode" `Quick test_scan_timeline_mode;
    Alcotest.test_case "scan: excludes deleted rows" `Quick test_scan_excludes_deleted;
    Alcotest.test_case "scan: across failover" `Quick test_scan_across_failover;
    Alcotest.test_case "conditional delete" `Quick test_conditional_delete;
    Alcotest.test_case "multi-get: missing columns" `Quick test_multi_get_missing_columns;
    Alcotest.test_case "strong reads see latest" `Quick test_strong_reads_see_latest;
    Alcotest.test_case "timeline reads converge" `Quick test_timeline_read_eventually_fresh;
    Alcotest.test_case "timeline staleness bounded" `Quick test_timeline_read_staleness_bounded;
    Alcotest.test_case "timeline reads see own writes (token)" `Quick
      test_timeline_read_your_writes;
    Alcotest.test_case "offline replica answers Unavailable" `Quick
      test_offline_replica_answers_unavailable;
    Alcotest.test_case "leader failover: no committed loss" `Quick
      test_leader_failover_no_committed_loss;
    Alcotest.test_case "old leader rejoins as follower" `Quick test_old_leader_rejoins_as_follower;
    Alcotest.test_case "epoch increases after failover" `Quick test_epoch_increases_after_failover;
    Alcotest.test_case "follower catch-up from log" `Quick test_follower_crash_catchup_from_log;
    Alcotest.test_case "minority blocks writes; timeline survives" `Quick
      test_minority_blocks_writes_timeline_survives;
    Alcotest.test_case "partitioned leader cannot commit" `Quick test_leader_partition_cannot_commit;
    Alcotest.test_case "full cohort restart recovers" `Quick
      test_full_cohort_restart_recovers_committed_state;
    Alcotest.test_case "disk loss: rebuild from peers" `Quick test_disk_loss_recovered_from_peers;
    Alcotest.test_case "client routing via hints" `Quick test_misrouted_request_redirected;
    Alcotest.test_case "group membership tracks sessions" `Quick test_membership_tracks_sessions;
    Alcotest.test_case "durability: 2 permanent failures" `Slow
      test_survives_two_permanent_failures;
    Alcotest.test_case "piggy-backed commits reduce staleness" `Quick
      test_piggybacked_commits_reduce_staleness;
    Alcotest.test_case "rolling upgrade stays available" `Slow
      test_rolling_upgrade_stays_available;
    Alcotest.test_case "chaos: no acked write lost" `Slow test_chaos_no_acked_write_lost;
  ]
